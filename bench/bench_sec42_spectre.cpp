// E5 — §4.2 Spectre family: bounds-check bypass (PHT), branch target
// injection (BTB) and return-stack poisoning (RSB), with leak bandwidth,
// accuracy, and the mitigation sweep.
//
// Paper's expected shape: all three variants leak on speculative cores
// "while bypassing all software defenses like bounds checking or CFI";
// BTB injection works *cross-process* because the predictor is VA-indexed
// and untagged ([21]); serializing fences / tagging / predictor flushes
// close each channel; in-order cores are immune.
#include <benchmark/benchmark.h>

#include "attacks/transient/spectre.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace attacks = hwsec::attacks;

namespace {

constexpr const char* kSecret = "SPECULATIVE_SECRETS_2019";
constexpr std::size_t kLen = 24;

struct LeakScore {
  std::uint32_t correct = 0;
  std::uint32_t attempts = 0;
  double cycles = 0.0;  ///< simulated attacker cycles spent.

  double accuracy() const {
    return attempts ? static_cast<double>(correct) / attempts : 0.0;
  }
  double bytes_per_mcycle() const {
    return cycles > 0 ? static_cast<double>(correct) / (cycles / 1e6) : 0.0;
  }
};

LeakScore score_v1(const sim::MachineProfile& profile, bool fence, std::uint64_t seed) {
  sim::Machine machine(profile, seed);
  attacks::SpectreV1::Config config;
  config.victim_has_fence = fence;
  attacks::SpectreV1 spectre(machine, 0, config);
  const sim::Word index = spectre.plant_secret(kSecret);
  LeakScore score;
  const sim::Cycle before = machine.cpu(0).cycles();
  for (std::size_t i = 0; i < kLen; ++i) {
    ++score.attempts;
    const auto byte = spectre.leak_byte(index + static_cast<sim::Word>(i));
    if (byte.has_value() && *byte == static_cast<std::uint8_t>(kSecret[i])) {
      ++score.correct;
    }
  }
  score.cycles = static_cast<double>(machine.cpu(0).cycles() - before);
  return score;
}

LeakScore score_v2(const sim::MachineProfile& profile, std::uint64_t seed) {
  sim::Machine machine(profile, seed);
  attacks::SpectreV2 spectre(machine, 0);
  spectre.plant_secret(kSecret);
  LeakScore score;
  const sim::Cycle before = machine.cpu(0).cycles();
  for (std::size_t i = 0; i < kLen; ++i) {
    ++score.attempts;
    const auto byte = spectre.leak_byte(static_cast<std::uint32_t>(i));
    if (byte.has_value() && *byte == static_cast<std::uint8_t>(kSecret[i])) {
      ++score.correct;
    }
  }
  score.cycles = static_cast<double>(machine.cpu(0).cycles() - before);
  return score;
}

LeakScore score_rsb(const sim::MachineProfile& profile, std::uint64_t seed) {
  sim::Machine machine(profile, seed);
  attacks::SpectreRsb spectre(machine, 0);
  spectre.plant_secret(kSecret);
  LeakScore score;
  const sim::Cycle before = machine.cpu(0).cycles();
  for (std::size_t i = 0; i < kLen; ++i) {
    ++score.attempts;
    const auto byte = spectre.leak_byte(static_cast<std::uint32_t>(i));
    if (byte.has_value() && *byte == static_cast<std::uint8_t>(kSecret[i])) {
      ++score.correct;
    }
  }
  score.cycles = static_cast<double>(machine.cpu(0).cycles() - before);
  return score;
}

void BM_SpectreV1LeakByte(benchmark::State& state) {
  sim::Machine machine(sim::MachineProfile::server(), 555);
  attacks::SpectreV1 spectre(machine, 0);
  const sim::Word index = spectre.plant_secret("B");
  for (auto _ : state) {
    benchmark::DoNotOptimize(spectre.leak_byte(index));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpectreV1LeakByte)->Iterations(200);

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  hwsec::bench::section("E5 / §4.2 — Spectre variants, 24-byte secret leak");
  Table t({"variant", "configuration", "bytes ok", "accuracy", "B/Mcycle"},
          {14, 38, 10, 10, 10});
  t.print_header();

  const auto server = sim::MachineProfile::server();
  const auto mobile = sim::MachineProfile::mobile();

  {
    const auto s = score_v1(server, false, 501);
    t.print_row("Spectre-PHT", "server, vulnerable", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }
  {
    const auto s = score_v1(mobile, false, 502);
    t.print_row("Spectre-PHT", "mobile (ARM-like), vulnerable", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }
  {
    const auto s = score_v1(server, true, 503);
    t.print_row("Spectre-PHT", "server, fence after bounds check", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }
  {
    sim::MachineProfile inorder = server;
    inorder.cpu.speculative_execution = false;
    const auto s = score_v1(inorder, false, 504);
    t.print_row("Spectre-PHT", "in-order core (embedded-class)", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }
  t.print_rule();
  {
    const auto s = score_v2(server, 505);
    t.print_row("Spectre-BTB", "untagged BTB (vulnerable)", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }
  {
    sim::MachineProfile tagged = server;
    tagged.cpu.predictor.btb_tag_bits = 10;
    const auto s = score_v2(tagged, 506);
    t.print_row("Spectre-BTB", "tagged BTB (10 tag bits)", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }
  {
    sim::MachineProfile flush = server;
    flush.cpu.predictor.flush_on_domain_switch = true;
    const auto s = score_v2(flush, 507);
    t.print_row("Spectre-BTB", "predictor flush on switch (IBPB)", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }
  t.print_rule();
  {
    const auto s = score_rsb(server, 508);
    t.print_row("Spectre-RSB", "shared RSB (vulnerable)", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }
  {
    sim::MachineProfile flush = server;
    flush.cpu.predictor.flush_on_domain_switch = true;
    const auto s = score_rsb(flush, 509);
    t.print_row("Spectre-RSB", "RSB flush on switch", s.correct, s.accuracy(),
                s.bytes_per_mcycle());
  }

  hwsec::bench::section("ablation: BTB tag bits vs. injection success");
  Table a({"tag bits", "bytes ok /24"}, {10, 14});
  a.print_header();
  for (const std::uint32_t bits : {0u, 2u, 4u, 8u, 12u}) {
    sim::MachineProfile p = sim::MachineProfile::server();
    p.cpu.predictor.btb_tag_bits = bits;
    const auto s = score_v2(p, 510 + bits);
    a.print_row(bits, s.correct);
  }
  std::cout << "(any tag bit distinguishing the attacker's congruent branch kills the\n"
               " injection; real mitigations tag by context rather than address)\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
