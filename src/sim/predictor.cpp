#include "sim/predictor.h"

#include <stdexcept>

namespace hwsec::sim {

namespace {
bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
std::uint32_t log2_of(std::uint32_t v) {
  std::uint32_t bits = 0;
  while ((1u << bits) < v) {
    ++bits;
  }
  return bits;
}
}  // namespace

PatternHistoryTable::PatternHistoryTable(std::uint32_t entries) : entries_(entries) {
  if (!is_pow2(entries)) {
    throw std::invalid_argument("PHT entries must be a power of two");
  }
  counters_.assign(entries_, 1);  // weakly not-taken.
}

bool PatternHistoryTable::predict(VirtAddr pc) const { return counters_[index(pc)] >= 2; }

void PatternHistoryTable::update(VirtAddr pc, bool taken) {
  std::uint8_t& c = counters_[index(pc)];
  if (taken && c < 3) {
    ++c;
  } else if (!taken && c > 0) {
    --c;
  }
}

void PatternHistoryTable::reset() { counters_.assign(entries_, 1); }

BranchTargetBuffer::BranchTargetBuffer(std::uint32_t entries, std::uint32_t tag_bits)
    : entries_(entries), index_bits_(log2_of(entries)), tag_bits_(tag_bits) {
  if (!is_pow2(entries)) {
    throw std::invalid_argument("BTB entries must be a power of two");
  }
  table_.assign(entries_, Entry{});
}

std::optional<VirtAddr> BranchTargetBuffer::predict(VirtAddr pc) const {
  const Entry& e = table_[index(pc)];
  if (e.valid && e.tag == tag_of(pc)) {
    return e.target;
  }
  return std::nullopt;
}

void BranchTargetBuffer::update(VirtAddr pc, VirtAddr target) {
  Entry& e = table_[index(pc)];
  e.valid = true;
  e.tag = tag_of(pc);
  e.target = target;
}

void BranchTargetBuffer::flush() { table_.assign(entries_, Entry{}); }

ReturnStackBuffer::ReturnStackBuffer(std::uint32_t depth) {
  if (depth == 0) {
    throw std::invalid_argument("RSB depth must be positive");
  }
  slots_.assign(depth, 0);
  ever_written_.assign(depth, false);
}

void ReturnStackBuffer::push(VirtAddr return_addr) {
  slots_[top_] = return_addr;
  ever_written_[top_] = true;
  top_ = (top_ + 1) % slots_.size();
  if (occupancy_ < slots_.size()) {
    ++occupancy_;
  }
}

std::optional<VirtAddr> ReturnStackBuffer::pop() {
  const std::uint32_t slot = (top_ + static_cast<std::uint32_t>(slots_.size()) - 1) %
                             static_cast<std::uint32_t>(slots_.size());
  if (occupancy_ > 0) {
    --occupancy_;
    top_ = slot;
    return slots_[slot];
  }
  // Underflow: a real RSB wraps and serves a stale entry.
  top_ = slot;
  if (ever_written_[slot]) {
    return slots_[slot];
  }
  return std::nullopt;
}

void ReturnStackBuffer::flush() {
  occupancy_ = 0;
  top_ = 0;
  ever_written_.assign(ever_written_.size(), false);
}

BranchPredictor::BranchPredictor(PredictorConfig config)
    : config_(config),
      pht_(config.pht_entries),
      btb_(config.btb_entries, config.btb_tag_bits),
      rsb_(config.rsb_depth) {}

void BranchPredictor::on_domain_switch() {
  if (config_.flush_on_domain_switch) {
    pht_.reset();
    btb_.flush();
    rsb_.flush();
  }
}

}  // namespace hwsec::sim
