#include "attacks/cache/full_key_recovery.h"

#include <cstring>
#include <optional>
#include <stdexcept>

namespace hwsec::attacks {

namespace sim = hwsec::sim;
namespace crypto = hwsec::crypto;

void collect_line_observations_into(sim::Machine& machine, const TableLayout& layout,
                                    const VictimFn& victim, std::uint64_t trials,
                                    const CacheAttackConfig& config,
                                    const std::function<void(const LineObservation&)>& sink) {
  sim::Rng rng(config.rng_seed ^ 0x2ECD);
  for (std::uint64_t t = 0; t < trials; ++t) {
    LineObservation obs;
    for (auto& b : obs.plaintext) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }
    for (std::uint32_t table = 0; table < 4; ++table) {
      for (std::uint32_t l = 0; l < 16; ++l) {
        machine.flush_line(layout.base[table] + 64 * l);
      }
    }
    obs.ciphertext = victim(obs.plaintext).ciphertext;
    for (std::uint32_t table = 0; table < 4; ++table) {
      for (std::uint32_t l = 0; l < 16; ++l) {
        const auto outcome = machine.touch(config.attacker_core, config.attacker_domain,
                                           layout.base[table] + 64 * l);
        if (machine.observe_latency(outcome.latency) < config.hit_threshold) {
          obs.lines[table] |= static_cast<std::uint16_t>(1u << l);
        }
      }
    }
    sink(obs);
  }
}

std::vector<LineObservation> collect_line_observations(sim::Machine& machine,
                                                       const TableLayout& layout,
                                                       const VictimFn& victim,
                                                       std::uint64_t trials,
                                                       const CacheAttackConfig& config) {
  std::vector<LineObservation> observations;
  observations.reserve(trials);
  collect_line_observations_into(machine, layout, victim, trials, config,
                                 [&](const LineObservation& obs) { observations.push_back(obs); });
  return observations;
}

namespace {

// On-disk record: pt[16] + ct[16] + 4 × u16 line sets = 40 bytes.
constexpr std::size_t kObservationRecordBytes = 40;
constexpr std::uint64_t kObservationLogTag = 0x4F42534Cu;  // "OBSL"

void pack_observation(const LineObservation& obs, std::uint8_t* out) {
  std::memcpy(out, obs.plaintext.data(), 16);
  std::memcpy(out + 16, obs.ciphertext.data(), 16);
  std::memcpy(out + 32, obs.lines.data(), 8);
}

LineObservation unpack_observation(const std::uint8_t* in) {
  LineObservation obs;
  std::memcpy(obs.plaintext.data(), in, 16);
  std::memcpy(obs.ciphertext.data(), in + 16, 16);
  std::memcpy(obs.lines.data(), in + 32, 8);
  return obs;
}

}  // namespace

LineObservationLogWriter::LineObservationLogWriter(const std::string& dir)
    : writer_(std::make_unique<hwsec::sca::ChunkedRecordWriter>(
          dir, kObservationRecordBytes, /*records_per_chunk=*/4096, kObservationLogTag)) {}

void LineObservationLogWriter::append(const LineObservation& obs) {
  std::uint8_t record[kObservationRecordBytes];
  pack_observation(obs, record);
  writer_->append(record);
}

std::size_t LineObservationLogWriter::size() const { return writer_->size(); }

void LineObservationLogWriter::finalize() { writer_->finalize(); }

LineObservationLogReader::LineObservationLogReader(const std::string& dir)
    : reader_(std::make_unique<hwsec::sca::ChunkedRecordReader>(dir)) {
  if (reader_->record_bytes() != kObservationRecordBytes ||
      reader_->user_tag() != kObservationLogTag) {
    throw std::runtime_error("observation log: " + dir + ": not an observation log");
  }
}

std::size_t LineObservationLogReader::size() const { return reader_->size(); }

void LineObservationLogReader::replay(
    const std::function<void(const LineObservation&)>& visit) const {
  reader_->replay([&](std::size_t, const std::uint8_t* record) {
    visit(unpack_observation(record));
  });
}

namespace {

constexpr std::uint8_t xtime8(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1B));
}

/// One §3.4 second-round equation: the round-2 T0 index for word j is
///   02•S(pt[p0]⊕k[p0]) ⊕ 03•S(pt[p1]⊕k[p1]) ⊕ S(pt[p2]⊕k[p2])
///   ⊕ S(pt[p3]⊕k[p3]) ⊕ topbyte(K1[j]),
/// with (p0..p3) the ShiftRows selection {4j, 4j+5, 4j+10, 4j+15} mod 16
/// and topbyte(K1[j]) = k[0] ⊕ k[4] ⊕ … ⊕ k[4j] ⊕ S(k[13]) ⊕ 0x01.
struct Equation {
  std::array<int, 4> p;
  std::vector<int> k1_xor;
  std::vector<int> unknowns;  ///< positions this equation newly solves.
};

std::array<Equation, 4> make_equations() {
  return {{
      {{0, 5, 10, 15}, {0}, {0, 5, 10, 15, 13}},
      {{4, 9, 14, 3}, {4, 0}, {4, 9, 14, 3}},
      {{8, 13, 2, 7}, {8, 4, 0}, {8, 2, 7}},
      {{12, 1, 6, 11}, {12, 8, 4, 0}, {12, 1, 6, 11}},
  }};
}

using PartialKey = std::array<std::optional<std::uint8_t>, 16>;

std::uint8_t predict_index(const Equation& eq, const PartialKey& key,
                           const crypto::AesBlock& pt) {
  const auto& sbox = crypto::aes_sbox();
  auto sub = [&](int pos) {
    const auto i = static_cast<std::size_t>(pos);
    return sbox[static_cast<std::uint8_t>(pt[i] ^ *key[i])];
  };
  const std::uint8_t sa = sub(eq.p[0]);
  const std::uint8_t sb = sub(eq.p[1]);
  const std::uint8_t sc = sub(eq.p[2]);
  const std::uint8_t sd = sub(eq.p[3]);
  std::uint8_t k1_top = static_cast<std::uint8_t>(sbox[*key[13]] ^ 0x01);
  for (const int pos : eq.k1_xor) {
    k1_top = static_cast<std::uint8_t>(k1_top ^ *key[static_cast<std::size_t>(pos)]);
  }
  return static_cast<std::uint8_t>(xtime8(sa) ^ (xtime8(sb) ^ sb) ^ sc ^ sd ^ k1_top);
}

/// Enumerates the low nibbles of `eq.unknowns` (high nibbles fixed by the
/// first-round stage) and eliminates candidates whose predicted round-2
/// T0 line is missing from an observation's T0 set. The true assignment
/// always survives; wrong ones die at ~(15/16)^|T0 accesses| per trial.
std::vector<PartialKey> solve_equation(const Equation& eq, const PartialKey& base,
                                       const std::array<std::uint8_t, 16>& high_nibbles,
                                       const std::vector<LineObservation>& observations,
                                       std::size_t max_survivors) {
  const std::size_t n = eq.unknowns.size();
  std::vector<std::uint32_t> candidates;
  candidates.reserve(std::size_t{1} << (4 * n));
  for (std::uint32_t c = 0; c < (1u << (4 * n)); ++c) {
    candidates.push_back(c);
  }

  PartialKey scratch = base;
  auto apply = [&](std::uint32_t packed) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto pos = static_cast<std::size_t>(eq.unknowns[i]);
      scratch[pos] = static_cast<std::uint8_t>((high_nibbles[pos] << 4) |
                                               ((packed >> (4 * i)) & 0xF));
    }
  };

  for (const LineObservation& obs : observations) {
    std::vector<std::uint32_t> next;
    next.reserve(candidates.size() / 2 + 1);
    for (const std::uint32_t c : candidates) {
      apply(c);
      const std::uint8_t idx = predict_index(eq, scratch, obs.plaintext);
      if (obs.lines[0] & (1u << (idx >> 4))) {
        next.push_back(c);
      }
    }
    candidates = std::move(next);
    if (candidates.size() <= 1) {
      break;
    }
  }

  std::vector<PartialKey> survivors;
  for (std::size_t i = 0; i < candidates.size() && i < max_survivors; ++i) {
    apply(candidates[i]);
    survivors.push_back(scratch);
  }
  return survivors;
}

}  // namespace

FullKeyResult recover_full_key(const std::vector<LineObservation>& observations) {
  FullKeyResult result;
  if (observations.size() < 32) {
    return result;
  }

  // ---- stage 1: first-round vote -> high nibble of every key byte ------
  // T_t is indexed in round 1 by bytes i with i % 4 == t; a hot line l
  // votes for k[i]>>4 == l ^ (pt[i]>>4).
  std::array<std::array<std::uint32_t, 16>, 16> votes{};
  for (const LineObservation& obs : observations) {
    for (std::uint32_t table = 0; table < 4; ++table) {
      for (std::uint32_t l = 0; l < 16; ++l) {
        if (obs.lines[table] & (1u << l)) {
          for (std::uint32_t i = table; i < 16; i += 4) {
            ++votes[i][l ^ (obs.plaintext[i] >> 4)];
          }
        }
      }
    }
  }
  std::array<std::uint8_t, 16> high{};
  for (std::size_t i = 0; i < 16; ++i) {
    std::uint32_t best = 0;
    for (std::uint8_t v = 0; v < 16; ++v) {
      if (votes[i][v] > best) {
        best = votes[i][v];
        high[i] = v;
      }
    }
  }

  // ---- stage 2: second-round elimination, one equation at a time -------
  // Later equations consume bytes solved by earlier ones (K1 cascades),
  // so carry a frontier of surviving partial keys across equations.
  std::vector<PartialKey> frontier = {PartialKey{}};
  const auto equations = make_equations();
  for (std::size_t e = 0; e < equations.size(); ++e) {
    std::vector<PartialKey> next_frontier;
    for (const PartialKey& base : frontier) {
      const auto survivors = solve_equation(equations[e], base, high, observations, 8);
      next_frontier.insert(next_frontier.end(), survivors.begin(), survivors.end());
      if (next_frontier.size() > 64) {
        break;  // runaway ambiguity: fall through to verification.
      }
    }
    result.equation_survivors[e] = next_frontier.size();
    if (next_frontier.empty()) {
      return result;  // contradiction: nibble error or noisy observations.
    }
    frontier = std::move(next_frontier);
  }

  // ---- stage 3: verify surviving keys against a known pt/ct pair -------
  for (const PartialKey& candidate : frontier) {
    ++result.keys_verified;
    crypto::AesKey key{};
    bool complete = true;
    for (std::size_t i = 0; i < 16; ++i) {
      if (!candidate[i].has_value()) {
        complete = false;
        break;
      }
      key[i] = *candidate[i];
    }
    if (!complete) {
      continue;
    }
    crypto::AesTTable aes(key);
    if (aes.encrypt(observations.front().plaintext) == observations.front().ciphertext) {
      result.recovered = true;
      result.key = key;
      return result;
    }
  }
  return result;
}

FullKeyResult recover_full_key_streaming(const ObservationReplayFn& replay) {
  FullKeyResult result;

  // ---- pass 1: count + first-round votes + verification pair ----------
  // Vote totals are order-independent sums, so one sequential pass gives
  // exactly the vote table the materialized stage builds.
  std::array<std::array<std::uint32_t, 16>, 16> votes{};
  std::size_t count = 0;
  LineObservation first;
  replay([&](const LineObservation& obs) {
    if (count == 0) {
      first = obs;
    }
    ++count;
    for (std::uint32_t table = 0; table < 4; ++table) {
      for (std::uint32_t l = 0; l < 16; ++l) {
        if (obs.lines[table] & (1u << l)) {
          for (std::uint32_t i = table; i < 16; i += 4) {
            ++votes[i][l ^ (obs.plaintext[i] >> 4)];
          }
        }
      }
    }
  });
  if (count < 32) {
    return result;
  }
  std::array<std::uint8_t, 16> high{};
  for (std::size_t i = 0; i < 16; ++i) {
    std::uint32_t best = 0;
    for (std::uint8_t v = 0; v < 16; ++v) {
      if (votes[i][v] > best) {
        best = votes[i][v];
        high[i] = v;
      }
    }
  }

  // ---- passes 2–5: one shared elimination pass per equation -----------
  // The materialized path filters base-by-base (each base re-reading the
  // observation vector); here every frontier base's candidate list is
  // filtered in the SAME sequential pass, so each equation costs exactly
  // one replay of the source. Filtering a list stops once it reaches one
  // survivor — the point at which the materialized solver breaks — so the
  // surviving candidate sets are identical.
  std::vector<PartialKey> frontier = {PartialKey{}};
  const auto equations = make_equations();
  for (std::size_t e = 0; e < equations.size(); ++e) {
    const Equation& eq = equations[e];
    const std::size_t n = eq.unknowns.size();
    std::vector<std::vector<std::uint32_t>> candidates(frontier.size());
    for (auto& list : candidates) {
      list.reserve(std::size_t{1} << (4 * n));
      for (std::uint32_t c = 0; c < (1u << (4 * n)); ++c) {
        list.push_back(c);
      }
    }

    PartialKey scratch;
    auto apply = [&](const PartialKey& base, std::uint32_t packed) {
      scratch = base;
      for (std::size_t i = 0; i < n; ++i) {
        const auto pos = static_cast<std::size_t>(eq.unknowns[i]);
        scratch[pos] = static_cast<std::uint8_t>((high[pos] << 4) |
                                                 ((packed >> (4 * i)) & 0xF));
      }
    };

    replay([&](const LineObservation& obs) {
      for (std::size_t b = 0; b < frontier.size(); ++b) {
        auto& list = candidates[b];
        if (list.size() <= 1) {
          continue;
        }
        std::vector<std::uint32_t> next;
        next.reserve(list.size() / 2 + 1);
        for (const std::uint32_t c : list) {
          apply(frontier[b], c);
          const std::uint8_t idx = predict_index(eq, scratch, obs.plaintext);
          if (obs.lines[0] & (1u << (idx >> 4))) {
            next.push_back(c);
          }
        }
        list = std::move(next);
      }
    });

    std::vector<PartialKey> next_frontier;
    for (std::size_t b = 0; b < frontier.size(); ++b) {
      for (std::size_t i = 0; i < candidates[b].size() && i < 8; ++i) {
        apply(frontier[b], candidates[b][i]);
        next_frontier.push_back(scratch);
      }
      if (next_frontier.size() > 64) {
        break;  // runaway ambiguity: fall through to verification.
      }
    }
    result.equation_survivors[e] = next_frontier.size();
    if (next_frontier.empty()) {
      return result;
    }
    frontier = std::move(next_frontier);
  }

  // ---- verification against the captured known pt/ct pair -------------
  for (const PartialKey& candidate : frontier) {
    ++result.keys_verified;
    crypto::AesKey key{};
    bool complete = true;
    for (std::size_t i = 0; i < 16; ++i) {
      if (!candidate[i].has_value()) {
        complete = false;
        break;
      }
      key[i] = *candidate[i];
    }
    if (!complete) {
      continue;
    }
    crypto::AesTTable aes(key);
    if (aes.encrypt(first.plaintext) == first.ciphertext) {
      result.recovered = true;
      result.key = key;
      return result;
    }
  }
  return result;
}

FullKeyResult full_key_attack(sim::Machine& machine, const TableLayout& layout,
                              const VictimFn& victim, std::uint64_t trials,
                              const CacheAttackConfig& config) {
  const auto observations =
      collect_line_observations(machine, layout, victim, trials, config);
  return recover_full_key(observations);
}

FullKeyResult full_key_attack_streaming(sim::Machine& machine, const TableLayout& layout,
                                        const VictimFn& victim, std::uint64_t trials,
                                        const std::string& log_dir,
                                        const CacheAttackConfig& config) {
  {
    LineObservationLogWriter log(log_dir);
    collect_line_observations_into(machine, layout, victim, trials, config,
                                   [&](const LineObservation& obs) { log.append(obs); });
    log.finalize();
  }
  const LineObservationLogReader log(log_dir);
  return recover_full_key_streaming(
      [&](const std::function<void(const LineObservation&)>& visit) { log.replay(visit); });
}

}  // namespace hwsec::attacks
