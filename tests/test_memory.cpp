// Physical DRAM model.
#include <gtest/gtest.h>

#include "sim/memory.h"

namespace sim = hwsec::sim;

namespace {

TEST(Memory, SizeRoundsUpToPage) {
  sim::PhysicalMemory mem(sim::kPageSize + 1);
  EXPECT_EQ(mem.size(), 2 * sim::kPageSize);
}

TEST(Memory, ZeroInitialized) {
  sim::PhysicalMemory mem(sim::kPageSize);
  for (sim::PhysAddr a = 0; a < sim::kPageSize; a += 512) {
    EXPECT_EQ(mem.read8(a), 0u);
  }
}

TEST(Memory, ByteAndWordRoundTrip) {
  sim::PhysicalMemory mem(sim::kPageSize);
  mem.write32(0x100, 0x11223344);
  EXPECT_EQ(mem.read32(0x100), 0x11223344u);
  // Little-endian byte order.
  EXPECT_EQ(mem.read8(0x100), 0x44u);
  EXPECT_EQ(mem.read8(0x103), 0x11u);
  mem.write8(0x101, 0xAB);
  EXPECT_EQ(mem.read32(0x100), 0x1122AB44u);
}

TEST(Memory, BlockCopyAndFill) {
  sim::PhysicalMemory mem(sim::kPageSize);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  mem.write_block(0x10, data);
  std::vector<std::uint8_t> out(5);
  mem.read_block(0x10, out);
  EXPECT_EQ(out, data);
  mem.fill(0x10, 5, 0xEE);
  mem.read_block(0x10, out);
  EXPECT_EQ(out, std::vector<std::uint8_t>(5, 0xEE));
}

TEST(Memory, ContainsBoundsChecks) {
  sim::PhysicalMemory mem(sim::kPageSize);
  EXPECT_TRUE(mem.contains(0));
  EXPECT_TRUE(mem.contains(sim::kPageSize - 4, 4));
  EXPECT_FALSE(mem.contains(sim::kPageSize - 3, 4));
  EXPECT_FALSE(mem.contains(sim::kPageSize));
}

}  // namespace
