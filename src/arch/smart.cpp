#include "arch/smart.h"

namespace hwsec::arch {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace crypto = hwsec::crypto;

Smart::Smart(sim::Machine& machine, Config config)
    : Architecture(machine), config_(config) {
  rom_base_ = machine.alloc_frames(config_.rom_code_pages);
  key_base_ = machine.alloc_frame();

  key_.resize(32);
  for (auto& b : key_) {
    b = static_cast<std::uint8_t>(machine.rng().next_u32());
  }
  // The key also exists in the simulated memory map (it is real silicon
  // state) — which is exactly why an unconsidered DMA master can lift it.
  machine.memory().write_block(key_base_, key_);

  const sim::PhysAddr rom_end = rom_base_ + config_.rom_code_pages * sim::kPageSize;
  machine.mpu().add_region({
      .name = "smart-rom-code",
      .start = rom_base_,
      .end = rom_end,
      .readable = true,
      .writable = false,  // ROM.
      .executable = true,
      .code_gate_start = std::nullopt,
      .code_gate_end = std::nullopt,
      .entry_points = {rom_base_},  // enter only at the first instruction.
  });
  machine.mpu().add_region({
      .name = "smart-key",
      .start = key_base_,
      .end = key_base_ + sim::kPageSize,
      .readable = true,
      .writable = false,
      .executable = false,
      .code_gate_start = rom_base_,  // readable only while PC is in ROM.
      .code_gate_end = rom_end,
      .entry_points = {},
  });
}

Smart::~Smart() {
  if (!machine_->mpu().locked()) {
    machine_->mpu().remove_region("smart-rom-code");
    machine_->mpu().remove_region("smart-key");
  }
}

const tee::ArchitectureTraits& Smart::traits() const {
  static const tee::ArchitectureTraits kTraits{
      .name = "SMART",
      .reference = "[12]",
      .target = sim::DeviceClass::kEmbedded,
      .tcb = tee::TcbType::kRomLoader,
      .enclave_capacity = 0,  // attestation only, no isolation.
      .memory_encryption = false,
      .dma_defense = tee::DmaDefense::kNone,
      .cache_defense = tee::CacheDefense::kNoSharedCaches,
      .secure_peripheral_channels = false,
      .attestation = tee::AttestationSupport::kRemote,
      .code_isolation = false,
      .real_time_capable = false,  // interrupts disabled during attestation.
      .secure_boot = false,
      .secure_storage = false,
      .vendor_trust_required = false,
      .new_hardware_required = true,  // ROM + PC-gated key access.
      .considers_cache_sca = false,
      .considers_dma = false,
  };
  return kTraits;
}

tee::Expected<tee::EnclaveId> Smart::create_enclave(const tee::EnclaveImage& /*image*/) {
  return {.value = tee::kInvalidEnclave, .error = tee::EnclaveError::kUnsupported};
}

tee::EnclaveError Smart::destroy_enclave(tee::EnclaveId /*id*/) {
  return tee::EnclaveError::kUnsupported;
}

tee::EnclaveError Smart::call_enclave(tee::EnclaveId /*id*/, sim::CoreId /*core*/,
                                      const Service& /*service*/) {
  return tee::EnclaveError::kUnsupported;
}

tee::Expected<tee::AttestationReport> Smart::attest(tee::EnclaveId /*id*/,
                                                    const tee::Nonce& /*nonce*/) {
  return {.value = {}, .error = tee::EnclaveError::kUnsupported};
}

tee::Expected<tee::AttestationReport> Smart::probe_attestation(const tee::Nonce& nonce) {
  // Attest one page of application memory as the capability probe.
  const sim::PhysAddr region = machine_->alloc_frame();
  return {.value = attest_region(region, sim::kPageSize, nonce),
          .error = tee::EnclaveError::kOk};
}

std::vector<std::uint8_t> Smart::report_verification_key() const { return key_; }

tee::AttestationReport Smart::attest_region(sim::PhysAddr start, std::uint32_t len,
                                            const tee::Nonce& nonce) {
  // ROM routine, step 1: disable interrupts (SMART's atomicity requirement).
  interrupts_enabled_ = false;

  // Step 2: hash the region and HMAC the report body with the PC-gated
  // key (the gate is enforced by the MPU; see try_key_access).
  std::vector<std::uint8_t> region(len);
  machine_->memory().read_block(start, region);
  const tee::AttestationReport report =
      tee::make_report(key_, crypto::Sha256::hash(region), nonce);

  // Step 3: scrub traces, re-enable interrupts, jump to attested code.
  last_attestation_cycles_ =
      static_cast<sim::Cycle>(len) * config_.cycles_per_byte + 400 /* setup+cleanup */;
  machine_->cpu(0).add_cycles(last_attestation_cycles_);
  interrupts_enabled_ = true;
  return report;
}

sim::Fault Smart::try_key_access(sim::PhysAddr pc) const {
  return machine_->mpu().check(key_base_, sim::AccessType::kRead, pc);
}

}  // namespace hwsec::arch
