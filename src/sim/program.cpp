#include "sim/program.h"

namespace hwsec::sim {

ProgramBuilder& ProgramBuilder::emit(Instruction inst) {
  code_.push_back(inst);
  return *this;
}

ProgramBuilder& ProgramBuilder::emit_labelled_target(Instruction inst, const std::string& target) {
  fixups_.emplace_back(code_.size(), target);
  code_.push_back(inst);
  return *this;
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  if (!labels_.emplace(name, current_address()).second) {
    throw std::invalid_argument("duplicate label: " + name);
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::nop() { return emit({.op = Opcode::kNop}); }

ProgramBuilder& ProgramBuilder::li(Reg rd, std::int64_t imm) {
  return emit({.op = Opcode::kLoadImm, .rd = rd, .imm = imm});
}

#define HWSEC_ALU3(NAME, OPC)                                             \
  ProgramBuilder& ProgramBuilder::NAME(Reg rd, Reg rs1, Reg rs2) {        \
    return emit({.op = Opcode::OPC, .rd = rd, .rs1 = rs1, .rs2 = rs2});   \
  }
HWSEC_ALU3(add, kAdd)
HWSEC_ALU3(sub, kSub)
HWSEC_ALU3(and_, kAnd)
HWSEC_ALU3(or_, kOr)
HWSEC_ALU3(xor_, kXor)
HWSEC_ALU3(shl, kShl)
HWSEC_ALU3(shr, kShr)
HWSEC_ALU3(mul, kMul)
#undef HWSEC_ALU3

#define HWSEC_ALUI(NAME, OPC)                                                  \
  ProgramBuilder& ProgramBuilder::NAME(Reg rd, Reg rs1, std::int64_t imm) {    \
    return emit({.op = Opcode::OPC, .rd = rd, .rs1 = rs1, .imm = imm});        \
  }
HWSEC_ALUI(addi, kAddImm)
HWSEC_ALUI(andi, kAndImm)
HWSEC_ALUI(xori, kXorImm)
HWSEC_ALUI(shli, kShlImm)
HWSEC_ALUI(shri, kShrImm)
#undef HWSEC_ALUI

ProgramBuilder& ProgramBuilder::lw(Reg rd, Reg addr_base, std::int64_t offset) {
  return emit({.op = Opcode::kLoad, .rd = rd, .rs1 = addr_base, .imm = offset});
}

ProgramBuilder& ProgramBuilder::lb(Reg rd, Reg addr_base, std::int64_t offset) {
  return emit({.op = Opcode::kLoadByte, .rd = rd, .rs1 = addr_base, .imm = offset});
}

ProgramBuilder& ProgramBuilder::sw(Reg addr_base, std::int64_t offset, Reg value) {
  return emit({.op = Opcode::kStore, .rs1 = addr_base, .rs2 = value, .imm = offset});
}

ProgramBuilder& ProgramBuilder::sb(Reg addr_base, std::int64_t offset, Reg value) {
  return emit({.op = Opcode::kStoreByte, .rs1 = addr_base, .rs2 = value, .imm = offset});
}

ProgramBuilder& ProgramBuilder::clflush(Reg addr_base, std::int64_t offset) {
  return emit({.op = Opcode::kClflush, .rs1 = addr_base, .imm = offset});
}

ProgramBuilder& ProgramBuilder::br(BranchCond cond, Reg rs1, Reg rs2,
                                   const std::string& target_label) {
  return emit_labelled_target(
      {.op = Opcode::kBranch, .rs1 = rs1, .rs2 = rs2, .cond = cond}, target_label);
}

ProgramBuilder& ProgramBuilder::jump(const std::string& target_label) {
  return emit_labelled_target({.op = Opcode::kJump}, target_label);
}

ProgramBuilder& ProgramBuilder::jump_abs(VirtAddr target) {
  return emit({.op = Opcode::kJump, .imm = target});
}

ProgramBuilder& ProgramBuilder::jr(Reg target) {
  return emit({.op = Opcode::kJumpInd, .rs1 = target});
}

ProgramBuilder& ProgramBuilder::call(const std::string& target_label) {
  return emit_labelled_target({.op = Opcode::kCall}, target_label);
}

ProgramBuilder& ProgramBuilder::call_abs(VirtAddr target) {
  return emit({.op = Opcode::kCall, .imm = target});
}

ProgramBuilder& ProgramBuilder::callr(Reg target) {
  return emit({.op = Opcode::kCallInd, .rs1 = target});
}

ProgramBuilder& ProgramBuilder::ret() { return emit({.op = Opcode::kRet}); }

ProgramBuilder& ProgramBuilder::fence() { return emit({.op = Opcode::kFence}); }

ProgramBuilder& ProgramBuilder::rdcycle(Reg rd) {
  return emit({.op = Opcode::kRdCycle, .rd = rd});
}

ProgramBuilder& ProgramBuilder::ecall(std::int64_t service) {
  return emit({.op = Opcode::kEcall, .imm = service});
}

ProgramBuilder& ProgramBuilder::halt() { return emit({.op = Opcode::kHalt}); }

Program ProgramBuilder::build() {
  Program p;
  p.base = base_;
  p.code = code_;
  p.labels = labels_;
  for (const auto& [index, label] : fixups_) {
    auto it = labels_.find(label);
    if (it == labels_.end()) {
      throw std::invalid_argument("unresolved label: " + label);
    }
    p.code[index].imm = it->second;
  }
  return p;
}

}  // namespace hwsec::sim
