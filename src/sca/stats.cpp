#include "sca/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace hwsec::sca {

namespace {

/// Kahan-compensated accumulator. Power traces carry a large DC component
/// (baseline power plus noise floor), so naive `sum += x` loses the signal
/// bits once the running sum grows: at a 1e9 baseline over 1e5 samples the
/// naive unbiased variance is off by ~25% (see the Stats regression
/// tests). Compensation keeps the error at the rounding of the *inputs*,
/// independent of n.
struct KahanSum {
  double sum = 0.0;
  double compensation = 0.0;

  void add(double value) {
    const double y = value - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
};

/// Mean of xs via a shifted, compensated sum: accumulating (x - xs[0])
/// removes the DC component before it can swamp the mantissa, and Kahan
/// compensation absorbs what rounding remains.
double shifted_mean(std::span<const double> xs) {
  const double shift = xs.front();
  KahanSum sum;
  for (const double x : xs) {
    sum.add(x - shift);
  }
  return shift + sum.sum / static_cast<double>(xs.size());
}

}  // namespace

MeanVar mean_variance(std::span<const double> xs) {
  MeanVar mv;
  mv.n = xs.size();
  if (mv.n == 0) {
    return mv;
  }
  mv.mean = shifted_mean(xs);
  if (mv.n > 1) {
    KahanSum ss;
    for (const double x : xs) {
      const double d = x - mv.mean;
      ss.add(d * d);
    }
    mv.variance = ss.sum / static_cast<double>(mv.n - 1);
  }
  return mv;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("pearson needs two equal series of length >= 2");
  }
  const std::size_t n = xs.size();
  const double mx = shifted_mean(xs);
  const double my = shifted_mean(ys);
  KahanSum sxy, sxx, syy;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy.add(dx * dy);
    sxx.add(dx * dx);
    syy.add(dy * dy);
  }
  if (sxx.sum <= 0.0 || syy.sum <= 0.0) {
    return 0.0;
  }
  return sxy.sum / std::sqrt(sxx.sum * syy.sum);
}

PointCorrelation correlate_hypothesis(const std::vector<Trace>& traces,
                                      std::span<const double> hypothesis) {
  PointCorrelation result;
  if (traces.empty()) {
    // Empty set used to fall through to the size-mismatch message below;
    // name the actual problem.
    throw std::invalid_argument("correlate_hypothesis: empty trace set");
  }
  if (traces.size() != hypothesis.size()) {
    throw std::invalid_argument("one hypothesis value per trace required");
  }
  if (traces.size() < 2) {
    throw std::invalid_argument("correlation needs >= 2 traces");
  }
  const std::size_t n = traces.size();
  const std::size_t points = traces.front().size();
  // Ragged inputs used to surface as a std::out_of_range from a deep
  // Trace::at() inside the point loop; validate the whole matrix up front
  // with an error that names the offender.
  for (std::size_t t = 0; t < n; ++t) {
    if (traces[t].size() != points) {
      throw std::invalid_argument("ragged trace matrix: trace " + std::to_string(t) + " has " +
                                  std::to_string(traces[t].size()) + " points, expected " +
                                  std::to_string(points));
    }
  }
  if (points == 0) {
    return result;
  }

  // CPA runs this for every key guess of every campaign trial, so the
  // hypothesis statistics — mean, centered values, sum of squares — are
  // hoisted out of the point loop instead of being re-derived per point
  // (the old code called pearson() per point: O(points * n) redundant
  // hypothesis work per invocation).
  std::vector<double> h_dev(n);
  const double h_mean = shifted_mean(hypothesis);
  KahanSum shh;
  for (std::size_t t = 0; t < n; ++t) {
    h_dev[t] = hypothesis[t] - h_mean;
    shh.add(h_dev[t] * h_dev[t]);
  }
  if (shh.sum <= 0.0) {
    return result;  // constant hypothesis correlates with nothing.
  }

  std::vector<double> column(n);
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t t = 0; t < n; ++t) {
      column[t] = traces[t][p];
    }
    const double x_mean = shifted_mean(column);
    KahanSum sxy, sxx;
    for (std::size_t t = 0; t < n; ++t) {
      const double dx = column[t] - x_mean;
      sxy.add(dx * h_dev[t]);
      sxx.add(dx * dx);
    }
    if (sxx.sum <= 0.0) {
      continue;  // constant sample point.
    }
    const double rho = std::abs(sxy.sum) / std::sqrt(sxx.sum * shh.sum);
    if (rho > result.max_abs_rho) {
      result.max_abs_rho = rho;
      result.best_point = p;
    }
  }
  return result;
}

namespace {

/// Per-point mean and variance over a population of equal-length traces.
/// Trace-major iteration (cache-friendly over Trace rows) with per-point
/// shifted, compensated accumulators: the shift is the first trace's
/// value at that point, which removes the shared DC component exactly.
void population_stats(const std::vector<Trace>& population, std::vector<double>& means,
                      std::vector<double>& vars) {
  const std::size_t points = population.front().size();
  const Trace& reference = population.front();
  means.assign(points, 0.0);
  vars.assign(points, 0.0);
  std::vector<double> comp(points, 0.0);
  for (const Trace& t : population) {
    for (std::size_t p = 0; p < points; ++p) {
      const double y = (t[p] - reference[p]) - comp[p];
      const double s = means[p] + y;
      comp[p] = (s - means[p]) - y;
      means[p] = s;
    }
  }
  const double n = static_cast<double>(population.size());
  for (std::size_t p = 0; p < points; ++p) {
    means[p] = reference[p] + means[p] / n;
  }
  if (population.size() > 1) {
    std::fill(comp.begin(), comp.end(), 0.0);
    for (const Trace& t : population) {
      for (std::size_t p = 0; p < points; ++p) {
        const double d = t[p] - means[p];
        const double y = d * d - comp[p];
        const double s = vars[p] + y;
        comp[p] = (s - vars[p]) - y;
        vars[p] = s;
      }
    }
    for (double& v : vars) {
      v /= (n - 1.0);
    }
  }
}

}  // namespace

double max_welch_t(const std::vector<Trace>& population_a,
                   const std::vector<Trace>& population_b) {
  if (population_a.size() < 2 || population_b.size() < 2) {
    throw std::invalid_argument("Welch t-test needs >= 2 traces per population");
  }
  std::vector<double> ma, va, mb, vb;
  population_stats(population_a, ma, va);
  population_stats(population_b, mb, vb);
  const std::size_t points = std::min(ma.size(), mb.size());
  const double na = static_cast<double>(population_a.size());
  const double nb = static_cast<double>(population_b.size());
  double max_t = 0.0;
  for (std::size_t p = 0; p < points; ++p) {
    const double denom = std::sqrt(va[p] / na + vb[p] / nb);
    if (denom <= 1e-12) {
      continue;
    }
    max_t = std::max(max_t, std::abs((ma[p] - mb[p]) / denom));
  }
  return max_t;
}

double max_snr(const std::vector<std::vector<Trace>>& classes) {
  std::vector<std::vector<double>> class_means;
  std::vector<std::vector<double>> class_vars;
  std::size_t points = 0;
  for (const auto& cls : classes) {
    if (cls.empty()) {
      continue;
    }
    std::vector<double> m, v;
    population_stats(cls, m, v);
    points = points == 0 ? m.size() : std::min(points, m.size());
    class_means.push_back(std::move(m));
    class_vars.push_back(std::move(v));
  }
  if (class_means.size() < 2 || points == 0) {
    return 0.0;
  }
  double best = 0.0;
  std::vector<double> point_means(class_means.size());
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t c = 0; c < class_means.size(); ++c) {
      point_means[c] = class_means[c][p];
    }
    const MeanVar signal = mean_variance(point_means);
    double noise = 0.0;
    for (std::size_t c = 0; c < class_vars.size(); ++c) {
      noise += class_vars[c][p];
    }
    noise /= static_cast<double>(class_vars.size());
    if (noise > 1e-12) {
      best = std::max(best, signal.variance / noise);
    }
  }
  return best;
}

double max_dom(const std::vector<Trace>& population_a, const std::vector<Trace>& population_b) {
  if (population_a.empty() || population_b.empty()) {
    return 0.0;
  }
  std::vector<double> ma, va, mb, vb;
  population_stats(population_a, ma, va);
  population_stats(population_b, mb, vb);
  const std::size_t points = std::min(ma.size(), mb.size());
  double best = 0.0;
  for (std::size_t p = 0; p < points; ++p) {
    best = std::max(best, std::abs(ma[p] - mb[p]));
  }
  return best;
}

}  // namespace hwsec::sca
