// Crash-safe persistence for long campaigns.
//
// Two layers:
//  * write_file_atomic — write-to-temp + std::rename, so a reader (or a
//    resumed run) only ever sees the previous complete file or the new
//    complete file, never a torn write. Used for every BENCH_*.json and
//    for checkpoint saves.
//  * CheckpointFile — a keyed store of completed trial slots for one
//    campaign, identified by (campaign seed, trial count, result size)
//    plus an optional owner scope. The resilient runner saves it
//    periodically; on restart, load() restores finished slots and the
//    runner re-executes only the rest. Because trial i's result is a pure
//    function of (seed, i), a resumed campaign is bit-identical to an
//    uninterrupted one.
//
// The scope exists because campaign-config identity alone is too weak in
// a multi-tenant world: two hwsecd tenants submitting byte-identical specs
// would otherwise share one checkpoint identity and silently cross-resume
// each other's jobs. A non-empty scope (the daemon uses "tenant/job-id")
// is folded into the header, so a same-config checkpoint written under a
// different scope is rejected as a header mismatch. An empty scope keeps
// the v2 header byte-identical to pre-scope files.
//
// File format (text, one record per line, hex-encoded payloads):
//   hwsec-checkpoint v2 seed=<u64> trials=<n> result_bytes=<k>[ scope=<hex>]
//   ok <index> <attempts> <hex result bytes>
//   err <index> <attempts> <kind> <hex detail> <hex machine>
//   end <record count> <fnv1a-64 of header+records, 16 hex digits>
// load() never throws: a file whose header does not match the campaign,
// whose trailer is missing/inconsistent (a torn write), or whose content
// checksum disagrees (a bit flip inside otherwise well-formed hex) is
// ignored wholesale with a stderr warning — the campaign starts fresh.
// v1 files (no checksum) are likewise rejected as a header mismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace hwsec::core {

/// Atomically replaces `path` with `content`. Returns false (leaving any
/// previous file intact) if the temporary cannot be written or renamed.
bool write_file_atomic(const std::string& path, const std::string& content);

struct CheckpointRecord {
  bool ok = false;
  unsigned attempts = 1;
  std::string payload;    ///< raw Result bytes when ok.
  std::uint8_t kind = 0;  ///< ErrorKind when !ok.
  std::string detail;     ///< error detail when !ok.
  std::string machine;    ///< machine profile attribution when !ok (may be empty).
};

class CheckpointFile {
 public:
  /// `scope` namespaces the checkpoint identity beyond the campaign config
  /// (empty = legacy single-owner identity). Arbitrary bytes are fine; the
  /// header stores it hex-encoded.
  CheckpointFile(std::uint64_t seed, std::size_t trials, std::size_t result_bytes,
                 std::string scope = {});

  /// Restores records from `path`. Returns true iff the file exists, its
  /// header matches this campaign, every record parses, and the content
  /// checksum verifies; otherwise the store is left empty. Never throws:
  /// a rejected (present but damaged) file logs a warning and bumps the
  /// checkpoint_load_rejected counter; an absent file is silently fresh.
  bool load(const std::string& path);

  /// Inserts or replaces the record for `index`. Not thread-safe; the
  /// caller serializes (the resilient runner holds one mutex around
  /// record+save).
  void record(std::size_t index, CheckpointRecord rec);

  const std::map<std::size_t, CheckpointRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Serializes the store and writes it via write_file_atomic. Best
  /// effort: returns false on I/O failure (the campaign keeps running).
  bool save(const std::string& path) const;

 private:
  bool load_or_reject(std::istream& in, const std::string& path);
  static void warn_rejected(const std::string& path, const std::string& reason);

  std::string header_line() const;

  std::uint64_t seed_;
  std::size_t trials_;
  std::size_t result_bytes_;
  std::string scope_;
  std::map<std::size_t, CheckpointRecord> records_;
};

}  // namespace hwsec::core
