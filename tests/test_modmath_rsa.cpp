// Modular arithmetic, Montgomery reduction, and RSA round trips —
// including the structural properties the §5 attacks rely on.
#include <gtest/gtest.h>

#include "crypto/modmath.h"
#include "crypto/rsa.h"
#include "sim/rng.h"

namespace crypto = hwsec::crypto;

namespace {

TEST(ModMath, PowmodSmallCases) {
  EXPECT_EQ(crypto::powmod(2, 10, 1000), 24u);
  EXPECT_EQ(crypto::powmod(3, 0, 7), 1u);
  EXPECT_EQ(crypto::powmod(0, 5, 7), 0u);
  EXPECT_EQ(crypto::powmod(7, 1, 13), 7u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(crypto::powmod(123456789, 1000000006, 1000000007), 1u);
}

TEST(ModMath, GcdAndInverse) {
  EXPECT_EQ(crypto::gcd(12, 18), 6u);
  EXPECT_EQ(crypto::gcd(17, 31), 1u);
  const auto inv = crypto::invmod(3, 11);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((*inv * 3) % 11, 1u);
  EXPECT_FALSE(crypto::invmod(6, 9).has_value());
}

TEST(ModMath, MillerRabinKnownPrimesAndComposites) {
  EXPECT_TRUE(crypto::is_prime(2));
  EXPECT_TRUE(crypto::is_prime(3));
  EXPECT_TRUE(crypto::is_prime(2147483647ull));        // 2^31-1.
  EXPECT_TRUE(crypto::is_prime(67280421310721ull));    // factor of F_6.
  EXPECT_FALSE(crypto::is_prime(1));
  EXPECT_FALSE(crypto::is_prime(561));                 // Carmichael.
  EXPECT_FALSE(crypto::is_prime(3215031751ull));       // strong pseudoprime to 2,3,5,7.
  EXPECT_FALSE(crypto::is_prime(2147483647ull * 3));
}

TEST(ModMath, GenPrimeHasExactBitLength) {
  hwsec::sim::Rng rng(1);
  for (std::uint32_t bits : {8u, 16u, 31u}) {
    const crypto::u64 p = crypto::gen_prime(bits, rng);
    EXPECT_TRUE(crypto::is_prime(p));
    EXPECT_GE(p, 1ull << (bits - 1));
    EXPECT_LT(p, 1ull << bits);
  }
}

class MontgomeryTest : public ::testing::TestWithParam<crypto::u64> {};

TEST_P(MontgomeryTest, MulMatchesSchoolbook) {
  const crypto::u64 n = GetParam();
  const crypto::Montgomery mont(n);
  hwsec::sim::Rng rng(n);
  for (int i = 0; i < 200; ++i) {
    const crypto::u64 a = rng.next_u64() % n;
    const crypto::u64 b = rng.next_u64() % n;
    const crypto::u64 am = mont.to_mont(a);
    const crypto::u64 bm = mont.to_mont(b);
    EXPECT_EQ(mont.from_mont(mont.mul(am, bm)), crypto::mulmod(a, b, n));
    EXPECT_EQ(mont.from_mont(mont.mul_ct(am, bm)), crypto::mulmod(a, b, n));
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, MontgomeryTest,
                         ::testing::Values(2147483647ull,            // prime
                                           0x7fffffffffffffe7ull,    // large prime
                                           3ull * 2147483647ull,     // composite
                                           1000000007ull * 998244353ull));

TEST(Montgomery, ExtraReductionsOccurForLargeModuli) {
  // P(extra reduction) ≈ n / (4·2^64): only moduli that use most of the
  // word width produce a usable timing signal. This is exactly why the
  // RSA key generator targets ~62-bit moduli.
  const crypto::Montgomery mont(0x7fffffffffffffe7ull);
  hwsec::sim::Rng rng(0xF00D);
  int extras = 0;
  for (int i = 0; i < 2000; ++i) {
    bool extra = false;
    mont.mul(rng.next_u64() % mont.modulus(), rng.next_u64() % mont.modulus(), &extra);
    extras += extra ? 1 : 0;
  }
  EXPECT_GT(extras, 50);
  EXPECT_LT(extras, 1950);
}

TEST(Montgomery, ExtraReductionsVanishForSmallModuli) {
  const crypto::Montgomery mont(2147483647ull);
  hwsec::sim::Rng rng(0xF00D);
  int extras = 0;
  for (int i = 0; i < 2000; ++i) {
    bool extra = false;
    mont.mul(rng.next_u64() % mont.modulus(), rng.next_u64() % mont.modulus(), &extra);
    extras += extra ? 1 : 0;
  }
  EXPECT_LT(extras, 5) << "a 31-bit modulus leaves the timing channel silent";
}

TEST(Rsa, RoundTripSignVerify) {
  hwsec::sim::Rng rng(77);
  const auto key = crypto::rsa_generate(rng);
  EXPECT_EQ(key.p * key.q, key.n);
  for (crypto::u64 m : {2ull, 12345ull, 999999999ull}) {
    const crypto::u64 c = crypto::rsa_public(m % key.n, key);
    EXPECT_EQ(crypto::rsa_private_naive(c, key), m % key.n);
    EXPECT_EQ(crypto::rsa_private_ladder(c, key), m % key.n);
    const crypto::u64 s = crypto::rsa_sign_crt(m % key.n, key);
    EXPECT_EQ(crypto::rsa_public(s, key), m % key.n);
  }
}

TEST(Rsa, CrtEqualsDirectExponentiation) {
  hwsec::sim::Rng rng(31);
  const auto key = crypto::rsa_generate(rng);
  for (crypto::u64 m = 2; m < 50; ++m) {
    EXPECT_EQ(crypto::rsa_sign_crt(m, key), crypto::powmod(m, key.d, key.n));
  }
}

TEST(Rsa, NaiveLeaksDataDependentTime) {
  hwsec::sim::Rng rng(5);
  const auto key = crypto::rsa_generate(rng);
  std::uint64_t t1 = 0, t2 = 0;
  crypto::Instrumentation i1, i2;
  i1.tick = [&t1](std::uint64_t c) { t1 += c; };
  i2.tick = [&t2](std::uint64_t c) { t2 += c; };
  crypto::rsa_private_naive(2, key, i1);
  crypto::rsa_private_naive(key.n - 2, key, i2);
  // Different ciphertexts take different extra-reduction paths: the total
  // cost must not be constant across inputs.
  EXPECT_NE(t1, t2);
}

TEST(Rsa, LadderIsConstantTime) {
  hwsec::sim::Rng rng(5);
  const auto key = crypto::rsa_generate(rng);
  std::uint64_t t1 = 0, t2 = 0;
  crypto::Instrumentation i1, i2;
  i1.tick = [&t1](std::uint64_t c) { t1 += c; };
  i2.tick = [&t2](std::uint64_t c) { t2 += c; };
  crypto::rsa_private_ladder(2, key, i1);
  crypto::rsa_private_ladder(key.n - 2, key, i2);
  EXPECT_EQ(t1, t2);
}

TEST(Rsa, CheckedSignRefusesFaultyResult) {
  hwsec::sim::Rng rng(13);
  const auto key = crypto::rsa_generate(rng);
  crypto::Instrumentation faulting;
  bool first = true;
  faulting.fault = [&first](std::uint32_t v) {
    if (first) {
      first = false;
      return v ^ 0x40u;
    }
    return v;
  };
  EXPECT_EQ(crypto::rsa_sign_crt_checked(1234, key, faulting), 0u)
      << "verify-before-release must refuse a glitched signature";
  crypto::Instrumentation clean;
  EXPECT_NE(crypto::rsa_sign_crt_checked(1234, key, clean), 0u);
}

}  // namespace
