#include "core/shard/supervisor.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <deque>
#include <thread>

#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "core/shard/net.h"
#include "core/shard/transport.h"
#include "core/shard/wire.h"
#include "core/shutdown.h"

namespace hwsec::core::shard::detail_shard {

namespace {

struct Obs {
  static const obs::Counter& assignments() {
    static const obs::Counter c = obs::counter("shard_assignments");
    return c;
  }
  static const obs::Counter& migrations() {
    static const obs::Counter c = obs::counter("shard_migrations");
    return c;
  }
  static const obs::Counter& deaths() {
    static const obs::Counter c = obs::counter("shard_worker_deaths");
    return c;
  }
  static const obs::Counter& hangs() {
    static const obs::Counter c = obs::counter("shard_worker_hangs");
    return c;
  }
  static const obs::Counter& respawns() {
    static const obs::Counter c = obs::counter("shard_worker_respawns");
    return c;
  }
  static const obs::Counter& duplicates() {
    static const obs::Counter c = obs::counter("shard_duplicate_trials");
    return c;
  }
  static const obs::Counter& fallback() {
    static const obs::Counter c = obs::counter("shard_fallback_trials");
    return c;
  }
  static const obs::Counter& remote_workers() {
    static const obs::Counter c = obs::counter("shard_remote_workers");
    return c;
  }
  static const obs::Counter& reconnects() {
    static const obs::Counter c = obs::counter("shard_remote_reconnects");
    return c;
  }
  static const obs::Counter& rejected() {
    static const obs::Counter c = obs::counter("shard_handshakes_rejected");
    return c;
  }
  static const obs::Gauge& live_workers() {
    static const obs::Gauge g = obs::gauge("shard_live_workers");
    return g;
  }
  static const obs::Gauge& heartbeat_age_ms() {
    static const obs::Gauge g = obs::gauge("shard_heartbeat_age_ms");
    return g;
  }
};

using Clock = std::chrono::steady_clock;

struct Assignment {
  std::uint64_t shard_id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint32_t attempt = 0;   ///< how many times this range was (re)assigned before.
  bool split_done = false;     ///< straggler tail already migrated once.
};

/// One worker the supervisor talks to — a forked child behind a pipe pair,
/// a dialed remote host, or an inbound TCP worker. The scheduler treats
/// them identically; only lifecycle differs (waitpid/SIGKILL for locals,
/// transport close + re-dial for remotes).
struct WorkerLink {
  pid_t pid = -1;  ///< >= 0: forked local worker (waitpid target).
  std::unique_ptr<Transport> transport;
  Clock::time_point last_seen;
  std::optional<Assignment> current;
  bool alive = false;
  bool kill_sent = false;  ///< hang detector already SIGKILLed it (locals).
  int host_index = -1;     ///< >= 0: dialed slot for config.hosts[host_index].
  bool inbound = false;    ///< accepted via the listener.

  bool idle() const { return alive && !current.has_value(); }
  bool local() const { return host_index < 0 && !inbound; }
};

/// Dial budget/backoff for one configured remote host.
struct HostState {
  unsigned attempts = 0;  ///< dial attempts spent (initial dial included).
  Clock::time_point next_attempt;
  WorkerLink* link = nullptr;  ///< the (stable) worker slot for this host.
};

class Supervisor {
 public:
  Supervisor(const ShardJob& job, const ShardConfig& config, const ResilienceConfig& res)
      : job_(job),
        config_(config),
        res_(res),
        checkpointing_(!res.checkpoint_path.empty()),
        checkpoint_(job.seed, job.trials, job.result_bytes, res.checkpoint_scope) {}

  SupervisorResult run() {
    obs::Span span("shard_campaign", static_cast<std::int64_t>(job_.trials), "trials");
    load_checkpoint();
    plan_shards();

    const bool remote = !config_.hosts.empty() || config_.listen;
    if (remote && config_.remote_spec_json.empty()) {
      throw SimError(ErrorKind::kConfigError,
                     "remote shard workers require a campaign spec "
                     "(ShardConfig::remote_spec_json is empty)");
    }
    if (config_.processes == 0 && !remote) {
      run_fallback();
      finish();
      return std::move(result_);
    }

    SigpipeIgnore no_sigpipe;
    if (remote) {
      remote_info_.spec_json = config_.remote_spec_json;
      remote_info_.digest = fnv1a64(config_.remote_spec_json);
      remote_info_.heartbeat_ms =
          static_cast<std::uint32_t>(config_.heartbeat_interval.count());
      remote_info_.wall_clock_timeout_ms =
          static_cast<std::uint32_t>(res_.wall_clock_timeout.count());
      remote_info_.chaos = res_.chaos;
    }
    for (unsigned i = 0; i < config_.processes; ++i) {
      workers_.push_back(std::make_unique<WorkerLink>());
      spawn(*workers_.back());
    }
    host_state_.resize(config_.hosts.size());
    for (std::size_t h = 0; h < config_.hosts.size(); ++h) {
      workers_.push_back(std::make_unique<WorkerLink>());
      workers_.back()->host_index = static_cast<int>(h);
      host_state_[h].link = workers_.back().get();
      dial_host(h);
    }
    if (config_.listen) {
      std::string error;
      listen_fd_ = tcp_listen(config_.listen_address, config_.listen_port, error);
      if (listen_fd_ < 0) {
        throw SimError(ErrorKind::kConfigError, "shard listener: " + error);
      }
      if (config_.on_listening) {
        config_.on_listening(tcp_local_port(listen_fd_));
      }
    }
    listen_deadline_ = Clock::now() + config_.listen_grace;

    while (!done() && !should_stop()) {
      pump_events();
      reap_exits();
      detect_hangs();
      revive_dead();
      assign_work();
      migrate_stragglers();
    }

    shutdown_fleet();
    if (!done() && !result_.shutdown && !result_.failfast_tripped) {
      // Every fork and every host avenue is exhausted but trials remain:
      // finish them here. Robustness means the campaign converges even
      // with zero workers anywhere.
      run_fallback();
    }
    finish();
    return std::move(result_);
  }

 private:
  // ---- planning ---------------------------------------------------------

  void load_checkpoint() {
    if (!checkpointing_ || !checkpoint_.load(res_.checkpoint_path)) {
      return;
    }
    for (const auto& [index, rec] : checkpoint_.records()) {
      result_.records[index] = rec;
      result_.restored.insert(index);
    }
  }

  void plan_shards() {
    const std::size_t fan_out =
        static_cast<std::size_t>(config_.processes) + config_.hosts.size();
    const std::size_t auto_size =
        fan_out == 0 ? job_.trials : std::max<std::size_t>(1, job_.trials / (fan_out * 4));
    const std::size_t shard_size =
        config_.shard_size == 0 ? std::max<std::size_t>(1, auto_size) : config_.shard_size;
    std::uint64_t next_id = 0;
    for (std::size_t begin = 0; begin < job_.trials; begin += shard_size) {
      const std::size_t end = std::min(job_.trials, begin + shard_size);
      // Skip shards whose every trial is already restored from checkpoint.
      bool has_pending = false;
      for (std::size_t i = begin; i < end && !has_pending; ++i) {
        has_pending = result_.records.count(i) == 0;
      }
      if (has_pending) {
        pending_.push_back(Assignment{next_id, begin, end, 0, false});
      }
      ++next_id;
    }
    result_.stats.shards_total = pending_.size();
  }

  bool done() const { return result_.records.size() == job_.trials; }

  bool should_stop() {
    if (shutdown_requested()) {
      result_.shutdown = true;
      return true;
    }
    if (result_.failfast_tripped) {
      // Drain: stop once no worker still holds a shard (in-flight shards
      // finish and their slots are recorded/checkpointed, matching the
      // in-process fail-fast contract).
      return std::none_of(workers_.begin(), workers_.end(), [](const auto& w) {
        return w->alive && w->current;
      });
    }
    const bool any_alive = std::any_of(workers_.begin(), workers_.end(),
                                       [](const auto& w) { return w->alive; });
    if (any_alive) {
      // Someone is working; the inbound-wait horizon restarts from here.
      listen_deadline_ = Clock::now() + config_.listen_grace;
      return false;
    }
    // No way to make progress? (all dead; fork, re-dial, and inbound-wait
    // budgets gone) -> fallback.
    const bool fork_possible =
        config_.processes > 0 && result_.stats.worker_respawns < config_.max_respawns;
    const bool dial_possible =
        std::any_of(host_state_.begin(), host_state_.end(),
                    [this](const HostState& h) { return h.attempts < config_.max_reconnects; });
    const bool inbound_possible = listen_fd_ >= 0 && Clock::now() < listen_deadline_;
    return !fork_possible && !dial_possible && !inbound_possible;
  }

  // ---- local process management -----------------------------------------

  void spawn(WorkerLink& link) {
    int cmd_pipe[2];
    int out_pipe[2];
    if (pipe(cmd_pipe) != 0) {
      return;
    }
    if (pipe(out_pipe) != 0) {
      close(cmd_pipe[0]);
      close(cmd_pipe[1]);
      return;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      for (const int fd : {cmd_pipe[0], cmd_pipe[1], out_pipe[0], out_pipe[1]}) {
        close(fd);
      }
      return;
    }
    if (pid == 0) {
      // Child: keep only our two pipe ends; drop every other worker's
      // transport and the listener (closing them here touches only the
      // child's fd table).
      close(cmd_pipe[1]);
      close(out_pipe[0]);
      for (const auto& other : workers_) {
        if (other && other->transport) {
          other->transport->close();
        }
      }
      if (listen_fd_ >= 0) {
        close(listen_fd_);
      }
      WorkerEnv env;
      env.heartbeat_interval = config_.heartbeat_interval;
      env.chaos = res_.chaos;
      int code = 1;
      try {
        const TrialRunner runner = job_.make_runner();
        code = worker_loop(cmd_pipe[0], out_pipe[1], env, runner);
      } catch (...) {
        code = 4;  // runner construction failed; supervisor migrates.
      }
      _exit(code);  // never unwind into the forked parent's state.
    }
    close(cmd_pipe[0]);
    close(out_pipe[1]);
    link.pid = pid;
    auto transport =
        std::make_unique<FdTransport>(out_pipe[0], cmd_pipe[1], kMaxShardFramePayload);
    transport->set_label("pipe");
    link.transport = std::move(transport);
    link.current.reset();
    link.kill_sent = false;
    link.last_seen = Clock::now();
    link.alive = true;
    Obs::live_workers().set(static_cast<std::int64_t>(live_count()));
  }

  std::size_t live_count() const {
    return static_cast<std::size_t>(std::count_if(
        workers_.begin(), workers_.end(), [](const auto& w) { return w->alive; }));
  }

  // ---- remote host management -------------------------------------------

  /// One dial attempt against config_.hosts[h]: connect (or the test
  /// dialer), decorate, handshake, bind into the host's worker slot. The
  /// attempt spends budget whether or not it succeeds, so an unreachable
  /// host converges to fallback instead of spinning forever.
  bool dial_host(std::size_t h) {
    HostState& state = host_state_[h];
    state.attempts += 1;
    if (state.attempts > 1) {
      result_.stats.remote_reconnects += 1;
      Obs::reconnects().add(1);
    }
    const auto shift = std::min<unsigned>(state.attempts - 1, 6);
    state.next_attempt = Clock::now() + config_.reconnect_backoff * (1u << shift);

    const HostSpec& host = config_.hosts[h];
    std::string error;
    std::unique_ptr<Transport> transport;
    if (config_.dialer) {
      transport = config_.dialer(host, error);
    } else {
      const int fd = tcp_connect(host, config_.connect_timeout, error);
      if (fd >= 0) {
        auto fd_transport = std::make_unique<FdTransport>(fd, fd, kMaxShardFramePayload);
        fd_transport->set_label("tcp:" + host.host + ":" + std::to_string(host.port));
        transport = std::move(fd_transport);
      }
    }
    if (transport == nullptr) {
      return false;
    }
    if (config_.transport_decorator) {
      transport = config_.transport_decorator(std::move(transport));
    }
    if (!adopt_remote(*state.link, std::move(transport))) {
      return false;
    }
    state.link->host_index = static_cast<int>(h);
    return true;
  }

  /// Handshakes a fresh remote transport and, on success, binds it into
  /// `link` as a live worker.
  bool adopt_remote(WorkerLink& link, std::unique_ptr<Transport> transport) {
    HelloPayload hello;
    std::string error;
    if (!handshake_accept(*transport, remote_info_, config_.handshake_timeout, hello,
                          error)) {
      result_.stats.handshakes_rejected += 1;
      Obs::rejected().add(1);
      obs::Tracer::instance().instant("shard_handshake_rejected", 0, "count");
      transport->close();
      return false;
    }
    link.pid = -1;
    link.transport = std::move(transport);
    link.current.reset();
    link.kill_sent = false;
    link.last_seen = Clock::now();
    link.alive = true;
    result_.stats.remote_workers += 1;
    Obs::remote_workers().add(1);
    Obs::live_workers().set(static_cast<std::int64_t>(live_count()));
    return true;
  }

  void accept_inbound() {
    while (listen_fd_ >= 0) {
      const int fd = tcp_accept(listen_fd_);
      if (fd < 0) {
        return;
      }
      WorkerLink* slot = inbound_slot();
      if (slot == nullptr) {
        close(fd);  // over max_inbound_workers: refuse at the door.
        continue;
      }
      auto transport = std::make_unique<FdTransport>(fd, fd, kMaxShardFramePayload);
      transport->set_label("tcp-inbound");
      std::unique_ptr<Transport> wrapped = std::move(transport);
      if (config_.transport_decorator) {
        wrapped = config_.transport_decorator(std::move(wrapped));
      }
      adopt_remote(*slot, std::move(wrapped));
    }
  }

  /// A dead inbound slot to reuse, or a fresh one while under the cap
  /// (dead slots are recycled so reconnecting workers never grow the
  /// vector unboundedly).
  WorkerLink* inbound_slot() {
    std::size_t inbound_total = 0;
    WorkerLink* dead = nullptr;
    for (const auto& link : workers_) {
      if (!link->inbound) {
        continue;
      }
      inbound_total += 1;
      if (!link->alive && dead == nullptr) {
        dead = link.get();
      }
    }
    if (dead != nullptr) {
      return dead;
    }
    if (inbound_total >= config_.max_inbound_workers) {
      return nullptr;
    }
    workers_.push_back(std::make_unique<WorkerLink>());
    workers_.back()->inbound = true;
    return workers_.back().get();
  }

  // ---- death / revival --------------------------------------------------

  /// A worker stopped being useful (exit, hang-kill, disconnect, corrupt
  /// stream): salvage its unfinished shard for the survivors and account
  /// the death.
  void handle_death(WorkerLink& link, bool hang) {
    if (!link.alive) {
      return;
    }
    link.alive = false;
    if (link.transport) {
      link.transport->close();
      link.transport.reset();
    }
    if (stopping_) {
      // Told to exit; an exit during teardown is obedience, not a death.
      Obs::live_workers().set(static_cast<std::int64_t>(live_count()));
      return;
    }
    result_.stats.worker_deaths += 1;
    Obs::deaths().add(1);
    if (hang) {
      result_.stats.worker_hangs += 1;
      Obs::hangs().add(1);
    }
    obs::Tracer::instance().instant(hang ? "shard_worker_hang" : "shard_worker_death",
                                    static_cast<std::int64_t>(link.pid), "pid");
    if (link.current.has_value()) {
      Assignment migrated = *link.current;
      migrated.attempt += 1;
      migrated.split_done = false;
      link.current.reset();
      if (has_pending_trials(migrated)) {
        pending_.push_front(migrated);  // recover lost work first.
        result_.stats.migrations += 1;
        Obs::migrations().add(1);
      }
    }
    Obs::live_workers().set(static_cast<std::int64_t>(live_count()));
  }

  void reap_exits() {
    for (auto& worker : workers_) {
      WorkerLink& link = *worker;
      if (link.pid < 0) {
        continue;
      }
      int status = 0;
      const pid_t got = waitpid(link.pid, &status, WNOHANG);
      if (got == link.pid) {
        link.pid = -1;
        handle_death(link, /*hang=*/link.kill_sent);
      }
    }
  }

  void detect_hangs() {
    if (config_.hang_timeout.count() <= 0) {
      return;
    }
    const auto now = Clock::now();
    std::int64_t max_age_ms = 0;
    for (auto& worker : workers_) {
      WorkerLink& link = *worker;
      if (!link.alive || link.kill_sent) {
        continue;
      }
      const auto age =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - link.last_seen);
      max_age_ms = std::max<std::int64_t>(max_age_ms, age.count());
      if (age > config_.hang_timeout) {
        if (link.pid >= 0) {
          // SIGKILL works on stopped processes too — this is the SIGSTOP
          // recovery path. The death is accounted when waitpid reaps it.
          kill(link.pid, SIGKILL);
          link.kill_sent = true;
        } else {
          // Remote hang: there is no process to kill, only a link to cut.
          // The heartbeat-timeout => disconnect => migrate row of the
          // failure matrix.
          handle_death(link, /*hang=*/true);
        }
      }
    }
    Obs::heartbeat_age_ms().set(max_age_ms);
  }

  void revive_dead() {
    if (pending_.empty() && done()) {
      return;
    }
    if (respawn_local()) {
      return;  // at most one revival per loop pass keeps backoff honest.
    }
    redial_hosts();
  }

  bool respawn_local() {
    const auto now = Clock::now();
    for (auto& worker : workers_) {
      WorkerLink& link = *worker;
      if (!link.local() || link.alive || link.pid >= 0) {
        continue;  // remote, alive, or dead-but-unreaped.
      }
      if (result_.stats.worker_respawns >= config_.max_respawns) {
        return false;
      }
      if (!respawn_after_.has_value()) {
        // Exponential backoff: 2^respawns * base, capped at 64x.
        const auto shift = std::min<std::uint64_t>(result_.stats.worker_respawns, 6);
        respawn_after_ = now + config_.respawn_backoff * (1 << shift);
      }
      if (now < *respawn_after_) {
        return false;  // back off before forking a replacement.
      }
      respawn_after_.reset();
      // The attempt spends budget whether or not fork() succeeds, so a
      // host that cannot fork converges to the in-process fallback instead
      // of spinning on retries forever.
      result_.stats.worker_respawns += 1;
      Obs::respawns().add(1);
      spawn(link);
      return true;
    }
    return false;
  }

  void redial_hosts() {
    const auto now = Clock::now();
    for (std::size_t h = 0; h < host_state_.size(); ++h) {
      HostState& state = host_state_[h];
      if (state.link->alive || state.link->pid >= 0) {
        continue;
      }
      if (state.attempts >= config_.max_reconnects || now < state.next_attempt) {
        continue;
      }
      dial_host(h);
      return;  // one dial per pass: a down fleet backs off, not storms.
    }
  }

  // ---- scheduling -------------------------------------------------------

  bool has_pending_trials(const Assignment& shard) const {
    for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
      if (result_.records.count(static_cast<std::size_t>(i)) == 0) {
        return true;
      }
    }
    return false;
  }

  void assign_work() {
    if (result_.failfast_tripped || result_.shutdown) {
      return;
    }
    for (auto& worker : workers_) {
      WorkerLink& link = *worker;
      if (pending_.empty()) {
        return;
      }
      if (!link.idle() || !link.transport) {
        continue;
      }
      Assignment shard = pending_.front();
      pending_.pop_front();
      if (!has_pending_trials(shard)) {
        continue;  // a duplicate/straggler split fully absorbed elsewhere.
      }
      AssignPayload payload;
      payload.shard_id = shard.shard_id;
      payload.begin = shard.begin;
      payload.end = shard.end;
      payload.attempt = shard.attempt;
      payload.done_mask.assign((shard.end - shard.begin + 7) / 8, 0);
      for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
        if (result_.records.count(static_cast<std::size_t>(i)) != 0) {
          payload.done_mask[static_cast<std::size_t>((i - shard.begin) >> 3)] |=
              static_cast<std::uint8_t>(1u << ((i - shard.begin) & 7));
        }
      }
      if (!link.transport->send(Frame{FrameType::kAssign, encode_assign(payload)})) {
        // The link died under the assignment (EPIPE / mid-frame drop): the
        // shard never reached the worker, so route it to a survivor. That
        // re-route is a migration even though the worker never held it.
        shard.attempt += 1;
        pending_.push_front(shard);
        result_.stats.migrations += 1;
        Obs::migrations().add(1);
        handle_death(link, /*hang=*/false);
        continue;
      }
      link.current = shard;
      result_.stats.assignments += 1;
      Obs::assignments().add(1);
    }
  }

  /// Straggler migration: the queue is dry, someone is idle, and a busy
  /// worker still owes many trials — peel off the tail half of its
  /// unfinished range for the idle one. Both may compute the overlap;
  /// records merge idempotently because trial bytes are index-pure.
  void migrate_stragglers() {
    if (!pending_.empty() || result_.failfast_tripped) {
      return;
    }
    const bool anyone_idle = std::any_of(workers_.begin(), workers_.end(),
                                         [](const auto& w) { return w->idle(); });
    if (!anyone_idle) {
      return;
    }
    for (auto& worker : workers_) {
      WorkerLink& link = *worker;
      if (!link.alive || !link.current.has_value() || link.current->split_done) {
        continue;
      }
      std::vector<std::uint64_t> unfinished;
      for (std::uint64_t i = link.current->begin; i < link.current->end; ++i) {
        if (result_.records.count(static_cast<std::size_t>(i)) == 0) {
          unfinished.push_back(i);
        }
      }
      if (unfinished.size() < 4) {
        continue;  // not worth the duplicate work.
      }
      Assignment tail;
      tail.shard_id = link.current->shard_id;
      tail.begin = unfinished[unfinished.size() / 2];
      tail.end = link.current->end;
      tail.attempt = link.current->attempt + 1;
      link.current->split_done = true;
      pending_.push_back(tail);
      result_.stats.migrations += 1;
      Obs::migrations().add(1);
      obs::Tracer::instance().instant("shard_straggler_split",
                                      static_cast<std::int64_t>(tail.begin), "begin");
      return;  // one split per pass.
    }
  }

  // ---- event pump -------------------------------------------------------

  void pump_events() {
    std::vector<pollfd> fds;
    std::vector<WorkerLink*> owners;
    for (auto& worker : workers_) {
      WorkerLink& link = *worker;
      if (link.alive && link.transport && link.transport->poll_fd() >= 0) {
        fds.push_back(pollfd{link.transport->poll_fd(), POLLIN, 0});
        owners.push_back(&link);
      }
    }
    const bool watch_listener = listen_fd_ >= 0 && !stopping_;
    if (watch_listener) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    }
    const int timeout_ms = 20;
    if (fds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
      return;
    }
    const int ready = poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready <= 0) {
      return;
    }
    for (std::size_t i = 0; i < owners.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      WorkerLink& link = *owners[i];
      if (!link.alive || !link.transport) {
        continue;  // an earlier event this pass already tore it down.
      }
      const bool open = link.transport->pump();
      Frame frame;
      while (link.alive && link.transport && link.transport->next(frame)) {
        handle_frame(link, frame);
      }
      if (!link.alive || !link.transport) {
        continue;  // handle_frame declared it dead.
      }
      if (link.transport->corrupt()) {
        if (link.pid >= 0) {
          kill(link.pid, SIGKILL);  // desynchronized stream: fail hard.
        }
        handle_death(link, /*hang=*/false);
        continue;
      }
      if (!open && link.pid < 0) {
        // Remote EOF is the death event itself (there is no exit status
        // coming); local EOF resolves through waitpid as before.
        handle_death(link, /*hang=*/false);
      }
    }
    if (watch_listener && (fds.back().revents & POLLIN) != 0) {
      accept_inbound();
    }
  }

  void handle_frame(WorkerLink& link, const Frame& frame) {
    link.last_seen = Clock::now();
    switch (frame.type) {
      case FrameType::kHeartbeat:
        break;
      case FrameType::kTrial: {
        TrialPayload trial;
        if (!decode_trial(frame.payload, trial) || trial.index >= job_.trials ||
            (trial.record.ok && trial.record.payload.size() != job_.result_bytes)) {
          // Malformed or lying record: drop the worker (and the rest of
          // its buffered frames with it).
          if (link.pid >= 0) {
            kill(link.pid, SIGKILL);
          }
          handle_death(link, /*hang=*/false);
          return;
        }
        record_trial(static_cast<std::size_t>(trial.index), std::move(trial.record));
        break;
      }
      case FrameType::kShardDone: {
        std::uint64_t shard_id = 0;
        if (decode_shard_done(frame.payload, shard_id) && link.current.has_value() &&
            link.current->shard_id == shard_id) {
          link.current.reset();
        }
        break;
      }
      default:
        break;  // forward-compatible: ignore unknown frames from this version.
    }
  }

  void record_trial(std::size_t index, CheckpointRecord rec) {
    if (result_.records.count(index) != 0) {
      result_.stats.duplicate_trials += 1;  // straggler overlap: idempotent.
      Obs::duplicates().add(1);
      return;
    }
    if (!rec.ok && res_.policy == FailurePolicy::kFailFast) {
      result_.failfast_tripped = true;
    }
    if (checkpointing_) {
      checkpoint_.record(index, rec);
      if (++completions_since_save_ >= std::max<std::size_t>(1, res_.checkpoint_every)) {
        completions_since_save_ = 0;
        checkpoint_.save(res_.checkpoint_path);
      }
    }
    result_.records[index] = std::move(rec);
    result_.stats.trials_executed += 1;
  }

  // ---- teardown ---------------------------------------------------------

  void shutdown_fleet() {
    stopping_ = true;
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& worker : workers_) {
      WorkerLink& link = *worker;
      if (link.alive && link.transport) {
        link.transport->send(Frame{FrameType::kShutdown, {}});
        link.transport->shutdown_writes();
      }
    }
    // Grace period: workers drain their current shard, see the shutdown
    // frame (or EOF) and exit; anything still alive after it is killed
    // (locals) or cut (remotes).
    const auto deadline = Clock::now() + std::chrono::milliseconds(2000);
    while (Clock::now() < deadline) {
      pump_events();  // keep merging records workers flush while draining.
      reap_exits();
      const bool anything_left =
          std::any_of(workers_.begin(), workers_.end(),
                      [](const auto& w) { return w->pid >= 0 || (w->alive && w->pid < 0); });
      if (!anything_left) {
        break;
      }
    }
    for (auto& worker : workers_) {
      WorkerLink& link = *worker;
      if (link.pid >= 0) {
        kill(link.pid, SIGKILL);
        waitpid(link.pid, nullptr, 0);
        link.pid = -1;
        handle_death(link, /*hang=*/false);
      }
      link.alive = false;
      if (link.transport) {
        link.transport->close();
        link.transport.reset();
      }
    }
    Obs::live_workers().set(0);
  }

  void run_fallback() {
    const TrialRunner runner = job_.make_runner();
    for (std::size_t i = 0; i < job_.trials; ++i) {
      if (shutdown_requested()) {
        result_.shutdown = true;
        break;
      }
      if (result_.failfast_tripped) {
        break;
      }
      if (result_.records.count(i) != 0) {
        continue;
      }
      record_trial(i, runner(i));
      result_.stats.fallback_trials += 1;
      Obs::fallback().add(1);
    }
  }

  void finish() {
    if (checkpointing_) {
      checkpoint_.save(res_.checkpoint_path);
    }
  }

  const ShardJob& job_;
  const ShardConfig& config_;
  const ResilienceConfig& res_;
  const bool checkpointing_;
  CheckpointFile checkpoint_;
  std::size_t completions_since_save_ = 0;
  std::deque<Assignment> pending_;
  std::vector<std::unique_ptr<WorkerLink>> workers_;  ///< stable addresses for HostState.
  std::vector<HostState> host_state_;
  RemoteCampaignInfo remote_info_;
  int listen_fd_ = -1;
  Clock::time_point listen_deadline_;
  std::optional<Clock::time_point> respawn_after_;
  bool stopping_ = false;
  SupervisorResult result_;
};

}  // namespace

SupervisorResult run_sharded(const ShardJob& job, const ShardConfig& config,
                             const ResilienceConfig& res) {
  if (job.make_runner == nullptr) {
    throw SimError(ErrorKind::kConfigError, "sharded campaign without a trial runner");
  }
  Supervisor supervisor(job, config, res);
  return supervisor.run();
}

}  // namespace hwsec::core::shard::detail_shard
