// E1 — regenerates Figure 1: "Adversary models and non-functional
// requirements (the darker the color, the higher the importance)".
//
// Every cell except the remote/local rows (constants straight from §2's
// text) and the physical-exposure factor (a documented model parameter)
// is MEASURED: attack probes run against each platform's machine model,
// and the performance/energy rows come from a reference workload.
//
// Paper's expected shape:
//   remote / local:           dark everywhere;
//   classical physical:       light on servers -> dark on embedded;
//   microarchitectural:       dark on servers -> light on embedded;
//   performance:              high on servers -> low on embedded;
//   energy budget (tightness): loose on servers -> tight on embedded.
#include <benchmark/benchmark.h>

#include "core/evaluation.h"
#include "table.h"

namespace core = hwsec::core;

namespace {

std::vector<core::PlatformEvaluation>& evaluations() {
  static auto evals = core::evaluate_all_platforms(/*seed=*/2019);
  return evals;
}

// google-benchmark wrapper: the per-platform evaluation cost itself is a
// meaningful number (it runs five attack probes + a workload).
void BM_EvaluatePlatform(benchmark::State& state) {
  const auto cls = static_cast<hwsec::sim::DeviceClass>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_platform(cls, 2019));
  }
}
BENCHMARK(BM_EvaluatePlatform)->Arg(0)->Arg(1)->Arg(2)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  hwsec::bench::section("E1 / Figure 1 — adversary models x platforms (measured)");
  std::cout << core::render_figure1(evaluations()) << "\n";
  std::cout << "legend: ' . '=0 (minor) ... '+++'=3 (critical), per measured level\n";

  hwsec::bench::section("measurements behind the matrix");
  Table t({"platform", "MIPS", "nJ/insn", "uarch ok", "phys ok", "exposure"},
          {12, 12, 12, 12, 12, 10});
  t.print_header();
  for (const auto& e : evaluations()) {
    t.print_row(e.platform, e.mips, e.nj_per_instruction, e.uarch_success_rate,
                e.physical_success_rate, e.physical_exposure);
  }

  hwsec::bench::section("attack probes (per platform)");
  Table p({"platform", "probe", "applicable", "succeeded", "detail"}, {12, 24, 12, 11, 44});
  p.print_header();
  for (const auto& e : evaluations()) {
    for (const auto& probe : e.uarch_probes) {
      p.print_row(e.platform, probe.name, probe.applicable, probe.succeeded, probe.detail);
    }
    for (const auto& probe : e.physical_probes) {
      p.print_row(e.platform, probe.name, probe.applicable, probe.succeeded, probe.detail);
    }
    p.print_rule();
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
