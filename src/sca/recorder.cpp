#include "sca/recorder.h"

#include <algorithm>

namespace hwsec::sca {

PowerTraceRecorder::PowerTraceRecorder(RecorderConfig config)
    : config_(config), rng_(config.seed) {}

void PowerTraceRecorder::begin_trace() {
  current_.clear();
  current_.reserve(reserve_hint_);
  previous_value_ = 0;
}

void PowerTraceRecorder::on_value(std::uint32_t value) {
  // Hiding by random delays: dummy samples (pure noise at the baseline
  // power level) push the real sample to a random position.
  if (config_.max_jitter > 0) {
    const std::uint32_t dummies =
        static_cast<std::uint32_t>(rng_.below(config_.max_jitter + 1));
    for (std::uint32_t i = 0; i < dummies; ++i) {
      current_.push_back(rng_.gaussian(0.0, config_.noise_sigma + config_.hiding_noise_sigma));
    }
  }
  const std::uint32_t signal_bits = config_.model == LeakageModel::kHammingWeight
                                        ? hamming_weight(value)
                                        : hamming_distance(value, previous_value_);
  previous_value_ = value;
  const double sigma = config_.noise_sigma + config_.hiding_noise_sigma;
  current_.push_back(config_.amplitude * static_cast<double>(signal_bits) +
                     rng_.gaussian(0.0, sigma));
}

Trace PowerTraceRecorder::end_trace(std::size_t fixed_length) {
  // High-water: never shrink a hint the capture driver pre-seeded with the
  // known fixed trace length (jittered traces vary slightly in length).
  reserve_hint_ =
      std::max(reserve_hint_, fixed_length != 0 ? fixed_length : current_.size());
  Trace out = std::move(current_);
  current_ = {};
  if (fixed_length != 0) {
    const double sigma = config_.noise_sigma + config_.hiding_noise_sigma;
    while (out.size() < fixed_length) {
      out.push_back(rng_.gaussian(0.0, sigma));
    }
    out.resize(fixed_length);
  }
  return out;
}

}  // namespace hwsec::sca
