#include "core/campaign.h"

#include <algorithm>

namespace hwsec::core {

CampaignSummary summarize(const std::vector<double>& outcomes) {
  CampaignSummary s;
  s.trials = outcomes.size();
  if (outcomes.empty()) {
    return s;
  }
  s.min = outcomes.front();
  s.max = outcomes.front();
  for (const double v : outcomes) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(outcomes.size());
  return s;
}

void run_parallel_tasks(const std::vector<std::function<void()>>& tasks, unsigned workers) {
  hwsec::sim::ThreadPool pool(workers);
  pool.parallel_for(tasks.size(), [&](std::size_t i) { tasks[i](); });
}

}  // namespace hwsec::core
