// TrustLite model (paper §3.3, [26]) and its TyTAN extension ([6]).
//
// TrustLite's lifecycle, faithfully staged:
//  1. register trustlets (create_enclave) — only possible pre-boot;
//  2. boot(): the Secure Loader (ROM) loads every trustlet, programs the
//     execution-aware MPU (each trustlet's data region is gated by its
//     own code region), then LOCKS the MPU configuration and starts the
//     OS. Protection regions are static from here on — the flexibility
//     limitation the paper notes ("a cleanup as in SMART is not needed
//     anymore", but nothing can be added either);
//  3. after boot: call_enclave / attest work; create_enclave returns
//     kConfigLocked.
//
// Like SMART/Sancus: DMA and side channels are out of the threat model.
//
// TyTAN (subclass) adds what the paper lists: secure boot (the loader
// verifies a fused measurement before starting), secure storage
// (seal/unseal bound to the trustlet measurement), real-time capability
// (preemptible trustlets — entry/exit never disables interrupts and has a
// bounded cost), and dynamic trustlet loading (the EA-MPU stays
// programmable through a trusted runtime instead of being hard-locked).
#pragma once

#include <optional>

#include "arch/domains.h"
#include "tee/architecture.h"

namespace hwsec::arch {

class TrustLite : public hwsec::tee::Architecture {
 public:
  struct Config {
    bool lock_mpu_at_boot = true;
  };

  explicit TrustLite(hwsec::sim::Machine& machine) : TrustLite(machine, Config{}) {}
  TrustLite(hwsec::sim::Machine& machine, Config config);
  ~TrustLite() override;

  const hwsec::tee::ArchitectureTraits& traits() const override;

  hwsec::tee::Expected<hwsec::tee::EnclaveId> create_enclave(
      const hwsec::tee::EnclaveImage& image) override;
  hwsec::tee::EnclaveError destroy_enclave(hwsec::tee::EnclaveId id) override;
  hwsec::tee::EnclaveError call_enclave(hwsec::tee::EnclaveId id, hwsec::sim::CoreId core,
                                        const Service& service) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> attest(
      hwsec::tee::EnclaveId id, const hwsec::tee::Nonce& nonce) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> probe_attestation(
      const hwsec::tee::Nonce& nonce) override;
  std::vector<std::uint8_t> report_verification_key() const override;

  /// Secure Loader: loads registered trustlets, programs + locks the
  /// EA-MPU, "starts the OS". Returns kVerificationFailed under TyTAN's
  /// secure boot if the platform was tampered with.
  virtual hwsec::tee::EnclaveError boot();
  bool booted() const { return booted_; }

  /// MPU verdict for a foreign access to a trustlet's data region.
  hwsec::sim::Fault try_data_access(hwsec::tee::EnclaveId id, hwsec::sim::PhysAddr pc) const;

 protected:
  hwsec::tee::Expected<hwsec::tee::EnclaveId> register_trustlet(
      const hwsec::tee::EnclaveImage& image, bool allow_after_boot);
  void program_mpu_for(const hwsec::tee::EnclaveInfo& info);

  Config config_;
  bool booted_ = false;
  std::vector<std::uint8_t> platform_key_;
  hwsec::sim::DomainId next_domain_ = kFirstEnclaveDomain;
  std::vector<std::pair<hwsec::tee::EnclaveImage, hwsec::tee::EnclaveId>> pending_;
};

class TyTan final : public TrustLite {
 public:
  explicit TyTan(hwsec::sim::Machine& machine);

  const hwsec::tee::ArchitectureTraits& traits() const override;

  /// Secure boot: verifies the fused platform measurement first.
  hwsec::tee::EnclaveError boot() override;

  /// Dynamic loading: allowed after boot (TyTAN's trusted runtime keeps
  /// the EA-MPU programmable).
  hwsec::tee::Expected<hwsec::tee::EnclaveId> create_enclave(
      const hwsec::tee::EnclaveImage& image) override;

  /// Secure storage: seals `data` to the trustlet's measurement.
  struct SealedBlob {
    std::vector<std::uint8_t> ciphertext;
    hwsec::crypto::Sha256Digest mac{};
    hwsec::crypto::Sha256Digest sealer_measurement{};
  };
  hwsec::tee::Expected<SealedBlob> seal(hwsec::tee::EnclaveId id,
                                        std::span<const std::uint8_t> data);
  /// Unseal succeeds only for a trustlet with the sealer's measurement.
  hwsec::tee::Expected<std::vector<std::uint8_t>> unseal(hwsec::tee::EnclaveId id,
                                                         const SealedBlob& blob);

  /// Models a firmware tamper (secure boot must then refuse).
  void tamper_firmware() { tampered_ = true; }

  /// Bounded trustlet entry latency in cycles (the real-time guarantee).
  hwsec::sim::Cycle worst_case_entry_cycles() const { return 150; }

 private:
  std::vector<std::uint8_t> storage_key_;
  bool tampered_ = false;
};

}  // namespace hwsec::arch
