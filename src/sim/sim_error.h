// Structured error taxonomy for the whole framework.
//
// Every failure the simulator, the architecture layers, or the crypto
// substrate can raise is one of five kinds:
//
//   kConfigError        — the experiment asked for something impossible
//                         (overlapping MPU regions, unaligned mappings,
//                         invalid cache geometry, misused crypto objects);
//   kGuestFault         — a simulated guest program misbehaved in a way the
//                         trial body considers fatal (unexpected halt fault,
//                         corrupted protocol state);
//   kResourceExhausted  — a finite simulated or host resource ran out
//                         (physical frames, EPC pages, host memory);
//   kTimedOut           — a watchdog fired: the trial exceeded its cycle
//                         budget, or the wall-clock monitor cancelled it;
//   kInternalError      — an invariant of the framework itself broke, or an
//                         unrecognized exception escaped a trial.
//
// SimError derives from std::runtime_error so legacy call sites that catch
// (or tests that EXPECT_THROW) std::runtime_error keep working. On top of
// the kind it carries the context an unattended 10k-trial sweep needs to
// diagnose a single bad slot after the fact: which machine profile the
// error came from, and — filled in by the campaign layer as the error
// crosses it — the trial index and derived seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hwsec {

enum class ErrorKind : std::uint8_t {
  kConfigError,
  kGuestFault,
  kResourceExhausted,
  kTimedOut,
  kInternalError,
};

const char* to_string(ErrorKind kind);

class SimError : public std::runtime_error {
 public:
  SimError(ErrorKind kind, std::string detail);

  ErrorKind kind() const { return kind_; }
  const std::string& detail() const { return detail_; }
  const std::string& machine() const { return machine_; }
  bool has_trial() const { return has_trial_; }
  std::size_t trial_index() const { return trial_index_; }
  std::uint64_t trial_seed() const { return trial_seed_; }

  /// Attaches the machine profile name the error originated on.
  SimError& with_machine(std::string profile_name);
  /// Attaches trial identity; called by the campaign layer when the error
  /// crosses a trial boundary. Idempotent — the first attribution wins, so
  /// a nested campaign cannot overwrite the inner trial's identity.
  SimError& with_trial(std::size_t index, std::uint64_t seed);

  const char* what() const noexcept override { return what_.c_str(); }

 private:
  void recompose();

  ErrorKind kind_;
  std::string detail_;
  std::string machine_;
  bool has_trial_ = false;
  std::size_t trial_index_ = 0;
  std::uint64_t trial_seed_ = 0;
  std::string what_;
};

}  // namespace hwsec
