#include "attacks/transient/meltdown.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;

MeltdownAttack::MeltdownAttack(sim::Machine& machine, sim::CoreId core)
    : process_(machine, core) {
  process_.setup_probe_array();

  sim::ProgramBuilder b(kCodeBase);
  // r1 = target kernel VA, r2 = probe base VA.
  b.label("entry")
      .lb(sim::R3, sim::R1)      // faulting load; value forwarded transiently.
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)      // probe heat (transient only).
      .label("done")
      .halt();
  const sim::Program program = b.build();
  entry_ = program.address_of("entry");
  done_ = program.address_of("done");
  process_.load_program(program);

  // The attacker's "signal handler": swallow the fault, continue at done.
  process_.cpu().set_fault_handler(
      [this](sim::Cpu& cpu, const sim::FaultInfo&) {
        cpu.set_pc(done_);
        return sim::FaultAction::kRedirect;
      });
}

sim::VirtAddr MeltdownAttack::plant_kernel_secret(const std::string& secret) {
  const std::uint32_t pages =
      static_cast<std::uint32_t>(secret.size() / sim::kPageSize) + 1;
  // Present + writable but NOT user-accessible: classic kernel mapping
  // inside the process's address space.
  const sim::PhysAddr phys = process_.map_new(kKernelBase, pages, sim::pte::kWritable);
  for (std::size_t i = 0; i < secret.size(); ++i) {
    process_.machine().memory().write8(phys + static_cast<sim::PhysAddr>(i),
                                       static_cast<std::uint8_t>(secret[i]));
  }
  return kKernelBase;
}

std::optional<std::uint8_t> MeltdownAttack::leak_byte(sim::VirtAddr kernel_va) {
  ++stats_.attempts;
  process_.flush_probe();
  process_.activate(sim::Privilege::kUser);
  sim::Cpu& cpu = process_.cpu();
  cpu.set_reg(sim::R1, kernel_va);
  cpu.set_reg(sim::R2, kProbeBase);
  cpu.run_from(entry_, 64);
  const auto hot = process_.hottest_probe_line();
  if (hot.has_value()) {
    ++stats_.successes;
  }
  return hot;
}

std::string MeltdownAttack::leak_string(sim::VirtAddr kernel_va, std::size_t len,
                                        std::uint32_t retries) {
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    std::optional<std::uint8_t> byte;
    for (std::uint32_t r = 0; r < retries && !byte.has_value(); ++r) {
      byte = leak_byte(kernel_va + static_cast<sim::VirtAddr>(i));
    }
    out.push_back(byte.has_value() ? static_cast<char>(*byte) : '?');
  }
  return out;
}

}  // namespace hwsec::attacks
