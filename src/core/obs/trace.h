// Ring-buffer event tracer exporting Chrome trace_event JSON.
//
// Records spans (complete 'X' events) and instants ('i' events) into
// per-thread ring buffers: each thread writes only its own ring, so the
// record path is two steady_clock reads plus a couple of plain stores —
// no locks, no contention. The newest kRingCapacity events per thread
// survive; older ones are overwritten (a campaign's interesting tail —
// the part that hung or tripped watchdogs — is what you get).
//
// Export produces the Chrome trace_event JSON array format, loadable in
// chrome://tracing and https://ui.perfetto.dev. Export is meant to run at
// a quiescent point (after the campaign's parallel_for barrier, or at
// process exit); the per-ring write counters are release/acquire so a
// quiescent exporter sees fully written slots.
//
// Off by default: tracing turns on when the HWSEC_TRACE_OUT environment
// variable names an output path (the trace is then auto-written there at
// process exit) or when a test calls set_enabled(true). Disabled, a Span
// costs one relaxed atomic load; no clock is read, nothing is stored.
//
// Event names are `const char*` and must be string literals (or otherwise
// outlive the tracer) — the ring stores the pointer, never a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hwsec::obs {

inline constexpr std::size_t kRingCapacity = 16384;  ///< events kept per thread.

class Tracer {
 public:
  static Tracer& instance();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  /// Timestamp in microseconds since tracer construction.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a complete ('X') event covering [start_us, start_us + dur_us].
  /// `arg` with `arg_name` becomes the event's single numeric arg;
  /// arg_name == nullptr omits args. No-op when disabled.
  void complete(const char* name, double start_us, double dur_us, std::int64_t arg = 0,
                const char* arg_name = nullptr);

  /// Records an instant ('i') event at the current time. No-op when
  /// disabled.
  void instant(const char* name, std::int64_t arg = 0, const char* arg_name = nullptr);

  /// Chrome trace_event JSON document with every retained event, merged
  /// across threads in timestamp order.
  std::string export_json() const;

  /// export_json() written atomically to `path` (temp + rename). Returns
  /// false on I/O failure.
  bool write(const std::string& path) const;

  /// Path from HWSEC_TRACE_OUT at startup (empty when unset). When
  /// non-empty the tracer starts enabled and auto-writes here at exit.
  const std::string& autodump_path() const { return autodump_path_; }

  /// Drops every retained event (registrations and enable state survive).
  /// Test helper — call only at a quiescent point.
  void reset_for_test();

 private:
  struct Event {
    const char* name = nullptr;
    const char* arg_name = nullptr;
    std::int64_t arg = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    char phase = 'X';
  };

  struct Ring {
    std::vector<Event> slots{std::vector<Event>(kRingCapacity)};
    std::atomic<std::uint64_t> count{0};  ///< monotonic; slot = count % capacity.
    std::uint32_t tid = 0;
  };

  Tracer();

  Ring& local_ring();
  Ring* register_ring();

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::string autodump_path_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: measures construction-to-destruction and records one 'X'
/// event. The enable check happens at construction; a span built while
/// tracing is off records nothing even if tracing turns on mid-span.
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = 0, const char* arg_name = nullptr)
      : name_(name), arg_name_(arg_name), arg_(arg), armed_(Tracer::instance().enabled()) {
    if (armed_) {
      start_us_ = Tracer::instance().now_us();
    }
  }
  ~Span() {
    if (armed_) {
      Tracer& tracer = Tracer::instance();
      tracer.complete(name_, start_us_, tracer.now_us() - start_us_, arg_, arg_name_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* arg_name_;
  std::int64_t arg_;
  bool armed_;
  double start_us_ = 0.0;
};

}  // namespace hwsec::obs
