#include "sim/machine.h"

#include "sim/sim_error.h"

namespace hwsec::sim {

std::string to_string(DeviceClass c) {
  switch (c) {
    case DeviceClass::kServer: return "server/desktop";
    case DeviceClass::kMobile: return "mobile";
    case DeviceClass::kEmbedded: return "embedded";
  }
  return "?";
}

MachineProfile MachineProfile::server() {
  MachineProfile p;
  p.name = "server";
  p.device_class = DeviceClass::kServer;
  p.dram_bytes = 32u << 20;
  p.num_cores = 4;
  p.has_mmu = true;
  p.hierarchy.num_cores = 4;
  p.hierarchy.l1d = {.name = "L1D", .size_bytes = 32 * 1024, .ways = 8, .line_size = 64,
                     .policy = ReplacementPolicy::kLru, .hit_latency = 4};
  p.hierarchy.l1i = p.hierarchy.l1d;
  p.hierarchy.l1i.name = "L1I";
  p.hierarchy.llc = {.name = "LLC", .size_bytes = 4 * 1024 * 1024, .ways = 16, .line_size = 64,
                     .policy = ReplacementPolicy::kLru, .hit_latency = 30};
  p.hierarchy.dram_latency = 150;
  p.cpu.speculative_execution = true;
  p.cpu.speculation_window = 64;
  p.cpu.meltdown_fault_forwarding = true;  // pre-2018 silicon.
  p.cpu.l1tf_vulnerable = true;
  p.cpu.predictor = {.pht_entries = 4096, .btb_entries = 1024, .btb_tag_bits = 0,
                     .rsb_depth = 16, .flush_on_domain_switch = false};
  p.cpu.tlb = {.entries = 128, .ways = 4, .asid_tagged = true, .hit_latency = 1,
               .walk_latency = 25};
  p.dvfs.rated_points = {{2400, 1.00}, {3000, 1.10}, {3600, 1.20}};
  p.dvfs.slope_mhz_per_volt = 5500.0;
  p.dvfs.v_threshold = 0.45;
  p.dvfs.energy_per_cycle_nj_at_1v = 1.0;
  p.energy = {.per_instruction_nj = 1.2, .per_l1_access_nj = 0.15,
              .per_llc_access_nj = 0.8, .per_dram_access_nj = 8.0};
  return p;
}

MachineProfile MachineProfile::mobile() {
  MachineProfile p;
  p.name = "mobile";
  p.device_class = DeviceClass::kMobile;
  p.dram_bytes = 16u << 20;
  p.num_cores = 4;
  p.has_mmu = true;
  p.hierarchy.num_cores = 4;
  p.hierarchy.l1d = {.name = "L1D", .size_bytes = 32 * 1024, .ways = 4, .line_size = 64,
                     .policy = ReplacementPolicy::kLru, .hit_latency = 3};
  p.hierarchy.l1i = p.hierarchy.l1d;
  p.hierarchy.l1i.name = "L1I";
  p.hierarchy.llc = {.name = "L2", .size_bytes = 1024 * 1024, .ways = 16, .line_size = 64,
                     .policy = ReplacementPolicy::kLru, .hit_latency = 21};
  p.hierarchy.dram_latency = 130;
  p.cpu.speculative_execution = true;
  p.cpu.speculation_window = 32;
  // ARM application cores are broadly Spectre-vulnerable, but most are not
  // Meltdown- or L1TF-vulnerable — permission checks gate forwarding.
  p.cpu.meltdown_fault_forwarding = false;
  p.cpu.l1tf_vulnerable = false;
  p.cpu.predictor = {.pht_entries = 2048, .btb_entries = 512, .btb_tag_bits = 0,
                     .rsb_depth = 8, .flush_on_domain_switch = false};
  p.cpu.tlb = {.entries = 64, .ways = 4, .asid_tagged = true, .hit_latency = 1,
               .walk_latency = 20};
  // Software-writable DVFS with a generous register range: the CLKSCREW
  // precondition.
  p.dvfs.rated_points = {{300, 0.70}, {900, 0.85}, {1500, 1.00}, {2100, 1.10}};
  p.dvfs.slope_mhz_per_volt = 4000.0;
  p.dvfs.v_threshold = 0.48;
  p.dvfs.tau_mhz = 300.0;
  p.dvfs.energy_per_cycle_nj_at_1v = 0.35;
  p.energy = {.per_instruction_nj = 0.35, .per_l1_access_nj = 0.06,
              .per_llc_access_nj = 0.35, .per_dram_access_nj = 4.0};
  return p;
}

MachineProfile MachineProfile::embedded() {
  MachineProfile p;
  p.name = "embedded";
  p.device_class = DeviceClass::kEmbedded;
  p.dram_bytes = 1u << 20;
  p.num_cores = 1;
  p.has_mmu = false;  // bare physical addressing + MPU.
  p.hierarchy.num_cores = 1;
  p.hierarchy.has_l1 = false;
  p.hierarchy.has_llc = false;
  p.hierarchy.dram_latency = 2;  // on-chip SRAM, single-cycle-ish.
  p.cpu.speculative_execution = false;  // in-order, unpipelined model.
  p.cpu.meltdown_fault_forwarding = false;
  p.cpu.l1tf_vulnerable = false;
  p.cpu.predictor = {.pht_entries = 64, .btb_entries = 16, .btb_tag_bits = 0, .rsb_depth = 4,
                     .flush_on_domain_switch = false};
  p.cpu.tlb = {.entries = 4, .ways = 1, .asid_tagged = false, .hit_latency = 0,
               .walk_latency = 0};
  p.dvfs.rated_points = {{16, 0.60}, {48, 0.80}};
  p.dvfs.slope_mhz_per_volt = 400.0;
  p.dvfs.v_threshold = 0.40;
  p.dvfs.tau_mhz = 40.0;
  p.dvfs.energy_per_cycle_nj_at_1v = 0.02;
  p.energy = {.per_instruction_nj = 0.04, .per_l1_access_nj = 0.0,
              .per_llc_access_nj = 0.0, .per_dram_access_nj = 0.05};
  return p;
}

Machine::Machine(MachineProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      memory_(profile_.dram_bytes),
      caches_([this] {
        HierarchyConfig h = profile_.hierarchy;
        h.num_cores = profile_.num_cores;
        return h;
      }()),
      bus_(memory_, caches_),
      dvfs_(profile_.dvfs),
      injector_(seed ^ 0xFA57),
      rng_(seed),
      next_frame_(1u << 16) /* first 64 KiB reserved for firmware/vectors */ {
  for (std::uint32_t c = 0; c < profile_.num_cores; ++c) {
    CpuConfig cfg = profile_.cpu;
    cfg.id = static_cast<CoreId>(c);
    auto cpu = std::make_unique<Cpu>(cfg, bus_);
    if (!profile_.has_mmu) {
      cpu->mmu().set_bare_mode(true);
      cpu->set_mpu(&mpu_);
    }
    cpus_.push_back(std::move(cpu));
  }
}

MachineSnapshot Machine::snapshot() {
  MachineSnapshot snap{.owner = this,
                       .memory = memory_.snapshot(),
                       .caches = caches_.snapshot(),
                       .bus = bus_.snapshot(),
                       .mpu = mpu_,
                       .dvfs = dvfs_,
                       .injector = injector_,
                       .rng = rng_,
                       .cpus = {},
                       .next_frame = next_frame_,
                       .next_asid = next_asid_};
  snap.cpus.reserve(cpus_.size());
  for (const auto& cpu : cpus_) {
    // Clean before copying: the copies then carry a clean flag, and
    // reset_to can skip cores nothing mutated since this snapshot.
    cpu->mark_clean();
    snap.cpus.push_back(*cpu);
  }
  return snap;
}

void Machine::reset_to(const MachineSnapshot& snap) {
  if (snap.owner != this) {
    throw SimError(ErrorKind::kConfigError,
                   "machine snapshot restored on a different machine than it was taken from")
        .with_machine(profile_.name);
  }
  memory_.restore(snap.memory);
  caches_.restore(snap.caches);
  bus_.restore(snap.bus);
  mpu_ = snap.mpu;
  dvfs_ = snap.dvfs;
  injector_ = snap.injector;
  rng_ = snap.rng;
  for (std::size_t c = 0; c < cpus_.size(); ++c) {
    if (cpus_[c]->dirty()) {
      *cpus_[c] = snap.cpus[c];
    }
  }
  next_frame_ = snap.next_frame;
  next_asid_ = snap.next_asid;
}

void Machine::set_uop_cache(const std::shared_ptr<UopCache>& cache) {
  uop_cache_ = cache;
  for (auto& cpu : cpus_) {
    cpu->set_uop_cache(uop_cache_.get());
  }
}

void Machine::reseed(std::uint64_t seed) {
  // Mirrors the constructor's seed derivations exactly.
  injector_ = FaultInjector(seed ^ 0xFA57);
  rng_ = Rng(seed);
}

PhysAddr Machine::alloc_frame() { return alloc_frames(1); }

PhysAddr Machine::alloc_frames(std::uint32_t n) {
  const PhysAddr base = next_frame_;
  const std::uint64_t end = static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(n) * kPageSize;
  if (end > memory_.size()) {
    const std::uint64_t total = memory_.size() / kPageSize;
    const std::uint64_t free = (memory_.size() - next_frame_) / kPageSize;
    throw SimError(ErrorKind::kResourceExhausted,
                   "out of physical frames: requested " + std::to_string(n) + " frame(s) (" +
                       std::to_string(static_cast<std::uint64_t>(n) * kPageSize / 1024) +
                       " KiB) but only " + std::to_string(free) + " of " +
                       std::to_string(total) + " frames are free")
        .with_machine(profile_.name);
  }
  next_frame_ = static_cast<PhysAddr>(end);
  memory_.fill(base, n * kPageSize, 0);
  return base;
}

std::uint32_t Machine::frame_color(PhysAddr frame, std::uint32_t num_colors) const {
  // Color = which LLC set-group the frame's lines land in. With 64-byte
  // lines and 4 KiB pages, a page covers 64 consecutive sets; the color is
  // the page-number modulo the number of colors (classic page coloring).
  (void)this;
  return page_number(frame) % num_colors;
}

PhysAddr Machine::alloc_frame_colored(std::uint32_t color, std::uint32_t num_colors) {
  if (num_colors == 0) {
    throw SimError(ErrorKind::kConfigError, "num_colors must be positive")
        .with_machine(profile_.name);
  }
  // Skip frames until the color matches. Skipped frames are simply leaked;
  // acceptable for experiment-scale allocation.
  for (std::uint32_t attempts = 0; attempts < num_colors + 1; ++attempts) {
    if (frame_color(next_frame_, num_colors) == color % num_colors) {
      return alloc_frame();
    }
    alloc_frame();  // discard.
  }
  throw SimError(ErrorKind::kInternalError,
                 "unreachable: color not found within num_colors frames")
      .with_machine(profile_.name);
}

AddressSpace Machine::create_address_space() {
  const PhysAddr root = alloc_frame();
  return AddressSpace(memory_, root, &Machine::alloc_frame_trampoline, this);
}

PhysAddr Machine::alloc_frame_trampoline(void* ctx) {
  return static_cast<Machine*>(ctx)->alloc_frame();
}

MemoryAccessOutcome Machine::touch(CoreId core, DomainId domain, PhysAddr addr, AccessType type) {
  return caches_.access(core, domain, addr, type);
}

void Machine::arm_watchdog(const TrialWatchdog* watchdog) {
  for (auto& cpu : cpus_) {
    cpu->set_watchdog(watchdog);
  }
}

Cycle Machine::observe_latency(Cycle latency) {
  const TimerConfig& t = profile_.timer;
  Cycle observed = latency;
  if (t.jitter > 0) {
    observed += rng_.below(t.jitter + 1);
  }
  if (t.granularity > 1) {
    observed = (observed / t.granularity) * t.granularity;
  }
  return observed;
}

double Machine::energy_nj() const {
  const double v = dvfs_.point().voltage;
  const double scale = v * v;
  double total = 0.0;
  for (const auto& cpu : cpus_) {
    const CpuStats& s = cpu->stats();
    total += static_cast<double>(s.retired) * profile_.energy.per_instruction_nj;
    total += static_cast<double>(s.l1_hits) * profile_.energy.per_l1_access_nj;
    total += static_cast<double>(s.llc_hits) * profile_.energy.per_llc_access_nj;
    total += static_cast<double>(s.dram_accesses) * profile_.energy.per_dram_access_nj;
  }
  return total * scale;
}

double Machine::elapsed_ns() const {
  Cycle busiest = 0;
  for (const auto& cpu : cpus_) {
    busiest = std::max(busiest, cpu->cycles());
  }
  return static_cast<double>(busiest) * dvfs_.ns_per_cycle();
}

std::uint64_t Machine::total_retired() const {
  std::uint64_t total = 0;
  for (const auto& cpu : cpus_) {
    total += cpu->stats().retired;
  }
  return total;
}

void Machine::reset_stats() {
  for (auto& cpu : cpus_) {
    cpu->reset_stats();
  }
  caches_.reset_stats();
}

}  // namespace hwsec::sim
