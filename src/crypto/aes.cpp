#include "crypto/aes.h"

#include <cstring>

namespace hwsec::crypto {

namespace {

// ---- GF(2^8) arithmetic (AES polynomial x^8+x^4+x^3+x+1) ----------------

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1B));
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result ^= static_cast<std::uint8_t>(-(b & 1) & a);
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

constexpr std::uint8_t rotl8(std::uint8_t x, int r) {
  return static_cast<std::uint8_t>((x << r) | (x >> (8 - r)));
}

// The S-box is *computed* (inversion + affine map) rather than transcribed,
// and validated against FIPS-197 vectors in the tests.
struct Tables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};
  std::array<std::uint32_t, 256> t0{}, t1{}, t2{}, t3{};

  Tables() {
    for (int x = 0; x < 256; ++x) {
      std::uint8_t inv = 0;
      if (x != 0) {
        for (int y = 1; y < 256; ++y) {
          if (gf_mul(static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y)) == 1) {
            inv = static_cast<std::uint8_t>(y);
            break;
          }
        }
      }
      const std::uint8_t s = static_cast<std::uint8_t>(
          inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63);
      sbox[static_cast<std::size_t>(x)] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(x);

      const std::uint8_t m1 = s;
      const std::uint8_t m2 = xtime(s);
      const std::uint8_t m3 = static_cast<std::uint8_t>(m2 ^ m1);
      const std::uint32_t t = (static_cast<std::uint32_t>(m2) << 24) |
                              (static_cast<std::uint32_t>(m1) << 16) |
                              (static_cast<std::uint32_t>(m1) << 8) | m3;
      t0[static_cast<std::size_t>(x)] = t;
      t1[static_cast<std::size_t>(x)] = (t >> 8) | (t << 24);
      t2[static_cast<std::size_t>(x)] = (t >> 16) | (t << 16);
      t3[static_cast<std::size_t>(x)] = (t >> 24) | (t << 8);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t sub_word(std::uint32_t w) {
  const auto& s = tables().sbox;
  return (static_cast<std::uint32_t>(s[(w >> 24) & 0xFF]) << 24) |
         (static_cast<std::uint32_t>(s[(w >> 16) & 0xFF]) << 16) |
         (static_cast<std::uint32_t>(s[(w >> 8) & 0xFF]) << 8) | s[w & 0xFF];
}

constexpr std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

// MixColumns on one column (used by the non-T-table variants).
std::uint32_t mix_column(std::uint32_t col) {
  const std::uint8_t a0 = static_cast<std::uint8_t>(col >> 24);
  const std::uint8_t a1 = static_cast<std::uint8_t>(col >> 16);
  const std::uint8_t a2 = static_cast<std::uint8_t>(col >> 8);
  const std::uint8_t a3 = static_cast<std::uint8_t>(col);
  const std::uint8_t b0 = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
  const std::uint8_t b1 = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
  const std::uint8_t b2 = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
  const std::uint8_t b3 = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  return (static_cast<std::uint32_t>(b0) << 24) | (static_cast<std::uint32_t>(b1) << 16) |
         (static_cast<std::uint32_t>(b2) << 8) | b3;
}

}  // namespace

const std::array<std::uint8_t, 256>& aes_sbox() { return tables().sbox; }
const std::array<std::uint8_t, 256>& aes_inv_sbox() { return tables().inv_sbox; }

AesKeySchedule expand_key(const AesKey& key) {
  AesKeySchedule ks;
  for (int i = 0; i < 4; ++i) {
    ks.words[static_cast<std::size_t>(i)] = load_be32(key.data() + 4 * i);
  }
  std::uint8_t rcon = 0x01;
  for (int i = 4; i < 44; ++i) {
    std::uint32_t temp = ks.words[static_cast<std::size_t>(i - 1)];
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp)) ^ (static_cast<std::uint32_t>(rcon) << 24);
      rcon = xtime(rcon);
    }
    ks.words[static_cast<std::size_t>(i)] = ks.words[static_cast<std::size_t>(i - 4)] ^ temp;
  }
  return ks;
}

// ---- AesTTable ------------------------------------------------------------

AesTTable::AesTTable(const AesKey& key, Instrumentation instr)
    : schedule_(expand_key(key)), instr_(std::move(instr)) {}

AesBlock AesTTable::encrypt(const AesBlock& plaintext) const {
  return encrypt_with_fault_round(plaintext, 0);
}

AesBlock AesTTable::encrypt_with_fault_round(const AesBlock& plaintext,
                                             std::uint32_t fault_round) const {
  const Tables& tb = tables();
  std::uint32_t s0 = load_be32(plaintext.data() + 0) ^ schedule_.words[0];
  std::uint32_t s1 = load_be32(plaintext.data() + 4) ^ schedule_.words[1];
  std::uint32_t s2 = load_be32(plaintext.data() + 8) ^ schedule_.words[2];
  std::uint32_t s3 = load_be32(plaintext.data() + 12) ^ schedule_.words[3];

  auto lookup = [&](const std::array<std::uint32_t, 256>& table, std::uint32_t table_id,
                    std::uint32_t index) {
    instr_.do_touch(table_id, index);
    // Power model: the S-box output byte is the classic CPA target.
    instr_.do_leak(tb.sbox[index]);
    return table[index];
  };

  // Offer the whole state to the fault hook at the targeted round
  // boundary: a glitch can land in any word, so DFA observations cover
  // all 16 byte positions.
  auto maybe_fault = [&](std::uint32_t round) {
    if (fault_round != 0 && round == fault_round) {
      s0 = instr_.do_fault(s0);
      s1 = instr_.do_fault(s1);
      s2 = instr_.do_fault(s2);
      s3 = instr_.do_fault(s3);
    }
  };

  for (std::uint32_t round = 1; round <= 9; ++round) {
    maybe_fault(round);
    const std::uint32_t n0 = lookup(tb.t0, kT0, s0 >> 24) ^ lookup(tb.t1, kT1, (s1 >> 16) & 0xFF) ^
                             lookup(tb.t2, kT2, (s2 >> 8) & 0xFF) ^
                             lookup(tb.t3, kT3, s3 & 0xFF) ^ schedule_.words[4 * round + 0];
    const std::uint32_t n1 = lookup(tb.t0, kT0, s1 >> 24) ^ lookup(tb.t1, kT1, (s2 >> 16) & 0xFF) ^
                             lookup(tb.t2, kT2, (s3 >> 8) & 0xFF) ^
                             lookup(tb.t3, kT3, s0 & 0xFF) ^ schedule_.words[4 * round + 1];
    const std::uint32_t n2 = lookup(tb.t0, kT0, s2 >> 24) ^ lookup(tb.t1, kT1, (s3 >> 16) & 0xFF) ^
                             lookup(tb.t2, kT2, (s0 >> 8) & 0xFF) ^
                             lookup(tb.t3, kT3, s1 & 0xFF) ^ schedule_.words[4 * round + 2];
    const std::uint32_t n3 = lookup(tb.t0, kT0, s3 >> 24) ^ lookup(tb.t1, kT1, (s0 >> 16) & 0xFF) ^
                             lookup(tb.t2, kT2, (s1 >> 8) & 0xFF) ^
                             lookup(tb.t3, kT3, s2 & 0xFF) ^ schedule_.words[4 * round + 3];
    s0 = n0;
    s1 = n1;
    s2 = n2;
    s3 = n3;
  }

  // Final round (no MixColumns), S-box byte lookups.
  maybe_fault(10);
  auto sb = [&](std::uint32_t index) {
    instr_.do_touch(kSboxTable, index);
    instr_.do_leak(tb.sbox[index]);
    return static_cast<std::uint32_t>(tb.sbox[index]);
  };
  const std::uint32_t o0 = (sb(s0 >> 24) << 24) | (sb((s1 >> 16) & 0xFF) << 16) |
                           (sb((s2 >> 8) & 0xFF) << 8) | sb(s3 & 0xFF);
  const std::uint32_t o1 = (sb(s1 >> 24) << 24) | (sb((s2 >> 16) & 0xFF) << 16) |
                           (sb((s3 >> 8) & 0xFF) << 8) | sb(s0 & 0xFF);
  const std::uint32_t o2 = (sb(s2 >> 24) << 24) | (sb((s3 >> 16) & 0xFF) << 16) |
                           (sb((s0 >> 8) & 0xFF) << 8) | sb(s1 & 0xFF);
  const std::uint32_t o3 = (sb(s3 >> 24) << 24) | (sb((s0 >> 16) & 0xFF) << 16) |
                           (sb((s1 >> 8) & 0xFF) << 8) | sb(s2 & 0xFF);

  AesBlock out;
  store_be32(out.data() + 0, o0 ^ schedule_.words[40]);
  store_be32(out.data() + 4, o1 ^ schedule_.words[41]);
  store_be32(out.data() + 8, o2 ^ schedule_.words[42]);
  store_be32(out.data() + 12, o3 ^ schedule_.words[43]);
  return out;
}

// ---- AesConstantTime --------------------------------------------------------

namespace {

// S-box computed arithmetically: x^254 by fixed square-and-multiply, then
// the affine map. No table lookup, no data-dependent branch — every input
// executes the identical operation sequence.
std::uint8_t sbox_arithmetic(std::uint8_t x) {
  std::uint8_t result = 1;
  // 254 = 0b11111110, fixed 8-iteration ladder.
  for (int bit = 7; bit >= 0; --bit) {
    result = gf_mul(result, result);
    const std::uint8_t multiplied = gf_mul(result, x);
    // Constant-time select (mask arithmetic instead of a branch).
    const std::uint8_t take = static_cast<std::uint8_t>(-((254 >> bit) & 1));
    result = static_cast<std::uint8_t>((multiplied & take) | (result & ~take));
  }
  return static_cast<std::uint8_t>(result ^ rotl8(result, 1) ^ rotl8(result, 2) ^
                                   rotl8(result, 3) ^ rotl8(result, 4) ^ 0x63);
}

// Shared plain (column-word) round structure for the non-T-table variants.
struct ColumnState {
  std::uint32_t s[4];

  void load(const AesBlock& in) {
    for (int i = 0; i < 4; ++i) {
      s[i] = load_be32(in.data() + 4 * i);
    }
  }
  AesBlock store() const {
    AesBlock out;
    for (int i = 0; i < 4; ++i) {
      store_be32(out.data() + 4 * i, s[i]);
    }
    return out;
  }
  std::uint8_t byte(int col, int row) const {
    return static_cast<std::uint8_t>(s[col] >> (24 - 8 * row));
  }
  void set_byte(int col, int row, std::uint8_t v) {
    const int shift = 24 - 8 * row;
    s[col] = (s[col] & ~(0xFFu << shift)) | (static_cast<std::uint32_t>(v) << shift);
  }
  void shift_rows() {
    for (int row = 1; row < 4; ++row) {
      std::uint8_t tmp[4];
      for (int col = 0; col < 4; ++col) {
        tmp[col] = byte((col + row) % 4, row);
      }
      for (int col = 0; col < 4; ++col) {
        set_byte(col, row, tmp[col]);
      }
    }
  }
  void mix_columns() {
    for (auto& col : s) {
      col = mix_column(col);
    }
  }
  void add_round_key(const AesKeySchedule& ks, std::uint32_t round) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      s[i] ^= ks.words[4 * round + i];
    }
  }
};

}  // namespace

AesConstantTime::AesConstantTime(const AesKey& key, Instrumentation instr)
    : schedule_(expand_key(key)), instr_(std::move(instr)) {}

AesBlock AesConstantTime::encrypt(const AesBlock& plaintext) const {
  ColumnState st;
  st.load(plaintext);
  st.add_round_key(schedule_, 0);
  for (std::uint32_t round = 1; round <= 10; ++round) {
    for (int col = 0; col < 4; ++col) {
      for (int row = 0; row < 4; ++row) {
        const std::uint8_t out = sbox_arithmetic(st.byte(col, row));
        // No touch hook: no memory lookup exists. The value still leaks
        // through power (constant-time is not a DPA countermeasure).
        instr_.do_leak(out);
        st.set_byte(col, row, out);
      }
    }
    st.shift_rows();
    if (round != 10) {
      st.mix_columns();
    }
    st.add_round_key(schedule_, round);
  }
  return st.store();
}

// ---- AesMasked ----------------------------------------------------------------

AesMasked::AesMasked(const AesKey& key, std::uint64_t rng_seed, Instrumentation instr)
    : schedule_(expand_key(key)), instr_(std::move(instr)), rng_state_(rng_seed | 1) {}

std::uint8_t AesMasked::next_mask_byte() {
  // splitmix64 step; quality is irrelevant for correctness, only
  // unpredictability-per-trace matters for the first-order masking claim.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::uint8_t>(z >> 56);
}

AesBlock AesMasked::encrypt(const AesBlock& plaintext) {
  const auto& sbox = tables().sbox;

  // Fresh input/output S-box masks per block; recompute the masked S-box:
  // sm[x ^ m_in] = S[x] ^ m_out. Loading the masks into working registers
  // leaks their Hamming weight like any other register write — the
  // second-order attack (sca/second_order.h) combines exactly this sample
  // with the masked S-box outputs. First-order security is unaffected:
  // each sample alone is independent of the data.
  const std::uint8_t m_in = next_mask_byte();
  const std::uint8_t m_out = next_mask_byte();
  instr_.do_leak(m_in);
  instr_.do_leak(m_out);
  std::array<std::uint8_t, 256> masked_sbox;
  for (int x = 0; x < 256; ++x) {
    masked_sbox[static_cast<std::size_t>(x ^ m_in)] =
        static_cast<std::uint8_t>(sbox[static_cast<std::size_t>(x)] ^ m_out);
  }

  // Masked state + mask state, processed in lockstep: linear layers apply
  // to both, so masked ^ mask == real at every point.
  ColumnState masked;
  ColumnState mask;
  masked.load(plaintext);
  for (int col = 0; col < 4; ++col) {
    for (int row = 0; row < 4; ++row) {
      const std::uint8_t m = next_mask_byte();
      mask.set_byte(col, row, m);
      masked.set_byte(col, row, static_cast<std::uint8_t>(masked.byte(col, row) ^ m));
    }
  }
  masked.add_round_key(schedule_, 0);

  for (std::uint32_t round = 1; round <= 10; ++round) {
    // Re-mask to m_in so the masked S-box applies, then substitute.
    for (int col = 0; col < 4; ++col) {
      for (int row = 0; row < 4; ++row) {
        const std::uint8_t remasked = static_cast<std::uint8_t>(
            masked.byte(col, row) ^ mask.byte(col, row) ^ m_in);
        const std::uint8_t substituted = masked_sbox[remasked];
        // Every observable intermediate carries a random mask: the leak
        // hook sees S[x] ^ m_out, uncorrelated with S[x].
        instr_.do_leak(substituted);
        masked.set_byte(col, row, substituted);
        mask.set_byte(col, row, m_out);
      }
    }
    masked.shift_rows();
    mask.shift_rows();
    if (round != 10) {
      masked.mix_columns();
      mask.mix_columns();
    }
    masked.add_round_key(schedule_, round);
  }

  // Unmask.
  for (int col = 0; col < 4; ++col) {
    for (int row = 0; row < 4; ++row) {
      masked.set_byte(col, row,
                      static_cast<std::uint8_t>(masked.byte(col, row) ^ mask.byte(col, row)));
    }
  }
  return masked.store();
}

}  // namespace hwsec::crypto
