// Architecture selection advisor — the paper's concluding instruction
// made executable: "it is important to select the optimal security
// architecture given the energy and performance budget of the
// application."
//
// Input: a platform class plus the application's threat priorities and
// deployment constraints. Output: every surveyed architecture, scored
// and ranked, each with the §3–§5 pros/cons that drove its score. The
// traits come from the live architecture models (the same structs the E2
// probes validate), not a hand-maintained copy.
#pragma once

#include <string>
#include <vector>

#include "tee/architecture.h"

namespace hwsec::core {

struct Requirements {
  hwsec::sim::DeviceClass platform = hwsec::sim::DeviceClass::kServer;
  /// Application needs more than one mutually distrusting enclave.
  bool multiple_enclaves = false;
  /// A remote party must verify what is running.
  bool remote_attestation = false;
  /// Adversaries with physical proximity (§2's physical adversary).
  bool physical_adversary = false;
  /// Peripherals / DMA masters are untrusted (Thunderclap-class).
  bool malicious_peripherals = false;
  /// Co-located software may mount cache side-channel attacks (§4.1).
  bool cache_sca_threat = false;
  /// Hard real-time deadlines.
  bool real_time = false;
  /// Third-party developers must deploy without a device-vendor contract.
  bool no_vendor_gatekeeping = false;
  /// Must run on already-shipped silicon.
  bool existing_hardware_only = false;
  /// Sensitive peripheral I/O (biometrics, secure display).
  bool secure_peripheral_io = false;
};

struct Recommendation {
  hwsec::tee::ArchitectureTraits traits;
  int score = 0;
  bool viable = true;  ///< platform-compatible and no hard-requirement miss.
  std::vector<std::string> pros;
  std::vector<std::string> cons;
};

/// Traits of all eight surveyed architectures, pulled from live model
/// instances (scratch machines of the right class).
std::vector<hwsec::tee::ArchitectureTraits> all_architecture_traits();

/// Scores and ranks every architecture against `req` (best first;
/// non-viable entries sort last with their disqualifying cons).
std::vector<Recommendation> recommend(const Requirements& req);

/// Renders a ranked recommendation list.
std::string render_recommendations(const Requirements& req,
                                   const std::vector<Recommendation>& ranked);

}  // namespace hwsec::core
