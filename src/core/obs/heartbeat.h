// Periodic campaign heartbeat for unattended runs.
//
// A million-trial sweep in CI is invisible between its start line and its
// summary; when it wedges, the log gives no clue how far it got. Heartbeat
// runs one background thread that emits a caller-formatted progress line
// (trials done, trials/sec, retry and watchdog counters, pool stats) every
// interval, so a hung or thrashing campaign is diagnosable from the log
// alone. Inert when the interval is zero/negative or no formatter is
// given: no thread is started, construction is free.
//
// The resilient campaign runner arms one of these automatically when
// HWSEC_HEARTBEAT_MS is set (or ResilienceConfig::heartbeat is explicit).
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace hwsec::obs {

class Heartbeat {
 public:
  /// Emits `line()` to stderr every `interval` until destruction. The
  /// formatter runs on the heartbeat thread and must be thread-safe.
  Heartbeat(std::chrono::milliseconds interval, std::function<std::string()> line);
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

 private:
  void loop(std::chrono::milliseconds interval);

  std::function<std::string()> line_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// Heartbeat interval from HWSEC_HEARTBEAT_MS (zero when unset/invalid —
/// heartbeats off).
std::chrono::milliseconds heartbeat_interval_from_env();

}  // namespace hwsec::obs
