#include "sim/bus.h"

namespace hwsec::sim {

Bus::Bus(PhysicalMemory& mem, CacheHierarchy& caches) : mem_(&mem), caches_(&caches) {}

std::size_t Bus::add_check(PhysCheck check) {
  checks_.push_back(std::move(check));
  return checks_.size() - 1;
}

void Bus::remove_check(std::size_t id) {
  if (id < checks_.size()) {
    checks_[id] = nullptr;
  }
}

void Bus::clear_checks() { checks_.clear(); }

Fault Bus::run_checks(PhysAddr addr, AccessType type, DomainId domain, Privilege priv,
                      bool is_dma) const {
  if (!mem_->contains(addr, 4)) {
    return Fault::kBusError;
  }
  for (const PhysCheck& check : checks_) {
    if (!check) {
      continue;
    }
    const Fault f = check(addr, type, domain, priv, is_dma);
    if (f != Fault::kNone) {
      return f;
    }
  }
  return Fault::kNone;
}

BusResult Bus::cpu_read(CoreId core, DomainId domain, Privilege priv, PhysAddr addr) {
  BusResult r;
  r.fault = run_checks(addr, AccessType::kRead, domain, priv, /*is_dma=*/false);
  if (r.fault != Fault::kNone) {
    return r;
  }
  const auto outcome = caches_->access(core, domain, addr, AccessType::kRead);
  r.latency = outcome.latency;
  r.level = outcome.level;
  Word raw = mem_->read32(word_base(addr));
  if (transform_) {
    raw = transform_(word_base(addr), raw, domain, /*to_dram=*/false);
  }
  r.value = raw;
  return r;
}

BusResult Bus::cpu_write(CoreId core, DomainId domain, Privilege priv, PhysAddr addr, Word value) {
  BusResult r;
  r.fault = run_checks(addr, AccessType::kWrite, domain, priv, /*is_dma=*/false);
  if (r.fault != Fault::kNone) {
    return r;
  }
  const auto outcome = caches_->access(core, domain, addr, AccessType::kWrite);
  r.latency = outcome.latency;
  r.level = outcome.level;
  Word stored = value;
  if (transform_) {
    stored = transform_(word_base(addr), value, domain, /*to_dram=*/true);
  }
  mem_->write32(word_base(addr), stored);
  return r;
}

BusResult Bus::cpu_fetch(CoreId core, DomainId domain, Privilege priv, PhysAddr addr) {
  BusResult r;
  r.fault = run_checks(addr, AccessType::kExecute, domain, priv, /*is_dma=*/false);
  if (r.fault != Fault::kNone) {
    return r;
  }
  const auto outcome = caches_->fetch(core, domain, addr);
  r.latency = outcome.latency;
  r.level = outcome.level;
  return r;
}

BusResult Bus::cpu_read8(CoreId core, DomainId domain, Privilege priv, PhysAddr addr) {
  BusResult r = cpu_read(core, domain, priv, word_base(addr));
  if (r.fault != Fault::kNone) {
    return r;
  }
  r.value = (r.value >> (8 * (addr & 3u))) & 0xFFu;
  return r;
}

BusResult Bus::cpu_write8(CoreId core, DomainId domain, Privilege priv, PhysAddr addr,
                          std::uint8_t value) {
  // Read-modify-write of the containing word so the transform (memory
  // encryption) always operates on whole words.
  BusResult r = cpu_read(core, domain, priv, word_base(addr));
  if (r.fault != Fault::kNone) {
    return r;
  }
  const std::uint32_t shift = 8 * (addr & 3u);
  const Word merged =
      (r.value & ~(0xFFu << shift)) | (static_cast<Word>(value) << shift);
  const BusResult w = cpu_write(core, domain, priv, word_base(addr), merged);
  BusResult out = w;
  out.latency += r.latency;
  return out;
}

Word Bus::peek(PhysAddr addr, DomainId domain) const {
  if (!mem_->contains(addr, 4)) {
    return 0;
  }
  Word raw = mem_->read32(addr & ~3u);
  if (transform_) {
    raw = transform_(addr & ~3u, raw, domain, /*to_dram=*/false);
  }
  return raw;
}

BusResult Bus::dma_read(DomainId device_domain, PhysAddr addr) {
  BusResult r;
  r.fault = run_checks(addr, AccessType::kRead, device_domain, Privilege::kUser, /*is_dma=*/true);
  if (r.fault != Fault::kNone) {
    return r;
  }
  r.latency = dma_latency_;
  r.level = ServiceLevel::kUncached;
  r.value = mem_->read32(word_base(addr));  // raw DRAM: no transform, no caches.
  return r;
}

BusResult Bus::dma_write(DomainId device_domain, PhysAddr addr, Word value) {
  BusResult r;
  r.fault = run_checks(addr, AccessType::kWrite, device_domain, Privilege::kUser, /*is_dma=*/true);
  if (r.fault != Fault::kNone) {
    return r;
  }
  r.latency = dma_latency_;
  r.level = ServiceLevel::kUncached;
  mem_->write32(word_base(addr), value);
  // Keep caches coherent with the DMA write the way real SoCs do via
  // snooping: drop any cached copies of the clobbered line.
  caches_->flush_line(addr);
  return r;
}

}  // namespace hwsec::sim
