// System bus / interconnect.
//
// All physical memory traffic — CPU data, CPU fetch, and DMA — flows
// through here. The bus is where the surveyed SoC-level protections live:
//
//  * PhysCheck hooks: TrustZone's TZASC and Sanctum's DMA range filter are
//    physical-address firewalls keyed on the initiator's security domain
//    and on whether the transaction is DMA. Several checks may be stacked;
//    the first one to veto wins.
//  * read/write transforms: SGX's memory encryption engine (MEE) sits on
//    the CPU<->DRAM path. A transform sees CPU traffic only; DMA reads raw
//    DRAM — which is exactly why SGX survives DMA attacks (the attacker
//    sees ciphertext) while Sanctum, lacking encryption, must instead veto
//    the transaction.
//
// Timing: cache-hierarchy latency for CPU traffic; a flat latency for DMA
// (devices do not get to use the CPU caches).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/cache_hierarchy.h"
#include "sim/memory.h"
#include "sim/types.h"

namespace hwsec::sim {

struct BusResult {
  Fault fault = Fault::kNone;
  Word value = 0;
  Cycle latency = 0;
  ServiceLevel level = ServiceLevel::kDram;
};

class Bus {
 public:
  /// Veto hook for physical transactions. `is_dma` distinguishes device
  /// traffic from CPU traffic (TZASC and Sanctum's filter differ on it).
  using PhysCheck = std::function<Fault(PhysAddr addr, AccessType type, DomainId domain,
                                        Privilege priv, bool is_dma)>;

  /// CPU-path data transform (memory encryption). `to_dram == true` means
  /// the value is about to be written to DRAM (encrypt); false means it
  /// was just read (decrypt). Transforms see word-aligned traffic.
  using Transform = std::function<Word(PhysAddr addr, Word value, DomainId domain, bool to_dram)>;

  Bus(PhysicalMemory& mem, CacheHierarchy& caches);

  /// Registers a firewall; returns an id usable with remove_check.
  std::size_t add_check(PhysCheck check);
  void remove_check(std::size_t id);
  void clear_checks();

  /// True if any firewall is installed (tombstoned slots excluded). The
  /// CPU's fetch memo arms only on check-free buses: a PhysCheck may be
  /// stateful, so its invocation cannot be skipped on replay.
  bool has_checks() const {
    for (const PhysCheck& check : checks_) {
      if (check) {
        return true;
      }
    }
    return false;
  }

  /// Installs / clears the (single) memory-encryption transform.
  void set_transform(Transform t) { transform_ = std::move(t); }
  void clear_transform() { transform_ = nullptr; }

  // -- CPU-initiated traffic (word-aligned phys addresses) -------------
  BusResult cpu_read(CoreId core, DomainId domain, Privilege priv, PhysAddr addr);
  BusResult cpu_write(CoreId core, DomainId domain, Privilege priv, PhysAddr addr, Word value);
  BusResult cpu_fetch(CoreId core, DomainId domain, Privilege priv, PhysAddr addr);

  /// Byte variants (read-modify-write under the word transform).
  BusResult cpu_read8(CoreId core, DomainId domain, Privilege priv, PhysAddr addr);
  BusResult cpu_write8(CoreId core, DomainId domain, Privilege priv, PhysAddr addr,
                       std::uint8_t value);

  /// Microarchitectural data path: reads the word at `addr` applying the
  /// CPU-side transform (decryption) but with *no* firewall checks, *no*
  /// cache state change, and *no* latency. This is exactly the path a
  /// fault-forwarding load takes — data reaches the transient pipeline
  /// before any architectural check can veto it.
  Word peek(PhysAddr addr, DomainId domain) const;

  // -- DMA traffic ------------------------------------------------------
  BusResult dma_read(DomainId device_domain, PhysAddr addr);
  BusResult dma_write(DomainId device_domain, PhysAddr addr, Word value);

  PhysicalMemory& memory() { return *mem_; }
  CacheHierarchy& caches() { return *caches_; }

  Cycle dma_latency() const { return dma_latency_; }
  void set_dma_latency(Cycle c) { dma_latency_ = c; }

  // -- snapshot / restore (Machine::snapshot) ---------------------------
  /// Captures the installed firewalls (including tombstoned slots, so
  /// check ids stay stable across a restore), the MEE transform, and the
  /// DMA latency. std::function copies share the callable's captured
  /// state; architecture hooks capture pointers into their owning Machine,
  /// which is why MachineSnapshot restores are owner-checked.
  struct Snapshot {
    std::vector<PhysCheck> checks;
    Transform transform;
    Cycle dma_latency = 100;
  };

  Snapshot snapshot() const { return {checks_, transform_, dma_latency_}; }
  void restore(const Snapshot& snap) {
    checks_ = snap.checks;
    transform_ = snap.transform;
    dma_latency_ = snap.dma_latency;
  }

 private:
  Fault run_checks(PhysAddr addr, AccessType type, DomainId domain, Privilege priv,
                   bool is_dma) const;
  PhysAddr word_base(PhysAddr addr) const { return addr & ~3u; }

  PhysicalMemory* mem_;
  CacheHierarchy* caches_;
  std::vector<PhysCheck> checks_;  ///< empty slots after removal stay (nullptr).
  Transform transform_;
  Cycle dma_latency_ = 100;
};

}  // namespace hwsec::sim
