// ARM TrustZone model (paper §3.2, [2]).
//
// Modeled mechanisms:
//  * two worlds: every bus transaction carries the NS-bit analogue (our
//    DomainId); secure RAM is reachable only with the secure attribute.
//    The secure world is the *single* enclave of the system — the paper's
//    central criticism — so create_enclave() admits exactly one trusted
//    app, and only one whose image the device vendor has signed (the
//    costly vendor trust relationship).
//  * monitor code: world switches (SMC) go through a privileged monitor;
//    secure-world code is signature-verified at boot (secure boot).
//  * TZASC-style address space controller: assign_device_region() gives a
//    memory range exclusively to secure-world bus masters — this is also
//    how TrustZone builds secure channels to peripherals (an ability SGX
//    and Sanctum lack, per the paper).
//  * deliberately absent: cache partitioning or flushes on world switch —
//    secure-world cache lines share the hierarchy with normal world,
//    which is what TruSpy-style attacks ([44]) exploit.
#pragma once

#include <map>
#include <vector>

#include "arch/domains.h"
#include "tee/architecture.h"

namespace hwsec::arch {

class TrustZone : public hwsec::tee::Architecture {
 public:
  struct Config {
    std::uint32_t secure_ram_pages = 64;
    /// Require a vendor signature over the TA image measurement.
    bool require_vendor_signature = true;
  };

  explicit TrustZone(hwsec::sim::Machine& machine) : TrustZone(machine, Config{}) {}
  TrustZone(hwsec::sim::Machine& machine, Config config);
  ~TrustZone() override;

  const hwsec::tee::ArchitectureTraits& traits() const override;

  hwsec::tee::Expected<hwsec::tee::EnclaveId> create_enclave(
      const hwsec::tee::EnclaveImage& image) override;
  hwsec::tee::EnclaveError destroy_enclave(hwsec::tee::EnclaveId id) override;
  hwsec::tee::EnclaveError call_enclave(hwsec::tee::EnclaveId id, hwsec::sim::CoreId core,
                                        const Service& service) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> attest(
      hwsec::tee::EnclaveId id, const hwsec::tee::Nonce& nonce) override;

  /// Models the vendor signing the TA image (the trust relationship the
  /// paper calls "costly"): afterwards create_enclave accepts the image.
  void vendor_sign(const hwsec::tee::EnclaveImage& image);

  /// TZASC: assigns [base, base+pages) exclusively to secure bus masters
  /// (CPU in secure world, devices with the secure attribute). This is
  /// the secure-peripheral-channel mechanism.
  void assign_device_region(hwsec::sim::PhysAddr base, std::uint32_t pages);

  hwsec::sim::PhysAddr secure_ram_base() const { return secure_base_; }
  std::uint32_t secure_ram_pages() const { return config_.secure_ram_pages; }
  bool in_secure_ram(hwsec::sim::PhysAddr addr) const {
    return addr >= secure_base_ &&
           addr < secure_base_ + config_.secure_ram_pages * hwsec::sim::kPageSize;
  }

 protected:
  bool secure_attribute(hwsec::sim::DomainId domain) const {
    return domain == kSecureWorldDomain || domain == kSecureDeviceDomain;
  }

  Config config_;
  hwsec::sim::PhysAddr secure_base_ = 0;
  std::vector<std::pair<hwsec::sim::PhysAddr, hwsec::sim::PhysAddr>> device_regions_;
  std::map<hwsec::crypto::Sha256Digest, bool> vendor_signatures_;
  std::vector<std::uint8_t> secure_world_key_;
  std::size_t tzasc_check_id_ = 0;
  hwsec::sim::PhysAddr secure_alloc_cursor_ = 0;
};

}  // namespace hwsec::arch
