// Spectre variants (paper §4.2, [24][27][22]).
//
//  * SpectreV1 (PHT, bounds-check bypass): the victim's conditional
//    bounds check is mistrained with in-bounds calls; an out-of-bounds
//    call then transiently reads past the array and encodes the byte in
//    the probe array. Bypasses "all software defenses like bounds
//    checking" — and the fence variant shows the software mitigation.
//  * SpectreV2 (BTB, branch target injection): an attacker context
//    executes an indirect branch at a BTB-congruent virtual address to
//    inject a gadget address; the victim's indirect branch then
//    transiently executes the attacker-chosen gadget *in the victim's
//    context*. Works cross-domain because the BTB is indexed by virtual
//    address and (by default) untagged — the paper's [21] point.
//  * SpectreRSB (return stack buffer): the attacker leaves a poisoned
//    return address in the RSB across a context switch; the victim's
//    `ret` transiently executes the gadget.
//
// Every variant reports whether the probe array received the secret, so
// benches can sweep mitigations (serializing fence, BTB tagging, IBPB-
// style flush, speculation off) and watch the channel close.
#pragma once

#include <optional>

#include "attacks/transient/environment.h"

namespace hwsec::attacks {

/// Bounds-check-bypass attack against a victim gadget in the same
/// process (the victim models a kernel/sandbox API taking an index).
class SpectreV1 {
 public:
  struct Config {
    std::uint32_t training_rounds = 8;
    /// Insert a serializing fence after the bounds check (the software
    /// mitigation); the leak must then fail.
    bool victim_has_fence = false;
  };

  SpectreV1(hwsec::sim::Machine& machine, hwsec::sim::CoreId core)
      : SpectreV1(machine, core, Config{}) {}
  SpectreV1(hwsec::sim::Machine& machine, hwsec::sim::CoreId core, Config config);

  /// Places `secret` in the victim's memory OUTSIDE the bounded array and
  /// returns the out-of-bounds index that reaches its first byte.
  hwsec::sim::Word plant_secret(const std::string& secret);

  /// Leaks the byte at array1[index] (index may be out of bounds).
  std::optional<std::uint8_t> leak_byte(hwsec::sim::Word index);

  std::string leak_string(hwsec::sim::Word start_index, std::size_t len,
                          std::uint32_t retries = 3);

  UserProcess& process() { return process_; }

 private:
  void run_victim(hwsec::sim::Word index);

  Config config_;
  UserProcess process_;
  hwsec::sim::VirtAddr victim_entry_ = 0;
  hwsec::sim::PhysAddr array1_phys_ = 0;
  static constexpr hwsec::sim::Word kBound = 16;
};

/// Branch-target-injection attack: attacker and victim are separate
/// domains sharing the core's BTB.
class SpectreV2 {
 public:
  explicit SpectreV2(hwsec::sim::Machine& machine, hwsec::sim::CoreId core = 0,
                     std::uint32_t training_rounds = 4);

  /// Plants a secret in victim memory; the gadget reads it.
  void plant_secret(const std::string& secret);

  /// One full inject-train/victim-run/probe round for byte `offset` of
  /// the secret.
  std::optional<std::uint8_t> leak_byte(std::uint32_t offset);

  UserProcess& victim() { return victim_; }

 private:
  std::uint32_t training_rounds_;
  UserProcess victim_;    ///< victim process (owns gadget + secret).
  UserProcess attacker_;  ///< attacker process (trainer + probe).
  hwsec::sim::VirtAddr victim_entry_ = 0;
  hwsec::sim::VirtAddr gadget_ = 0;
  hwsec::sim::VirtAddr trainer_entry_ = 0;
  hwsec::sim::VirtAddr secret_va_ = 0;
};

/// Return-stack-buffer attack: poisoned return address across a domain
/// switch.
class SpectreRsb {
 public:
  explicit SpectreRsb(hwsec::sim::Machine& machine, hwsec::sim::CoreId core = 0);

  void plant_secret(const std::string& secret);
  std::optional<std::uint8_t> leak_byte(std::uint32_t offset);

 private:
  UserProcess victim_;
  UserProcess attacker_;
  hwsec::sim::VirtAddr victim_entry_ = 0;
  hwsec::sim::VirtAddr gadget_ = 0;
  hwsec::sim::VirtAddr poison_entry_ = 0;
  hwsec::sim::VirtAddr secret_va_ = 0;
};

}  // namespace hwsec::attacks
