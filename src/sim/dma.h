// DMA-capable peripheral model.
//
// The paper treats DMA attacks (Thunderclap, its [31]) as a first-class
// threat: a malicious or compromised peripheral reads/writes physical
// memory without going through the CPU's MMU. Whether that succeeds is
// decided purely by bus-level protections:
//   * none (SMART, TrustLite: DMA "not part of the attacker model") —
//     the device reads anything;
//   * TrustZone's TZASC / Sanctum's memory-controller filter — the bus
//     check vetoes the transaction;
//   * SGX — the transaction *succeeds* but returns MEE ciphertext.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/bus.h"
#include "sim/types.h"

namespace hwsec::sim {

class DmaDevice {
 public:
  /// `domain` is the device's bus security attribute (TrustZone gives
  /// secure-world-assigned devices a secure domain id).
  DmaDevice(Bus& bus, DomainId domain, std::string name = "dma-device");

  const std::string& name() const { return name_; }
  DomainId domain() const { return domain_; }

  struct TransferResult {
    Fault fault = Fault::kNone;
    std::uint32_t words_done = 0;
    Cycle latency = 0;
  };

  /// Reads `out.size()` words starting at `src` into `out`. Stops at the
  /// first vetoed word (partial reads are visible in words_done).
  TransferResult read_block(PhysAddr src, std::span<Word> out);

  /// Writes `in` starting at `dst`.
  TransferResult write_block(PhysAddr dst, std::span<const Word> in);

  /// Convenience: attempts to exfiltrate `bytes` from `src`; returns the
  /// bytes actually obtained (empty if the very first word was vetoed).
  std::vector<std::uint8_t> exfiltrate(PhysAddr src, std::uint32_t bytes);

 private:
  Bus* bus_;
  DomainId domain_;
  std::string name_;
};

}  // namespace hwsec::sim
