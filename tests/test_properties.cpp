// Property-based sweeps: cache invariants across geometries and policies,
// and a differential test of the CPU's ALU against an independent
// reference evaluator over randomized programs.
#include <gtest/gtest.h>

#include <map>

#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/program.h"
#include "sim/rng.h"

namespace sim = hwsec::sim;

namespace {

// ---- cache geometry properties ------------------------------------------

struct Geometry {
  std::uint32_t size_bytes;
  std::uint32_t ways;
  std::uint32_t line;
  sim::ReplacementPolicy policy;
};

class CacheGeometryTest : public ::testing::TestWithParam<Geometry> {
 protected:
  sim::Cache make() const {
    const Geometry& g = GetParam();
    return sim::Cache({.name = "sweep", .size_bytes = g.size_bytes, .ways = g.ways,
                       .line_size = g.line, .policy = g.policy, .hit_latency = 4},
                      99);
  }
};

TEST_P(CacheGeometryTest, SecondAccessToSameLineAlwaysHits) {
  sim::Cache cache = make();
  sim::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const sim::PhysAddr addr = static_cast<sim::PhysAddr>(rng.below(1 << 24));
    cache.access(addr, 0, sim::AccessType::kRead);
    EXPECT_TRUE(cache.access(addr, 0, sim::AccessType::kRead).hit) << std::hex << addr;
  }
}

TEST_P(CacheGeometryTest, SetOccupancyNeverExceedsWays) {
  sim::Cache cache = make();
  sim::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    cache.access(static_cast<sim::PhysAddr>(rng.below(1 << 22)), 3, sim::AccessType::kRead);
  }
  for (sim::PhysAddr probe = 0; probe < (1 << 22); probe += 4096 + 64) {
    ASSERT_LE(cache.occupancy(probe, 3), GetParam().ways);
  }
}

TEST_P(CacheGeometryTest, CongruentFillKeepsExactlyWaysLines) {
  sim::Cache cache = make();
  const Geometry& g = GetParam();
  const std::uint32_t sets = g.size_bytes / (g.ways * g.line);
  const sim::PhysAddr stride = g.line * sets;  // same set, different tags.
  const std::uint32_t n = g.ways + 5;
  for (std::uint32_t i = 0; i < n; ++i) {
    cache.access(i * stride, 0, sim::AccessType::kRead);
  }
  std::uint32_t present = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    present += cache.probe(i * stride) ? 1 : 0;
  }
  EXPECT_EQ(present, g.ways) << "a set holds exactly `ways` of the congruent lines";
}

TEST_P(CacheGeometryTest, FlushAllEmptiesEverything) {
  sim::Cache cache = make();
  sim::Rng rng(3);
  std::vector<sim::PhysAddr> touched;
  for (int i = 0; i < 200; ++i) {
    const sim::PhysAddr addr = static_cast<sim::PhysAddr>(rng.below(1 << 22));
    cache.access(addr, 0, sim::AccessType::kRead);
    touched.push_back(addr);
  }
  cache.flush_all();
  for (const sim::PhysAddr addr : touched) {
    ASSERT_FALSE(cache.probe(addr));
  }
}

TEST_P(CacheGeometryTest, StatsBalance) {
  sim::Cache cache = make();
  sim::Rng rng(4);
  const std::uint64_t accesses = 3000;
  for (std::uint64_t i = 0; i < accesses; ++i) {
    cache.access(static_cast<sim::PhysAddr>(rng.below(1 << 20)), 0, sim::AccessType::kRead);
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, accesses);
  EXPECT_LE(cache.stats().evictions, cache.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(Geometry{1024, 1, 32, sim::ReplacementPolicy::kLru},      // direct-mapped
                      Geometry{4096, 4, 64, sim::ReplacementPolicy::kLru},
                      Geometry{4096, 4, 64, sim::ReplacementPolicy::kTreePlru},
                      Geometry{4096, 4, 64, sim::ReplacementPolicy::kRandom},
                      Geometry{32768, 8, 64, sim::ReplacementPolicy::kLru},
                      Geometry{65536, 16, 128, sim::ReplacementPolicy::kTreePlru},
                      Geometry{2048, 32, 64, sim::ReplacementPolicy::kRandom}));  // fully assoc.

// ---- randomized CPU vs. reference interpreter ------------------------------

struct RefState {
  std::array<sim::Word, sim::kNumRegs> regs{};
  sim::Word reg(sim::Reg r) const { return r == sim::kZero ? 0 : regs[r]; }
  void set(sim::Reg r, sim::Word v) {
    if (r != sim::kZero) {
      regs[r] = v;
    }
  }
};

/// Independent straight-line ALU evaluator (no shared code with the CPU).
void ref_eval(const sim::Instruction& i, RefState& s) {
  using O = sim::Opcode;
  switch (i.op) {
    case O::kLoadImm: s.set(i.rd, static_cast<sim::Word>(i.imm)); break;
    case O::kAdd: s.set(i.rd, s.reg(i.rs1) + s.reg(i.rs2)); break;
    case O::kSub: s.set(i.rd, s.reg(i.rs1) - s.reg(i.rs2)); break;
    case O::kAnd: s.set(i.rd, s.reg(i.rs1) & s.reg(i.rs2)); break;
    case O::kOr: s.set(i.rd, s.reg(i.rs1) | s.reg(i.rs2)); break;
    case O::kXor: s.set(i.rd, s.reg(i.rs1) ^ s.reg(i.rs2)); break;
    case O::kShl: s.set(i.rd, s.reg(i.rs1) << (s.reg(i.rs2) & 31)); break;
    case O::kShr: s.set(i.rd, s.reg(i.rs1) >> (s.reg(i.rs2) & 31)); break;
    case O::kMul: s.set(i.rd, s.reg(i.rs1) * s.reg(i.rs2)); break;
    case O::kAddImm: s.set(i.rd, s.reg(i.rs1) + static_cast<sim::Word>(i.imm)); break;
    case O::kAndImm: s.set(i.rd, s.reg(i.rs1) & static_cast<sim::Word>(i.imm)); break;
    case O::kXorImm: s.set(i.rd, s.reg(i.rs1) ^ static_cast<sim::Word>(i.imm)); break;
    case O::kShlImm: s.set(i.rd, s.reg(i.rs1) << (static_cast<sim::Word>(i.imm) & 31)); break;
    case O::kShrImm: s.set(i.rd, s.reg(i.rs1) >> (static_cast<sim::Word>(i.imm) & 31)); break;
    default: break;
  }
}

class RandomAluProgramTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAluProgramTest, CpuMatchesReferenceInterpreter) {
  sim::Rng rng(GetParam());
  sim::Machine machine(sim::MachineProfile::server(), GetParam());
  machine.cpu(0).mmu().set_bare_mode(true);

  sim::ProgramBuilder b(0x8000);
  RefState ref;
  const std::array<sim::Opcode, 14> pool = {
      sim::Opcode::kLoadImm, sim::Opcode::kAdd, sim::Opcode::kSub, sim::Opcode::kAnd,
      sim::Opcode::kOr, sim::Opcode::kXor, sim::Opcode::kShl, sim::Opcode::kShr,
      sim::Opcode::kMul, sim::Opcode::kAddImm, sim::Opcode::kAndImm, sim::Opcode::kXorImm,
      sim::Opcode::kShlImm, sim::Opcode::kShrImm};
  std::vector<sim::Instruction> generated;
  for (int i = 0; i < 120; ++i) {
    sim::Instruction inst;
    inst.op = pool[rng.below(pool.size())];
    // r1..r14 (avoid the link register so calls/rets stay out of scope).
    inst.rd = static_cast<sim::Reg>(1 + rng.below(14));
    inst.rs1 = static_cast<sim::Reg>(rng.below(15));
    inst.rs2 = static_cast<sim::Reg>(rng.below(15));
    inst.imm = static_cast<std::int64_t>(rng.next_u32() & 0xFFFF);
    generated.push_back(inst);
  }
  // Assemble via the raw builder surface: replay each decoded instruction.
  for (const auto& inst : generated) {
    switch (inst.op) {
      case sim::Opcode::kLoadImm: b.li(inst.rd, inst.imm); break;
      case sim::Opcode::kAdd: b.add(inst.rd, inst.rs1, inst.rs2); break;
      case sim::Opcode::kSub: b.sub(inst.rd, inst.rs1, inst.rs2); break;
      case sim::Opcode::kAnd: b.and_(inst.rd, inst.rs1, inst.rs2); break;
      case sim::Opcode::kOr: b.or_(inst.rd, inst.rs1, inst.rs2); break;
      case sim::Opcode::kXor: b.xor_(inst.rd, inst.rs1, inst.rs2); break;
      case sim::Opcode::kShl: b.shl(inst.rd, inst.rs1, inst.rs2); break;
      case sim::Opcode::kShr: b.shr(inst.rd, inst.rs1, inst.rs2); break;
      case sim::Opcode::kMul: b.mul(inst.rd, inst.rs1, inst.rs2); break;
      case sim::Opcode::kAddImm: b.addi(inst.rd, inst.rs1, inst.imm); break;
      case sim::Opcode::kAndImm: b.andi(inst.rd, inst.rs1, inst.imm); break;
      case sim::Opcode::kXorImm: b.xori(inst.rd, inst.rs1, inst.imm); break;
      case sim::Opcode::kShlImm: b.shli(inst.rd, inst.rs1, inst.imm); break;
      case sim::Opcode::kShrImm: b.shri(inst.rd, inst.rs1, inst.imm); break;
      default: break;
    }
    ref_eval(inst, ref);
  }
  b.halt();
  const sim::Program program = b.build();
  machine.cpu(0).load_program(program);
  const auto result = machine.cpu(0).run_from(program.base, 1000);
  ASSERT_TRUE(result.halted);
  for (std::uint32_t r = 1; r < sim::kNumRegs; ++r) {
    ASSERT_EQ(machine.cpu(0).reg(static_cast<sim::Reg>(r)),
              ref.reg(static_cast<sim::Reg>(r)))
        << "register r" << r << " diverged (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAluProgramTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

}  // namespace
