// Per-trial watchdog shared between the campaign layer and the execution
// engine.
//
// A trial arms one TrialWatchdog on its Machine (Machine::arm_watchdog);
// the Cpu checks it on the commit path and converts a trip into a thrown
// SimError of kind kTimedOut, which the resilient campaign runner records
// as a structured per-slot outcome.
//
// Two independent triggers:
//  * cycle_budget — a *deterministic* deadline in simulated cycles. A guest
//    that spins forever exhausts the budget at the same simulated point on
//    every run, so the resulting TimedOut outcome is bit-identical at any
//    worker count.
//  * cancel — set asynchronously by the wall-clock monitor for trials that
//    hang in host code. Inherently nondeterministic (it reflects host
//    timing); a backstop, not the primary mechanism. Cooperative: only
//    code that polls the flag (the Cpu commit loop) can be cancelled.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/types.h"

namespace hwsec::sim {

struct TrialWatchdog {
  Cycle cycle_budget = 0;          ///< 0 = no cycle deadline.
  std::atomic<bool> cancel{false}; ///< set by the wall-clock monitor.
};

}  // namespace hwsec::sim
