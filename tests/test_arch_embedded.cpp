// Embedded architectures: SMART, Sancus, TrustLite, TyTAN (§3.3).
#include <gtest/gtest.h>

#include "arch/sancus.h"
#include "arch/smart.h"
#include "arch/trustlite.h"
#include "sim/dma.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;

namespace {

tee::EnclaveImage module_image(const std::string& name = "module") {
  tee::EnclaveImage i;
  i.name = name;
  i.code = {0x11, 0x22};
  i.secret = {'i', 'o', 't'};
  return i;
}

// ---- SMART -----------------------------------------------------------------

class SmartTest : public ::testing::Test {
 protected:
  SmartTest() : machine_(sim::MachineProfile::embedded(), 51), smart_(machine_) {}
  sim::Machine machine_;
  arch::Smart smart_;
};

TEST_F(SmartTest, KeyReadableOnlyFromRom) {
  EXPECT_EQ(smart_.try_key_access(smart_.rom_base() + 0x10), sim::Fault::kNone);
  EXPECT_EQ(smart_.try_key_access(/*application pc=*/0x80000),
            sim::Fault::kSecurityViolation);
}

TEST_F(SmartTest, RomEnterableOnlyAtFirstInstruction) {
  const auto& mpu = machine_.mpu();
  EXPECT_EQ(mpu.check_fetch(smart_.rom_base(), /*from=*/0x80000), sim::Fault::kNone);
  EXPECT_EQ(mpu.check_fetch(smart_.rom_base() + 8, /*from=*/0x80000),
            sim::Fault::kSecurityViolation)
      << "mid-routine entry would skip the key-handling prologue";
}

TEST_F(SmartTest, AttestationReportVerifies) {
  const sim::PhysAddr region = machine_.alloc_frame();
  machine_.memory().write32(region, 0xF1F2F3F4);
  tee::Nonce nonce{};
  nonce[0] = 1;
  const auto report = smart_.attest_region(region, 64, nonce);
  EXPECT_TRUE(tee::verify_report(smart_.report_verification_key(), report, nonce));
}

TEST_F(SmartTest, AttestationDetectsModifiedCode) {
  const sim::PhysAddr region = machine_.alloc_frame();
  tee::Nonce nonce{};
  const auto before = smart_.attest_region(region, 64, nonce);
  machine_.memory().write8(region + 5, 0xEE);  // the "malware" writes itself in.
  const auto after = smart_.attest_region(region, 64, nonce);
  EXPECT_NE(before.measurement, after.measurement);
  EXPECT_FALSE(hwsec::crypto::digest_equal(before.mac, after.mac));
}

TEST_F(SmartTest, AttestationBlocksInterruptsForItsDuration) {
  const sim::PhysAddr region = machine_.alloc_frame();
  smart_.attest_region(region, sim::kPageSize, tee::Nonce{});
  EXPECT_TRUE(smart_.interrupts_enabled()) << "re-enabled afterwards";
  EXPECT_GT(smart_.last_attestation_cycles(), 100000u)
      << "a page-sized attestation blocks interrupts for a long time — "
         "why SMART is unfit for real-time (§3.3)";
}

TEST_F(SmartTest, NoIsolationPrimitives) {
  EXPECT_EQ(smart_.create_enclave(module_image()).error, tee::EnclaveError::kUnsupported);
}

TEST_F(SmartTest, DmaLiftsTheKeyThreatModelGap) {
  // "does not consider ... DMA attacks in its threat model": the MPU gate
  // filters CPU accesses only.
  sim::DmaDevice device(machine_.bus(), arch::kUntrustedDeviceDomain);
  const auto bytes = device.exfiltrate(smart_.key_phys(), smart_.key_bytes());
  ASSERT_EQ(bytes.size(), smart_.key_bytes());
  EXPECT_EQ(bytes, smart_.report_verification_key())
      << "the attestation key is fully exposed to a DMA-capable peripheral";
}

TEST_F(SmartTest, IsaLevelGateEndToEnd) {
  // The gate enforced on REAL simulated execution: the same key-reading
  // instruction sequence succeeds when fetched from ROM and faults when
  // fetched from application flash.
  sim::Cpu& cpu = machine_.cpu(0);

  // ROM-resident routine (placed at the ROM base = its entry point).
  sim::ProgramBuilder rom(smart_.rom_base());
  rom.label("rom_entry").lw(sim::R2, sim::R1).halt();
  const sim::Program rom_prog = rom.build();
  cpu.load_program(rom_prog);

  // Identical code in application flash.
  sim::ProgramBuilder app(0x80000);
  app.label("app_entry").lw(sim::R2, sim::R1).halt();
  const sim::Program app_prog = app.build();
  cpu.load_program(app_prog);

  // ROM execution reads the key word.
  cpu.set_reg(sim::R1, smart_.key_phys());
  const auto rom_run = cpu.run_from(rom_prog.address_of("rom_entry"), 16);
  EXPECT_TRUE(rom_run.halted);
  std::uint32_t expected = 0;
  const auto key = smart_.report_verification_key();
  for (int i = 3; i >= 0; --i) {
    expected = (expected << 8) | key[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(cpu.reg(sim::R2), expected);

  // Application execution of the very same sequence faults at the load.
  cpu.set_reg(sim::R1, smart_.key_phys());
  cpu.set_reg(sim::R2, 0);
  const auto app_run = cpu.run_from(app_prog.address_of("app_entry"), 16);
  EXPECT_EQ(app_run.stop_fault, sim::Fault::kSecurityViolation);
  EXPECT_EQ(cpu.reg(sim::R2), 0u) << "no key byte reached the register file";
}

TEST_F(SmartTest, IsaLevelEntryPointEnforcement) {
  // Jumping into the middle of the ROM routine (skipping the prologue)
  // is vetoed by the fetch-side entry-point check.
  sim::Cpu& cpu = machine_.cpu(0);
  sim::ProgramBuilder rom(smart_.rom_base());
  rom.label("rom_entry").nop().label("mid").lw(sim::R2, sim::R1).halt();
  cpu.load_program(rom.build());

  sim::ProgramBuilder app(0x90000);
  app.label("jump_mid").jump_abs(smart_.rom_base() + 4).halt();
  const sim::Program app_prog = app.build();
  cpu.load_program(app_prog);

  const auto run = cpu.run_from(app_prog.address_of("jump_mid"), 16);
  EXPECT_EQ(run.stop_fault, sim::Fault::kSecurityViolation)
      << "mid-routine entry must fault at fetch";
}

// ---- Sancus ------------------------------------------------------------------

class SancusTest : public ::testing::Test {
 protected:
  SancusTest() : machine_(sim::MachineProfile::embedded(), 52), sancus_(machine_) {}
  sim::Machine machine_;
  arch::Sancus sancus_;
};

TEST_F(SancusTest, MultipleIsolatedModules) {
  const auto a = sancus_.create_enclave(module_image("a"));
  const auto b = sancus_.create_enclave(module_image("b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const tee::EnclaveInfo* ia = sancus_.enclave(a.value);
  ASSERT_NE(sancus_.enclave(b.value), nullptr);
  // Module A's code may touch A's data but not B's.
  EXPECT_EQ(sancus_.try_data_access(a.value, /*pc=*/ia->base), sim::Fault::kNone);
  EXPECT_EQ(sancus_.try_data_access(b.value, /*pc=*/ia->base),
            sim::Fault::kSecurityViolation);
  // Untrusted application code touches neither.
  EXPECT_EQ(sancus_.try_data_access(a.value, /*pc=*/0x80000),
            sim::Fault::kSecurityViolation);
  EXPECT_EQ(sancus_.try_data_access(b.value, /*pc=*/0x80000),
            sim::Fault::kSecurityViolation);
}

TEST_F(SancusTest, VendorDerivesTheSameModuleKey) {
  const auto created = sancus_.create_enclave(module_image());
  const tee::EnclaveInfo* info = sancus_.enclave(created.value);
  tee::Nonce nonce{};
  nonce[4] = 0x44;
  const auto report = sancus_.attest(created.value, nonce);
  ASSERT_TRUE(report.ok());
  const auto vendor_key = sancus_.derive_module_key(info->name, info->measurement);
  EXPECT_TRUE(tee::verify_report(vendor_key, report.value, nonce));
  // A module with different code gets a different key.
  const auto other_key =
      sancus_.derive_module_key(info->name, tee::measure_image(module_image("other")));
  EXPECT_FALSE(tee::verify_report(other_key, report.value, nonce));
}

TEST_F(SancusTest, DestroyRemovesIsolationAndScrubs) {
  const auto created = sancus_.create_enclave(module_image());
  const tee::EnclaveInfo* info = sancus_.enclave(created.value);
  const sim::PhysAddr data = info->base + sim::kPageSize;
  ASSERT_EQ(machine_.memory().read8(data), 'i');
  sancus_.destroy_enclave(created.value);
  EXPECT_EQ(machine_.memory().read8(data), 0u);
  EXPECT_EQ(machine_.mpu().check(data, sim::AccessType::kRead, 0x80000), sim::Fault::kNone);
}

// ---- TrustLite -----------------------------------------------------------------

class TrustLiteTest : public ::testing::Test {
 protected:
  TrustLiteTest() : machine_(sim::MachineProfile::embedded(), 53), trustlite_(machine_) {}
  sim::Machine machine_;
  arch::TrustLite trustlite_;
};

TEST_F(TrustLiteTest, TrustletsLoadAtBootThenConfigLocks) {
  const auto a = trustlite_.create_enclave(module_image("a"));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(trustlite_.call_enclave(a.value, 0, [](tee::EnclaveContext&) {}),
            tee::EnclaveError::kNotInitialized)
      << "trustlets only become live at boot";
  ASSERT_EQ(trustlite_.boot(), tee::EnclaveError::kOk);
  EXPECT_EQ(trustlite_.call_enclave(a.value, 0, [](tee::EnclaveContext&) {}),
            tee::EnclaveError::kOk);
  // After boot the EA-MPU is locked: static protection regions.
  EXPECT_EQ(trustlite_.create_enclave(module_image("late")).error,
            tee::EnclaveError::kConfigLocked);
  EXPECT_EQ(trustlite_.destroy_enclave(a.value), tee::EnclaveError::kConfigLocked);
}

TEST_F(TrustLiteTest, EaMpuGatesTrustletData) {
  const auto a = trustlite_.create_enclave(module_image("a"));
  trustlite_.boot();
  const tee::EnclaveInfo* info = trustlite_.enclave(a.value);
  EXPECT_EQ(trustlite_.try_data_access(a.value, info->base), sim::Fault::kNone);
  EXPECT_EQ(trustlite_.try_data_access(a.value, 0x80000), sim::Fault::kSecurityViolation);
}

TEST_F(TrustLiteTest, AttestationAfterBootVerifies) {
  const auto a = trustlite_.create_enclave(module_image("a"));
  trustlite_.boot();
  tee::Nonce nonce{};
  nonce[6] = 6;
  const auto report = trustlite_.attest(a.value, nonce);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(tee::verify_report(trustlite_.report_verification_key(), report.value, nonce));
}

TEST_F(TrustLiteTest, DmaNotInThreatModel) {
  const auto a = trustlite_.create_enclave(module_image("a"));
  trustlite_.boot();
  const tee::EnclaveInfo* info = trustlite_.enclave(a.value);
  sim::DmaDevice device(machine_.bus(), arch::kUntrustedDeviceDomain);
  const auto bytes = device.exfiltrate(info->base + sim::kPageSize, 3);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "iot")
      << "trustlet data is DMA-readable (the paper's §3.3 criticism)";
}

// ---- TyTAN -----------------------------------------------------------------------

class TyTanTest : public ::testing::Test {
 protected:
  TyTanTest() : machine_(sim::MachineProfile::embedded(), 54), tytan_(machine_) {}
  sim::Machine machine_;
  arch::TyTan tytan_;
};

TEST_F(TyTanTest, SecureBootRefusesTamperedPlatform) {
  tytan_.tamper_firmware();
  EXPECT_EQ(tytan_.boot(), tee::EnclaveError::kVerificationFailed);
}

TEST_F(TyTanTest, DynamicTrustletLoadingAfterBoot) {
  ASSERT_EQ(tytan_.boot(), tee::EnclaveError::kOk);
  const auto late = tytan_.create_enclave(module_image("late"));
  ASSERT_TRUE(late.ok()) << "TyTAN keeps the EA-MPU programmable via its runtime";
  EXPECT_EQ(tytan_.call_enclave(late.value, 0, [](tee::EnclaveContext&) {}),
            tee::EnclaveError::kOk);
  EXPECT_EQ(tytan_.destroy_enclave(late.value), tee::EnclaveError::kOk);
}

TEST_F(TyTanTest, SealUnsealBoundToMeasurement) {
  tytan_.boot();
  const auto a = tytan_.create_enclave(module_image("a"));
  const auto b = tytan_.create_enclave(module_image("b"));
  const std::vector<std::uint8_t> data = {0xCA, 0xFE, 0x01};
  const auto blob = tytan_.seal(a.value, data);
  ASSERT_TRUE(blob.ok());
  EXPECT_NE(blob.value.ciphertext, data) << "sealed blob is not plaintext";
  const auto opened = tytan_.unseal(a.value, blob.value);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value, data);
  EXPECT_EQ(tytan_.unseal(b.value, blob.value).error, tee::EnclaveError::kVerificationFailed)
      << "a different trustlet cannot unseal";
}

TEST_F(TyTanTest, TamperedBlobRejected) {
  tytan_.boot();
  const auto a = tytan_.create_enclave(module_image("a"));
  auto blob = tytan_.seal(a.value, std::vector<std::uint8_t>{1, 2, 3});
  blob.value.ciphertext[0] ^= 0xFF;
  EXPECT_EQ(tytan_.unseal(a.value, blob.value).error, tee::EnclaveError::kVerificationFailed);
}

TEST_F(TyTanTest, RealTimeEntryCostIsBounded) {
  tytan_.boot();
  const auto a = tytan_.create_enclave(module_image("a"));
  const sim::Cycle before = machine_.cpu(0).cycles();
  tytan_.call_enclave(a.value, 0, [](tee::EnclaveContext&) {});
  const sim::Cycle entry_exit = machine_.cpu(0).cycles() - before;
  EXPECT_LE(entry_exit, tytan_.worst_case_entry_cycles())
      << "bounded trustlet entry/exit is the real-time guarantee";
}

}  // namespace
