// Batched trace capture wired through the campaign engine.
//
// The streaming accumulators (sca/streaming.h) decouple analysis memory
// from campaign size; this layer does the same for *capture*: instead of
// materializing a million-trace TraceSet and then analyzing it, pooled
// workers produce fixed-size batches in parallel waves and a consumer
// ingests them in batch-index order. Peak trace memory is one wave
// (window_batches × batch_traces traces), independent of campaign size.
//
// Determinism: a batch's entire content derives from (seed, batch index)
// — power batches via attacks::collect_aes_trace_batch, observation
// batches via a per-batch derived rng_seed — and the sink always sees
// batches in index order, so the delivered stream is a pure function of
// the config at any worker count. The power stream is byte-identical to
// what attacks::collect_aes_traces_parallel(seed, batch) materializes,
// which is what the streaming-vs-materialized equivalence suite leans on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "attacks/cache/full_key_recovery.h"
#include "attacks/physical/power_analysis.h"
#include "sca/streaming.h"
#include "sca/trace.h"
#include "sim/machine.h"

namespace hwsec::core {

struct BatchedCaptureConfig {
  std::uint64_t seed = 31337;
  std::size_t total_traces = 0;
  /// Traces per campaign trial; 0 picks collect_aes_traces_parallel's
  /// default (64) so the stream matches the materialized collector.
  std::size_t batch_traces = 0;
  unsigned workers = 0;  ///< 0 = ThreadPool::default_workers().
  /// Batches materialized at once (the capture window); 0 = 2× workers.
  std::size_t window_batches = 0;
};

/// Called once per batch, in batch-index order. The TraceSet is only
/// valid for the duration of the call.
using TraceBatchSink = std::function<void(std::size_t batch_index, const sca::TraceSet&)>;

/// Windowed batched AES power capture over run_campaign: one trial per
/// batch, waves of `window_batches` trials fanned across the pool, each
/// wave's batches delivered to `sink` in index order and then freed.
/// Returns the number of traces captured.
std::size_t capture_aes_power_batches(const BatchedCaptureConfig& config,
                                      const hwsec::crypto::AesKey& key,
                                      attacks::AesVariant variant,
                                      const hwsec::sca::RecorderConfig& recorder_config,
                                      const TraceBatchSink& sink);

/// End-to-end streaming CPA campaign: batched capture feeding one
/// StreamingCpa. Equivalent to cpa_attack_key(collect_aes_traces_parallel(
/// key, variant, total, rec, seed, batch)) with O(window) trace memory.
hwsec::sca::StreamingCpa run_streaming_cpa_campaign(
    const BatchedCaptureConfig& config, const hwsec::crypto::AesKey& key,
    attacks::AesVariant variant, const hwsec::sca::RecorderConfig& recorder_config);

/// Same capture, feeding a StreamingSecondOrderCpa (masked victims).
hwsec::sca::StreamingSecondOrderCpa run_streaming_second_order_campaign(
    const BatchedCaptureConfig& config, const hwsec::crypto::AesKey& key,
    const hwsec::sca::RecorderConfig& recorder_config, std::size_t mask_sample = 1);

struct ObservationCaptureConfig {
  std::uint64_t seed = 2024;
  std::uint64_t total_observations = 0;
  std::size_t batch_observations = 64;
  unsigned workers = 0;
  std::size_t window_batches = 0;  ///< 0 = 2× workers.
  attacks::CacheAttackConfig attack{};
};

/// Called once per observation batch, in batch-index order.
using ObservationBatchSink =
    std::function<void(std::size_t batch_index, const std::vector<attacks::LineObservation>&)>;

/// Windowed batched cache-channel observation capture: each trial leases a
/// machine from the campaign's MachinePool (snapshot/reset reuse), lays
/// out the victim tables, and records one batch of Flush+Reload line
/// observations of a T-table AES under `key`. Batch b's plaintext stream
/// derives from derive_seed(seed, b); the delivered observation stream is
/// deterministic at any worker count (it differs from the single-machine
/// sequential collector's stream — statistically equivalent, not
/// sample-identical). Returns the number of observations captured.
std::uint64_t capture_line_observation_batches(const ObservationCaptureConfig& config,
                                               const sim::MachineProfile& profile,
                                               const hwsec::crypto::AesKey& key,
                                               const ObservationBatchSink& sink);

}  // namespace hwsec::core
