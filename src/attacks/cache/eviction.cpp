#include "attacks/cache/eviction.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;

EvictionSetBuilder::EvictionSetBuilder(sim::Machine& machine, FrameAllocator allocator,
                                       std::uint32_t max_frames)
    : machine_(&machine),
      allocator_(allocator ? std::move(allocator)
                           : FrameAllocator([&machine] { return machine.alloc_frame(); })),
      max_frames_(max_frames) {}

std::vector<sim::PhysAddr> EvictionSetBuilder::build(sim::PhysAddr target, std::uint32_t count) {
  const sim::Cache& llc = machine_->caches().llc();
  const std::uint32_t target_set = llc.set_index(target);
  const std::uint32_t line = llc.config().line_size;

  std::vector<sim::PhysAddr> result;
  auto harvest = [&](sim::PhysAddr frame) {
    for (sim::PhysAddr a = frame; a < frame + sim::kPageSize && result.size() < count;
         a += line) {
      if (llc.set_index(a) == target_set) {
        result.push_back(a);
      }
    }
  };

  for (sim::PhysAddr frame : pool_) {
    harvest(frame);
    if (result.size() >= count) {
      return result;
    }
  }
  while (result.size() < count && pool_.size() < max_frames_) {
    sim::PhysAddr frame = 0;
    try {
      frame = allocator_();
    } catch (const std::exception&) {
      break;  // attacker ran out of memory: partial eviction set.
    }
    pool_.push_back(frame);
    harvest(frame);
  }
  return result;
}

}  // namespace hwsec::attacks
