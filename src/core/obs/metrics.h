// Lock-cheap metrics registry: monotonic counters, gauges, and fixed-bucket
// latency histograms for the campaign engine.
//
// The hot path is an *uncontended* atomic increment: every thread gets its
// own shard (a fixed array of relaxed atomics, registered once under the
// registry mutex on first use), and scrapes merge all shards. No increment
// ever takes a lock or touches a cacheline another thread is writing, so
// instrumenting a 50 us trial costs a handful of nanoseconds.
//
// Cost model and the off switch:
//  * enabled (default): counter add = one relaxed load (the enable flag)
//    plus one relaxed fetch_add on thread-local memory;
//  * disabled (set_enabled(false)): the relaxed load and a predictable
//    branch — nothing is written anywhere;
//  * the Cpu commit path goes further: its probes compile to nothing unless
//    the HWSEC_OBS_CPU CMake option is ON (see sim/obs_hook.h).
//
// Metrics are identified by name, interned once into a small fixed table
// (handles are cheap value types call sites cache in a static). Histograms
// use power-of-two microsecond buckets: bucket i counts observations in
// [2^i, 2^(i+1)) us, clamped to the last bucket.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hwsec::obs {

inline constexpr std::size_t kMaxCounters = 64;
inline constexpr std::size_t kMaxGauges = 32;
inline constexpr std::size_t kMaxHistograms = 16;
inline constexpr std::size_t kHistogramBuckets = 32;

class MetricsRegistry;

/// Cheap value handle to a registered counter. Copyable; cache it in a
/// static at the call site to pay the name lookup once.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) const;

 private:
  friend class MetricsRegistry;
  explicit Counter(std::size_t id) : id_(id) {}
  std::size_t id_ = 0;
};

/// Handle to a last-write-wins gauge (not sharded: sets are rare).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t value) const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::size_t id) : id_(id) {}
  std::size_t id_ = 0;
};

/// Handle to a fixed-bucket latency histogram.
class Histogram {
 public:
  Histogram() = default;
  void observe_ns(std::uint64_t ns) const;
  void observe(std::chrono::nanoseconds d) const {
    observe_ns(d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count()));
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::size_t id) : id_(id) {}
  std::size_t id_ = 0;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum_us = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};  ///< bucket i: [2^i, 2^(i+1)) us.
};

/// Point-in-time merged view of every shard.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns `name` (idempotent) and returns its handle. Throws
  /// std::length_error when the fixed table is full.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Merges every thread's shard into one snapshot. Safe to call while
  /// other threads keep incrementing (relaxed reads observe a consistent
  /// enough view for monitoring; call at a quiescent point for exactness).
  MetricsSnapshot snapshot() const;

  /// Snapshot serialized as a stable JSON document (counters, gauges,
  /// histograms with per-bucket counts).
  std::string to_json() const;

  /// Runtime kill switch. Disabled: increments become a relaxed load and a
  /// branch. Counts accumulated so far are retained.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every shard and gauge (registrations survive). Test helper —
  /// call only at a quiescent point.
  void reset_for_test();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>, kMaxHistograms>
        hist_buckets{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_count{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_sum_ns{};
  };

  MetricsRegistry() = default;

  Shard& local_shard();
  Shard* register_shard();
  std::size_t intern(std::vector<std::string>& names, std::size_t limit, std::string_view name,
                     const char* kind);

  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges_{};
};

/// Shorthands for the registry singleton.
inline Counter counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge gauge(std::string_view name) { return MetricsRegistry::instance().gauge(name); }
inline Histogram histogram(std::string_view name) {
  return MetricsRegistry::instance().histogram(name);
}

/// RAII latency sample: observes the elapsed wall time into `h` on
/// destruction. Skips the clock reads entirely when metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h)
      : histogram_(h), armed_(MetricsRegistry::instance().enabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (armed_) {
      histogram_.observe(std::chrono::steady_clock::now() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram histogram_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Installs the (compile-time gated) Cpu commit-path probe; a no-op unless
/// the build sets HWSEC_OBS_CPU. Idempotent.
void install_cpu_probe();

}  // namespace hwsec::obs
