// Self-chaos harness: the paper's fault-injection mindset (Section 5)
// turned on our own framework.
//
// A ChaosInjector deterministically injects the failure modes a long
// unattended sweep actually meets — thrown trial exceptions, host
// allocation failure, scheduling delays — keyed by (chaos seed, trial
// index, attempt). The injected pattern is a pure function of those
// three values, so a chaos campaign's outcome vector is bit-identical at
// any worker count, which is what lets the tests prove the containment
// layer works rather than just hoping it does.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hwsec::core {

struct ChaosConfig {
  std::uint64_t seed = 0xC4A05;        ///< chaos stream seed (independent of the campaign seed).
  double throw_probability = 0.0;      ///< inject std::runtime_error before the trial body.
  double bad_alloc_probability = 0.0;  ///< inject std::bad_alloc before the trial body.
  double delay_probability = 0.0;      ///< sleep the worker before the trial body.
  std::uint32_t max_delay_us = 500;    ///< upper bound for an injected delay.
  /// Worker-process chaos, honored ONLY by shard worker processes (the
  /// sharded supervisor's children) — never by in-process runners, where a
  /// self-SIGKILL would take the whole campaign down. Keyed by
  /// (seed, trial index, shard-assignment attempt), so a migrated shard
  /// rolls fresh dice and a chaos campaign still converges.
  double worker_kill_probability = 0.0;  ///< raise(SIGKILL) before a trial.
  double worker_stop_probability = 0.0;  ///< raise(SIGSTOP): a hang, caught by heartbeat age.

  bool enabled() const {
    return throw_probability > 0.0 || bad_alloc_probability > 0.0 || delay_probability > 0.0;
  }
  bool worker_faults_enabled() const {
    return worker_kill_probability > 0.0 || worker_stop_probability > 0.0;
  }
};

/// Deterministic worker-process fault decision (shard workers only).
enum class WorkerFault : std::uint8_t {
  kNone,
  kKill,  ///< the worker SIGKILLs itself: an abrupt crash.
  kStop,  ///< the worker SIGSTOPs itself: a hang the heartbeat must catch.
};

class ChaosInjector {
 public:
  ChaosInjector(const ChaosConfig& config, std::size_t trial_index, unsigned attempt);

  /// Rolls delay, allocation-failure, and exception injection in a fixed
  /// order (all three dice are always thrown, so the decisions stay
  /// independent). May sleep; may throw std::bad_alloc or
  /// std::runtime_error. No-op when the config is disabled.
  void inject();

  /// Rolls the worker-process fault dice on a stream independent of the
  /// in-trial dice above (inject()'s decisions are unchanged by enabling
  /// worker faults, so sharded chaos campaigns stay bit-identical to the
  /// in-process reference). Pure decision — the caller (a shard worker)
  /// raises the signal.
  WorkerFault roll_worker_fault() const;

 private:
  const ChaosConfig& config_;
  std::uint64_t stream_seed_;
};

}  // namespace hwsec::core
