#include "tee/cflat.h"

namespace hwsec::tee {

namespace sim = hwsec::sim;
namespace crypto = hwsec::crypto;

CflatMonitor::CflatMonitor(sim::Cpu& cpu) : cpu_(&cpu) {
  cpu_->set_control_flow_hook(
      [this](sim::VirtAddr from, sim::VirtAddr to) { on_transfer(from, to); });
}

CflatMonitor::~CflatMonitor() { cpu_->set_control_flow_hook(nullptr); }

void CflatMonitor::begin() {
  active_ = true;
  transfers_ = 0;
  running_ = crypto::Sha256::hash(std::string{"cflat-seed"});
}

void CflatMonitor::on_transfer(sim::VirtAddr from, sim::VirtAddr to) {
  if (!active_) {
    return;
  }
  ++transfers_;
  crypto::Sha256 h;
  h.update(running_);
  std::uint8_t edge[8];
  for (int i = 0; i < 4; ++i) {
    edge[i] = static_cast<std::uint8_t>(from >> (8 * i));
    edge[4 + i] = static_cast<std::uint8_t>(to >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(edge, 8));
  running_ = h.finalize();
}

crypto::Sha256Digest CflatMonitor::end() {
  active_ = false;
  return running_;
}

AttestationReport attest_path(std::span<const std::uint8_t> platform_key,
                              const crypto::Sha256Digest& path_digest, const Nonce& nonce) {
  return make_report(platform_key, path_digest, nonce);
}

bool verify_path(std::span<const std::uint8_t> platform_key, const AttestationReport& report,
                 const Nonce& nonce, const std::vector<crypto::Sha256Digest>& legal_paths) {
  if (!verify_report(platform_key, report, nonce)) {
    return false;
  }
  for (const auto& legal : legal_paths) {
    if (crypto::digest_equal(legal, report.measurement)) {
      return true;
    }
  }
  return false;
}

}  // namespace hwsec::tee
