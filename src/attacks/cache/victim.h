// The shared victim for all software cache side-channel attacks: a
// T-table AES whose table lookups go through the simulated cache
// hierarchy (§4.1's canonical target, after Osvik/Shamir/Tromer [34]).
//
// The victim can live in three habitats, which is what the E3/E4
// experiments compare:
//  * a plain process (tables in ordinary shared memory — Flush+Reload's
//    precondition),
//  * inside a TEE (tables in enclave memory; entry/exit runs the
//    architecture's defensive hooks),
//  * with a constant-time implementation (no table, nothing to observe).
#pragma once

#include <functional>
#include <memory>

#include "crypto/aes.h"
#include "sim/machine.h"
#include "tee/architecture.h"

namespace hwsec::attacks {

/// Physical placement of the victim's lookup tables.
struct TableLayout {
  /// Base of each table: T0..T3 (256 × 4-byte entries) and the final
  /// round's S-box (256 × 1 byte, padded to 4-byte slots to keep line
  /// math uniform).
  std::array<hwsec::sim::PhysAddr, 5> base{};

  /// Physical address of `table`'s entry `index`.
  hwsec::sim::PhysAddr entry(std::uint32_t table, std::uint32_t index) const {
    return base[table] + 4 * index;
  }
  /// Bytes covered by one table.
  static constexpr std::uint32_t table_bytes() { return 256 * 4; }
};

/// Computes the layout for tables packed at `region` (5 KiB).
TableLayout layout_tables(hwsec::sim::PhysAddr region);

/// AES encryption victim whose table accesses hit the simulated caches.
class AesCacheVictim {
 public:
  /// Plain-process victim: tables at `table_region` (>= 5 KiB), accesses
  /// issued on `core` as `domain`.
  AesCacheVictim(hwsec::sim::Machine& machine, hwsec::sim::CoreId core,
                 hwsec::sim::DomainId domain, hwsec::sim::PhysAddr table_region,
                 const hwsec::crypto::AesKey& key);

  /// Encrypts and returns (ciphertext, total victim memory latency).
  struct Run {
    hwsec::crypto::AesBlock ciphertext{};
    hwsec::sim::Cycle latency = 0;
  };
  Run encrypt(const hwsec::crypto::AesBlock& plaintext);

  const TableLayout& layout() const { return layout_; }
  const hwsec::crypto::AesKey& key() const { return key_; }

 private:
  hwsec::sim::Machine* machine_;
  hwsec::sim::CoreId core_;
  hwsec::sim::DomainId domain_;
  TableLayout layout_;
  hwsec::crypto::AesKey key_;
  std::unique_ptr<hwsec::crypto::AesTTable> aes_;
  hwsec::sim::Cycle latency_accumulator_ = 0;
};

/// TEE-hosted victim: the same AES victim, but the tables live inside an
/// enclave of `arch` and every encryption goes through
/// Architecture::call_enclave (so entry/exit defenses apply).
class EnclaveAesVictim {
 public:
  /// Creates the enclave (image carries the key as its secret) and places
  /// the tables in its heap pages.
  EnclaveAesVictim(hwsec::tee::Architecture& arch, const hwsec::crypto::AesKey& key,
                   hwsec::sim::CoreId core = 1);
  ~EnclaveAesVictim();

  AesCacheVictim::Run encrypt(const hwsec::crypto::AesBlock& plaintext);

  const TableLayout& layout() const { return layout_; }
  hwsec::tee::EnclaveId enclave_id() const { return id_; }

 private:
  hwsec::tee::Architecture* arch_;
  hwsec::tee::EnclaveId id_;
  hwsec::sim::CoreId core_;
  TableLayout layout_;
  hwsec::crypto::AesKey key_;
};

}  // namespace hwsec::attacks
