// Differential runner: one generated case, two executions, one verdict.
//
// For every trial the same pair of programs runs on (a) the reference
// interpreter over an immutable per-arch DRAM baseline and (b) a full
// sim::Machine — fresh-built or pool-reset — after install_env() compiles
// the shared EnvSpec into it. The verdict diffs all committed architectural
// state: registers, pc, halt/executed counters, the fault log, the leak
// hash, and every DRAM page. On top of the diff, two directed security
// invariants run against the machine after every trial:
//
//  * deny-is-fault: a normal-context probe load of the enclave-owned
//    secret page must raise a fault, not silently succeed — and in
//    particular must not succeed with a zeroed value ("silent zero" is the
//    classic broken-firewall failure mode);
//  * attestation measurement: SHA-256 over the (decrypted) measured region
//    must match between machine and oracle, and must equal the pre-trial
//    measurement unless the enclave itself wrote the region.
//
// Per-trial cost is dominated by the two executions; the DRAM diff
// compares pages against baseline-or-overlay with memcmp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "conformance/env.h"
#include "conformance/generator.h"
#include "core/machine_pool.h"

namespace hwsec::conformance {

/// How the machine side is obtained. The fuzzer mixes both so the
/// snapshot/reset path is itself under differential test (a pool-reset
/// machine diverging where a fresh one agrees is a reset bug).
enum class MachineVariant : std::uint8_t { kPooled, kFresh };

/// Immutable per-architecture material shared by every trial of that
/// architecture: the spec, the machine profile, the post-install_env DRAM
/// image (identical for every trial — programs are decoded-form, so DRAM
/// content is a pure function of the arch), and its measurement.
struct ArchContext {
  EnvSpec spec;
  sim::MachineProfile profile;
  std::vector<std::uint8_t> baseline;
  sim::PhysAddr secret_frame = 0;
  std::array<std::uint8_t, 32> baseline_measurement{};
};

/// Process-wide cache, built thread-safely on first use. Pure function of
/// `arch`, so sharing across campaign workers cannot couple trials.
const ArchContext& arch_context(FuzzArch arch);

struct TrialVerdict {
  FuzzArch arch{};
  std::uint64_t seed = 0;
  bool diverged = false;           ///< any architectural-state mismatch.
  bool invariant_violated = false; ///< a directed checker fired.
  bool secret_leak = false;        ///< a divergent machine value carries 0xA5EC.
  std::vector<std::string> mismatches;  ///< capped human-readable details.

  bool failed() const { return diverged || invariant_violated; }
  bool operator==(const TrialVerdict&) const = default;
};

/// Runs one explicit case differentially. `pool` may be null (forced for
/// kFresh). `inject` mis-installs machine-side enforcement, for validating
/// that the differential catches what it claims to catch.
TrialVerdict run_case(const ArchContext& arch, const GeneratedCase& test, std::uint64_t seed,
                      core::MachinePool* pool, MachineVariant variant,
                      BugInjection inject = BugInjection::kNone);

/// generate_case + run_case. Depends only on (arch, seed, variant, inject),
/// never on worker scheduling — the campaign determinism contract.
TrialVerdict run_trial(FuzzArch arch, std::uint64_t seed, core::MachinePool* pool,
                       MachineVariant variant, BugInjection inject = BugInjection::kNone);

}  // namespace hwsec::conformance
