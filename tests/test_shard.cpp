// Multi-process sharded campaign supervisor (core/shard).
//
// The invariant under test: a sharded campaign — at ANY process count,
// under worker crashes, hangs, stragglers, checkpoint resume, or total
// worker loss — produces exactly the outcome vector the in-process
// resilient runner produces. Fork, pipes, migration, and respawn must not
// change a single byte.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/machine_pool.h"
#include "core/resilience/resilient.h"
#include "core/shard/supervisor.h"
#include "core/shard/wire.h"
#include "sim/machine.h"
#include "sim/rng.h"
#include "sim/sim_error.h"

namespace sim = hwsec::sim;
namespace core = hwsec::core;
namespace shard = hwsec::core::shard;
using hwsec::ErrorKind;
using hwsec::SimError;

namespace {

std::string ckpt_path(const std::string& name) {
  const char* dir = std::getenv("HWSEC_CHECKPOINT_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return base + "/" + name + "." + std::to_string(::getpid()) + ".ckpt";
}

// ---- wire format -------------------------------------------------------

TEST(Wire, FramesRoundTripThroughAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);

  shard::AssignPayload assign;
  assign.shard_id = 7;
  assign.begin = 32;
  assign.end = 48;
  assign.attempt = 2;
  assign.done_mask = {0x05, 0x80};  // trials 32, 34, and 47 already done.
  ASSERT_TRUE(shard::write_frame(
      fds[1], {shard::FrameType::kAssign, shard::encode_assign(assign)}));

  shard::TrialPayload trial;
  trial.index = 33;
  trial.record.ok = true;
  trial.record.attempts = 3;
  trial.record.payload = std::string("\x01\x02\x00\xFF", 4);
  ASSERT_TRUE(shard::write_frame(
      fds[1], {shard::FrameType::kTrial, shard::encode_trial(trial)}));

  shard::TrialPayload err_trial;
  err_trial.index = 34;
  err_trial.record.ok = false;
  err_trial.record.kind = static_cast<std::uint8_t>(ErrorKind::kTimedOut);
  err_trial.record.detail = "cycle budget exhausted";
  err_trial.record.machine = "mobile";
  ASSERT_TRUE(shard::write_frame(
      fds[1], {shard::FrameType::kTrial, shard::encode_trial(err_trial)}));

  {
    shard::Frame frame;
    ASSERT_TRUE(shard::read_frame(fds[0], frame));
    ASSERT_EQ(frame.type, shard::FrameType::kAssign);
    shard::AssignPayload got;
    ASSERT_TRUE(shard::decode_assign(frame.payload, got));
    EXPECT_EQ(got.shard_id, 7u);
    EXPECT_EQ(got.begin, 32u);
    EXPECT_EQ(got.end, 48u);
    EXPECT_EQ(got.attempt, 2u);
    EXPECT_TRUE(got.done(32));
    EXPECT_FALSE(got.done(33));
    EXPECT_TRUE(got.done(34));
    EXPECT_TRUE(got.done(47));
    EXPECT_FALSE(got.done(46));
  }
  {
    shard::Frame frame;
    ASSERT_TRUE(shard::read_frame(fds[0], frame));
    ASSERT_EQ(frame.type, shard::FrameType::kTrial);
    shard::TrialPayload got;
    ASSERT_TRUE(shard::decode_trial(frame.payload, got));
    EXPECT_EQ(got.index, 33u);
    EXPECT_TRUE(got.record.ok);
    EXPECT_EQ(got.record.attempts, 3u);
    EXPECT_EQ(got.record.payload, trial.record.payload);
  }
  {
    shard::Frame frame;
    ASSERT_TRUE(shard::read_frame(fds[0], frame));
    shard::TrialPayload got;
    ASSERT_TRUE(shard::decode_trial(frame.payload, got));
    EXPECT_EQ(got.index, 34u);
    EXPECT_FALSE(got.record.ok);
    EXPECT_EQ(static_cast<ErrorKind>(got.record.kind), ErrorKind::kTimedOut);
    EXPECT_EQ(got.record.detail, "cycle budget exhausted");
    EXPECT_EQ(got.record.machine, "mobile");
  }
  close(fds[0]);
  close(fds[1]);
}

TEST(Wire, BadMagicAndVersionPoisonTheStream) {
  shard::Frame good{shard::FrameType::kHeartbeat, ""};
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(shard::write_frame(fds[1], good));
  char raw[64];
  const ssize_t n = read(fds[0], raw, sizeof(raw));
  ASSERT_GT(n, 0);
  close(fds[0]);
  close(fds[1]);

  {
    // Intact bytes parse.
    shard::FrameBuffer buf;
    buf.append(raw, static_cast<std::size_t>(n));
    shard::Frame out;
    EXPECT_TRUE(buf.next(out));
    EXPECT_EQ(out.type, shard::FrameType::kHeartbeat);
    EXPECT_FALSE(buf.corrupt());
  }
  {
    // Flipped magic byte: the stream is poisoned, no frame comes out.
    char bad[64];
    std::memcpy(bad, raw, static_cast<std::size_t>(n));
    bad[0] ^= 0x01;
    shard::FrameBuffer buf;
    buf.append(bad, static_cast<std::size_t>(n));
    shard::Frame out;
    EXPECT_FALSE(buf.next(out));
    EXPECT_TRUE(buf.corrupt());
  }
  {
    // Future protocol version: rejected at the header, not misparsed.
    char bad[64];
    std::memcpy(bad, raw, static_cast<std::size_t>(n));
    bad[4] = 0x7F;  // version field, little-endian low byte.
    shard::FrameBuffer buf;
    buf.append(bad, static_cast<std::size_t>(n));
    shard::Frame out;
    EXPECT_FALSE(buf.next(out));
    EXPECT_TRUE(buf.corrupt());
  }
}

TEST(Wire, TruncatedFrameWaitsForMoreBytesThenCompletes) {
  shard::TrialPayload trial;
  trial.index = 9;
  trial.record.ok = true;
  trial.record.payload = "abcdefgh";
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(shard::write_frame(
      fds[1], {shard::FrameType::kTrial, shard::encode_trial(trial)}));
  char raw[256];
  const ssize_t n = read(fds[0], raw, sizeof(raw));
  ASSERT_GT(n, 16);
  close(fds[0]);
  close(fds[1]);

  shard::FrameBuffer buf;
  shard::Frame out;
  // Feed byte by byte: no frame until the very last byte arrives.
  for (ssize_t i = 0; i < n - 1; ++i) {
    buf.append(raw + i, 1);
    EXPECT_FALSE(buf.next(out)) << "frame produced from a truncated prefix at byte " << i;
    EXPECT_FALSE(buf.corrupt());
  }
  buf.append(raw + n - 1, 1);
  ASSERT_TRUE(buf.next(out));
  shard::TrialPayload got;
  ASSERT_TRUE(shard::decode_trial(out.payload, got));
  EXPECT_EQ(got.index, 9u);
  EXPECT_EQ(got.record.payload, "abcdefgh");
}

// ---- sharded == in-process, bit for bit --------------------------------

struct Fingerprint {
  std::uint64_t a = 0;
  std::uint32_t b = 0;

  bool operator==(const Fingerprint& other) const { return a == other.a && b == other.b; }
};

const std::function<Fingerprint(const core::TrialContext&)> kFingerprintBody =
    [](const core::TrialContext& ctx) {
      Fingerprint f;
      f.a = ctx.seed * 0x9E3779B97F4A7C15ull + ctx.index;
      f.b = static_cast<std::uint32_t>(ctx.seed >> 32);
      return f;
    };

std::vector<core::TrialOutcome<Fingerprint>> reference_run(const core::CampaignConfig& cfg) {
  return core::run_campaign_resilient<Fingerprint>(cfg, core::ResilienceConfig{},
                                                   kFingerprintBody);
}

void expect_bit_identical(const std::vector<core::TrialOutcome<Fingerprint>>& got,
                          const std::vector<core::TrialOutcome<Fingerprint>>& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].ok(), want[i].ok()) << label << " slot " << i;
    if (want[i].ok() && got[i].ok()) {
      EXPECT_EQ(got[i].value(), want[i].value()) << label << " slot " << i;
    }
    if (want[i].error.has_value() && got[i].error.has_value()) {
      EXPECT_STREQ(got[i].error->what(), want[i].error->what()) << label << " slot " << i;
    }
  }
}

TEST(Shard, BitIdenticalToInProcessAtEveryProcessCount) {
  const core::CampaignConfig cfg{.seed = 1234, .trials = 37, .workers = 1};
  const auto want = reference_run(cfg);
  for (const unsigned processes : {0u, 1u, 2u, 4u}) {
    core::shard::ShardConfig shard_cfg;
    shard_cfg.processes = processes;
    shard_cfg.shard_size = 5;  // uneven tail shard on purpose (37 = 7*5 + 2).
    core::shard::ShardStats stats;
    const auto got = core::shard::run_campaign_sharded<Fingerprint>(
        cfg, {}, shard_cfg, kFingerprintBody, &stats);
    expect_bit_identical(got, want, "processes=" + std::to_string(processes));
    EXPECT_EQ(stats.trials_executed, cfg.trials) << "processes=" << processes;
    EXPECT_EQ(stats.shards_total, 8u) << "processes=" << processes;
  }
}

TEST(Shard, PoisonedTrialErrorCrossesTheProcessBoundaryIntact) {
  const core::CampaignConfig cfg{.seed = 66, .trials = 20, .workers = 1};
  const std::function<Fingerprint(const core::TrialContext&)> body =
      [](const core::TrialContext& ctx) -> Fingerprint {
        if (ctx.index == 11) {
          throw SimError(ErrorKind::kGuestFault, "poisoned shard trial").with_machine("mobile");
        }
        return kFingerprintBody(ctx);
      };
  const auto want =
      core::run_campaign_resilient<Fingerprint>(cfg, core::ResilienceConfig{}, body);
  core::shard::ShardConfig shard_cfg;
  shard_cfg.processes = 2;
  const auto got =
      core::shard::run_campaign_sharded<Fingerprint>(cfg, {}, shard_cfg, body);
  ASSERT_EQ(got.size(), want.size());
  ASSERT_FALSE(got[11].ok());
  const SimError& e = *got[11].error;
  EXPECT_EQ(e.kind(), ErrorKind::kGuestFault);
  EXPECT_EQ(e.detail(), "poisoned shard trial");
  EXPECT_EQ(e.machine(), "mobile");
  EXPECT_EQ(e.trial_index(), 11u);
  EXPECT_EQ(e.trial_seed(), sim::derive_seed(66, 11));
  EXPECT_STREQ(e.what(), want[11].error->what());
  expect_bit_identical(got, want, "poisoned");
}

TEST(Shard, MachinePoolBodyBitIdenticalAcrossProcesses) {
  // Each worker process builds its own MachinePool; pooled reset-reuse
  // inside a worker must reproduce the in-process pooled results exactly.
  const core::CampaignConfig cfg{.seed = 424, .trials = 12, .workers = 1};
  const std::function<std::uint64_t(const core::TrialContext&)> body =
      [](const core::TrialContext& ctx) -> std::uint64_t {
        auto lease =
            core::acquire_machine(ctx.machines, sim::MachineProfile::mobile(), ctx.seed);
        sim::Machine& m = *lease;
        const sim::PhysAddr frame = m.alloc_frame();
        m.memory().write32(frame, static_cast<sim::Word>(ctx.seed));
        return static_cast<std::uint64_t>(m.memory().read32(frame)) ^ m.rng().next_u64();
      };
  const auto want =
      core::run_campaign_resilient<std::uint64_t>(cfg, core::ResilienceConfig{}, body);
  core::shard::ShardConfig shard_cfg;
  shard_cfg.processes = 3;
  shard_cfg.shard_size = 2;
  const auto got = core::shard::run_campaign_sharded<std::uint64_t>(cfg, {}, shard_cfg, body);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << "slot " << i;
    EXPECT_EQ(got[i].value(), want[i].value()) << "slot " << i;
  }
}

// ---- robustness: crashes, hangs, total loss ----------------------------

TEST(Shard, WorkerKillChaosConvergesBitIdentically) {
  const core::CampaignConfig cfg{.seed = 5150, .trials = 60, .workers = 1};
  const auto want = reference_run(cfg);
  core::ResilienceConfig res;
  res.chaos.worker_kill_probability = 0.10;
  core::shard::ShardConfig shard_cfg;
  shard_cfg.processes = 3;
  shard_cfg.shard_size = 5;
  core::shard::ShardStats stats;
  const auto got = core::shard::run_campaign_sharded<Fingerprint>(
      cfg, res, shard_cfg, kFingerprintBody, &stats);
  expect_bit_identical(got, want, "kill-chaos");
  EXPECT_GT(stats.worker_deaths, 0u) << "chaos rolled no kills; test is vacuous";
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_GT(stats.worker_respawns, 0u);
}

TEST(Shard, SigstoppedWorkerIsDetectedByHeartbeatAgeAndRecovered) {
  const core::CampaignConfig cfg{.seed = 8080, .trials = 24, .workers = 1};
  const auto want = reference_run(cfg);
  core::ResilienceConfig res;
  res.chaos.worker_stop_probability = 0.06;
  core::shard::ShardConfig shard_cfg;
  shard_cfg.processes = 2;
  shard_cfg.shard_size = 4;
  shard_cfg.heartbeat_interval = std::chrono::milliseconds(10);
  shard_cfg.hang_timeout = std::chrono::milliseconds(150);
  core::shard::ShardStats stats;
  const auto got = core::shard::run_campaign_sharded<Fingerprint>(
      cfg, res, shard_cfg, kFingerprintBody, &stats);
  expect_bit_identical(got, want, "sigstop");
  EXPECT_GT(stats.worker_hangs, 0u) << "chaos rolled no stops; test is vacuous";
  EXPECT_GT(stats.migrations, 0u);
}

TEST(Shard, TotalWorkerLossFallsBackInProcessAndStillConverges) {
  // Every worker kills itself on its first trial and the respawn budget is
  // zero: the supervisor must finish the whole campaign in-process.
  const core::CampaignConfig cfg{.seed = 17, .trials = 16, .workers = 1};
  const auto want = reference_run(cfg);
  core::ResilienceConfig res;
  res.chaos.worker_kill_probability = 1.0;
  core::shard::ShardConfig shard_cfg;
  shard_cfg.processes = 2;
  shard_cfg.max_respawns = 0;
  core::shard::ShardStats stats;
  const auto got = core::shard::run_campaign_sharded<Fingerprint>(
      cfg, res, shard_cfg, kFingerprintBody, &stats);
  expect_bit_identical(got, want, "total-loss");
  EXPECT_EQ(stats.worker_respawns, 0u);
  EXPECT_GT(stats.worker_deaths, 0u);
  EXPECT_GT(stats.fallback_trials, 0u);
  EXPECT_EQ(stats.trials_executed, cfg.trials);
}

TEST(Shard, FailFastThrowsTheLowestIndexFailureAfterDraining) {
  const core::CampaignConfig cfg{.seed = 2, .trials = 30, .workers = 1};
  const std::function<Fingerprint(const core::TrialContext&)> body =
      [](const core::TrialContext& ctx) -> Fingerprint {
        if (ctx.index >= 13) {
          throw SimError(ErrorKind::kGuestFault, "late failure");
        }
        return kFingerprintBody(ctx);
      };
  core::ResilienceConfig res;
  res.policy = core::FailurePolicy::kFailFast;
  core::shard::ShardConfig shard_cfg;
  shard_cfg.processes = 2;
  try {
    core::shard::run_campaign_sharded<Fingerprint>(cfg, res, shard_cfg, body);
    FAIL() << "sharded fail-fast did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kGuestFault);
    // The winning index is the lowest RECORDED failure; with 2 workers any
    // failing trial that completed before the trip can win, but it must be
    // a genuinely failing index.
    EXPECT_GE(e.trial_index(), 13u);
  }
}

TEST(Shard, NonTrivialResultIsAConfigError) {
  EXPECT_THROW(core::shard::run_campaign_sharded<std::string>(
                   {.seed = 1, .trials = 2, .workers = 1}, {}, {},
                   [](const core::TrialContext&) { return std::string("x"); }),
               SimError);
}

// ---- checkpoint resume across process counts ---------------------------

TEST(Shard, ResumesFromCheckpointAtADifferentProcessCount) {
  const std::string path = ckpt_path("shard_resume");
  std::remove(path.c_str());
  const core::CampaignConfig cfg{.seed = 777, .trials = 20, .workers = 1};
  const auto want = reference_run(cfg);

  // First run: in-process resilient runner writes the checkpoint.
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  res.checkpoint_every = 1;
  core::run_campaign_resilient<Fingerprint>(cfg, res, kFingerprintBody);

  // Second run: sharded at 2 processes against the same file. Every slot
  // must restore; zero fresh executions.
  core::shard::ShardConfig shard_cfg;
  shard_cfg.processes = 2;
  core::shard::ShardStats stats;
  const auto resumed = core::shard::run_campaign_sharded<Fingerprint>(
      cfg, res, shard_cfg, kFingerprintBody, &stats);
  expect_bit_identical(resumed, want, "full-restore");
  EXPECT_EQ(stats.trials_executed, 0u);
  for (const auto& o : resumed) {
    EXPECT_TRUE(o.from_checkpoint);
  }
  std::remove(path.c_str());
}

TEST(Shard, PartialCheckpointRunsOnlyMissingSlots) {
  const std::string path = ckpt_path("shard_partial");
  std::remove(path.c_str());
  const core::CampaignConfig cfg{.seed = 321, .trials = 18, .workers = 1};
  const auto want = reference_run(cfg);

  // Hand-build a checkpoint holding a scattered subset of slots.
  core::CheckpointFile partial(cfg.seed, cfg.trials, sizeof(Fingerprint));
  std::size_t prefilled = 0;
  for (const std::size_t i : {0u, 1u, 5u, 9u, 10u, 11u, 17u}) {
    core::CheckpointRecord rec;
    rec.ok = true;
    const Fingerprint v = want[i].value();
    rec.payload.assign(reinterpret_cast<const char*>(&v), sizeof(v));
    partial.record(i, rec);
    ++prefilled;
  }
  ASSERT_TRUE(partial.save(path));

  core::ResilienceConfig res;
  res.checkpoint_path = path;
  core::shard::ShardConfig shard_cfg;
  shard_cfg.processes = 2;
  shard_cfg.shard_size = 4;
  core::shard::ShardStats stats;
  const auto resumed = core::shard::run_campaign_sharded<Fingerprint>(
      cfg, res, shard_cfg, kFingerprintBody, &stats);
  expect_bit_identical(resumed, want, "partial-restore");
  EXPECT_EQ(stats.trials_executed, cfg.trials - prefilled);
  for (const std::size_t i : {0u, 1u, 5u, 9u, 10u, 11u, 17u}) {
    EXPECT_TRUE(resumed[i].from_checkpoint) << "slot " << i;
  }
  EXPECT_FALSE(resumed[2].from_checkpoint);
  std::remove(path.c_str());
}

}  // namespace
