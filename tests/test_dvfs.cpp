// DVFS stability envelope, fault-probability model and glitch injector.
#include <gtest/gtest.h>

#include "sim/dvfs.h"

namespace sim = hwsec::sim;

namespace {

TEST(Dvfs, RatedPointsAreStable) {
  sim::DvfsController dvfs;
  for (std::size_t i = 0; i < dvfs.config().rated_points.size(); ++i) {
    dvfs.set_rated_point(i);
    EXPECT_EQ(dvfs.overclock_margin_mhz(), 0.0)
        << "rated point " << i << " must sit inside the envelope";
    EXPECT_EQ(dvfs.fault_probability(), 0.0);
  }
}

TEST(Dvfs, OverclockRaisesFaultProbabilityMonotonically) {
  sim::DvfsController dvfs;
  const double voltage = 0.9;
  double previous = 0.0;
  for (double f = dvfs.stable_freq_mhz(voltage) + 100; f < 6000; f += 400) {
    dvfs.set_point({f, voltage});
    const double p = dvfs.fault_probability();
    EXPECT_GT(p, previous);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
}

TEST(Dvfs, LowerVoltageShrinksTheEnvelope) {
  sim::DvfsController dvfs;
  // The CLKSCREW trick: reduce voltage so a given frequency becomes
  // unstable without being an absurd overclock.
  EXPECT_LT(dvfs.stable_freq_mhz(0.7), dvfs.stable_freq_mhz(1.1));
  dvfs.set_point({2000, 1.10});
  const double p_high_v = dvfs.fault_probability();
  dvfs.set_point({2000, 0.70});
  const double p_low_v = dvfs.fault_probability();
  EXPECT_GT(p_low_v, p_high_v);
}

TEST(Dvfs, EnvelopeInterlockRejectsUnstablePoints) {
  sim::DvfsController dvfs;
  dvfs.enforce_envelope(true);
  EXPECT_THROW(dvfs.set_point({9000, 0.8}), std::logic_error);
  EXPECT_NO_THROW(dvfs.set_point({1000, 0.9}));
}

TEST(Dvfs, EnergyScalesWithVoltageSquared) {
  sim::DvfsController dvfs;
  dvfs.set_point({1000, 1.0});
  const double e1 = dvfs.energy_per_cycle_nj();
  dvfs.set_point({1000, 2.0});
  EXPECT_DOUBLE_EQ(dvfs.energy_per_cycle_nj(), 4.0 * e1);
}

TEST(Dvfs, CycleTimeInvertsFrequency) {
  sim::DvfsController dvfs;
  dvfs.set_point({500, 0.9});
  EXPECT_DOUBLE_EQ(dvfs.ns_per_cycle(), 2.0);
  dvfs.set_point({2000, 0.9});
  EXPECT_DOUBLE_EQ(dvfs.ns_per_cycle(), 0.5);
}

TEST(FaultInjector, ZeroProbabilityNeverCorrupts) {
  sim::FaultInjector inj(1);
  inj.set_probability(0.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(inj.corrupt(0x12345678), 0x12345678u);
  }
  EXPECT_EQ(inj.faults_injected(), 0u);
}

TEST(FaultInjector, SingleBitModelFlipsExactlyOneBit) {
  sim::FaultInjector inj(2);
  inj.set_probability(1.0);
  for (int i = 0; i < 200; ++i) {
    const sim::Word out = inj.corrupt(0xFFFF0000);
    const sim::Word diff = out ^ 0xFFFF0000u;
    EXPECT_NE(diff, 0u);
    EXPECT_EQ(diff & (diff - 1), 0u) << "exactly one bit";
  }
}

TEST(FaultInjector, WindowTargetsSpecificCalls) {
  sim::FaultInjector inj(3);
  inj.set_probability(1.0);
  inj.arm_window(/*skip=*/3, /*active=*/2);
  int corrupted = 0;
  for (int i = 0; i < 10; ++i) {
    if (inj.corrupt(0) != 0) {
      ++corrupted;
    }
  }
  EXPECT_EQ(corrupted, 2) << "only calls 3 and 4 are inside the glitch window";
}

TEST(FaultInjector, FrequencyTracksProbability) {
  sim::FaultInjector inj(4);
  inj.set_probability(0.3);
  int faults = 0;
  for (int i = 0; i < 10000; ++i) {
    if (inj.corrupt(0xABCD) != 0xABCD) {
      ++faults;
    }
  }
  EXPECT_NEAR(faults / 10000.0, 0.3, 0.03);
}

}  // namespace
