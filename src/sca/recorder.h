// Power-trace recorder: the simulated oscilloscope.
//
// Substitution for physical capture hardware (see DESIGN.md): each leak
// event from an instrumented victim becomes one sample,
//
//     sample = a · HW(value) + N(0, σ)          (Hamming-weight model)
//  or sample = a · HD(value, previous) + N(0, σ) (Hamming-distance model)
//
// which is the standard academic leakage model (Mangard/Oswald/Popp, the
// paper's [30]). σ is the knob the E7 noise-sensitivity ablation sweeps.
//
// The recorder also implements *hiding* countermeasures at the platform
// level so benches can compare them:
//   * amplitude noise boost (σ_hiding added on top of σ): noise generators
//     on-chip;
//   * random jitter: before each real sample, 0..max_jitter dummy samples
//     are inserted, misaligning traces in time — the classic effect of
//     random delays / clock jitter.
#pragma once

#include <cstdint>

#include "sca/trace.h"
#include "sim/rng.h"

namespace hwsec::sca {

enum class LeakageModel : std::uint8_t { kHammingWeight, kHammingDistance };

struct RecorderConfig {
  LeakageModel model = LeakageModel::kHammingWeight;
  double amplitude = 1.0;       ///< signal scale factor `a`.
  double noise_sigma = 0.5;     ///< baseline measurement noise σ.
  double hiding_noise_sigma = 0.0;  ///< extra σ from a hiding countermeasure.
  std::uint32_t max_jitter = 0;     ///< max dummy samples inserted per event.
  std::uint64_t seed = 1234;
};

class PowerTraceRecorder {
 public:
  explicit PowerTraceRecorder(RecorderConfig config = {});

  /// Starts a new trace; subsequent on_value calls append to it.
  void begin_trace();

  /// Records one leak event (wire this as Instrumentation::leak).
  void on_value(std::uint32_t value);

  /// Finishes the current trace and returns it, padded/truncated to
  /// `fixed_length` samples if nonzero (misaligned jittered traces must
  /// still form a rectangular matrix for the statistics).
  Trace end_trace(std::size_t fixed_length = 0);

  const RecorderConfig& config() const { return config_; }

  /// Pre-seeds the trace-capacity hint normally learned from the first
  /// end_trace(). Batched capture builds a fresh recorder per batch; the
  /// driver knows the fixed trace length up front and passes it here so
  /// the first trace of every batch records reallocation-free too.
  void set_reserve_hint(std::size_t samples) { reserve_hint_ = samples; }
  std::size_t reserve_hint() const { return reserve_hint_; }

 private:
  RecorderConfig config_;
  hwsec::sim::Rng rng_;
  Trace current_;
  /// High-water trace length (learned from finished traces, or pre-seeded
  /// via set_reserve_hint). Traces in a capture campaign are near-identical
  /// in length, so begin_trace() reserves this up front and the per-sample
  /// push_back path never reallocates after the first trace.
  std::size_t reserve_hint_ = 0;
  std::uint32_t previous_value_ = 0;
};

}  // namespace hwsec::sca
