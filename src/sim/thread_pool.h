// Fixed-size worker pool for fanning independent simulation trials across
// host cores.
//
// The pool is deliberately minimal: `parallel_for(n, fn)` runs fn(0..n-1)
// with the calling thread participating, and blocks until every index has
// completed. Work is handed out through an atomic cursor, so scheduling is
// nondeterministic — which is fine, because every consumer in this codebase
// keys its randomness off the *index* (see sim::derive_seed), never off
// execution order. That is the determinism contract of the campaign engine:
// trial i's result is a pure function of (campaign seed, i).
//
// Nested parallel_for calls from inside a pool task execute inline on the
// worker, so composed parallel layers (platforms × probes × key bytes)
// cannot deadlock on a fixed-size pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hwsec::sim {

class ThreadPool {
 public:
  /// `workers` == 0 picks default_workers(). A pool of size 1 never spawns
  /// threads: parallel_for degrades to a plain loop on the caller.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return workers_; }

  /// Runs fn(0), fn(1), ..., fn(n-1) across the pool plus the calling
  /// thread; returns when all have completed. Exceptions thrown by fn are
  /// captured and the one from the LOWEST failing index is rethrown on the
  /// caller after the loop drains — deterministic at any worker count.
  /// Reentrant calls from a pool task run inline.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Host parallelism: HWSEC_WORKERS if set and positive, else
  /// hardware_concurrency (at least 1).
  static unsigned default_workers();

  /// Process-wide pool of default_workers() size, for call sites that have
  /// no pool handed to them (e.g. cpa_attack_key's 16 byte attacks).
  static ThreadPool& shared();

 private:
  struct Batch;

  void worker_loop();
  static void drain(Batch& batch);

  unsigned workers_ = 1;
  std::vector<std::thread> threads_;
  std::mutex submit_mutex_;  ///< serializes top-level batches.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  Batch* pending_ = nullptr;    ///< batch workers should join, if any.
  std::uint64_t epoch_ = 0;     ///< bumped on publish/retire (ABA guard).
  bool stop_ = false;
};

}  // namespace hwsec::sim
