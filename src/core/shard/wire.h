// Versioned wire format for the shard supervisor <-> worker pipes.
//
// Every message is one frame: a 12-byte header (magic u32, version u16,
// type u16, payload length u32) followed by a little-endian payload. The magic rejects a
// desynchronized or foreign stream outright; the version field makes the
// protocol evolvable — a worker from a future build that speaks v2 is
// detected at the first frame instead of silently misparsing trial bytes
// (the failure matrix in DESIGN.md S21 treats that as a worker death, which
// the supervisor already survives).
//
// Frames (supervisor -> worker):
//   kAssign    shard_id, [begin, end) trial range, assignment attempt, and
//              a done-bitmap of indices already restored from checkpoint
//              (the worker skips those, so a resumed campaign re-executes
//              only missing slots even though shards stay contiguous);
//   kShutdown  drain and _exit(0).
// Frames (worker -> supervisor):
//   kTrial     one completed trial: index + the same record schema the
//              checkpoint layer persists (ok/attempts/payload or
//              kind/detail/machine) — the supervisor merges by index, so
//              a duplicate delivery (straggler migration races) is
//              idempotent by construction;
//   kShardDone shard_id finished;
//   kHeartbeat liveness beacon from the worker's heartbeat thread; its age
//              is the supervisor's hang detector (a SIGSTOPped worker stops
//              beating and gets killed + migrated).
//
// All reads/writes are EINTR-safe full-buffer loops; FrameBuffer
// incrementally reassembles frames from a non-blocking fd so the
// supervisor can multiplex every worker with one poll() loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/resilience/checkpoint.h"

namespace hwsec::core::shard {

inline constexpr std::uint32_t kWireMagic = 0x43535748u;  // "HWSC", little-endian.
inline constexpr std::uint16_t kWireVersion = 1;

/// Hard ceiling on a frame payload accepted by this codec. Big enough for
/// the largest legitimate frame (a kJobResult records blob at the default
/// 10M-trial admission cap is ~330 MiB), small enough that a desynchronized
/// or hostile header cannot demand the full 4 GiB a u32 length can encode.
/// Transports that face untrusted peers (the hwsecd client socket) pass a
/// much tighter per-request cap to read_frame.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;  // 1 GiB.

/// Cap on any supervisor<->worker shard frame. The largest legitimate
/// shard frames are a kTrial record (result bytes + error detail, well
/// under a KiB) and a kAssign done-bitmap (trials/8 bytes: 16 MiB covers a
/// 134M-trial shard, far past the 10M-trial admission cap). With TCP
/// workers the shard protocol now faces the network, so the supervisor
/// must treat worker bytes like the daemon treats client bytes: a lying
/// length is rejected at the header, before any allocation.
inline constexpr std::uint32_t kMaxShardFramePayload = 1u << 24;  // 16 MiB.

/// One shared frame-type space for every transport that speaks this codec.
/// 1..15 are the supervisor<->worker pipe protocol; 16+ are the hwsecd
/// campaign-service socket protocol (core/service/protocol.h) — same
/// framing, same magic/version gate, disjoint message ids, so a service
/// client that accidentally dials a worker pipe (or vice versa) fails the
/// type dispatch instead of misparsing payload bytes.
enum class FrameType : std::uint16_t {
  kAssign = 1,
  kShutdown = 2,
  kTrial = 3,
  kShardDone = 4,
  kHeartbeat = 5,
  // ---- multi-host handshake (core/shard/net.h) ----
  kHello = 6,    ///< worker -> supervisor: version, capabilities, expected digest.
  kWelcome = 7,  ///< supervisor -> worker: campaign spec + execution knobs.
  kReject = 8,   ///< supervisor -> worker: named refusal (version/digest skew).
  // ---- campaign service (hwsecd) ----
  kSubmit = 16,         ///< client -> daemon: spec JSON.
  kSubmitted = 17,      ///< daemon -> client: accept/reject + job id.
  kAttach = 18,         ///< client -> daemon: re-subscribe to a job by id.
  kJobUpdate = 19,      ///< daemon -> client: incremental progress.
  kJobResult = 20,      ///< daemon -> client: terminal state + result records.
  kStatusRequest = 21,  ///< client -> daemon: scrape request.
  kStatusReply = 22,    ///< daemon -> client: status JSON (jobs + obs metrics).
  kStopDaemon = 23,     ///< client -> daemon: begin graceful drain.
  kServiceError = 24,   ///< daemon -> client: request-level failure message.
};

// ---- little-endian byte codec -----------------------------------------
// Shared by the pipe payload codecs below and the service protocol: one
// place defines how integers and length-prefixed byte strings look on any
// hwsec wire.

void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
/// u32 length prefix + raw bytes.
void put_bytes(std::string& out, const std::string& bytes);

/// Bounds-checked little-endian reader; every get_* fails cleanly on a
/// truncated payload instead of reading past the end.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  bool get_u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool get_u16(std::uint16_t& v) {
    std::uint64_t wide = 0;
    if (!get_le(2, wide)) return false;
    v = static_cast<std::uint16_t>(wide);
    return true;
  }
  bool get_u32(std::uint32_t& v) {
    std::uint64_t wide = 0;
    if (!get_le(4, wide)) return false;
    v = static_cast<std::uint32_t>(wide);
    return true;
  }
  bool get_u64(std::uint64_t& v) { return get_le(8, v); }
  bool get_bytes(std::string& out) {
    std::uint32_t n = 0;
    if (!get_u32(n) || pos_ + n > data_.size()) return false;
    out.assign(data_, pos_, n);
    pos_ += n;
    return true;
  }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  bool get_le(std::size_t bytes, std::uint64_t& v) {
    if (pos_ + bytes > data_.size()) return false;
    v = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += bytes;
    return true;
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Serializes one frame (header + payload) to its exact wire bytes. The
/// single place the header layout is produced — write_frame and every
/// Transport send path go through it, so a fault-injecting transport can
/// chop the byte string any way it likes and still be speaking the real
/// format.
std::string encode_frame(const Frame& frame);

/// EINTR-safe full-buffer write that also rides out EAGAIN by polling for
/// writability, so it works on blocking pipes and non-blocking sockets
/// alike. Returns false on EPIPE or any hard error (peer gone).
bool write_all_fd(int fd, const char* data, std::size_t n);

/// Writes one frame; retries partial writes and EINTR. Returns false on any
/// unrecoverable error (EPIPE after the peer died — callers treat that as a
/// worker-death event, never a crash; pair with SigpipeIgnore below).
bool write_frame(int fd, const Frame& frame);

/// Blocking full-frame read (worker side: the command pipe is its inbox).
/// Returns false on EOF, short read, bad magic, version mismatch, or a
/// payload length above `max_payload` — the length is validated BEFORE any
/// payload allocation, so a lying header costs nothing.
bool read_frame(int fd, Frame& out, std::uint32_t max_payload = kMaxFramePayload);

/// Incremental frame reassembly for the supervisor's non-blocking fds.
class FrameBuffer {
 public:
  explicit FrameBuffer(std::uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void append(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Extracts the next complete frame. Returns false when more bytes are
  /// needed. A corrupt header (bad magic/version, or a payload length over
  /// the cap) poisons the stream: corrupt() turns true and no further
  /// frames are produced.
  bool next(Frame& out);

  bool corrupt() const { return corrupt_; }

 private:
  std::string buffer_;
  std::uint32_t max_payload_;
  bool corrupt_ = false;
};

/// Reads whatever is available from a non-blocking fd into `buffer`.
/// Returns false when the fd reached EOF or a hard error (worker gone).
bool drain_fd(int fd, FrameBuffer& buffer);

// ---- payload codecs ----------------------------------------------------

struct AssignPayload {
  std::uint64_t shard_id = 0;
  std::uint64_t begin = 0;    ///< first global trial index in the shard.
  std::uint64_t end = 0;      ///< one past the last index.
  std::uint32_t attempt = 0;  ///< assignment incarnation (0 = first try).
  /// Bit i set => trial (begin + i) is already done; the worker skips it.
  std::vector<std::uint8_t> done_mask;

  bool done(std::uint64_t index) const {
    const std::uint64_t off = index - begin;
    return (off >> 3) < done_mask.size() &&
           (done_mask[static_cast<std::size_t>(off >> 3)] >> (off & 7) & 1) != 0;
  }
};

struct TrialPayload {
  std::uint64_t index = 0;
  CheckpointRecord record;  ///< same schema the checkpoint layer persists.
};

std::string encode_assign(const AssignPayload& assign);
bool decode_assign(const std::string& payload, AssignPayload& out);

std::string encode_trial(const TrialPayload& trial);
bool decode_trial(const std::string& payload, TrialPayload& out);

std::string encode_shard_done(std::uint64_t shard_id);
bool decode_shard_done(const std::string& payload, std::uint64_t& shard_id);

/// FNV-1a 64 over arbitrary bytes. Lives with the wire codec because it IS
/// wire vocabulary: the campaign-identity digest in the multi-host
/// handshake and the result digest hwsecd clients compare are both this
/// hash over canonical encodings (service/protocol.h re-exports it).
std::uint64_t fnv1a64(std::string_view bytes);

/// RAII SIGPIPE suppressor: a supervisor writing an assignment to a worker
/// that just died must see EPIPE (a recoverable event), not take the whole
/// campaign down with an unhandled signal. Restores the previous handler.
class SigpipeIgnore {
 public:
  SigpipeIgnore();
  ~SigpipeIgnore();
  SigpipeIgnore(const SigpipeIgnore&) = delete;
  SigpipeIgnore& operator=(const SigpipeIgnore&) = delete;

 private:
  bool installed_ = false;
  void* previous_;  ///< opaque storage for the saved sigaction.
};

}  // namespace hwsec::core::shard
