// Scenario: a side-channel analysis teaching lab (§5) — the workflow a
// hardware-security course or evaluation lab runs against a smartcard-
// style AES, on the simulated oscilloscope.
//
//   1. capture traces from an unprotected implementation and watch CPA
//      rank the correct key byte to the top;
//   2. run TVLA (fixed-vs-random Welch t-test) as the leakage assessment;
//   3. repeat against hiding and masking countermeasures;
//   4. finish with the Kocher timing attack on RSA.
//
// Build & run:   ./build/examples/sca_lab
#include <iomanip>
#include <iostream>

#include "attacks/physical/power_analysis.h"
#include "attacks/physical/timing_attack.h"
#include "sca/cpa.h"
#include "sca/stats.h"

namespace attacks = hwsec::attacks;
namespace sca = hwsec::sca;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kKey = {0xca, 0xfe, 0xd0, 0x0d, 0x01, 0x23, 0x45, 0x67,
                             0x89, 0xab, 0xcd, 0xef, 0x55, 0xaa, 0x5a, 0xa5};

void cpa_round(const char* label, attacks::AesVariant variant, std::size_t traces,
               double sigma, std::uint32_t jitter) {
  sca::RecorderConfig rec;
  rec.noise_sigma = sigma;
  rec.max_jitter = jitter;
  rec.seed = 4242;
  const auto set = attacks::collect_aes_traces(kKey, variant, traces, rec);
  const auto result = sca::cpa_attack_key(set);
  std::cout << "  " << label << ": " << result.correct_bytes(kKey) << "/16 key bytes, "
            << "byte0 guess 0x" << std::hex << int(result.recovered[0]) << std::dec
            << " (true 0x" << std::hex << int(kKey[0]) << std::dec << "), margin "
            << std::fixed << std::setprecision(2) << result.bytes[0].margin() << "\n";
}

}  // namespace

int main() {
  std::cout << "Lab 1: CPA against T-table AES, 400 traces, sigma=0.5\n";
  cpa_round("unprotected      ", attacks::AesVariant::kTTable, 400, 0.5, 0);

  std::cout << "\nLab 2: the top-5 ranking for key byte 0 (what students plot)\n";
  {
    sca::RecorderConfig rec;
    rec.noise_sigma = 0.5;
    const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 400, rec);
    const auto byte0 = sca::cpa_attack_byte(set, 0);
    std::vector<std::pair<double, int>> ranked;
    for (int k = 0; k < 256; ++k) {
      ranked.emplace_back(byte0.score_per_guess[static_cast<std::size_t>(k)], k);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (int i = 0; i < 5; ++i) {
      std::cout << "    #" << i + 1 << "  k=0x" << std::hex << ranked[static_cast<std::size_t>(i)].second
                << std::dec << "  |rho|=" << std::fixed << std::setprecision(3)
                << ranked[static_cast<std::size_t>(i)].first
                << (ranked[static_cast<std::size_t>(i)].second == kKey[0] ? "   <-- true key byte" : "")
                << "\n";
    }
  }

  std::cout << "\nLab 3: TVLA leakage assessment (|t| > 4.5 means 'leaks')\n";
  {
    auto tvla = [](attacks::AesVariant variant) {
      sca::RecorderConfig rec;
      rec.noise_sigma = 0.5;
      rec.seed = 999;
      sca::PowerTraceRecorder recorder({.model = sca::LeakageModel::kHammingWeight,
                                        .amplitude = 1.0, .noise_sigma = 0.5,
                                        .hiding_noise_sigma = 0, .max_jitter = 0, .seed = 999});
      crypto::Instrumentation instr;
      instr.leak = [&recorder](std::uint32_t v) { recorder.on_value(v); };
      crypto::AesTTable ttable(kKey, instr);
      crypto::AesMasked masked(kKey, 31415, instr);
      hwsec::sim::Rng rng(27182);
      std::vector<sca::Trace> fixed, random;
      for (int i = 0; i < 250; ++i) {
        crypto::AesBlock pt{};
        recorder.begin_trace();
        variant == attacks::AesVariant::kMasked ? masked.encrypt(pt) : ttable.encrypt(pt);
        fixed.push_back(recorder.end_trace(attacks::kAesSamplesPerTrace));
        for (auto& b : pt) {
          b = static_cast<std::uint8_t>(rng.next_u32());
        }
        recorder.begin_trace();
        variant == attacks::AesVariant::kMasked ? masked.encrypt(pt) : ttable.encrypt(pt);
        random.push_back(recorder.end_trace(attacks::kAesSamplesPerTrace));
      }
      return sca::max_welch_t(fixed, random);
    };
    std::cout << "  unprotected: max |t| = " << std::fixed << std::setprecision(1)
              << tvla(attacks::AesVariant::kTTable) << "\n";
    std::cout << "  masked:      max |t| = " << tvla(attacks::AesVariant::kMasked) << "\n";
  }

  std::cout << "\nLab 4: countermeasures under the same 400-trace budget\n";
  cpa_round("hiding (jitter=4)", attacks::AesVariant::kTTable, 400, 0.5, 4);
  cpa_round("constant-time    ", attacks::AesVariant::kConstantTime, 400, 0.5, 0);
  cpa_round("1st-order masked ", attacks::AesVariant::kMasked, 400, 0.5, 0);

  std::cout << "\nLab 5: Kocher timing attack on RSA (extra-reduction statistic)\n";
  {
    hwsec::sim::Rng rng(1999);
    const auto key = crypto::rsa_generate(rng);
    const auto samples = attacks::collect_timing_samples(key, 6000, 2.0, false);
    std::uint32_t bits = 0;
    for (crypto::u64 d = key.d; d; d >>= 1) {
      ++bits;
    }
    auto result = attacks::timing_attack(key.n, samples, bits);
    attacks::score_against(result, key.d);
    std::cout << "  naive square-and-multiply: " << result.bits_correct << "/"
              << result.bits_decided << " exponent bits, full key "
              << (result.recovered_d == key.d ? "RECOVERED" : "not recovered") << "\n";
    const auto ct_samples = attacks::collect_timing_samples(key, 6000, 2.0, true);
    auto ct_result = attacks::timing_attack(key.n, ct_samples, bits);
    attacks::score_against(ct_result, key.d);
    std::cout << "  constant-time ladder:      " << ct_result.bits_correct << "/"
              << ct_result.bits_decided << " bits (chance level), full key "
              << (ct_result.recovered_d == key.d ? "RECOVERED" : "not recovered") << "\n";
  }
  return 0;
}
