// Fault (glitch) attacks (paper §5, [5][19]).
//
//  * Bellcore / Boneh–DeMillo–Lipton RSA-CRT attack: ONE faulty CRT
//    signature s' over a known message factors the modulus:
//    gcd(s'^e − m, n) = q (the half whose exponentiation stayed intact).
//  * Differential fault analysis of AES (Giraud-style): single-bit faults
//    injected into the state entering the final round; each (correct,
//    faulty) ciphertext pair reduces the candidates for one byte of the
//    last round key; the full key falls out of inverting the key schedule.
//
// Both take the *outputs* of a glitched computation — how the glitch is
// produced (clock/voltage/EM per §5, or CLKSCREW's DVFS abuse per [37])
// is the glitcher's concern, modeled by sim::FaultInjector / DVFS.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "crypto/aes.h"
#include "crypto/rsa.h"

namespace hwsec::attacks {

/// Bellcore attack: returns a nontrivial factor of n, or 0 if the
/// signature was not usefully faulty.
hwsec::crypto::u64 rsa_crt_fault_attack(hwsec::crypto::u64 n, hwsec::crypto::u64 e,
                                        hwsec::crypto::u64 message,
                                        hwsec::crypto::u64 faulty_signature);

/// One DFA observation: correct and faulty ciphertext for the same
/// plaintext, fault model = single-bit flip entering round 10.
struct DfaPair {
  hwsec::crypto::AesBlock correct{};
  hwsec::crypto::AesBlock faulty{};
};

struct DfaResult {
  bool key_recovered = false;
  hwsec::crypto::AesKey key{};
  /// Remaining candidates per last-round-key byte (diagnostics).
  std::array<std::uint32_t, 16> candidates_left{};
  std::uint32_t pairs_consumed = 0;
};

/// Runs the DFA over the pairs. Needs, typically, 2-3 pairs per byte
/// position with faults covering all 16 positions.
DfaResult aes_dfa_attack(const std::vector<DfaPair>& pairs);

/// Inverts the AES-128 key schedule: master key from the round-10 key.
hwsec::crypto::AesKey invert_key_schedule(const std::array<std::uint32_t, 4>& round10_words);

}  // namespace hwsec::attacks
