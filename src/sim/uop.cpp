#include "sim/uop.h"

namespace hwsec::sim {

namespace {

UopKind lower_opcode(Opcode op) {
  switch (op) {
    case Opcode::kNop: return UopKind::kNop;
    case Opcode::kHalt: return UopKind::kHalt;
    case Opcode::kLoadImm: return UopKind::kLoadImm;
    case Opcode::kAdd: return UopKind::kAdd;
    case Opcode::kSub: return UopKind::kSub;
    case Opcode::kAnd: return UopKind::kAnd;
    case Opcode::kOr: return UopKind::kOr;
    case Opcode::kXor: return UopKind::kXor;
    case Opcode::kShl: return UopKind::kShl;
    case Opcode::kShr: return UopKind::kShr;
    case Opcode::kMul: return UopKind::kMul;
    case Opcode::kAddImm: return UopKind::kAddImm;
    case Opcode::kAndImm: return UopKind::kAndImm;
    case Opcode::kXorImm: return UopKind::kXorImm;
    case Opcode::kShlImm: return UopKind::kShlImm;
    case Opcode::kShrImm: return UopKind::kShrImm;
    case Opcode::kLoad: return UopKind::kLoad;
    case Opcode::kLoadByte: return UopKind::kLoadByte;
    case Opcode::kStore: return UopKind::kStore;
    case Opcode::kStoreByte: return UopKind::kStoreByte;
    case Opcode::kBranch: return UopKind::kBranch;
    case Opcode::kJump: return UopKind::kJump;
    case Opcode::kJumpInd: return UopKind::kJumpInd;
    case Opcode::kCall: return UopKind::kCall;
    case Opcode::kCallInd: return UopKind::kCallInd;
    case Opcode::kRet: return UopKind::kRet;
    case Opcode::kFence: return UopKind::kFence;
    case Opcode::kClflush: return UopKind::kClflush;
    case Opcode::kRdCycle: return UopKind::kRdCycle;
    case Opcode::kEcall: return UopKind::kEcall;
  }
  return UopKind::kNop;
}

Uop lower_instruction(const Instruction& inst) {
  Uop u;
  u.kind = lower_opcode(inst.op);
  u.rd = static_cast<std::uint8_t>(inst.rd);
  u.rs1 = static_cast<std::uint8_t>(inst.rs1);
  u.rs2 = static_cast<std::uint8_t>(inst.rs2);
  u.cond = inst.cond;
  u.imm = static_cast<Word>(inst.imm);
  if (inst.op == Opcode::kShlImm || inst.op == Opcode::kShrImm) {
    u.imm &= 31u;  // the ALU masks shift amounts; bake it in.
  }
  return u;
}

}  // namespace

std::uint64_t program_identity(const Program& program) {
  // FNV-1a; collisions are resolved by structural equality in the cache,
  // so the hash only has to spread well.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(program.base);
  mix(program.code.size());
  for (const Instruction& inst : program.code) {
    mix(static_cast<std::uint64_t>(inst.op) | static_cast<std::uint64_t>(inst.rd) << 8 |
        static_cast<std::uint64_t>(inst.rs1) << 16 | static_cast<std::uint64_t>(inst.rs2) << 24 |
        static_cast<std::uint64_t>(inst.cond) << 32);
    mix(static_cast<std::uint64_t>(inst.imm));
  }
  return h;
}

std::shared_ptr<const DecodedProgram> decode_program(const Program& program) {
  auto decoded = std::make_shared<DecodedProgram>();
  decoded->base = program.base;
  decoded->end = program.end();
  decoded->code = program.code;
  decoded->uops.reserve(program.code.size());
  for (const Instruction& inst : program.code) {
    decoded->uops.push_back(lower_instruction(inst));
  }
  decoded->identity = program_identity(program);
  return decoded;
}

std::shared_ptr<const DecodedProgram> UopCache::get_or_decode(const Program& program) {
  const std::uint64_t id = program_identity(program);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = by_hash_.find(id); it != by_hash_.end()) {
      for (const auto& candidate : it->second) {
        if (candidate->base == program.base && candidate->code == program.code) {
          return candidate;
        }
      }
    }
  }
  // Decode outside the lock; worst case two threads race and one copy wins.
  auto decoded = decode_program(program);
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_ >= kMaxEntries) {
    by_hash_.clear();  // outstanding shared_ptrs keep their programs alive.
    entries_ = 0;
  }
  auto& bucket = by_hash_[id];
  for (const auto& candidate : bucket) {
    if (candidate->base == program.base && candidate->code == program.code) {
      return candidate;  // lost the race; reuse the established copy.
    }
  }
  bucket.push_back(decoded);
  ++entries_;
  return decoded;
}

std::size_t UopCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

}  // namespace hwsec::sim
