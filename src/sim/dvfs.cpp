#include "sim/dvfs.h"

#include <cmath>

namespace hwsec::sim {

DvfsController::DvfsController(DvfsConfig config) : config_(std::move(config)) {
  if (config_.rated_points.empty()) {
    throw std::invalid_argument("DVFS needs at least one rated point");
  }
  point_ = config_.rated_points.front();
}

void DvfsController::set_point(OperatingPoint p) {
  if (p.freq_mhz <= 0 || p.voltage <= 0) {
    throw std::invalid_argument("DVFS point must be positive");
  }
  if (enforce_ && p.freq_mhz > stable_freq_mhz(p.voltage)) {
    throw std::logic_error("DVFS hardware interlock rejected unstable point (" +
                           std::to_string(p.freq_mhz) + " MHz @ " + std::to_string(p.voltage) +
                           " V)");
  }
  point_ = p;
}

void DvfsController::set_rated_point(std::size_t index) {
  point_ = config_.rated_points.at(index);
}

double DvfsController::overclock_margin_mhz() const {
  const double margin = point_.freq_mhz - stable_freq_mhz();
  return margin > 0 ? margin : 0.0;
}

double DvfsController::fault_probability() const {
  const double margin = overclock_margin_mhz();
  if (margin <= 0) {
    return 0.0;
  }
  return 1.0 - std::exp(-margin / config_.tau_mhz);
}

void FaultInjector::arm_window(std::uint64_t skip_calls, std::uint64_t active_calls) {
  window_start_ = calls_ + skip_calls;
  window_end_ = window_start_ + active_calls;
}

bool FaultInjector::active_now() const {
  if (window_end_ == 0) {
    return true;
  }
  return calls_ >= window_start_ && calls_ < window_end_;
}

Word FaultInjector::corrupt(Word value) {
  const bool in_window = active_now();
  ++calls_;
  if (!in_window || probability_ <= 0.0 || !rng_.chance(probability_)) {
    return value;
  }
  ++faults_;
  switch (model_) {
    case Model::kSingleBit:
      return value ^ (1u << rng_.below(32));
    case Model::kSingleByte: {
      const std::uint32_t byte = static_cast<std::uint32_t>(rng_.below(4));
      const Word mask = 0xFFu << (8 * byte);
      const Word random_byte = static_cast<Word>(rng_.below(256)) << (8 * byte);
      return (value & ~mask) | random_byte;
    }
    case Model::kStuckAtZero: {
      const std::uint32_t byte = static_cast<std::uint32_t>(rng_.below(4));
      return value & ~(0xFFu << (8 * byte));
    }
  }
  return value;
}

void FaultInjector::reset_counters() {
  calls_ = 0;
  faults_ = 0;
  window_start_ = 0;
  window_end_ = 0;
}

}  // namespace hwsec::sim
