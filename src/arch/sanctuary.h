// Sanctuary model (paper §3.2, [7]) — user-space enclaves on unmodified
// TrustZone hardware.
//
// Modeled mechanisms:
//  * Sanctuary Apps (SAs) live in *normal-world* memory but each SA's
//    memory is bound, TZASC-style, to the SA's own bus identity and to
//    the physical core it temporarily owns. The secure world shrinks to
//    vendor-provided security primitives only (the TCB reduction that
//    removes the vendor<->app-developer trust requirement).
//  * unlimited enclaves on already-shipped silicon: no new hardware.
//  * cache story (§4.1): Sanctuary cannot partition the shared cache (it
//    changes no hardware), so instead SA memory is made *uncacheable in
//    the shared levels* and core-private caches are flushed on every SA
//    entry/exit. Shared-cache Prime+Probe finds no SA lines to evict;
//    the cost is that SA memory traffic runs at DRAM speed.
//  * DMA protection and secure peripheral channels are inherited from the
//    TrustZone address-space controller.
#pragma once

#include <vector>

#include "arch/domains.h"
#include "tee/architecture.h"

namespace hwsec::arch {

class Sanctuary final : public hwsec::tee::Architecture {
 public:
  struct Config {
    /// Core temporarily dedicated to SA execution.
    hwsec::sim::CoreId sanctuary_core = 1;
    bool flush_private_caches_on_switch = true;
    /// Exclude SA memory from shared cache levels (the §4.1 defense).
    bool exclude_from_shared_caches = true;
  };

  explicit Sanctuary(hwsec::sim::Machine& machine) : Sanctuary(machine, Config{}) {}
  Sanctuary(hwsec::sim::Machine& machine, Config config);
  ~Sanctuary() override;

  const hwsec::tee::ArchitectureTraits& traits() const override;

  hwsec::tee::Expected<hwsec::tee::EnclaveId> create_enclave(
      const hwsec::tee::EnclaveImage& image) override;
  hwsec::tee::EnclaveError destroy_enclave(hwsec::tee::EnclaveId id) override;
  /// Sanctuary pins SA execution to the dedicated core; the `core`
  /// argument is ignored (kept for interface compatibility).
  hwsec::tee::EnclaveError call_enclave(hwsec::tee::EnclaveId id, hwsec::sim::CoreId core,
                                        const Service& service) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> attest(
      hwsec::tee::EnclaveId id, const hwsec::tee::Nonce& nonce) override;
  std::vector<std::uint8_t> report_verification_key() const override;

  bool in_sanctuary_memory(hwsec::sim::PhysAddr addr) const;
  const Config& config() const { return config_; }

 private:
  struct Region {
    hwsec::tee::EnclaveId owner;
    hwsec::sim::PhysAddr base;
    hwsec::sim::PhysAddr end;
  };

  Config config_;
  std::vector<Region> regions_;
  hwsec::sim::DomainId next_domain_ = kFirstEnclaveDomain;
  std::vector<std::uint8_t> secure_world_key_;  ///< vendor primitive: attestation.
  std::size_t bus_check_id_ = 0;
};

}  // namespace hwsec::arch
