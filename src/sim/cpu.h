// Execution engine of one hart, with the speculative/transient behaviour
// that Section 4.2 of the paper surveys.
//
// The core executes committed instructions in order, but control-flow
// prediction and faulting loads open *transient windows*:
//
//  * mispredicted conditional branches (PHT), indirect branches (BTB) and
//    returns (RSB) execute up to `speculation_window` instructions down
//    the predicted-but-wrong path. Transient instructions use a shadow
//    register file and never write memory, but their *loads fill the
//    caches* — the side channel every Spectre variant encodes secrets in.
//
//  * a load whose translation faults can still forward data transiently:
//      - protection fault (e.g. user access to a supervisor page) with
//        `meltdown_fault_forwarding`: the value at the (successfully
//        translated) physical address is forwarded to the dependent
//        transient instructions before the fault is raised at retirement —
//        the Meltdown behaviour. Mitigated cores forward zero.
//      - terminal fault (present bit clear / reserved bit set) with
//        `l1tf_vulnerable`: if the *stale frame bits* of the PTE point at
//        a line currently in this core's L1D, its (plaintext) value is
//        forwarded — the Foreshadow / L1TF behaviour. L1-miss forwards
//        nothing.
//    When the faulting load itself sits inside a transient window the
//    architectural exception is suppressed entirely (how Meltdown-style
//    attacks avoid crashing).
//
// Embedded profiles construct the core with speculative_execution=false,
// which removes every transient behaviour at the source — matching the
// paper's observation that IoT-class cores "do not incorporate the
// performance enhancements found in high-end CPUs" and are therefore not
// susceptible to microarchitectural attacks.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include <memory>

#include "sim/bus.h"
#include "sim/dispatch.h"
#include "sim/dvfs.h"
#include "sim/isa.h"
#include "sim/mmu.h"
#include "sim/mpu.h"
#include "sim/predictor.h"
#include "sim/program.h"
#include "sim/types.h"
#include "sim/uop.h"
#include "sim/watchdog.h"

namespace hwsec::sim {

struct CpuConfig {
  CoreId id = 0;
  bool speculative_execution = true;
  std::uint32_t speculation_window = 64;
  bool meltdown_fault_forwarding = true;  ///< false = mitigated silicon.
  bool l1tf_vulnerable = true;            ///< false = mitigated silicon.
  Cycle mispredict_penalty = 15;
  Cycle alu_latency = 1;
  PredictorConfig predictor{};
  TlbConfig tlb{};
};

struct FaultInfo {
  Fault fault = Fault::kNone;
  VirtAddr pc = 0;
  VirtAddr addr = 0;  ///< faulting data address (0 for fetch faults).
  AccessType type = AccessType::kRead;
};

enum class FaultAction : std::uint8_t {
  kHalt,      ///< stop the run (unhandled fault).
  kSkip,      ///< retire the faulting instruction as a no-op, continue.
  kRedirect,  ///< handler set a new pc (exception vector); continue there.
};

struct CpuStats {
  std::uint64_t retired = 0;
  std::uint64_t transient_executed = 0;
  std::uint64_t branch_mispredicts = 0;
  std::uint64_t indirect_mispredicts = 0;
  std::uint64_t return_mispredicts = 0;
  std::uint64_t faults_raised = 0;
  std::uint64_t faults_suppressed = 0;  ///< faulting loads inside transient windows.
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t dram_accesses = 0;
};

struct RunResult {
  bool halted = false;             ///< reached kHalt (vs. instruction budget).
  std::uint64_t executed = 0;      ///< committed instructions this run.
  Fault stop_fault = Fault::kNone; ///< set when a kHalt FaultAction ended the run.
};

class Cpu {
 public:
  /// `service` is the kEcall immediate; args/returns by convention in
  /// r1..r3. The handler runs host-side (it models OS / monitor / SDK
  /// services) and may switch the CPU's context.
  using EcallHandler = std::function<void(Cpu&, Word service)>;
  using FaultHandler = std::function<FaultAction(Cpu&, const FaultInfo&)>;
  /// Observes every committed result value (for the power-leakage model).
  using LeakHook = std::function<void(Word value)>;
  /// Observes every committed control-flow transfer (source pc, target).
  /// Substrate for control-flow attestation (C-FLAT, the paper's [1]).
  using ControlFlowHook = std::function<void(VirtAddr from, VirtAddr to)>;

  Cpu(CpuConfig config, Bus& bus);

  const CpuConfig& config() const { return config_; }
  CoreId id() const { return config_.id; }

  // -- program management ----------------------------------------------
  /// Makes `program`'s instructions fetchable (fetch permissions are
  /// still enforced by MMU/MPU; this only registers the decoded code).
  /// With `asid` set, the program is visible only while that address
  /// space is active — two processes may then occupy the same virtual
  /// addresses with different code, as real processes do.
  void load_program(const Program& program, std::optional<Asid> asid = std::nullopt);
  void clear_programs();

  /// Installs the shared decoded-program cache consulted by load_program
  /// (nullptr: decode privately per load). The cache must outlive the Cpu;
  /// the machine pool owns one per pool and installs it before taking the
  /// pristine snapshot, so pooled trials never re-decode a program.
  void set_uop_cache(UopCache* cache) { uop_cache_ = cache; }

  /// Overrides the commit-loop interpreter for this core (tests and
  /// per-backend benchmarking; normal construction follows HWSEC_DISPATCH).
  void set_dispatch_backend(DispatchBackend backend) {
    dirty_ = true;
    backend_ = backend;
  }
  DispatchBackend dispatch_backend() const { return backend_; }

  // -- architectural state ----------------------------------------------
  Word reg(Reg r) const { return r == kZero ? 0 : regs_[r]; }
  void set_reg(Reg r, Word value) {
    if (r != kZero) {
      dirty_ = true;
      regs_[r] = value;
    }
  }
  VirtAddr pc() const { return pc_; }
  void set_pc(VirtAddr pc) {
    dirty_ = true;
    pc_ = pc;
  }
  Cycle cycles() const { return cycles_; }
  void add_cycles(Cycle c) {
    dirty_ = true;
    cycles_ += c;
  }

  /// Switches security context: domain tag, privilege, address space.
  /// Notifies the branch predictor (flush-on-switch mitigations hook in
  /// there).
  void switch_context(DomainId domain, Privilege priv, PhysAddr page_root, Asid asid);
  DomainId domain() const { return mmu_.domain(); }
  Privilege privilege() const { return mmu_.privilege(); }

  // -- hooks --------------------------------------------------------------
  void set_ecall_handler(EcallHandler h) {
    dirty_ = true;
    ecall_ = std::move(h);
  }
  void set_fault_handler(FaultHandler h) {
    dirty_ = true;
    fault_handler_ = std::move(h);
  }
  void set_leak_hook(LeakHook h) {
    dirty_ = true;
    leak_ = std::move(h);
    has_leak_ = static_cast<bool>(leak_);
  }
  void set_control_flow_hook(ControlFlowHook h) {
    dirty_ = true;
    cf_hook_ = std::move(h);
    has_cf_hook_ = static_cast<bool>(cf_hook_);
  }
  /// Glitch injector applied to committed ALU results (CLKSCREW et al.).
  void set_fault_injector(FaultInjector* injector) {
    dirty_ = true;
    injector_ = injector;
  }
  void set_mpu(const Mpu* mpu) {
    dirty_ = true;
    mpu_ = mpu;
  }
  /// Arms (or with nullptr disarms) the per-trial watchdog. While armed,
  /// run() throws SimError(kTimedOut) when the cycle budget is exhausted or
  /// the wall-clock monitor sets the cancel flag. Arming is per-trial
  /// transient state, deliberately *not* part of the snapshot dirtiness:
  /// the machine pool disarms on every lease release, and a restored
  /// watchdog pointer would dangle past its trial anyway.
  void set_watchdog(const TrialWatchdog* watchdog) { watchdog_ = watchdog; }

  // -- execution ------------------------------------------------------------
  /// Runs until kHalt, an unhandled fault, or `max_instructions`
  /// committed instructions.
  RunResult run(std::uint64_t max_instructions = 1'000'000);

  /// Convenience: set pc and run.
  RunResult run_from(VirtAddr entry, std::uint64_t max_instructions = 1'000'000);

  /// Non-const accessors conservatively mark the core dirty: callers can
  /// mutate MMU/predictor state through the reference without the Cpu
  /// seeing it, and the snapshot layer must assume they did.
  Mmu& mmu() {
    dirty_ = true;
    return mmu_;
  }
  const Mmu& mmu() const { return mmu_; }
  BranchPredictor& predictor() {
    dirty_ = true;
    return predictor_;
  }
  Bus& bus() { return *bus_; }

  const CpuStats& stats() const { return stats_; }
  void reset_stats() {
    dirty_ = true;
    stats_ = {};
  }

  // -- snapshot support (Machine::snapshot) ------------------------------
  /// Dirty-since-snapshot flag: Machine::snapshot() calls mark_clean() on
  /// every core before copying it, and Machine::reset_to() skips the
  /// (predictor/TLB/program-table) copy for cores still clean — in
  /// single-core trials that is every core but core 0. Every mutating
  /// member function and non-const accessor sets the flag.
  void mark_clean() { dirty_ = false; }
  bool dirty() const { return dirty_; }

 private:
  struct StepOutcome {
    bool halt = false;
    bool fault_stop = false;
    Fault fault = Fault::kNone;
  };

  /// Why the micro-op core handed control back to run().
  enum class UopExit : std::uint8_t {
    kDone,    ///< run finished (halt, fault stop, or budget exhausted).
    kStep,    ///< execute exactly one instruction via step(), then re-enter.
    kResync,  ///< a fault handler ran; re-evaluate hooks/backend and re-enter.
  };

  const Instruction* instruction_at(VirtAddr pc) const;
  StepOutcome step();
  RunResult run_switch(std::uint64_t max_instructions);

  /// Micro-op commit loop (sim/dispatch.cpp). Hooked=false is the
  /// branchless fast path, entered only when no leak hook, no control-flow
  /// hook and no watchdog is armed (the MPU and the glitch injector force
  /// the legacy interpreter outright); Hooked=true keeps micro-op dispatch
  /// but re-validates hook state and polls the watchdog per instruction.
  /// Updates `result` in place; `pc_` is materialized at every point where
  /// host code (hooks, handlers, thrown errors) can observe it.
  template <bool Hooked>
  UopExit run_uops(RunResult& result, std::uint64_t max_instructions);

  /// Throws SimError(kTimedOut) if the armed watchdog tripped.
  void check_watchdog(std::uint64_t executed) const;
  /// Raises `info` through the fault handler; fills StepOutcome.
  StepOutcome raise(const FaultInfo& info);
  void leak_value(Word value);
  Word alu_result(Word value);  ///< applies the glitch injector.
  void note_service(ServiceLevel level);

  /// Runs the transient window starting at `start_pc` with a copy of the
  /// architectural registers (optionally pre-seeding `seed_reg` with the
  /// microarchitecturally forwarded value of a faulting load).
  void run_transient(VirtAddr start_pc, std::optional<Reg> seed_reg, Word seed_value);

  /// Resolves the microarchitecturally forwarded value for a faulting
  /// load, per the Meltdown / L1TF configuration. Returns nullopt when
  /// nothing forwards (mitigated core, or L1 miss under L1TF).
  std::optional<Word> transient_fault_value(const TranslateResult& tr, VirtAddr va,
                                            bool byte_load);

  CpuConfig config_;
  Bus* bus_;
  Mmu mmu_;
  BranchPredictor predictor_;
  const Mpu* mpu_ = nullptr;
  FaultInjector* injector_ = nullptr;
  const TrialWatchdog* watchdog_ = nullptr;

  std::array<Word, kNumRegs> regs_{};
  VirtAddr pc_ = 0;
  Cycle cycles_ = 0;
  /// Physical address of the previously fetched instruction, for the
  /// EA-MPU's "which code is executing" gate and entry-point checks.
  PhysAddr prev_fetch_phys_ = 0;

  struct LoadedProgram {
    /// Immutable decoded form, shared across machines via the UopCache.
    /// instruction_at and the transient-window executor serve from
    /// decoded->code; the micro-op core executes decoded->uops.
    std::shared_ptr<const DecodedProgram> decoded;
    std::optional<Asid> asid;
    VirtAddr base = 0;  ///< cached decoded->base (avoids an indirection on reject).
    VirtAddr end = 0;   ///< cached decoded->end.
  };
  std::vector<LoadedProgram> programs_;
  UopCache* uop_cache_ = nullptr;
  DispatchBackend backend_ = DispatchBackend::kUops;

  /// Fetch memo: replays the side effects of an instruction fetch whose
  /// translation hit the TLB and whose line hit the L1I, without
  /// re-entering the MMU and bus layers. An entry records where the hit
  /// landed plus every removal epoch its validity depends on; epochs are
  /// monotonic (including across snapshot restores), so "all epochs
  /// unchanged and same context word" proves bit-for-bit that the full
  /// path would produce the same latency, stats deltas and LRU/PLRU
  /// touches the replay applies. Armed only when the bus has no firewall
  /// checks and the MMU is translating (bare-mode cores take the MPU /
  /// legacy path anyway).
  struct FetchMemo {
    VirtAddr pc = ~VirtAddr{0};  ///< sentinel: misaligned, never matches.
    PhysAddr phys = 0;
    Cycle latency = 0;  ///< TLB hit latency + L1I hit latency.
    std::uint32_t tlb_index = 0;
    std::uint32_t l1i_set = 0;
    std::uint32_t l1i_way = 0;
    std::uint64_t ctx = 0;  ///< packed asid/domain/priv + bus-check bit.
    std::uint64_t tlb_epoch = 0;
    std::uint64_t l1i_epoch = 0;
    std::uint64_t excl_epoch = 0;
  };
  static constexpr std::uint32_t kFetchMemoSlots = 64;  ///< direct-mapped.
  std::uint64_t fetch_ctx() const {
    return static_cast<std::uint64_t>(mmu_.asid()) << 32 |
           static_cast<std::uint64_t>(mmu_.domain()) << 8 |
           static_cast<std::uint64_t>(mmu_.privilege()) << 1 |
           static_cast<std::uint64_t>(bus_->has_checks());
  }
  std::array<FetchMemo, kFetchMemoSlots> fetch_memo_{};

  /// Flat fetch table: slot (pc - fetch_lo_) >> 2 holds the index of the
  /// program serving that pc (kNoSlot: no program). Built lazily for the
  /// programs visible under the current ASID, making instruction_at an
  /// array index instead of a range scan. Slots hold indices rather than
  /// Instruction pointers so a copied Cpu (machine snapshots) carries a
  /// table that is valid against its own programs_ vector. Invalidated on
  /// load_program/clear_programs/switch_context; ASID changes applied
  /// directly at the MMU are caught by the fetch_asid_ check. Programs
  /// with misaligned bases or a pathologically wide address spread fall
  /// back to the load-order linear scan (fetch_flat_ok_ == false).
  void rebuild_fetch_table() const;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr std::uint64_t kMaxFetchSlots = 1u << 20;  ///< 4 MiB pc span.
  mutable std::vector<std::uint32_t> fetch_slots_;
  mutable VirtAddr fetch_lo_ = 0;
  mutable Asid fetch_asid_ = 0;
  mutable bool fetch_valid_ = false;
  mutable bool fetch_flat_ok_ = false;
  EcallHandler ecall_;
  FaultHandler fault_handler_;
  LeakHook leak_;
  ControlFlowHook cf_hook_;
  /// Hoisted null-checks for the per-commit hooks: a plain bool test on the
  /// commit path instead of a std::function engaged-state load per retired
  /// instruction.
  bool has_leak_ = false;
  bool has_cf_hook_ = false;
  /// See mark_clean(); starts true so a restore before any snapshot-side
  /// mark_clean() never skips the copy.
  bool dirty_ = true;
  CpuStats stats_;
};

}  // namespace hwsec::sim
