// Branch shadowing (paper §4.1/[28], Lee et al.: "Inferring Fine-grained
// Control Flow Inside SGX Enclaves with Branch Shadowing").
//
// The enclave's code is isolated, but the PHT it trains is not: the
// attacker places a *shadow branch* at a PHT-congruent virtual address
// and measures its own misprediction penalty. If the victim's secret-
// dependent branch was taken, the shared 2-bit counter predicts taken —
// so the attacker's never-taken shadow branch mispredicts, visibly.
//
// One victim run leaks one branch direction = one secret bit. Mitigation:
// flushing predictor state on enclave transitions (the paper's [21]-style
// defenses) resets the counter and blinds the shadow.
#pragma once

#include "attacks/transient/environment.h"

namespace hwsec::attacks {

class BranchShadowAttack {
 public:
  BranchShadowAttack(hwsec::sim::Machine& machine, hwsec::sim::CoreId core);

  /// Runs the victim once with `secret_bit` steering its branch, then the
  /// shadow branch; returns the inferred bit.
  bool infer_bit(bool secret_bit);

  /// Fraction of correctly inferred bits over `rounds` random secrets.
  double accuracy(std::uint32_t rounds, std::uint64_t seed = 717);

 private:
  UserProcess victim_;
  UserProcess attacker_;
  hwsec::sim::VirtAddr victim_entry_ = 0;
  hwsec::sim::VirtAddr shadow_entry_ = 0;
};

}  // namespace hwsec::attacks
