// Software cache side-channel attacks (§4.1) end-to-end: the three
// classic attacks against a plain victim, and the architectural defense
// matrix — SGX/TrustZone (vulnerable) vs. Sanctum (LLC partitioning) vs.
// Sanctuary (exclusion+flush) vs. constant-time software.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "arch/sanctuary.h"
#include "arch/sanctum.h"
#include "arch/sgx.h"
#include "arch/trustzone.h"
#include "attacks/cache/cache_attacks.h"
#include "attacks/cache/full_key_recovery.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                             0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

attacks::VictimFn wrap(attacks::AesCacheVictim& victim) {
  return [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); };
}

attacks::VictimFn wrap(attacks::EnclaveAesVictim& victim) {
  return [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); };
}

TEST(EvictionSets, FindsCongruentLinesWithUnrestrictedAllocator) {
  sim::Machine machine(sim::MachineProfile::server(), 81);
  attacks::EvictionSetBuilder builder(machine, nullptr);
  const sim::PhysAddr target = machine.alloc_frame();
  const auto set = builder.build(target, 16);
  ASSERT_EQ(set.size(), 16u);
  const auto& llc = machine.caches().llc();
  for (const sim::PhysAddr a : set) {
    EXPECT_EQ(llc.set_index(a), llc.set_index(target));
  }
  // Accessing the full set must evict the target from the LLC.
  machine.touch(0, 0, target);
  ASSERT_TRUE(machine.caches().in_llc(target));
  for (const sim::PhysAddr a : set) {
    machine.touch(0, 0, a);
  }
  EXPECT_FALSE(machine.caches().in_llc(target));
}

TEST(FlushReload, RecoversKeyHighNibblesFromPlainVictim) {
  sim::Machine machine(sim::MachineProfile::server(), 82);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, /*core=*/1, /*domain=*/7, tables, kKey);
  attacks::CacheAttackConfig config;
  config.trials = 800;
  const auto result = attacks::flush_reload_attack(machine, victim.layout(), wrap(victim),
                                                   config);
  EXPECT_EQ(result.correct_nibbles(kKey), 16u);
  EXPECT_GT(result.mean_margin(), 1.05);
}

TEST(PrimeProbe, RecoversKeyHighNibblesCrossCore) {
  sim::Machine machine(sim::MachineProfile::server(), 83);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
  attacks::CacheAttackConfig config;
  config.trials = 800;
  const auto result = attacks::prime_probe_attack(machine, victim.layout(), wrap(victim),
                                                  config);
  EXPECT_GE(result.correct_nibbles(kKey), 15u)
      << "Prime+Probe needs no shared memory, only a shared LLC";
}

TEST(EvictTime, RecoversMostNibblesDespiteNoise) {
  sim::Machine machine(sim::MachineProfile::server(), 84);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
  attacks::CacheAttackConfig config;
  config.trials = 6000;  // Evict+Time is the noisiest of the three.
  const auto result =
      attacks::evict_time_attack(machine, victim.layout(), wrap(victim), config);
  EXPECT_GE(result.correct_nibbles(kKey), 12u);
}

TEST(CacheDefenses, SgxEnclaveIsStillVulnerableToPrimeProbe) {
  sim::Machine machine(sim::MachineProfile::server(), 85);
  arch::Sgx sgx(machine);
  attacks::EnclaveAesVictim victim(sgx, kKey, /*core=*/1);
  attacks::CacheAttackConfig config;
  config.trials = 800;
  const auto result = attacks::prime_probe_attack(machine, victim.layout(), wrap(victim),
                                                  config);
  EXPECT_GE(result.correct_nibbles(kKey), 15u)
      << "SGX provides no architectural cache SCA protection (§4.1)";
}

TEST(CacheDefenses, TrustZoneSecureWorldIsVulnerableToPrimeProbe) {
  sim::Machine machine(sim::MachineProfile::mobile(), 86);
  arch::TrustZone tz(machine);
  // Vendor-sign the exact measured identity EnclaveAesVictim deploys
  // (name + code + heap layout; the key is provisioned, not measured).
  tee::EnclaveImage image;
  image.name = "aes-service";
  image.code = {0xAE, 0x50};
  image.heap_pages = 2;
  tz.vendor_sign(image);
  attacks::EnclaveAesVictim victim(tz, kKey, 0);
  attacks::CacheAttackConfig config;
  config.trials = 800;
  const auto result = attacks::prime_probe_attack(machine, victim.layout(), wrap(victim),
                                                  config);
  EXPECT_GE(result.correct_nibbles(kKey), 15u) << "the TruSpy result";
}

TEST(CacheDefenses, SanctumPartitioningStarvesTheAttack) {
  sim::Machine machine(sim::MachineProfile::server(), 87);
  arch::Sanctum sanctum(machine);
  attacks::EnclaveAesVictim victim(sanctum, kKey, 1);
  attacks::CacheAttackConfig config;
  config.trials = 400;
  // The attacker allocates through the OS allocator: page coloring keeps
  // every attacker frame out of the enclave's LLC sets.
  const auto result = attacks::prime_probe_attack(
      machine, victim.layout(), wrap(victim), config,
      [&sanctum]() { return sanctum.alloc_os_frame(); });
  EXPECT_LE(result.correct_nibbles(kKey), 4u)
      << "with disjoint LLC sets there is nothing to prime or probe";
}

TEST(CacheDefenses, SanctuaryExclusionBlindsTheAttack) {
  sim::Machine machine(sim::MachineProfile::mobile(), 88);
  arch::Sanctuary sanctuary(machine);
  attacks::EnclaveAesVictim victim(sanctuary, kKey, 1);
  attacks::CacheAttackConfig config;
  config.trials = 400;
  const auto result = attacks::prime_probe_attack(machine, victim.layout(), wrap(victim),
                                                  config);
  EXPECT_LE(result.correct_nibbles(kKey), 4u)
      << "SA table lines never enter the shared cache";
}

TEST(CacheDefenses, ConstantTimeSoftwareHasNoFootprint) {
  // The software countermeasure (§4.1 [3]): no table lookups at all.
  sim::Machine machine(sim::MachineProfile::server(), 89);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  crypto::AesConstantTime ct_aes(kKey);  // un-instrumented: no touches.
  attacks::TableLayout layout = attacks::layout_tables(tables);
  attacks::CacheAttackConfig config;
  config.trials = 400;
  const auto result = attacks::prime_probe_attack(
      machine, layout,
      [&ct_aes](const crypto::AesBlock& pt) {
        return attacks::AesCacheVictim::Run{ct_aes.encrypt(pt), 0};
      },
      config);
  EXPECT_LE(result.correct_nibbles(kKey), 4u);
}

TEST(FullKeyRecovery, SecondRoundAttackRecoversAll128Bits) {
  // The E3 completion: first-round nibbles (64 bits) + Osvik et al.'s
  // second-round equations (the other 64) = the entire key, via the
  // cache channel alone.
  sim::Machine machine(sim::MachineProfile::server(), 91);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
  const auto result =
      attacks::full_key_attack(machine, victim.layout(), wrap(victim), 600);
  ASSERT_TRUE(result.recovered)
      << "eq survivors: " << result.equation_survivors[0] << "/"
      << result.equation_survivors[1] << "/" << result.equation_survivors[2] << "/"
      << result.equation_survivors[3];
  EXPECT_EQ(result.key, kKey);
}

TEST(FullKeyRecovery, WorksAgainstAnSgxEnclaveVictim) {
  sim::Machine machine(sim::MachineProfile::server(), 92);
  arch::Sgx sgx(machine);
  attacks::EnclaveAesVictim victim(sgx, kKey, 1);
  const auto result =
      attacks::full_key_attack(machine, victim.layout(), wrap(victim), 600);
  ASSERT_TRUE(result.recovered);
  EXPECT_EQ(result.key, kKey);
}

TEST(FullKeyRecovery, TooFewObservationsFailGracefully) {
  sim::Machine machine(sim::MachineProfile::server(), 93);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
  const auto result =
      attacks::full_key_attack(machine, victim.layout(), wrap(victim), 16);
  EXPECT_FALSE(result.recovered);
}

TEST(FullKeyRecovery, StreamingRecoveryMatchesMaterialized) {
  // The five-pass streaming recovery must reproduce the in-memory solver
  // bit for bit on the same observation stream.
  sim::Machine machine(sim::MachineProfile::server(), 94);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
  const auto observations = attacks::collect_line_observations(
      machine, victim.layout(), wrap(victim), 600, {});
  const auto materialized = attacks::recover_full_key(observations);
  const auto streaming = attacks::recover_full_key_streaming(
      [&observations](const std::function<void(const attacks::LineObservation&)>& visit) {
        for (const auto& obs : observations) {
          visit(obs);
        }
      });
  ASSERT_TRUE(materialized.recovered);
  EXPECT_EQ(streaming.recovered, materialized.recovered);
  EXPECT_EQ(streaming.key, materialized.key);
  EXPECT_EQ(streaming.first_round_nibbles_correct, materialized.first_round_nibbles_correct);
  EXPECT_EQ(streaming.equation_survivors, materialized.equation_survivors);
  EXPECT_EQ(streaming.key, kKey);
}

TEST(FullKeyRecovery, ObservationLogRoundTripsExactly) {
  sim::Machine machine(sim::MachineProfile::server(), 95);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
  const auto observations = attacks::collect_line_observations(
      machine, victim.layout(), wrap(victim), 100, {});
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("hwsec-obslog-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    attacks::LineObservationLogWriter writer(dir.string());
    for (const auto& obs : observations) {
      writer.append(obs);
    }
    EXPECT_EQ(writer.size(), observations.size());
    writer.finalize();
  }
  attacks::LineObservationLogReader reader(dir.string());
  EXPECT_EQ(reader.size(), observations.size());
  std::size_t i = 0;
  reader.replay([&](const attacks::LineObservation& obs) {
    ASSERT_LT(i, observations.size());
    EXPECT_EQ(obs.plaintext, observations[i].plaintext);
    EXPECT_EQ(obs.ciphertext, observations[i].ciphertext);
    EXPECT_EQ(obs.lines, observations[i].lines);
    ++i;
  });
  EXPECT_EQ(i, observations.size());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(FullKeyRecovery, StreamingAttackMatchesMaterializedAttack) {
  // Two identically-seeded machines see the same victim stream, so the
  // log-backed streaming attack must land on the same key as the
  // materializing one.
  sim::Machine machine_a(sim::MachineProfile::server(), 96);
  const sim::PhysAddr tables_a = machine_a.alloc_frames(2);
  attacks::AesCacheVictim victim_a(machine_a, 1, 7, tables_a, kKey);
  const auto materialized =
      attacks::full_key_attack(machine_a, victim_a.layout(), wrap(victim_a), 600);

  sim::Machine machine_b(sim::MachineProfile::server(), 96);
  const sim::PhysAddr tables_b = machine_b.alloc_frames(2);
  attacks::AesCacheVictim victim_b(machine_b, 1, 7, tables_b, kKey);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("hwsec-streamattack-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const auto streaming = attacks::full_key_attack_streaming(
      machine_b, victim_b.layout(), wrap(victim_b), 600, dir.string());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  ASSERT_TRUE(materialized.recovered);
  ASSERT_TRUE(streaming.recovered);
  EXPECT_EQ(streaming.key, materialized.key);
  EXPECT_EQ(streaming.key, kKey);
  EXPECT_EQ(streaming.equation_survivors, materialized.equation_survivors);
}

TEST(FlushReload, MoreTrialsImproveRecovery) {
  sim::Machine machine(sim::MachineProfile::server(), 90);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
  attacks::CacheAttackConfig few;
  few.trials = 8;
  attacks::CacheAttackConfig many;
  many.trials = 600;
  const auto weak =
      attacks::flush_reload_attack(machine, victim.layout(), wrap(victim), few);
  const auto strong =
      attacks::flush_reload_attack(machine, victim.layout(), wrap(victim), many);
  EXPECT_LE(weak.correct_nibbles(kKey), strong.correct_nibbles(kKey));
  EXPECT_EQ(strong.correct_nibbles(kKey), 16u);
}

}  // namespace
