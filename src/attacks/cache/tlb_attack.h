// TLB side-channel attack (paper §4.1, Gras et al. [15]: "theoretically,
// any cache structure shared by the attacker and the victim can be
// exploited, e.g. the TLB").
//
// The attacker shares a core — and therefore its TLB — with a victim
// whose *page access pattern* depends on a secret (here: the victim
// touches page[nibble] of a 16-page table, one page per secret nibble).
// Cache defenses do not help: the signal is translation occupancy, not
// data-cache state.
//
//   prime:  translate own pages until every way of every TLB set holds an
//           attacker entry;
//   victim: one secret-dependent access inserts a translation, evicting
//           an attacker entry from exactly one set;
//   probe:  re-translate and time (TLB hit vs. page-walk latency); the
//           slow set's index IS the secret nibble.
//
// Defense knob: Tlb::set_way_partition — with disjoint ways the victim's
// insertions can no longer displace attacker entries (and vice versa).
#pragma once

#include <optional>

#include "sim/machine.h"
#include "sim/page_table.h"

namespace hwsec::attacks {

class TlbAttack {
 public:
  /// Builds attacker & victim mappings in one shared address space on
  /// `core` (the victim models a kernel service; the TLB is the shared
  /// structure either way).
  TlbAttack(hwsec::sim::Machine& machine, hwsec::sim::CoreId core);

  /// The victim-side oracle: performs the secret-dependent page access.
  void victim_access(std::uint8_t secret_nibble);

  /// One prime -> victim -> probe round; returns the recovered nibble, or
  /// nullopt when no set (or several) showed evictions.
  std::optional<std::uint8_t> recover_nibble(std::uint8_t secret_nibble);

  /// Accuracy over `rounds` random nibbles.
  double accuracy(std::uint32_t rounds, std::uint64_t seed = 515);

  hwsec::sim::Mmu& mmu();

  static constexpr hwsec::sim::Asid kAttackerAsid = 40;
  static constexpr hwsec::sim::Asid kVictimAsid = 41;

 private:
  void prime();

  hwsec::sim::Machine* machine_;
  hwsec::sim::CoreId core_;
  hwsec::sim::AddressSpace aspace_;
  std::uint32_t tlb_sets_;
  std::uint32_t tlb_ways_;
  hwsec::sim::VirtAddr attacker_base_ = 0x0100'0000;
  hwsec::sim::VirtAddr victim_base_ = 0x0200'0000;
};

}  // namespace hwsec::attacks
