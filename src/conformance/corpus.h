// Corpus files: minimized failing programs, persisted for regression.
//
// A corpus file is a line-oriented text serialization of one generated
// case (architecture + both programs), written by the fuzzer after
// shrinking and replayed by ctest (tests/corpus/*.corpus). The format is
// deliberately trivial — one instruction per line, fixed six fields — so
// a failing program can be read, edited, and re-run by hand:
//
//   # optional comments
//   arch sgx
//   program normal 0x400000
//   li r5 r0 r0 eq 0x410000
//   lw r3 r5 r0 eq 0
//   halt r0 r0 r0 eq 0
//   program enclave 0x402000
//   ecall r0 r0 r0 eq 2
//   halt r0 r0 r0 eq 0
//
// The parser rejects rdcycle (not oracle-predictable) and unknown
// mnemonics, so a corpus file can never smuggle in a program the
// differential cannot judge.
#pragma once

#include <string>
#include <vector>

#include "conformance/generator.h"

namespace hwsec::conformance {

struct CorpusCase {
  FuzzArch arch{};
  GeneratedCase test;
};

std::string serialize_corpus(FuzzArch arch, const GeneratedCase& test);
/// Throws std::invalid_argument on malformed input.
CorpusCase parse_corpus(const std::string& text);

CorpusCase load_corpus_file(const std::string& path);  ///< throws on I/O error.
void write_corpus_file(const std::string& path, FuzzArch arch, const GeneratedCase& test);

/// Sorted *.corpus paths under `dir`; empty if the directory is missing.
std::vector<std::string> list_corpus_files(const std::string& dir);

}  // namespace hwsec::conformance
