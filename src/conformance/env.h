// Differential-fuzzing environments: one declarative spec per surveyed
// architecture, consumed by BOTH sides of the differential.
//
// The conformance layer checks that the full simulator (pipeline, caches,
// TLB, predictors, speculative windows) and a ~300-line architectural
// reference interpreter agree on every committed effect of a random
// program. For that to be a meaningful oracle the *security environment*
// — who owns which memory, where enforcement happens, what an enclave
// entry does — must be stated once, declaratively, and interpreted
// independently by the two sides:
//
//  * install_env() compiles an EnvSpec into real machine state: page
//    tables in simulated DRAM, bus firewalls, MMU walk checks, an MEE
//    transform, MPU regions, ecall/fault handlers;
//  * the reference interpreter (reference.h) enforces the same EnvSpec
//    directly, with none of the machine's mechanisms.
//
// A divergence therefore means the machine's enforcement plumbing — not
// the shared spec — dropped, reordered, or invented a check.
//
// The eight FuzzArch profiles mirror the paper's Section-3 designs by
// *enforcement substrate*, the property the conformance fuzzer actually
// exercises:
//   sgx        server  EPCM-style MMU walk check + MEE memory encryption
//   sanctum    server  walk check (page-walker invariants) + DMA filter
//   trustzone  mobile  TZASC-style bus firewall on the secure world
//   sanctuary  mobile  bus firewall on the exclusive enclave region
//   smart      embedded MPU: attestation key gated on ROM routine PC
//   sancus     embedded MPU: module data gated on module code PC
//   trustlite  embedded MPU: trustlet data gated, config locked
//   tytan      embedded MPU: trustlite + secure-storage region
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/mpu.h"
#include "sim/types.h"

namespace hwsec::conformance {

enum class FuzzArch : std::uint8_t {
  kSgx,
  kSanctum,
  kTrustZone,
  kSanctuary,
  kSmart,
  kSancus,
  kTrustLite,
  kTyTan,
};

inline constexpr FuzzArch kAllFuzzArchs[] = {
    FuzzArch::kSgx,      FuzzArch::kSanctum, FuzzArch::kTrustZone, FuzzArch::kSanctuary,
    FuzzArch::kSmart,    FuzzArch::kSancus,  FuzzArch::kTrustLite, FuzzArch::kTyTan,
};

std::string to_string(FuzzArch a);
/// Inverse of to_string; throws std::invalid_argument on unknown names
/// (corpus files name their profile).
FuzzArch fuzz_arch_from_string(const std::string& name);

/// Deliberate machine-side mis-installation, for validating that the
/// differential actually catches enforcement bugs (the fuzzer's own
/// conformance suite injects these; normal runs use kNone). The *spec*
/// stays intact — only what install_env() wires into the machine changes,
/// exactly as a simulator bug would manifest.
enum class BugInjection : std::uint8_t {
  kNone,
  /// Skip installing the domain check on the protected range: a foreign
  /// domain's load of enclave memory succeeds instead of faulting.
  kSkipDomainCheck,
  /// Install a "deny" that returns success with a zeroed value path (the
  /// firewall is replaced by nothing and the secret page is zeroed on the
  /// machine only): MPU/MMU deny must be a fault, not silent zero.
  kSilentZero,
};

/// One execution context (the ecall services switch between these).
struct EnvContext {
  sim::DomainId domain = sim::kDomainNormal;
  sim::Privilege priv = sim::Privilege::kUser;
  sim::Asid asid = 1;
};

/// Where a protected physical range is enforced.
enum class ProtectPoint : std::uint8_t {
  kWalkCheck,  ///< MMU page-walker hook (SGX EPCM, Sanctum invariants).
  kBus,        ///< physical-address firewall (TZASC-style).
  kMpu,        ///< EA-MPU region (embedded designs); enforced per-region.
};

/// A physical range only `owner` may touch. For kMpu the enforcement data
/// lives in EnvSpec::mpu_regions instead (PC-gating has no domain).
struct ProtectedRange {
  sim::PhysAddr start = 0;
  sim::PhysAddr end = 0;  ///< exclusive.
  sim::DomainId owner = 0;

  bool contains(sim::PhysAddr addr) const { return addr >= start && addr < end; }
};

/// Ecall service ids implemented by the conformance "OS model". Both the
/// machine-side handler and the oracle implement exactly these.
inline constexpr sim::Word kSvcEnterEnclave = 1;  ///< r14 := pc; ctx := enclave; pc := entry.
inline constexpr sim::Word kSvcExitEnclave = 2;   ///< ctx := normal; pc := r14.
inline constexpr sim::Word kSvcSupervisor = 3;    ///< ctx := normal domain, S-mode.
inline constexpr sim::Word kSvcUser = 4;          ///< ctx := normal domain, U-mode.
// Any other service id is a no-op (execution continues at pc+4).

/// Fault-handling policy shared by both sides: data faults are logged and
/// skipped; fetch faults (and everything past the per-trial fault budget)
/// redirect to the halt stub so a wild jump cannot burn the whole
/// instruction budget on a fault storm.
inline constexpr std::uint32_t kFaultBudget = 64;

struct EnvSpec {
  FuzzArch arch{};
  bool has_mmu = true;

  EnvContext normal;
  EnvContext enclave;

  // Virtual layout (physical layout for bare-mode embedded profiles).
  sim::VirtAddr code_base = 0;       ///< normal-world generated program.
  sim::VirtAddr halt_stub = 0;       ///< single-kHalt recovery program.
  sim::VirtAddr enclave_code = 0;    ///< enclave/trustlet generated program.
  sim::VirtAddr enclave_entry = 0;   ///< pc installed by kSvcEnterEnclave.
  sim::VirtAddr data_base = 0;       ///< RW data, 2 pages.
  sim::VirtAddr rodata_base = 0;     ///< read-only page.
  sim::VirtAddr supervisor_base = 0; ///< S-only page (Meltdown target); 0 if none.
  sim::VirtAddr not_present_base = 0;///< present-bit-cleared page (L1TF); 0 if none.
  sim::VirtAddr secret_base = 0;     ///< enclave-owned page (VA == PA when bare).

  ProtectPoint protect_point = ProtectPoint::kBus;
  std::vector<ProtectedRange> protected_ranges;  ///< physical; computed by make_env_spec.
  /// Page-table root frame (0 for bare profiles). Known statically because
  /// the machine's frame allocator is a deterministic bump allocator; the
  /// oracle's page walker starts here and install_env cross-checks it.
  sim::PhysAddr page_root = 0;

  /// SGX-style memory-encryption perimeter ([mee_start, mee_end), physical;
  /// empty when mee_end == 0). The transform is the pure function
  /// mee_word() below, applied by the bus on the machine side and by the
  /// oracle directly.
  sim::PhysAddr mee_start = 0;
  sim::PhysAddr mee_end = 0;

  /// EA-MPU regions for embedded profiles, in add order. install_env
  /// programs the machine's Mpu from this list; the oracle re-implements
  /// the region/gate/entry-point semantics over the same list.
  std::vector<sim::MpuRegion> mpu_regions;
  bool lock_mpu = false;  ///< TrustLite/TyTAN: lock after programming.

  /// Secret words resident in the protected page. Magic 0xA5EC prefix;
  /// the generator refuses to materialize immediates with that prefix so
  /// a secret value in non-enclave state is evidence of a leak, not a
  /// collision (see invariant checkers in differ.h).
  std::vector<sim::Word> secret_words;

  /// Measured region for the attestation invariant: the enclave's
  /// resident data. SHA-256 over its post-trial (decrypted) contents must
  /// match the oracle's, and the pre-trial measurement unless the enclave
  /// itself wrote it.
  sim::PhysAddr measured_start = 0;
  sim::PhysAddr measured_end = 0;

  /// Addresses the generator biases load/store address registers toward,
  /// with weights (legal data, read-only, secret, supervisor, unmapped...).
  struct AddressSeed {
    sim::VirtAddr addr = 0;
    std::uint32_t weight = 1;
  };
  std::vector<AddressSeed> address_pool;

  bool in_protected(sim::PhysAddr addr, sim::DomainId domain) const {
    for (const ProtectedRange& r : protected_ranges) {
      if (r.contains(addr) && domain != r.owner) {
        return true;
      }
    }
    return false;
  }
  bool in_mee(sim::PhysAddr addr) const { return addr >= mee_start && addr < mee_end; }
};

/// The (pure) MEE transform: word-aligned XOR keystream derived from the
/// physical address. Involutory, so encrypt == decrypt.
sim::Word mee_word(sim::PhysAddr addr, sim::Word value);

/// Machine profile for a fuzz architecture. Distinct names per arch keep
/// MachinePool entries separate; DRAM is shrunk to 2 MiB (the conformance
/// layout needs ~30 pages) so a worker-wide pool stays small.
sim::MachineProfile fuzz_machine_profile(FuzzArch arch);

/// Builds the EnvSpec for an architecture. Pure: depends only on `arch`.
EnvSpec make_env_spec(FuzzArch arch);

/// Per-trial log populated by the machine-side fault handler installed by
/// install_env. The oracle produces the same records independently; the
/// differ compares them entry for entry.
struct FaultRecord {
  sim::Fault fault = sim::Fault::kNone;
  sim::VirtAddr pc = 0;
  sim::VirtAddr addr = 0;
  sim::AccessType type = sim::AccessType::kRead;

  bool operator==(const FaultRecord&) const = default;
};

struct MachineRunLog {
  std::vector<FaultRecord> faults;
  std::uint64_t leak_hash = 0;  ///< running hash of every committed value.
};

/// Folds one committed value into the architectural leak-trace hash.
/// Shared by the machine-side LeakHook and the oracle so the two traces
/// are comparable. (FNV-1a over the 4 value bytes.)
inline std::uint64_t leak_mix(std::uint64_t h, sim::Word value) {
  for (int i = 0; i < 4; ++i) {
    h ^= (value >> (8 * i)) & 0xFFu;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Compiles `spec` into machine state: allocates frames, builds the page
/// tables (MMU profiles) or MPU regions (bare profiles), installs the
/// firewall / walk check / MEE transform per spec.protect_point, writes
/// the data patterns and secret, installs the ecall + fault handlers
/// (which record into `log`), and switches core 0 into the normal
/// context. Must be called on a fresh or pool-reset machine. `inject`
/// deliberately mis-installs one piece of enforcement (see BugInjection).
///
/// Returns the physical frame of the secret page (for checkers).
sim::PhysAddr install_env(sim::Machine& machine, const EnvSpec& spec, MachineRunLog& log,
                          BugInjection inject = BugInjection::kNone);

}  // namespace hwsec::conformance
