#include "attacks/transient/foreshadow.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;

ForeshadowAttack::ForeshadowAttack(sim::Machine& machine, hwsec::arch::Sgx& sgx,
                                   sim::CoreId core, Config config)
    : sgx_(&sgx), config_(config), process_(machine, core) {
  process_.setup_probe_array();

  // Identical transmitter to Meltdown's; the difference is entirely in
  // the translation (terminal fault + stale frame bits + L1 state).
  sim::ProgramBuilder b(kCodeBase);
  b.label("entry")
      .lb(sim::R3, sim::R1)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .label("done")
      .halt();
  const sim::Program program = b.build();
  entry_ = program.address_of("entry");
  done_ = program.address_of("done");
  process_.load_program(program);

  process_.cpu().set_fault_handler([this](sim::Cpu& cpu, const sim::FaultInfo&) {
    cpu.set_pc(done_);
    return sim::FaultAction::kRedirect;
  });
}

std::optional<std::uint8_t> ForeshadowAttack::leak_enclave_byte(tee::EnclaveId id,
                                                                std::uint32_t offset) {
  const tee::EnclaveInfo* info = sgx_->enclave(id);
  if (info == nullptr) {
    return std::nullopt;
  }
  const std::uint32_t page_index = offset / sim::kPageSize;
  const sim::PhysAddr target_frame = sim::page_base(info->phys_of(offset));

  // Step 3: force the page's plaintext through this core's L1D.
  if (config_.use_page_swap_loading) {
    if (sgx_->ewb(id, page_index) != tee::EnclaveError::kOk) {
      return std::nullopt;
    }
    if (sgx_->eldu(id, page_index, process_.core()) != tee::EnclaveError::kOk) {
      return std::nullopt;
    }
  }

  // Step 1: malicious-OS page-table edit — map the window onto the EPC
  // frame, then clear the present bit (the L1TF condition).
  process_.map(window_va_, target_frame, sim::pte::kUser);
  process_.aspace().clear_present(window_va_);
  // The stale translation must come from the walk, not a cached TLB entry.
  process_.cpu().mmu().tlb().invalidate_page(window_va_);

  process_.flush_probe();
  process_.activate(sim::Privilege::kSupervisor);
  sim::Cpu& cpu = process_.cpu();
  cpu.set_reg(sim::R1, window_va_ + (offset & sim::kPageOffsetMask));
  cpu.set_reg(sim::R2, kProbeBase);
  cpu.run_from(entry_, 64);

  return process_.hottest_probe_line();
}

std::vector<std::uint8_t> ForeshadowAttack::leak_enclave_range(tee::EnclaveId id,
                                                               std::uint32_t offset,
                                                               std::uint32_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const auto byte = leak_enclave_byte(id, offset + i);
    out.push_back(byte.value_or(0));
  }
  return out;
}

hwsec::crypto::u64 ForeshadowAttack::steal_attestation_key() {
  const tee::EnclaveInfo* qe = sgx_->quoting_enclave();
  if (qe == nullptr) {
    return 0;
  }
  // The private exponent sits after the 2-byte code stub in the quoting
  // enclave's image (layout knowledge is public: the QE binary ships with
  // the SDK).
  const std::vector<std::uint8_t> bytes = leak_enclave_range(qe->id, 2, 8);
  hwsec::crypto::u64 d = 0;
  for (int i = 7; i >= 0; --i) {
    d = (d << 8) | bytes[static_cast<std::size_t>(i)];
  }
  return d;
}

}  // namespace hwsec::attacks
