// Deterministic parallel campaign engine.
//
// Every experiment in the reproduction (E1–E11) is a Monte-Carlo campaign:
// hundreds of independent attack trials, glitch sweeps at many DVFS points,
// thousands of captured power traces. This engine fans those trials out
// across host cores while keeping results *bit-identical to the sequential
// run regardless of worker count or scheduling*.
//
// The determinism contract:
//  * trial i receives the seed sim::derive_seed(campaign.seed, i) — a pure
//    function of the campaign seed and the trial index, independent of
//    which worker runs the trial or when;
//  * each trial constructs its own state (its own sim::Machine, Rng,
//    recorder, ...) from that seed; trials share no mutable state;
//  * results land in a pre-sized vector at slot i.
// Hence run_campaign(seed, workers=1) and run_campaign(seed, workers=N)
// return identical vectors, for any N.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/machine_pool.h"
#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"

namespace hwsec::sim {
struct TrialWatchdog;
}

namespace hwsec::core {

struct CampaignConfig {
  std::uint64_t seed = 1;  ///< campaign master seed.
  std::size_t trials = 0;  ///< number of independent trials.
  unsigned workers = 0;    ///< 0 = ThreadPool::default_workers().
};

/// Identity of one trial, handed to the trial body.
struct TrialContext {
  std::size_t index = 0;   ///< 0 .. trials-1, stable across worker counts.
  std::uint64_t seed = 0;  ///< derive_seed(campaign seed, index).
  /// Armed by the resilient runner (null under plain run_campaign). A body
  /// that simulates guest code should pass it to Machine::arm_watchdog so
  /// runaway guests convert into structured TimedOut outcomes.
  sim::TrialWatchdog* watchdog = nullptr;
  /// Snapshot/reset machine pool for this campaign. Bodies should obtain
  /// machines via acquire_machine(ctx.machines, profile, ctx.seed) instead
  /// of constructing sim::Machine directly: the pool hands back a
  /// reset-reused machine bit-identical to fresh construction, amortizing
  /// per-trial setup. Null when the runner offers no pooling; the helper
  /// then builds a fresh machine, so bodies need no fallback of their own.
  MachinePool* machines = nullptr;
};

/// Runs `config.trials` independent trials of `body` and returns their
/// results in trial order. `body` must be callable concurrently from
/// multiple threads and must derive all randomness from its TrialContext.
namespace detail {

/// Shared per-trial instrumentation: a "trial" span plus the
/// campaign_trials_completed counter. Observability never touches the
/// trial's seed or state, so results stay bit-identical with it on or off.
struct TrialObs {
  static const obs::Counter& completed() {
    static const obs::Counter c = obs::counter("campaign_trials_completed");
    return c;
  }
  static const obs::Histogram& trial_us() {
    static const obs::Histogram h = obs::histogram("trial_us");
    return h;
  }
};

}  // namespace detail

template <typename Result>
std::vector<Result> run_campaign(const CampaignConfig& config,
                                 const std::function<Result(const TrialContext&)>& body) {
  std::vector<Result> results(config.trials);
  MachinePool machines;
  auto run_on = [&](hwsec::sim::ThreadPool& pool) {
    pool.parallel_for(config.trials, [&](std::size_t i) {
      obs::ScopedTimer trial_timer(detail::TrialObs::trial_us());
      obs::Span trial_span("trial", static_cast<std::int64_t>(i), "trial");
      results[i] =
          body(TrialContext{i, hwsec::sim::derive_seed(config.seed, i), nullptr, &machines});
      detail::TrialObs::completed().add(1);
    });
  };
  if (config.workers == 0) {
    run_on(hwsec::sim::ThreadPool::shared());  // no per-campaign thread spawn.
  } else {
    hwsec::sim::ThreadPool pool(config.workers);
    run_on(pool);
  }
  return results;
}

/// Same, but reusing a caller-owned pool (avoids per-campaign thread spawn
/// for repeated small campaigns, e.g. inside a benchmark loop). The
/// machine pool still lives per call: pooled machines carry no state
/// between campaigns.
template <typename Result>
std::vector<Result> run_campaign(hwsec::sim::ThreadPool& pool, std::uint64_t seed,
                                 std::size_t trials,
                                 const std::function<Result(const TrialContext&)>& body) {
  std::vector<Result> results(trials);
  MachinePool machines;
  pool.parallel_for(trials, [&](std::size_t i) {
    obs::ScopedTimer trial_timer(detail::TrialObs::trial_us());
    obs::Span trial_span("trial", static_cast<std::int64_t>(i), "trial");
    results[i] = body(TrialContext{i, hwsec::sim::derive_seed(seed, i), nullptr, &machines});
    detail::TrialObs::completed().add(1);
  });
  return results;
}

/// Summary of a campaign of scalar outcomes (used by bench_campaign and
/// the sweep benches for machine-readable records).
struct CampaignSummary {
  std::size_t trials = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

CampaignSummary summarize(const std::vector<double>& outcomes);

/// Runs a list of heterogeneous independent tasks (each its own closure)
/// across `workers` threads. Task k must derive all randomness from inputs
/// fixed before the call, so completion order cannot affect results. Used
/// by the Figure-1 evaluation to fan its attack probes out.
void run_parallel_tasks(const std::vector<std::function<void()>>& tasks, unsigned workers = 0);

}  // namespace hwsec::core
