#include "sim/memory.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace hwsec::sim {

PhysicalMemory::PhysicalMemory(std::uint32_t bytes) {
  const std::uint32_t rounded = (bytes + kPageSize - 1) & ~kPageOffsetMask;
  data_.assign(rounded, 0);
}

std::uint8_t PhysicalMemory::read8(PhysAddr addr) const {
  assert(contains(addr));
  return data_[addr];
}

void PhysicalMemory::write8(PhysAddr addr, std::uint8_t value) {
  assert(contains(addr));
  mark_dirty(addr, 1);
  data_[addr] = value;
}

Word PhysicalMemory::read32(PhysAddr addr) const {
  assert(contains(addr, 4));
  return static_cast<Word>(data_[addr]) | static_cast<Word>(data_[addr + 1]) << 8 |
         static_cast<Word>(data_[addr + 2]) << 16 | static_cast<Word>(data_[addr + 3]) << 24;
}

void PhysicalMemory::write32(PhysAddr addr, Word value) {
  assert(contains(addr, 4));
  mark_dirty(addr, 4);
  data_[addr] = static_cast<std::uint8_t>(value);
  data_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
  data_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
  data_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
}

void PhysicalMemory::read_block(PhysAddr addr, std::span<std::uint8_t> out) const {
  assert(contains(addr, static_cast<std::uint32_t>(out.size())));
  std::copy_n(data_.begin() + addr, out.size(), out.begin());
}

void PhysicalMemory::write_block(PhysAddr addr, std::span<const std::uint8_t> in) {
  assert(contains(addr, static_cast<std::uint32_t>(in.size())));
  if (!in.empty()) {
    mark_dirty(addr, static_cast<std::uint32_t>(in.size()));
  }
  std::copy(in.begin(), in.end(), data_.begin() + addr);
}

void PhysicalMemory::fill(PhysAddr addr, std::uint32_t len, std::uint8_t value) {
  assert(contains(addr, len));
  if (len == 0) {
    return;
  }
  if (value == 0 && tracking_ && !raw_dirty_ && !zero_snap_.empty()) {
    // Zeroing a page that was zero at snapshot time and is still clean is a
    // no-op: the bytes are already zero. Skipping the write also keeps the
    // page out of the dirty set, so the next restore() skips it too. This
    // makes the allocator's zero-fill of freshly mapped frames (the bulk of
    // per-trial setup writes) nearly free on pooled machines.
    const std::uint32_t first = addr >> kPageShift;
    const std::uint32_t last = (addr + len - 1) >> kPageShift;
    for (std::uint32_t p = first; p <= last; ++p) {
      const bool skippable = (dirty_[p >> 6] & (1ull << (p & 63))) == 0 &&
                             (zero_snap_[p >> 6] & (1ull << (p & 63))) != 0;
      if (skippable) {
        continue;
      }
      const PhysAddr page_base = p << kPageShift;
      const PhysAddr lo = std::max(addr, page_base);
      const PhysAddr hi = std::min<std::uint64_t>(static_cast<std::uint64_t>(addr) + len,
                                                  page_base + kPageSize);
      mark_dirty(lo, static_cast<std::uint32_t>(hi - lo));
      std::fill_n(data_.begin() + lo, hi - lo, value);
    }
    return;
  }
  mark_dirty(addr, len);
  std::fill_n(data_.begin() + addr, len, value);
}

PhysicalMemory::Snapshot PhysicalMemory::snapshot() {
  Snapshot snap;
  snap.image = data_;
  tracking_ = true;
  raw_dirty_ = false;
  const std::size_t words = (data_.size() / kPageSize + 63) / 64;
  dirty_.assign(words, 0);
  // Record which pages are all-zero in the snapshot image (see fill()).
  zero_snap_.assign(words, 0);
  const std::uint32_t pages = static_cast<std::uint32_t>(data_.size() / kPageSize);
  for (std::uint32_t p = 0; p < pages; ++p) {
    const std::uint8_t* page = data_.data() + static_cast<std::size_t>(p) * kPageSize;
    bool zero = true;
    for (std::uint32_t i = 0; i < kPageSize; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, page + i, 8);
      if (w != 0) {
        zero = false;
        break;
      }
    }
    if (zero) {
      zero_snap_[p >> 6] |= 1ull << (p & 63);
    }
  }
  return snap;
}

void PhysicalMemory::restore(const Snapshot& snap) {
  assert(snap.image.size() == data_.size());
  if (!tracking_ || raw_dirty_) {
    // No tracking (snapshot taken elsewhere) or the fast path was poisoned
    // by a mutable raw() span: fall back to a full-image copy.
    data_ = snap.image;
  } else {
    const std::uint32_t pages = static_cast<std::uint32_t>(data_.size() / kPageSize);
    for (std::uint32_t word = 0; word < dirty_.size(); ++word) {
      std::uint64_t bits = dirty_[word];
      while (bits != 0) {
        const std::uint32_t bit = static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint32_t page = word * 64 + bit;
        if (page >= pages) {
          break;
        }
        const std::size_t off = static_cast<std::size_t>(page) * kPageSize;
        std::copy_n(snap.image.begin() + off, kPageSize, data_.begin() + off);
      }
    }
  }
  tracking_ = true;
  raw_dirty_ = false;
  dirty_.assign((data_.size() / kPageSize + 63) / 64, 0);
}

std::uint32_t PhysicalMemory::dirty_page_count() const {
  std::uint32_t count = 0;
  for (const std::uint64_t word : dirty_) {
    count += static_cast<std::uint32_t>(std::popcount(word));
  }
  return count;
}

}  // namespace hwsec::sim
