// Execution-aware memory protection unit (EA-MPU).
//
// Embedded profiles have no MMU; access control is a small table of
// physical regions. Two features make this the substrate for the
// embedded-TEE designs the paper surveys:
//
//  * execution awareness (TrustLite): a region may carry a *code gate* —
//    it is only accessible while the program counter lies inside an
//    associated code region. This generalizes SMART's "the attestation
//    key is readable only while PC is inside the ROM attestation routine".
//  * config locking (TrustLite's Secure Loader): after lock(), region
//    programming is rejected until hardware reset, so a compromised OS
//    cannot re-program Trustlet isolation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace hwsec::sim {

struct MpuRegion {
  std::string name;
  PhysAddr start = 0;
  PhysAddr end = 0;  ///< exclusive.
  bool readable = true;
  bool writable = true;
  bool executable = true;
  /// If set, the region is accessible (per the bits above) only while the
  /// PC is inside [code_gate_start, code_gate_end); otherwise every access
  /// faults. Instruction fetches *into* the region are governed by
  /// `executable` plus, when gated, entry_points (below).
  std::optional<PhysAddr> code_gate_start;
  std::optional<PhysAddr> code_gate_end;
  /// Legal entry addresses when the region itself is gated executable code
  /// (SMART requires attestation code be entered at its first instruction;
  /// mid-function entry would skip the key-erasure prologue).
  std::vector<PhysAddr> entry_points;

  bool contains(PhysAddr addr) const { return addr >= start && addr < end; }
  bool gate_allows(PhysAddr pc) const {
    if (!code_gate_start.has_value()) {
      return true;
    }
    return pc >= *code_gate_start && pc < *code_gate_end;
  }
};

class Mpu {
 public:
  /// Adds a region. Throws std::logic_error if the MPU is locked and
  /// std::invalid_argument on an empty/overlapping region (overlap is
  /// rejected because precedence rules are exactly the kind of subtle
  /// hardware behaviour this model does not want to hide bugs in).
  std::size_t add_region(MpuRegion region);

  /// Removes all regions. Throws if locked.
  void clear();

  /// Removes the region named `name` (Sancus-style dynamic module
  /// teardown). Throws if locked; returns whether a region was removed.
  bool remove_region(const std::string& name);

  /// Locks the configuration until reset().
  void lock() { locked_ = true; }
  bool locked() const { return locked_; }

  /// Hardware reset: unlocks and clears.
  void reset();

  /// Checks a data access at `addr` of `type` issued from code at `pc`.
  /// Addresses not covered by any region fall through to the default
  /// policy (allow, like a flat microcontroller memory map).
  Fault check(PhysAddr addr, AccessType type, PhysAddr pc) const;

  /// Checks an instruction fetch at `addr`, with `from_pc` the address of
  /// the jumping/falling-through instruction (for entry-point checks;
  /// pass addr itself on reset vectors).
  Fault check_fetch(PhysAddr addr, PhysAddr from_pc) const;

  const std::vector<MpuRegion>& regions() const { return regions_; }

 private:
  const MpuRegion* region_of(PhysAddr addr) const;

  std::vector<MpuRegion> regions_;
  bool locked_ = false;
};

}  // namespace hwsec::sim
