#include "conformance/generator.h"

#include <string>

#include "sim/rng.h"

namespace hwsec::conformance {

namespace sim = hwsec::sim;

namespace {

// Register convention (see generator.h): r1..r8 scratch/ALU, r9..r12 loop
// counters, r13 computed-jump target, r14 enclave link (never generated),
// r15 call link (written only by kCall/kCallInd).
sim::Reg scratch(sim::Rng& rng) { return static_cast<sim::Reg>(1 + rng.below(8)); }
sim::Reg any_src(sim::Rng& rng) { return static_cast<sim::Reg>(rng.below(14)); }
sim::Reg counter(sim::Rng& rng) { return static_cast<sim::Reg>(9 + rng.below(4)); }

std::int64_t rand_imm(sim::Rng& rng) {
  for (;;) {
    std::uint32_t v = 0;
    switch (rng.below(4)) {
      case 0: v = rng.below(16); break;                      // tiny constants.
      case 1: v = rng.below(4096); break;                    // page-offset sized.
      case 2: v = static_cast<std::uint32_t>(-static_cast<std::int32_t>(rng.below(64))); break;
      default: v = rng.next_u32(); break;                    // anything.
    }
    if ((v & 0xFFFF0000u) != 0xA5EC0000u) {  // never fabricate a secret.
      return static_cast<std::int64_t>(v);
    }
  }
}

sim::VirtAddr pick_addr(const EnvSpec& spec, sim::Rng& rng) {
  std::uint64_t total = 0;
  for (const EnvSpec::AddressSeed& s : spec.address_pool) {
    total += s.weight;
  }
  std::uint64_t roll = rng.below(total);
  for (const EnvSpec::AddressSeed& s : spec.address_pool) {
    if (roll < s.weight) {
      return s.addr;
    }
    roll -= s.weight;
  }
  return spec.data_base;
}

class CaseBuilder {
 public:
  CaseBuilder(const EnvSpec& spec, sim::Rng& rng) : spec_(spec), rng_(rng) {}

  sim::Program build_normal() {
    sim::ProgramBuilder b(spec_.code_base);
    const std::size_t target = 24 + rng_.below(41);  // 24..64 instructions.
    while (b.current_address() < spec_.code_base + 4 * target) {
      segment(b, /*depth=*/0, /*in_enclave=*/false);
    }
    b.halt();
    return b.build();
  }

  sim::Program build_enclave() {
    sim::ProgramBuilder b(spec_.enclave_code);
    const std::size_t target = 8 + rng_.below(17);  // 8..24 instructions.
    while (b.current_address() < spec_.enclave_code + 4 * target) {
      segment(b, /*depth=*/0, /*in_enclave=*/true);
    }
    b.ecall(kSvcExitEnclave);
    b.halt();  // backstop if the exit path is ever faulted over.
    return b.build();
  }

 private:
  void alu(sim::ProgramBuilder& b) {
    const sim::Reg rd = scratch(rng_);
    const sim::Reg a = any_src(rng_);
    const sim::Reg c = any_src(rng_);
    switch (rng_.below(9)) {
      case 0: b.li(rd, rand_imm(rng_)); break;
      case 1: b.add(rd, a, c); break;
      case 2: b.sub(rd, a, c); break;
      case 3: b.xor_(rd, a, c); break;
      case 4: b.and_(rd, a, c); break;
      case 5: b.or_(rd, a, c); break;
      case 6: b.mul(rd, a, c); break;
      case 7: b.addi(rd, a, rand_imm(rng_)); break;
      default: b.shri(rd, a, rng_.below(32)); break;
    }
  }

  void memory_op(sim::ProgramBuilder& b) {
    sim::VirtAddr addr = pick_addr(spec_, rng_);
    // Wander around the seed address; occasionally misalign a word access.
    addr += 4 * rng_.below(8);
    if (rng_.chance(0.08)) {
      addr += rng_.below(4);
    }
    const std::int64_t off = 4 * static_cast<std::int64_t>(rng_.below(4));
    b.li(sim::R5, addr);
    switch (rng_.below(4)) {
      case 0: b.lw(scratch(rng_), sim::R5, off); break;
      case 1: b.lb(scratch(rng_), sim::R5, off + static_cast<std::int64_t>(rng_.below(4))); break;
      case 2: b.sw(sim::R5, off, scratch(rng_)); break;
      default: b.sb(sim::R5, off + static_cast<std::int64_t>(rng_.below(4)), scratch(rng_)); break;
    }
  }

  void loop(sim::ProgramBuilder& b, int depth, bool in_enclave) {
    const sim::Reg c = counter(rng_);
    const std::string head = label("loop");
    b.li(c, 1 + rng_.below(6));
    b.label(head);
    const int body = 1 + static_cast<int>(rng_.below(3));
    for (int i = 0; i < body; ++i) {
      segment(b, depth + 1, in_enclave);
    }
    b.addi(c, c, -1);
    b.br(sim::BranchCond::kNe, c, sim::kZero, head);
  }

  void forward_branch(sim::ProgramBuilder& b) {
    const std::string skip = label("skip");
    const auto cond = static_cast<sim::BranchCond>(rng_.below(6));
    b.br(cond, any_src(rng_), any_src(rng_), skip);
    const int filler = 1 + static_cast<int>(rng_.below(3));
    for (int i = 0; i < filler; ++i) {
      alu(b);  // architecturally skipped or not; transiently maybe both.
    }
    b.label(skip);
  }

  void call_block(sim::ProgramBuilder& b) {
    const std::string fn = label("fn");
    const std::string cont = label("cont");
    b.call(fn);
    b.jump(cont);
    b.label(fn);
    alu(b);
    if (rng_.chance(0.5)) {
      alu(b);
    }
    b.ret();
    b.label(cont);
  }

  void computed_jump(sim::ProgramBuilder& b) {
    const int filler = 1 + static_cast<int>(rng_.below(3));
    // li is at current_address(); jr follows it; the target skips `filler`
    // instructions past the jr. Forward-only, so it cannot form a loop.
    const sim::VirtAddr target = b.current_address() + 8 + 4 * static_cast<sim::VirtAddr>(filler);
    b.li(sim::R13, target);
    b.jr(sim::R13);
    for (int i = 0; i < filler; ++i) {
      alu(b);
    }
  }

  void environment_call(sim::ProgramBuilder& b, bool in_enclave) {
    // In the enclave, never re-enter (budget-burning ping-pong) — exercise
    // the privilege services and an unknown id instead.
    static constexpr sim::Word kNormalSvcs[] = {kSvcEnterEnclave, kSvcEnterEnclave,
                                                kSvcSupervisor,   kSvcUser,
                                                kSvcExitEnclave,  7};
    static constexpr sim::Word kEnclaveSvcs[] = {kSvcSupervisor, kSvcUser, 7};
    const sim::Word svc = in_enclave ? kEnclaveSvcs[rng_.below(3)] : kNormalSvcs[rng_.below(6)];
    b.ecall(svc);
  }

  void segment(sim::ProgramBuilder& b, int depth, bool in_enclave) {
    const std::uint64_t roll = rng_.below(100);
    if (roll < 30) {
      const int burst = 1 + static_cast<int>(rng_.below(4));
      for (int i = 0; i < burst; ++i) {
        alu(b);
      }
    } else if (roll < 58) {
      memory_op(b);
    } else if (roll < 66 && depth < 2) {
      loop(b, depth, in_enclave);
    } else if (roll < 76) {
      forward_branch(b);
    } else if (roll < 82 && depth == 0) {
      call_block(b);
    } else if (roll < 88 && depth == 0) {
      computed_jump(b);
    } else if (roll < 94) {
      const sim::VirtAddr addr = pick_addr(spec_, rng_);
      b.li(sim::R6, addr);
      b.clflush(sim::R6, 4 * static_cast<std::int64_t>(rng_.below(4)));
    } else if (roll < 97) {
      b.fence();
    } else {
      environment_call(b, in_enclave);
    }
  }

  std::string label(const char* stem) { return std::string(stem) + std::to_string(next_label_++); }

  const EnvSpec& spec_;
  sim::Rng& rng_;
  int next_label_ = 0;
};

}  // namespace

GeneratedCase generate_case(const EnvSpec& spec, std::uint64_t seed) {
  sim::Rng rng(seed);
  CaseBuilder cb(spec, rng);
  GeneratedCase out;
  out.normal = cb.build_normal();
  out.enclave = cb.build_enclave();
  return out;
}

}  // namespace hwsec::conformance
