// Machine snapshot / reset: the reset-reuse equivalence contract behind
// the campaign machine pool (core/machine_pool.h).
//
// Contract under test: for any profile and seed,
//
//     Machine m(profile, s0); auto snap = m.snapshot();
//     ... arbitrary trial ...
//     m.reset_to(snap); m.reseed(s);
//
// leaves `m` bit-identical to a freshly constructed Machine(profile, s).
// Each of the paper's eight architectures runs the same workload —
// enclave lifecycle through the generic tee::Architecture interface plus
// raw machine activity (frame allocation, memory writes, cache traffic,
// RNG draws) — on a fresh machine and on a reset-reused one, and the
// resulting state fingerprints must match exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/sanctuary.h"
#include "conformance/differ.h"
#include "core/campaign.h"
#include "arch/sanctum.h"
#include "arch/sancus.h"
#include "arch/sgx.h"
#include "arch/smart.h"
#include "arch/trustlite.h"
#include "arch/trustzone.h"
#include "sim/machine.h"
#include "sim/sim_error.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;

namespace {

using Fingerprint = std::vector<std::uint64_t>;

void fold_digest(Fingerprint& fp, const hwsec::crypto::Sha256Digest& digest) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the digest bytes.
  for (const std::uint8_t b : digest) {
    h = (h ^ b) * 1099511628211ull;
  }
  fp.push_back(h);
}

/// Runs one representative trial against `m` and fingerprints everything
/// it produced: enclave-interface results, attestation MACs, cache and
/// CPU counters, memory contents, the frame allocator cursor, and the
/// machine RNG stream position. Any state the reset layer failed to
/// restore shows up as a diverging fingerprint on the next run.
template <typename Arch>
Fingerprint run_workload(sim::Machine& m) {
  Arch architecture(m);
  Fingerprint fp;

  // Enclave lifecycle through the generic interface. Capacity-0 designs
  // (SMART) return a deterministic error, which fingerprints equally well.
  tee::EnclaveImage image;
  image.name = "probe";
  image.code = {0xAA, 0xBB, 0xCC, 0xDD};
  image.secret = {'s', '3', 'c'};
  const auto created = architecture.create_enclave(image);
  fp.push_back(static_cast<std::uint64_t>(created.error));
  fp.push_back(created.value);
  if (created.ok()) {
    std::uint64_t observed = 0;
    const auto call_error =
        architecture.call_enclave(created.value, 0, [&observed](tee::EnclaveContext& ctx) {
          ctx.write8(0, 0x5A);
          observed = static_cast<std::uint64_t>(ctx.read8(0)) << 8 | ctx.read8(1);
        });
    fp.push_back(static_cast<std::uint64_t>(call_error));
    fp.push_back(observed);
  }
  tee::Nonce nonce{};
  nonce[0] = 7;
  const auto report = architecture.probe_attestation(nonce);
  fp.push_back(static_cast<std::uint64_t>(report.error));
  if (report.ok()) {
    fold_digest(fp, report.value.measurement);
    fold_digest(fp, report.value.mac);
  }

  // Raw machine activity: allocator, DRAM, cache hierarchy, CPU state.
  const sim::PhysAddr frame = m.alloc_frame();
  fp.push_back(frame);
  m.memory().write32(frame, 0x0DDC0DE5u);
  for (std::uint32_t i = 0; i < 32; ++i) {
    const sim::PhysAddr addr = (frame + i * 4096u + i * 64u) % (1u << 20);
    m.caches().access(0, sim::kDomainNormal, addr, sim::AccessType::kRead);
  }
  fp.push_back(m.memory().read32(frame));
  if (m.profile().hierarchy.has_l1) {
    fp.push_back(m.caches().l1d(0).stats().hits);
    fp.push_back(m.caches().l1d(0).stats().misses);
  }
  if (m.profile().hierarchy.has_llc) {
    fp.push_back(m.caches().llc().stats().hits);
    fp.push_back(m.caches().llc().stats().misses);
    fp.push_back(m.caches().llc().stats().evictions);
  }
  fp.push_back(m.cpu(0).cycles());
  fp.push_back(m.cpu(0).stats().retired);
  fp.push_back(m.rng().next_u64());  // last: captures the RNG stream position.
  return fp;
}

/// The actual equivalence check. Two fresh machines establish that the
/// workload is deterministic at all; the third machine then runs it via
/// snapshot → run → reset_to + reseed → run (twice, to catch journal
/// re-arming bugs) and every run must reproduce the fresh fingerprint.
template <typename Arch>
void expect_reset_matches_fresh(const sim::MachineProfile& profile, std::uint64_t seed) {
  sim::Machine fresh_a(profile, seed);
  const Fingerprint expected = run_workload<Arch>(fresh_a);
  sim::Machine fresh_b(profile, seed);
  ASSERT_EQ(run_workload<Arch>(fresh_b), expected) << "workload itself is nondeterministic";

  sim::Machine pooled(profile, seed);
  const sim::MachineSnapshot snap = pooled.snapshot();
  EXPECT_EQ(run_workload<Arch>(pooled), expected) << "first (pre-reset) run diverged";
  for (int reuse = 0; reuse < 2; ++reuse) {
    pooled.reset_to(snap);
    pooled.reseed(seed);
    EXPECT_EQ(run_workload<Arch>(pooled), expected) << "reuse #" << reuse << " diverged";
  }
}

// ---- the eight surveyed architectures, on their native profiles --------

TEST(MachineSnapshot, SgxResetBitIdenticalToFresh) {
  expect_reset_matches_fresh<arch::Sgx>(sim::MachineProfile::server(), 21);
}

TEST(MachineSnapshot, SanctumResetBitIdenticalToFresh) {
  expect_reset_matches_fresh<arch::Sanctum>(sim::MachineProfile::server(), 31);
}

TEST(MachineSnapshot, TrustZoneResetBitIdenticalToFresh) {
  expect_reset_matches_fresh<arch::TrustZone>(sim::MachineProfile::mobile(), 41);
}

TEST(MachineSnapshot, SanctuaryResetBitIdenticalToFresh) {
  expect_reset_matches_fresh<arch::Sanctuary>(sim::MachineProfile::mobile(), 42);
}

TEST(MachineSnapshot, SmartResetBitIdenticalToFresh) {
  expect_reset_matches_fresh<arch::Smart>(sim::MachineProfile::embedded(), 51);
}

TEST(MachineSnapshot, SancusResetBitIdenticalToFresh) {
  expect_reset_matches_fresh<arch::Sancus>(sim::MachineProfile::embedded(), 52);
}

TEST(MachineSnapshot, TrustLiteResetBitIdenticalToFresh) {
  expect_reset_matches_fresh<arch::TrustLite>(sim::MachineProfile::embedded(), 53);
}

TEST(MachineSnapshot, TyTanResetBitIdenticalToFresh) {
  expect_reset_matches_fresh<arch::TyTan>(sim::MachineProfile::embedded(), 54);
}

// ---- snapshot-layer edge cases -----------------------------------------

TEST(MachineSnapshot, ForeignSnapshotRejected) {
  sim::Machine a(sim::MachineProfile::embedded(), 1);
  sim::Machine b(sim::MachineProfile::embedded(), 1);
  const sim::MachineSnapshot snap = a.snapshot();
  EXPECT_THROW(b.reset_to(snap), hwsec::SimError)
      << "component copies carry internal pointers; restoring onto another "
         "machine must be refused, not silently corrupt it";
}

TEST(MachineSnapshot, DirtyPageTrackingCoversTrialWrites) {
  sim::Machine m(sim::MachineProfile::mobile(), 3);
  const sim::MachineSnapshot snap = m.snapshot();
  EXPECT_EQ(m.memory().dirty_page_count(), 0u);
  const sim::PhysAddr frame = m.alloc_frame();  // zero-fill dirties the frame.
  m.memory().write32(frame, 0xDEADBEEF);
  m.memory().write8(frame + sim::kPageSize - 1, 0xEE);
  EXPECT_GE(m.memory().dirty_page_count(), 1u);
  m.reset_to(snap);
  EXPECT_EQ(m.memory().read32(frame), 0u) << "restore missed a dirty page";
  EXPECT_EQ(m.memory().dirty_page_count(), 0u) << "restore must re-arm tracking";
}

TEST(MachineSnapshot, MutableRawSpanForcesFullRestore) {
  sim::Machine m(sim::MachineProfile::embedded(), 4);
  const sim::MachineSnapshot snap = m.snapshot();
  // Writes through the raw span bypass the dirty-page bookkeeping; the
  // restore must notice the poisoned fast path and full-copy instead.
  auto raw = m.memory().raw();
  raw[100] = 0x77;
  m.reset_to(snap);
  EXPECT_EQ(m.memory().read8(100), 0u);
}

// ---- decoded-program cache vs snapshot/reset ---------------------------

/// The pooled UopCache hands out shared_ptr<const DecodedProgram>; machine
/// resets copy the CPU's program table (shared_ptrs included) back from the
/// pristine snapshot. Two hazards are pinned here: (1) the decoded cache
/// must survive reset_to — trials after a reset re-serve the same decoded
/// object instead of re-decoding; (2) clear_programs + loading a different
/// program at the same base must execute the *new* code (no stale decoded
/// pointer can outlive the table it was registered in).
TEST(MachineSnapshot, UopCacheSurvivesResetWithoutStaleReuse) {
  constexpr sim::VirtAddr kCode = 0x10000;
  constexpr sim::Word kCodeFlags = sim::pte::kUser | sim::pte::kExecutable;

  auto cache = std::make_shared<sim::UopCache>();
  sim::Machine m(sim::MachineProfile::server(), 21);
  m.set_uop_cache(cache);
  auto aspace = m.create_address_space();
  aspace.map(kCode, kCode, kCodeFlags);

  sim::ProgramBuilder b1(kCode);
  b1.li(sim::R1, 0xAAAA).addi(sim::R1, sim::R1, 1).halt();
  const sim::Program prog1 = b1.build();

  const sim::MachineSnapshot snap = m.snapshot();
  m.cpu(0).load_program(prog1);
  m.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor, aspace.root(), 1);
  m.cpu(0).run_from(kCode);
  EXPECT_EQ(m.cpu(0).reg(sim::R1), 0xAAABu);
  EXPECT_EQ(cache->size(), 1u);

  // Reset and rerun: the decoded form is served from the shared cache (no
  // growth), and execution is unchanged.
  m.reset_to(snap);
  m.cpu(0).load_program(prog1);
  m.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor, aspace.root(), 1);
  m.cpu(0).run_from(kCode);
  EXPECT_EQ(m.cpu(0).reg(sim::R1), 0xAAABu);
  EXPECT_EQ(cache->size(), 1u) << "reset must not force a re-decode of a cached program";

  // Same base, different content, after clear_programs: must execute the
  // new instructions (distinct cache entry, no stale decoded reuse).
  m.cpu(0).clear_programs();
  sim::ProgramBuilder b2(kCode);
  b2.li(sim::R1, 0x5555).addi(sim::R1, sim::R1, 2).halt();
  m.cpu(0).load_program(b2.build());
  m.cpu(0).run_from(kCode);
  EXPECT_EQ(m.cpu(0).reg(sim::R1), 0x5557u) << "stale decoded program executed after clear";
  EXPECT_EQ(cache->size(), 2u);

  // Reset again: the snapshot predates every load_program, so the restored
  // CPU has no programs; running from the (unmapped-in-table) entry must
  // not touch any stale decoded storage.
  m.reset_to(snap);
  m.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor, aspace.root(), 1);
  const auto result = m.cpu(0).run_from(kCode);
  EXPECT_FALSE(result.halted) << "no program is loaded; the fetch must fault, not execute";
}

// ---- conformance-fuzzer differential: pooled reset vs fresh build ------
//
// The differential fuzzer executes generated programs, traps faults, and
// walks page tables — a far harsher reset-equivalence workload than the
// enclave lifecycle above. Running the same campaign on pool-leased
// machines and on freshly constructed ones must yield bit-identical
// verdict sequences at any worker count.

namespace conf = hwsec::conformance;
namespace core = hwsec::core;

std::vector<conf::TrialVerdict> fuzz_campaign(unsigned workers, conf::MachineVariant variant) {
  const std::function<conf::TrialVerdict(const core::TrialContext&)> body =
      [variant](const core::TrialContext& ctx) {
        const conf::FuzzArch arch =
            conf::kAllFuzzArchs[ctx.index % std::size(conf::kAllFuzzArchs)];
        return conf::run_trial(arch, ctx.seed, ctx.machines, variant);
      };
  return core::run_campaign({.seed = 0x5EED, .trials = 40, .workers = workers}, body);
}

TEST(MachineSnapshot, FuzzerPooledMatchesFreshAtAnyWorkerCount) {
  const std::vector<conf::TrialVerdict> fresh = fuzz_campaign(1, conf::MachineVariant::kFresh);
  for (const unsigned workers : {1u, 2u, 8u}) {
    EXPECT_EQ(fuzz_campaign(workers, conf::MachineVariant::kPooled), fresh)
        << "pooled campaign at workers=" << workers << " diverged from fresh machines";
    EXPECT_EQ(fuzz_campaign(workers, conf::MachineVariant::kFresh), fresh)
        << "fresh campaign at workers=" << workers << " is worker-count dependent";
  }
}

}  // namespace
