// SGX model: EPC/EPCM enforcement, MEE encryption, paging, attestation.
#include <gtest/gtest.h>

#include "arch/sgx.h"
#include "attacks/transient/environment.h"
#include "sim/dma.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;

namespace {

class SgxTest : public ::testing::Test {
 protected:
  SgxTest() : machine_(sim::MachineProfile::server(), 21), sgx_(machine_) {}

  tee::EnclaveImage image(const std::string& name = "app") {
    tee::EnclaveImage i;
    i.name = name;
    i.code = {0xC0, 0xDE};
    i.secret = {'s', 'e', 'c', 'r', 'e', 't', '!', '!'};
    return i;
  }

  sim::Machine machine_;
  arch::Sgx sgx_;
};

TEST_F(SgxTest, CreateCallDestroyLifecycle) {
  const auto created = sgx_.create_enclave(image());
  ASSERT_TRUE(created.ok());
  std::string read_back;
  EXPECT_EQ(sgx_.call_enclave(created.value, 0,
                              [&read_back](tee::EnclaveContext& ctx) {
                                for (std::uint32_t i = 0; i < 8; ++i) {
                                  read_back.push_back(static_cast<char>(ctx.read8(2 + i)));
                                }
                              }),
            tee::EnclaveError::kOk);
  EXPECT_EQ(read_back, "secret!!") << "the enclave sees its own plaintext";
  EXPECT_EQ(sgx_.destroy_enclave(created.value), tee::EnclaveError::kOk);
  EXPECT_EQ(sgx_.destroy_enclave(created.value), tee::EnclaveError::kNoSuchEnclave);
}

TEST_F(SgxTest, DramHoldsOnlyCiphertext) {
  const auto created = sgx_.create_enclave(image());
  ASSERT_TRUE(created.ok());
  const tee::EnclaveInfo* info = sgx_.enclave(created.value);
  // Raw DRAM at the secret's location must NOT contain the plaintext.
  std::vector<std::uint8_t> raw(8);
  machine_.memory().read_block(info->base + 2, raw);
  EXPECT_NE(std::string(raw.begin(), raw.end()), "secret!!");
  // And the bus peek (CPU-side decrypting path) must.
  EXPECT_EQ(machine_.bus().peek(info->base + 4, info->domain) & 0xFFu,
            static_cast<sim::Word>('c'));
}

TEST_F(SgxTest, DmaSeesCiphertextOnly) {
  const auto created = sgx_.create_enclave(image());
  const tee::EnclaveInfo* info = sgx_.enclave(created.value);
  sim::DmaDevice device(machine_.bus(), arch::kUntrustedDeviceDomain);
  const auto bytes = device.exfiltrate(info->base + 2, 8);
  ASSERT_EQ(bytes.size(), 8u) << "SGX does not veto the transaction...";
  EXPECT_NE(std::string(bytes.begin(), bytes.end()), "secret!!")
      << "...but the MEE makes the data useless";
}

TEST_F(SgxTest, EpcmBlocksArchitecturalOsAccess) {
  const auto created = sgx_.create_enclave(image());
  const tee::EnclaveInfo* info = sgx_.enclave(created.value);
  // Malicious OS maps the EPC frame into its own address space.
  auto aspace = machine_.create_address_space();
  aspace.map(0x70000000, sim::page_base(info->base), sim::pte::kWritable | sim::pte::kUser);
  machine_.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor,
                                 aspace.root(), 5);
  const auto r = machine_.cpu(0).mmu().translate(0x70000000, sim::AccessType::kRead);
  EXPECT_EQ(r.fault, sim::Fault::kSecurityViolation);
}

TEST_F(SgxTest, EpcmLinearAddressBindingStopsRemappingAttacks) {
  const auto created = sgx_.create_enclave(image());
  const tee::EnclaveInfo* info = sgx_.enclave(created.value);
  ASSERT_EQ(sgx_.bind_va(created.value, 0, 0x00010000), tee::EnclaveError::kOk);

  auto aspace = machine_.create_address_space();
  aspace.map(0x00010000, sim::page_base(info->base), sim::pte::kUser | sim::pte::kWritable);
  aspace.map(0x00900000, sim::page_base(info->base), sim::pte::kUser | sim::pte::kWritable);
  machine_.cpu(0).switch_context(info->domain, sim::Privilege::kUser, aspace.root(), 6);

  // The bound linear address translates; the OS's alias does not.
  EXPECT_EQ(machine_.cpu(0).mmu().translate(0x00010000, sim::AccessType::kRead).fault,
            sim::Fault::kNone);
  EXPECT_EQ(machine_.cpu(0).mmu().translate(0x00900000, sim::AccessType::kRead).fault,
            sim::Fault::kSecurityViolation)
      << "EPCM records the EADD linear address; remaps are vetoed";
}

TEST_F(SgxTest, DestroyScrubsEpcFrames) {
  const auto created = sgx_.create_enclave(image());
  const tee::EnclaveInfo* info = sgx_.enclave(created.value);
  const sim::PhysAddr base = info->base;
  sgx_.destroy_enclave(created.value);
  for (sim::PhysAddr a = base; a < base + sim::kPageSize; a += 4) {
    ASSERT_EQ(machine_.memory().read32(a), 0u);
  }
}

TEST_F(SgxTest, EpcExhaustionReported) {
  tee::EnclaveImage big = image("big");
  big.heap_pages = 200;  // EPC is 128 pages (minus the quoting enclave).
  const auto r = sgx_.create_enclave(big);
  EXPECT_EQ(r.error, tee::EnclaveError::kOutOfMemory);
}

TEST_F(SgxTest, EwbElduRoundTripPreservesContentAndLoadsL1) {
  const auto created = sgx_.create_enclave(image());
  const tee::EnclaveInfo* info = sgx_.enclave(created.value);
  const sim::PhysAddr secret_line = info->base;

  ASSERT_EQ(sgx_.ewb(created.value, 0), tee::EnclaveError::kOk);
  // Swapped out: frame is scrubbed.
  EXPECT_EQ(machine_.memory().read32(secret_line), 0u);

  ASSERT_EQ(sgx_.eldu(created.value, 0, /*core=*/1), tee::EnclaveError::kOk);
  EXPECT_TRUE(machine_.caches().in_l1d(1, secret_line))
      << "ELDU decrypts through the target core's L1 (the Foreshadow lever)";
  // Content restored: the enclave still reads its secret.
  std::string read_back;
  sgx_.call_enclave(created.value, 0, [&read_back](tee::EnclaveContext& ctx) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      read_back.push_back(static_cast<char>(ctx.read8(2 + i)));
    }
  });
  EXPECT_EQ(read_back, "secret!!");
}

TEST_F(SgxTest, LocalAttestationVerifies) {
  const auto created = sgx_.create_enclave(image());
  tee::Nonce nonce{};
  nonce[3] = 9;
  const auto report = sgx_.attest(created.value, nonce);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(tee::verify_report(sgx_.report_verification_key(), report.value, nonce));
  EXPECT_EQ(report.value.measurement, tee::measure_image(image()));
}

TEST_F(SgxTest, RemoteQuoteVerifies) {
  const auto created = sgx_.create_enclave(image());
  tee::Nonce nonce{};
  nonce[0] = 1;
  const auto quote = sgx_.quote(created.value, nonce);
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(tee::verify_quote(quote.value, sgx_.attestation_n(), sgx_.attestation_e(),
                                sgx_.report_verification_key(), nonce));
}

TEST_F(SgxTest, NoCacheMaintenanceOnExitByDefault) {
  const auto created = sgx_.create_enclave(image());
  const tee::EnclaveInfo* info = sgx_.enclave(created.value);
  sgx_.call_enclave(created.value, 0, [](tee::EnclaveContext& ctx) { ctx.read8(0); });
  EXPECT_TRUE(machine_.caches().in_l1d(0, info->base))
      << "SGX leaves enclave cache lines observable (the §4.1 weakness)";
}

TEST_F(SgxTest, FlushL1MitigationScrubsOnExit) {
  arch::Sgx::Config config;
  config.flush_l1_on_exit = true;
  sim::Machine machine(sim::MachineProfile::server(), 22);
  arch::Sgx sgx(machine, config);
  const auto created = sgx.create_enclave(image());
  const tee::EnclaveInfo* info = sgx.enclave(created.value);
  sgx.call_enclave(created.value, 0, [](tee::EnclaveContext& ctx) { ctx.read8(0); });
  EXPECT_FALSE(machine.caches().in_l1d(0, info->base));
}

}  // namespace
