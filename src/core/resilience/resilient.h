// Fault-contained campaign runner (the tentpole of the resilience layer).
//
// run_campaign_resilient has the same determinism contract as run_campaign
// — trial i is a pure function of (campaign seed, i) — but adds:
//  * containment: a throwing trial becomes a SimError in its own slot; all
//    other slots hold exactly the fault-free values, at any worker count;
//  * policy: fail-fast (stop scheduling, rethrow lowest-index failure),
//    collect (default), or bounded same-seed retry for transient host
//    faults (the trial body itself stays deterministic, so retry only
//    helps against injected/host-side failures — which is the point);
//  * watchdogs: a per-trial cycle budget (deterministic TimedOut) plus an
//    optional wall-clock backstop (nondeterministic, last resort);
//  * crash safety: periodic atomic checkpoints keyed by the campaign
//    identity; a killed sweep resumes bit-identically, re-running only
//    unfinished slots;
//  * self-chaos: seeded fault injection ahead of the trial body, for
//    exercising all of the above deterministically in tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/campaign.h"
#include "core/obs/heartbeat.h"
#include "core/shutdown.h"
#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "core/resilience/chaos.h"
#include "core/resilience/checkpoint.h"
#include "core/resilience/monitor.h"
#include "core/resilience/outcome.h"
#include "sim/rng.h"
#include "sim/watchdog.h"

namespace hwsec::core {

struct ResilienceConfig {
  FailurePolicy policy = FailurePolicy::kCollect;
  /// Attempts per trial under kRetry (>=1); other policies always run one.
  unsigned max_attempts = 3;
  /// Simulated-cycle budget per trial; 0 disables. Exceeding it raises a
  /// deterministic ErrorKind::kTimedOut from inside the Cpu.
  sim::Cycle trial_cycle_budget = 0;
  /// Wall-clock budget per trial attempt; zero disables. Nondeterministic
  /// backstop for trials wedged on the host side.
  std::chrono::milliseconds wall_clock_timeout{0};
  /// When non-empty, completed slots are checkpointed here atomically and
  /// restored on the next run with the same (seed, trials, Result).
  std::string checkpoint_path;
  /// Owner namespace folded into the checkpoint identity (empty = legacy
  /// config-only identity). Multi-tenant runners (hwsecd) set this to
  /// "tenant/job-id" so two identical specs from different owners can
  /// never cross-resume each other's files, even through a shared path.
  std::string checkpoint_scope;
  /// Save the checkpoint after this many newly completed trials (and once
  /// more at the end). Minimum 1.
  std::size_t checkpoint_every = 16;
  /// Self-chaos injection (disabled by default).
  ChaosConfig chaos;
  /// Snapshot/reset machine pool handed to trial bodies via
  /// TrialContext::machines. Null (default): the runner creates a pool for
  /// this campaign. Supply one to reuse machines across campaigns (e.g. a
  /// benchmark loop running many short sweeps on the same profile).
  MachinePool* machines = nullptr;
  /// Progress-heartbeat period. Negative (default): take the period from
  /// HWSEC_HEARTBEAT_MS (unset/0 = off). Zero: off. Positive: emit one
  /// progress line to stderr per period while the campaign runs.
  std::chrono::milliseconds heartbeat{-1};
};

namespace detail {

/// Converts the in-flight exception into the taxonomy: SimError passes
/// through untouched, std::bad_alloc maps to kResourceExhausted, any other
/// std::exception (and anything else) to kInternalError.
SimError wrap_current_exception();

/// Runs one trial with the full resilience semantics — retry attempts,
/// chaos injection keyed by (chaos seed, index, attempt), cycle-budget
/// watchdog, wall-clock registration, exception wrapping with trial
/// attribution. The single source of truth for per-trial behavior: the
/// in-process resilient runner and the shard worker both call it, which is
/// what makes an N-process sharded campaign bit-identical to the 1-process
/// run — there is only one trial execution path to diverge from.
template <typename Result>
TrialOutcome<Result> execute_trial(std::size_t index, std::uint64_t campaign_seed,
                                   const ResilienceConfig& res, MachinePool* machines,
                                   WallClockMonitor& monitor,
                                   const std::function<Result(const TrialContext&)>& body) {
  static const obs::Counter kRetries = obs::counter("campaign_trial_retries");
  static const obs::Counter kWatchdogTrips = obs::counter("watchdog_trips");
  TrialOutcome<Result> out;
  const std::uint64_t seed = hwsec::sim::derive_seed(campaign_seed, index);
  const unsigned attempts_allowed =
      res.policy == FailurePolicy::kRetry ? std::max(1u, res.max_attempts) : 1u;
  obs::ScopedTimer trial_timer(TrialObs::trial_us());
  obs::Span trial_span("trial", static_cast<std::int64_t>(index), "trial");
  for (unsigned attempt = 1; attempt <= attempts_allowed; ++attempt) {
    out.attempts = attempt;
    if (attempt > 1) {
      kRetries.add(1);
      obs::Tracer::instance().instant("trial_retry", static_cast<std::int64_t>(index),
                                      "trial");
    }
    hwsec::sim::TrialWatchdog watchdog;
    watchdog.cycle_budget = res.trial_cycle_budget;
    auto registration = monitor.watch(watchdog);
    try {
      ChaosInjector(res.chaos, index, attempt).inject();
      out.result = body(TrialContext{index, seed, &watchdog, machines});
      out.error.reset();
      break;
    } catch (...) {
      out.error = wrap_current_exception().with_trial(index, seed);
      out.result.reset();
      if (out.error->kind() == ErrorKind::kTimedOut) {
        kWatchdogTrips.add(1);
        obs::Tracer::instance().instant("watchdog_trip", static_cast<std::int64_t>(index),
                                        "trial");
      }
    }
  }
  return out;
}

}  // namespace detail

/// Runs `config.trials` trials of `body` with fault containment. Returns
/// one TrialOutcome per slot, in trial order. Under kFailFast a failure
/// stops new trials from starting and the lowest-index SimError is thrown
/// after in-flight trials drain (their slots are still checkpointed).
template <typename Result>
std::vector<TrialOutcome<Result>> run_campaign_resilient(
    const CampaignConfig& config, const ResilienceConfig& res,
    const std::function<Result(const TrialContext&)>& body) {
  constexpr bool kCheckpointable =
      std::is_trivially_copyable_v<Result> && std::is_default_constructible_v<Result>;
  const bool checkpointing = !res.checkpoint_path.empty();
  if (checkpointing && !kCheckpointable) {
    throw SimError(ErrorKind::kConfigError,
                   "checkpointing requires a trivially copyable, default-constructible "
                   "Result type");
  }

  std::vector<TrialOutcome<Result>> outcomes(config.trials);
  CheckpointFile checkpoint(config.seed, config.trials, sizeof(Result), res.checkpoint_scope);
  if (checkpointing && checkpoint.load(res.checkpoint_path)) {
    for (const auto& [index, rec] : checkpoint.records()) {
      TrialOutcome<Result>& out = outcomes[index];
      out.from_checkpoint = true;
      out.attempts = rec.attempts;
      if (rec.ok) {
        if constexpr (kCheckpointable) {
          Result restored{};
          std::memcpy(&restored, rec.payload.data(), sizeof(Result));
          out.result = restored;
        }
      } else {
        SimError err(static_cast<ErrorKind>(rec.kind), rec.detail);
        if (!rec.machine.empty()) {
          err.with_machine(rec.machine);
        }
        err.with_trial(index, hwsec::sim::derive_seed(config.seed, index));
        out.error = std::move(err);
      }
    }
  }

  MachinePool local_machines;
  MachinePool* machines = res.machines != nullptr ? res.machines : &local_machines;
  WallClockMonitor monitor(res.wall_clock_timeout);
  std::mutex checkpoint_mutex;
  std::size_t completions_since_save = 0;
  const std::size_t checkpoint_every = res.checkpoint_every == 0 ? 1 : res.checkpoint_every;
  std::atomic<bool> tripped{false};
  std::mutex failure_mutex;
  std::optional<std::pair<std::size_t, SimError>> first_failure;

  // Campaign observability. The counters feed the CI scrape-and-assert
  // step (a clean non-chaos campaign must end with zero retries and zero
  // watchdog trips) and the heartbeat line below; none of it reads or
  // writes trial state, so results stay bit-identical with it on or off.
  static const obs::Counter kFailed = obs::counter("campaign_trials_failed");
  static const obs::Counter kRestored = obs::counter("campaign_trials_restored");
  std::atomic<std::size_t> heartbeat_done{0};
  std::atomic<std::size_t> heartbeat_failed{0};
  std::atomic<std::size_t> heartbeat_retries{0};
  const auto campaign_start = std::chrono::steady_clock::now();
  const std::chrono::milliseconds heartbeat_period =
      res.heartbeat.count() < 0 ? obs::heartbeat_interval_from_env() : res.heartbeat;
  obs::Heartbeat heartbeat(heartbeat_period, [&, campaign_start] {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - campaign_start)
            .count();
    const std::size_t done = heartbeat_done.load(std::memory_order_relaxed);
    std::ostringstream line;
    line << "[campaign seed=" << config.seed << "] " << done << "/" << config.trials
         << " trials, " << static_cast<std::uint64_t>(elapsed > 0.0 ? done / elapsed : 0.0)
         << " trials/sec, retries=" << heartbeat_retries.load(std::memory_order_relaxed)
         << ", failed=" << heartbeat_failed.load(std::memory_order_relaxed)
         << ", pool: " << machines->machines_built() << " built / "
         << machines->leases_served() << " leases";
    return line.str();
  });

  auto run_slot = [&](std::size_t i) {
    TrialOutcome<Result>& out = outcomes[i];
    if (out.from_checkpoint) {
      kRestored.add(1);
      heartbeat_done.fetch_add(1, std::memory_order_relaxed);
      return;  // restored slot; never re-run.
    }
    if (res.policy == FailurePolicy::kFailFast &&
        tripped.load(std::memory_order_acquire)) {
      out.skipped = true;
      return;
    }
    // Graceful shutdown (SIGTERM/SIGINT with install_graceful_shutdown):
    // stop starting trials; in-flight ones finish and the final checkpoint
    // save below still runs, so an operator Ctrl-C loses nothing completed.
    if (shutdown_requested()) {
      out.skipped = true;
      return;
    }
    out = detail::execute_trial<Result>(i, config.seed, res, machines, monitor, body);
    if (out.attempts > 1) {
      heartbeat_retries.fetch_add(out.attempts - 1, std::memory_order_relaxed);
    }
    detail::TrialObs::completed().add(1);
    heartbeat_done.fetch_add(1, std::memory_order_relaxed);
    if (!out.ok()) {
      kFailed.add(1);
      heartbeat_failed.fetch_add(1, std::memory_order_relaxed);
    }
    if (!out.ok() && res.policy == FailurePolicy::kFailFast) {
      tripped.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (!first_failure.has_value() || i < first_failure->first) {
        first_failure.emplace(i, *out.error);
      }
    }
    if (checkpointing) {
      if constexpr (kCheckpointable) {
        CheckpointRecord rec;
        rec.attempts = out.attempts;
        if (out.ok()) {
          rec.ok = true;
          rec.payload.assign(reinterpret_cast<const char*>(&*out.result), sizeof(Result));
        } else {
          rec.ok = false;
          rec.kind = static_cast<std::uint8_t>(out.error->kind());
          rec.detail = out.error->detail();
          rec.machine = out.error->machine();
        }
        std::lock_guard<std::mutex> lock(checkpoint_mutex);
        checkpoint.record(i, std::move(rec));
        if (++completions_since_save >= checkpoint_every) {
          completions_since_save = 0;
          checkpoint.save(res.checkpoint_path);
        }
      }
    }
  };

  auto run_on = [&](hwsec::sim::ThreadPool& pool) {
    pool.parallel_for(config.trials, run_slot);
  };
  if (config.workers == 0) {
    run_on(hwsec::sim::ThreadPool::shared());
  } else {
    hwsec::sim::ThreadPool pool(config.workers);
    run_on(pool);
  }

  if (checkpointing) {
    std::lock_guard<std::mutex> lock(checkpoint_mutex);
    checkpoint.save(res.checkpoint_path);
  }
  if (res.policy == FailurePolicy::kFailFast) {
    std::lock_guard<std::mutex> lock(failure_mutex);
    if (first_failure.has_value()) {
      throw first_failure->second;
    }
  }
  return outcomes;
}

/// Fault-contained variant of run_parallel_tasks: every task runs, and the
/// returned vector holds task k's wrapped exception (or nullopt on
/// success). The caller decides what a partial fan-out means.
std::vector<std::optional<SimError>> run_parallel_tasks_resilient(
    const std::vector<std::function<void()>>& tasks, unsigned workers = 0);

}  // namespace hwsec::core
