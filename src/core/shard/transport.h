// Transport: the byte-moving seam under the shard frame protocol.
//
// PR 7 built the supervisor on raw pipe fds; the multi-host engine needs
// the same protocol over TCP sockets, over socketpairs in tests, and over
// a deliberately misbehaving wire in the fault-injection suite. Transport
// is that seam: one frame in, frames out, with the FrameBuffer reassembly
// and corrupt-stream poisoning from wire.h underneath, so every transport
// speaks the identical versioned format and the supervisor never learns
// which kind of wire a worker is behind ("a dead host is a dead worker
// writ large" — DESIGN.md S21, now literal).
//
//   FdTransport     pipes (distinct read/write fds) and sockets (one fd
//                   for both). Read side is non-blocking + FrameBuffer;
//                   writes ride write_all_fd's EINTR/EAGAIN loop.
//   FaultyTransport FdTransport with a seeded fault plan: short writes,
//                   byte-at-a-time delivery, mid-frame disconnects, stalls
//                   past heartbeat age, duplicated terminal frames. Faults
//                   are rolled per frame index from a splitmix64 stream,
//                   so a given (seed, plan) misbehaves reproducibly.
//
// Poll integration: poll_fd() exposes the readable fd so the supervisor
// multiplexes any number of transports with the one poll() loop it always
// had; pump() drains whatever arrived, next() yields reassembled frames.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/shard/wire.h"

namespace hwsec::core::shard {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes one frame. False = peer unreachable (treated by callers as a
  /// worker/supervisor death, never an exception).
  virtual bool send(const Frame& frame) = 0;

  /// Readable fd for poll() multiplexing; -1 once closed.
  virtual int poll_fd() const = 0;

  /// Drains available bytes into the reassembly buffer without blocking.
  /// False = EOF or hard error (peer gone). Buffered complete frames are
  /// still retrievable via next() after pump() turns false.
  virtual bool pump() = 0;

  /// Extracts the next complete frame; false when more bytes are needed.
  virtual bool next(Frame& out) = 0;

  /// True once the inbound stream is poisoned (bad magic/version or a
  /// payload length over the cap). No further frames will be produced.
  virtual bool corrupt() const = 0;

  /// Half-close: no more sends, but inbound frames still flow — the
  /// supervisor's shutdown drain (send kShutdown, keep merging records the
  /// worker flushes on its way out) depends on this.
  virtual void shutdown_writes() = 0;

  virtual void close() = 0;

  /// Human-readable endpoint ("pipe", "tcp:host:port") for error strings.
  virtual std::string describe() const = 0;

  /// Blocking receive built on pump()/next(): polls until a frame arrives,
  /// the stream dies, or `timeout` passes (timeout < 0 waits forever).
  /// This is the worker side's inbox read.
  bool recv_blocking(Frame& out, std::chrono::milliseconds timeout);
};

/// Frame transport over one or two file descriptors. Pass distinct fds for
/// a pipe pair, the same fd twice for a socket. Owns the fds: close() (and
/// the destructor) closes them. The read fd is switched to non-blocking.
class FdTransport : public Transport {
 public:
  FdTransport(int read_fd, int write_fd, std::uint32_t max_payload = kMaxShardFramePayload);
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  bool send(const Frame& frame) override;
  int poll_fd() const override { return read_fd_; }
  bool pump() override;
  bool next(Frame& out) override { return inbuf_.next(out); }
  bool corrupt() const override { return inbuf_.corrupt(); }
  void shutdown_writes() override;
  void close() override;
  std::string describe() const override { return label_; }

  void set_label(std::string label) { label_ = std::move(label); }

 protected:
  /// Seams the fault decorator overrides. write_bytes must deliver (or
  /// deliberately fail to deliver) the full span; read_some mirrors one
  /// ::read call and reports EAGAIN as `would_block`.
  virtual bool write_bytes(const char* data, std::size_t n);
  virtual ssize_t read_some(char* data, std::size_t n, bool& would_block);

  int read_fd_ = -1;
  int write_fd_ = -1;
  FrameBuffer inbuf_;

 private:
  std::string label_ = "fd";
};

/// Faults that actually fired. Tests share one via FaultPlan::counts to
/// assert a chaos run was not vacuous — the transport itself dies with
/// the supervisor, so its own tally is unreadable after a run.
struct FaultCounts {
  std::uint64_t short_writes = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t stalls = 0;
  std::uint64_t duplicates = 0;
};

/// Deterministic wire-chaos decorator for the network failure-matrix
/// tests. Each fault class rolls its own dice per outbound/inbound frame
/// index, so one plan can mix several faults and still replay exactly.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Optional shared tally; every fault fired also increments this (it
  /// accumulates across sessions when re-dials copy the plan).
  std::shared_ptr<FaultCounts> counts;
  /// Outbound: deliver the frame's bytes in small scattered writes.
  double short_write_probability = 0.0;
  /// Outbound: write roughly half the frame, then close both directions
  /// mid-frame — the peer sees a truncated stream (EOF or poisoning).
  double disconnect_probability = 0.0;
  /// Inbound (rolled per received frame, so it triggers amid the steady
  /// heartbeat stream): go silent in BOTH directions for stall_duration —
  /// reads stop, sends are dropped — so the reader's heartbeat-age
  /// detector must fire and migrate, exactly like a wedged link.
  double stall_probability = 0.0;
  std::chrono::milliseconds stall_duration{0};
  /// Inbound: deliver kTrial / kShardDone terminal frames twice (the
  /// duplicate-merge idempotency test).
  double duplicate_probability = 0.0;
  /// Inbound: deliver at most one byte per pump() — every frame crosses
  /// the reassembly path in maximally hostile fragmentation.
  bool byte_trickle = false;
};

class FaultyTransport : public FdTransport {
 public:
  FaultyTransport(int read_fd, int write_fd, const FaultPlan& plan,
                  std::uint32_t max_payload = kMaxShardFramePayload);

  bool send(const Frame& frame) override;
  bool pump() override;
  bool next(Frame& out) override;

  /// This transport's own tally (valid only while it lives; use
  /// FaultPlan::counts to observe a whole campaign).
  const FaultCounts& fired() const { return fired_; }

 protected:
  ssize_t read_some(char* data, std::size_t n, bool& would_block) override;

 private:
  bool stalled() const;
  /// Uniform [0,1) roll for fault `lane` at frame `index` — pure in
  /// (seed, lane, index), so the fault schedule is a replayable function
  /// of the plan, not of scheduler timing.
  double roll(std::uint64_t lane, std::uint64_t index) const;

  FaultPlan plan_;
  FaultCounts fired_;
  std::uint64_t frames_out_ = 0;
  std::uint64_t frames_in_ = 0;
  std::chrono::steady_clock::time_point stall_until_{};
  bool has_pending_dup_ = false;
  Frame pending_dup_;
};

}  // namespace hwsec::core::shard
