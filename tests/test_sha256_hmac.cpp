// SHA-256 against FIPS 180-4 / NIST vectors; HMAC-SHA256 against RFC 4231.
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "sim/sim_error.h"

namespace crypto = hwsec::crypto;

namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(crypto::to_hex(crypto::Sha256::hash(std::string{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(crypto::to_hex(crypto::Sha256::hash(std::string{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(crypto::to_hex(crypto::Sha256::hash(
                std::string{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  crypto::Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update(chunk);
  }
  EXPECT_EQ(crypto::to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingSplitMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog and then some";
  const auto expected = crypto::Sha256::hash(msg);
  for (std::size_t split = 1; split < msg.size(); split += 7) {
    crypto::Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finalize(), expected) << "split at " << split;
  }
}

TEST(Sha256, FinalizeTwiceThrows) {
  crypto::Sha256 h;
  h.update(std::string{"x"});
  h.finalize();
  EXPECT_THROW(h.finalize(), hwsec::SimError);
}

TEST(Sha256, PaddingBoundaryLengths) {
  // 55/56/63/64 bytes straddle the length-field boundary of the padding.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::string msg(len, 'q');
    crypto::Sha256 one;
    one.update(msg);
    crypto::Sha256 two;
    for (char c : msg) {
      two.update(std::string(1, c));
    }
    EXPECT_EQ(one.finalize(), two.finalize()) << "length " << len;
  }
}

// RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?".
TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const auto mac = crypto::hmac_sha256(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(key.data()),
                                    key.size()),
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                    data.size()));
  EXPECT_EQ(crypto::to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1: 20 bytes of 0x0b, data "Hi There".
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string data = "Hi There";
  const auto mac = crypto::hmac_sha256(
      key, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                         data.size()));
  EXPECT_EQ(crypto::to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 6: 131-byte key (forces the key-hashing path).
TEST(Hmac, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = crypto::hmac_sha256(
      key, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                         data.size()));
  EXPECT_EQ(crypto::to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqualIsExact) {
  crypto::Sha256Digest a{};
  crypto::Sha256Digest b{};
  EXPECT_TRUE(crypto::digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(crypto::digest_equal(a, b));
}

}  // namespace
