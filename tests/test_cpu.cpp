// Execution-engine semantics: ISA behaviour, prediction-driven transient
// windows, Meltdown-style fault forwarding and the L1TF path — the unit
// contracts the §4.2 attacks are built on.
#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/program.h"

namespace sim = hwsec::sim;

namespace {

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : machine_(sim::MachineProfile::server(), 11), aspace_(machine_.create_address_space()) {}

  /// Identity-maps `pages` pages at `base` (base must be page-aligned).
  sim::PhysAddr map_identity(sim::VirtAddr base, std::uint32_t pages, sim::Word flags) {
    for (std::uint32_t p = 0; p < pages; ++p) {
      aspace_.map(base + p * sim::kPageSize, base + p * sim::kPageSize, flags);
    }
    // Identity frames must exist in DRAM; reserve them if still unused.
    return base;
  }

  void start(const sim::Program& program, sim::Privilege priv = sim::Privilege::kSupervisor) {
    machine_.cpu(0).load_program(program);
    machine_.cpu(0).switch_context(sim::kDomainNormal, priv, aspace_.root(), 1);
    machine_.cpu(0).set_pc(program.base);
  }

  sim::Machine machine_;
  sim::AddressSpace aspace_;
};

constexpr sim::VirtAddr kCode = 0x10000;
constexpr sim::Word kCodeFlags = sim::pte::kUser | sim::pte::kExecutable | sim::pte::kWritable;
constexpr sim::Word kDataFlags = sim::pte::kUser | sim::pte::kWritable;

TEST_F(CpuTest, AluAndBranchSemantics) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0)
      .li(sim::R2, 0)
      .label("loop")
      .addi(sim::R1, sim::R1, 3)
      .addi(sim::R2, sim::R2, 1)
      .li(sim::R3, 10)
      .br(sim::BranchCond::kLtu, sim::R2, sim::R3, "loop")
      .shli(sim::R4, sim::R1, 2)
      .xori(sim::R5, sim::R4, 0xFF)
      .halt();
  start(b.build());
  const auto result = machine_.cpu(0).run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R1), 30u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R4), 120u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R5), 120u ^ 0xFFu);
}

TEST_F(CpuTest, LoadStoreRoundTripAndByteOps) {
  map_identity(kCode, 1, kCodeFlags);
  const sim::PhysAddr data = machine_.alloc_frame();
  aspace_.map(0x20000, data, kDataFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x20000)
      .li(sim::R2, 0xDEADBEEF)
      .sw(sim::R1, 0, sim::R2)
      .lw(sim::R3, sim::R1)
      .lb(sim::R4, sim::R1, 3)  // highest byte, little-endian.
      .li(sim::R5, 0x42)
      .sb(sim::R1, 5, sim::R5)
      .lb(sim::R6, sim::R1, 5)
      .halt();
  start(b.build());
  machine_.cpu(0).run();
  EXPECT_EQ(machine_.cpu(0).reg(sim::R3), 0xDEADBEEFu);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R4), 0xDEu);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R6), 0x42u);
  EXPECT_EQ(machine_.memory().read32(data), 0xDEADBEEFu);
}

TEST_F(CpuTest, MisalignedWordLoadFaults) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x20001).lw(sim::R2, sim::R1).halt();
  start(b.build());
  const auto result = machine_.cpu(0).run();
  EXPECT_EQ(result.stop_fault, sim::Fault::kAlignment);
}

TEST_F(CpuTest, CallRetAndLinkRegister) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.call("fn").li(sim::R2, 7).halt().label("fn").li(sim::R1, 5).ret();
  start(b.build());
  machine_.cpu(0).run();
  EXPECT_EQ(machine_.cpu(0).reg(sim::R1), 5u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R2), 7u);
}

TEST_F(CpuTest, RdcycleIsMonotonic) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.rdcycle(sim::R1).nop().nop().rdcycle(sim::R2).halt();
  start(b.build());
  machine_.cpu(0).run();
  EXPECT_GT(machine_.cpu(0).reg(sim::R2), machine_.cpu(0).reg(sim::R1));
}

TEST_F(CpuTest, MispredictedBranchExecutesTransiently) {
  map_identity(kCode, 1, kCodeFlags);
  const sim::PhysAddr probe = machine_.alloc_frame();
  aspace_.map(0x30000, probe, kDataFlags);

  // Branch is ALWAYS taken (skipping the probe load); the PHT starts at
  // weakly-not-taken, so the first execution mispredicts and the
  // fall-through runs transiently, heating the probe line.
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 1)
      .li(sim::R2, 0x30000)
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
      .lw(sim::R3, sim::R2)  // transient only.
      .label("skip")
      .halt();
  start(b.build());
  machine_.caches().flush_all();
  machine_.cpu(0).run();

  EXPECT_GT(machine_.cpu(0).stats().branch_mispredicts, 0u);
  EXPECT_GT(machine_.cpu(0).stats().transient_executed, 0u);
  EXPECT_TRUE(machine_.caches().in_l1d(0, probe))
      << "the transient load's cache fill must persist (the Spectre channel)";
  EXPECT_EQ(machine_.cpu(0).reg(sim::R3), 0u)
      << "architectural state must be squashed";
}

TEST_F(CpuTest, FenceStopsTransientWindow) {
  map_identity(kCode, 1, kCodeFlags);
  const sim::PhysAddr probe = machine_.alloc_frame();
  aspace_.map(0x30000, probe, kDataFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 1)
      .li(sim::R2, 0x30000)
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
      .fence()
      .lw(sim::R3, sim::R2)
      .label("skip")
      .halt();
  start(b.build());
  machine_.caches().flush_all();
  machine_.cpu(0).run();
  EXPECT_FALSE(machine_.caches().in_l1d(0, probe))
      << "a fence on the mispredicted path must stop the transient loads";
}

TEST_F(CpuTest, SpeculationWindowBoundsTransientExecution) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.speculation_window = 8;
  sim::Machine machine(profile, 14);
  auto aspace = machine.create_address_space();
  aspace.map(kCode, kCode, kCodeFlags);
  const sim::PhysAddr early = machine.alloc_frame();
  const sim::PhysAddr late = machine.alloc_frame();
  aspace.map(0x30000, early, kDataFlags);
  aspace.map(0x31000, late, kDataFlags);

  // Mispredicted fall-through: a load within the window and one beyond it
  // (window = 8 transient instructions; the second load is number 10).
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 1)
      .li(sim::R2, 0x30000)
      .li(sim::R3, 0x31000)
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
      .lw(sim::R4, sim::R2)  // transient #1: inside the window.
      .nop().nop().nop().nop().nop().nop().nop().nop()  // #2..#9.
      .lw(sim::R5, sim::R3)  // transient #10: beyond the window.
      .label("skip")
      .halt();
  machine.cpu(0).load_program(b.build());
  machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor,
                                aspace.root(), 1);
  machine.caches().flush_all();
  machine.cpu(0).run_from(kCode);
  EXPECT_TRUE(machine.caches().in_l1d(0, early)) << "inside the window: executed";
  EXPECT_FALSE(machine.caches().in_l1d(0, late)) << "beyond the window: squashed";
}

TEST_F(CpuTest, InOrderCoreHasNoTransientWindow) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.speculative_execution = false;
  sim::Machine machine(profile, 12);
  auto aspace = machine.create_address_space();
  for (std::uint32_t p = 0; p < 1; ++p) {
    aspace.map(kCode, kCode, kCodeFlags);
  }
  const sim::PhysAddr probe = machine.alloc_frame();
  aspace.map(0x30000, probe, kDataFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 1)
      .li(sim::R2, 0x30000)
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
      .lw(sim::R3, sim::R2)
      .label("skip")
      .halt();
  machine.cpu(0).load_program(b.build());
  machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor, aspace.root(), 1);
  machine.caches().flush_all();
  machine.cpu(0).run_from(kCode);
  EXPECT_EQ(machine.cpu(0).stats().transient_executed, 0u);
  EXPECT_FALSE(machine.caches().in_l1d(0, probe));
}

TEST_F(CpuTest, MeltdownForwardingHeatsProbeBeforeFault) {
  map_identity(kCode, 1, kCodeFlags);
  // Kernel page: present, NOT user-accessible, with a known byte.
  const sim::PhysAddr kernel = machine_.alloc_frame();
  aspace_.map(0x40000, kernel, sim::pte::kWritable);
  machine_.memory().write8(kernel, 0x5C);
  // Probe array: user page.
  const sim::PhysAddr probe = machine_.alloc_frames(8);  // covers 256*64 bytes... 4 pages needed
  for (std::uint32_t p = 0; p < 4; ++p) {
    aspace_.map(0x50000 + p * sim::kPageSize, probe + p * sim::kPageSize, kDataFlags);
  }

  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x40000)
      .li(sim::R2, 0x50000)
      .lb(sim::R3, sim::R1)      // user reads kernel: faults.
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .halt();
  start(b.build(), sim::Privilege::kUser);
  machine_.caches().flush_all();
  const auto result = machine_.cpu(0).run();

  EXPECT_EQ(result.stop_fault, sim::Fault::kProtection) << "the fault must still be raised";
  EXPECT_TRUE(machine_.caches().in_l1d(0, probe + 0x5Cu * 64))
      << "the dependent transient load must have heated probe[secret]";
}

TEST_F(CpuTest, MitigatedCoreForwardsNothing) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.meltdown_fault_forwarding = false;
  sim::Machine machine(profile, 13);
  auto aspace = machine.create_address_space();
  aspace.map(kCode, kCode, kCodeFlags);
  const sim::PhysAddr kernel = machine.alloc_frame();
  aspace.map(0x40000, kernel, sim::pte::kWritable);
  machine.memory().write8(kernel, 0x5C);
  const sim::PhysAddr probe = machine.alloc_frames(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    aspace.map(0x50000 + p * sim::kPageSize, probe + p * sim::kPageSize, kDataFlags);
  }
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x40000)
      .li(sim::R2, 0x50000)
      .lb(sim::R3, sim::R1)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .halt();
  machine.cpu(0).load_program(b.build());
  machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kUser, aspace.root(), 1);
  machine.caches().flush_all();
  machine.cpu(0).run_from(kCode);
  EXPECT_FALSE(machine.caches().in_l1d(0, probe + 0x5Cu * 64));
}

TEST_F(CpuTest, L1tfForwardsOnlyL1ResidentLines) {
  map_identity(kCode, 1, kCodeFlags);
  const sim::PhysAddr secret_frame = machine_.alloc_frame();
  machine_.memory().write8(secret_frame, 0x7B);
  const sim::PhysAddr probe = machine_.alloc_frames(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    aspace_.map(0x50000 + p * sim::kPageSize, probe + p * sim::kPageSize, kDataFlags);
  }
  // Not-present mapping whose stale frame bits point at the secret.
  aspace_.map(0x60000, secret_frame, kDataFlags);
  aspace_.clear_present(0x60000);

  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x60000)
      .li(sim::R2, 0x50000)
      .lb(sim::R3, sim::R1)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .halt();
  const auto program = b.build();

  // Cold L1: terminal fault forwards nothing.
  start(program, sim::Privilege::kUser);
  machine_.caches().flush_all();
  machine_.cpu(0).run();
  EXPECT_FALSE(machine_.caches().in_l1d(0, probe + 0x7Bu * 64));

  // Hot L1: the same access now leaks the line's content.
  machine_.touch(0, 42, secret_frame);  // someone (an enclave) loads it.
  machine_.cpu(0).mmu().tlb().flush();
  machine_.cpu(0).set_pc(program.base);
  machine_.cpu(0).run();
  EXPECT_TRUE(machine_.caches().in_l1d(0, probe + 0x7Bu * 64))
      << "L1-resident data must be reachable through the terminal fault";
}

TEST_F(CpuTest, FaultHandlerSkipAndRedirect) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x40000)  // unmapped.
      .lw(sim::R2, sim::R1)
      .li(sim::R3, 1)
      .halt();
  start(b.build());
  int faults = 0;
  machine_.cpu(0).set_fault_handler([&faults](sim::Cpu&, const sim::FaultInfo& info) {
    ++faults;
    EXPECT_EQ(info.fault, sim::Fault::kPageNotPresent);
    return sim::FaultAction::kSkip;
  });
  const auto result = machine_.cpu(0).run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(faults, 1);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R3), 1u) << "execution continues after kSkip";
}

TEST_F(CpuTest, EcallInvokesHandlerAndResumesAfter) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 5).ecall(0x77).li(sim::R2, 9).halt();
  start(b.build());
  sim::Word seen_service = 0;
  machine_.cpu(0).set_ecall_handler([&seen_service](sim::Cpu& cpu, sim::Word service) {
    seen_service = service;
    cpu.set_reg(sim::R3, cpu.reg(sim::R1) + 1);
  });
  machine_.cpu(0).run();
  EXPECT_EQ(seen_service, 0x77u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R3), 6u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R2), 9u);
}

}  // namespace
