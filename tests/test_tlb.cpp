// TLB: lookup/insert/LRU, ASID tagging vs. flushing, invalidations.
#include <gtest/gtest.h>

#include "sim/page_table.h"
#include "sim/tlb.h"

namespace sim = hwsec::sim;

namespace {

TEST(Tlb, InsertLookupRoundTrip) {
  sim::Tlb tlb({.entries = 16, .ways = 4, .asid_tagged = true});
  tlb.insert(0x4000'0000, 0x0010'0000, sim::pte::kUser, 1);
  const auto e = tlb.lookup(0x4000'0123, 1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->pfn, sim::page_number(0x0010'0000));
  EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, AsidTaggingSeparatesContexts) {
  sim::Tlb tlb({.entries = 16, .ways = 4, .asid_tagged = true});
  tlb.insert(0x4000'0000, 0x0010'0000, sim::pte::kUser, 1);
  EXPECT_FALSE(tlb.lookup(0x4000'0000, 2).has_value());
  EXPECT_TRUE(tlb.lookup(0x4000'0000, 1).has_value());
}

TEST(Tlb, UntaggedMatchesAnyAsid) {
  sim::Tlb tlb({.entries = 16, .ways = 4, .asid_tagged = false});
  tlb.insert(0x4000'0000, 0x0010'0000, sim::pte::kUser, 1);
  EXPECT_TRUE(tlb.lookup(0x4000'0000, 2).has_value())
      << "an untagged TLB is shared across contexts (the TLB side channel)";
}

TEST(Tlb, LruReplacementWithinSet) {
  sim::Tlb tlb({.entries = 8, .ways = 2, .asid_tagged = true});
  // 4 sets; same set = same (vpn % 4): stride 4 pages.
  const sim::VirtAddr kStride = 4 * sim::kPageSize;
  tlb.insert(0 * kStride, 0x1000, 0, 1);
  tlb.insert(1 * kStride, 0x2000, 0, 1);
  tlb.lookup(0, 1);  // refresh entry 0.
  tlb.insert(2 * kStride, 0x3000, 0, 1);
  EXPECT_TRUE(tlb.present(0, 1));
  EXPECT_FALSE(tlb.present(kStride, 1)) << "LRU victim";
  EXPECT_TRUE(tlb.present(2 * kStride, 1));
}

TEST(Tlb, InvalidatePageCrossesAsids) {
  sim::Tlb tlb({.entries = 16, .ways = 4, .asid_tagged = true});
  tlb.insert(0x4000'0000, 0x1000, 0, 1);
  tlb.insert(0x4000'0000, 0x2000, 0, 2);
  tlb.invalidate_page(0x4000'0000);
  EXPECT_FALSE(tlb.present(0x4000'0000, 1));
  EXPECT_FALSE(tlb.present(0x4000'0000, 2));
}

TEST(Tlb, InvalidateAsidIsSelective) {
  sim::Tlb tlb({.entries = 16, .ways = 4, .asid_tagged = true});
  tlb.insert(0x4000'0000, 0x1000, 0, 1);
  tlb.insert(0x5000'0000, 0x2000, 0, 2);
  tlb.invalidate_asid(1);
  EXPECT_FALSE(tlb.present(0x4000'0000, 1));
  EXPECT_TRUE(tlb.present(0x5000'0000, 2));
}

TEST(Tlb, PresenceIsObservableOccupancy) {
  // The Gras et al. TLB attack reduces to observing set occupancy: fill a
  // set as one context, have the victim translate, observe the eviction.
  sim::Tlb tlb({.entries = 8, .ways = 2, .asid_tagged = false});
  const sim::VirtAddr kStride = 4 * sim::kPageSize;
  tlb.insert(0, 0x1000, 0, /*attacker=*/7);
  tlb.insert(kStride, 0x2000, 0, 7);
  // Victim translates a congruent page.
  tlb.insert(2 * kStride, 0x3000, 0, /*victim=*/8);
  const bool evicted = !tlb.present(0, 7) || !tlb.present(kStride, 7);
  EXPECT_TRUE(evicted) << "victim activity must displace attacker entries";
}

}  // namespace
