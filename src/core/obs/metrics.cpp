#include "core/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

#include "core/json.h"
#include "sim/obs_hook.h"

namespace hwsec::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed:
  // shards are referenced from thread_local pointers whose threads may
  // outlive any static destruction order we could promise.
  static const bool cpu_probe_installed = (install_cpu_probe(), true);
  (void)cpu_probe_installed;
  return *registry;
}

MetricsRegistry::Shard* MetricsRegistry::register_shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  return shards_.back().get();
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  thread_local Shard* shard = register_shard();
  return *shard;
}

std::size_t MetricsRegistry::intern(std::vector<std::string>& names, std::size_t limit,
                                    std::string_view name, const char* kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      return i;
    }
  }
  if (names.size() >= limit) {
    throw std::length_error(std::string("metrics registry: ") + kind + " table full at \"" +
                            std::string(name) + "\"");
  }
  names.emplace_back(name);
  return names.size() - 1;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(intern(counter_names_, kMaxCounters, name, "counter"));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(intern(gauge_names_, kMaxGauges, name, "gauge"));
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  return Histogram(intern(histogram_names_, kMaxHistograms, name, "histogram"));
}

void Counter::add(std::uint64_t delta) const {
  MetricsRegistry& reg = MetricsRegistry::instance();
  if (!reg.enabled()) {
    return;
  }
  reg.local_shard().counters[id_].fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t value) const {
  MetricsRegistry& reg = MetricsRegistry::instance();
  if (!reg.enabled()) {
    return;
  }
  reg.gauges_[id_].store(value, std::memory_order_relaxed);
}

void Histogram::observe_ns(std::uint64_t ns) const {
  MetricsRegistry& reg = MetricsRegistry::instance();
  if (!reg.enabled()) {
    return;
  }
  const std::uint64_t us = ns / 1000;
  const std::size_t bucket =
      us == 0 ? 0
              : std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(us)) - 1,
                                      kHistogramBuckets - 1);
  MetricsRegistry::Shard& shard = reg.local_shard();
  shard.hist_buckets[id_][bucket].fetch_add(1, std::memory_order_relaxed);
  shard.hist_count[id_].fetch_add(1, std::memory_order_relaxed);
  shard.hist_sum_ns[id_].fetch_add(ns, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (std::size_t c = 0; c < counter_names_.size(); ++c) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[c].load(std::memory_order_relaxed);
    }
    snap.counters[counter_names_[c]] = total;
  }
  for (std::size_t g = 0; g < gauge_names_.size(); ++g) {
    snap.gauges[gauge_names_[g]] = gauges_[g].load(std::memory_order_relaxed);
  }
  for (std::size_t h = 0; h < histogram_names_.size(); ++h) {
    HistogramSnapshot hs;
    std::uint64_t sum_ns = 0;
    for (const auto& shard : shards_) {
      hs.count += shard->hist_count[h].load(std::memory_order_relaxed);
      sum_ns += shard->hist_sum_ns[h].load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        hs.buckets[b] += shard->hist_buckets[h][b].load(std::memory_order_relaxed);
      }
    }
    hs.sum_us = static_cast<double>(sum_ns) / 1000.0;
    snap.histograms[histogram_names_[h]] = hs;
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  // Names flow from call sites into the document verbatim, so they MUST go
  // through json_escape: a counter named with a quote or backslash used to
  // emit an unparseable scrape (test_service holds the regression).
  const MetricsSnapshot snap = snapshot();
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "" : ",") << "\n    \"" << core::json_escape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "" : ",") << "\n    \"" << core::json_escape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out << (first ? "" : ",") << "\n    \"" << core::json_escape(name)
        << "\": {\"count\": " << hist.count
        << ", \"sum_us\": " << hist.sum_us << ", \"buckets_pow2_us\": [";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out << (b == 0 ? "" : ", ") << hist.buckets[b];
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

void MetricsRegistry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& hist : shard->hist_buckets) {
      for (auto& b : hist) {
        b.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& c : shard->hist_count) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& s : shard->hist_sum_ns) {
      s.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) {
    g.store(0, std::memory_order_relaxed);
  }
}

#if defined(HWSEC_OBS_CPU)
namespace {
void cpu_committed_probe(std::uint64_t executed) {
  static const Counter kCommitted = counter("cpu_instructions_committed");
  kCommitted.add(executed);
}
}  // namespace
#endif

void install_cpu_probe() {
#if defined(HWSEC_OBS_CPU)
  hwsec::sim::g_cpu_commit_hook = &cpu_committed_probe;
#endif
}

}  // namespace hwsec::obs
