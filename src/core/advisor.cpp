#include "core/advisor.h"

#include <algorithm>
#include <sstream>

#include "arch/sancus.h"
#include "arch/sanctuary.h"
#include "arch/sanctum.h"
#include "arch/sgx.h"
#include "arch/smart.h"
#include "arch/trustlite.h"
#include "arch/trustzone.h"

namespace hwsec::core {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;

std::vector<tee::ArchitectureTraits> all_architecture_traits() {
  std::vector<tee::ArchitectureTraits> traits;
  {
    sim::Machine server(sim::MachineProfile::server(), 3001);
    traits.push_back(arch::Sgx(server, {.provision_quoting_enclave = false}).traits());
  }
  {
    sim::Machine server(sim::MachineProfile::server(), 3002);
    traits.push_back(arch::Sanctum(server).traits());
  }
  {
    sim::Machine mobile(sim::MachineProfile::mobile(), 3003);
    traits.push_back(arch::TrustZone(mobile).traits());
  }
  {
    sim::Machine mobile(sim::MachineProfile::mobile(), 3004);
    traits.push_back(arch::Sanctuary(mobile).traits());
  }
  {
    sim::Machine embedded(sim::MachineProfile::embedded(), 3005);
    traits.push_back(arch::Smart(embedded).traits());
  }
  {
    sim::Machine embedded(sim::MachineProfile::embedded(), 3006);
    traits.push_back(arch::Sancus(embedded).traits());
  }
  {
    sim::Machine embedded(sim::MachineProfile::embedded(), 3007);
    traits.push_back(arch::TrustLite(embedded).traits());
  }
  {
    sim::Machine embedded(sim::MachineProfile::embedded(), 3008);
    traits.push_back(arch::TyTan(embedded).traits());
  }
  return traits;
}

std::vector<Recommendation> recommend(const Requirements& req) {
  std::vector<Recommendation> out;
  for (const auto& t : all_architecture_traits()) {
    Recommendation r;
    r.traits = t;

    // Hard platform gate: a TEE designed for another platform class is
    // not an option at all (the §2 energy/performance argument).
    if (t.target != req.platform) {
      r.viable = false;
      r.cons.push_back("targets " + sim::to_string(t.target) + ", not " +
                       sim::to_string(req.platform));
      out.push_back(std::move(r));
      continue;
    }

    auto pro = [&r](int points, const std::string& why) {
      r.score += points;
      r.pros.push_back(why);
    };
    auto con = [&r](int points, const std::string& why, bool hard = false) {
      r.score -= points;
      r.cons.push_back(why);
      if (hard) {
        r.viable = false;
      }
    };

    if (req.multiple_enclaves) {
      if (t.enclave_capacity == -1) {
        pro(3, "unlimited mutually isolated enclaves");
      } else if (t.enclave_capacity == 1) {
        con(3, "single enclave: all tenants share the secure world (§3.2)", true);
      } else if (t.enclave_capacity == 0) {
        con(3, "no code isolation at all (attestation-only design)", true);
      }
    }
    if (req.remote_attestation) {
      if (t.attestation == tee::AttestationSupport::kRemote ||
          t.attestation == tee::AttestationSupport::kLocalAndRemote) {
        pro(2, "remote attestation built in");
      } else {
        con(2, "no remote attestation protocol", true);
      }
    }
    if (req.malicious_peripherals) {
      switch (t.dma_defense) {
        case tee::DmaDefense::kEncryptedMemory:
          pro(2, "DMA sees only ciphertext (memory encryption)");
          break;
        case tee::DmaDefense::kRangeFilter:
        case tee::DmaDefense::kRegionAssignment:
          pro(2, "DMA transactions into protected memory are vetoed");
          break;
        case tee::DmaDefense::kNone:
          con(3, "DMA is outside the threat model: peripherals read secrets (§3.3)");
          break;
      }
    }
    if (req.cache_sca_threat) {
      switch (t.cache_defense) {
        case tee::CacheDefense::kLlcPartitioning:
          pro(3, "shared-LLC partitioning defeats Prime+Probe (§4.1)");
          break;
        case tee::CacheDefense::kExclusionAndFlush:
          pro(3, "cache exclusion + flush defeats cache SCA, at a memory-latency cost");
          break;
        case tee::CacheDefense::kNoSharedCaches:
          pro(1, "no shared caches exist to attack");
          break;
        case tee::CacheDefense::kNone:
          con(3, "no architectural cache side-channel defense (§4.1; TruSpy/SGX attacks)");
          break;
      }
    }
    if (req.real_time) {
      if (t.real_time_capable) {
        pro(2, "bounded trustlet/enclave latency (real-time capable)");
      } else {
        con(2, "no real-time guarantee (e.g. SMART disables interrupts during attestation)");
      }
    }
    if (req.no_vendor_gatekeeping) {
      if (t.vendor_trust_required) {
        con(2, "deployment requires a (costly) vendor trust relationship", true);
      } else {
        pro(2, "third parties deploy without vendor involvement");
      }
    }
    if (req.existing_hardware_only) {
      if (t.new_hardware_required) {
        con(2, "needs new silicon / hardware changes", true);
      } else {
        pro(2, "runs on already-shipped hardware");
      }
    }
    if (req.secure_peripheral_io) {
      if (t.secure_peripheral_channels) {
        pro(2, "secure channels to peripherals (§3.2 TrustZone capability)");
      } else {
        con(2, "no trusted path to peripherals");
      }
    }
    if (req.physical_adversary) {
      // No surveyed architecture defends crypto against DPA/faults by
      // itself — the §5 message: pick masked/checked implementations too.
      r.cons.push_back(
          "note: physical SCA/fault resistance needs §5 countermeasures in the "
          "crypto layer regardless of TEE choice");
    }
    out.push_back(std::move(r));
  }

  std::stable_sort(out.begin(), out.end(), [](const Recommendation& a, const Recommendation& b) {
    if (a.viable != b.viable) {
      return a.viable;
    }
    return a.score > b.score;
  });
  return out;
}

std::string render_recommendations(const Requirements& req,
                                   const std::vector<Recommendation>& ranked) {
  std::ostringstream os;
  os << "platform: " << sim::to_string(req.platform) << "\n";
  int rank = 1;
  for (const auto& r : ranked) {
    if (!r.viable && r.traits.target != req.platform) {
      continue;  // wrong platform class: not worth listing.
    }
    os << "  #" << rank++ << " " << r.traits.name << "  (score " << r.score
       << (r.viable ? "" : ", NOT VIABLE") << ")\n";
    for (const auto& p : r.pros) {
      os << "      + " << p << "\n";
    }
    for (const auto& c : r.cons) {
      os << "      - " << c << "\n";
    }
  }
  return os.str();
}

}  // namespace hwsec::core
