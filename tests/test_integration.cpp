// Cross-module integration scenarios: OS-style process isolation with
// syscalls, TrustZone secure peripheral channels, defense-in-depth
// (architectural defense + detector), and platform-profile economics.
#include <gtest/gtest.h>

#include "arch/sanctum.h"
#include "arch/trustlite.h"
#include "arch/trustzone.h"
#include "attacks/cache/cache_attacks.h"
#include "core/detector.h"
#include "sim/dma.h"
#include "sim/machine.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;
namespace core = hwsec::core;
namespace crypto = hwsec::crypto;

namespace {

// ---- scenario 1: two processes + kernel syscall ---------------------------

TEST(OsScenario, ProcessesAreIsolatedAndSyscallsCrossPrivilege) {
  sim::Machine machine(sim::MachineProfile::server(), 2101);
  sim::Cpu& cpu = machine.cpu(0);

  // Two address spaces mapping the SAME virtual page to different frames.
  auto as_a = machine.create_address_space();
  auto as_b = machine.create_address_space();
  const sim::PhysAddr frame_a = machine.alloc_frame();
  const sim::PhysAddr frame_b = machine.alloc_frame();
  constexpr sim::VirtAddr kData = 0x00500000;
  as_a.map(kData, frame_a, sim::pte::kUser | sim::pte::kWritable);
  as_b.map(kData, frame_b, sim::pte::kUser | sim::pte::kWritable);

  // Program: write a marker, ecall(1) to ask the kernel for its pid into
  // r3, read the marker back.
  sim::ProgramBuilder b(0x10000);
  b.label("main")
      .li(sim::R1, kData)
      .sw(sim::R1, 0, sim::R5)  // r5 = per-process marker.
      .ecall(1)
      .lw(sim::R6, sim::R1)
      .halt();
  const sim::Program program = b.build();
  // Shared text segment: both processes run the same binary (same VAs).
  const sim::PhysAddr text = machine.alloc_frame();
  as_a.map(0x10000, text, sim::pte::kUser | sim::pte::kExecutable);
  as_b.map(0x10000, text, sim::pte::kUser | sim::pte::kExecutable);
  cpu.load_program(program);

  int syscalls = 0;
  cpu.set_ecall_handler([&syscalls](sim::Cpu& c, sim::Word service) {
    ASSERT_EQ(service, 1u);
    ++syscalls;
    // Kernel work happens at supervisor privilege conceptually; it
    // returns the current ASID as "pid".
    c.set_reg(sim::R3, c.mmu().asid());
  });

  // Run as process A.
  cpu.switch_context(sim::kDomainNormal, sim::Privilege::kUser, as_a.root(), 1);
  cpu.set_reg(sim::R5, 0xAAAA);
  cpu.run_from(program.address_of("main"), 64);
  EXPECT_EQ(cpu.reg(sim::R6), 0xAAAAu);
  EXPECT_EQ(cpu.reg(sim::R3), 1u);

  // Run as process B: same VA, different physical page — A's data is
  // invisible.
  cpu.switch_context(sim::kDomainNormal, sim::Privilege::kUser, as_b.root(), 2);
  cpu.set_reg(sim::R5, 0xBBBB);
  cpu.run_from(program.address_of("main"), 64);
  EXPECT_EQ(cpu.reg(sim::R6), 0xBBBBu);
  EXPECT_EQ(cpu.reg(sim::R3), 2u);

  // Physical isolation held.
  EXPECT_EQ(machine.memory().read32(frame_a), 0xAAAAu);
  EXPECT_EQ(machine.memory().read32(frame_b), 0xBBBBu);
  EXPECT_EQ(syscalls, 2);
}

// ---- scenario 2: TrustZone secure peripheral channel ------------------------

TEST(TrustZoneScenario, FingerprintReaderChannelIsEndToEndSecure) {
  // The §3.2 capability SGX/Sanctum lack: "TrustZone can … establish
  // secure channels between peripherals and sensitive apps."
  sim::Machine machine(sim::MachineProfile::mobile(), 2102);
  arch::TrustZone tz(machine);

  // The fingerprint reader's DMA buffer, assigned to the secure world.
  const sim::PhysAddr buffer = machine.alloc_frame();
  tz.assign_device_region(buffer, 1);

  // The (secure-attributed) sensor writes a fingerprint template.
  sim::DmaDevice sensor(machine.bus(), arch::kSecureDeviceDomain, "fp-reader");
  const std::vector<sim::Word> fingerprint = {0xF1A6E301, 0xF1A6E302, 0xF1A6E303};
  ASSERT_EQ(sensor.write_block(buffer, fingerprint).fault, sim::Fault::kNone);

  // Normal-world software cannot read it; a normal-world DMA device
  // cannot either.
  EXPECT_EQ(machine.bus().cpu_read(0, arch::kOsDomain, sim::Privilege::kSupervisor, buffer)
                .fault,
            sim::Fault::kSecurityViolation);
  sim::DmaDevice evil(machine.bus(), arch::kUntrustedDeviceDomain, "evil");
  EXPECT_TRUE(evil.exfiltrate(buffer, 12).empty());

  // The secure-world TA consumes the template.
  tee::EnclaveImage ta;
  ta.name = "fp-matcher";
  ta.code = {0xF9};
  tz.vendor_sign(ta);
  const auto id = tz.create_enclave(ta).value;
  sim::Word first_word = 0;
  tz.call_enclave(id, 0, [&machine, &first_word, buffer](tee::EnclaveContext&) {
    first_word = machine.bus()
                     .cpu_read(0, arch::kSecureWorldDomain, sim::Privilege::kMachine, buffer)
                     .value;
  });
  EXPECT_EQ(first_word, 0xF1A6E301u);
}

// ---- scenario 3: defense in depth -------------------------------------------

TEST(DefenseInDepth, SanctumStarvesTheAttackAndTheDetectorStaysQuiet) {
  // With partitioning in place the attacker cannot even create the
  // counter signature the detector watches for — the two §4.1 defense
  // layers compose.
  // High nibbles must be varied: an attack that learns nothing guesses
  // all-zero nibbles, which would trivially "match" a low-nibble key.
  const crypto::AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                              0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  sim::Machine machine(sim::MachineProfile::server(), 2103);
  arch::Sanctum sanctum(machine);
  attacks::EnclaveAesVictim victim(sanctum, key, 1);
  const sim::DomainId victim_domain = sanctum.enclave(victim.enclave_id())->domain;

  core::CacheAttackDetector detector(machine, victim_domain);
  hwsec::sim::Rng rng(2104);
  for (int w = 0; w < 5; ++w) {
    detector.begin_window();
    for (int i = 0; i < 10; ++i) {
      crypto::AesBlock pt;
      for (auto& byte : pt) {
        byte = static_cast<std::uint8_t>(rng.next_u32());
      }
      victim.encrypt(pt);
    }
    detector.end_window();
  }
  detector.finish_calibration();

  detector.begin_window();
  attacks::CacheAttackConfig config;
  config.trials = 100;
  const auto result = attacks::prime_probe_attack(
      machine, victim.layout(),
      [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }, config,
      [&sanctum] { return sanctum.alloc_os_frame(); });
  const auto reading = detector.end_window();

  EXPECT_LE(result.correct_nibbles(key), 4u) << "partitioning holds";
  EXPECT_EQ(reading.victim_evictions, 0u)
      << "disjoint LLC sets: the attacker never displaces a victim line";
}

// ---- scenario 4: platform economics ------------------------------------------

TEST(PlatformEconomics, SecurityArchitectureCostsScaleWithPlatformClass) {
  // §2: "non-functional requirements … determine which security
  // architectures the computing platforms are capable of integrating".
  // Same enclave service, three platforms: the entry/exit overhead in
  // *energy* must shrink dramatically down the spectrum.
  auto energy_for_call = [](sim::MachineProfile profile, auto make_arch) {
    sim::Machine machine(profile, 2105);
    auto architecture = make_arch(machine);
    tee::EnclaveImage image;
    image.name = "svc";
    image.code = {1};
    const auto id = architecture->create_enclave(image).value;
    sim::Cycle before = 0;
    for (std::uint32_t c = 0; c < machine.num_cores(); ++c) {
      before += machine.cpu(static_cast<sim::CoreId>(c)).cycles();
    }
    architecture->call_enclave(id, 0, [](tee::EnclaveContext& ctx) {
      for (int i = 0; i < 64; ++i) {
        ctx.read8(0);
      }
    });
    sim::Cycle after = 0;
    for (std::uint32_t c = 0; c < machine.num_cores(); ++c) {
      after += machine.cpu(static_cast<sim::CoreId>(c)).cycles();
    }
    return static_cast<double>(after - before) * machine.dvfs().energy_per_cycle_nj();
  };

  const double server_cost =
      energy_for_call(sim::MachineProfile::server(), [](sim::Machine& m) {
        return std::make_unique<arch::Sanctum>(m);
      });
  const double embedded_cost =
      energy_for_call(sim::MachineProfile::embedded(), [](sim::Machine& m) {
        auto t = std::make_unique<arch::TyTan>(m);
        t->boot();
        return t;
      });
  EXPECT_GT(server_cost, 10.0 * embedded_cost)
      << "server TEE call " << server_cost << " nJ vs embedded " << embedded_cost << " nJ";
}

}  // namespace
