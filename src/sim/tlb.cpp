#include "sim/tlb.h"

#include <stdexcept>

namespace hwsec::sim {

Tlb::Tlb(TlbConfig config) : config_(config) {
  if (config_.ways == 0 || config_.entries % config_.ways != 0) {
    throw std::invalid_argument("TLB entries must be a multiple of ways");
  }
  num_sets_ = config_.entries / config_.ways;
  if ((num_sets_ & (num_sets_ - 1)) == 0) {
    set_mask_ = num_sets_ - 1;
  }
  entries_.assign(config_.entries, TlbEntry{});
}

Tlb::WayRange Tlb::ways_for(Asid asid) const {
  if (asid < partition_lut_.size() && partition_lut_[asid].count != 0) {
    return partition_lut_[asid];
  }
  return {0, config_.ways};
}

void Tlb::set_way_partition(Asid asid, std::uint32_t first_way, std::uint32_t num_ways) {
  ++removal_epoch_;  // the hit predicate (ways_for) changes shape.
  if (num_ways == 0) {
    if (asid < partition_lut_.size() && partition_lut_[asid].count != 0) {
      partition_lut_[asid] = {};
      --partitions_installed_;
    }
    return;
  }
  if (first_way + num_ways > config_.ways) {
    throw std::invalid_argument("TLB way partition out of range");
  }
  if (asid >= partition_lut_.size()) {
    partition_lut_.resize(static_cast<std::size_t>(asid) + 1);
  }
  if (partition_lut_[asid].count == 0) {
    ++partitions_installed_;
  }
  partition_lut_[asid] = {first_way, num_ways};
  // Scrub entries the ASID holds outside its new partition.
  const std::uint32_t sets = config_.entries / config_.ways;
  for (std::uint32_t set = 0; set < sets; ++set) {
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      if (w >= first_way && w < first_way + num_ways) {
        continue;
      }
      TlbEntry& e = entries_[set * config_.ways + w];
      if (e.valid && e.asid == asid) {
        e.valid = false;
      }
    }
  }
}

std::optional<TlbEntry> Tlb::lookup(VirtAddr va, Asid asid) {
  const std::uint32_t vpn = page_number(va);
  const std::uint32_t set = set_index(va);
  const WayRange range = ways_for(asid);
  for (std::uint32_t w = range.first; w < range.first + range.count; ++w) {
    TlbEntry& e = entries_[set * config_.ways + w];
    if (e.valid && e.vpn == vpn && (!config_.asid_tagged || e.asid == asid)) {
      e.lru_stamp = ++clock_;
      ++hits_;
      return e;
    }
  }
  ++misses_;
  return std::nullopt;
}

std::optional<std::uint32_t> Tlb::find_index(VirtAddr va, Asid asid) const {
  const std::uint32_t vpn = page_number(va);
  const std::uint32_t set = set_index(va);
  const WayRange range = ways_for(asid);
  for (std::uint32_t w = range.first; w < range.first + range.count; ++w) {
    const std::uint32_t index = set * config_.ways + w;
    const TlbEntry& e = entries_[index];
    if (e.valid && e.vpn == vpn && (!config_.asid_tagged || e.asid == asid)) {
      return index;
    }
  }
  return std::nullopt;
}

bool Tlb::present(VirtAddr va, Asid asid) const {
  const std::uint32_t vpn = page_number(va);
  const std::uint32_t set = set_index(va);
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    const TlbEntry& e = entries_[set * config_.ways + w];
    if (e.valid && e.vpn == vpn && (!config_.asid_tagged || e.asid == asid)) {
      return true;
    }
  }
  return false;
}

void Tlb::insert(VirtAddr va, PhysAddr pa, Word flags, Asid asid) {
  const std::uint32_t set = set_index(va);
  const WayRange range = ways_for(asid);
  std::uint32_t victim = range.first;
  std::uint64_t oldest = UINT64_MAX;
  for (std::uint32_t w = range.first; w < range.first + range.count; ++w) {
    TlbEntry& e = entries_[set * config_.ways + w];
    if (!e.valid) {
      victim = w;
      break;
    }
    if (e.lru_stamp < oldest) {
      oldest = e.lru_stamp;
      victim = w;
    }
  }
  TlbEntry& e = entries_[set * config_.ways + victim];
  if (e.valid) {
    ++removal_epoch_;  // a valid translation is being displaced.
  }
  e.valid = true;
  e.vpn = page_number(va);
  e.pfn = page_number(pa);
  e.flags = flags;
  e.asid = asid;
  e.lru_stamp = ++clock_;
}

void Tlb::invalidate_page(VirtAddr va) {
  const std::uint32_t vpn = page_number(va);
  const std::uint32_t set = set_index(va);
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    TlbEntry& e = entries_[set * config_.ways + w];
    if (e.valid && e.vpn == vpn) {
      e.valid = false;
      ++removal_epoch_;
    }
  }
}

void Tlb::invalidate_asid(Asid asid) {
  for (TlbEntry& e : entries_) {
    if (e.valid && e.asid == asid) {
      e.valid = false;
      ++removal_epoch_;
    }
  }
}

void Tlb::flush() {
  ++removal_epoch_;
  for (TlbEntry& e : entries_) {
    e.valid = false;
  }
}

}  // namespace hwsec::sim
