#include "attacks/transient/branch_shadow.h"

#include "sim/rng.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;

namespace {
constexpr sim::DomainId kShadowAttackerDomain = 11;
}

BranchShadowAttack::BranchShadowAttack(sim::Machine& machine, sim::CoreId core)
    : victim_(machine, core, sim::kDomainNormal),
      attacker_(machine, core, kShadowAttackerDomain) {
  // Victim (modeling enclave code): a branch taken iff the secret bit is
  // set. The branch must sit at a known (or probed) virtual address — in
  // real SGX the enclave layout is known to the OS attacker.
  sim::ProgramBuilder vb(kCodeBase);
  vb.label("victim")
      .nop()
      .label("secret_branch")
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "taken_path")
      .nop()  // fall-through path.
      .halt()
      .label("taken_path")
      .halt();
  const sim::Program vprog = vb.build();
  victim_entry_ = vprog.address_of("victim");
  victim_.load_program(vprog);

  // Shadow branch at a PHT-congruent address: same index into the shared
  // pattern history table, one congruence period away.
  const std::uint32_t stride =
      machine.profile().cpu.predictor.pht_entries * 4;
  const sim::VirtAddr branch_va = vprog.address_of("secret_branch") + stride;
  sim::ProgramBuilder ab(branch_va - 4);
  ab.label("shadow")
      .rdcycle(sim::R2);  // at branch_va - 4.
  ab.br(sim::BranchCond::kEq, sim::R5, sim::R0, "never");  // at branch_va; r5 != 0.
  ab.rdcycle(sim::R3)
      .sub(sim::R4, sim::R3, sim::R2)
      .halt()
      .label("never")
      .halt();
  const sim::Program aprog = ab.build();
  shadow_entry_ = aprog.address_of("shadow");
  attacker_.load_program(aprog);

  // Warm both code paths (cold instruction fetches would otherwise
  // swamp the first measurement) and drive the shared counter to a known
  // strong-not-taken start state.
  sim::Cpu& cpu = victim_.cpu();
  victim_.activate(sim::Privilege::kUser);
  cpu.set_reg(sim::R1, 0);
  cpu.run_from(victim_entry_, 16);
  attacker_.activate(sim::Privilege::kUser);
  for (int i = 0; i < 3; ++i) {
    cpu.set_reg(sim::R5, 1);
    cpu.run_from(shadow_entry_, 16);
  }
}

bool BranchShadowAttack::infer_bit(bool secret_bit) {
  sim::Cpu& cpu = victim_.cpu();

  // Victim executes its secret-dependent branch twice (the attacker
  // triggers the enclave service repeatedly), walking the shared counter
  // from strong-not-taken to predicted-taken iff the bit is set.
  victim_.activate(sim::Privilege::kUser);
  for (int i = 0; i < 2; ++i) {
    cpu.set_reg(sim::R1, secret_bit ? 1 : 0);
    cpu.run_from(victim_entry_, 16);
  }

  // Attacker runs the shadow: its branch is never taken, so a mispredict
  // (visible as the penalty between the two rdcycles) means the shared
  // counter was trained toward TAKEN by the victim.
  attacker_.activate(sim::Privilege::kUser);
  cpu.set_reg(sim::R5, 1);
  cpu.run_from(shadow_entry_, 16);
  const sim::Word shadow_cycles =
      static_cast<sim::Word>(victim_.machine().observe_latency(cpu.reg(sim::R4)));

  // Baseline: branch + rdcycle pair without a mispredict costs well under
  // the penalty; threshold at half the penalty.
  const sim::Cycle penalty = victim_.machine().profile().cpu.mispredict_penalty;
  const bool mispredicted = shadow_cycles >= penalty;

  // Clean up the counter for the next round (the attacker can always
  // retrain toward not-taken by running the shadow a few times).
  for (int i = 0; i < 3; ++i) {
    cpu.set_reg(sim::R5, 1);
    cpu.run_from(shadow_entry_, 16);
  }
  return mispredicted;
}

double BranchShadowAttack::accuracy(std::uint32_t rounds, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::uint32_t correct = 0;
  for (std::uint32_t i = 0; i < rounds; ++i) {
    const bool bit = rng.chance(0.5);
    correct += infer_bit(bit) == bit ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(rounds);
}

}  // namespace hwsec::attacks
