// Branch prediction structures and their deliberately modeled weaknesses.
#include <gtest/gtest.h>

#include "sim/predictor.h"

namespace sim = hwsec::sim;

namespace {

TEST(Pht, TwoBitCounterHysteresis) {
  sim::PatternHistoryTable pht(64);
  const sim::VirtAddr pc = 0x1000;
  EXPECT_FALSE(pht.predict(pc)) << "starts weakly not-taken";
  pht.update(pc, true);
  EXPECT_TRUE(pht.predict(pc));
  pht.update(pc, true);
  pht.update(pc, false);  // one not-taken doesn't flip a strong counter.
  EXPECT_TRUE(pht.predict(pc));
  pht.update(pc, false);
  EXPECT_FALSE(pht.predict(pc));
}

TEST(Pht, AliasingAllowsCrossTraining) {
  sim::PatternHistoryTable pht(64);
  const sim::VirtAddr victim = 0x1000;
  const sim::VirtAddr congruent = victim + 64 * 4;  // same index.
  pht.update(congruent, true);
  pht.update(congruent, true);
  EXPECT_TRUE(pht.predict(victim))
      << "congruent branches share the counter (Spectre-PHT mistraining)";
}

TEST(Btb, StoresAndPredictsTargets) {
  sim::BranchTargetBuffer btb(256, /*tag_bits=*/0);
  EXPECT_FALSE(btb.predict(0x1000).has_value());
  btb.update(0x1000, 0x2000);
  const auto p = btb.predict(0x1000);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 0x2000u);
}

TEST(Btb, UntaggedAliasesAcrossAddressSpaces) {
  sim::BranchTargetBuffer btb(256, /*tag_bits=*/0);
  const sim::VirtAddr victim_branch = 0x4000;
  const sim::VirtAddr attacker_branch = victim_branch + 256 * 4;  // congruent.
  btb.update(attacker_branch, 0xBAD0);
  const auto p = btb.predict(victim_branch);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 0xBAD0u) << "untagged BTB: cross-context target injection (Spectre-BTB)";
}

TEST(Btb, TaggingDefeatsAliasing) {
  sim::BranchTargetBuffer btb(256, /*tag_bits=*/8);
  const sim::VirtAddr victim_branch = 0x4000;
  const sim::VirtAddr attacker_branch = victim_branch + 256 * 4;
  btb.update(attacker_branch, 0xBAD0);
  EXPECT_FALSE(btb.predict(victim_branch).has_value())
      << "tag bits must reject the congruent-but-different branch";
}

TEST(Rsb, LifoOrder) {
  sim::ReturnStackBuffer rsb(4);
  rsb.push(0x100);
  rsb.push(0x200);
  EXPECT_EQ(rsb.pop().value(), 0x200u);
  EXPECT_EQ(rsb.pop().value(), 0x100u);
}

TEST(Rsb, UnderflowServesStaleEntries) {
  sim::ReturnStackBuffer rsb(4);
  for (sim::VirtAddr v = 1; v <= 4; ++v) {
    rsb.push(v);
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rsb.pop().has_value());
  }
  const auto stale = rsb.pop();  // underflow: wraps into a written slot.
  ASSERT_TRUE(stale.has_value()) << "real RSBs wrap and serve stale slots (Spectre-RSB)";
  EXPECT_EQ(*stale, 4u);
}

TEST(Rsb, OverflowWrapsAround) {
  sim::ReturnStackBuffer rsb(2);
  rsb.push(1);
  rsb.push(2);
  rsb.push(3);  // overwrites 1.
  EXPECT_EQ(rsb.pop().value(), 3u);
  EXPECT_EQ(rsb.pop().value(), 2u);
  EXPECT_EQ(rsb.pop().value(), 3u) << "wrapped: slot of 1 was overwritten by 3";
}

TEST(Rsb, FlushEmptiesEverything) {
  sim::ReturnStackBuffer rsb(4);
  rsb.push(0x1);
  rsb.flush();
  EXPECT_FALSE(rsb.pop().has_value());
}

TEST(Predictor, DomainSwitchFlushIsOptIn) {
  sim::PredictorConfig vulnerable{.pht_entries = 64, .btb_entries = 64, .btb_tag_bits = 0,
                                  .rsb_depth = 4, .flush_on_domain_switch = false};
  sim::BranchPredictor bp(vulnerable);
  bp.btb().update(0x1000, 0x2000);
  bp.on_domain_switch();
  EXPECT_TRUE(bp.btb().predict(0x1000).has_value())
      << "without the mitigation, predictor state survives domain switches";

  sim::PredictorConfig mitigated = vulnerable;
  mitigated.flush_on_domain_switch = true;
  sim::BranchPredictor bp2(mitigated);
  bp2.btb().update(0x1000, 0x2000);
  bp2.rsb().push(0x3000);
  bp2.on_domain_switch();
  EXPECT_FALSE(bp2.btb().predict(0x1000).has_value());
  EXPECT_FALSE(bp2.rsb().pop().has_value());
}

}  // namespace
