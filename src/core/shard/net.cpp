#include "core/shard/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace hwsec::core::shard {

// ---- host discovery -----------------------------------------------------

namespace {

bool valid_host_chars(const std::string& host) {
  if (host.empty() || host.size() > 255) {
    return false;
  }
  for (const char c : host) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool parse_host(const std::string& element, HostSpec& out, std::string& error) {
  const std::size_t colon = element.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == element.size()) {
    error = "host element \"" + element + "\" must be host:port";
    return false;
  }
  const std::string host = element.substr(0, colon);
  const std::string port_str = element.substr(colon + 1);
  if (!valid_host_chars(host)) {
    error = "host element \"" + element + "\" has a malformed host name";
    return false;
  }
  unsigned long port = 0;
  for (const char c : port_str) {
    if (c < '0' || c > '9') {
      error = "host element \"" + element + "\" has a non-numeric port";
      return false;
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) {
      break;
    }
  }
  if (port == 0 || port > 65535) {
    error = "host element \"" + element + "\" port must be in [1, 65535]";
    return false;
  }
  out.host = host;
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

bool parse_hosts(const std::string& list, std::vector<HostSpec>& out, std::string& error) {
  out.clear();
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    const std::string element = list.substr(start, end - start);
    if (element.empty()) {
      error = "host list has an empty element";
      return false;
    }
    HostSpec host;
    if (!parse_host(element, host, error)) {
      return false;
    }
    out.push_back(std::move(host));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  if (out.empty()) {
    error = "host list is empty";
    return false;
  }
  return true;
}

std::vector<HostSpec> hosts_from_env(std::string& error) {
  std::vector<HostSpec> hosts;
  const char* value = std::getenv("HWSEC_SHARD_HOSTS");
  if (value == nullptr || *value == '\0') {
    return hosts;
  }
  if (!parse_hosts(value, hosts, error)) {
    error = "HWSEC_SHARD_HOSTS: " + error;
    hosts.clear();
  }
  return hosts;
}

// ---- TCP plumbing -------------------------------------------------------

int tcp_connect(const HostSpec& host, std::chrono::milliseconds timeout, std::string& error) {
  const std::string where = host.host + ":" + std::to_string(host.port);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const std::string port_str = std::to_string(host.port);
  if (const int rc = getaddrinfo(host.host.c_str(), port_str.c_str(), &hints, &info);
      rc != 0) {
    error = "resolve(" + where + "): " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  error = "connect(" + where + "): no usable address";
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = "socket(" + where + "): " + std::strerror(errno);
      continue;
    }
    // Bounded connect: non-blocking + poll, then read back SO_ERROR.
    fcntl(fd, F_SETFL, O_NONBLOCK);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      break;
    }
    if (errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = poll(&pfd, 1, static_cast<int>(timeout.count()));
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (ready > 0 && getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 &&
          so_error == 0) {
        break;
      }
      error = "connect(" + where + "): " +
              (ready <= 0 ? "timed out" : std::strerror(so_error));
    } else {
      error = "connect(" + where + "): " + std::strerror(errno);
    }
    ::close(fd);
    fd = -1;
  }
  freeaddrinfo(info);
  if (fd >= 0) {
    // Hand back a blocking fd; transports set their own flags. Shard
    // frames are small and latency-bound: disable Nagle coalescing.
    fcntl(fd, F_SETFL, fcntl(fd, F_GETFL) & ~O_NONBLOCK);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    error.clear();
  }
  return fd;
}

int tcp_listen(const std::string& address, std::uint16_t port, std::string& error) {
  const std::string bind_address = address.empty() ? "127.0.0.1" : address;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    error = "listen address \"" + bind_address + "\" is not a numeric IPv4 address";
    ::close(fd);
    return -1;
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error = "bind(" + bind_address + ":" + std::to_string(port) +
            "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (listen(fd, 16) != 0) {
    error = std::string("listen(): ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  fcntl(fd, F_SETFL, O_NONBLOCK);  // poll-loop friendly accepts.
  error.clear();
  return fd;
}

std::uint16_t tcp_local_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int tcp_accept(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) {
      continue;
    }
    return -1;
  }
}

// ---- handshake payloads -------------------------------------------------

namespace {

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

bool get_f64(Reader& r, double& v) {
  std::uint64_t bits = 0;
  if (!r.get_u64(bits)) {
    return false;
  }
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

void put_chaos(std::string& out, const ChaosConfig& chaos) {
  put_u64(out, chaos.seed);
  put_f64(out, chaos.throw_probability);
  put_f64(out, chaos.bad_alloc_probability);
  put_f64(out, chaos.delay_probability);
  put_u32(out, chaos.max_delay_us);
  put_f64(out, chaos.worker_kill_probability);
  put_f64(out, chaos.worker_stop_probability);
}

bool get_chaos(Reader& r, ChaosConfig& chaos) {
  return r.get_u64(chaos.seed) && get_f64(r, chaos.throw_probability) &&
         get_f64(r, chaos.bad_alloc_probability) && get_f64(r, chaos.delay_probability) &&
         r.get_u32(chaos.max_delay_us) && get_f64(r, chaos.worker_kill_probability) &&
         get_f64(r, chaos.worker_stop_probability);
}

}  // namespace

std::string encode_hello(const HelloPayload& p) {
  std::string out;
  put_u16(out, p.wire_version);
  put_u32(out, p.capabilities);
  put_u64(out, p.expect_digest);
  put_bytes(out, p.worker_name);
  return out;
}

bool decode_hello(const std::string& payload, HelloPayload& out) {
  Reader r(payload);
  return r.get_u16(out.wire_version) && r.get_u32(out.capabilities) &&
         r.get_u64(out.expect_digest) && r.get_bytes(out.worker_name) && r.exhausted();
}

std::string encode_welcome(const WelcomePayload& p) {
  std::string out;
  put_u64(out, p.campaign_digest);
  put_bytes(out, p.spec_json);
  put_u32(out, p.heartbeat_ms);
  put_u32(out, p.wall_clock_timeout_ms);
  put_chaos(out, p.chaos);
  return out;
}

bool decode_welcome(const std::string& payload, WelcomePayload& out) {
  Reader r(payload);
  return r.get_u64(out.campaign_digest) && r.get_bytes(out.spec_json) &&
         r.get_u32(out.heartbeat_ms) && r.get_u32(out.wall_clock_timeout_ms) &&
         get_chaos(r, out.chaos) && r.exhausted();
}

std::string encode_reject(const RejectPayload& p) {
  std::string out;
  put_bytes(out, p.reason);
  return out;
}

bool decode_reject(const std::string& payload, RejectPayload& out) {
  Reader r(payload);
  return r.get_bytes(out.reason) && r.exhausted();
}

// ---- handshake protocol -------------------------------------------------

bool handshake_accept(Transport& transport, const RemoteCampaignInfo& info,
                      std::chrono::milliseconds timeout, HelloPayload& hello_out,
                      std::string& error) {
  Frame frame;
  if (!transport.recv_blocking(frame, timeout)) {
    error = transport.corrupt() ? "handshake stream corrupt (bad magic/version/length)"
                                : "handshake timed out or peer closed before kHello";
    return false;
  }
  if (frame.type != FrameType::kHello) {
    error = "expected kHello, got frame type " +
            std::to_string(static_cast<unsigned>(frame.type));
    return false;
  }
  if (!decode_hello(frame.payload, hello_out)) {
    error = "malformed kHello payload";
    return false;
  }
  const auto reject = [&](std::string reason) {
    error = std::move(reason);
    transport.send(Frame{FrameType::kReject, encode_reject(RejectPayload{error})});
    return false;
  };
  if (hello_out.wire_version != kWireVersion) {
    std::ostringstream msg;
    msg << "wire version mismatch: worker speaks v" << hello_out.wire_version
        << ", supervisor speaks v" << kWireVersion;
    return reject(msg.str());
  }
  if ((hello_out.capabilities & kCapSpecRunner) == 0) {
    return reject("worker lacks the spec-runner capability this campaign requires");
  }
  if (info.spec_json.empty()) {
    return reject("campaign is not remote-capable (no spec to ship)");
  }
  if (hello_out.expect_digest != 0 && hello_out.expect_digest != info.digest) {
    std::ostringstream msg;
    msg << "campaign digest mismatch: worker expects " << std::hex << hello_out.expect_digest
        << ", this campaign is " << info.digest;
    return reject(msg.str());
  }
  WelcomePayload welcome;
  welcome.campaign_digest = info.digest;
  welcome.spec_json = info.spec_json;
  welcome.heartbeat_ms = info.heartbeat_ms;
  welcome.wall_clock_timeout_ms = info.wall_clock_timeout_ms;
  welcome.chaos = info.chaos;
  if (!transport.send(Frame{FrameType::kWelcome, encode_welcome(welcome)})) {
    error = "peer closed before the welcome could be sent";
    return false;
  }
  return true;
}

bool handshake_connect(Transport& transport, const HelloPayload& hello,
                       std::chrono::milliseconds timeout, WelcomePayload& welcome_out,
                       std::string& error) {
  if (!transport.send(Frame{FrameType::kHello, encode_hello(hello)})) {
    error = "supervisor closed before kHello could be sent";
    return false;
  }
  Frame frame;
  if (!transport.recv_blocking(frame, timeout)) {
    error = transport.corrupt() ? "handshake stream corrupt (bad magic/version/length)"
                                : "handshake timed out or supervisor closed";
    return false;
  }
  if (frame.type == FrameType::kReject) {
    RejectPayload reject;
    error = decode_reject(frame.payload, reject) ? "rejected by supervisor: " + reject.reason
                                                 : "rejected by supervisor (unreadable reason)";
    return false;
  }
  if (frame.type != FrameType::kWelcome) {
    error = "expected kWelcome, got frame type " +
            std::to_string(static_cast<unsigned>(frame.type));
    return false;
  }
  if (!decode_welcome(frame.payload, welcome_out)) {
    error = "malformed kWelcome payload";
    return false;
  }
  if (fnv1a64(welcome_out.spec_json) != welcome_out.campaign_digest) {
    error = "welcome spec bytes do not hash to the promised campaign digest";
    return false;
  }
  if (hello.expect_digest != 0 && welcome_out.campaign_digest != hello.expect_digest) {
    std::ostringstream msg;
    msg << "campaign digest mismatch: expected " << std::hex << hello.expect_digest
        << ", supervisor offered " << welcome_out.campaign_digest;
    error = msg.str();
    return false;
  }
  return true;
}

}  // namespace hwsec::core::shard
