// Translation lookaside buffer.
//
// Set-associative, virtually indexed, optionally tagged with an address
// space identifier (ASID). An untagged TLB must be flushed on every
// context switch — and a TLB that is *shared* between security domains
// without tagging is itself a side channel (Gras et al., the paper's
// [15]); the TLB attack in src/attacks exploits exactly that.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.h"

namespace hwsec::sim {

struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t ways = 4;
  bool asid_tagged = true;
  Cycle hit_latency = 1;
  Cycle walk_latency = 20;  ///< cost of a page walk on TLB miss.
};

using Asid = std::uint16_t;

struct TlbEntry {
  bool valid = false;
  std::uint32_t vpn = 0;
  std::uint32_t pfn = 0;
  Word flags = 0;
  Asid asid = 0;
  std::uint64_t lru_stamp = 0;
};

class Tlb {
 public:
  explicit Tlb(TlbConfig config);

  const TlbConfig& config() const { return config_; }

  /// Lookup; refreshes LRU on hit.
  std::optional<TlbEntry> lookup(VirtAddr va, Asid asid);

  /// Non-destructive presence check, used by the TLB side-channel attack
  /// (which in reality infers presence from latency; tests use this to
  /// validate the latency signal).
  bool present(VirtAddr va, Asid asid) const;

  /// Inserts a translation (LRU replacement within the set).
  void insert(VirtAddr va, PhysAddr pa, Word flags, Asid asid);

  /// Invalidates one page's entry across all ASIDs (INVLPG analogue).
  void invalidate_page(VirtAddr va);

  /// Invalidates all entries of one ASID.
  void invalidate_asid(Asid asid);

  /// Full flush.
  void flush();

  /// Restricts `asid` to ways [first_way, first_way + num_ways) — the TLB
  /// partitioning defense against cross-context TLB occupancy channels
  /// (Gras et al.). Entries outside the new partition are invalidated.
  /// num_ways == 0 removes the restriction.
  void set_way_partition(Asid asid, std::uint32_t first_way, std::uint32_t num_ways);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  std::uint32_t set_index(VirtAddr va) const {
    // All stock profiles use a power-of-two set count, masked; fall back to
    // modulo for exotic hand-built configs (set_mask_ == 0 then).
    const std::uint32_t vpn = va >> kPageShift;
    return set_mask_ != 0 || num_sets_ == 1 ? (vpn & set_mask_) : vpn % num_sets_;
  }

  /// Monotonic counter bumped whenever a valid entry is dropped, displaced
  /// or the hit predicate changes (way partitions, flushes). Same contract
  /// as Cache::removal_epoch(): while unchanged, an entry observed valid at
  /// an index is still there, same vpn/pfn/flags/asid.
  std::uint64_t removal_epoch() const { return removal_epoch_; }

  /// Locates the entry index that lookup(va, asid) would hit, or nullopt if
  /// it would miss. Read-only (no LRU refresh, no counters).
  std::optional<std::uint32_t> find_index(VirtAddr va, Asid asid) const;

  /// Entry contents by index (for memo arming). Caller guarantees the index
  /// came from find_index() under an unchanged removal_epoch().
  const TlbEntry& entry_at(std::uint32_t index) const { return entries_[index]; }

  /// Replays the side effects of a hit on the entry at `index`: LRU stamp
  /// refresh and the hit counter — bit-identical to lookup()'s hit path.
  void repeat_hit(std::uint32_t index) {
    entries_[index].lru_stamp = ++clock_;
    ++hits_;
  }

 private:
  struct WayRange {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };
  WayRange ways_for(Asid asid) const;

  TlbConfig config_;
  std::uint32_t num_sets_ = 1;
  std::uint32_t set_mask_ = 0;  ///< num_sets - 1 when power of two, else 0.
  std::uint64_t removal_epoch_ = 0;
  std::vector<TlbEntry> entries_;
  /// Way partitions as a flat table indexed by Asid; count == 0 (and any
  /// id beyond the table) means "unrestricted". Same flat-LUT idiom as
  /// Cache::partition_lut_ — lookup() runs on the translation hot path.
  std::vector<WayRange> partition_lut_;
  std::uint32_t partitions_installed_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hwsec::sim
