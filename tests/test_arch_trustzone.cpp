// TrustZone and Sanctuary models (the mobile §3.2 pair).
#include <gtest/gtest.h>

#include "arch/sanctuary.h"
#include "arch/trustzone.h"
#include "sim/dma.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;

namespace {

tee::EnclaveImage ta_image(const std::string& name = "trusted-app") {
  tee::EnclaveImage i;
  i.name = name;
  i.code = {0x7A};
  i.secret = {'t', 'z'};
  return i;
}

class TrustZoneTest : public ::testing::Test {
 protected:
  TrustZoneTest() : machine_(sim::MachineProfile::mobile(), 41), tz_(machine_) {}

  sim::Machine machine_;
  arch::TrustZone tz_;
};

TEST_F(TrustZoneTest, UnsignedImageIsRejected) {
  EXPECT_EQ(tz_.create_enclave(ta_image()).error, tee::EnclaveError::kVerificationFailed)
      << "without the vendor trust relationship, nothing deploys";
}

TEST_F(TrustZoneTest, SingleEnclaveOnly) {
  tz_.vendor_sign(ta_image("a"));
  tz_.vendor_sign(ta_image("b"));
  ASSERT_TRUE(tz_.create_enclave(ta_image("a")).ok());
  EXPECT_EQ(tz_.create_enclave(ta_image("b")).error, tee::EnclaveError::kCapacityExceeded)
      << "TrustZone provides exactly one enclave — the secure world";
}

TEST_F(TrustZoneTest, NormalWorldCannotTouchSecureRam) {
  tz_.vendor_sign(ta_image());
  const auto created = tz_.create_enclave(ta_image());
  const tee::EnclaveInfo* info = tz_.enclave(created.value);
  const auto r = machine_.bus().cpu_read(0, arch::kOsDomain, sim::Privilege::kSupervisor,
                                         info->base);
  EXPECT_EQ(r.fault, sim::Fault::kSecurityViolation);
  // Secure world reads fine.
  const auto s = machine_.bus().cpu_read(0, arch::kSecureWorldDomain,
                                         sim::Privilege::kMachine, info->base);
  EXPECT_EQ(s.fault, sim::Fault::kNone);
}

TEST_F(TrustZoneTest, DmaRegionAssignmentFiltersDevices) {
  tz_.vendor_sign(ta_image());
  const auto created = tz_.create_enclave(ta_image());
  const tee::EnclaveInfo* info = tz_.enclave(created.value);
  sim::DmaDevice evil(machine_.bus(), arch::kUntrustedDeviceDomain, "evil");
  EXPECT_TRUE(evil.exfiltrate(info->base, 8).empty()) << "TZASC vetoes normal-world DMA";
  sim::DmaDevice secure_dev(machine_.bus(), arch::kSecureDeviceDomain, "fingerprint");
  EXPECT_EQ(secure_dev.exfiltrate(info->base, 8).size(), 8u)
      << "secure-world-assigned devices reach secure RAM (secure channels)";
}

TEST_F(TrustZoneTest, DeviceRegionAssignmentProtectsPeripheralBuffers) {
  const sim::PhysAddr buffer = machine_.alloc_frame();
  machine_.memory().write32(buffer, 0x5EC0DE);
  tz_.assign_device_region(buffer, 1);
  EXPECT_EQ(machine_.bus().cpu_read(0, arch::kOsDomain, sim::Privilege::kSupervisor, buffer)
                .fault,
            sim::Fault::kSecurityViolation);
  EXPECT_EQ(machine_.bus()
                .cpu_read(0, arch::kSecureWorldDomain, sim::Privilege::kMachine, buffer)
                .value,
            0x5EC0DEu);
}

TEST_F(TrustZoneTest, SecureWorldServiceRunsWithSecureDomain) {
  tz_.vendor_sign(ta_image());
  const auto created = tz_.create_enclave(ta_image());
  std::string read_back;
  EXPECT_EQ(tz_.call_enclave(created.value, 0,
                             [&read_back](tee::EnclaveContext& ctx) {
                               read_back.push_back(static_cast<char>(ctx.read8(1)));
                               read_back.push_back(static_cast<char>(ctx.read8(2)));
                             }),
            tee::EnclaveError::kOk);
  EXPECT_EQ(read_back, "tz");
  // After the SMC return, the core is back in the normal world.
  EXPECT_EQ(machine_.cpu(0).domain(), arch::kOsDomain);
}

TEST_F(TrustZoneTest, NoCacheMaintenanceOnWorldSwitch) {
  tz_.vendor_sign(ta_image());
  const auto created = tz_.create_enclave(ta_image());
  const tee::EnclaveInfo* info = tz_.enclave(created.value);
  tz_.call_enclave(created.value, 0, [](tee::EnclaveContext& ctx) { ctx.read8(0); });
  EXPECT_TRUE(machine_.caches().in_llc(info->base))
      << "secure-world lines stay in the shared cache (the TruSpy condition)";
}

TEST_F(TrustZoneTest, NoAttestationProtocol) {
  tz_.vendor_sign(ta_image());
  const auto created = tz_.create_enclave(ta_image());
  EXPECT_EQ(tz_.attest(created.value, tee::Nonce{}).error, tee::EnclaveError::kUnsupported);
}

class SanctuaryTest : public ::testing::Test {
 protected:
  SanctuaryTest() : machine_(sim::MachineProfile::mobile(), 42), sanctuary_(machine_) {}

  sim::Machine machine_;
  arch::Sanctuary sanctuary_;
};

TEST_F(SanctuaryTest, ManyEnclavesWithoutVendorTrust) {
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(sanctuary_.create_enclave(ta_image("sa" + std::to_string(i))).ok())
        << "Sanctuary removes both the capacity and the signing bottleneck";
  }
  EXPECT_EQ(sanctuary_.enclave_count(), 5u);
}

TEST_F(SanctuaryTest, SaMemoryBoundToItsDomain) {
  const auto a = sanctuary_.create_enclave(ta_image("a"));
  const auto b = sanctuary_.create_enclave(ta_image("b"));
  const tee::EnclaveInfo* ia = sanctuary_.enclave(a.value);
  const tee::EnclaveInfo* ib = sanctuary_.enclave(b.value);
  // OS cannot read SA memory; SA cannot read the other SA's memory.
  EXPECT_EQ(machine_.bus().cpu_read(0, arch::kOsDomain, sim::Privilege::kSupervisor,
                                    ia->base).fault,
            sim::Fault::kSecurityViolation);
  EXPECT_EQ(machine_.bus().cpu_read(1, ia->domain, sim::Privilege::kUser, ib->base).fault,
            sim::Fault::kSecurityViolation);
  EXPECT_EQ(machine_.bus().cpu_read(1, ia->domain, sim::Privilege::kUser, ia->base).fault,
            sim::Fault::kNone);
}

TEST_F(SanctuaryTest, SaMemoryExcludedFromSharedCache) {
  const auto created = sanctuary_.create_enclave(ta_image());
  const tee::EnclaveInfo* info = sanctuary_.enclave(created.value);
  sanctuary_.call_enclave(created.value, 0, [](tee::EnclaveContext& ctx) {
    ctx.read8(0);
    ctx.read8(0);
  });
  EXPECT_FALSE(machine_.caches().in_llc(info->base))
      << "the §4.1 defense: SA lines never reach the shared cache";
  // And the private caches were flushed on exit.
  EXPECT_FALSE(machine_.caches().in_l1d(sanctuary_.config().sanctuary_core, info->base));
}

TEST_F(SanctuaryTest, DmaIntoSaMemoryBlocked) {
  const auto created = sanctuary_.create_enclave(ta_image());
  const tee::EnclaveInfo* info = sanctuary_.enclave(created.value);
  sim::DmaDevice device(machine_.bus(), arch::kUntrustedDeviceDomain);
  EXPECT_TRUE(device.exfiltrate(info->base, 8).empty());
}

TEST_F(SanctuaryTest, ExecutionPinnedToSanctuaryCore) {
  const auto created = sanctuary_.create_enclave(ta_image());
  sim::CoreId observed = 0xFF;
  sanctuary_.call_enclave(created.value, /*requested core=*/3,
                          [&observed](tee::EnclaveContext& ctx) { observed = ctx.core(); });
  EXPECT_EQ(observed, sanctuary_.config().sanctuary_core);
}

TEST_F(SanctuaryTest, AttestationViaVendorPrimitivesVerifies) {
  const auto created = sanctuary_.create_enclave(ta_image());
  tee::Nonce nonce{};
  nonce[2] = 0x5A;
  const auto report = sanctuary_.attest(created.value, nonce);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(tee::verify_report(sanctuary_.report_verification_key(), report.value, nonce));
}

TEST_F(SanctuaryTest, DestroyRestoresNormalMemory) {
  const auto created = sanctuary_.create_enclave(ta_image());
  const sim::PhysAddr base = sanctuary_.enclave(created.value)->base;
  sanctuary_.destroy_enclave(created.value);
  EXPECT_EQ(machine_.bus().cpu_read(0, arch::kOsDomain, sim::Privilege::kSupervisor, base)
                .fault,
            sim::Fault::kNone);
}

}  // namespace
