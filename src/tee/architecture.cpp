#include "tee/architecture.h"

namespace hwsec::tee {

std::string to_string(TcbType t) {
  switch (t) {
    case TcbType::kHardwareOnly: return "hardware-only";
    case TcbType::kHardwareAndMicrocode: return "hardware+microcode";
    case TcbType::kMonitor: return "monitor-software";
    case TcbType::kSecureWorldSoftware: return "secure-world-software";
    case TcbType::kVendorPrimitives: return "vendor-primitives";
    case TcbType::kRomLoader: return "ROM/loader";
  }
  return "?";
}

std::string to_string(DmaDefense d) {
  switch (d) {
    case DmaDefense::kNone: return "none";
    case DmaDefense::kRangeFilter: return "range-filter";
    case DmaDefense::kEncryptedMemory: return "encrypted-memory";
    case DmaDefense::kRegionAssignment: return "region-assignment";
  }
  return "?";
}

std::string to_string(CacheDefense c) {
  switch (c) {
    case CacheDefense::kNone: return "none";
    case CacheDefense::kLlcPartitioning: return "LLC-partitioning";
    case CacheDefense::kExclusionAndFlush: return "exclusion+flush";
    case CacheDefense::kNoSharedCaches: return "no-shared-caches";
  }
  return "?";
}

std::string to_string(AttestationSupport a) {
  switch (a) {
    case AttestationSupport::kNone: return "none";
    case AttestationSupport::kLocal: return "local";
    case AttestationSupport::kRemote: return "remote";
    case AttestationSupport::kLocalAndRemote: return "local+remote";
  }
  return "?";
}

std::uint8_t EnclaveContext::read8(std::uint32_t offset) {
  // Full bus path: firewall checks, cache fill with the enclave's domain
  // tag, and the memory-encryption transform (SGX stores ciphertext in
  // DRAM; the CPU path decrypts).
  const auto r = machine_->bus().cpu_read8(core_, info_->domain,
                                           hwsec::sim::Privilege::kUser, phys(offset));
  return static_cast<std::uint8_t>(r.value);
}

void EnclaveContext::write8(std::uint32_t offset, std::uint8_t value) {
  machine_->bus().cpu_write8(core_, info_->domain, hwsec::sim::Privilege::kUser, phys(offset),
                             value);
}

hwsec::sim::PhysAddr EnclaveContext::phys(std::uint32_t offset) const {
  return info_->phys_of(offset);
}

Expected<AttestationReport> Architecture::probe_attestation(const Nonce& nonce) {
  EnclaveImage probe;
  probe.name = "attestation-probe";
  probe.code = {0xde, 0xad, 0xbe, 0xef};
  const auto created = create_enclave(probe);
  if (!created.ok()) {
    return {.value = {}, .error = created.error};
  }
  auto report = attest(created.value, nonce);
  destroy_enclave(created.value);
  return report;
}

bool Architecture::attestation_round_trip(const Nonce& nonce) {
  const auto report = probe_attestation(nonce);
  if (!report.ok()) {
    return false;
  }
  const auto key = report_verification_key();
  return !key.empty() && verify_report(key, report.value, nonce);
}

const EnclaveInfo* Architecture::enclave(EnclaveId id) const {
  const auto it = enclaves_.find(id);
  return it == enclaves_.end() ? nullptr : &it->second;
}

EnclaveInfo& Architecture::register_enclave(EnclaveInfo info) {
  info.id = next_id_++;
  auto [it, inserted] = enclaves_.emplace(info.id, std::move(info));
  return it->second;
}

EnclaveInfo* Architecture::find_enclave(EnclaveId id) {
  auto it = enclaves_.find(id);
  return it == enclaves_.end() ? nullptr : &it->second;
}

void Architecture::unregister_enclave(EnclaveId id) { enclaves_.erase(id); }

std::uint32_t Architecture::image_pages(const EnclaveImage& image) {
  const std::size_t bytes = image.code.size() + image.secret.size();
  const std::uint32_t content_pages =
      static_cast<std::uint32_t>((bytes + hwsec::sim::kPageSize - 1) / hwsec::sim::kPageSize);
  return std::max(1u, content_pages) + image.heap_pages;
}

void Architecture::load_image(const EnclaveImage& image, const EnclaveInfo& info) {
  for (std::uint32_t p = 0; p < info.pages; ++p) {
    machine_->memory().fill(info.phys_of(p * hwsec::sim::kPageSize), hwsec::sim::kPageSize, 0);
  }
  std::uint32_t offset = 0;
  for (std::uint8_t byte : image.code) {
    machine_->memory().write8(info.phys_of(offset++), byte);
  }
  for (std::uint8_t byte : image.secret) {
    machine_->memory().write8(info.phys_of(offset++), byte);
  }
}

}  // namespace hwsec::tee
