#!/usr/bin/env bash
# Smoke-runs every experiment binary (tables print; the google-benchmark
# timing loops are skipped via --benchmark_filter=skip) and produces the
# campaign-engine scaling record BENCH_campaign.json.
#
# Hardened for unattended CI use: each binary runs under a wall-clock
# timeout, a failing or hanging binary is reported and counted instead of
# silently truncating the sweep, and the script exits non-zero if any
# experiment failed.
#
# Usage: bench/run_all.sh [build-dir]   (default: build)
# Knobs: HWSEC_CAMPAIGN_TRIALS  trials per scaling run (default 400)
#        HWSEC_SHARD_TRIALS     trials per sharded run (default >= 1024)
#        HWSEC_BENCH_JSON       output path for BENCH_campaign.json
#        HWSEC_STREAM_TRACES    streaming-SCA campaign size (default 10^6)
#        HWSEC_STREAM_JSON      output path for BENCH_sca_streaming.json
#        HWSEC_BENCH_TIMEOUT    per-binary timeout in seconds (default 900)
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
TIMEOUT_SECS="${HWSEC_BENCH_TIMEOUT:-900}"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found — build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# coreutils timeout is present everywhere we run CI; degrade gracefully
# (no wall-clock guard) where it is missing rather than failing outright.
if command -v timeout >/dev/null 2>&1; then
  run_guarded() { timeout --signal=KILL "$TIMEOUT_SECS" "$@"; }
else
  echo "warning: 'timeout' not found; benches run without a wall-clock guard" >&2
  run_guarded() { "$@"; }
fi

BENCHES=(
  bench_fig1_matrix
  bench_sec3_architectures
  bench_sec41_cache_attacks
  bench_sec41_defenses
  bench_sec41_other_channels
  bench_sec42_spectre
  bench_sec42_meltdown_foreshadow
  bench_sec5_power_sca
  bench_sec5_fault
  bench_sec5_clkscrew
  bench_sim_microbench
  bench_conclusion_advisor
  bench_campaign
  bench_sca_streaming
  bench_service
)

failures=0
failed_names=()
for b in "${BENCHES[@]}"; do
  echo "==== $b ===="
  rc=0
  run_guarded "$BENCH_DIR/$b" --benchmark_filter=skip || rc=$?
  if [ "$rc" -ne 0 ]; then
    if [ "$rc" -ge 124 ]; then
      echo "FAIL: $b timed out or was killed (exit $rc, limit ${TIMEOUT_SECS}s)" >&2
    else
      echo "FAIL: $b exited with status $rc" >&2
    fi
    failures=$((failures + 1))
    failed_names+=("$b")
  fi
  echo
done

if [ "$failures" -ne 0 ]; then
  echo "== $failures experiment(s) FAILED: ${failed_names[*]}" >&2
  exit 1
fi
echo "== all ${#BENCHES[@]} experiments passed (BENCH_campaign.json: ${HWSEC_BENCH_JSON:-BENCH_campaign.json})"
