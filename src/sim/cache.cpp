#include "sim/cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace hwsec::sim {

std::string to_string(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru: return "LRU";
    case ReplacementPolicy::kTreePlru: return "tree-PLRU";
    case ReplacementPolicy::kRandom: return "random";
  }
  return "?";
}

namespace {

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2_pow2(std::uint32_t v) {
  std::uint32_t shift = 0;
  while ((1u << shift) < v) {
    ++shift;
  }
  return shift;
}

}  // namespace

Cache::Cache(CacheConfig config, std::uint64_t rng_seed)
    : config_(std::move(config)), rng_(rng_seed) {
  if (!is_pow2(config_.line_size)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (config_.ways == 0 || config_.size_bytes % (config_.ways * config_.line_size) != 0) {
    throw std::invalid_argument("cache size must be a multiple of ways*line_size");
  }
  if (!is_pow2(config_.num_sets())) {
    throw std::invalid_argument("number of cache sets must be a power of two");
  }
  if (config_.ways > 32) {
    throw std::invalid_argument("at most 32 ways supported (valid-way bitmask)");
  }
  line_shift_ = log2_pow2(config_.line_size);
  set_mask_ = config_.num_sets() - 1;
  lines_.assign(static_cast<std::size_t>(config_.num_sets()) * config_.ways, Line{});
  valid_ways_.assign(config_.num_sets(), 0);
  occupied_sets_.assign((config_.num_sets() + 63) / 64, 0);
  plru_bits_.assign(config_.num_sets(), 0);
}

Cache::WayRange Cache::ways_for(DomainId domain) const {
  if (domain < partition_lut_.size() && partition_lut_[domain].count != 0) {
    return partition_lut_[domain];
  }
  return {0, config_.ways};
}

bool Cache::probe(PhysAddr addr) const {
  const PhysAddr base = addr & ~(config_.line_size - 1);
  const std::uint32_t set = set_index(addr);
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    const Line& line = line_at(set, w);
    if (line.valid && line.tag_base == base) {
      return true;
    }
  }
  return false;
}

bool Cache::probe_owned(PhysAddr addr, DomainId domain) const {
  const PhysAddr base = addr & ~(config_.line_size - 1);
  const std::uint32_t set = set_index(addr);
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    const Line& line = line_at(set, w);
    if (line.valid && line.tag_base == base && line.owner == domain) {
      return true;
    }
  }
  return false;
}

std::uint32_t Cache::flush_domain(DomainId domain) {
  coarse_dirty_ = true;  // touches arbitrary sets; journal can't cover it.
  ++removal_epoch_;
  std::uint32_t dropped = 0;
  for (std::uint32_t set = 0; set <= set_mask_; ++set) {
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      Line& line = line_at(set, w);
      if (line.valid && line.owner == domain) {
        line.valid = false;
        valid_ways_[set] &= ~(1u << w);
        mark_occupancy(set);
        --valid_lines_;
        ++dropped;
      }
    }
  }
  stats_.flushes += dropped;
  return dropped;
}

void Cache::flush_all() {
  coarse_dirty_ = true;
  ++removal_epoch_;
  for (Line& line : lines_) {
    line.valid = false;
  }
  std::fill(valid_ways_.begin(), valid_ways_.end(), 0u);
  std::fill(occupied_sets_.begin(), occupied_sets_.end(), std::uint64_t{0});
  valid_lines_ = 0;
  ++stats_.flushes;
}

void Cache::set_way_partition(DomainId domain, std::uint32_t first_way, std::uint32_t num_ways) {
  coarse_dirty_ = true;  // partition table + line sweep across all sets.
  ++removal_epoch_;      // the hit predicate (ways_for) changes shape.
  if (num_ways == 0) {
    if (domain < partition_lut_.size() && partition_lut_[domain].count != 0) {
      partition_lut_[domain] = {};
      --partitions_installed_;
    }
    return;
  }
  if (first_way + num_ways > config_.ways) {
    throw std::invalid_argument("way partition out of range");
  }
  if (domain >= partition_lut_.size()) {
    partition_lut_.resize(static_cast<std::size_t>(domain) + 1);
  }
  if (partition_lut_[domain].count == 0) {
    ++partitions_installed_;
  }
  partition_lut_[domain] = {first_way, num_ways};
  // Drop lines the domain holds outside its new partition: stale occupancy
  // in foreign ways would leak the domain's pre-partition footprint.
  for (std::uint32_t set = 0; set < config_.num_sets(); ++set) {
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      if (w >= first_way && w < first_way + num_ways) {
        continue;
      }
      Line& line = line_at(set, w);
      if (line.valid && line.owner == domain) {
        line.valid = false;
        valid_ways_[set] &= ~(1u << w);
        mark_occupancy(set);
        --valid_lines_;
      }
    }
  }
}

std::optional<std::uint32_t> Cache::find_way(PhysAddr addr, DomainId domain) const {
  const PhysAddr base = line_base(addr);
  const std::uint32_t set = set_index(addr);
  const WayRange range = ways_for(domain);
  for (std::uint32_t w = range.first; w < range.first + range.count; ++w) {
    const Line& line = line_at(set, w);
    if (line.valid && line.tag_base == base) {
      return (set << 8) | w;
    }
  }
  return std::nullopt;
}

void Cache::set_index_scramble(std::uint64_t key) {
  scramble_key_ = key;
  flush_all();  // old placements are meaningless under the new mapping.
}

void Cache::rekey(std::uint64_t new_key) { set_index_scramble(new_key); }

std::uint32_t Cache::occupancy(PhysAddr addr, DomainId domain) const {
  const std::uint32_t set = set_index(addr);
  std::uint32_t count = 0;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    const Line& line = line_at(set, w);
    if (line.valid && line.owner == domain) {
      ++count;
    }
  }
  return count;
}

const CacheStats& Cache::domain_stats(DomainId domain) const {
  return domain_slot(domain);  // zero-filled slot for unseen domains.
}

void Cache::reset_stats() {
  stats_ = {};
  per_domain_.clear();
}

void Cache::begin_set_tracking() {
  tracking_ = true;
  coarse_dirty_ = false;
  touched_lines_.clear();
  touched_epoch_.assign(lines_.size(), 0);
  epoch_ = 1;
}

void Cache::restore_from(const Cache& snap) {
  // removal_epoch_ stays monotonic across restores (never rolled back to
  // the snapshot's value): any fetch memo armed against pre-restore state
  // must observe a change, whichever restore path runs.
  const std::uint64_t epoch_after = removal_epoch_ + 1;
  if (!tracking_ || coarse_dirty_ || lines_.size() != snap.lines_.size()) {
    // `snap` was copied right after begin_set_tracking() on this cache, so
    // a full copy-assign also restores a clean, armed journal.
    *this = snap;
    removal_epoch_ = epoch_after;
    return;
  }
  for (const std::uint32_t index : touched_lines_) {
    Line& cur = lines_[index];
    const Line& old = snap.lines_[index];
    const std::uint32_t set = index / config_.ways;
    if (cur.valid != old.valid) {
      const std::uint32_t bit = 1u << (index - set * config_.ways);
      if (old.valid) {
        valid_ways_[set] |= bit;
        ++valid_lines_;
      } else {
        valid_ways_[set] &= ~bit;
        --valid_lines_;
      }
      mark_occupancy(set);
    }
    cur = old;
    if (config_.policy == ReplacementPolicy::kTreePlru) {
      plru_bits_[set] = snap.plru_bits_[set];  // dead state under LRU/random.
    }
  }
  removal_epoch_ = epoch_after;
  // Scalar and small per-domain state is cheap enough to restore always.
  partition_lut_ = snap.partition_lut_;
  partitions_installed_ = snap.partitions_installed_;
  clock_ = snap.clock_;
  scramble_key_ = snap.scramble_key_;
  rng_ = snap.rng_;
  stats_ = snap.stats_;
  per_domain_ = snap.per_domain_;
  // Re-arm the journal: an epoch bump invalidates all touched_epoch_
  // stamps without an array-wide clear.
  touched_lines_.clear();
  if (++epoch_ == 0) {
    std::fill(touched_epoch_.begin(), touched_epoch_.end(), 0u);
    epoch_ = 1;
  }
}

std::uint32_t Cache::choose_victim(std::uint32_t set, WayRange range) {
  assert(range.count > 0);
  // Invalid line first (lowest way index, as the linear scan used to pick),
  // regardless of policy. One bit-scan instead of walking the Line array.
  const std::uint32_t range_mask =
      (range.count >= 32 ? ~0u : ((1u << range.count) - 1u) << range.first);
  const std::uint32_t invalid = ~valid_ways_[set] & range_mask;
  if (invalid != 0) {
    return static_cast<std::uint32_t>(std::countr_zero(invalid));
  }
  switch (config_.policy) {
    case ReplacementPolicy::kLru: {
      std::uint32_t victim = range.first;
      std::uint64_t oldest = line_at(set, range.first).lru_stamp;
      for (std::uint32_t w = range.first + 1; w < range.first + range.count; ++w) {
        if (line_at(set, w).lru_stamp < oldest) {
          oldest = line_at(set, w).lru_stamp;
          victim = w;
        }
      }
      return victim;
    }
    case ReplacementPolicy::kTreePlru:
      return plru_victim(set, range);
    case ReplacementPolicy::kRandom:
      return range.first + static_cast<std::uint32_t>(rng_.below(range.count));
  }
  return range.first;
}

// Tree-PLRU over the full way array; when a partition restricts the
// candidate range we walk the tree but clamp the final leaf into range
// (real partitioned PLRU designs maintain sub-trees; clamping preserves
// the "approximately least recent" behaviour that matters for eviction-set
// experiments without modeling vendor-specific sub-tree layouts).
void Cache::touch_plru(std::uint32_t set, std::uint32_t way) {
  std::uint32_t& bits = plru_bits_[set];
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  std::uint32_t hi = config_.ways;
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (way < mid) {
      bits |= (1u << node);  // point away from the touched half.
      node = 2 * node + 1;
      hi = mid;
    } else {
      bits &= ~(1u << node);
      node = 2 * node + 2;
      lo = mid;
    }
  }
}

std::uint32_t Cache::plru_victim(std::uint32_t set, WayRange range) {
  const std::uint32_t bits = plru_bits_[set];
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  std::uint32_t hi = config_.ways;
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (bits & (1u << node)) {
      node = 2 * node + 1;
      hi = mid;
    } else {
      node = 2 * node + 2;
      lo = mid;
    }
  }
  if (lo < range.first) {
    return range.first;
  }
  if (lo >= range.first + range.count) {
    return range.first + range.count - 1;
  }
  return lo;
}

}  // namespace hwsec::sim
