#include "sca/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hwsec::sca {

MeanVar mean_variance(std::span<const double> xs) {
  MeanVar mv;
  mv.n = xs.size();
  if (mv.n == 0) {
    return mv;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  mv.mean = sum / static_cast<double>(mv.n);
  if (mv.n > 1) {
    double ss = 0.0;
    for (double x : xs) {
      const double d = x - mv.mean;
      ss += d * d;
    }
    mv.variance = ss / static_cast<double>(mv.n - 1);
  }
  return mv;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("pearson needs two equal series of length >= 2");
  }
  const std::size_t n = xs.size();
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

PointCorrelation correlate_hypothesis(const std::vector<Trace>& traces,
                                      std::span<const double> hypothesis) {
  PointCorrelation result;
  if (traces.size() != hypothesis.size() || traces.empty()) {
    throw std::invalid_argument("one hypothesis value per trace required");
  }
  const std::size_t points = traces.front().size();
  std::vector<double> column(traces.size());
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      column[t] = traces[t].at(p);
    }
    const double rho = std::abs(pearson(column, hypothesis));
    if (rho > result.max_abs_rho) {
      result.max_abs_rho = rho;
      result.best_point = p;
    }
  }
  return result;
}

namespace {

/// Per-point mean and variance over a population of equal-length traces.
void population_stats(const std::vector<Trace>& population, std::vector<double>& means,
                      std::vector<double>& vars) {
  const std::size_t points = population.front().size();
  means.assign(points, 0.0);
  vars.assign(points, 0.0);
  for (const Trace& t : population) {
    for (std::size_t p = 0; p < points; ++p) {
      means[p] += t[p];
    }
  }
  const double n = static_cast<double>(population.size());
  for (double& m : means) {
    m /= n;
  }
  if (population.size() > 1) {
    for (const Trace& t : population) {
      for (std::size_t p = 0; p < points; ++p) {
        const double d = t[p] - means[p];
        vars[p] += d * d;
      }
    }
    for (double& v : vars) {
      v /= (n - 1.0);
    }
  }
}

}  // namespace

double max_welch_t(const std::vector<Trace>& population_a,
                   const std::vector<Trace>& population_b) {
  if (population_a.size() < 2 || population_b.size() < 2) {
    throw std::invalid_argument("Welch t-test needs >= 2 traces per population");
  }
  std::vector<double> ma, va, mb, vb;
  population_stats(population_a, ma, va);
  population_stats(population_b, mb, vb);
  const std::size_t points = std::min(ma.size(), mb.size());
  const double na = static_cast<double>(population_a.size());
  const double nb = static_cast<double>(population_b.size());
  double max_t = 0.0;
  for (std::size_t p = 0; p < points; ++p) {
    const double denom = std::sqrt(va[p] / na + vb[p] / nb);
    if (denom <= 1e-12) {
      continue;
    }
    max_t = std::max(max_t, std::abs((ma[p] - mb[p]) / denom));
  }
  return max_t;
}

double max_snr(const std::vector<std::vector<Trace>>& classes) {
  std::vector<std::vector<double>> class_means;
  std::vector<std::vector<double>> class_vars;
  std::size_t points = 0;
  for (const auto& cls : classes) {
    if (cls.empty()) {
      continue;
    }
    std::vector<double> m, v;
    population_stats(cls, m, v);
    points = points == 0 ? m.size() : std::min(points, m.size());
    class_means.push_back(std::move(m));
    class_vars.push_back(std::move(v));
  }
  if (class_means.size() < 2 || points == 0) {
    return 0.0;
  }
  double best = 0.0;
  std::vector<double> point_means(class_means.size());
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t c = 0; c < class_means.size(); ++c) {
      point_means[c] = class_means[c][p];
    }
    const MeanVar signal = mean_variance(point_means);
    double noise = 0.0;
    for (std::size_t c = 0; c < class_vars.size(); ++c) {
      noise += class_vars[c][p];
    }
    noise /= static_cast<double>(class_vars.size());
    if (noise > 1e-12) {
      best = std::max(best, signal.variance / noise);
    }
  }
  return best;
}

double max_dom(const std::vector<Trace>& population_a, const std::vector<Trace>& population_b) {
  if (population_a.empty() || population_b.empty()) {
    return 0.0;
  }
  std::vector<double> ma, va, mb, vb;
  population_stats(population_a, ma, va);
  population_stats(population_b, mb, vb);
  const std::size_t points = std::min(ma.size(), mb.size());
  double best = 0.0;
  for (std::size_t p = 0; p < points; ++p) {
    best = std::max(best, std::abs(ma[p] - mb[p]));
  }
  return best;
}

}  // namespace hwsec::sca
