// Intel SGX model (paper §3.1, [10][16]).
//
// Modeled mechanisms:
//  * EPC (enclave page cache): a reserved physical range; every EPC frame
//    has an EPCM entry recording its owning enclave and the expected
//    virtual address (defeats OS remapping attacks).
//  * EPCM access control: a page-walk check on every core vetoes any
//    translation that resolves into EPC unless the executing domain is
//    the owning enclave *and* the virtual address matches the EPCM entry.
//  * MEE (memory encryption engine): a bus transform that keeps EPC
//    contents in DRAM encrypted; the CPU-side path decrypts, DMA sees
//    ciphertext — which is exactly SGX's DMA-attack story.
//  * Measurement & attestation: MRENCLAVE-style SHA-256 measurement,
//    local reports MAC'd with a platform key, and remote quotes signed by
//    an attestation key that lives *inside a quoting enclave's EPC
//    memory* — the asset Foreshadow extracts.
//  * Secure page swapping (EWB/ELDU): pages leave the EPC encrypted+MACed
//    and are reloaded on demand. ELDU decrypts through the cache, leaving
//    plaintext lines in L1 — the lever Foreshadow uses to make arbitrary
//    enclave pages L1TF-readable.
//
// Deliberate non-features, per the paper: no cache-side-channel defense
// of any kind (no partitioning, no flush-on-exit by default), and the
// untrusted OS keeps control of page tables, exception handling and
// scheduling. `Config::flush_l1_on_exit` models the post-Foreshadow
// microcode mitigation for the E6 ablation.
#pragma once

#include <optional>
#include <unordered_map>

#include "arch/domains.h"
#include "tee/architecture.h"

namespace hwsec::arch {

class Sgx final : public hwsec::tee::Architecture {
 public:
  struct Config {
    std::uint32_t epc_pages = 128;
    std::uint64_t mee_key_seed = 0x5EC2E7;
    /// Post-Foreshadow microcode mitigation: flush L1D on enclave exit.
    bool flush_l1_on_exit = false;
    /// Create the internal quoting enclave (holds the attestation key).
    bool provision_quoting_enclave = true;
  };

  explicit Sgx(hwsec::sim::Machine& machine) : Sgx(machine, Config{}) {}
  Sgx(hwsec::sim::Machine& machine, Config config);
  ~Sgx() override;

  const hwsec::tee::ArchitectureTraits& traits() const override;

  hwsec::tee::Expected<hwsec::tee::EnclaveId> create_enclave(
      const hwsec::tee::EnclaveImage& image) override;
  hwsec::tee::EnclaveError destroy_enclave(hwsec::tee::EnclaveId id) override;
  hwsec::tee::EnclaveError call_enclave(hwsec::tee::EnclaveId id, hwsec::sim::CoreId core,
                                        const Service& service) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> attest(
      hwsec::tee::EnclaveId id, const hwsec::tee::Nonce& nonce) override;
  std::vector<std::uint8_t> report_verification_key() const override;

  /// Remote attestation: report -> quote via the quoting enclave.
  hwsec::tee::Expected<hwsec::tee::Quote> quote(hwsec::tee::EnclaveId id,
                                                const hwsec::tee::Nonce& nonce);

  /// Local attestation (EREPORT/EGETKEY): a report from `source` bound to
  /// `target`, MACed with a key only `target` can derive. Only the target
  /// enclave can verify it — the building block of enclave-to-enclave
  /// channels (and of the quoting enclave itself).
  hwsec::tee::Expected<hwsec::tee::AttestationReport> local_report(
      hwsec::tee::EnclaveId source, hwsec::tee::EnclaveId target, const hwsec::tee::Nonce& nonce);
  /// Verification as the target enclave would do it (derives the same
  /// report key from its own identity).
  bool verify_local_report(hwsec::tee::EnclaveId target,
                           const hwsec::tee::AttestationReport& report,
                           const hwsec::tee::Nonce& nonce) const;

  /// Sealing (EGETKEY with the seal-key policy): encrypts + MACs `data`
  /// under a key bound to the enclave's measurement. Unsealing succeeds
  /// only for an enclave with the sealer's measurement — data survives
  /// enclave teardown and reboot, the paper's "persistently store the
  /// state of an enclave".
  struct SealedBlob {
    std::vector<std::uint8_t> ciphertext;
    hwsec::crypto::Sha256Digest mac{};
    hwsec::crypto::Sha256Digest sealer_measurement{};
  };
  hwsec::tee::Expected<SealedBlob> seal(hwsec::tee::EnclaveId id,
                                        std::span<const std::uint8_t> data);
  hwsec::tee::Expected<std::vector<std::uint8_t>> unseal(hwsec::tee::EnclaveId id,
                                                         const SealedBlob& blob);
  /// Public half of the attestation key, for verifiers.
  hwsec::crypto::u64 attestation_n() const { return attestation_key_.n; }
  hwsec::crypto::u64 attestation_e() const { return attestation_key_.e; }

  // -- facts the (untrusted) OS legitimately knows, used by attacks ------
  hwsec::sim::PhysAddr epc_base() const { return epc_base_; }
  std::uint32_t epc_pages() const { return config_.epc_pages; }
  bool in_epc(hwsec::sim::PhysAddr addr) const {
    return addr >= epc_base_ && addr < epc_base_ + config_.epc_pages * hwsec::sim::kPageSize;
  }

  /// Physical address of the quoting enclave's attestation-key bytes
  /// (the OS can derive this from EPC allocation bookkeeping).
  hwsec::sim::PhysAddr quoting_key_phys() const;
  const hwsec::tee::EnclaveInfo* quoting_enclave() const;

  /// EWB: evicts `page_index` of the enclave to normal memory
  /// (encrypted + MACed), freeing the EPC frame.
  hwsec::tee::EnclaveError ewb(hwsec::tee::EnclaveId id, std::uint32_t page_index);
  /// ELDU: reloads a swapped page. The decryption pipeline moves the
  /// plaintext through `core`'s L1D — observable via L1TF.
  hwsec::tee::EnclaveError eldu(hwsec::tee::EnclaveId id, std::uint32_t page_index,
                                hwsec::sim::CoreId core);

  /// Binds `page_index` of the enclave to linear address `va` in the
  /// EPCM (EADD records the linear address in real SGX). Once bound, any
  /// translation reaching that EPC frame through a DIFFERENT linear
  /// address is vetoed — the defense against OS page-remapping attacks.
  hwsec::tee::EnclaveError bind_va(hwsec::tee::EnclaveId id, std::uint32_t page_index,
                                   hwsec::sim::VirtAddr va);

  /// MEE keystream word for `addr` (exposed for tests that check DMA
  /// really sees ciphertext).
  hwsec::sim::Word mee_keystream(hwsec::sim::PhysAddr addr) const;

 private:
  struct EpcmEntry {
    hwsec::tee::EnclaveId owner = hwsec::tee::kInvalidEnclave;
    hwsec::sim::VirtAddr expected_va = 0;
    bool valid = false;
    bool swapped_out = false;
  };

  hwsec::sim::Fault epcm_walk_check(hwsec::sim::VirtAddr va, const hwsec::sim::Translation& t,
                                    hwsec::sim::AccessType type, hwsec::sim::Privilege priv,
                                    hwsec::sim::DomainId domain) const;
  std::optional<std::uint32_t> find_free_epc_run(std::uint32_t pages) const;
  void encrypt_range_in_place(hwsec::sim::PhysAddr base, std::uint32_t bytes);

  Config config_;
  hwsec::sim::PhysAddr epc_base_;
  std::vector<EpcmEntry> epcm_;
  hwsec::sim::DomainId next_domain_ = kFirstEnclaveDomain;
  std::vector<std::uint8_t> platform_key_;
  hwsec::crypto::RsaKeyPair attestation_key_;
  hwsec::tee::EnclaveId quoting_enclave_id_ = hwsec::tee::kInvalidEnclave;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> swapped_pages_;
};

}  // namespace hwsec::arch
