#include "sim/thread_pool.h"

#include <cstdlib>
#include <exception>
#include <string>

namespace hwsec::sim {

namespace {

/// True while this thread is executing inside a parallel_for region (as a
/// pool worker or as the participating caller). Nested parallel_for calls
/// from such a thread run inline, which keeps composed parallel layers
/// deadlock-free on a fixed-size pool.
thread_local bool tl_in_parallel_region = false;

}  // namespace

/// One parallel_for invocation: an atomic work cursor plus completion
/// bookkeeping. Lives on the caller's stack; workers detach before the
/// caller is allowed to return.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex m;
  std::condition_variable done_cv;
  std::size_t next = 0;       ///< cursor; guarded by m.
  std::size_t completed = 0;  ///< finished fn calls; guarded by m.
  int attached = 0;           ///< workers currently draining; guarded by m.
  /// Failure with the lowest index; guarded by m. Every index still runs
  /// after a failure, so at drain end this is the lowest-index failure of
  /// the whole batch — which exception the caller sees is therefore
  /// deterministic, independent of worker count and scheduling.
  std::exception_ptr error;
  std::size_t error_index = static_cast<std::size_t>(-1);
};

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers == 0 ? default_workers() : workers) {
  try {
    for (unsigned i = 1; i < workers_; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed mid-loop (EAGAIN on an absurd worker count or
    // an exhausted host). Letting joinable threads be destroyed would
    // std::terminate the whole process; wind the spawned ones down and let
    // the caller see the exception instead.
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

unsigned ThreadPool::default_workers() {
  if (const char* env = std::getenv("HWSEC_WORKERS")) {
    const int v = std::atoi(env);
    if (v > 0) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::drain(Batch& batch) {
  const bool was_in_region = tl_in_parallel_region;
  tl_in_parallel_region = true;
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lk(batch.m);
      if (batch.next >= batch.n) {
        break;
      }
      index = batch.next++;
    }
    try {
      (*batch.fn)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lk(batch.m);
      if (!batch.error || index < batch.error_index) {
        batch.error = std::current_exception();
        batch.error_index = index;
      }
    }
    {
      std::lock_guard<std::mutex> lk(batch.m);
      ++batch.completed;
    }
    batch.done_cv.notify_all();
  }
  tl_in_parallel_region = was_in_region;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Batch* batch = nullptr;
    std::uint64_t grabbed_epoch = 0;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      work_cv_.wait(lk, [this] { return stop_ || pending_ != nullptr; });
      if (stop_) {
        return;
      }
      batch = pending_;
      grabbed_epoch = epoch_;
      std::lock_guard<std::mutex> blk(batch->m);
      ++batch->attached;
    }
    drain(*batch);
    {
      // Notify under the lock: the moment attached hits 0 the caller may
      // destroy the (stack-allocated) batch, so no touch may follow the
      // unlock.
      std::lock_guard<std::mutex> blk(batch->m);
      --batch->attached;
      batch->done_cv.notify_all();
    }
    // Wait for the caller to retire this batch before looking for work
    // again, so an exhausted batch is not re-grabbed in a hot spin. The
    // epoch (not the pointer) is compared: a retired batch's stack slot can
    // be reused by the next publish.
    std::unique_lock<std::mutex> lk(mutex_);
    work_cv_.wait(lk, [this, grabbed_epoch] { return stop_ || epoch_ != grabbed_epoch; });
    if (stop_) {
      return;
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_ <= 1 || n == 1 || tl_in_parallel_region) {
    const bool was_in_region = tl_in_parallel_region;
    tl_in_parallel_region = true;
    try {
      for (std::size_t i = 0; i < n; ++i) {
        fn(i);
      }
    } catch (...) {
      tl_in_parallel_region = was_in_region;
      throw;
    }
    tl_in_parallel_region = was_in_region;
    return;
  }

  // One batch at a time; a second top-level caller blocks here until the
  // pool frees up (nested calls never reach this — they ran inline above).
  std::lock_guard<std::mutex> submit_lk(submit_mutex_);
  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    pending_ = &batch;
    ++epoch_;
  }
  work_cv_.notify_all();
  drain(batch);
  {
    // Retire the batch: no new workers may attach past this point.
    std::lock_guard<std::mutex> lk(mutex_);
    pending_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(batch.m);
    batch.done_cv.wait(lk, [&batch] { return batch.completed == batch.n && batch.attached == 0; });
    if (batch.error) {
      std::rethrow_exception(batch.error);
    }
  }
}

}  // namespace hwsec::sim
