#include "conformance/reference.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "sim/page_table.h"

namespace hwsec::conformance {

namespace sim = hwsec::sim;

// ---------------------------------------------------------------- memory --

std::vector<std::uint8_t>& ShadowMemory::materialize(std::uint32_t page_number) {
  auto it = overlay_.find(page_number);
  if (it == overlay_.end()) {
    const std::size_t base = static_cast<std::size_t>(page_number) * sim::kPageSize;
    std::vector<std::uint8_t> copy(sim::kPageSize);
    std::memcpy(copy.data(), baseline_.data() + base, sim::kPageSize);
    it = overlay_.emplace(page_number, std::move(copy)).first;
  }
  return it->second;
}

std::uint8_t ShadowMemory::read8(sim::PhysAddr addr) const {
  const auto it = overlay_.find(addr >> sim::kPageShift);
  if (it != overlay_.end()) {
    return it->second[addr & sim::kPageOffsetMask];
  }
  return baseline_[addr];
}

sim::Word ShadowMemory::read32(sim::PhysAddr addr) const {
  // Word reads in the oracle are always 4-byte aligned (the CPU raises
  // kAlignment first and the page walker reads aligned PTEs), so a word
  // never straddles a page.
  return static_cast<sim::Word>(read8(addr)) | (static_cast<sim::Word>(read8(addr + 1)) << 8) |
         (static_cast<sim::Word>(read8(addr + 2)) << 16) |
         (static_cast<sim::Word>(read8(addr + 3)) << 24);
}

void ShadowMemory::write32(sim::PhysAddr addr, sim::Word value) {
  std::vector<std::uint8_t>& page = materialize(addr >> sim::kPageShift);
  const std::uint32_t off = addr & sim::kPageOffsetMask;
  page[off] = static_cast<std::uint8_t>(value);
  page[off + 1] = static_cast<std::uint8_t>(value >> 8);
  page[off + 2] = static_cast<std::uint8_t>(value >> 16);
  page[off + 3] = static_cast<std::uint8_t>(value >> 24);
}

std::span<const std::uint8_t> ShadowMemory::page(std::uint32_t page_number) const {
  const auto it = overlay_.find(page_number);
  if (it != overlay_.end()) {
    return it->second;
  }
  return baseline_.subspan(static_cast<std::size_t>(page_number) * sim::kPageSize,
                           sim::kPageSize);
}

// ----------------------------------------------------------- interpreter --

ReferenceInterpreter::ReferenceInterpreter(const EnvSpec& spec,
                                           std::span<const std::uint8_t> baseline,
                                           std::vector<sim::Program> programs)
    : spec_(spec), mem_(baseline), programs_(std::move(programs)) {}

ReferenceInterpreter::Translated ReferenceInterpreter::translate(sim::VirtAddr va,
                                                                 sim::AccessType type) const {
  if (!spec_.has_mmu) {
    return {sim::Fault::kNone, va};
  }
  // Hardware page walk over the in-DRAM tables (sim/page_table.cpp walk),
  // then the MMU's permission checks, then the architecture's walk check —
  // the simulator's exact order. No TLB: the conformance contexts use one
  // ASID per domain, so a TLB hit can never yield a different verdict than
  // a fresh walk.
  const sim::Word l1 = mem_.read32(spec_.page_root + 4 * sim::AddressSpace::l1_index(va));
  if (!(l1 & sim::pte::kPresent)) {
    return {sim::Fault::kPageNotPresent, 0};
  }
  const sim::Word leaf =
      mem_.read32(sim::pte::frame(l1) + 4 * sim::AddressSpace::l2_index(va));
  const sim::Word flags = leaf & sim::pte::kFlagsMask;
  const sim::PhysAddr phys = sim::pte::frame(leaf) | (va & sim::kPageOffsetMask);

  if (!(flags & sim::pte::kPresent) || (flags & sim::pte::kReserved)) {
    return {sim::Fault::kPageNotPresent, 0};
  }
  if (ctx_.priv == sim::Privilege::kUser && !(flags & sim::pte::kUser)) {
    return {sim::Fault::kProtection, phys};
  }
  if (type == sim::AccessType::kWrite && !(flags & sim::pte::kWritable)) {
    return {sim::Fault::kProtection, phys};
  }
  if (type == sim::AccessType::kExecute && !(flags & sim::pte::kExecutable)) {
    return {sim::Fault::kProtection, phys};
  }
  if (spec_.protect_point == ProtectPoint::kWalkCheck &&
      spec_.in_protected(phys, ctx_.domain)) {
    return {sim::Fault::kSecurityViolation, 0};
  }
  return {sim::Fault::kNone, phys};
}

sim::Fault ReferenceInterpreter::bus_check(sim::PhysAddr addr, sim::AccessType) const {
  if (!mem_.contains(addr, 4)) {
    return sim::Fault::kBusError;
  }
  if (spec_.protect_point == ProtectPoint::kBus && spec_.in_protected(addr, ctx_.domain)) {
    return sim::Fault::kSecurityViolation;
  }
  return sim::Fault::kNone;
}

namespace {
const sim::MpuRegion* region_of(const std::vector<sim::MpuRegion>& regions,
                                sim::PhysAddr addr) {
  for (const sim::MpuRegion& r : regions) {
    if (r.contains(addr)) {
      return &r;
    }
  }
  return nullptr;
}
}  // namespace

sim::Fault ReferenceInterpreter::mpu_check(sim::PhysAddr addr, sim::AccessType type,
                                           sim::PhysAddr pc) const {
  const sim::MpuRegion* r = region_of(spec_.mpu_regions, addr);
  if (r == nullptr) {
    return sim::Fault::kNone;  // uncovered: default allow.
  }
  if (!r->gate_allows(pc)) {
    return sim::Fault::kSecurityViolation;
  }
  switch (type) {
    case sim::AccessType::kRead: return r->readable ? sim::Fault::kNone : sim::Fault::kProtection;
    case sim::AccessType::kWrite: return r->writable ? sim::Fault::kNone : sim::Fault::kProtection;
    case sim::AccessType::kExecute:
      return r->executable ? sim::Fault::kNone : sim::Fault::kProtection;
  }
  return sim::Fault::kNone;
}

sim::Fault ReferenceInterpreter::mpu_check_fetch(sim::PhysAddr addr, sim::PhysAddr from_pc) const {
  const sim::MpuRegion* r = region_of(spec_.mpu_regions, addr);
  if (r == nullptr) {
    return sim::Fault::kNone;
  }
  if (!r->executable) {
    return sim::Fault::kProtection;
  }
  const bool entering = !r->contains(from_pc);
  if (entering && !r->entry_points.empty() &&
      std::find(r->entry_points.begin(), r->entry_points.end(), addr) ==
          r->entry_points.end()) {
    return sim::Fault::kSecurityViolation;
  }
  return sim::Fault::kNone;
}

sim::Word ReferenceInterpreter::mem_read(sim::PhysAddr word_addr) const {
  const sim::Word raw = mem_.read32(word_addr);
  return spec_.in_mee(word_addr) ? mee_word(word_addr, raw) : raw;
}

void ReferenceInterpreter::mem_write(sim::PhysAddr word_addr, sim::Word v) {
  mem_.write32(word_addr, spec_.in_mee(word_addr) ? mee_word(word_addr, v) : v);
}

const sim::Instruction* ReferenceInterpreter::instruction_at(sim::VirtAddr pc) const {
  for (const sim::Program& p : programs_) {  // load order wins, like the CPU.
    if (const sim::Instruction* inst = p.at(pc)) {
      return inst;
    }
  }
  return nullptr;
}

void ReferenceInterpreter::ecall(sim::Word service, sim::VirtAddr pc) {
  res_.pc = pc + 4;  // trap entry; the service may override below.
  switch (service) {
    case kSvcEnterEnclave:
      set_reg(sim::R14, res_.pc);
      ctx_ = spec_.enclave;
      res_.pc = spec_.enclave_entry;
      break;
    case kSvcExitEnclave:
      ctx_ = spec_.normal;
      res_.pc = reg(sim::R14);
      break;
    case kSvcSupervisor:
      ctx_ = spec_.normal;
      ctx_.priv = sim::Privilege::kSupervisor;
      break;
    case kSvcUser:
      ctx_ = spec_.normal;
      break;
    default:
      break;
  }
}

void ReferenceInterpreter::raise(const FaultRecord& record) {
  res_.faults.push_back(record);
  if (record.type == sim::AccessType::kExecute || res_.faults.size() >= kFaultBudget) {
    res_.pc = spec_.halt_stub;
  } else {
    res_.pc = record.pc + 4;
  }
}

bool ReferenceInterpreter::step() {
  const sim::VirtAddr pc = res_.pc;

  // Fetch: translate, (bare) MPU fetch gate, bus bounds + firewall,
  // decoded-instruction lookup — the Cpu::step order.
  const Translated ftr = translate(pc, sim::AccessType::kExecute);
  if (ftr.fault != sim::Fault::kNone) {
    raise({ftr.fault, pc, pc, sim::AccessType::kExecute});
    return true;
  }
  if (!spec_.has_mmu) {
    if (const sim::Fault f = mpu_check_fetch(ftr.phys, prev_fetch_phys_);
        f != sim::Fault::kNone) {
      raise({f, pc, pc, sim::AccessType::kExecute});
      return true;
    }
  }
  if (const sim::Fault f = bus_check(ftr.phys, sim::AccessType::kExecute);
      f != sim::Fault::kNone) {
    raise({f, pc, pc, sim::AccessType::kExecute});
    return true;
  }
  const sim::Instruction* inst = instruction_at(pc);
  if (inst == nullptr) {
    raise({sim::Fault::kBusError, pc, pc, sim::AccessType::kExecute});
    return true;
  }
  prev_fetch_phys_ = ftr.phys;

  const sim::Word imm = static_cast<sim::Word>(inst->imm);
  auto alu = [&](sim::Word v) {
    set_reg(inst->rd, v);
    leak(v);
  };

  res_.pc = pc + 4;
  switch (inst->op) {
    case sim::Opcode::kNop:
      break;
    case sim::Opcode::kHalt:
      res_.pc = pc;  // Cpu::step returns before the pc update on halt.
      return false;
    case sim::Opcode::kLoadImm: alu(imm); break;
    case sim::Opcode::kAdd: alu(reg(inst->rs1) + reg(inst->rs2)); break;
    case sim::Opcode::kSub: alu(reg(inst->rs1) - reg(inst->rs2)); break;
    case sim::Opcode::kAnd: alu(reg(inst->rs1) & reg(inst->rs2)); break;
    case sim::Opcode::kOr: alu(reg(inst->rs1) | reg(inst->rs2)); break;
    case sim::Opcode::kXor: alu(reg(inst->rs1) ^ reg(inst->rs2)); break;
    case sim::Opcode::kShl: alu(reg(inst->rs1) << (reg(inst->rs2) & 31u)); break;
    case sim::Opcode::kShr: alu(reg(inst->rs1) >> (reg(inst->rs2) & 31u)); break;
    case sim::Opcode::kMul: alu(reg(inst->rs1) * reg(inst->rs2)); break;
    case sim::Opcode::kAddImm: alu(reg(inst->rs1) + imm); break;
    case sim::Opcode::kAndImm: alu(reg(inst->rs1) & imm); break;
    case sim::Opcode::kXorImm: alu(reg(inst->rs1) ^ imm); break;
    case sim::Opcode::kShlImm: alu(reg(inst->rs1) << (imm & 31u)); break;
    case sim::Opcode::kShrImm: alu(reg(inst->rs1) >> (imm & 31u)); break;

    case sim::Opcode::kLoad:
    case sim::Opcode::kLoadByte: {
      const bool byte_load = inst->op == sim::Opcode::kLoadByte;
      const sim::VirtAddr va = reg(inst->rs1) + imm;
      if (!byte_load && (va & 3u)) {
        raise({sim::Fault::kAlignment, pc, va, sim::AccessType::kRead});
        return true;
      }
      const Translated tr = translate(va, sim::AccessType::kRead);
      if (tr.fault != sim::Fault::kNone) {
        raise({tr.fault, pc, va, sim::AccessType::kRead});
        return true;
      }
      if (!spec_.has_mmu) {
        if (const sim::Fault f = mpu_check(tr.phys, sim::AccessType::kRead, prev_fetch_phys_);
            f != sim::Fault::kNone) {
          raise({f, pc, va, sim::AccessType::kRead});
          return true;
        }
      }
      const sim::PhysAddr wb = tr.phys & ~3u;  // byte reads check/read the word.
      if (const sim::Fault f = bus_check(wb, sim::AccessType::kRead); f != sim::Fault::kNone) {
        raise({f, pc, va, sim::AccessType::kRead});
        return true;
      }
      const sim::Word w = mem_read(wb);
      const sim::Word v = byte_load ? (w >> (8 * (tr.phys & 3u))) & 0xFFu : w;
      set_reg(inst->rd, v);
      leak(v);
      break;
    }

    case sim::Opcode::kStore:
    case sim::Opcode::kStoreByte: {
      const bool byte_store = inst->op == sim::Opcode::kStoreByte;
      const sim::VirtAddr va = reg(inst->rs1) + imm;
      if (!byte_store && (va & 3u)) {
        raise({sim::Fault::kAlignment, pc, va, sim::AccessType::kWrite});
        return true;
      }
      const Translated tr = translate(va, sim::AccessType::kWrite);
      if (tr.fault != sim::Fault::kNone) {
        raise({tr.fault, pc, va, sim::AccessType::kWrite});
        return true;
      }
      if (!spec_.has_mmu) {
        if (const sim::Fault f = mpu_check(tr.phys, sim::AccessType::kWrite, prev_fetch_phys_);
            f != sim::Fault::kNone) {
          raise({f, pc, va, sim::AccessType::kWrite});
          return true;
        }
      }
      // Byte stores are a read-modify-write of the containing word on the
      // bus; the firewall/bounds verdicts are type-agnostic here, so one
      // check of the word base mirrors both bus legs.
      const sim::PhysAddr wb = tr.phys & ~3u;
      if (const sim::Fault f = bus_check(wb, sim::AccessType::kWrite); f != sim::Fault::kNone) {
        raise({f, pc, va, sim::AccessType::kWrite});
        return true;
      }
      const sim::Word value = reg(inst->rs2);
      if (byte_store) {
        const std::uint32_t shift = 8 * (tr.phys & 3u);
        const sim::Word merged = (mem_read(wb) & ~(0xFFu << shift)) |
                                 ((value & 0xFFu) << shift);
        mem_write(wb, merged);
      } else {
        mem_write(wb, value);
      }
      // Attribute measured-region writes to the enclave by *execution
      // site*, not just the context label: on the embedded profiles the
      // MPU gate is PC-based, so code still running inside the trustlet
      // page after an exit-to-user service legitimately keeps its access
      // (Sancus/TrustLite semantics).
      const bool from_enclave_code =
          pc >= spec_.enclave_code && pc < spec_.enclave_code + sim::kPageSize;
      if ((ctx_.domain == spec_.enclave.domain || from_enclave_code) &&
          wb >= spec_.measured_start && wb < spec_.measured_end) {
        res_.enclave_wrote_measured = true;
      }
      leak(value);
      break;
    }

    case sim::Opcode::kBranch: {
      const sim::Word a = reg(inst->rs1);
      const sim::Word b = reg(inst->rs2);
      bool taken = false;
      switch (inst->cond) {
        case sim::BranchCond::kEq: taken = a == b; break;
        case sim::BranchCond::kNe: taken = a != b; break;
        case sim::BranchCond::kLt:
          taken = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
          break;
        case sim::BranchCond::kGe:
          taken = static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
          break;
        case sim::BranchCond::kLtu: taken = a < b; break;
        case sim::BranchCond::kGeu: taken = a >= b; break;
      }
      if (taken) {
        res_.pc = static_cast<sim::VirtAddr>(inst->imm);
      }
      break;
    }
    case sim::Opcode::kJump: res_.pc = static_cast<sim::VirtAddr>(inst->imm); break;
    case sim::Opcode::kJumpInd: res_.pc = reg(inst->rs1); break;
    case sim::Opcode::kCall:
      set_reg(sim::kLink, pc + 4);
      res_.pc = static_cast<sim::VirtAddr>(inst->imm);
      break;
    case sim::Opcode::kCallInd:
      set_reg(sim::kLink, pc + 4);
      res_.pc = reg(inst->rs1);
      break;
    case sim::Opcode::kRet: res_.pc = reg(sim::kLink); break;
    case sim::Opcode::kFence:
      break;
    case sim::Opcode::kClflush: {
      // The CPU only *translates* the flush address; no MPU or bus check,
      // and the flush itself is purely microarchitectural.
      const sim::VirtAddr va = reg(inst->rs1) + imm;
      const Translated tr = translate(va, sim::AccessType::kRead);
      if (tr.fault != sim::Fault::kNone) {
        raise({tr.fault, pc, va, sim::AccessType::kRead});
        return true;
      }
      break;
    }
    case sim::Opcode::kRdCycle:
      // Timing-dependent by definition: the generator never emits it and
      // the corpus loader rejects it, so reaching here is harness misuse.
      throw std::logic_error("reference interpreter: rdcycle is not oracle-predictable");
    case sim::Opcode::kEcall:
      ecall(imm, pc);
      break;
  }
  return true;
}

ReferenceResult ReferenceInterpreter::run(sim::VirtAddr entry, std::uint64_t budget) {
  res_ = ReferenceResult{};
  ctx_ = spec_.normal;
  prev_fetch_phys_ = 0;
  res_.pc = entry;
  while (res_.executed < budget) {
    const bool keep_going = step();
    ++res_.executed;  // faulting steps count, like Cpu::run.
    if (!keep_going) {
      res_.halted = true;
      break;
    }
  }
  res_.final_domain = ctx_.domain;
  res_.final_priv = ctx_.priv;
  return res_;
}

}  // namespace hwsec::conformance
