// E-service — campaign-as-a-service overhead: what does routing a campaign
// through hwsecd cost over calling run_campaign_resilient directly?
//
// Rows:
//   * direct_run        — run_spec() in-process, the baseline;
//   * daemon_roundtrip  — same spec submitted over the Unix socket to a
//                         live in-process Daemon: connect + submit + stream
//                         + terminal result (the full client experience);
//   * submit_ack        — control-plane only: connect + submit + ack +
//                         detach (what a fire-and-forget client pays);
//   * status_scrape     — one /status request against a populated daemon.
//
// The service contract says the daemon adds orchestration, never changes
// results — so each daemon_roundtrip iteration also asserts the returned
// digest equals the direct run's (a free bit-identity check under load).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/resilience/resilient.h"
#include "core/service/catalog.h"
#include "core/service/client.h"
#include "core/service/daemon.h"
#include "core/service/spec.h"

namespace core = hwsec::core;
namespace service = hwsec::core::service;

namespace {

constexpr std::uint64_t kTrials = 64;

service::CampaignSpec bench_spec(std::uint64_t seed) {
  service::CampaignSpec spec;
  spec.tenant = "bench";
  spec.name = "svc-overhead";
  spec.kind = "mix";
  spec.seed = seed;
  spec.trials = kTrials;
  spec.workers = 2;
  return spec;
}

/// One daemon shared by every benchmark in the binary, torn down at exit.
class BenchDaemon {
 public:
  static BenchDaemon& instance() {
    static BenchDaemon daemon;
    return daemon;
  }

  const std::string& socket() const { return socket_; }

 private:
  BenchDaemon() {
    socket_ = "/tmp/hwsec_bench_svc." + std::to_string(::getpid()) + ".sock";
    service::ServiceConfig config;
    config.unix_socket = socket_;
    config.executors = 2;
    config.max_queued_per_tenant = 1u << 20;  // the bench is the only tenant.
    config.progress_interval = std::chrono::milliseconds(5);
    daemon_ = std::make_unique<service::Daemon>(config);
    daemon_->start();
  }

  ~BenchDaemon() {
    daemon_->stop();
    std::remove(socket_.c_str());
  }

  std::string socket_;
  std::unique_ptr<service::Daemon> daemon_;
};

service::ServiceClient make_client() {
  service::ClientConfig config;
  config.unix_socket = BenchDaemon::instance().socket();
  return service::ServiceClient(config);
}

void BM_DirectRun(benchmark::State& state) {
  const service::CampaignSpec spec = bench_spec(1);
  for (auto _ : state) {
    auto outcomes = service::run_spec(spec, core::ResilienceConfig{});
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTrials));
}
BENCHMARK(BM_DirectRun)->Unit(benchmark::kMillisecond);

void BM_DaemonRoundTrip(benchmark::State& state) {
  const service::CampaignSpec spec = bench_spec(1);
  const std::string spec_json = service::encode_spec(spec);
  const std::uint64_t expect_digest =
      service::fnv1a64(service::encode_outcomes(service::run_spec(spec, core::ResilienceConfig{})));
  for (auto _ : state) {
    auto client = make_client();
    service::SubmittedPayload ack;
    service::JobResultPayload result;
    std::string error;
    if (!client.submit(spec_json, ack, error) || !ack.accepted ||
        !client.wait_result(result, error) || result.digest != expect_digest) {
      state.SkipWithError("daemon round-trip failed or diverged from direct run");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTrials));
}
BENCHMARK(BM_DaemonRoundTrip)->Unit(benchmark::kMillisecond);

void BM_SubmitAckDetach(benchmark::State& state) {
  service::CampaignSpec spec = bench_spec(2);
  spec.trials = 1;  // control-plane cost, not execution cost.
  const std::string spec_json = service::encode_spec(spec);
  for (auto _ : state) {
    auto client = make_client();
    service::SubmittedPayload ack;
    std::string error;
    if (!client.submit(spec_json, ack, error) || !ack.accepted) {
      state.SkipWithError("submit failed");
      return;
    }
    client.disconnect();
  }
}
BENCHMARK(BM_SubmitAckDetach)->Unit(benchmark::kMicrosecond);

void BM_StatusScrape(benchmark::State& state) {
  for (auto _ : state) {
    auto client = make_client();
    std::string json;
    std::string error;
    if (!client.status(json, error)) {
      state.SkipWithError("status scrape failed");
      return;
    }
    benchmark::DoNotOptimize(json);
  }
}
BENCHMARK(BM_StatusScrape)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
