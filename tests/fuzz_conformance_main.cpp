// Differential conformance fuzzer driver (CI smoke + opt-in long runs).
//
// Default: 10,000 generated programs spread across all eight architecture
// profiles, exit 0 iff divergence-free. Knobs:
//
//   HWSEC_FUZZ_TRIALS / --trials N     trial count (long-run mode: crank it)
//   HWSEC_FUZZ_SEED   / --seed S       campaign seed (default 20260806)
//   HWSEC_FUZZ_WORKERS/ --workers W    worker threads (0 = hardware default)
//   --corpus-dir DIR                   write minimized failing cases here
//   --arch NAME                        restrict to one architecture profile
//   --inject-bug[=skip-domain-check|silent-zero]
//       self-test mode: deliberately mis-install machine-side enforcement,
//       and exit 0 only if the fuzzer catches it AND shrinks a reproducer
//       to <= 20 instructions. CI runs this to prove the oracle has teeth.
#include <cstdio>
#include <cstring>
#include <string>

#include "conformance/corpus.h"
#include "conformance/fuzzer.h"

namespace conf = hwsec::conformance;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials N] [--seed S] [--workers W] [--corpus-dir DIR]\n"
               "          [--arch NAME] [--inject-bug[=skip-domain-check|silent-zero]]\n",
               argv0);
  return 2;
}

void print_failures(const conf::FuzzReport& report) {
  for (const conf::FuzzFailure& f : report.failures) {
    std::printf("FAIL arch=%s seed=0x%llx shrunk-to=%zu instructions%s%s\n",
                conf::to_string(f.verdict.arch).c_str(),
                static_cast<unsigned long long>(f.verdict.seed), f.instructions,
                f.corpus_path.empty() ? "" : " corpus=",
                f.corpus_path.c_str());
    for (const std::string& m : f.verdict.mismatches) {
      std::printf("  %s\n", m.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  conf::FuzzConfig config;
  config.seed = 20260806;
  config.trials = 10000;
  bool self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--trials") {
      const char* n = next();
      if (n == nullptr) return usage(argv[0]);
      config.trials = static_cast<std::size_t>(std::strtoull(n, nullptr, 10));
    } else if (arg == "--seed") {
      const char* n = next();
      if (n == nullptr) return usage(argv[0]);
      config.seed = std::strtoull(n, nullptr, 0);
    } else if (arg == "--workers") {
      const char* n = next();
      if (n == nullptr) return usage(argv[0]);
      config.workers = static_cast<unsigned>(std::strtoul(n, nullptr, 10));
    } else if (arg == "--corpus-dir") {
      const char* n = next();
      if (n == nullptr) return usage(argv[0]);
      config.corpus_dir = n;
    } else if (arg == "--arch") {
      const char* n = next();
      if (n == nullptr) return usage(argv[0]);
      config.archs = {conf::fuzz_arch_from_string(n)};
    } else if (arg == "--inject-bug" || arg.rfind("--inject-bug=", 0) == 0) {
      self_test = true;
      const std::string which =
          arg == "--inject-bug" ? "skip-domain-check" : arg.substr(std::strlen("--inject-bug="));
      if (which == "skip-domain-check") {
        config.inject = conf::BugInjection::kSkipDomainCheck;
      } else if (which == "silent-zero") {
        config.inject = conf::BugInjection::kSilentZero;
      } else {
        return usage(argv[0]);
      }
      config.trials = 64;  // one injected bug fires on nearly every trial.
    } else {
      return usage(argv[0]);
    }
  }
  config = conf::fuzz_config_from_env(config);

  const conf::FuzzReport report = conf::run_fuzz(config);
  print_failures(report);
  std::printf("conformance fuzz: %zu trials, %zu divergences, %zu secret leaks\n", report.trials,
              report.divergences, report.secret_leaks);

  if (self_test) {
    if (report.divergences == 0) {
      std::printf("SELF-TEST FAILED: injected bug was not detected\n");
      return 1;
    }
    for (const conf::FuzzFailure& f : report.failures) {
      if (f.instructions <= 20) {
        std::printf("self-test ok: injected bug caught and shrunk to %zu instructions\n",
                    f.instructions);
        return 0;
      }
    }
    std::printf("SELF-TEST FAILED: no failure shrank below 20 instructions\n");
    return 1;
  }
  return report.ok() ? 0 : 1;
}
