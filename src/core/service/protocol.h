// Payload codecs for the hwsecd campaign-service socket protocol.
//
// The transport is the shard frame codec (core/shard/wire.h): same 12-byte
// magic+version header, same EINTR-safe framing, same FrameBuffer
// reassembly — the service simply occupies frame-type ids 16+ of the
// shared space. What this file adds is the *payload* schemas:
//
//   client -> daemon   kSubmit(spec JSON) | kAttach(job id)
//                      kStatusRequest | kStopDaemon
//   daemon -> client   kSubmitted(ok, job id, message)
//                      kJobUpdate(job id, state, done, total)
//                      kJobResult(job id, state, digest, records, error)
//                      kStatusReply(status JSON) | kServiceError(message)
//
// A submit/attach connection receives kSubmitted/kJobUpdate... then one
// terminal kJobResult. The result record stream uses the SAME per-trial
// record schema the checkpoint layer and worker pipes use, so "the daemon
// returned exactly what a direct run produces" is a byte comparison — the
// fnv1a-64 digest over the encoded records makes that comparison cheap
// enough to assert in CI from two different machines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/service/catalog.h"
#include "core/shard/wire.h"

namespace hwsec::core::service {

/// Cap on a *request* frame payload read from an untrusted client socket.
/// Every client->daemon payload is tiny (a spec JSON document or a job id);
/// anything bigger is hostile or desynchronized, and the daemon must not
/// let a 12-byte header talk it into a multi-GiB allocation. Daemon->client
/// frames (result records) are read with the codec-level kMaxFramePayload
/// instead — the client trusts its own daemon.
inline constexpr std::uint32_t kMaxRequestPayload = 1u << 20;  // 1 MiB.

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,     ///< every slot has an outcome (some may be contained errors).
  kFailed = 3,   ///< the job as a whole failed (bad kind, fail-fast throw, drain).
};

const char* job_state_name(JobState state);

struct SubmittedPayload {
  bool accepted = false;
  std::string job_id;   ///< valid when accepted.
  std::string message;  ///< rejection reason when !accepted.
};

struct JobUpdatePayload {
  std::string job_id;
  JobState state = JobState::kQueued;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
};

struct JobResultPayload {
  std::string job_id;
  JobState state = JobState::kDone;
  std::uint64_t digest = 0;  ///< fnv1a64(records).
  std::string records;       ///< encode_outcomes() blob (empty when kFailed early).
  std::string error;         ///< failure reason when kFailed.
};

std::string encode_submitted(const SubmittedPayload& p);
bool decode_submitted(const std::string& payload, SubmittedPayload& out);

std::string encode_job_update(const JobUpdatePayload& p);
bool decode_job_update(const std::string& payload, JobUpdatePayload& out);

std::string encode_job_result(const JobResultPayload& p);
bool decode_job_result(const std::string& payload, JobResultPayload& out);

// ---- outcome record stream ---------------------------------------------

/// One wire-decoded trial outcome (schema mirrors CheckpointRecord plus
/// the skipped marker).
struct OutcomeRecord {
  std::uint64_t index = 0;
  bool ok = false;
  bool skipped = false;
  std::uint32_t attempts = 1;
  std::string payload;   ///< raw ServiceTrialResult bytes when ok.
  std::uint8_t kind = 0; ///< ErrorKind when failed.
  std::string detail;
  std::string machine;
};

/// Deterministic, order-preserving encoding of a full outcome vector.
/// from_checkpoint is deliberately NOT encoded: whether a slot was
/// restored is an execution-history detail, not part of the result, and
/// including it would break daemon-vs-direct byte identity after a resume.
std::string encode_outcomes(const ServiceOutcomes& outcomes);
bool decode_outcomes(const std::string& blob, std::vector<OutcomeRecord>& out);

/// FNV-1a 64 over arbitrary bytes (the digest clients compare).
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace hwsec::core::service
