// Compile-time gated observability probe for the Cpu commit path.
//
// The commit loop is the hottest code in the whole framework (~10^8
// simulated instructions/sec), so even a relaxed atomic load per run() is
// budgeted: the probe below compiles to *nothing* unless the build enables
// the HWSEC_OBS_CPU CMake option. With the option ON, the macro calls a
// process-global hook pointer (null until the observability layer installs
// its probe via obs::install_cpu_probe()), keeping the sim layer free of
// any dependency on core/obs — dependencies still flow strictly upward.
#pragma once

#include <cstdint>

#if defined(HWSEC_OBS_CPU)

namespace hwsec::sim {

/// Called with the number of instructions a Cpu::run() invocation
/// committed. Installed by obs::install_cpu_probe(); null = no probe.
using CpuCommitHook = void (*)(std::uint64_t committed);
extern CpuCommitHook g_cpu_commit_hook;

}  // namespace hwsec::sim

#define HWSEC_OBS_CPU_COMMITTED(n)                  \
  do {                                              \
    if (::hwsec::sim::g_cpu_commit_hook != nullptr) \
      ::hwsec::sim::g_cpu_commit_hook(n);           \
  } while (0)

#else

#define HWSEC_OBS_CPU_COMMITTED(n) \
  do {                             \
  } while (0)

#endif
