// Trace-collection harness for the §5 passive-SCA experiments: runs an
// instrumented AES victim under the simulated oscilloscope and returns a
// TraceSet ready for the sca:: CPA/DPA engines.
#pragma once

#include <cstdint>

#include "crypto/aes.h"
#include "sca/recorder.h"
#include "sca/trace.h"

namespace hwsec::attacks {

enum class AesVariant : std::uint8_t {
  kTTable,        ///< leaky baseline.
  kConstantTime,  ///< timing/cache-safe, still power-leaky.
  kMasked,        ///< first-order masked: the §5 masking countermeasure.
};

/// Encrypts `count` random plaintexts under `key` with the given variant,
/// recording one power trace per block through `recorder_config`.
hwsec::sca::TraceSet collect_aes_traces(const hwsec::crypto::AesKey& key, AesVariant variant,
                                        std::size_t count,
                                        const hwsec::sca::RecorderConfig& recorder_config,
                                        std::uint64_t seed = 31337);

/// One batch of the deterministic batched capture stream: `count` traces
/// whose plaintext/noise/mask randomness derives purely from
/// sim::derive_seed(seed, batch_index). collect_aes_traces_parallel is the
/// concatenation of these batches in index order; streaming drivers
/// (core/capture) call this directly so a bounded capture window feeds
/// accumulators without ever assembling the full TraceSet.
hwsec::sca::TraceSet collect_aes_trace_batch(const hwsec::crypto::AesKey& key,
                                             AesVariant variant, std::size_t batch_index,
                                             std::size_t count,
                                             const hwsec::sca::RecorderConfig& recorder_config,
                                             std::uint64_t seed = 31337);

/// Parallel capture: the campaign-engine port of collect_aes_traces.
/// `count` traces are produced in batches of `batch` per task; batch b
/// derives its plaintext/noise/mask seeds from sim::derive_seed(seed, b),
/// so the assembled TraceSet is bit-identical for any worker count
/// (including 1). The plaintext stream differs from the sequential
/// collector's — statistically equivalent, not sample-identical.
hwsec::sca::TraceSet collect_aes_traces_parallel(
    const hwsec::crypto::AesKey& key, AesVariant variant, std::size_t count,
    const hwsec::sca::RecorderConfig& recorder_config, std::uint64_t seed = 31337,
    std::size_t batch = 64, unsigned workers = 0);

/// Number of leak samples one encryption emits (used to size fixed-length
/// traces under jitter): 160 S-box leaks, plus two leading mask-load
/// leaks in the masked variant (samples 0/1 = m_in/m_out — the
/// second-order attack's combining points).
inline constexpr std::size_t kAesSamplesPerTrace = 162;

}  // namespace hwsec::attacks
