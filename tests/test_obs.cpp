// Observability layer: metrics registry (sharded counters, histogram merge
// under concurrent writers), ring-buffer tracer (Chrome trace_event JSON),
// heartbeat, and the contract that matters most — instrumentation must not
// perturb campaign determinism at any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attacks/transient/spectre.h"
#include "core/campaign.h"
#include "core/machine_pool.h"
#include "core/obs/heartbeat.h"
#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "core/resilience/resilient.h"
#include "sim/machine.h"
#include "sim/thread_pool.h"

namespace sim = hwsec::sim;
namespace core = hwsec::core;
namespace obs = hwsec::obs;
namespace attacks = hwsec::attacks;

namespace {

// ---- metrics: sharded counters ---------------------------------------

TEST(Metrics, CounterMergesAcrossThreads) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.set_enabled(true);
  reg.reset_for_test();
  const obs::Counter c = obs::counter("test_merge_counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.snapshot().counter("test_merge_counter"), kThreads * kPerThread);
}

TEST(Metrics, CounterHandleIsIdempotentPerName) {
  const obs::Counter a = obs::counter("test_same_name");
  const obs::Counter b = obs::counter("test_same_name");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.set_enabled(true);
  reg.reset_for_test();
  a.add(3);
  b.add(4);
  EXPECT_EQ(reg.snapshot().counter("test_same_name"), 7u);
}

TEST(Metrics, DisabledIsNoOp) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.reset_for_test();
  const obs::Counter c = obs::counter("test_disabled_counter");
  const obs::Histogram h = obs::histogram("test_disabled_hist");
  reg.set_enabled(false);
  c.add(5);
  h.observe_ns(1000000);
  reg.set_enabled(true);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test_disabled_counter"), 0u);
  EXPECT_EQ(snap.histograms.at("test_disabled_hist").count, 0u);
}

// Concurrent histogram writers from many threads while a scraper loops:
// the TSan CI job runs this to prove the shard/merge design is race-free.
TEST(Metrics, HistogramMergeUnderConcurrentShardWrites) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.set_enabled(true);
  reg.reset_for_test();
  const obs::Histogram h = obs::histogram("test_concurrent_hist");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::atomic<bool> stop_scraper{false};
  std::thread scraper([&] {
    while (!stop_scraper.load()) {
      (void)reg.snapshot();  // must be safe mid-write.
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Mix of buckets: 1 us .. ~1 ms.
        h.observe_ns((1 + (i % 1000)) * 1000 * (1 + static_cast<std::uint64_t>(t)));
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop_scraper.store(true);
  scraper.join();
  const obs::HistogramSnapshot hs = reg.snapshot().histograms.at("test_concurrent_hist");
  EXPECT_EQ(hs.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : hs.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, hs.count) << "every observation lands in exactly one bucket";
  EXPECT_GT(hs.sum_us, 0.0);
}

TEST(Metrics, HistogramBucketsArePowerOfTwoMicroseconds) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.set_enabled(true);
  reg.reset_for_test();
  const obs::Histogram h = obs::histogram("test_bucket_hist");
  h.observe_ns(1000);      // 1 us -> bucket 0 ([1, 2) us).
  h.observe_ns(3000);      // 3 us -> bucket 1 ([2, 4) us).
  h.observe_ns(1000000);   // 1000 us -> bucket 9 ([512, 1024) us).
  const obs::HistogramSnapshot hs = reg.snapshot().histograms.at("test_bucket_hist");
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[9], 1u);
  EXPECT_EQ(hs.count, 3u);
}

TEST(Metrics, JsonContainsRegisteredNames) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.set_enabled(true);
  reg.reset_for_test();
  obs::counter("test_json_counter").add(42);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"test_json_counter\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---- tracer -----------------------------------------------------------

TEST(Tracer, RecordsSpansAndExportsChromeJson) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset_for_test();
  tracer.set_enabled(true);
  {
    obs::Span span("test_span", 7, "trial");
    tracer.instant("test_instant");
  }
  tracer.set_enabled(false);
  const std::string json = tracer.export_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test_span\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test_instant\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"trial\":7"), std::string::npos);
}

TEST(Tracer, DisabledSpanRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset_for_test();
  tracer.set_enabled(false);
  {
    obs::Span span("test_dark_span");
  }
  EXPECT_EQ(tracer.export_json().find("test_dark_span"), std::string::npos);
}

TEST(Tracer, RingWrapKeepsMostRecentEvents) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset_for_test();
  tracer.set_enabled(true);
  // Overfill one thread's ring; only the newest kRingCapacity survive.
  for (std::size_t i = 0; i < obs::kRingCapacity + 100; ++i) {
    tracer.instant("test_flood", static_cast<std::int64_t>(i), "i");
  }
  tracer.set_enabled(false);
  const std::string json = tracer.export_json();
  // The very first events were overwritten; the last one must be present.
  std::ostringstream last;
  last << "\"i\":" << (obs::kRingCapacity + 99);
  EXPECT_NE(json.find(last.str()), std::string::npos);
  EXPECT_EQ(json.find("\"i\":0}"), std::string::npos);
  tracer.reset_for_test();
}

TEST(Tracer, ConcurrentWritersExportCleanly) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset_for_test();
  tracer.set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        obs::Span span("test_mt_span");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  tracer.set_enabled(false);
  EXPECT_NE(tracer.export_json().find("test_mt_span"), std::string::npos);
  tracer.reset_for_test();
}

// ---- campaign determinism with observability on ------------------------

struct TrialResult {
  bool leaked = false;
  std::uint32_t value = 0;
  bool operator==(const TrialResult& o) const { return leaked == o.leaked && value == o.value; }
};

TrialResult spectre_trial(const core::TrialContext& ctx) {
  auto lease = core::acquire_machine(ctx.machines, sim::MachineProfile::mobile(), ctx.seed);
  attacks::SpectreV1 spectre(*lease, 0);
  const sim::Word index = spectre.plant_secret("K");
  const auto byte = spectre.leak_byte(index);
  TrialResult r;
  r.leaked = byte.has_value() && *byte == 'K';
  r.value = byte.value_or(0xFFFF);
  return r;
}

std::vector<TrialResult> run_with_obs(bool obs_on, unsigned workers) {
  obs::MetricsRegistry::instance().set_enabled(obs_on);
  obs::Tracer::instance().set_enabled(obs_on);
  core::MachinePool pool;
  const auto outcomes = core::run_campaign_resilient<TrialResult>(
      {.seed = 2019, .trials = 48, .workers = workers}, {.machines = &pool}, spectre_trial);
  std::vector<TrialResult> results;
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.ok());
    results.push_back(o.value());
  }
  obs::MetricsRegistry::instance().set_enabled(true);
  obs::Tracer::instance().set_enabled(false);
  return results;
}

// The core acceptance property: turning tracing + metrics on must not
// change a single trial bit, at any worker count.
TEST(ObsDeterminism, CampaignBitIdenticalWithObservabilityOnVsOff) {
  const std::vector<TrialResult> reference = run_with_obs(false, 1);
  ASSERT_EQ(reference.size(), 48u);
  for (const unsigned workers : {1u, 2u, 8u}) {
    EXPECT_EQ(run_with_obs(true, workers), reference) << "workers=" << workers << " obs=on";
    EXPECT_EQ(run_with_obs(false, workers), reference) << "workers=" << workers << " obs=off";
  }
  obs::Tracer::instance().reset_for_test();
}

// ---- pool counter accounting ------------------------------------------

TEST(PoolAccounting, RegistryCountersMatchLeaseTrafficExactly) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.set_enabled(true);
  reg.reset_for_test();
  core::MachinePool pool;
  constexpr std::size_t kTrials = 40;
  const auto outcomes = core::run_campaign_resilient<TrialResult>(
      {.seed = 7, .trials = kTrials, .workers = 2}, {.machines = &pool}, spectre_trial);
  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.ok());
  }
  const obs::MetricsSnapshot snap = reg.snapshot();
  // Counters must agree with the pool's own books...
  EXPECT_EQ(snap.counter("pool_machines_built"), pool.machines_built());
  EXPECT_EQ(snap.counter("pool_leases_served"), pool.leases_served());
  // ...and with the lease traffic the campaign actually generated.
  EXPECT_EQ(snap.counter("pool_leases_served"), kTrials);
  EXPECT_EQ(snap.counter("pool_machines_built") + snap.counter("pool_resets"),
            snap.counter("pool_leases_served"))
      << "every lease is either a fresh build or a reset-reuse";
  EXPECT_EQ(snap.counter("campaign_trials_completed"), kTrials);
  EXPECT_EQ(snap.counter("campaign_trials_failed"), 0u);
  EXPECT_EQ(snap.counter("campaign_trial_retries"), 0u);
  EXPECT_EQ(snap.counter("watchdog_trips"), 0u);
}

// ---- heartbeat ---------------------------------------------------------

TEST(Heartbeat, EmitsFormattedLinesUntilStopped) {
  std::atomic<int> calls{0};
  {
    obs::Heartbeat hb(std::chrono::milliseconds(5),
                      [&] { return "tick " + std::to_string(calls.fetch_add(1)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  EXPECT_GE(calls.load(), 2) << "heartbeat thread should have fired several times";
}

TEST(Heartbeat, InertWhenIntervalNonPositive) {
  std::atomic<int> calls{0};
  {
    obs::Heartbeat hb(std::chrono::milliseconds(0), [&] {
      calls.fetch_add(1);
      return std::string("never");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(calls.load(), 0);
}

TEST(Heartbeat, IntervalFromEnvParses) {
  ::setenv("HWSEC_HEARTBEAT_MS", "250", 1);
  EXPECT_EQ(obs::heartbeat_interval_from_env(), std::chrono::milliseconds(250));
  ::setenv("HWSEC_HEARTBEAT_MS", "garbage", 1);
  EXPECT_EQ(obs::heartbeat_interval_from_env(), std::chrono::milliseconds(0));
  ::unsetenv("HWSEC_HEARTBEAT_MS");
  EXPECT_EQ(obs::heartbeat_interval_from_env(), std::chrono::milliseconds(0));
}

}  // namespace
