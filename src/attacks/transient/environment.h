// Process environment for transient-execution attack programs.
//
// Wraps an address space + program loading + the probe-array covert
// channel that every §4.2 attack decodes through: 256 cache lines, one
// per byte value; the transient access heats exactly one; the attacker
// times reloads to find it.
#pragma once

#include <optional>
#include <vector>

#include "sim/machine.h"
#include "sim/program.h"

namespace hwsec::attacks {

/// Conventional virtual layout for attack processes.
inline constexpr hwsec::sim::VirtAddr kCodeBase = 0x0001'0000;
inline constexpr hwsec::sim::VirtAddr kProbeBase = 0x0020'0000;
inline constexpr hwsec::sim::VirtAddr kDataBase = 0x0030'0000;
inline constexpr hwsec::sim::VirtAddr kKernelBase = 0x0040'0000;
inline constexpr std::uint32_t kProbeStride = 64;  ///< one line per value.

class UserProcess {
 public:
  UserProcess(hwsec::sim::Machine& machine, hwsec::sim::CoreId core,
              hwsec::sim::DomainId domain = hwsec::sim::kDomainNormal);

  hwsec::sim::Machine& machine() { return *machine_; }
  hwsec::sim::AddressSpace& aspace() { return aspace_; }
  hwsec::sim::Cpu& cpu() { return machine_->cpu(core_); }
  hwsec::sim::CoreId core() const { return core_; }

  /// Maps `pages` fresh physical frames at `va`; returns the phys base
  /// (frames are contiguous).
  hwsec::sim::PhysAddr map_new(hwsec::sim::VirtAddr va, std::uint32_t pages,
                               hwsec::sim::Word flags);

  /// Maps an existing frame.
  void map(hwsec::sim::VirtAddr va, hwsec::sim::PhysAddr pa, hwsec::sim::Word flags);

  /// Registers a program with the CPU and maps user-executable pages
  /// covering it (backed by fresh frames).
  void load_program(const hwsec::sim::Program& program);

  /// Switches the core into this process's context.
  void activate(hwsec::sim::Privilege priv = hwsec::sim::Privilege::kUser);

  // ---- probe-array covert channel ------------------------------------
  /// Allocates and maps the 256-line probe array (idempotent).
  void setup_probe_array();
  hwsec::sim::PhysAddr probe_phys() const { return probe_phys_; }

  /// Flushes all probe lines (receive window open).
  void flush_probe();

  /// Scans probe lines by reload latency; returns the unique hot line's
  /// index, or nullopt if none/multiple are hot (failed transmission).
  std::optional<std::uint8_t> hottest_probe_line(hwsec::sim::Cycle hit_threshold = 100);

 private:
  hwsec::sim::Machine* machine_;
  hwsec::sim::CoreId core_;
  hwsec::sim::DomainId domain_;
  hwsec::sim::Asid asid_;
  hwsec::sim::AddressSpace aspace_;
  hwsec::sim::PhysAddr probe_phys_ = 0;
};

}  // namespace hwsec::attacks
