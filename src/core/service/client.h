// Client side of the hwsecd campaign-service protocol.
//
// One ServiceClient wraps one socket connection and the frame exchange on
// it. The protocol is connection-per-command: submit/attach open a
// subscription that streams kJobUpdate frames and ends with the terminal
// kJobResult; status/stop are a single request/reply. Tests drive the
// disconnect/reattach contract through the same class — disconnect() is an
// abrupt close (the "client died mid-run" event), after which a fresh
// ServiceClient can attach() by job id and receive the identical terminal
// result.
//
// Every method reports failure via a `std::string& error` out-param
// instead of throwing: a vanished daemon is an environment the CLI turns
// into exit codes, not an exception.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "core/service/protocol.h"

namespace hwsec::core::service {

struct ClientConfig {
  /// Unix-domain socket path (preferred when non-empty).
  std::string unix_socket;
  /// TCP fallback: 127.0.0.1:tcp_port when tcp_port != 0.
  std::uint16_t tcp_port = 0;
  /// Per-frame receive deadline; a daemon silent for this long is treated
  /// as gone (0 = wait forever).
  std::chrono::milliseconds recv_timeout{60000};
};

class ServiceClient {
 public:
  explicit ServiceClient(ClientConfig config);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Dials the daemon and sends one kSubmit; fills `ack` with the daemon's
  /// accept/reject decision. On accept the connection stays open — follow
  /// with wait_result(). Returns false (with `error`) on transport
  /// failure; an application-level rejection is `ack.accepted == false`
  /// with a true return.
  bool submit(const std::string& spec_json, SubmittedPayload& ack, std::string& error);

  /// Dials and re-subscribes to an existing job by id. Same contract as
  /// submit(); an unknown id surfaces as ack.accepted == false.
  bool attach(const std::string& job_id, SubmittedPayload& ack, std::string& error);

  /// Consumes the subscription opened by submit()/attach(): every
  /// kJobUpdate invokes `on_update` (when set), the terminal kJobResult
  /// fills `result`. Returns false on disconnect/timeout before the
  /// terminal frame.
  bool wait_result(JobResultPayload& result, std::string& error,
                   const std::function<void(const JobUpdatePayload&)>& on_update = {});

  /// One-shot status scrape (own connection): the daemon's /status JSON.
  bool status(std::string& json_out, std::string& error);

  /// One-shot graceful-drain request (own connection).
  bool stop_daemon(std::string& error);

  /// Abrupt close of the current connection — the simulated client crash.
  /// Any job submitted on it keeps running daemon-side.
  void disconnect();

  bool connected() const { return fd_ >= 0; }

 private:
  bool dial(std::string& error);
  bool send_frame(shard::FrameType type, const std::string& payload, std::string& error);
  bool recv_frame(shard::Frame& frame, std::string& error);
  bool open_subscription(shard::FrameType type, const std::string& payload,
                         SubmittedPayload& ack, std::string& error);

  ClientConfig config_;
  int fd_ = -1;
};

}  // namespace hwsec::core::service
