// Correlation power analysis (CPA) and classic difference-of-means DPA
// engines against first-round AES S-box leakage.
//
// Both implement the paper's §5 "passive SCA" attacks (Kocher/Jaffe/Jun
// [25] for DPA; Brier-style CPA as the modern standard): the attacker
// records traces with *known plaintexts*, guesses one key byte (256
// hypotheses), predicts the leakage of S[pt ⊕ k] under the Hamming-weight
// model, and picks the hypothesis that best matches the measurements.
//
// Countermeasure validation built in: against a masked implementation the
// best and second-best hypotheses become statistically indistinguishable,
// which the `margin()` of the result exposes.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/aes.h"
#include "sca/trace.h"

namespace hwsec::sca {

struct ByteAttackResult {
  std::uint8_t best_guess = 0;
  double best_score = 0.0;
  double second_score = 0.0;
  std::size_t best_point = 0;  ///< sample index where the best score occurred.
  std::array<double, 256> score_per_guess{};

  /// Best/second ratio; > ~1.1 means a confident recovery.
  double margin() const {
    return second_score > 1e-12 ? best_score / second_score : best_score > 1e-12 ? 1e9 : 1.0;
  }
};

/// CPA on key byte `byte_index` (0..15): Pearson correlation between
/// HW(S[pt ⊕ k]) and every trace point.
ByteAttackResult cpa_attack_byte(const TraceSet& set, std::size_t byte_index);

/// Single-bit DPA on key byte `byte_index`, selection bit `bit` of the
/// S-box output: partitions traces by the predicted bit and scores each
/// hypothesis by the maximum difference of means.
ByteAttackResult dpa_attack_byte(const TraceSet& set, std::size_t byte_index,
                                 std::uint32_t bit = 0);

struct KeyAttackResult {
  hwsec::crypto::AesKey recovered{};
  std::array<ByteAttackResult, 16> bytes{};

  std::uint32_t correct_bytes(const hwsec::crypto::AesKey& actual) const {
    std::uint32_t n = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      n += recovered[i] == actual[i] ? 1u : 0u;
    }
    return n;
  }
};

/// Runs cpa_attack_byte on all 16 bytes. The byte attacks are independent
/// and fan out across the shared thread pool; results are bit-identical to
/// the sequential loop at any worker count.
KeyAttackResult cpa_attack_key(const TraceSet& set);

/// Runs dpa_attack_byte on all 16 bytes (parallel, deterministic — see
/// cpa_attack_key).
KeyAttackResult dpa_attack_key(const TraceSet& set, std::uint32_t bit = 0);

}  // namespace hwsec::sca
