// Foreshadow / L1 Terminal Fault (paper §4.2, [38][41][17]): extracting
// SGX enclave memory — including the attestation keys — from the L1 cache
// through a not-present page translation.
//
// The attack follows the paper's description step by step:
//  1. SGX is immune to plain Meltdown: EPCM-vetoed accesses don't forward.
//     But the OS owns the page tables, so the attacker (a malicious OS)
//     maps a virtual page onto the *physical* EPC frame and clears the
//     present bit.
//  2. The terminal fault aborts translation early; the stale PTE frame
//     bits index the L1D, and if the line is present there its PLAINTEXT
//     (the L1 sits inside the MEE perimeter) is forwarded transiently.
//  3. Arbitrary enclave pages are forced into the L1 in plaintext using
//     SGX's secure page swapping: EWB + ELDU decrypt the page through the
//     cache ("arbitrary encrypted enclave pages can be externally forced
//     to be decrypted to the L1 cache").
//  4. The byte is encoded in the probe array as in Meltdown.
//
// steal_attestation_key() reproduces the paper's headline consequence:
// "Foreshadow was used to extract attestation keys of Intel SGX", after
// which the attacker forges quotes for arbitrary (fake) enclaves.
#pragma once

#include <optional>

#include "arch/sgx.h"
#include "attacks/transient/environment.h"

namespace hwsec::attacks {

class ForeshadowAttack {
 public:
  struct Config {
    /// Skip the EWB/ELDU L1-loading step (ablation: the leak must fail
    /// with a cold L1).
    bool use_page_swap_loading = true;
  };

  ForeshadowAttack(hwsec::sim::Machine& machine, hwsec::arch::Sgx& sgx,
                   hwsec::sim::CoreId core = 0)
      : ForeshadowAttack(machine, sgx, core, Config{}) {}
  ForeshadowAttack(hwsec::sim::Machine& machine, hwsec::arch::Sgx& sgx, hwsec::sim::CoreId core,
                   Config config);

  /// Leaks one byte at `offset` inside the victim enclave's memory.
  std::optional<std::uint8_t> leak_enclave_byte(hwsec::tee::EnclaveId id, std::uint32_t offset);

  /// Leaks a byte range (page-swapping each containing page into L1).
  std::vector<std::uint8_t> leak_enclave_range(hwsec::tee::EnclaveId id, std::uint32_t offset,
                                               std::uint32_t len);

  /// Extracts the quoting enclave's RSA private exponent from EPC memory.
  /// Returns 0 on failure.
  hwsec::crypto::u64 steal_attestation_key();

 private:
  hwsec::arch::Sgx* sgx_;
  Config config_;
  UserProcess process_;  ///< runs with OS privilege (malicious kernel).
  hwsec::sim::VirtAddr entry_ = 0;
  hwsec::sim::VirtAddr done_ = 0;
  hwsec::sim::VirtAddr window_va_ = 0x0050'0000;  ///< remap window.
};

}  // namespace hwsec::attacks
