// Self-chaos harness: the paper's fault-injection mindset (Section 5)
// turned on our own framework.
//
// A ChaosInjector deterministically injects the failure modes a long
// unattended sweep actually meets — thrown trial exceptions, host
// allocation failure, scheduling delays — keyed by (chaos seed, trial
// index, attempt). The injected pattern is a pure function of those
// three values, so a chaos campaign's outcome vector is bit-identical at
// any worker count, which is what lets the tests prove the containment
// layer works rather than just hoping it does.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hwsec::core {

struct ChaosConfig {
  std::uint64_t seed = 0xC4A05;        ///< chaos stream seed (independent of the campaign seed).
  double throw_probability = 0.0;      ///< inject std::runtime_error before the trial body.
  double bad_alloc_probability = 0.0;  ///< inject std::bad_alloc before the trial body.
  double delay_probability = 0.0;      ///< sleep the worker before the trial body.
  std::uint32_t max_delay_us = 500;    ///< upper bound for an injected delay.

  bool enabled() const {
    return throw_probability > 0.0 || bad_alloc_probability > 0.0 || delay_probability > 0.0;
  }
};

class ChaosInjector {
 public:
  ChaosInjector(const ChaosConfig& config, std::size_t trial_index, unsigned attempt);

  /// Rolls delay, allocation-failure, and exception injection in a fixed
  /// order (all three dice are always thrown, so the decisions stay
  /// independent). May sleep; may throw std::bad_alloc or
  /// std::runtime_error. No-op when the config is disabled.
  void inject();

 private:
  const ChaosConfig& config_;
  std::uint64_t stream_seed_;
};

}  // namespace hwsec::core
