#include "arch/sanctuary.h"

namespace hwsec::arch {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;

Sanctuary::Sanctuary(sim::Machine& machine, Config config)
    : Architecture(machine), config_(config) {
  secure_world_key_.resize(32);
  for (auto& b : secure_world_key_) {
    b = static_cast<std::uint8_t>(machine.rng().next_u32());
  }

  // TZASC re-use: each SA region is reachable only with the SA's own bus
  // identity. CPU and DMA transactions are filtered alike.
  bus_check_id_ = machine.bus().add_check(
      [this](sim::PhysAddr addr, sim::AccessType, sim::DomainId domain, sim::Privilege,
             bool) -> sim::Fault {
        for (const Region& r : regions_) {
          if (addr >= r.base && addr < r.end) {
            const tee::EnclaveInfo* info = enclave(r.owner);
            if (info == nullptr || info->domain != domain) {
              return sim::Fault::kSecurityViolation;
            }
          }
        }
        return sim::Fault::kNone;
      });
}

Sanctuary::~Sanctuary() {
  machine_->bus().remove_check(bus_check_id_);
  machine_->caches().clear_uncacheable();
}

const tee::ArchitectureTraits& Sanctuary::traits() const {
  static const tee::ArchitectureTraits kTraits{
      .name = "Sanctuary",
      .reference = "[7]",
      .target = sim::DeviceClass::kMobile,
      .tcb = tee::TcbType::kVendorPrimitives,
      .enclave_capacity = -1,  // "an arbitrary number of user-space enclaves".
      .memory_encryption = false,
      .dma_defense = tee::DmaDefense::kRegionAssignment,
      .cache_defense = tee::CacheDefense::kExclusionAndFlush,
      .secure_peripheral_channels = true,  // via secure-world primitives.
      .attestation = tee::AttestationSupport::kLocalAndRemote,
      .code_isolation = true,
      .real_time_capable = false,
      .secure_boot = true,
      .secure_storage = true,
      .vendor_trust_required = false,  // the problem Sanctuary solves.
      .new_hardware_required = false,  // "without introducing new hardware".
      .considers_cache_sca = true,
      .considers_dma = true,
  };
  return kTraits;
}

bool Sanctuary::in_sanctuary_memory(sim::PhysAddr addr) const {
  for (const Region& r : regions_) {
    if (addr >= r.base && addr < r.end) {
      return true;
    }
  }
  return false;
}

tee::Expected<tee::EnclaveId> Sanctuary::create_enclave(const tee::EnclaveImage& image) {
  const std::uint32_t pages = image_pages(image);
  tee::EnclaveInfo info;
  info.name = image.name;
  info.measurement = tee::measure_image(image);
  info.domain = next_domain_++;
  info.base = machine_->alloc_frames(pages);  // ordinary normal-world DRAM.
  info.pages = pages;
  info.initialized = true;
  tee::EnclaveInfo& registered = register_enclave(std::move(info));
  regions_.push_back(
      {registered.id, registered.base, registered.base + pages * sim::kPageSize});
  load_image(image, registered);

  if (config_.exclude_from_shared_caches) {
    machine_->caches().add_uncacheable(registered.base, pages * sim::kPageSize,
                                       sim::CacheHierarchy::Exclusion::kSharedOnly);
  }
  return {.value = registered.id, .error = tee::EnclaveError::kOk};
}

tee::EnclaveError Sanctuary::destroy_enclave(tee::EnclaveId id) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  machine_->memory().fill(info->base, info->pages * sim::kPageSize, 0);
  machine_->caches().flush_domain(info->domain);
  std::erase_if(regions_, [id](const Region& r) { return r.owner == id; });
  // Rebuild the exclusion list without this SA's range.
  machine_->caches().clear_uncacheable();
  if (config_.exclude_from_shared_caches) {
    for (const Region& r : regions_) {
      machine_->caches().add_uncacheable(r.base, r.end - r.base,
                                         sim::CacheHierarchy::Exclusion::kSharedOnly);
    }
  }
  unregister_enclave(id);
  return tee::EnclaveError::kOk;
}

tee::EnclaveError Sanctuary::call_enclave(tee::EnclaveId id, sim::CoreId /*core*/,
                                          const Service& service) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  const sim::CoreId core = config_.sanctuary_core;
  sim::Cpu& cpu = machine_->cpu(core);
  const sim::DomainId saved_domain = cpu.domain();
  const sim::Privilege saved_priv = cpu.privilege();

  // Core hand-over to the SA: private caches flushed so neither occupant
  // can probe the other's L1 footprint.
  if (config_.flush_private_caches_on_switch) {
    machine_->caches().flush_core_private(core);
  }
  cpu.switch_context(info->domain, sim::Privilege::kUser, cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(300);  // core isolation setup via secure-world primitives.

  tee::EnclaveContext ctx(*machine_, core, *info);
  service(ctx);

  if (config_.flush_private_caches_on_switch) {
    machine_->caches().flush_core_private(core);
  }
  cpu.switch_context(saved_domain, saved_priv, cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(300);
  return tee::EnclaveError::kOk;
}

tee::Expected<tee::AttestationReport> Sanctuary::attest(tee::EnclaveId id,
                                                        const tee::Nonce& nonce) {
  const tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  // Attestation is a vendor primitive executed in the secure world.
  return {.value = tee::make_report(secure_world_key_, info->measurement, nonce),
          .error = tee::EnclaveError::kOk};
}

std::vector<std::uint8_t> Sanctuary::report_verification_key() const {
  return secure_world_key_;
}

}  // namespace hwsec::arch
