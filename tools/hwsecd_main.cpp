// hwsecd — campaign-as-a-service daemon.
//
// Serves the hwsec campaign engine over a Unix (and optionally local TCP)
// socket: versioned JSON specs in, scheduled multi-tenant execution with
// streamed progress out, plus an HTTP /status scrape on the same port.
//
//   hwsecd --socket /tmp/hwsec.sock [--tcp PORT] [--executors N]
//          [--max-running N] [--max-queued N] [--max-trials N]
//          [--max-workers N] [--max-processes N] [--max-finished N]
//          [--checkpoint-dir DIR] [--progress-ms N]
//
// Shutdown: first SIGTERM/SIGINT drains (queued jobs fail, running jobs
// cut short at a trial boundary and checkpoint), a second one aborts
// immediately; exits 128+signal. A client `hwsec-client stop` drains the
// same way and exits 0.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/service/daemon.h"
#include "core/shutdown.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--tcp PORT] [--executors N] [--max-running N]\n"
               "          [--max-queued N] [--max-trials N] [--max-workers N]\n"
               "          [--max-processes N] [--max-finished N] [--checkpoint-dir DIR]\n"
               "          [--progress-ms N]\n",
               argv0);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != nullptr && *end == '\0' && end != text;
}

}  // namespace

int main(int argc, char** argv) {
  hwsec::core::service::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    std::uint64_t value = 0;
    if (arg == "--socket" && has_value) {
      config.unix_socket = argv[++i];
    } else if (arg == "--tcp" && has_value && parse_u64(argv[++i], value) && value <= 65535) {
      config.tcp_enabled = true;
      config.tcp_port = static_cast<std::uint16_t>(value);
    } else if (arg == "--executors" && has_value && parse_u64(argv[++i], value) && value > 0) {
      config.executors = static_cast<unsigned>(value);
    } else if (arg == "--max-running" && has_value && parse_u64(argv[++i], value) && value > 0) {
      config.max_running_per_tenant = static_cast<unsigned>(value);
    } else if (arg == "--max-queued" && has_value && parse_u64(argv[++i], value) && value > 0) {
      config.max_queued_per_tenant = static_cast<std::size_t>(value);
    } else if (arg == "--max-trials" && has_value && parse_u64(argv[++i], value) && value > 0) {
      config.max_trials = value;
    } else if (arg == "--max-workers" && has_value && parse_u64(argv[++i], value) && value > 0) {
      config.max_workers = static_cast<std::uint32_t>(value);
    } else if (arg == "--max-processes" && has_value && parse_u64(argv[++i], value)) {
      config.max_processes = static_cast<std::uint32_t>(value);  // 0 forbids sharded specs.
    } else if (arg == "--max-finished" && has_value && parse_u64(argv[++i], value)) {
      config.max_finished_per_tenant = static_cast<std::size_t>(value);
    } else if (arg == "--checkpoint-dir" && has_value) {
      config.checkpoint_dir = argv[++i];
    } else if (arg == "--progress-ms" && has_value && parse_u64(argv[++i], value) && value > 0) {
      config.progress_interval = std::chrono::milliseconds(value);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (config.unix_socket.empty() && !config.tcp_enabled) {
    usage(argv[0]);
    return 2;
  }

  hwsec::core::install_graceful_shutdown();
  try {
    hwsec::core::service::Daemon daemon(config);
    daemon.start();
    if (!config.unix_socket.empty()) {
      std::fprintf(stderr, "hwsecd: listening on %s\n", config.unix_socket.c_str());
    }
    if (config.tcp_enabled) {
      std::fprintf(stderr, "hwsecd: listening on 127.0.0.1:%u\n",
                   static_cast<unsigned>(daemon.tcp_port()));
    }
    const int code = daemon.serve();
    std::fprintf(stderr, "hwsecd: drained, exit %d\n", code);
    return code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hwsecd: %s\n", e.what());
    return 1;
  }
}
