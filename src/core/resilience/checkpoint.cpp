#include "core/resilience/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/obs/metrics.h"
#include "core/obs/trace.h"

namespace hwsec::core {

namespace {

std::string hex_encode(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out.empty() ? "-" : out;  // "-" keeps empty payloads tokenizable.
}

bool hex_decode(const std::string& hex, std::string& out) {
  out.clear();
  if (hex == "-") {
    return true;
  }
  if (hex.size() % 2 != 0) {
    return false;
  }
  auto nibble = [](char c, int& v) {
    if (c >= '0' && c <= '9') { v = c - '0'; return true; }
    if (c >= 'a' && c <= 'f') { v = c - 'a' + 10; return true; }
    return false;
  };
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = 0, lo = 0;
    if (!nibble(hex[i], hi) || !nibble(hex[i + 1], lo)) {
      return false;
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

}  // namespace

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

CheckpointFile::CheckpointFile(std::uint64_t seed, std::size_t trials, std::size_t result_bytes)
    : seed_(seed), trials_(trials), result_bytes_(result_bytes) {}

bool CheckpointFile::load(const std::string& path) {
  records_.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) {
    return false;
  }
  {
    std::ostringstream expected;
    expected << "hwsec-checkpoint v1 seed=" << seed_ << " trials=" << trials_
             << " result_bytes=" << result_bytes_;
    if (line != expected.str()) {
      return false;
    }
  }
  std::map<std::size_t, CheckpointRecord> parsed;
  bool saw_end = false;
  std::size_t declared = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "end") {
      if (!(fields >> declared)) {
        return false;
      }
      saw_end = true;
      break;
    }
    std::size_t index = 0;
    unsigned attempts = 0;
    CheckpointRecord rec;
    if (tag == "ok") {
      std::string hex;
      if (!(fields >> index >> attempts >> hex)) {
        return false;
      }
      rec.ok = true;
      if (!hex_decode(hex, rec.payload) || rec.payload.size() != result_bytes_) {
        return false;
      }
    } else if (tag == "err") {
      unsigned kind = 0;
      std::string detail_hex;
      std::string machine_hex;
      if (!(fields >> index >> attempts >> kind >> detail_hex >> machine_hex)) {
        return false;
      }
      rec.ok = false;
      rec.kind = static_cast<std::uint8_t>(kind);
      if (!hex_decode(detail_hex, rec.detail) || !hex_decode(machine_hex, rec.machine)) {
        return false;
      }
    } else {
      return false;
    }
    if (index >= trials_) {
      return false;
    }
    rec.attempts = attempts == 0 ? 1 : attempts;
    parsed[index] = std::move(rec);
  }
  if (!saw_end || declared != parsed.size()) {
    return false;
  }
  records_ = std::move(parsed);
  return true;
}

void CheckpointFile::record(std::size_t index, CheckpointRecord rec) {
  records_[index] = std::move(rec);
}

bool CheckpointFile::save(const std::string& path) const {
  static const obs::Counter kSaves = obs::counter("checkpoint_saves");
  static const obs::Histogram kSaveUs = obs::histogram("checkpoint_save_us");
  kSaves.add(1);
  obs::ScopedTimer save_timer(kSaveUs);
  obs::Span save_span("checkpoint_save", static_cast<std::int64_t>(records_.size()),
                      "records");
  std::ostringstream out;
  out << "hwsec-checkpoint v1 seed=" << seed_ << " trials=" << trials_
      << " result_bytes=" << result_bytes_ << "\n";
  for (const auto& [index, rec] : records_) {
    if (rec.ok) {
      out << "ok " << index << " " << rec.attempts << " " << hex_encode(rec.payload) << "\n";
    } else {
      out << "err " << index << " " << rec.attempts << " " << static_cast<unsigned>(rec.kind)
          << " " << hex_encode(rec.detail) << " " << hex_encode(rec.machine) << "\n";
    }
  }
  out << "end " << records_.size() << "\n";
  return write_file_atomic(path, out.str());
}

}  // namespace hwsec::core
