// Single-level cache model: hit/miss/eviction mechanics, replacement
// policies, domain tagging, flushes and way partitioning.
#include <gtest/gtest.h>

#include "sim/cache.h"

namespace sim = hwsec::sim;

namespace {

sim::CacheConfig small_cache(sim::ReplacementPolicy policy = sim::ReplacementPolicy::kLru) {
  return {.name = "t", .size_bytes = 4096, .ways = 4, .line_size = 64, .policy = policy,
          .hit_latency = 4};  // 16 sets.
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(sim::Cache({.size_bytes = 100, .ways = 3, .line_size = 64}), std::invalid_argument);
  EXPECT_THROW(sim::Cache({.size_bytes = 4096, .ways = 4, .line_size = 48}),
               std::invalid_argument);
}

TEST(Cache, MissThenHit) {
  sim::Cache cache(small_cache());
  EXPECT_FALSE(cache.access(0x1000, 0, sim::AccessType::kRead).hit);
  EXPECT_TRUE(cache.access(0x1000, 0, sim::AccessType::kRead).hit);
  EXPECT_TRUE(cache.access(0x103C, 0, sim::AccessType::kRead).hit) << "same line";
  EXPECT_FALSE(cache.access(0x1040, 0, sim::AccessType::kRead).hit) << "next line";
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, LruEvictsOldest) {
  sim::Cache cache(small_cache());
  // Set 0 lines: addresses with (addr/64)%16 == 0, i.e. stride 1024.
  const sim::PhysAddr stride = 64 * 16;
  for (sim::PhysAddr i = 0; i < 4; ++i) {
    cache.access(i * stride, 0, sim::AccessType::kRead);
  }
  cache.access(0, 0, sim::AccessType::kRead);  // refresh line 0.
  const auto r = cache.access(4 * stride, 0, sim::AccessType::kRead);
  ASSERT_TRUE(r.evicted_line.has_value());
  EXPECT_EQ(*r.evicted_line, stride) << "line 1 was least recently used";
  EXPECT_TRUE(cache.probe(0));
  EXPECT_FALSE(cache.probe(stride));
}

TEST(Cache, EvictionReportsVictimDomain) {
  sim::Cache cache(small_cache());
  const sim::PhysAddr stride = 64 * 16;
  for (sim::PhysAddr i = 0; i < 4; ++i) {
    cache.access(i * stride, /*domain=*/7, sim::AccessType::kRead);
  }
  const auto r = cache.access(4 * stride, /*domain=*/0, sim::AccessType::kRead);
  ASSERT_TRUE(r.evicted_line.has_value());
  EXPECT_EQ(r.evicted_domain, 7u);
  EXPECT_EQ(cache.domain_stats(7).evictions, 1u);
}

TEST(Cache, FlushLineAndDomainAndAll) {
  sim::Cache cache(small_cache());
  cache.access(0x1000, 3, sim::AccessType::kRead);
  cache.access(0x2000, 4, sim::AccessType::kRead);
  EXPECT_TRUE(cache.flush_line(0x1000));
  EXPECT_FALSE(cache.probe(0x1000));
  EXPECT_TRUE(cache.probe(0x2000));
  cache.access(0x3000, 4, sim::AccessType::kRead);
  EXPECT_EQ(cache.flush_domain(4), 2u);
  EXPECT_FALSE(cache.probe(0x2000));
  cache.access(0x2000, 4, sim::AccessType::kRead);
  cache.flush_all();
  EXPECT_FALSE(cache.probe(0x2000));
}

TEST(Cache, WayPartitionIsolatesOccupancy) {
  sim::Cache cache(small_cache());
  cache.set_way_partition(/*domain=*/1, 0, 2);  // enclave: ways 0-1.
  cache.set_way_partition(/*domain=*/0, 2, 2);  // OS: ways 2-3.
  const sim::PhysAddr stride = 64 * 16;

  // Enclave fills its two ways in set 0.
  cache.access(0 * stride, 1, sim::AccessType::kRead);
  cache.access(1 * stride, 1, sim::AccessType::kRead);
  // OS hammers the same set with many lines.
  for (sim::PhysAddr i = 2; i < 10; ++i) {
    cache.access(i * stride, 0, sim::AccessType::kRead);
  }
  // Enclave lines must have survived: the OS cannot evict across the
  // partition — the Prime+Probe defense property.
  EXPECT_TRUE(cache.probe_owned(0, 1));
  EXPECT_TRUE(cache.probe_owned(stride, 1));
  EXPECT_EQ(cache.occupancy(0, 1), 2u);
}

TEST(Cache, PartitionedDomainCannotHitForeignWays) {
  sim::Cache cache(small_cache());
  cache.set_way_partition(0, 2, 2);  // OS: ways 2-3.
  cache.set_way_partition(1, 0, 2);  // enclave: ways 0-1.
  cache.access(0x1000, 0, sim::AccessType::kRead);  // lands in ways 2-3.
  EXPECT_EQ(cache.occupancy(0x1000, 0), 1u);
  // The enclave looks up the same physical line: it sits outside the
  // enclave's ways, so the lookup must miss (no cross-partition hits).
  const auto before = cache.domain_stats(1).misses;
  cache.access(0x1000, 1, sim::AccessType::kRead);
  EXPECT_EQ(cache.domain_stats(1).misses, before + 1);
}

TEST(Cache, PartitionChangeDropsOutOfPartitionLines) {
  sim::Cache cache(small_cache());
  for (sim::PhysAddr i = 0; i < 4; ++i) {
    cache.access(i * 64 * 16, 5, sim::AccessType::kRead);  // fills ways 0-3.
  }
  cache.set_way_partition(5, 0, 1);
  EXPECT_LE(cache.occupancy(0, 5), 1u) << "stale occupancy outside the partition must be scrubbed";
}

TEST(Cache, RandomReplacementIsSeedDeterministic) {
  sim::Cache a(small_cache(sim::ReplacementPolicy::kRandom), 42);
  sim::Cache b(small_cache(sim::ReplacementPolicy::kRandom), 42);
  const sim::PhysAddr stride = 64 * 16;
  for (sim::PhysAddr i = 0; i < 32; ++i) {
    const auto ra = a.access(i * stride, 0, sim::AccessType::kRead);
    const auto rb = b.access(i * stride, 0, sim::AccessType::kRead);
    EXPECT_EQ(ra.evicted_line.has_value(), rb.evicted_line.has_value());
    if (ra.evicted_line && rb.evicted_line) {
      EXPECT_EQ(*ra.evicted_line, *rb.evicted_line);
    }
  }
}

class ReplacementPolicyTest : public ::testing::TestWithParam<sim::ReplacementPolicy> {};

TEST_P(ReplacementPolicyTest, WorkingSetWithinAssociativityAlwaysHits) {
  sim::Cache cache(small_cache(GetParam()));
  const sim::PhysAddr stride = 64 * 16;
  for (int round = 0; round < 3; ++round) {
    for (sim::PhysAddr i = 0; i < 4; ++i) {
      cache.access(i * stride, 0, sim::AccessType::kRead);
    }
  }
  // After the first round everything fits: rounds 2-3 are 8 hits.
  EXPECT_EQ(cache.stats().hits, 8u);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST_P(ReplacementPolicyTest, OverfilledSetEvicts) {
  sim::Cache cache(small_cache(GetParam()));
  const sim::PhysAddr stride = 64 * 16;
  for (sim::PhysAddr i = 0; i < 8; ++i) {
    cache.access(i * stride, 0, sim::AccessType::kRead);
  }
  EXPECT_EQ(cache.stats().evictions, 4u);
  std::uint32_t present = 0;
  for (sim::PhysAddr i = 0; i < 8; ++i) {
    present += cache.probe(i * stride) ? 1 : 0;
  }
  EXPECT_EQ(present, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementPolicyTest,
                         ::testing::Values(sim::ReplacementPolicy::kLru,
                                           sim::ReplacementPolicy::kTreePlru,
                                           sim::ReplacementPolicy::kRandom));

}  // namespace
