// Physical DRAM model.
//
// A flat byte array with word accessors. DRAM has no security semantics of
// its own; access control lives in the MMU/MPU (per-architecture) and in
// the bus (DMA filtering). Memory contents persist across enclave
// creation/teardown, which is exactly why SGX-class designs add a memory
// encryption engine (modeled in src/arch/sgx.*).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.h"

namespace hwsec::sim {

class PhysicalMemory {
 public:
  /// Creates DRAM of `bytes` size (rounded up to a whole page), zeroed.
  explicit PhysicalMemory(std::uint32_t bytes);

  std::uint32_t size() const { return static_cast<std::uint32_t>(data_.size()); }

  bool contains(PhysAddr addr, std::uint32_t len = 1) const {
    return addr < size() && static_cast<std::uint64_t>(addr) + len <= size();
  }

  /// Byte accessors. Out-of-range accesses are a programming error and
  /// abort via assert in debug builds; callers must bounds-check with
  /// contains() first (the bus does).
  std::uint8_t read8(PhysAddr addr) const;
  void write8(PhysAddr addr, std::uint8_t value);

  /// Little-endian 32-bit word accessors. No alignment requirement at the
  /// DRAM level; alignment faults are raised by the CPU.
  Word read32(PhysAddr addr) const;
  void write32(PhysAddr addr, Word value);

  /// Bulk copy helpers, used by loaders, DMA and the SGX paging model.
  void read_block(PhysAddr addr, std::span<std::uint8_t> out) const;
  void write_block(PhysAddr addr, std::span<const std::uint8_t> in);

  /// Fills [addr, addr+len) with `value`.
  void fill(PhysAddr addr, std::uint32_t len, std::uint8_t value);

  /// Direct access to the backing store, for checkpointing in tests.
  std::span<const std::uint8_t> raw() const { return data_; }
  std::span<std::uint8_t> raw() { return data_; }

 private:
  std::vector<std::uint8_t> data_;
};

}  // namespace hwsec::sim
