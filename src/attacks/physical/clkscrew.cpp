#include "attacks/physical/clkscrew.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;
namespace crypto = hwsec::crypto;

ClkscrewResult clkscrew_attack(
    sim::Machine& machine,
    const std::function<crypto::AesBlock(const crypto::AesBlock&)>& secure_encrypt,
    const ClkscrewConfig& config) {
  ClkscrewResult result;
  sim::Rng rng(config.seed);

  // Step 0: can the attacker program the unstable point at all?
  try {
    machine.dvfs().set_point(config.attack_point);
  } catch (const std::logic_error&) {
    result.blocked_by_interlock = true;
    return result;
  }
  result.fault_probability = machine.dvfs().fault_probability();

  std::vector<DfaPair> pairs;
  while (result.invocations < config.max_invocations &&
         pairs.size() < config.target_pairs) {
    crypto::AesBlock pt;
    for (auto& b : pt) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }

    // Correct ciphertext at the rated point (no faults inside the
    // envelope).
    machine.dvfs().set_rated_point(config.rated_index);
    machine.injector().set_probability(machine.dvfs().fault_probability());
    const crypto::AesBlock correct = secure_encrypt(pt);
    ++result.invocations;

    // Glitched run at the attack point.
    machine.dvfs().set_point(config.attack_point);
    machine.injector().set_probability(machine.dvfs().fault_probability());
    const crypto::AesBlock faulty = secure_encrypt(pt);
    ++result.invocations;

    if (faulty != correct) {
      pairs.push_back({correct, faulty});
    }
  }
  result.faulty_pairs = static_cast<std::uint32_t>(pairs.size());

  // Restore a sane operating point before analysis.
  machine.dvfs().set_rated_point(config.rated_index);
  machine.injector().set_probability(0.0);

  result.dfa = aes_dfa_attack(pairs);
  return result;
}

}  // namespace hwsec::attacks
