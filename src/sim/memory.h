// Physical DRAM model.
//
// A flat byte array with word accessors. DRAM has no security semantics of
// its own; access control lives in the MMU/MPU (per-architecture) and in
// the bus (DMA filtering). Memory contents persist across enclave
// creation/teardown, which is exactly why SGX-class designs add a memory
// encryption engine (modeled in src/arch/sgx.*).
//
// Snapshot/restore: snapshot() captures the full image and turns on
// dirty-page tracking (one bit per 4 KiB page, set by every write path).
// restore() copies back only the pages dirtied since the snapshot, so the
// cost of resetting a machine between campaign trials scales with the
// trial's write footprint, not with DRAM size. The snapshot/reset layer in
// sim/machine.h builds on this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.h"

namespace hwsec::sim {

class PhysicalMemory {
 public:
  /// Creates DRAM of `bytes` size (rounded up to a whole page), zeroed.
  explicit PhysicalMemory(std::uint32_t bytes);

  std::uint32_t size() const { return static_cast<std::uint32_t>(data_.size()); }

  bool contains(PhysAddr addr, std::uint32_t len = 1) const {
    return addr < size() && static_cast<std::uint64_t>(addr) + len <= size();
  }

  /// Byte accessors. Out-of-range accesses are a programming error and
  /// abort via assert in debug builds; callers must bounds-check with
  /// contains() first (the bus does).
  std::uint8_t read8(PhysAddr addr) const;
  void write8(PhysAddr addr, std::uint8_t value);

  /// Little-endian 32-bit word accessors. No alignment requirement at the
  /// DRAM level; alignment faults are raised by the CPU.
  Word read32(PhysAddr addr) const;
  void write32(PhysAddr addr, Word value);

  /// Bulk copy helpers, used by loaders, DMA and the SGX paging model.
  void read_block(PhysAddr addr, std::span<std::uint8_t> out) const;
  void write_block(PhysAddr addr, std::span<const std::uint8_t> in);

  /// Fills [addr, addr+len) with `value`.
  void fill(PhysAddr addr, std::uint32_t len, std::uint8_t value);

  // -- snapshot / dirty-page restore ------------------------------------
  struct Snapshot {
    std::vector<std::uint8_t> image;
  };

  /// Captures the current contents and enables dirty-page tracking from
  /// this point on. Subsequent snapshots restart tracking.
  Snapshot snapshot();

  /// Restores the snapshot image, copying back only pages dirtied since
  /// snapshot() (a full copy if tracking was bypassed via mutable raw()).
  /// Tracking stays enabled with a clean slate, so a machine can be
  /// restored repeatedly from the same snapshot. The snapshot must come
  /// from this memory (asserted via size).
  void restore(const Snapshot& snap);

  /// Dirty pages since the last snapshot()/restore(), for tests and for
  /// reasoning about restore cost.
  std::uint32_t dirty_page_count() const;

  /// Direct access to the backing store, for checkpointing in tests. The
  /// mutable overload bypasses dirty tracking, so using it while a
  /// snapshot is live poisons the fast path: the next restore() falls
  /// back to a full-image copy (correct, just slower).
  std::span<const std::uint8_t> raw() const { return data_; }
  std::span<std::uint8_t> raw() {
    raw_dirty_ = true;
    return data_;
  }

 private:
  void mark_dirty(PhysAddr addr, std::uint32_t len) {
    if (!tracking_) {
      return;
    }
    const std::uint32_t first = addr >> kPageShift;
    const std::uint32_t last = (addr + len - 1) >> kPageShift;
    for (std::uint32_t p = first; p <= last; ++p) {
      dirty_[p >> 6] |= 1ull << (p & 63);
    }
  }

  std::vector<std::uint8_t> data_;
  std::vector<std::uint64_t> dirty_;  ///< bitmap, one bit per page.
  /// Pages that were all-zero in the snapshot image; lets fill(..., 0) of a
  /// still-clean zero page skip both the write and the dirty bit.
  std::vector<std::uint64_t> zero_snap_;
  bool tracking_ = false;
  bool raw_dirty_ = false;  ///< mutable raw() handed out since snapshot.
};

}  // namespace hwsec::sim
