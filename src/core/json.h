// Minimal JSON text utilities shared by the obs metrics export and the
// campaign-service spec codec.
//
// Two halves:
//  * json_escape — the one true string escaper. Every place the codebase
//    writes a dynamic string into JSON must go through it; the metrics
//    registry once interpolated counter names verbatim, so a name holding
//    a quote emitted an invalid document (the regression lives in
//    tests/test_service.cpp).
//  * JsonValue / parse_json — a small recursive-descent parser for the
//    documents we exchange: campaign specs over the hwsecd socket and the
//    /status scrape. It keeps each number's raw token alongside the double
//    so 64-bit campaign seeds survive (a double mangles integers beyond
//    2^53).
//
// Deliberately not a general-purpose JSON library: no serialization DOM,
// no streaming, fixed nesting depth. The wire documents are small and
// flat; hostile input must fail cleanly, not exhaust the stack.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hwsec::core {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added): `"` and `\` are backslash-escaped, control characters become
/// \n/\r/\t or \u00XX. The output is always valid JSON string content.
std::string json_escape(std::string_view text);

struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  ///< untouched token, for 64-bit-exact integers.
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order kept.

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup (first match); null when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Numeric accessors re-parse the raw token so u64 values round-trip
  /// exactly. Return false when the value is not a number or out of range.
  bool as_u64(std::uint64_t& out) const;
  bool as_i64(std::int64_t& out) const;
};

/// Parses one JSON document (with nothing but whitespace after it).
/// Returns false and fills `error` (when non-null) with a short reason on
/// malformed input. Nesting is capped at 64 levels.
bool parse_json(std::string_view text, JsonValue& out, std::string* error = nullptr);

}  // namespace hwsec::core
