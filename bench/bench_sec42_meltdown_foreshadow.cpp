// E6 — §4.2 Meltdown and Foreshadow/L1TF.
//
// Paper's expected shape:
//   * Meltdown reads kernel memory from user space on fault-forwarding
//     silicon; mitigated/ARM-like cores leak nothing;
//   * SGX is immune to plain Meltdown (EPCM-vetoed accesses do not
//     forward) — shown by running Meltdown semantics against an enclave;
//   * Foreshadow bypasses the EPCM via the terminal fault: needs the
//     page-swap (EWB/ELDU) step to stage plaintext in L1; leaks the whole
//     enclave including the attestation key, after which forged quotes
//     verify ("trust has been shattered");
//   * the L1-flush microcode mitigation and L1TF-fixed silicon close it.
#include <benchmark/benchmark.h>

#include "arch/sgx.h"
#include "attacks/transient/foreshadow.h"
#include "attacks/transient/meltdown.h"
#include "attacks/transient/sgxpectre.h"
#include <cstring>

#include "table.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;

namespace {

constexpr const char* kKernelSecret = "KERNEL_MASTER_KEY_0xDEADBEEF";
constexpr const char* kEnclaveSecret = "ENCLAVE_SEALED_DATA!";

struct LeakResult {
  std::uint32_t correct = 0;
  std::uint32_t total = 0;
  double accuracy() const { return total ? static_cast<double>(correct) / total : 0.0; }
};

LeakResult meltdown_run(const sim::MachineProfile& profile, std::uint64_t seed) {
  sim::Machine machine(profile, seed);
  attacks::MeltdownAttack meltdown(machine, 0);
  const sim::VirtAddr va = meltdown.plant_kernel_secret(kKernelSecret);
  LeakResult r;
  const std::string leaked = meltdown.leak_string(va, std::strlen(kKernelSecret));
  r.total = static_cast<std::uint32_t>(leaked.size());
  for (std::size_t i = 0; i < leaked.size(); ++i) {
    r.correct += leaked[i] == kKernelSecret[i] ? 1 : 0;
  }
  return r;
}

tee::EnclaveId make_victim_enclave(arch::Sgx& sgx) {
  tee::EnclaveImage image;
  image.name = "victim";
  image.code = {0xEE};
  image.secret.assign(kEnclaveSecret, kEnclaveSecret + std::strlen(kEnclaveSecret));
  return sgx.create_enclave(image).value;
}

LeakResult foreshadow_run(bool page_swap, bool l1tf_vulnerable, bool flush_l1_on_exit,
                          std::uint64_t seed) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.l1tf_vulnerable = l1tf_vulnerable;
  sim::Machine machine(profile, seed);
  arch::Sgx::Config config;
  config.flush_l1_on_exit = flush_l1_on_exit;
  arch::Sgx sgx(machine, config);
  const auto victim = make_victim_enclave(sgx);

  attacks::ForeshadowAttack::Config fconfig;
  fconfig.use_page_swap_loading = page_swap;
  attacks::ForeshadowAttack foreshadow(machine, sgx, 0, fconfig);

  LeakResult r;
  const std::size_t len = std::strlen(kEnclaveSecret);
  r.total = static_cast<std::uint32_t>(len);
  const auto bytes = foreshadow.leak_enclave_range(victim, 1, static_cast<std::uint32_t>(len));
  for (std::size_t i = 0; i < len; ++i) {
    r.correct += bytes[i] == static_cast<std::uint8_t>(kEnclaveSecret[i]) ? 1 : 0;
  }
  return r;
}

void BM_MeltdownLeakByte(benchmark::State& state) {
  sim::Machine machine(sim::MachineProfile::server(), 606);
  attacks::MeltdownAttack meltdown(machine, 0);
  const sim::VirtAddr va = meltdown.plant_kernel_secret("A");
  for (auto _ : state) {
    benchmark::DoNotOptimize(meltdown.leak_byte(va));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MeltdownLeakByte)->Iterations(500);

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  hwsec::bench::section("E6a / §4.2 — Meltdown: kernel-memory leak accuracy");
  Table m({"target", "silicon", "bytes ok", "accuracy"}, {24, 34, 10, 10});
  m.print_header();
  {
    const auto r = meltdown_run(sim::MachineProfile::server(), 601);
    m.print_row("kernel memory", "server, fault forwarding", r.correct, r.accuracy());
  }
  {
    sim::MachineProfile p = sim::MachineProfile::server();
    p.cpu.meltdown_fault_forwarding = false;
    const auto r = meltdown_run(p, 602);
    m.print_row("kernel memory", "server, mitigated (no forwarding)", r.correct, r.accuracy());
  }
  {
    const auto r = meltdown_run(sim::MachineProfile::mobile(), 603);
    m.print_row("kernel memory", "mobile (ARM-like)", r.correct, r.accuracy());
  }
  {
    // Plain Meltdown against SGX: the attacker maps the EPC page present
    // (EPCM will veto at the walk) — nothing forwards, per the paper:
    // "SGX is immune to a plain Meltdown attack".
    sim::Machine machine(sim::MachineProfile::server(), 604);
    arch::Sgx sgx(machine);
    const auto victim = make_victim_enclave(sgx);
    const tee::EnclaveInfo* info = sgx.enclave(victim);
    attacks::MeltdownAttack meltdown(machine, 0);
    meltdown.process().map(0x00400000, sim::page_base(info->base),
                           sim::pte::kUser | sim::pte::kWritable);
    std::uint32_t correct = 0;
    const std::size_t len = std::strlen(kEnclaveSecret);
    for (std::size_t i = 0; i < len; ++i) {
      const auto byte = meltdown.leak_byte(0x00400000 + 1 + static_cast<sim::VirtAddr>(i));
      correct += (byte.has_value() && *byte == static_cast<std::uint8_t>(kEnclaveSecret[i]))
                     ? 1
                     : 0;
    }
    m.print_row("SGX enclave memory", "server, fault forwarding", correct,
                static_cast<double>(correct) / static_cast<double>(len));
  }

  hwsec::bench::section("E6b / §4.2 — Foreshadow/L1TF vs. SGX enclave memory");
  Table f({"configuration", "bytes ok", "accuracy"}, {46, 10, 10});
  f.print_header();
  {
    const auto r = foreshadow_run(true, true, false, 611);
    f.print_row("EWB/ELDU staging, vulnerable silicon", r.correct, r.accuracy());
  }
  {
    const auto r = foreshadow_run(false, true, false, 612);
    f.print_row("no page-swap staging (cold L1)", r.correct, r.accuracy());
  }
  {
    const auto r = foreshadow_run(true, false, false, 613);
    f.print_row("L1TF-fixed silicon", r.correct, r.accuracy());
  }
  {
    const auto r = foreshadow_run(true, true, true, 614);
    f.print_row("vulnerable + L1-flush-on-exit microcode", r.correct, r.accuracy());
  }

  hwsec::bench::section("E6c — consequence: attestation-key theft & quote forgery");
  {
    sim::Machine machine(sim::MachineProfile::server(), 615);
    arch::Sgx sgx(machine);
    attacks::ForeshadowAttack foreshadow(machine, sgx, 0);
    const hwsec::crypto::u64 stolen = foreshadow.steal_attestation_key();
    std::cout << "attestation private key stolen: " << (stolen != 0 ? "YES" : "no") << "\n";
    if (stolen != 0) {
      tee::Nonce nonce{};
      nonce[0] = 0x42;
      tee::AttestationReport fake = tee::make_report(
          sgx.report_verification_key(),
          hwsec::crypto::Sha256::hash(std::string{"never-ran-in-an-enclave"}), nonce);
      tee::Quote forged;
      forged.report = fake;
      const auto digest = tee::report_digest(fake);
      hwsec::crypto::u64 msg = 0;
      for (std::size_t i = 0; i < 8; ++i) {
        msg = (msg << 8) | digest[i];
      }
      forged.signature =
          hwsec::crypto::powmod(msg % sgx.attestation_n(), stolen, sgx.attestation_n());
      const bool accepted = tee::verify_quote(forged, sgx.attestation_n(), sgx.attestation_e(),
                                              sgx.report_verification_key(), nonce);
      std::cout << "forged quote for arbitrary code accepted by verifier: "
                << (accepted ? "YES — remote attestation trust is broken" : "no") << "\n";
    }
  }

  hwsec::bench::section("E6d — beyond Foreshadow: SgxPectre (no fault needed)");
  {
    Table s({"configuration", "13-byte secret leak"}, {46, 20});
    s.print_header();
    {
      sim::Machine machine(sim::MachineProfile::server(), 621);
      arch::Sgx sgx(machine);
      attacks::SgxPectreAttack attack(machine, sgx, "EnclaveApiKey");
      s.print_row("speculative silicon, unhardened enclave", attack.leak_secret(13));
    }
    {
      sim::MachineProfile profile = sim::MachineProfile::server();
      profile.cpu.l1tf_vulnerable = false;
      profile.cpu.meltdown_fault_forwarding = false;
      sim::Machine machine(profile, 622);
      arch::Sgx sgx(machine);
      attacks::SgxPectreAttack attack(machine, sgx, "EnclaveApiKey");
      s.print_row("Meltdown/L1TF-FIXED silicon (no help!)", attack.leak_secret(13));
    }
    {
      sim::Machine machine(sim::MachineProfile::server(), 623);
      arch::Sgx sgx(machine);
      attacks::SgxPectreAttack::Config config;
      config.enclave_has_fence = true;
      attacks::SgxPectreAttack attack(machine, sgx, "EnclaveApiKey", 0, config);
      s.print_row("fence-hardened enclave (SDK mitigation)", attack.leak_secret(13, 1));
    }
    std::cout << "(the paper's closing §4.2 worry: TEEs need their own transient-\n"
                 " execution evaluation — faults were never the only way in)\n";
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
