// Workload catalog for the campaign service.
//
// A spec names its workload by `kind`; the catalog maps that name to a
// trial body with a fixed POD result type. Keeping the result type uniform
// (two u64 lanes) is what lets the daemon checkpoint, wire-encode, and
// digest any job without templating the whole control plane — and a body
// is exactly the closure a direct caller would hand to
// run_campaign_resilient, so daemon execution is the same code path as a
// hand-launched campaign (bit-identical results, asserted in tests and the
// CI smoke).
//
// Kinds:
//  * "mix"          — seed-keyed splitmix64 PRF, no machine. The cheap
//                     deterministic workload for scheduler/protocol tests;
//                     trial_delay_us stretches wall time without touching
//                     the result.
//  * "spectre_leak" — the E12 reference workload: pooled mobile machine,
//                     Spectre-PHT leak of a planted byte. lo = leaked flag,
//                     hi = leaked value.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/resilience/resilient.h"
#include "core/service/spec.h"

namespace hwsec::core::service {

/// Uniform POD trial result: every catalog kind packs its outcome into two
/// u64 lanes so any divergence breaks bitwise equality.
struct ServiceTrialResult {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const ServiceTrialResult& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

using ServiceOutcomes = std::vector<TrialOutcome<ServiceTrialResult>>;

/// Registered kind names (for error messages and the CLI).
std::vector<std::string> catalog_kinds();

bool known_kind(const std::string& kind);

/// Builds the trial body for `spec.kind`. Throws SimError(kConfigError)
/// for an unknown kind.
std::function<ServiceTrialResult(const TrialContext&)> make_trial_body(const CampaignSpec& spec);

/// Runs `spec` through the engine a direct caller would use:
/// run_campaign_resilient when spec.processes == 0, run_campaign_sharded
/// otherwise. `res` arrives with the caller's environment (checkpoint
/// path/scope, shared MachinePool); the spec's own policy/attempt/budget
/// knobs are folded in here so every entry point applies them identically.
///
/// `on_trial` (optional) fires after each completed trial attempt sequence
/// — the daemon's progress feed. It runs outside the trial body's result
/// computation, so results are bit-identical with or without it. Sharded
/// runs ignore it (trials execute in forked children; their progress
/// surfaces only at completion).
ServiceOutcomes run_spec(const CampaignSpec& spec, ResilienceConfig res,
                         const std::function<void()>& on_trial = {});

}  // namespace hwsec::core::service
