// E4 — §4.1 architectural cache-side-channel defenses: the same
// Prime+Probe attacker against the same AES service hosted by each
// architecture.
//
// Paper's expected shape:
//   SGX        — "do not provide cache side-channel protection": key falls;
//   TrustZone  — same (TruSpy [44]): key falls;
//   Sanctum    — shared-LLC partitioning via page coloring: attack starves;
//   Sanctuary  — exclusion from shared caches + private flush: attack blind;
//   constant-time software — nothing to observe.
//
// Plus the E4 ablation: way-partitioning (DAWG-style) as the alternative
// LLC partitioning mechanism, and the cost side of each defense (enclave
// AES latency).
#include <benchmark/benchmark.h>

#include "arch/sanctuary.h"
#include "arch/sanctum.h"
#include "arch/sgx.h"
#include "arch/trustzone.h"
#include "attacks/cache/cache_attacks.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                             0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
constexpr std::uint64_t kTrials = 600;

struct Outcome {
  std::string host;
  std::string defense;
  std::uint32_t nibbles = 0;
  double victim_latency = 0.0;  ///< mean victim cycles per encryption.
};

template <typename MakeVictim>
Outcome run_attack(const std::string& host, const std::string& defense, sim::Machine& machine,
                   MakeVictim&& make_victim,
                   attacks::EvictionSetBuilder::FrameAllocator allocator = nullptr) {
  auto victim = make_victim();
  attacks::CacheAttackConfig config;
  config.trials = kTrials;
  double total_latency = 0.0;
  std::uint64_t runs = 0;
  const auto fn = [&victim, &total_latency, &runs](const crypto::AesBlock& pt) {
    const auto run = victim->encrypt(pt);
    total_latency += static_cast<double>(run.latency);
    ++runs;
    return run;
  };
  const auto result =
      attacks::prime_probe_attack(machine, victim->layout(), fn, config, std::move(allocator));
  Outcome o;
  o.host = host;
  o.defense = defense;
  o.nibbles = result.correct_nibbles(kKey);
  o.victim_latency = runs ? total_latency / static_cast<double>(runs) : 0.0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Outcome> outcomes;

  {  // SGX: no cache defense.
    sim::Machine machine(sim::MachineProfile::server(), 401);
    arch::Sgx sgx(machine);
    outcomes.push_back(run_attack("Intel SGX", "none", machine, [&] {
      return std::make_unique<attacks::EnclaveAesVictim>(sgx, kKey, 1);
    }));
  }
  {  // TrustZone: no cache defense.
    sim::Machine machine(sim::MachineProfile::mobile(), 402);
    arch::TrustZone tz(machine);
    tee::EnclaveImage identity;
    identity.name = "aes-service";
    identity.code = {0xAE, 0x50};
    identity.heap_pages = 2;
    tz.vendor_sign(identity);
    outcomes.push_back(run_attack("ARM TrustZone", "none (TruSpy)", machine, [&] {
      return std::make_unique<attacks::EnclaveAesVictim>(tz, kKey, 0);
    }));
  }
  {  // Sanctum: page-coloring LLC partition.
    sim::Machine machine(sim::MachineProfile::server(), 403);
    arch::Sanctum sanctum(machine);
    outcomes.push_back(run_attack(
        "Sanctum", "LLC coloring", machine,
        [&] { return std::make_unique<attacks::EnclaveAesVictim>(sanctum, kKey, 1); },
        [&sanctum] { return sanctum.alloc_os_frame(); }));
  }
  {  // Sanctuary: shared-cache exclusion + flush.
    sim::Machine machine(sim::MachineProfile::mobile(), 404);
    arch::Sanctuary sanctuary(machine);
    outcomes.push_back(run_attack("Sanctuary", "exclusion+flush", machine, [&] {
      return std::make_unique<attacks::EnclaveAesVictim>(sanctuary, kKey, 1);
    }));
  }
  {  // Software countermeasure: constant-time AES in a plain process.
    sim::Machine machine(sim::MachineProfile::server(), 405);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    struct CtVictim {
      crypto::AesConstantTime aes;
      attacks::TableLayout layout_;
      const attacks::TableLayout& layout() const { return layout_; }
      attacks::AesCacheVictim::Run encrypt(const crypto::AesBlock& pt) {
        return {aes.encrypt(pt), 120};  // fixed-latency software.
      }
    };
    outcomes.push_back(run_attack("(software)", "constant-time AES", machine, [&] {
      auto v = std::make_unique<CtVictim>(CtVictim{crypto::AesConstantTime(kKey),
                                                   attacks::layout_tables(tables)});
      return v;
    }));
  }
  {  // Ablation: DAWG-style way partitioning instead of coloring.
    sim::Machine machine(sim::MachineProfile::server(), 406);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    // Enclave domain 7 gets ways 0-3; everyone else ways 4-15.
    machine.caches().llc().set_way_partition(7, 0, 4);
    machine.caches().llc().set_way_partition(sim::kDomainNormal, 4, 12);
    outcomes.push_back(run_attack("(ablation)", "LLC way partition", machine, [&] {
      return std::make_unique<attacks::AesCacheVictim>(machine, 1, 7, tables, kKey);
    }));
  }
  {  // Ablation: randomized mapping ([40]-family), mapping learned by attacker.
    sim::Machine machine(sim::MachineProfile::server(), 408);
    machine.caches().llc().set_index_scramble(0xD00D);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    outcomes.push_back(run_attack("(ablation)", "rand. mapping (static)", machine, [&] {
      return std::make_unique<attacks::AesCacheVictim>(machine, 1, 7, tables, kKey);
    }));
  }
  {  // Ablation: randomized mapping with periodic re-keying.
    sim::Machine machine(sim::MachineProfile::server(), 409);
    machine.caches().llc().set_index_scramble(0xD00D);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    auto inner = std::make_unique<attacks::AesCacheVictim>(machine, 1, 7, tables, kKey);
    struct RekeyingVictim {
      attacks::AesCacheVictim* inner;
      sim::Machine* machine;
      std::uint64_t calls = 0;
      std::uint64_t epoch = 0;
      const attacks::TableLayout& layout() const { return inner->layout(); }
      attacks::AesCacheVictim::Run encrypt(const crypto::AesBlock& pt) {
        if (++calls % 8 == 0) {
          machine->caches().llc().rekey(0xD00D + (++epoch));
        }
        return inner->encrypt(pt);
      }
    };
    auto keeper = std::make_unique<RekeyingVictim>(RekeyingVictim{inner.get(), &machine});
    outcomes.push_back(run_attack("(ablation)", "rand. mapping + rekey", machine,
                                  [&] { return std::move(keeper); }));
  }
  {  // Baseline for the cost column: unprotected plain process.
    sim::Machine machine(sim::MachineProfile::server(), 407);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    outcomes.push_back(run_attack("(baseline)", "no defense", machine, [&] {
      return std::make_unique<attacks::AesCacheVictim>(machine, 1, 7, tables, kKey);
    }));
  }

  hwsec::bench::section("E4 / §4.1 — Prime+Probe (600 obs.) vs. architectural defenses");
  hwsec::bench::Table t(
      {"host", "cache defense", "nibbles ok /16", "attack works", "victim cyc/blk"},
      {15, 24, 16, 14, 16});
  t.print_header();
  for (const auto& o : outcomes) {
    t.print_row(o.host, o.defense, o.nibbles, o.nibbles >= 12 ? "YES" : "no",
                o.victim_latency);
  }
  std::cout << "\n(defense cost shows in victim cyc/blk: Sanctuary's exclusion runs table\n"
               " lookups at DRAM speed after the first L1 fill; partitioning is near-free)\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
