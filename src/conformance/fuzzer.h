// Fuzzing front-end: campaigns of differential trials, shrinking, corpus.
//
// run_fuzz() fans trials out through core::run_campaign, so the fuzzer
// inherits the engine's determinism contract (trial i's verdict depends
// only on (campaign seed, i) — identical at any worker count), its machine
// pool, and its observability (per-trial spans plus the
// conformance_trials / conformance_divergences counters).
//
// Trial i runs architecture archs[i % archs.size()], so a smoke budget
// spreads evenly across all eight profiles; every fresh_every-th trial
// builds its machine from scratch instead of leasing from the pool,
// keeping the snapshot/reset path itself under differential test.
//
// Failures are shrunk sequentially after the campaign (shrinking re-runs
// the differential hundreds of times; doing it inside trial bodies would
// destroy the smoke budget) and optionally written to a corpus directory
// for ctest replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "conformance/differ.h"
#include "conformance/shrink.h"

namespace hwsec::conformance {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t trials = 1000;
  unsigned workers = 0;  ///< 0 = ThreadPool default.
  /// Every Nth trial uses a fresh-built machine instead of the pool
  /// (0: always pooled).
  std::size_t fresh_every = 16;
  BugInjection inject = BugInjection::kNone;
  std::vector<FuzzArch> archs{std::begin(kAllFuzzArchs), std::end(kAllFuzzArchs)};
  /// Directory for minimized failing cases ("" = don't persist).
  std::string corpus_dir;
  /// At most this many failures are shrunk/persisted; the rest are only
  /// counted (shrinking is ~100 differential runs per failure).
  std::size_t max_shrunk = 8;
};

struct FuzzFailure {
  TrialVerdict verdict;    ///< the original (unshrunk) trial's verdict.
  GeneratedCase shrunk;    ///< minimized reproducer.
  std::size_t instructions = 0;  ///< non-nop instructions after shrinking.
  std::string corpus_path;       ///< "" unless persisted.
};

struct FuzzReport {
  std::size_t trials = 0;
  std::size_t divergences = 0;       ///< failing trials (diff or invariant).
  std::size_t secret_leaks = 0;
  std::vector<FuzzFailure> failures; ///< shrunk subset, <= max_shrunk.

  bool ok() const { return divergences == 0; }
};

FuzzReport run_fuzz(const FuzzConfig& config);

/// Replays one corpus file differentially (fresh machine, no injection).
TrialVerdict replay_corpus_file(const std::string& path);

/// Reads HWSEC_FUZZ_TRIALS / HWSEC_FUZZ_SEED / HWSEC_FUZZ_WORKERS from the
/// environment over the given defaults (the CI smoke and long-run knobs).
FuzzConfig fuzz_config_from_env(FuzzConfig defaults);

}  // namespace hwsec::conformance
