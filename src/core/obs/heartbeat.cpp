#include "core/obs/heartbeat.h"

#include <cstdlib>
#include <iostream>

namespace hwsec::obs {

Heartbeat::Heartbeat(std::chrono::milliseconds interval, std::function<std::string()> line)
    : line_(std::move(line)) {
  if (interval.count() > 0 && line_) {
    thread_ = std::thread([this, interval] { loop(interval); });
  }
}

Heartbeat::~Heartbeat() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
}

void Heartbeat::loop(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!cv_.wait_for(lock, interval, [this] { return stopping_; })) {
    lock.unlock();
    // Format and emit without the lock: the formatter may be slow (it
    // scrapes counters) and must never delay the destructor.
    const std::string line = line_();
    std::cerr << line << std::endl;  // flush: heartbeats exist for live logs.
    lock.lock();
  }
}

std::chrono::milliseconds heartbeat_interval_from_env() {
  const char* value = std::getenv("HWSEC_HEARTBEAT_MS");
  if (value == nullptr || *value == '\0') {
    return std::chrono::milliseconds(0);
  }
  const long parsed = std::strtol(value, nullptr, 10);
  return std::chrono::milliseconds(parsed > 0 ? parsed : 0);
}

}  // namespace hwsec::obs
