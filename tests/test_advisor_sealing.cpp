// Architecture advisor (the paper's conclusion, executable) and SGX
// sealing / local attestation.
#include <gtest/gtest.h>

#include "arch/sgx.h"
#include "core/advisor.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace core = hwsec::core;

namespace {

const core::Recommendation& top_viable(const std::vector<core::Recommendation>& ranked) {
  for (const auto& r : ranked) {
    if (r.viable) {
      return r;
    }
  }
  return ranked.front();
}

TEST(Advisor, CollectsAllEightArchitectures) {
  const auto traits = core::all_architecture_traits();
  ASSERT_EQ(traits.size(), 8u);
  std::vector<std::string> names;
  for (const auto& t : traits) {
    names.push_back(t.name);
  }
  for (const char* expected : {"Intel SGX", "Sanctum", "ARM TrustZone", "Sanctuary", "SMART",
                               "Sancus", "TrustLite", "TyTAN"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
}

TEST(Advisor, CloudMultiTenantWithCacheThreatPicksSanctum) {
  core::Requirements req;
  req.platform = sim::DeviceClass::kServer;
  req.multiple_enclaves = true;
  req.remote_attestation = true;
  req.cache_sca_threat = true;
  req.malicious_peripherals = true;
  const auto ranked = core::recommend(req);
  EXPECT_EQ(top_viable(ranked).traits.name, "Sanctum")
      << "§4.1: only Sanctum partitions the shared LLC on server-class hardware";
}

TEST(Advisor, ThirdPartyMobileAppsOnShippedSiliconPickSanctuary) {
  core::Requirements req;
  req.platform = sim::DeviceClass::kMobile;
  req.multiple_enclaves = true;
  req.no_vendor_gatekeeping = true;
  req.existing_hardware_only = true;
  req.cache_sca_threat = true;
  const auto ranked = core::recommend(req);
  EXPECT_EQ(top_viable(ranked).traits.name, "Sanctuary");
  // And TrustZone must be marked non-viable for this requirement set.
  for (const auto& r : ranked) {
    if (r.traits.name == "ARM TrustZone") {
      EXPECT_FALSE(r.viable) << "single enclave + vendor trust are hard misses";
    }
  }
}

TEST(Advisor, RealTimeSensorWithSecureStoragePicksTyTan) {
  core::Requirements req;
  req.platform = sim::DeviceClass::kEmbedded;
  req.multiple_enclaves = true;
  req.remote_attestation = true;
  req.real_time = true;
  const auto ranked = core::recommend(req);
  EXPECT_EQ(top_viable(ranked).traits.name, "TyTAN") << "the §3.3 real-time extension";
}

TEST(Advisor, AttestationOnlyBudgetStillExcludesIsolationlessDesignsWhenNeeded) {
  core::Requirements req;
  req.platform = sim::DeviceClass::kEmbedded;
  req.multiple_enclaves = true;
  const auto ranked = core::recommend(req);
  for (const auto& r : ranked) {
    if (r.traits.name == "SMART") {
      EXPECT_FALSE(r.viable) << "SMART has no code isolation";
    }
  }
}

TEST(Advisor, WrongPlatformClassIsNeverViable) {
  core::Requirements req;
  req.platform = sim::DeviceClass::kEmbedded;
  const auto ranked = core::recommend(req);
  for (const auto& r : ranked) {
    if (r.traits.name == "Intel SGX" || r.traits.name == "Sanctum") {
      EXPECT_FALSE(r.viable);
    }
  }
}

TEST(Advisor, RenderListsViableOptionsWithReasons) {
  core::Requirements req;
  req.platform = sim::DeviceClass::kMobile;
  req.secure_peripheral_io = true;
  const auto rendered = core::render_recommendations(req, core::recommend(req));
  EXPECT_NE(rendered.find("ARM TrustZone"), std::string::npos);
  EXPECT_NE(rendered.find("Sanctuary"), std::string::npos);
  EXPECT_NE(rendered.find("+"), std::string::npos);
}

// ---- SGX sealing & local attestation -------------------------------------

class SgxSealingTest : public ::testing::Test {
 protected:
  SgxSealingTest() : machine_(sim::MachineProfile::server(), 3100), sgx_(machine_) {
    tee::EnclaveImage a;
    a.name = "alpha";
    a.code = {0xA1};
    alpha_ = sgx_.create_enclave(a).value;
    tee::EnclaveImage b;
    b.name = "beta";
    b.code = {0xB2};
    beta_ = sgx_.create_enclave(b).value;
  }

  sim::Machine machine_;
  arch::Sgx sgx_;
  tee::EnclaveId alpha_ = 0;
  tee::EnclaveId beta_ = 0;
};

TEST_F(SgxSealingTest, SealUnsealRoundTripBoundToMeasurement) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  const auto blob = sgx_.seal(alpha_, data);
  ASSERT_TRUE(blob.ok());
  EXPECT_NE(blob.value.ciphertext, data);
  const auto opened = sgx_.unseal(alpha_, blob.value);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value, data);
  EXPECT_EQ(sgx_.unseal(beta_, blob.value).error, tee::EnclaveError::kVerificationFailed);
}

TEST_F(SgxSealingTest, SealedDataSurvivesEnclaveTeardown) {
  const std::vector<std::uint8_t> data = {9, 9, 9};
  const auto blob = sgx_.seal(alpha_, data);
  sgx_.destroy_enclave(alpha_);
  // Relaunch the same (measured-identical) enclave.
  tee::EnclaveImage a;
  a.name = "alpha";
  a.code = {0xA1};
  const auto relaunched = sgx_.create_enclave(a).value;
  const auto opened = sgx_.unseal(relaunched, blob.value);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value, data);
}

TEST_F(SgxSealingTest, TamperedBlobRejected) {
  auto blob = sgx_.seal(alpha_, std::vector<std::uint8_t>{7});
  blob.value.ciphertext[0] ^= 1;
  EXPECT_EQ(sgx_.unseal(alpha_, blob.value).error, tee::EnclaveError::kVerificationFailed);
}

TEST_F(SgxSealingTest, LocalReportVerifiesOnlyAtTheTarget) {
  tee::Nonce nonce{};
  nonce[0] = 0x1A;
  const auto report = sgx_.local_report(alpha_, beta_, nonce);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value.measurement, sgx_.enclave(alpha_)->measurement);
  EXPECT_TRUE(sgx_.verify_local_report(beta_, report.value, nonce));
  EXPECT_FALSE(sgx_.verify_local_report(alpha_, report.value, nonce))
      << "a report targeted at beta must not verify at alpha";
  tee::Nonce stale{};
  EXPECT_FALSE(sgx_.verify_local_report(beta_, report.value, stale)) << "replay";
}

}  // namespace
