#include "crypto/modmath.h"

#include "sim/sim_error.h"

namespace hwsec::crypto {

u64 powmod(u64 base, u64 exp, u64 n) {
  if (n == 1) {
    return 0;
  }
  u64 result = 1;
  base %= n;
  while (exp > 0) {
    if (exp & 1) {
      result = mulmod(result, base, n);
    }
    base = mulmod(base, base, n);
    exp >>= 1;
  }
  return result;
}

u64 gcd(u64 a, u64 b) {
  while (b != 0) {
    const u64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::optional<u64> invmod(u64 a, u64 n) {
  // Extended Euclid with signed 128-bit coefficients.
  i128 t = 0, new_t = 1;
  i128 r = static_cast<i128>(n), new_r = static_cast<i128>(a % n);
  while (new_r != 0) {
    const i128 q = r / new_r;
    const i128 tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    const i128 tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r != 1) {
    return std::nullopt;
  }
  if (t < 0) {
    t += static_cast<i128>(n);
  }
  return static_cast<u64>(t);
}

bool is_prime(u64 n) {
  if (n < 2) {
    return false;
  }
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) {
      return n == p;
    }
  }
  u64 d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // Deterministic witness set for 64-bit inputs (Sinclair).
  for (u64 a : {2ull, 325ull, 9375ull, 28178ull, 450775ull, 9780504ull, 1795265022ull}) {
    const u64 a_mod = a % n;
    if (a_mod == 0) {
      continue;
    }
    u64 x = powmod(a_mod, d, n);
    if (x == 1 || x == n - 1) {
      continue;
    }
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

u64 gen_prime(std::uint32_t bits, hwsec::sim::Rng& rng) {
  if (bits < 2 || bits > 62) {
    throw hwsec::SimError(hwsec::ErrorKind::kConfigError, "gen_prime supports 2..62 bits");
  }
  for (int attempts = 0; attempts < 1'000'000; ++attempts) {
    u64 candidate = rng.next_u64() & ((1ull << bits) - 1);
    candidate |= (1ull << (bits - 1)) | 1ull;  // exact bit length, odd.
    if (is_prime(candidate)) {
      return candidate;
    }
  }
  throw hwsec::SimError(hwsec::ErrorKind::kInternalError, "gen_prime failed to find a prime");
}

Montgomery::Montgomery(u64 modulus) : n_(modulus) {
  if ((modulus & 1) == 0 || modulus < 3) {
    throw hwsec::SimError(hwsec::ErrorKind::kConfigError, "Montgomery modulus must be odd and >= 3");
  }
  // n' = -n^{-1} mod 2^64 by Newton iteration: starting from a seed
  // correct mod 2, each step doubles the number of correct low bits,
  // so 6 steps reach 64 bits.
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - n_ * inv;  // doubles the number of correct low bits.
  }
  n_prime_ = ~inv + 1;  // -inv mod 2^64.

  r_mod_n_ = static_cast<u64>((static_cast<u128>(1) << 64) % n_);
  r2_mod_n_ = static_cast<u64>((static_cast<u128>(r_mod_n_) * r_mod_n_) % n_);
}

u64 Montgomery::reduce(u128 t, bool* extra_reduction) const {
  const u64 m = static_cast<u64>(t) * n_prime_;
  const u128 full = t + static_cast<u128>(m) * n_;
  u64 result = static_cast<u64>(full >> 64);
  const bool extra = result >= n_;
  if (extra) {
    result -= n_;
  }
  if (extra_reduction != nullptr) {
    *extra_reduction = extra;
  }
  return result;
}

u64 Montgomery::to_mont(u64 x) const {
  return reduce(static_cast<u128>(x % n_) * r2_mod_n_, nullptr);
}

u64 Montgomery::from_mont(u64 x) const { return reduce(static_cast<u128>(x), nullptr); }

u64 Montgomery::mul(u64 a_mont, u64 b_mont, bool* extra_reduction) const {
  return reduce(static_cast<u128>(a_mont) * b_mont, extra_reduction);
}

u64 Montgomery::mul_ct(u64 a_mont, u64 b_mont) const {
  const u128 t = static_cast<u128>(a_mont) * b_mont;
  const u64 m = static_cast<u64>(t) * n_prime_;
  const u128 full = t + static_cast<u128>(m) * n_;
  const u64 raw = static_cast<u64>(full >> 64);
  // Unconditional subtract + masked select: no data-dependent event.
  const u64 reduced = raw - n_;
  const u64 mask = static_cast<u64>(-static_cast<std::int64_t>(raw >= n_));
  return (reduced & mask) | (raw & ~mask);
}

}  // namespace hwsec::crypto
