// Substrate microbenchmarks (host performance of the simulator itself,
// straight google-benchmark): how fast the framework simulates cache
// accesses, executes instructions, encrypts, and crunches traces. These
// numbers bound experiment design (how many trials a bench can afford),
// not any paper claim.
#include <benchmark/benchmark.h>

#include "attacks/physical/power_analysis.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "sca/cpa.h"
#include "sim/machine.h"

namespace sim = hwsec::sim;
namespace crypto = hwsec::crypto;
namespace attacks = hwsec::attacks;
namespace sca = hwsec::sca;

namespace {

void BM_CacheTouch(benchmark::State& state) {
  sim::Machine machine(sim::MachineProfile::server(), 1);
  const sim::PhysAddr base = machine.alloc_frames(64);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.touch(0, 0, base + (i * 64) % (64 * sim::kPageSize)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheTouch);

void BM_CpuInstructionThroughput(benchmark::State& state) {
  sim::Machine machine(sim::MachineProfile::server(), 2);
  machine.cpu(0).mmu().set_bare_mode(true);
  sim::ProgramBuilder b(0x3000);
  b.label("loop")
      .addi(sim::R1, sim::R1, 1)
      .xori(sim::R2, sim::R1, 0x55)
      .andi(sim::R3, sim::R2, 0xFF)
      .jump("loop");
  const sim::Program p = b.build();
  machine.cpu(0).load_program(p);
  machine.cpu(0).set_pc(p.base);
  for (auto _ : state) {
    machine.cpu(0).run(10'000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_CpuInstructionThroughput)->Unit(benchmark::kMillisecond);

void BM_AesTTableEncrypt(benchmark::State& state) {
  const crypto::AesKey key{};
  crypto::AesTTable aes(key);
  crypto::AesBlock block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AesTTableEncrypt);

void BM_AesConstantTimeEncrypt(benchmark::State& state) {
  const crypto::AesKey key{};
  crypto::AesConstantTime aes(key);
  crypto::AesBlock block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AesConstantTimeEncrypt);

void BM_Sha256PerKiB(benchmark::State& state) {
  const std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256PerKiB);

void BM_TraceCollection(benchmark::State& state) {
  const crypto::AesKey key{};
  sca::RecorderConfig rec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attacks::collect_aes_traces(key, attacks::AesVariant::kTTable, 32, rec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_TraceCollection)->Unit(benchmark::kMillisecond);

void BM_CpaKeyAttack(benchmark::State& state) {
  const crypto::AesKey key{};
  sca::RecorderConfig rec;
  const auto set = attacks::collect_aes_traces(key, attacks::AesVariant::kTTable,
                                               static_cast<std::size_t>(state.range(0)), rec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sca::cpa_attack_key(set));
  }
}
BENCHMARK(BM_CpaKeyAttack)->Arg(128)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
