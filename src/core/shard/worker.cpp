#include "core/shard/worker.h"

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <thread>

#include "core/shard/wire.h"

namespace hwsec::core::shard {

namespace {

/// Serializes frame writes from the trial loop and the heartbeat thread
/// onto one transport. Frames are small, but interleaved partial writes
/// would corrupt the stream, so every write holds the lock for the full
/// frame.
class FrameWriter {
 public:
  explicit FrameWriter(Transport& transport) : transport_(transport) {}

  bool send(FrameType type, std::string payload = {}) {
    std::lock_guard<std::mutex> lock(mutex_);
    return transport_.send(Frame{type, std::move(payload)});
  }

 private:
  Transport& transport_;
  std::mutex mutex_;
};

/// Background liveness beacon. Joinable and stopped before the worker
/// exits normally; when the worker SIGKILLs itself the thread dies with
/// the process, which is exactly the silence the supervisor listens for.
class HeartbeatThread {
 public:
  HeartbeatThread(FrameWriter& writer, std::chrono::milliseconds interval)
      : writer_(writer), interval_(interval) {
    if (interval_.count() > 0) {
      thread_ = std::thread([this] { loop(); });
    }
  }

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
      lock.unlock();
      writer_.send(FrameType::kHeartbeat);
      lock.lock();
      cv_.wait_for(lock, interval_, [this] { return stopping_; });
    }
  }

  FrameWriter& writer_;
  const std::chrono::milliseconds interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace

int worker_loop(Transport& transport, const WorkerEnv& env, const TrialRunner& run_trial) {
  // The supervisor owns our lifetime; if it dies, writes fail with EPIPE
  // (not a fatal signal) and the loop exits.
  SigpipeIgnore no_sigpipe;
  FrameWriter writer(transport);
  HeartbeatThread heartbeat(writer, env.heartbeat_interval);

  Frame frame;
  while (transport.recv_blocking(frame, std::chrono::milliseconds(-1))) {
    if (frame.type == FrameType::kShutdown) {
      return 0;
    }
    if (frame.type != FrameType::kAssign) {
      continue;  // unknown-but-valid frame type: ignore (forward compat).
    }
    AssignPayload assign;
    if (!decode_assign(frame.payload, assign)) {
      return 2;  // malformed assignment: die loudly; the supervisor migrates.
    }
    for (std::uint64_t index = assign.begin; index < assign.end; ++index) {
      if (assign.done(index)) {
        continue;  // restored from checkpoint; never re-run finished trials.
      }
      // Seeded self-fault BEFORE the trial: the crash loses this trial's
      // result (it was never reported), forcing the supervisor down the
      // migrate-and-retry path. Keyed by assignment attempt, so the retry
      // rolls fresh dice and the campaign converges.
      const WorkerFault fault =
          ChaosInjector(env.chaos, static_cast<std::size_t>(index), assign.attempt + 1)
              .roll_worker_fault();
      if (fault == WorkerFault::kKill) {
        raise(SIGKILL);
      } else if (fault == WorkerFault::kStop) {
        raise(SIGSTOP);  // hangs here until the supervisor SIGKILLs us.
      }
      TrialPayload trial;
      trial.index = index;
      trial.record = run_trial(static_cast<std::size_t>(index));
      if (!writer.send(FrameType::kTrial, encode_trial(trial))) {
        return 3;  // supervisor gone; nothing left to report to.
      }
    }
    if (!writer.send(FrameType::kShardDone, encode_shard_done(assign.shard_id))) {
      return 3;
    }
  }
  return 0;  // command stream EOF: supervisor closed us out.
}

int worker_loop(int cmd_fd, int out_fd, const WorkerEnv& env, const TrialRunner& run_trial) {
  FdTransport transport(cmd_fd, out_fd, kMaxShardFramePayload);
  transport.set_label("pipe");
  return worker_loop(transport, env, run_trial);
}

}  // namespace hwsec::core::shard
