// Differential conformance fuzzer: the fuzzer's own test suite.
//
// Covers the four claims the subsystem makes:
//  * determinism — same seed, same verdict sequence at any worker count;
//  * soundness  — all eight architecture profiles run divergence-free
//    (a sample here; CI's fuzz-smoke job runs the 10k-program budget);
//  * teeth      — a deliberately mis-installed enforcement mechanism is
//    caught and shrunk to a <= 20-instruction reproducer;
//  * regression — every minimized case in tests/corpus/ replays clean,
//    and the corpus format round-trips exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <vector>

#include "conformance/corpus.h"
#include "conformance/differ.h"
#include "conformance/fuzzer.h"
#include "conformance/generator.h"
#include "conformance/shrink.h"
#include "core/campaign.h"

namespace conf = hwsec::conformance;
namespace core = hwsec::core;

namespace {

conf::TrialVerdict fuzz_body(const core::TrialContext& ctx, conf::MachineVariant variant) {
  const conf::FuzzArch arch =
      conf::kAllFuzzArchs[ctx.index % std::size(conf::kAllFuzzArchs)];
  return conf::run_trial(arch, ctx.seed, ctx.machines, variant);
}

std::vector<conf::TrialVerdict> campaign(std::uint64_t seed, std::size_t trials,
                                         unsigned workers, conf::MachineVariant variant) {
  const std::function<conf::TrialVerdict(const core::TrialContext&)> body =
      [variant](const core::TrialContext& ctx) { return fuzz_body(ctx, variant); };
  return core::run_campaign({.seed = seed, .trials = trials, .workers = workers}, body);
}

}  // namespace

TEST(Conformance, AllArchitecturesDivergenceFree) {
  const auto verdicts = campaign(0xC04F04, 64, 0, conf::MachineVariant::kPooled);
  for (const conf::TrialVerdict& v : verdicts) {
    EXPECT_FALSE(v.failed()) << conf::to_string(v.arch) << " seed=" << v.seed
                             << (v.mismatches.empty() ? "" : ": " + v.mismatches.front());
  }
}

TEST(Conformance, DeterministicAcrossWorkerCounts) {
  const auto w1 = campaign(0xDE7E12, 48, 1, conf::MachineVariant::kPooled);
  const auto w2 = campaign(0xDE7E12, 48, 2, conf::MachineVariant::kPooled);
  const auto w8 = campaign(0xDE7E12, 48, 8, conf::MachineVariant::kPooled);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w8);
}

TEST(Conformance, GeneratorIsDeterministicAndSecretFree) {
  const conf::ArchContext& ctx = conf::arch_context(conf::FuzzArch::kSgx);
  const conf::GeneratedCase a = conf::generate_case(ctx.spec, 7);
  const conf::GeneratedCase b = conf::generate_case(ctx.spec, 7);
  EXPECT_EQ(conf::serialize_corpus(conf::FuzzArch::kSgx, a),
            conf::serialize_corpus(conf::FuzzArch::kSgx, b));
  for (const auto* program : {&a.normal, &a.enclave}) {
    for (const auto& inst : program->code) {
      EXPECT_NE(inst.op, hwsec::sim::Opcode::kRdCycle);
      EXPECT_NE(static_cast<std::uint32_t>(inst.imm) & 0xFFFF0000u, 0xA5EC0000u);
    }
  }
}

TEST(Conformance, InjectedDomainCheckSkipIsCaughtAndShrunk) {
  conf::FuzzConfig config;
  config.seed = 0x1BAD;
  config.trials = 16;
  config.inject = conf::BugInjection::kSkipDomainCheck;
  config.max_shrunk = 2;
  const conf::FuzzReport report = conf::run_fuzz(config);
  ASSERT_GT(report.divergences, 0u) << "injected bug went undetected";
  ASSERT_FALSE(report.failures.empty());
  for (const conf::FuzzFailure& f : report.failures) {
    EXPECT_LE(f.instructions, 20u) << "shrinker left a large reproducer";
    // The minimized case must still fail under the injection...
    const conf::ArchContext& arch = conf::arch_context(f.verdict.arch);
    EXPECT_TRUE(conf::run_case(arch, f.shrunk, 0, nullptr, conf::MachineVariant::kFresh,
                               conf::BugInjection::kSkipDomainCheck)
                    .failed());
    // ...and pass once the "bug" is gone (regression-test shape).
    EXPECT_FALSE(
        conf::run_case(arch, f.shrunk, 0, nullptr, conf::MachineVariant::kFresh).failed());
  }
}

TEST(Conformance, InjectedSilentZeroTripsInvariant) {
  // The silent-zero mis-installation must be flagged even by the directed
  // invariant probe alone (a divergence-free program still catches it).
  const conf::ArchContext& arch = conf::arch_context(conf::FuzzArch::kTrustZone);
  const conf::GeneratedCase test = conf::generate_case(arch.spec, 3);
  const conf::TrialVerdict v = conf::run_case(arch, test, 3, nullptr,
                                              conf::MachineVariant::kFresh,
                                              conf::BugInjection::kSilentZero);
  EXPECT_TRUE(v.failed());
}

TEST(Conformance, CorpusFormatRoundTrips) {
  const conf::ArchContext& ctx = conf::arch_context(conf::FuzzArch::kTyTan);
  const conf::GeneratedCase test = conf::generate_case(ctx.spec, 99);
  const std::string text = conf::serialize_corpus(conf::FuzzArch::kTyTan, test);
  const conf::CorpusCase parsed = conf::parse_corpus(text);
  EXPECT_EQ(parsed.arch, conf::FuzzArch::kTyTan);
  EXPECT_EQ(conf::serialize_corpus(parsed.arch, parsed.test), text);
}

TEST(Conformance, CorpusRejectsRdcycle) {
  const std::string text =
      "arch sgx\nprogram normal 0x400000\nrdcycle r1 r0 r0 eq 0\nhalt r0 r0 r0 eq 0\n";
  EXPECT_THROW(conf::parse_corpus(text), std::invalid_argument);
}

TEST(Conformance, PersistedCorpusReplaysClean) {
  // Every minimized regression case shipped in tests/corpus/ must replay
  // divergence-free against the current simulator.
  const std::vector<std::string> files = conf::list_corpus_files(HWSEC_CORPUS_DIR);
  EXPECT_FALSE(files.empty()) << "no corpus files found under " << HWSEC_CORPUS_DIR;
  for (const std::string& path : files) {
    const conf::TrialVerdict v = conf::replay_corpus_file(path);
    EXPECT_FALSE(v.failed()) << path << (v.mismatches.empty() ? "" : ": " + v.mismatches.front());
  }
}

TEST(Conformance, ShrinkerPreservesFailureAndShrinks) {
  const conf::ArchContext& arch = conf::arch_context(conf::FuzzArch::kSanctum);
  const conf::GeneratedCase test = conf::generate_case(arch.spec, 5);
  const std::size_t original = conf::case_instruction_count(test);
  const conf::ShrinkResult shrunk =
      conf::shrink_case(arch, test, conf::BugInjection::kSkipDomainCheck);
  EXPECT_LE(shrunk.instructions, original);
  EXPECT_TRUE(conf::run_case(arch, shrunk.test, 0, nullptr, conf::MachineVariant::kFresh,
                             conf::BugInjection::kSkipDomainCheck)
                  .failed());
}
