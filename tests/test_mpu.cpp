// Execution-aware MPU: permissions, code gates, entry points, locking.
// Configuration mistakes surface as SimError(kConfigError).
#include <gtest/gtest.h>

#include "sim/mpu.h"
#include "sim/sim_error.h"

namespace sim = hwsec::sim;

namespace {

TEST(Mpu, UncoveredMemoryDefaultsToAllow) {
  sim::Mpu mpu;
  EXPECT_EQ(mpu.check(0x1234, sim::AccessType::kWrite, 0), sim::Fault::kNone);
}

TEST(Mpu, PermissionBitsEnforced) {
  sim::Mpu mpu;
  mpu.add_region({.name = "rom", .start = 0x1000, .end = 0x2000, .readable = true,
                  .writable = false, .executable = true});
  EXPECT_EQ(mpu.check(0x1800, sim::AccessType::kRead, 0), sim::Fault::kNone);
  EXPECT_EQ(mpu.check(0x1800, sim::AccessType::kWrite, 0), sim::Fault::kProtection);
}

TEST(Mpu, OverlappingRegionsRejected) {
  sim::Mpu mpu;
  mpu.add_region({.name = "a", .start = 0x1000, .end = 0x2000});
  EXPECT_THROW(mpu.add_region({.name = "b", .start = 0x1800, .end = 0x2800}),
               hwsec::SimError);
  EXPECT_NO_THROW(mpu.add_region({.name = "c", .start = 0x2000, .end = 0x3000}));
}

TEST(Mpu, CodeGateAdmitsOnlyGatedPc) {
  sim::Mpu mpu;
  // SMART's central invariant: the key region reads only while PC is in ROM.
  mpu.add_region({.name = "key", .start = 0x5000, .end = 0x6000, .readable = true,
                  .writable = false, .executable = false, .code_gate_start = 0x1000,
                  .code_gate_end = 0x2000});
  EXPECT_EQ(mpu.check(0x5000, sim::AccessType::kRead, /*pc=*/0x1400), sim::Fault::kNone);
  EXPECT_EQ(mpu.check(0x5000, sim::AccessType::kRead, /*pc=*/0x9000),
            sim::Fault::kSecurityViolation);
  EXPECT_EQ(mpu.check(0x5000, sim::AccessType::kRead, /*pc=*/0x2000),
            sim::Fault::kSecurityViolation)
      << "gate end is exclusive";
}

TEST(Mpu, EntryPointsRestrictRegionEntry) {
  sim::Mpu mpu;
  mpu.add_region({.name = "code", .start = 0x1000, .end = 0x2000, .readable = true,
                  .writable = false, .executable = true, .code_gate_start = std::nullopt,
                  .code_gate_end = std::nullopt, .entry_points = {0x1000}});
  // Entering at the declared entry point: fine.
  EXPECT_EQ(mpu.check_fetch(0x1000, /*from=*/0x8000), sim::Fault::kNone);
  // Jumping into the middle from outside: vetoed (would skip the prologue).
  EXPECT_EQ(mpu.check_fetch(0x1100, /*from=*/0x8000), sim::Fault::kSecurityViolation);
  // Sequential execution inside the region: fine.
  EXPECT_EQ(mpu.check_fetch(0x1104, /*from=*/0x1100), sim::Fault::kNone);
}

TEST(Mpu, NonExecutableRegionRejectsFetch) {
  sim::Mpu mpu;
  mpu.add_region({.name = "data", .start = 0x3000, .end = 0x4000, .readable = true,
                  .writable = true, .executable = false});
  EXPECT_EQ(mpu.check_fetch(0x3000, 0x1000), sim::Fault::kProtection);
}

TEST(Mpu, LockPreventsReconfiguration) {
  sim::Mpu mpu;
  mpu.add_region({.name = "a", .start = 0x1000, .end = 0x2000});
  mpu.lock();
  EXPECT_THROW(mpu.add_region({.name = "b", .start = 0x3000, .end = 0x4000}), hwsec::SimError);
  EXPECT_THROW(mpu.clear(), hwsec::SimError);
  EXPECT_THROW(mpu.remove_region("a"), hwsec::SimError);
  mpu.reset();
  EXPECT_FALSE(mpu.locked());
  EXPECT_TRUE(mpu.regions().empty());
}

TEST(Mpu, RemoveRegionByName) {
  sim::Mpu mpu;
  mpu.add_region({.name = "a", .start = 0x1000, .end = 0x2000});
  EXPECT_TRUE(mpu.remove_region("a"));
  EXPECT_FALSE(mpu.remove_region("a"));
  EXPECT_EQ(mpu.check(0x1000, sim::AccessType::kWrite, 0), sim::Fault::kNone);
}

TEST(Mpu, EmptyAndHalfConfiguredRegionsRejected) {
  sim::Mpu mpu;
  EXPECT_THROW(mpu.add_region({.name = "e", .start = 0x1000, .end = 0x1000}),
               hwsec::SimError);
  EXPECT_THROW(mpu.add_region({.name = "g", .start = 0x1000, .end = 0x2000,
                               .code_gate_start = 0x100, .code_gate_end = std::nullopt}),
               hwsec::SimError);
}

}  // namespace
