#include "core/resilience/monitor.h"

namespace hwsec::core {

WallClockMonitor::WallClockMonitor(std::chrono::milliseconds timeout) : timeout_(timeout) {}

WallClockMonitor::~WallClockMonitor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

WallClockMonitor::Registration WallClockMonitor::watch(sim::TrialWatchdog& watchdog) {
  if (timeout_.count() <= 0) {
    return Registration();
  }
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    entries_[id] = Entry{&watchdog, std::chrono::steady_clock::now() + timeout_};
    if (!thread_.joinable()) {
      thread_ = std::thread([this] { loop(); });
    }
  }
  cv_.notify_all();
  return Registration(this, id);
}

void WallClockMonitor::Registration::release() {
  if (monitor_ != nullptr) {
    monitor_->unwatch(id_);
    monitor_ = nullptr;
  }
}

void WallClockMonitor::unwatch(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(id);
}

void WallClockMonitor::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto now = std::chrono::steady_clock::now();
    auto next_wake = now + timeout_;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.deadline <= now) {
        it->second.watchdog->cancel.store(true, std::memory_order_relaxed);
        it = entries_.erase(it);  // fired once; the trial will see it.
      } else {
        next_wake = std::min(next_wake, it->second.deadline);
        ++it;
      }
    }
    cv_.wait_until(lock, next_wake);
  }
}

}  // namespace hwsec::core
