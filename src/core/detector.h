// Cache-attack detection via hardware performance counters (paper §4.1's
// software countermeasure family, Chiappetta et al. [9]: "Real Time
// Detection of Cache-based Side-channel Attacks Using Hardware
// Performance Counters").
//
// A Prime+Probe campaign has an unmistakable counter signature: the
// victim's lines are evicted by a foreign domain at a rate no benign
// co-tenant produces, and the attacker's own miss volume explodes.
// The detector samples per-domain LLC statistics over observation
// windows and flags a window whose victim-eviction pressure exceeds a
// calibrated baseline multiple.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace hwsec::core {

struct DetectorConfig {
  /// Windows with victim evictions above baseline_mean * threshold_factor
  /// are flagged.
  double threshold_factor = 8.0;
  /// Minimum absolute evictions per window to flag (guards against a
  /// zero baseline).
  std::uint64_t min_evictions = 16;
};

struct WindowReading {
  std::uint64_t victim_evictions = 0;  ///< victim-owned lines displaced.
  std::uint64_t total_misses = 0;      ///< whole-LLC miss volume.
  bool flagged = false;
};

class CacheAttackDetector {
 public:
  CacheAttackDetector(hwsec::sim::Machine& machine, hwsec::sim::DomainId victim_domain,
                      DetectorConfig config = {});

  /// Calibration: call around `benign_windows` windows of attack-free
  /// operation; establishes the baseline eviction rate.
  void begin_window();
  WindowReading end_window();

  /// Ends calibration; subsequent windows are classified.
  void finish_calibration();
  bool calibrated() const { return calibrated_; }
  double baseline_mean() const { return baseline_mean_; }

  /// Windows flagged since calibration finished.
  std::uint64_t alerts() const { return alerts_; }
  const std::vector<WindowReading>& history() const { return history_; }

 private:
  std::uint64_t victim_evictions_now() const;
  std::uint64_t total_misses_now() const;

  hwsec::sim::Machine* machine_;
  hwsec::sim::DomainId victim_domain_;
  DetectorConfig config_;
  std::uint64_t window_start_evictions_ = 0;
  std::uint64_t window_start_misses_ = 0;
  bool in_window_ = false;
  bool calibrated_ = false;
  std::vector<double> calibration_samples_;
  double baseline_mean_ = 0.0;
  std::uint64_t alerts_ = 0;
  std::vector<WindowReading> history_;
};

}  // namespace hwsec::core
