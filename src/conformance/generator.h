// Seeded, constraint-aware random program generator.
//
// Produces a pair of decoded programs per trial — a normal-world program
// and an enclave/trustlet program reached through the kSvcEnterEnclave
// ecall — biased toward the behaviours the differential actually wants to
// stress: loads/stores across every interesting address class (legal data,
// read-only, supervisor, not-present, unmapped, enclave-owned secret),
// bounded loops, forward branches that mispredict, computed jumps, calls
// and returns, clflush, enclave enter/exit, and fault-raising accesses.
//
// Constraints that keep a random program oracle-checkable:
//  * never emits kRdCycle (timing is microarchitectural by definition);
//  * never materializes an immediate with the secret 0xA5EC prefix, so a
//    secret value appearing where the machine and oracle disagree is a
//    leak, not a collision;
//  * loops are counter-bounded (trip <= 6, nesting <= 2) and every other
//    backward transfer is impossible by construction, so all programs
//    terminate well inside the trial budget;
//  * r14 is reserved as the enclave return link: only the ecall services
//    write it.
#pragma once

#include <cstdint>

#include "conformance/env.h"
#include "sim/program.h"

namespace hwsec::conformance {

/// Step budget both executions run under. Generated programs terminate in
/// far fewer steps; the budget is a backstop for fault storms and for
/// service-id sequences that re-enter the enclave.
inline constexpr std::uint64_t kTrialBudget = 4096;

struct GeneratedCase {
  sim::Program normal;   ///< at spec.code_base; ends in kHalt.
  sim::Program enclave;  ///< at spec.enclave_code; ends in kSvcExitEnclave + kHalt.
};

/// Deterministic: depends only on (spec.arch-derived layout, seed).
GeneratedCase generate_case(const EnvSpec& spec, std::uint64_t seed);

}  // namespace hwsec::conformance
