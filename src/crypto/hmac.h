// HMAC-SHA256 (RFC 2104).
//
// The attestation primitive of the embedded architectures: SMART computes
// an HMAC over the attested memory region with a ROM-guarded key; TyTAN's
// secure storage and TrustLite's Trustlet reports use the same construct.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace hwsec::crypto {

using HmacKey = std::vector<std::uint8_t>;

/// HMAC-SHA256 of `data` under `key`.
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

/// Constant-time digest comparison (timing-safe verification).
bool digest_equal(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace hwsec::crypto
