// Sanctum model: page-coloring partition, DMA filter, walker checks,
// cache flush on enclave switches.
#include <gtest/gtest.h>

#include "arch/sanctum.h"
#include "sim/dma.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;

namespace {

class SanctumTest : public ::testing::Test {
 protected:
  SanctumTest() : machine_(sim::MachineProfile::server(), 31), sanctum_(machine_) {}

  tee::EnclaveImage image(const std::string& name = "enc") {
    tee::EnclaveImage i;
    i.name = name;
    i.code = {0xAA};
    i.secret = {'k', 'e', 'y'};
    return i;
  }

  sim::Machine machine_;
  arch::Sanctum sanctum_;
};

TEST_F(SanctumTest, EnclaveFramesShareOneColorDisjointFromOs) {
  const auto created = sanctum_.create_enclave(image());
  ASSERT_TRUE(created.ok());
  const tee::EnclaveInfo* info = sanctum_.enclave(created.value);
  const std::uint32_t colors = sanctum_.config().num_colors;
  const std::uint32_t enclave_color = machine_.frame_color(info->base, colors);
  for (std::uint32_t p = 0; p < info->pages; ++p) {
    EXPECT_EQ(machine_.frame_color(info->phys_of(p * sim::kPageSize), colors), enclave_color);
  }
  for (int i = 0; i < 32; ++i) {
    const sim::PhysAddr os_frame = sanctum_.alloc_os_frame();
    EXPECT_NE(machine_.frame_color(os_frame, colors), enclave_color)
        << "OS allocations must never share an enclave color";
  }
}

TEST_F(SanctumTest, ColoringMakesLlcSetsDisjoint) {
  const auto created = sanctum_.create_enclave(image());
  const tee::EnclaveInfo* info = sanctum_.enclave(created.value);
  const auto& llc = machine_.caches().llc();
  const sim::PhysAddr os_frame = sanctum_.alloc_os_frame();
  for (sim::PhysAddr a = 0; a < sim::kPageSize; a += 64) {
    for (sim::PhysAddr b = 0; b < sim::kPageSize; b += 64) {
      ASSERT_NE(llc.set_index(info->base + a), llc.set_index(os_frame + b));
    }
  }
}

TEST_F(SanctumTest, DmaIntoEnclaveMemoryIsVetoed) {
  const auto created = sanctum_.create_enclave(image());
  const tee::EnclaveInfo* info = sanctum_.enclave(created.value);
  sim::DmaDevice device(machine_.bus(), arch::kUntrustedDeviceDomain);
  const auto bytes = device.exfiltrate(info->base, 16);
  EXPECT_TRUE(bytes.empty()) << "the memory-controller filter must veto the first word";
  // Normal memory is still reachable.
  const sim::PhysAddr os_frame = sanctum_.alloc_os_frame();
  EXPECT_EQ(device.exfiltrate(os_frame, 16).size(), 16u);
}

TEST_F(SanctumTest, WalkerCheckBlocksOsMappingOfEnclaveFrames) {
  const auto created = sanctum_.create_enclave(image());
  const tee::EnclaveInfo* info = sanctum_.enclave(created.value);
  auto aspace = machine_.create_address_space();
  aspace.map(0x70000000, sim::page_base(info->base), sim::pte::kUser | sim::pte::kWritable);
  machine_.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor,
                                 aspace.root(), 3);
  EXPECT_EQ(machine_.cpu(0).mmu().translate(0x70000000, sim::AccessType::kRead).fault,
            sim::Fault::kSecurityViolation);
}

TEST_F(SanctumTest, PrivateCachesFlushedAroundEnclaveCalls) {
  const auto created = sanctum_.create_enclave(image());
  // Warm an OS line into core 0's L1.
  const sim::PhysAddr os_line = sanctum_.alloc_os_frame();
  machine_.touch(0, sim::kDomainNormal, os_line);
  ASSERT_TRUE(machine_.caches().in_l1d(0, os_line));
  sanctum_.call_enclave(created.value, 0, [](tee::EnclaveContext& ctx) { ctx.read8(0); });
  EXPECT_FALSE(machine_.caches().in_l1d(0, os_line))
      << "entry flush removes the previous occupant's L1 state";
  const tee::EnclaveInfo* info = sanctum_.enclave(created.value);
  EXPECT_FALSE(machine_.caches().in_l1d(0, info->base))
      << "exit flush removes the enclave's L1 state";
}

TEST_F(SanctumTest, NoMemoryEncryption) {
  // The documented SGX difference: Sanctum's DRAM holds plaintext (it
  // relies on the DMA filter + walker checks instead).
  const auto created = sanctum_.create_enclave(image());
  const tee::EnclaveInfo* info = sanctum_.enclave(created.value);
  EXPECT_EQ(machine_.memory().read8(info->base + 1), 'k');
}

TEST_F(SanctumTest, AttestationVerifies) {
  const auto created = sanctum_.create_enclave(image());
  tee::Nonce nonce{};
  nonce[7] = 0x4E;
  const auto report = sanctum_.attest(created.value, nonce);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(tee::verify_report(sanctum_.report_verification_key(), report.value, nonce));
}

TEST_F(SanctumTest, ColorPoolExhaustionLimitsEnclaves) {
  std::vector<tee::EnclaveId> ids;
  // Default config: 8 colors, 4 reserved for enclaves.
  for (int i = 0; i < 4; ++i) {
    const auto r = sanctum_.create_enclave(image("e" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << "enclave " << i;
    ids.push_back(r.value);
  }
  EXPECT_EQ(sanctum_.create_enclave(image("overflow")).error,
            tee::EnclaveError::kOutOfMemory);
  // Destroying returns the color to the pool.
  sanctum_.destroy_enclave(ids.front());
  EXPECT_TRUE(sanctum_.create_enclave(image("again")).ok());
}

TEST_F(SanctumTest, DestroyScrubsAndUnblocksDma) {
  const auto created = sanctum_.create_enclave(image());
  const tee::EnclaveInfo* info = sanctum_.enclave(created.value);
  const sim::PhysAddr base = info->base;
  sanctum_.destroy_enclave(created.value);
  EXPECT_EQ(machine_.memory().read8(base + 1), 0u);
  sim::DmaDevice device(machine_.bus(), arch::kUntrustedDeviceDomain);
  EXPECT_EQ(device.exfiltrate(base, 8).size(), 8u)
      << "freed frames are ordinary memory again";
}

}  // namespace
