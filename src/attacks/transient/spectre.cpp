#include "attacks/transient/spectre.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;

// ---- SpectreV1 --------------------------------------------------------------

namespace {

struct SpectreV1Victim {
  sim::Program program;
  sim::VirtAddr entry = 0;
};

SpectreV1Victim build_spectre_v1_victim(bool victim_has_fence) {
  sim::ProgramBuilder b(kCodeBase);
  // r1 = index, r5 = bound, r6 = array1 VA, r2 = probe VA.
  b.label("victim").br(sim::BranchCond::kGeu, sim::R1, sim::R5, "vdone");
  if (victim_has_fence) {
    // The software mitigation: serialize right after the bounds check so
    // the mispredicted path cannot issue the loads.
    b.fence();
  }
  b.add(sim::R7, sim::R6, sim::R1)
      .lb(sim::R3, sim::R7)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .label("vdone")
      .halt();
  SpectreV1Victim v{b.build(), 0};
  v.entry = v.program.address_of("victim");
  return v;
}

/// The victim is a pure function of the fence knob (every other input is a
/// compile-time constant), so campaigns running thousands of SpectreV1
/// trials assemble it exactly twice per process instead of once per trial.
const SpectreV1Victim& spectre_v1_victim(bool victim_has_fence) {
  static const SpectreV1Victim with_fence = build_spectre_v1_victim(true);
  static const SpectreV1Victim without_fence = build_spectre_v1_victim(false);
  return victim_has_fence ? with_fence : without_fence;
}

}  // namespace

SpectreV1::SpectreV1(sim::Machine& machine, sim::CoreId core, Config config)
    : config_(config), process_(machine, core) {
  process_.setup_probe_array();
  array1_phys_ = process_.map_new(kDataBase, 1, sim::pte::kUser | sim::pte::kWritable);

  const SpectreV1Victim& victim = spectre_v1_victim(config_.victim_has_fence);
  victim_entry_ = victim.entry;
  process_.load_program(victim.program);
}

sim::Word SpectreV1::plant_secret(const std::string& secret) {
  constexpr sim::Word kSecretOffset = 0x100;  // past the 16-byte bound.
  for (std::size_t i = 0; i < secret.size(); ++i) {
    process_.machine().memory().write8(
        array1_phys_ + kSecretOffset + static_cast<sim::PhysAddr>(i),
        static_cast<std::uint8_t>(secret[i]));
  }
  return kSecretOffset;
}

void SpectreV1::run_victim(sim::Word index) {
  process_.activate(sim::Privilege::kUser);
  sim::Cpu& cpu = process_.cpu();
  cpu.set_reg(sim::R1, index);
  cpu.set_reg(sim::R2, kProbeBase);
  cpu.set_reg(sim::R5, kBound);
  cpu.set_reg(sim::R6, kDataBase);
  cpu.run_from(victim_entry_, 64);
}

std::optional<std::uint8_t> SpectreV1::leak_byte(sim::Word index) {
  // (Re)train the bounds check toward "in bounds".
  for (std::uint32_t i = 0; i < config_.training_rounds; ++i) {
    run_victim(i % kBound);
  }
  process_.flush_probe();
  run_victim(index);
  return process_.hottest_probe_line();
}

std::string SpectreV1::leak_string(sim::Word start_index, std::size_t len,
                                   std::uint32_t retries) {
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    std::optional<std::uint8_t> byte;
    for (std::uint32_t r = 0; r < retries && !byte.has_value(); ++r) {
      byte = leak_byte(start_index + static_cast<sim::Word>(i));
    }
    out.push_back(byte.has_value() ? static_cast<char>(*byte) : '?');
  }
  return out;
}

// ---- SpectreV2 --------------------------------------------------------------

namespace {
/// Attacker processes get a distinct security domain so the experiments
/// exercise *cross-domain* predictor state.
constexpr sim::DomainId kSpectreAttackerDomain = 9;
}  // namespace

SpectreV2::SpectreV2(sim::Machine& machine, sim::CoreId core, std::uint32_t training_rounds)
    : training_rounds_(training_rounds),
      victim_(machine, core, sim::kDomainNormal),
      attacker_(machine, core, kSpectreAttackerDomain) {
  victim_.setup_probe_array();
  victim_.map_new(kDataBase, 1, sim::pte::kUser | sim::pte::kWritable);

  // Victim: loads its pointers, then takes an indirect branch to a benign
  // target. The gadget below the branch is architecturally dead code.
  sim::ProgramBuilder vb(kCodeBase);
  vb.label("victim")
      .li(sim::R6, kDataBase)    // victim-held secret pointer.
      .li(sim::R2, kProbeBase)   // victim-held (shared) buffer pointer.
      .li(sim::R1, 0)            // patched below: benign target.
      .label("indirect")
      .jr(sim::R1)
      .label("benign")
      .halt()
      .label("gadget")
      .add(sim::R8, sim::R6, sim::R7)  // r7: attacker-influenced argument.
      .lb(sim::R3, sim::R8)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .halt();
  sim::Program vprog = vb.build();
  victim_entry_ = vprog.address_of("victim");
  gadget_ = vprog.address_of("gadget");
  // Patch the benign target into the li (label addresses only exist now).
  for (auto& inst : vprog.code) {
    if (inst.op == sim::Opcode::kLoadImm && inst.rd == sim::R1) {
      inst.imm = vprog.address_of("benign");
    }
  }
  victim_.load_program(vprog);
  secret_va_ = kDataBase;

  // Attacker trainer: an indirect branch whose virtual address is
  // CONGRUENT to the victim's in the BTB index (same low bits, one
  // index-space period higher). On an untagged BTB this aliases exactly;
  // with tag bits the differing upper address bits are what saves the
  // victim — the E5 mitigation ablation. A `halt` landing pad sits at the
  // gadget address so the trainer's own jump has somewhere to go in the
  // attacker's address space.
  const std::uint32_t congruence_stride =
      machine.profile().cpu.predictor.btb_entries * 4;
  const sim::VirtAddr indirect_va = vprog.address_of("indirect") + congruence_stride;
  sim::ProgramBuilder ab(indirect_va - 4);
  ab.label("trainer").nop();  // at indirect_va - 4.
  ab.jr(sim::R1);             // at indirect_va: BTB-congruent.
  ab.halt();
  sim::Program aprog = ab.build();
  trainer_entry_ = aprog.address_of("trainer");
  attacker_.load_program(aprog);
  sim::ProgramBuilder landing(gadget_);
  landing.halt();
  attacker_.load_program(landing.build());
}

void SpectreV2::plant_secret(const std::string& secret) {
  const auto pte = victim_.aspace().pte_of(kDataBase);
  if (!pte.has_value()) {
    return;
  }
  for (std::size_t i = 0; i < secret.size(); ++i) {
    victim_.machine().memory().write8(
        sim::pte::frame(*pte) + static_cast<sim::PhysAddr>(i),
        static_cast<std::uint8_t>(secret[i]));
  }
}

std::optional<std::uint8_t> SpectreV2::leak_byte(std::uint32_t offset) {
  sim::Cpu& cpu = victim_.cpu();

  // Inject: attacker executes its congruent indirect branch to the gadget.
  attacker_.activate(sim::Privilege::kUser);
  for (std::uint32_t i = 0; i < training_rounds_; ++i) {
    cpu.set_reg(sim::R1, gadget_);
    cpu.run_from(trainer_entry_, 16);
  }

  victim_.flush_probe();

  // Victim runs; its indirect branch mispredicts into the gadget.
  victim_.activate(sim::Privilege::kUser);
  cpu.set_reg(sim::R7, offset);  // the "argument" the attacker influences.
  cpu.run_from(victim_entry_, 64);

  return victim_.hottest_probe_line();
}

// ---- SpectreRsb --------------------------------------------------------------

SpectreRsb::SpectreRsb(sim::Machine& machine, sim::CoreId core)
    : victim_(machine, core, sim::kDomainNormal),
      attacker_(machine, core, kSpectreAttackerDomain) {
  victim_.setup_probe_array();
  victim_.map_new(kDataBase, 1, sim::pte::kUser | sim::pte::kWritable);
  secret_va_ = kDataBase;

  sim::ProgramBuilder vb(kCodeBase);
  vb.label("victim")
      .li(sim::R6, kDataBase)
      .li(sim::R2, kProbeBase)
      .li(sim::R15, 0)  // patched to "legit" below.
      .ret()
      .label("legit")
      .halt()
      .label("gadget")
      .add(sim::R8, sim::R6, sim::R7)
      .lb(sim::R3, sim::R8)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .halt();
  sim::Program vprog = vb.build();
  victim_entry_ = vprog.address_of("victim");
  gadget_ = vprog.address_of("gadget");
  for (auto& inst : vprog.code) {
    if (inst.op == sim::Opcode::kLoadImm && inst.rd == sim::R15) {
      inst.imm = vprog.address_of("legit");
    }
  }
  victim_.load_program(vprog);

  // Attacker: a call placed so its pushed return address IS the victim's
  // gadget address (the RSB stores raw virtual addresses).
  sim::ProgramBuilder ab(gadget_ - 4);
  ab.label("poison").call("landing").label("landing").halt();
  sim::Program aprog = ab.build();
  poison_entry_ = aprog.address_of("poison");
  attacker_.load_program(aprog);
}

void SpectreRsb::plant_secret(const std::string& secret) {
  const auto pte = victim_.aspace().pte_of(kDataBase);
  if (!pte.has_value()) {
    return;
  }
  for (std::size_t i = 0; i < secret.size(); ++i) {
    victim_.machine().memory().write8(
        sim::pte::frame(*pte) + static_cast<sim::PhysAddr>(i),
        static_cast<std::uint8_t>(secret[i]));
  }
}

std::optional<std::uint8_t> SpectreRsb::leak_byte(std::uint32_t offset) {
  sim::Cpu& cpu = victim_.cpu();

  // Poison: push the gadget address onto the RSB.
  attacker_.activate(sim::Privilege::kUser);
  cpu.run_from(poison_entry_, 8);

  victim_.flush_probe();

  // Victim returns; prediction comes from the poisoned RSB entry.
  victim_.activate(sim::Privilege::kUser);
  cpu.set_reg(sim::R7, offset);
  cpu.run_from(victim_entry_, 64);

  return victim_.hottest_probe_line();
}

}  // namespace hwsec::attacks
