// Sanctum model (paper §3.1, [11]) — SGX-like enclaves for RISC-V with a
// software security monitor instead of microcode.
//
// Modeled mechanisms:
//  * monitor TCB: enclave management runs in machine mode (this object);
//    no microcode, small hardware changes only ("around the page table
//    walker").
//  * page-walker invariant checks: the MMU walk check vetoes (a) any
//    non-enclave translation that resolves into an enclave-owned frame
//    and (b) any enclave translation that escapes its own frames plus
//    explicitly shared OS ranges.
//  * NO memory encryption: DRAM holds enclave plaintext (the paper calls
//    this difference out explicitly) — instead,
//  * DMA range filter: the memory controller vetoes DMA into enclave
//    frames (basic protection, also per the paper).
//  * LLC partitioning by page coloring: enclave frames are allocated from
//    colors reserved to that enclave; OS/other allocations come from the
//    remaining colors, so no LLC set is ever shared — Prime+Probe across
//    the partition finds nothing to evict.
//  * core-private caches are flushed on every enclave entry/exit.
#pragma once

#include <set>
#include <vector>

#include "arch/domains.h"
#include "tee/architecture.h"

namespace hwsec::arch {

class Sanctum final : public hwsec::tee::Architecture {
 public:
  struct Config {
    /// Page colors the LLC is divided into (power of two).
    std::uint32_t num_colors = 8;
    /// Colors reserved for each enclave (the rest belong to the OS).
    std::uint32_t colors_per_enclave = 1;
    bool flush_private_caches_on_switch = true;
  };

  explicit Sanctum(hwsec::sim::Machine& machine) : Sanctum(machine, Config{}) {}
  Sanctum(hwsec::sim::Machine& machine, Config config);
  ~Sanctum() override;

  const hwsec::tee::ArchitectureTraits& traits() const override;

  hwsec::tee::Expected<hwsec::tee::EnclaveId> create_enclave(
      const hwsec::tee::EnclaveImage& image) override;
  hwsec::tee::EnclaveError destroy_enclave(hwsec::tee::EnclaveId id) override;
  hwsec::tee::EnclaveError call_enclave(hwsec::tee::EnclaveId id, hwsec::sim::CoreId core,
                                        const Service& service) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> attest(
      hwsec::tee::EnclaveId id, const hwsec::tee::Nonce& nonce) override;
  std::vector<std::uint8_t> report_verification_key() const override;

  /// OS-side page allocation: draws only from OS colors, preserving the
  /// coloring invariant. Attack harnesses allocate attacker buffers here.
  hwsec::sim::PhysAddr alloc_os_frame();

  /// True if `addr` belongs to any live enclave (the DMA filter's view).
  bool in_enclave_memory(hwsec::sim::PhysAddr addr) const;

  const Config& config() const { return config_; }

 private:
  struct Region {
    hwsec::tee::EnclaveId owner;
    hwsec::sim::PhysAddr base;
    hwsec::sim::PhysAddr end;
  };

  Config config_;
  std::vector<Region> enclave_regions_;
  std::set<std::uint32_t> free_enclave_colors_;
  hwsec::sim::DomainId next_domain_ = kFirstEnclaveDomain;
  std::vector<std::uint8_t> monitor_key_;
  std::size_t dma_check_id_ = 0;
  std::uint32_t os_color_rr_ = 0;
};

}  // namespace hwsec::arch
