// E12 — campaign-engine scaling: throughput and determinism of the
// parallel trial engine that drives every other experiment.
//
// Runs a Figure-1-style campaign (each trial: build a fresh mobile
// Machine from the trial seed, mount Spectre-PHT, record whether the
// planted byte leaked) at several worker counts and reports:
//   * trials/sec sequential (workers=1) vs. parallel;
//   * the per-worker scaling curve (speedup over sequential);
//   * a determinism check: every worker count must reproduce the
//     workers=1 result vector bit for bit.
// Machine-readable results land in BENCH_campaign.json (path override:
// HWSEC_BENCH_JSON) for CI to archive.
//
// E12b extends the sweep across process boundaries: the sharded supervisor
// (core/shard) runs the same campaign at 1/2/4 worker processes plus a
// worker-kill chaos row, and every merged vector must be bit-identical to
// the in-process reference (HWSEC_SHARD_TRIALS overrides the trial count).
//
// The worker sweep is clamped to hardware_concurrency: a "speedup" row
// measured with more workers than cores is scheduler noise presented as
// scaling data (the seed repo once recorded workers=4 speedup=1.27 on a
// 1-core host). HWSEC_CAMPAIGN_OVERSUBSCRIBE=1 re-enables the full sweep
// for scheduler experiments; those rows are then marked
// "oversubscribed": true and never feed the HWSEC_CAMPAIGN_MIN_TPS floor.
//
// E12c goes over the wire: forked hwsec-shard-worker processes listen on
// loopback TCP ports, the supervisor dials them through the host-discovery
// path hwsecd uses, and the merged vector must STILL be bit-identical to
// the in-process reference — including a chaos row where seeded worker
// SIGKILLs force disconnect-migrate-redial recovery (the row must show
// nonzero migrations, or the chaos was vacuous and the run fails).
//
// Observability: HWSEC_TRACE_OUT=<path> captures a Chrome trace_event
// JSON (trial/setup/body and pool spans — load it in Perfetto), and
// --metrics-json=<path> (or HWSEC_METRICS_JSON) dumps the merged metrics
// registry (trial counters, pool accounting, latency histograms) for the
// CI scrape-and-assert step.
#include <benchmark/benchmark.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attacks/transient/spectre.h"
#include "core/campaign.h"
#include "core/machine_pool.h"
#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "core/resilience/resilient.h"
#include "core/service/catalog.h"
#include "core/service/remote_worker.h"
#include "core/service/spec.h"
#include "core/shard/supervisor.h"
#include "core/shutdown.h"
#include "sim/dispatch.h"
#include "sim/machine.h"
#include "sim/program.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace core = hwsec::core;
namespace service = hwsec::core::service;
namespace attacks = hwsec::attacks;
namespace obs = hwsec::obs;

namespace {

/// One campaign trial: pooled machine, fresh attack, outcome encoded so
/// that any divergence (success flag OR leaked value) breaks equality.
struct TrialResult {
  bool leaked = false;
  std::uint32_t value = 0;

  bool operator==(const TrialResult& other) const {
    return leaked == other.leaked && value == other.value;
  }
};

/// Setup-vs-run breakdown, accumulated only during the sequential pass
/// (parallel passes would fold scheduler contention into the numbers).
std::atomic<std::uint64_t> g_setup_ns{0};
std::atomic<std::uint64_t> g_run_ns{0};
std::atomic<std::uint64_t> g_timed_trials{0};
std::atomic<bool> g_record_breakdown{false};

/// When >= 0, every trial pins its CPU to this DispatchBackend right after
/// acquiring the machine (pool resets restore the env-selected default, so
/// the pin must be re-applied per lease). Drives the per-backend rows.
std::atomic<int> g_backend_override{-1};

TrialResult spectre_trial(const core::TrialContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  // Machine acquisition is the "setup" under test: a pool reset-reuse when
  // the campaign runner supplies a pool, a full construction otherwise.
  auto machine_lease =
      core::acquire_machine(ctx.machines, sim::MachineProfile::mobile(), ctx.seed);
  sim::Machine& machine = *machine_lease;
  if (const int backend = g_backend_override.load(std::memory_order_relaxed); backend >= 0) {
    machine.cpu(0).set_dispatch_backend(static_cast<sim::DispatchBackend>(backend));
  }
  const auto t1 = std::chrono::steady_clock::now();
  obs::Span body_span("trial_body", static_cast<std::int64_t>(ctx.index), "trial");
  attacks::SpectreV1 spectre(machine, 0);
  const sim::Word index = spectre.plant_secret("K");
  const auto byte = spectre.leak_byte(index);
  const auto t2 = std::chrono::steady_clock::now();
  if (g_record_breakdown.load(std::memory_order_relaxed)) {
    g_setup_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
        std::memory_order_relaxed);
    g_run_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count(),
        std::memory_order_relaxed);
    g_timed_trials.fetch_add(1, std::memory_order_relaxed);
  }
  TrialResult r;
  r.leaked = byte.has_value() && *byte == 'K';
  r.value = byte.value_or(0xFFFF);
  return r;
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const std::size_t parsed = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
  return parsed == 0 ? fallback : parsed;  // unparseable/zero -> default.
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const double parsed = std::strtod(value, nullptr);
  return parsed <= 0.0 ? fallback : parsed;
}

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

// ---- E12c helpers: loopback TCP shard workers ---------------------------

/// Forks a shard worker listening on an ephemeral loopback port (the same
/// code path the hwsec-shard-worker tool runs) and reports the port the
/// kernel assigned through a pipe. The child serves sessions until killed.
pid_t fork_tcp_worker(std::uint16_t& port_out) {
  int port_pipe[2];
  if (pipe(port_pipe) != 0) {
    return -1;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(port_pipe[0]);
    close(port_pipe[1]);
    return -1;
  }
  if (pid == 0) {
    close(port_pipe[0]);
    service::RemoteWorkerOptions options;
    options.listen_port = 0;
    options.serve_forever = true;
    options.worker_name = "bench-worker";
    options.on_listening = [fd = port_pipe[1]](std::uint16_t port) {
      (void)!write(fd, &port, sizeof(port));
      close(fd);
    };
    _exit(service::run_remote_worker(options));
  }
  close(port_pipe[1]);
  std::uint16_t port = 0;
  const ssize_t n = read(port_pipe[0], &port, sizeof(port));
  close(port_pipe[0]);
  if (n != sizeof(port)) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    return -1;
  }
  port_out = port;
  return pid;
}

void reap_worker(pid_t pid) {
  if (pid > 0) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }
}

/// Slot-for-slot equality over service outcomes: the multi-host rows must
/// reproduce the in-process reference exactly (flag AND payload).
bool outcomes_identical(const service::ServiceOutcomes& got,
                        const service::ServiceOutcomes& want) {
  if (got.size() != want.size()) {
    return false;
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got[i].ok() != want[i].ok()) {
      return false;
    }
    if (want[i].ok() && !(got[i].value() == want[i].value())) {
      return false;
    }
  }
  return true;
}

void BM_Campaign32Trials(benchmark::State& state) {
  sim::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_campaign<TrialResult>(pool, 2019, 32, spectre_trial));
  }
}
BENCHMARK(BM_Campaign32Trials)->Arg(1)->Arg(4)->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  // SIGTERM/SIGINT stop the sweep between campaigns, flush every artifact
  // (JSON, metrics, trace) below, and exit 128+signal — a partial sweep is
  // reported as partial, never silently truncated.
  core::install_graceful_shutdown();

  // --metrics-json=<path> (HWSEC_METRICS_JSON fallback): merged metrics
  // registry snapshot, written after the sweep.
  std::string metrics_path;
  if (const char* env = std::getenv("HWSEC_METRICS_JSON"); env != nullptr && *env != '\0') {
    metrics_path = env;
  }
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--metrics-json=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      metrics_path = argv[i] + std::strlen(kFlag);
      // Remove the flag so benchmark::Initialize below doesn't reject it.
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      --i;
    }
  }

  const std::size_t trials = env_size_t("HWSEC_CAMPAIGN_TRIALS", 400);
  const unsigned host_cores = sim::ThreadPool::default_workers();
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const bool allow_oversubscribed = env_flag("HWSEC_CAMPAIGN_OVERSUBSCRIBE");

  hwsec::bench::section("E12 — campaign engine: Spectre-PHT trials/sec vs. workers");
  std::cout << "(" << trials << " trials per run, " << host_cores
            << " host workers available, " << hardware << " hardware threads)\n";

  struct Point {
    unsigned workers = 0;
    double seconds = 0.0;
    double trials_per_sec = 0.0;
    double speedup = 0.0;
    bool deterministic = false;
    bool oversubscribed = false;
    double peak_rss_mib = 0.0;  ///< process high-water mark after this row.
  };
  std::vector<unsigned> sweep;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    if (workers <= hardware) {
      sweep.push_back(workers);
    } else if (allow_oversubscribed) {
      sweep.push_back(workers);  // kept, but marked and excluded from the floor.
    }
  }
  if (!allow_oversubscribed && sweep.size() < 4) {
    std::cout << "(sweep clamped to " << hardware
              << " hardware threads; oversubscribed rows are scheduler noise —\n"
                 " set HWSEC_CAMPAIGN_OVERSUBSCRIBE=1 to measure them anyway)\n";
  }

  Table t({"workers", "seconds", "trials/sec", "speedup", "bit-identical"},
          {9, 10, 12, 9, 14});
  t.print_header();

  std::vector<Point> curve;
  std::vector<TrialResult> baseline;

  // One machine pool shared by every worker-count run: the determinism
  // check below then also validates that machines reset-reused across
  // whole campaigns reproduce the sequential results bit for bit.
  core::MachinePool machine_pool;

  // Untimed warmup at the widest swept worker count: pool construction and
  // the one-off 16 MiB memory snapshot per machine happen here, so the
  // timed passes (and the setup-vs-run breakdown) measure steady-state
  // reset-reuse rather than cold builds.
  core::run_campaign_resilient<TrialResult>(
      {.seed = 2019, .trials = 32, .workers = sweep.back()}, {.machines = &machine_pool},
      spectre_trial);

  for (const unsigned workers : sweep) {
    if (core::shutdown_requested()) {
      break;
    }
    g_record_breakdown.store(workers == 1);
    const auto start = std::chrono::steady_clock::now();
    // The resilient runner is the engine under test: same determinism
    // contract as run_campaign, plus per-slot fault containment and
    // snapshot/reset machine pooling.
    const auto outcomes = core::run_campaign_resilient<TrialResult>(
        {.seed = 2019, .trials = trials, .workers = workers},
        {.machines = &machine_pool}, spectre_trial);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    g_record_breakdown.store(false);

    std::vector<TrialResult> results;
    results.reserve(outcomes.size());
    std::size_t failed = 0;
    for (const auto& o : outcomes) {
      if (o.ok()) {
        results.push_back(o.value());
      } else {
        ++failed;
        if (o.error.has_value()) {
          std::cerr << "trial failed: " << o.error->what() << "\n";
        }
      }
    }

    Point p;
    p.workers = workers;
    p.seconds = elapsed.count();
    p.trials_per_sec = static_cast<double>(trials) / p.seconds;
    p.oversubscribed = workers > hardware;
    p.peak_rss_mib = hwsec::bench::peak_rss_mib();
    if (workers == 1) {
      baseline = results;
      p.speedup = 1.0;
      p.deterministic = failed == 0;
    } else {
      p.speedup = curve.front().seconds / p.seconds;
      p.deterministic = failed == 0 && results == baseline;
    }
    curve.push_back(p);
    t.print_row(p.workers, p.seconds, p.trials_per_sec, p.speedup,
                p.deterministic       ? (p.oversubscribed ? "YES (oversub)" : "YES")
                : p.oversubscribed    ? "DIVERGED (oversub)"
                                      : "DIVERGED");
  }
  std::cout << "(speedup saturates at the host core count; bit-identical must\n"
               " read YES everywhere — the engine's determinism contract)\n";

  // ---- setup-vs-run breakdown (sequential pass) ------------------------
  const std::uint64_t timed = g_timed_trials.load();
  const double setup_ns_mean =
      timed == 0 ? 0.0 : static_cast<double>(g_setup_ns.load()) / static_cast<double>(timed);
  const double run_ns_mean =
      timed == 0 ? 0.0 : static_cast<double>(g_run_ns.load()) / static_cast<double>(timed);
  const double setup_fraction =
      setup_ns_mean + run_ns_mean <= 0.0 ? 0.0
                                         : setup_ns_mean / (setup_ns_mean + run_ns_mean);
  std::cout << "per-trial breakdown (sequential): setup "
            << setup_ns_mean / 1000.0 << " us, run " << run_ns_mean / 1000.0 << " us ("
            << setup_fraction * 100.0 << "% setup)\n"
            << "machine pool: " << machine_pool.machines_built() << " built, "
            << machine_pool.leases_served() << " leases served\n";

  // ---- per-dispatch-backend rows ---------------------------------------
  // Two measurements per backend: the full Spectre campaign (sequential),
  // whose result vector must also match the default-backend baseline bit
  // for bit — a whole-campaign differential check — and a dense ALU/branch
  // loop that isolates the dispatch engine itself (the campaign trial is
  // cache-model-bound, so backend differences mostly wash out of it).
  struct BackendPoint {
    sim::DispatchBackend backend = sim::DispatchBackend::kUops;
    double trials_per_sec = 0.0;
    bool bit_identical = false;
    double mips = 0.0;  // dense-loop committed instructions per microsecond... see below.
  };
  std::vector<BackendPoint> backends;
  {
    constexpr sim::VirtAddr kLoopCode = 0x10000;
    sim::ProgramBuilder lb(kLoopCode);
    lb.li(sim::R1, 0).li(sim::R3, 20000);
    lb.label("loop")
        .addi(sim::R1, sim::R1, 1)
        .add(sim::R4, sim::R1, sim::R3)
        .xori(sim::R5, sim::R4, 0x5A)
        .shli(sim::R6, sim::R5, 3)
        .shri(sim::R7, sim::R6, 2)
        .or_(sim::R8, sim::R7, sim::R1)
        .sub(sim::R9, sim::R8, sim::R1)
        .andi(sim::R10, sim::R9, 0xFFFF)
        .br(sim::BranchCond::kLtu, sim::R1, sim::R3, "loop")
        .halt();
    const sim::Program loop_prog = lb.build();

    hwsec::bench::section("dispatch backends: campaign + dense-loop comparison");
    Table bt({"backend", "trials/sec", "bit-identical", "loop Minstr/s"}, {9, 12, 14, 14});
    bt.print_header();
    for (const sim::DispatchBackend backend :
         {sim::DispatchBackend::kUops, sim::DispatchBackend::kSwitch}) {
      if (core::shutdown_requested()) {
        break;
      }
      BackendPoint bp;
      bp.backend = backend;

      g_backend_override.store(static_cast<int>(backend));
      const auto start = std::chrono::steady_clock::now();
      const auto outcomes = core::run_campaign_resilient<TrialResult>(
          {.seed = 2019, .trials = trials, .workers = 1}, {.machines = &machine_pool},
          spectre_trial);
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      g_backend_override.store(-1);
      std::vector<TrialResult> results;
      results.reserve(outcomes.size());
      for (const auto& o : outcomes) {
        if (o.ok()) {
          results.push_back(o.value());
        }
      }
      bp.trials_per_sec = static_cast<double>(trials) / elapsed.count();
      bp.bit_identical = results == baseline;

      // Dense loop: fresh single machine, identity-mapped code page; best
      // of three runs so a scheduler hiccup can't understate a backend.
      for (int rep = 0; rep < 3; ++rep) {
        sim::Machine machine(sim::MachineProfile::mobile(), 2019);
        sim::AddressSpace aspace = machine.create_address_space();
        for (sim::VirtAddr va = kLoopCode; va < kLoopCode + 2 * sim::kPageSize;
             va += sim::kPageSize) {
          aspace.map(va, va, sim::pte::kUser | sim::pte::kExecutable);
        }
        sim::Cpu& cpu = machine.cpu(0);
        cpu.set_dispatch_backend(backend);
        cpu.load_program(loop_prog);
        cpu.switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor, aspace.root(), 1);
        const auto t0 = std::chrono::steady_clock::now();
        const auto run = cpu.run_from(kLoopCode, 400000);
        const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
        const double mips = static_cast<double>(run.executed) / dt.count() / 1e6;
        bp.mips = std::max(bp.mips, mips);
      }
      backends.push_back(bp);
      bt.print_row(sim::to_string(backend), bp.trials_per_sec,
                   bp.bit_identical ? "YES" : "DIVERGED", bp.mips);
    }
    std::cout << "(bit-identical compares each backend's full campaign result vector\n"
                 " against the workers=1 baseline — a whole-campaign differential)\n";
  }

  // ---- sharded multi-process supervisor --------------------------------
  // Same engine, process-level parallelism: fork N workers, feed shards
  // over pipes, merge by trial index. Every row must be bit-identical to
  // the in-process reference — including the chaos row, where seeded
  // worker SIGKILLs force deaths, shard migrations, and respawns.
  struct ShardPoint {
    unsigned processes = 0;
    bool chaos = false;
    double seconds = 0.0;
    double trials_per_sec = 0.0;
    double speedup = 0.0;
    double setup_seconds = 0.0;  ///< per-run fork/pipe/warmup cost (see below).
    bool deterministic = false;
    double peak_rss_mib = 0.0;
    core::shard::ShardStats stats;
  };
  std::vector<ShardPoint> shard_curve;
  // Steady-state sizing: at the old 64-trial default the fork/pipe/machine
  // setup dominated the measurement and the speedup column read < 1
  // (0.07x at 4 procs in early BENCH_campaign.json) — a setup artifact
  // misreading as a scaling regression. The default now sizes the run so
  // trial work dominates the ~40ms-per-process setup (8192 trials is
  // ~0.5s of sequential work); the setup cost itself is also measured
  // separately and reported as its own column, so whatever fixed cost
  // remains is attributable instead of silently folded into "speedup".
  const std::size_t shard_trials =
      env_size_t("HWSEC_SHARD_TRIALS", std::max<std::size_t>(trials, 8192));
  if (!core::shutdown_requested()) {
    hwsec::bench::section("E12b — sharded campaigns: multi-process supervisor");
    std::cout << "(" << shard_trials << " trials per run; fork/pipe/merge must not change"
              << " a single byte)\n";
    std::vector<TrialResult> shard_baseline;
    double shard_seq_seconds = 0.0;
    {
      const auto t0 = std::chrono::steady_clock::now();
      const auto outcomes = core::run_campaign_resilient<TrialResult>(
          {.seed = 2027, .trials = shard_trials, .workers = 1}, {}, spectre_trial);
      shard_seq_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      shard_baseline.reserve(outcomes.size());
      for (const auto& o : outcomes) {
        if (o.ok()) {
          shard_baseline.push_back(o.value());
        }
      }
    }
    Table st({"procs", "chaos", "setup s", "seconds", "trials/sec", "speedup",
              "bit-identical", "deaths", "respawns", "migrations"},
             {7, 7, 9, 10, 12, 9, 14, 8, 10, 11});
    st.print_header();
    struct ShardRow {
      unsigned procs;
      bool chaos;
    };
    for (const ShardRow row : {ShardRow{1, false}, ShardRow{2, false}, ShardRow{4, false},
                               ShardRow{4, true}}) {
      if (core::shutdown_requested()) {
        break;
      }
      core::ResilienceConfig res;
      core::shard::ShardConfig shard;
      shard.processes = row.procs;
      if (row.chaos) {
        res.chaos.worker_kill_probability = 0.02;
      }
      // Per-process setup cost, measured as its own quantity: a sharded run
      // with one trial per process is all fork/pipe/merge overhead (the
      // single trial per worker is noise at ~60us). This is the fixed cost
      // the old 64-trial default was unintentionally measuring.
      double setup_secs = 0.0;
      {
        core::shard::ShardConfig setup_shard = shard;
        const auto s0 = std::chrono::steady_clock::now();
        (void)core::shard::run_campaign_sharded<TrialResult>(
            {.seed = 2027, .trials = row.procs, .workers = 1}, res, setup_shard,
            spectre_trial, nullptr);
        setup_secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - s0).count();
      }
      core::shard::ShardStats stats;
      const auto t0 = std::chrono::steady_clock::now();
      const auto outcomes = core::shard::run_campaign_sharded<TrialResult>(
          {.seed = 2027, .trials = shard_trials, .workers = 1}, res, shard, spectre_trial,
          &stats);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      std::vector<TrialResult> results;
      results.reserve(outcomes.size());
      for (const auto& o : outcomes) {
        if (o.ok()) {
          results.push_back(o.value());
        }
      }
      ShardPoint p;
      p.processes = row.procs;
      p.chaos = row.chaos;
      p.seconds = secs;
      p.trials_per_sec = static_cast<double>(shard_trials) / secs;
      p.speedup = shard_seq_seconds / secs;
      p.setup_seconds = setup_secs;
      p.deterministic = !core::shutdown_requested() && results == shard_baseline;
      p.peak_rss_mib = hwsec::bench::peak_rss_mib();
      p.stats = stats;
      shard_curve.push_back(p);
      st.print_row(p.processes, p.chaos ? "kill" : "-", p.setup_seconds, p.seconds,
                   p.trials_per_sec, p.speedup, p.deterministic ? "YES" : "DIVERGED",
                   p.stats.worker_deaths, p.stats.worker_respawns, p.stats.migrations);
    }
    std::cout << "(chaos row: seeded worker SIGKILLs — the supervisor migrates each dead\n"
                 " worker's shard and respawns it; the merged vector must still match)\n";
  }

  // ---- E12c: multi-host loopback — the campaign over real TCP ----------
  struct MultiHostPoint {
    std::size_t hosts = 0;
    bool chaos = false;
    double seconds = 0.0;
    double trials_per_sec = 0.0;
    double speedup = 0.0;
    bool deterministic = false;
    core::shard::ShardStats stats;
  };
  std::vector<MultiHostPoint> multihost_curve;
  double multihost_seq_seconds = 0.0;
  bool multihost_chaos_migrated = true;  // vacuous-chaos guard; false = chaos row never migrated.
  const std::size_t multihost_trials = env_size_t("HWSEC_MULTIHOST_TRIALS", 256);
  if (!core::shutdown_requested()) {
    hwsec::bench::section("E12c — multi-host campaigns: loopback TCP shard workers");
    std::cout << "(" << multihost_trials << " trials per run; forked hwsec-shard-worker"
              << " processes on 127.0.0.1,\n dialed through the spec host-discovery path;"
              << " N hosts must not change a byte)\n";

    // The spec-driven form of the E12 workload: remote workers rebuild the
    // trial body from these bytes after the handshake, so the campaign
    // identity digest covers everything that could change a result.
    service::CampaignSpec spec;
    spec.tenant = "bench";
    spec.kind = "spectre_leak";
    spec.seed = 2028;
    spec.trials = multihost_trials;

    service::ServiceOutcomes reference;
    {
      const auto t0 = std::chrono::steady_clock::now();
      reference = service::run_spec(spec, core::ResilienceConfig{});
      multihost_seq_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }

    Table mt({"hosts", "chaos", "seconds", "trials/sec", "speedup", "bit-identical",
              "deaths", "migrations", "redials", "fallback"},
             {7, 7, 10, 12, 9, 14, 8, 11, 9, 10});
    mt.print_header();
    struct MultiHostRow {
      std::size_t hosts;
      bool chaos;
    };
    for (const MultiHostRow row : {MultiHostRow{1, false}, MultiHostRow{2, false},
                                   MultiHostRow{4, false}, MultiHostRow{2, true}}) {
      if (core::shutdown_requested()) {
        break;
      }
      std::vector<pid_t> workers;
      core::shard::ShardConfig shard_cfg;
      shard_cfg.processes = 0;  // every trial crosses the wire.
      bool spawned = true;
      for (std::size_t i = 0; i < row.hosts && spawned; ++i) {
        std::uint16_t port = 0;
        const pid_t pid = fork_tcp_worker(port);
        spawned = pid > 0;
        if (spawned) {
          workers.push_back(pid);
          shard_cfg.hosts.push_back({.host = "127.0.0.1", .port = port});
        }
      }
      if (!spawned) {
        std::cerr << "E12c: failed to fork a loopback worker; skipping hosts="
                  << row.hosts << "\n";
        for (const pid_t pid : workers) {
          reap_worker(pid);
        }
        continue;
      }
      shard_cfg.remote_spec_json = service::encode_spec(spec);
      core::ResilienceConfig res;
      res.policy = spec.policy;
      res.max_attempts = spec.max_attempts;
      res.trial_cycle_budget = spec.trial_cycle_budget;
      if (row.chaos) {
        // Seeded self-SIGKILLs ship to the remote workers inside the
        // kWelcome frame; each kill takes down a whole listening worker, so
        // this row exercises disconnect -> migrate -> re-dial (refused) ->
        // budget exhaustion -> in-process fallback, end to end.
        res.chaos.worker_kill_probability = 0.02;
        shard_cfg.max_reconnects = 2;
      }
      const auto body = service::make_trial_body(spec);
      core::shard::ShardStats stats;
      const auto t0 = std::chrono::steady_clock::now();
      const auto outcomes = core::shard::run_campaign_sharded<service::ServiceTrialResult>(
          {.seed = spec.seed, .trials = static_cast<std::size_t>(spec.trials),
           .workers = spec.workers},
          res, shard_cfg, body, &stats);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      for (const pid_t pid : workers) {
        reap_worker(pid);
      }
      MultiHostPoint p;
      p.hosts = row.hosts;
      p.chaos = row.chaos;
      p.seconds = secs;
      p.trials_per_sec = static_cast<double>(multihost_trials) / secs;
      p.speedup = multihost_seq_seconds / secs;
      p.deterministic = !core::shutdown_requested() && outcomes_identical(outcomes, reference);
      p.stats = stats;
      multihost_curve.push_back(p);
      if (row.chaos && stats.migrations == 0) {
        multihost_chaos_migrated = false;  // nothing died mid-shard: vacuous chaos.
      }
      mt.print_row(p.hosts, p.chaos ? "kill" : "-", p.seconds, p.trials_per_sec, p.speedup,
                   p.deterministic ? "YES" : "DIVERGED", p.stats.worker_deaths,
                   p.stats.migrations, p.stats.remote_reconnects, p.stats.fallback_trials);
    }
    std::cout << "(chaos row: worker kills sever the TCP link mid-shard; the supervisor\n"
              << " migrates, re-dials, and finishes in-process once the budget is spent —\n"
              << " with nonzero migrations, or the row counts as a failed run)\n";
  }

  // ---- machine-readable record for CI ----------------------------------
  const char* json_path_env = std::getenv("HWSEC_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr && *json_path_env != '\0' ? json_path_env : "BENCH_campaign.json";
  bool all_deterministic = true;
  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"campaign_scaling\",\n"
       << "  \"trial_body\": \"spectre_pht_mobile\",\n"
       << "  \"trials\": " << trials << ",\n"
       << "  \"host_workers\": " << host_cores << ",\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"sequential_trials_per_sec\": " << curve.front().trials_per_sec << ",\n"
       << "  \"setup_ns_mean\": " << setup_ns_mean << ",\n"
       << "  \"run_ns_mean\": " << run_ns_mean << ",\n"
       << "  \"setup_fraction\": " << setup_fraction << ",\n"
       << "  \"pool_machines_built\": " << machine_pool.machines_built() << ",\n"
       << "  \"pool_leases_served\": " << machine_pool.leases_served() << ",\n"
       << "  \"dispatch_backend\": \"" << sim::to_string(sim::dispatch_backend_from_env())
       << "\",\n"
       << "  \"dispatch_backends\": [\n";
  for (std::size_t i = 0; i < backends.size(); ++i) {
    const BackendPoint& bp = backends[i];
    all_deterministic = all_deterministic && bp.bit_identical;
    json << "    {\"backend\": \"" << sim::to_string(bp.backend)
         << "\", \"trials_per_sec\": " << bp.trials_per_sec
         << ", \"bit_identical\": " << (bp.bit_identical ? "true" : "false")
         << ", \"loop_minstr_per_sec\": " << bp.mips << "}"
         << (i + 1 < backends.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const Point& p = curve[i];
    all_deterministic = all_deterministic && p.deterministic;
    json << "    {\"workers\": " << p.workers << ", \"seconds\": " << p.seconds
         << ", \"trials_per_sec\": " << p.trials_per_sec << ", \"speedup\": " << p.speedup
         << ", \"deterministic\": " << (p.deterministic ? "true" : "false")
         << ", \"oversubscribed\": " << (p.oversubscribed ? "true" : "false")
         << ", \"peak_rss_mib\": " << p.peak_rss_mib << "}"
         << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"sharded_scaling\": [\n";
  for (std::size_t i = 0; i < shard_curve.size(); ++i) {
    const ShardPoint& p = shard_curve[i];
    all_deterministic = all_deterministic && p.deterministic;
    json << "    {\"processes\": " << p.processes
         << ", \"chaos_kill\": " << (p.chaos ? "true" : "false")
         << ", \"seconds\": " << p.seconds << ", \"trials_per_sec\": " << p.trials_per_sec
         << ", \"speedup\": " << p.speedup << ", \"setup_seconds\": " << p.setup_seconds
         << ", \"peak_rss_mib\": " << p.peak_rss_mib
         << ", \"deterministic\": " << (p.deterministic ? "true" : "false")
         << ", \"worker_deaths\": " << p.stats.worker_deaths
         << ", \"worker_respawns\": " << p.stats.worker_respawns
         << ", \"migrations\": " << p.stats.migrations
         << ", \"duplicate_trials\": " << p.stats.duplicate_trials
         << ", \"fallback_trials\": " << p.stats.fallback_trials << "}"
         << (i + 1 < shard_curve.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"multihost_scaling\": [\n";
  for (std::size_t i = 0; i < multihost_curve.size(); ++i) {
    const MultiHostPoint& p = multihost_curve[i];
    all_deterministic = all_deterministic && p.deterministic;
    json << "    {\"hosts\": " << p.hosts
         << ", \"chaos_kill\": " << (p.chaos ? "true" : "false")
         << ", \"seconds\": " << p.seconds << ", \"trials_per_sec\": " << p.trials_per_sec
         << ", \"speedup\": " << p.speedup
         << ", \"deterministic\": " << (p.deterministic ? "true" : "false")
         << ", \"worker_deaths\": " << p.stats.worker_deaths
         << ", \"migrations\": " << p.stats.migrations
         << ", \"remote_workers\": " << p.stats.remote_workers
         << ", \"remote_reconnects\": " << p.stats.remote_reconnects
         << ", \"fallback_trials\": " << p.stats.fallback_trials << "}"
         << (i + 1 < multihost_curve.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"multihost_trials\": " << multihost_trials << ",\n"
       << "  \"multihost_chaos_migrated\": " << (multihost_chaos_migrated ? "true" : "false")
       << ",\n"
       << "  \"shard_trials\": " << shard_trials << ",\n"
       << "  \"peak_rss_mib\": " << hwsec::bench::peak_rss_mib() << ",\n"
       << "  \"all_deterministic\": " << (all_deterministic ? "true" : "false") << "\n"
       << "}\n";
  // Atomic write: a run killed mid-write can never leave a torn JSON for
  // CI to archive — it sees the previous complete file or the new one.
  if (core::write_file_atomic(json_path, json.str())) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cerr << "failed to write " << json_path << "\n";
  }

  // ---- observability records -------------------------------------------
  if (!metrics_path.empty()) {
    if (core::write_file_atomic(metrics_path, obs::MetricsRegistry::instance().to_json())) {
      std::cout << "wrote " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write " << metrics_path << "\n";
    }
  }
  obs::Tracer& tracer = obs::Tracer::instance();
  if (!tracer.autodump_path().empty()) {
    // The atexit hook writes this too; writing here as well guarantees a
    // complete trace even if the benchmark-library pass below aborts.
    if (tracer.write(tracer.autodump_path())) {
      std::cout << "wrote " << tracer.autodump_path() << "\n";
    }
  }

  // ---- graceful shutdown exit ------------------------------------------
  // Everything above (results JSON, metrics, trace) is already flushed; a
  // signal-interrupted sweep exits with the conventional 128+signal so the
  // caller knows the artifacts describe a partial run.
  if (core::shutdown_requested()) {
    std::cerr << "shutdown requested (signal " << core::shutdown_signal()
              << "); artifacts flushed, exiting " << core::shutdown_exit_code() << "\n";
    return core::shutdown_exit_code();
  }

  // ---- perf smoke floor (CI) -------------------------------------------
  // HWSEC_CAMPAIGN_MIN_TPS sets a sequential trials/sec floor; a run below
  // it fails, catching setup-cost regressions before they land. Only
  // non-oversubscribed rows are eligible — the floor reads the sequential
  // (workers=1) row, which by construction never oversubscribes, so small
  // CI runners can't flake it with scheduler noise.
  const double min_tps = env_double("HWSEC_CAMPAIGN_MIN_TPS", 0.0);
  bool fast_enough = true;
  if (min_tps > 0.0) {
    for (const Point& p : curve) {
      if (p.oversubscribed) {
        continue;  // scheduler noise never trips (or excuses) the floor.
      }
      if (p.workers == 1) {
        fast_enough = p.trials_per_sec >= min_tps;
        std::cout << "perf floor: " << p.trials_per_sec << " trials/sec vs. floor "
                  << min_tps << " -> " << (fast_enough ? "OK" : "REGRESSION") << "\n";
      }
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return all_deterministic && fast_enough && multihost_chaos_migrated ? 0 : 1;
}
