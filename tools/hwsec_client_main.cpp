// hwsec-client — CLI for the hwsecd campaign service.
//
//   hwsec-client submit --socket PATH (--spec FILE | --spec-json JSON)
//                [--detach] [--quiet] [--print-records]
//   hwsec-client attach --socket PATH --job ID [--quiet] [--print-records]
//   hwsec-client status --socket PATH
//   hwsec-client stop   --socket PATH
//   hwsec-client run-direct (--spec FILE | --spec-json JSON) [--print-records]
//
// `--tcp PORT` replaces `--socket` for a TCP daemon. Exit codes: 0 job
// done (or command ok), 1 job failed, 2 usage, 3 rejected by the daemon,
// 4 transport failure. submit/attach print one final line
// `job <id> <state> digest=<hex16> records=<n>` that scripts (and the CI
// smoke job) parse; the digest is fnv1a-64 over the encoded outcome
// records, directly comparable between a daemon run and a direct
// run_campaign_resilient run of the same spec — `run-direct` executes the
// spec in-process through exactly that path and prints the same line, so
// `submit` vs `run-direct` digest equality IS the daemon's bit-identity
// guarantee, checkable from a shell.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/resilience/resilient.h"
#include "core/service/catalog.h"
#include "core/service/client.h"

namespace service = hwsec::core::service;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s submit (--socket PATH | --tcp PORT) (--spec FILE | --spec-json JSON)\n"
               "          [--detach] [--quiet] [--print-records]\n"
               "       %s attach (--socket PATH | --tcp PORT) --job ID [--quiet] [--print-records]\n"
               "       %s status (--socket PATH | --tcp PORT)\n"
               "       %s stop   (--socket PATH | --tcp PORT)\n"
               "       %s run-direct (--spec FILE | --spec-json JSON) [--print-records]\n",
               argv0, argv0, argv0, argv0, argv0);
}

void print_records(const service::JobResultPayload& result) {
  std::vector<service::OutcomeRecord> records;
  if (!service::decode_outcomes(result.records, records)) {
    std::fprintf(stderr, "warning: result records failed to decode\n");
    return;
  }
  for (const auto& rec : records) {
    if (rec.ok) {
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      std::memcpy(&lo, rec.payload.data(), sizeof(lo));
      std::memcpy(&hi, rec.payload.data() + sizeof(lo), sizeof(hi));
      std::printf("trial %" PRIu64 " ok lo=%016" PRIx64 " hi=%016" PRIx64 " attempts=%u\n",
                  rec.index, lo, hi, rec.attempts);
    } else if (rec.skipped) {
      std::printf("trial %" PRIu64 " skipped\n", rec.index);
    } else {
      std::printf("trial %" PRIu64 " error kind=%u detail=%s\n", rec.index,
                  static_cast<unsigned>(rec.kind), rec.detail.c_str());
    }
  }
}

int stream_to_exit_code(service::ServiceClient& client, const std::string& job_id, bool quiet,
                        bool dump_records) {
  service::JobResultPayload result;
  std::string error;
  const bool got = client.wait_result(
      result, error, [&](const service::JobUpdatePayload& update) {
        if (!quiet) {
          std::fprintf(stderr, "job %s %s %" PRIu64 "/%" PRIu64 "\n", update.job_id.c_str(),
                       service::job_state_name(update.state), update.done, update.total);
        }
      });
  if (!got) {
    std::fprintf(stderr, "error: %s (job %s keeps running; reattach with --job %s)\n",
                 error.c_str(), job_id.c_str(), job_id.c_str());
    return 4;
  }
  std::vector<service::OutcomeRecord> records;
  const std::size_t record_count =
      service::decode_outcomes(result.records, records) ? records.size() : 0;
  std::printf("job %s %s digest=%016" PRIx64 " records=%zu\n", result.job_id.c_str(),
              service::job_state_name(result.state), result.digest, record_count);
  if (!result.error.empty()) {
    std::fprintf(stderr, "job error: %s\n", result.error.c_str());
  }
  if (dump_records) {
    print_records(result);
  }
  return result.state == service::JobState::kDone ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  service::ClientConfig config;
  std::string spec_json;
  std::string spec_file;
  std::string job_id;
  bool detach = false;
  bool quiet = false;
  bool dump_records = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      config.unix_socket = argv[++i];
    } else if (arg == "--tcp" && has_value) {
      config.tcp_port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--spec" && has_value) {
      spec_file = argv[++i];
    } else if (arg == "--spec-json" && has_value) {
      spec_json = argv[++i];
    } else if (arg == "--job" && has_value) {
      job_id = argv[++i];
    } else if (arg == "--timeout-ms" && has_value) {
      config.recv_timeout = std::chrono::milliseconds(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--detach") {
      detach = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--print-records") {
      dump_records = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!spec_file.empty()) {
    std::ifstream in(spec_file);
    if (!in) {
      std::fprintf(stderr, "error: cannot read spec file %s\n", spec_file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    spec_json = buffer.str();
  }

  if (command == "run-direct") {
    // The spec, executed in-process through the same run_campaign path the
    // daemon uses — the reference half of a daemon-vs-direct digest check.
    if (spec_json.empty()) {
      usage(argv[0]);
      return 2;
    }
    service::CampaignSpec spec;
    std::string decode_error;
    if (!service::decode_spec(spec_json, spec, decode_error)) {
      std::fprintf(stderr, "rejected: %s\n", decode_error.c_str());
      return 3;
    }
    try {
      const service::ServiceOutcomes outcomes =
          service::run_spec(spec, hwsec::core::ResilienceConfig{});
      service::JobResultPayload result;
      result.job_id = "direct";
      result.state = service::JobState::kDone;
      result.records = service::encode_outcomes(outcomes);
      result.digest = service::fnv1a64(result.records);
      std::vector<service::OutcomeRecord> records;
      const std::size_t count =
          service::decode_outcomes(result.records, records) ? records.size() : 0;
      std::printf("job direct done digest=%016" PRIx64 " records=%zu\n", result.digest,
                  count);
      if (dump_records) {
        print_records(result);
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  if (config.unix_socket.empty() && config.tcp_port == 0) {
    usage(argv[0]);
    return 2;
  }

  service::ServiceClient client(config);
  std::string error;

  if (command == "submit") {
    if (spec_json.empty()) {
      usage(argv[0]);
      return 2;
    }
    service::SubmittedPayload ack;
    if (!client.submit(spec_json, ack, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 4;
    }
    if (!ack.accepted) {
      std::fprintf(stderr, "rejected: %s\n", ack.message.c_str());
      return 3;
    }
    std::printf("submitted %s\n", ack.job_id.c_str());
    if (detach) {
      client.disconnect();
      return 0;
    }
    return stream_to_exit_code(client, ack.job_id, quiet, dump_records);
  }

  if (command == "attach") {
    if (job_id.empty()) {
      usage(argv[0]);
      return 2;
    }
    service::SubmittedPayload ack;
    if (!client.attach(job_id, ack, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 4;
    }
    if (!ack.accepted) {
      std::fprintf(stderr, "rejected: %s\n", ack.message.c_str());
      return 3;
    }
    return stream_to_exit_code(client, ack.job_id, quiet, dump_records);
  }

  if (command == "status") {
    std::string json;
    if (!client.status(json, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 4;
    }
    std::printf("%s\n", json.c_str());
    return 0;
  }

  if (command == "stop") {
    if (!client.stop_daemon(error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 4;
    }
    std::printf("stopping\n");
    return 0;
  }

  usage(argv[0]);
  return 2;
}
