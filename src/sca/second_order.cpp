#include "sca/second_order.h"

#include <cmath>
#include <stdexcept>

namespace hwsec::sca {

ByteAttackResult second_order_cpa_byte(const TraceSet& set, std::size_t byte_index,
                                       std::size_t mask_sample) {
  if (set.traces.size() != set.plaintexts.size() || set.traces.size() < 8) {
    throw std::invalid_argument("second-order CPA needs matched plaintexts and >= 8 traces");
  }
  const std::size_t n = set.traces.size();
  const std::size_t points = set.traces.front().size();
  if (mask_sample >= points) {
    throw std::invalid_argument("mask sample index out of range");
  }

  // Center every point, then build the combined trace: product of the
  // centered mask sample with each centered point. Means via shifted,
  // compensated sums (shift = first trace, per point) so a large DC
  // baseline doesn't bias the centering that the product amplifies.
  const Trace& reference = set.traces.front();
  std::vector<double> means(points, 0.0);
  std::vector<double> comp(points, 0.0);
  for (const Trace& t : set.traces) {
    for (std::size_t p = 0; p < points; ++p) {
      const double y = (t[p] - reference[p]) - comp[p];
      const double s = means[p] + y;
      comp[p] = (s - means[p]) - y;
      means[p] = s;
    }
  }
  // Keep the means *relative to the reference* — re-adding a 1e9 baseline
  // would round the mean at the baseline's ulp (~2e-7) and that constant
  // error, multiplied into the product, perturbs the correlations at
  // ~1e-8. Centering as (t − reference) − mean_rel keeps every operand
  // O(signal): the nearby-subtraction is exact, the mean accurate to
  // ~1e-16 relative.
  for (std::size_t p = 0; p < points; ++p) {
    means[p] /= static_cast<double>(n);
  }

  TraceSet combined;
  combined.plaintexts = set.plaintexts;
  combined.traces.reserve(n);
  for (const Trace& t : set.traces) {
    Trace c(points);
    const double mask_centered =
        (t[mask_sample] - reference[mask_sample]) - means[mask_sample];
    for (std::size_t p = 0; p < points; ++p) {
      c[p] = mask_centered * ((t[p] - reference[p]) - means[p]);
    }
    combined.traces.push_back(std::move(c));
  }

  // Ordinary CPA on the combined traces. The expected combined leakage is
  // an affine function of HW(S[pt ⊕ k]) (negative slope); |rho| is
  // slope-sign-agnostic, so the standard first-round engine applies
  // unchanged.
  return cpa_attack_byte(combined, byte_index);
}

KeyAttackResult second_order_cpa_key(const TraceSet& set, std::size_t mask_sample) {
  KeyAttackResult result;
  for (std::size_t i = 0; i < 16; ++i) {
    result.bytes[i] = second_order_cpa_byte(set, i, mask_sample);
    result.recovered[i] = result.bytes[i].best_guess;
  }
  return result;
}

}  // namespace hwsec::sca
