#include "arch/sanctum.h"

#include "sim/sim_error.h"

namespace hwsec::arch {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;

Sanctum::Sanctum(sim::Machine& machine, Config config)
    : Architecture(machine), config_(config) {
  if (config_.num_colors < 2 || (config_.num_colors & (config_.num_colors - 1)) != 0 ||
      64 % config_.num_colors != 0) {
    throw SimError(hwsec::ErrorKind::kConfigError,
                   "num_colors must be a power of two dividing 64");
  }
  // Upper half of the color space is the enclave pool; the OS allocates
  // from the lower half. Disjoint colors => disjoint LLC sets.
  for (std::uint32_t c = config_.num_colors / 2; c < config_.num_colors; ++c) {
    free_enclave_colors_.insert(c);
  }

  monitor_key_.resize(32);
  for (auto& b : monitor_key_) {
    b = static_cast<std::uint8_t>(machine.rng().next_u32());
  }

  // Page-walker invariant checks on every core.
  for (std::uint32_t c = 0; c < machine.num_cores(); ++c) {
    machine.cpu(static_cast<sim::CoreId>(c))
        .mmu()
        .set_walk_check([this](sim::VirtAddr, const sim::Translation& t, sim::AccessType,
                               sim::Privilege, sim::DomainId domain) -> sim::Fault {
          for (const Region& r : enclave_regions_) {
            if (t.phys >= r.base && t.phys < r.end) {
              const tee::EnclaveInfo* info = enclave(r.owner);
              if (info == nullptr || info->domain != domain) {
                return sim::Fault::kSecurityViolation;
              }
            }
          }
          return sim::Fault::kNone;
        });
  }

  // Memory-controller DMA filter: Sanctum's "basic DMA attack protection".
  dma_check_id_ = machine.bus().add_check(
      [this](sim::PhysAddr addr, sim::AccessType, sim::DomainId, sim::Privilege,
             bool is_dma) -> sim::Fault {
        if (is_dma && in_enclave_memory(addr)) {
          return sim::Fault::kSecurityViolation;
        }
        return sim::Fault::kNone;
      });
}

Sanctum::~Sanctum() {
  machine_->bus().remove_check(dma_check_id_);
  for (std::uint32_t c = 0; c < machine_->num_cores(); ++c) {
    machine_->cpu(static_cast<sim::CoreId>(c)).mmu().set_walk_check(nullptr);
  }
}

const tee::ArchitectureTraits& Sanctum::traits() const {
  static const tee::ArchitectureTraits kTraits{
      .name = "Sanctum",
      .reference = "[11]",
      .target = sim::DeviceClass::kServer,
      .tcb = tee::TcbType::kMonitor,
      .enclave_capacity = -1,
      .memory_encryption = false,  // explicit difference from SGX.
      .dma_defense = tee::DmaDefense::kRangeFilter,
      .cache_defense = tee::CacheDefense::kLlcPartitioning,
      .secure_peripheral_channels = false,
      .attestation = tee::AttestationSupport::kLocalAndRemote,
      .code_isolation = true,
      .real_time_capable = false,
      .secure_boot = true,  // measured monitor boot.
      .secure_storage = false,
      .vendor_trust_required = false,
      .new_hardware_required = true,  // "small hardware changes".
      .considers_cache_sca = true,
      .considers_dma = true,
  };
  return kTraits;
}

hwsec::sim::PhysAddr Sanctum::alloc_os_frame() {
  // Round-robin over the OS half of the color space.
  const std::uint32_t color = os_color_rr_ % (config_.num_colors / 2);
  ++os_color_rr_;
  return machine_->alloc_frame_colored(color, config_.num_colors);
}

bool Sanctum::in_enclave_memory(sim::PhysAddr addr) const {
  for (const Region& r : enclave_regions_) {
    if (addr >= r.base && addr < r.end) {
      return true;
    }
  }
  return false;
}

tee::Expected<tee::EnclaveId> Sanctum::create_enclave(const tee::EnclaveImage& image) {
  if (free_enclave_colors_.empty()) {
    return {.value = tee::kInvalidEnclave, .error = tee::EnclaveError::kOutOfMemory};
  }
  const std::uint32_t color = *free_enclave_colors_.begin();
  free_enclave_colors_.erase(free_enclave_colors_.begin());

  const std::uint32_t pages = image_pages(image);

  tee::EnclaveInfo info;
  info.name = image.name;
  info.measurement = tee::measure_image(image);
  info.domain = next_domain_++;
  info.pages = pages;
  info.stride_pages = config_.num_colors;  // every frame has `color`.
  info.base = machine_->alloc_frame_colored(color, config_.num_colors);
  // Claim the remaining same-color frames (contiguous in color space).
  for (std::uint32_t p = 1; p < pages; ++p) {
    const sim::PhysAddr frame = machine_->alloc_frame_colored(color, config_.num_colors);
    if (frame != info.base + p * config_.num_colors * sim::kPageSize) {
      // The bump allocator guarantees this layout; anything else is a bug.
      throw SimError(hwsec::ErrorKind::kInternalError,
                     "Sanctum: colored frames not evenly strided")
          .with_machine(machine_->profile().name);
    }
  }
  info.initialized = true;
  tee::EnclaveInfo& registered = register_enclave(std::move(info));
  for (std::uint32_t p = 0; p < pages; ++p) {
    const sim::PhysAddr frame = registered.phys_of(p * sim::kPageSize);
    enclave_regions_.push_back({registered.id, frame, frame + sim::kPageSize});
  }
  load_image(image, registered);
  return {.value = registered.id, .error = tee::EnclaveError::kOk};
}

tee::EnclaveError Sanctum::destroy_enclave(tee::EnclaveId id) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  // Monitor scrubs pages and returns the color to the pool.
  for (std::uint32_t p = 0; p < info->pages; ++p) {
    const sim::PhysAddr frame = info->phys_of(p * sim::kPageSize);
    machine_->memory().fill(frame, sim::kPageSize, 0);
    for (sim::PhysAddr a = frame; a < frame + sim::kPageSize; a += 64) {
      machine_->caches().flush_line(a);
    }
  }
  free_enclave_colors_.insert(machine_->frame_color(info->base, config_.num_colors));
  std::erase_if(enclave_regions_, [id](const Region& r) { return r.owner == id; });
  unregister_enclave(id);
  return tee::EnclaveError::kOk;
}

tee::EnclaveError Sanctum::call_enclave(tee::EnclaveId id, sim::CoreId core,
                                        const Service& service) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  sim::Cpu& cpu = machine_->cpu(core);
  const sim::DomainId saved_domain = cpu.domain();
  const sim::Privilege saved_priv = cpu.privilege();

  // Enclave entry through the monitor: flush core-private state so the
  // previous occupant's cache contents cannot be probed (and vice versa).
  if (config_.flush_private_caches_on_switch) {
    machine_->caches().flush_core_private(core);
  }
  cpu.switch_context(info->domain, sim::Privilege::kUser, cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(200);  // monitor-mediated entry is pricier than EENTER.

  tee::EnclaveContext ctx(*machine_, core, *info);
  service(ctx);

  if (config_.flush_private_caches_on_switch) {
    machine_->caches().flush_core_private(core);
  }
  cpu.switch_context(saved_domain, saved_priv, cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(200);
  return tee::EnclaveError::kOk;
}

tee::Expected<tee::AttestationReport> Sanctum::attest(tee::EnclaveId id,
                                                      const tee::Nonce& nonce) {
  const tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  return {.value = tee::make_report(monitor_key_, info->measurement, nonce),
          .error = tee::EnclaveError::kOk};
}

std::vector<std::uint8_t> Sanctum::report_verification_key() const { return monitor_key_; }

}  // namespace hwsec::arch
