// Reference interpreter: the differential-fuzzing oracle.
//
// Executes architectural state only — registers, memory, privilege and
// domain — with none of the machinery the full simulator carries: no
// pipeline, no caches, no TLB, no branch predictors, no transient windows.
// It re-implements the architecture's *contract* straight from the shared
// EnvSpec: the page walk over in-DRAM tables, PTE permission checks, the
// spec's protection point (walk check / bus firewall / EA-MPU), the MEE
// transform, the ecall services, and the fault-handling policy.
//
// Anything microarchitectural the full Machine does — speculation,
// Meltdown/L1TF fault forwarding, cache fills, predictor updates — must
// have NO architectural effect, so the two executions must agree on every
// committed register write, memory write, fault, and control transfer. A
// disagreement is a simulator bug (or a deliberately injected one).
//
// Memory model: the oracle never touches the machine's DRAM. It reads an
// immutable baseline image (the machine's post-install_env DRAM, identical
// for every trial of an architecture) through a page-granular copy-on-write
// overlay; its writes materialize overlay pages. After the machine runs,
// the differ compares every DRAM page against baseline-or-overlay.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "conformance/env.h"
#include "sim/isa.h"
#include "sim/program.h"

namespace hwsec::conformance {

/// Copy-on-write view over an immutable DRAM baseline.
class ShadowMemory {
 public:
  explicit ShadowMemory(std::span<const std::uint8_t> baseline) : baseline_(baseline) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(baseline_.size()); }
  bool contains(sim::PhysAddr addr, std::uint32_t len) const {
    return addr < size() && static_cast<std::uint64_t>(addr) + len <= size();
  }

  std::uint8_t read8(sim::PhysAddr addr) const;
  sim::Word read32(sim::PhysAddr addr) const;  ///< little-endian, any alignment.
  void write32(sim::PhysAddr addr, sim::Word value);

  /// Page-aligned view of one page: overlay copy if the oracle wrote to
  /// it, baseline otherwise.
  std::span<const std::uint8_t> page(std::uint32_t page_number) const;
  const std::unordered_map<std::uint32_t, std::vector<std::uint8_t>>& overlay() const {
    return overlay_;
  }

 private:
  std::vector<std::uint8_t>& materialize(std::uint32_t page_number);

  std::span<const std::uint8_t> baseline_;
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> overlay_;
};

/// Final architectural state of a reference run; the differ compares this
/// field-for-field against the machine's.
struct ReferenceResult {
  std::array<sim::Word, sim::kNumRegs> regs{};
  sim::VirtAddr pc = 0;
  bool halted = false;
  std::uint64_t executed = 0;
  std::vector<FaultRecord> faults;
  std::uint64_t leak_hash = 0;
  sim::DomainId final_domain = 0;
  sim::Privilege final_priv = sim::Privilege::kUser;
  /// True when the enclave context wrote inside the measured region (the
  /// attestation checker then expects the measurement to have moved).
  bool enclave_wrote_measured = false;
};

class ReferenceInterpreter {
 public:
  /// `baseline` must be the machine's post-install_env DRAM image and must
  /// outlive the interpreter. `programs` are the same decoded programs
  /// loaded into the machine (including the halt stub).
  ReferenceInterpreter(const EnvSpec& spec, std::span<const std::uint8_t> baseline,
                       std::vector<sim::Program> programs);

  /// Runs from `entry` until halt or `budget` steps; mirrors Cpu::run's
  /// counting exactly (faulting steps count).
  ReferenceResult run(sim::VirtAddr entry, std::uint64_t budget);

  const ShadowMemory& memory() const { return mem_; }

 private:
  struct Translated {
    sim::Fault fault = sim::Fault::kNone;
    sim::PhysAddr phys = 0;
  };

  sim::Word reg(sim::Reg r) const { return r == sim::kZero ? 0 : res_.regs[r]; }
  void set_reg(sim::Reg r, sim::Word v) {
    if (r != sim::kZero) {
      res_.regs[r] = v;
    }
  }
  void leak(sim::Word v) { res_.leak_hash = leak_mix(res_.leak_hash, v); }

  /// MMU model: page walk + PTE checks + (for kWalkCheck) the protection
  /// hook, in the simulator's exact order. Bare profiles: identity.
  Translated translate(sim::VirtAddr va, sim::AccessType type) const;
  /// Bus model: DRAM bounds + (for kBus) the firewall.
  sim::Fault bus_check(sim::PhysAddr addr, sim::AccessType type) const;
  /// EA-MPU model over spec.mpu_regions (bare profiles only).
  sim::Fault mpu_check(sim::PhysAddr addr, sim::AccessType type, sim::PhysAddr pc) const;
  sim::Fault mpu_check_fetch(sim::PhysAddr addr, sim::PhysAddr from_pc) const;

  sim::Word mem_read(sim::PhysAddr word_addr) const;   ///< applies the MEE transform.
  void mem_write(sim::PhysAddr word_addr, sim::Word v);

  const sim::Instruction* instruction_at(sim::VirtAddr pc) const;
  void ecall(sim::Word service, sim::VirtAddr pc);
  /// Fault policy shared with the machine-side handler; sets the next pc.
  void raise(const FaultRecord& record);

  /// One committed step; returns false when the run should stop (halt).
  bool step();

  const EnvSpec& spec_;
  ShadowMemory mem_;
  std::vector<sim::Program> programs_;
  ReferenceResult res_;
  EnvContext ctx_;
  sim::PhysAddr prev_fetch_phys_ = 0;
};

}  // namespace hwsec::conformance
