// Full 128-bit AES key recovery through the cache channel: first-round
// nibbles + the Osvik–Shamir–Tromer second-round attack ([34] §3.4).
//
// The first-round attack (cache_attacks.h) caps out at the high nibble of
// every key byte (a 64-byte line holds 16 T-table entries). The second
// round breaks the remaining 64 bits: the round-2 T0 indices are known
// GF(2^8) expressions in plaintext bytes and key bytes,
//
//   idx0 = 02•S(p0⊕k0) ⊕ 03•S(p5⊕k5) ⊕ S(p10⊕k10) ⊕ S(p15⊕k15)
//          ⊕ k0 ⊕ S(k13) ⊕ 01                       (K1[0]'s top byte)
//
// and analogously for the other three words. With high nibbles already
// known, each equation leaves a small candidate space over the involved
// low nibbles; every observation ELIMINATES candidates whose predicted
// line is absent from that trial's observed T0 line set (the true
// candidate's line is always present). The four equations together cover
// all 16 key bytes; surviving combinations are verified against a known
// plaintext/ciphertext pair.
//
// Observations come from the same Flush+Reload/Prime+Probe machinery —
// one extra pass records per-trial line sets instead of votes.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "attacks/cache/cache_attacks.h"

namespace hwsec::attacks {

/// One victim observation: plaintext, ciphertext, and the set of lines
/// seen hot in each round table (bit l of lines[t] = line l of T_t was
/// accessed during this encryption).
struct LineObservation {
  hwsec::crypto::AesBlock plaintext{};
  hwsec::crypto::AesBlock ciphertext{};
  std::array<std::uint16_t, 4> lines{};
};

/// Collects `trials` Flush+Reload observations of the victim.
std::vector<LineObservation> collect_line_observations(hwsec::sim::Machine& machine,
                                                       const TableLayout& layout,
                                                       const VictimFn& victim,
                                                       std::uint64_t trials,
                                                       const CacheAttackConfig& config);

struct FullKeyResult {
  bool recovered = false;
  hwsec::crypto::AesKey key{};
  std::uint32_t first_round_nibbles_correct = 0;  ///< internal diagnostic.
  std::array<std::size_t, 4> equation_survivors{};
  std::uint64_t keys_verified = 0;  ///< cartesian candidates tested at the end.
};

/// Runs the two-stage attack over the observations.
FullKeyResult recover_full_key(const std::vector<LineObservation>& observations);

/// Convenience: collect + recover against a victim.
FullKeyResult full_key_attack(hwsec::sim::Machine& machine, const TableLayout& layout,
                              const VictimFn& victim, std::uint64_t trials = 600,
                              const CacheAttackConfig& config = {});

}  // namespace hwsec::attacks
