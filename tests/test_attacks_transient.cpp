// End-to-end transient-execution attacks (§4.2): Meltdown, Spectre
// PHT/BTB/RSB, Foreshadow — each with its mitigation counter-check.
#include <gtest/gtest.h>

#include "arch/sgx.h"
#include "attacks/transient/foreshadow.h"
#include "attacks/transient/meltdown.h"
#include "attacks/transient/sgxpectre.h"
#include "attacks/transient/spectre.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;

namespace {

TEST(Meltdown, ReadsKernelMemoryFromUserSpace) {
  sim::Machine machine(sim::MachineProfile::server(), 61);
  attacks::MeltdownAttack meltdown(machine, 0);
  const sim::VirtAddr va = meltdown.plant_kernel_secret("TopSecretKernelData");
  EXPECT_EQ(meltdown.leak_string(va, 19), "TopSecretKernelData");
}

TEST(Meltdown, MitigatedSiliconLeaksNothing) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.meltdown_fault_forwarding = false;
  sim::Machine machine(profile, 62);
  attacks::MeltdownAttack meltdown(machine, 0);
  const sim::VirtAddr va = meltdown.plant_kernel_secret("X");
  EXPECT_FALSE(meltdown.leak_byte(va).has_value());
}

TEST(Meltdown, MobileProfileIsImmune) {
  // ARM-like cores don't forward across the permission check.
  sim::Machine machine(sim::MachineProfile::mobile(), 63);
  attacks::MeltdownAttack meltdown(machine, 0);
  const sim::VirtAddr va = meltdown.plant_kernel_secret("X");
  EXPECT_FALSE(meltdown.leak_byte(va).has_value());
}

TEST(SpectreV1, BoundsCheckBypassLeaksOutOfBounds) {
  sim::Machine machine(sim::MachineProfile::server(), 64);
  attacks::SpectreV1 spectre(machine, 0);
  const sim::Word index = spectre.plant_secret("BYPASS");
  EXPECT_EQ(spectre.leak_string(index, 6), "BYPASS");
}

TEST(SpectreV1, FenceMitigationClosesTheWindow) {
  sim::Machine machine(sim::MachineProfile::server(), 65);
  attacks::SpectreV1::Config config;
  config.victim_has_fence = true;
  attacks::SpectreV1 spectre(machine, 0, config);
  const sim::Word index = spectre.plant_secret("Z");
  EXPECT_FALSE(spectre.leak_byte(index).has_value());
}

TEST(SpectreV1, WorksOnMobileToo) {
  // Spectre, unlike Meltdown, hits ARM-class cores as well (§4.2).
  sim::Machine machine(sim::MachineProfile::mobile(), 66);
  attacks::SpectreV1 spectre(machine, 0);
  const sim::Word index = spectre.plant_secret("M");
  const auto byte = spectre.leak_byte(index);
  ASSERT_TRUE(byte.has_value());
  EXPECT_EQ(*byte, 'M');
}

TEST(SpectreV2, CrossDomainTargetInjection) {
  sim::Machine machine(sim::MachineProfile::server(), 67);
  attacks::SpectreV2 spectre(machine, 0);
  spectre.plant_secret("BTI!");
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto byte = spectre.leak_byte(i);
    ASSERT_TRUE(byte.has_value()) << "offset " << i;
    EXPECT_EQ(static_cast<char>(*byte), "BTI!"[i]);
  }
}

TEST(SpectreV2, BtbTaggingDefeatsInjection) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.predictor.btb_tag_bits = 10;  // per-context-ish tagging.
  sim::Machine machine(profile, 68);
  attacks::SpectreV2 spectre(machine, 0);
  spectre.plant_secret("X");
  EXPECT_FALSE(spectre.leak_byte(0).has_value());
}

TEST(SpectreV2, PredictorFlushOnSwitchDefeatsInjection) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.predictor.flush_on_domain_switch = true;  // IBPB-style.
  sim::Machine machine(profile, 69);
  attacks::SpectreV2 spectre(machine, 0);
  spectre.plant_secret("X");
  EXPECT_FALSE(spectre.leak_byte(0).has_value());
}

TEST(SpectreRsb, PoisonedReturnAddressLeaks) {
  sim::Machine machine(sim::MachineProfile::server(), 70);
  attacks::SpectreRsb spectre(machine, 0);
  spectre.plant_secret("RSB");
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto byte = spectre.leak_byte(i);
    ASSERT_TRUE(byte.has_value()) << "offset " << i;
    EXPECT_EQ(static_cast<char>(*byte), "RSB"[i]);
  }
}

TEST(SpectreRsb, RsbFlushOnSwitchDefeatsPoisoning) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.predictor.flush_on_domain_switch = true;
  sim::Machine machine(profile, 71);
  attacks::SpectreRsb spectre(machine, 0);
  spectre.plant_secret("X");
  EXPECT_FALSE(spectre.leak_byte(0).has_value());
}

TEST(SgxPectre, LeaksEnclaveSecretsWithoutAnyFault) {
  // The §4.2 closing concern: transient execution vs. TEEs beyond
  // Foreshadow. No terminal fault, no L1 staging — the enclave's own
  // mistrained bounds check reads its own memory transiently.
  sim::Machine machine(sim::MachineProfile::server(), 74);
  arch::Sgx sgx(machine);
  attacks::SgxPectreAttack attack(machine, sgx, "EnclaveApiKey");
  EXPECT_EQ(attack.leak_secret(13), "EnclaveApiKey");
}

TEST(SgxPectre, FenceHardenedEnclaveResists) {
  sim::Machine machine(sim::MachineProfile::server(), 75);
  arch::Sgx sgx(machine);
  attacks::SgxPectreAttack::Config config;
  config.enclave_has_fence = true;
  attacks::SgxPectreAttack attack(machine, sgx, "S", 0, config);
  EXPECT_FALSE(attack.leak_secret_byte(0).has_value())
      << "the SDK's serializing fence closes the window";
}

TEST(SgxPectre, L1tfFixedSiliconDoesNotHelp) {
  // Unlike Foreshadow, fixing the terminal fault changes nothing here —
  // the attack never faults. Only speculation controls matter.
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.l1tf_vulnerable = false;
  profile.cpu.meltdown_fault_forwarding = false;
  sim::Machine machine(profile, 76);
  arch::Sgx sgx(machine);
  attacks::SgxPectreAttack attack(machine, sgx, "X");
  const auto byte = attack.leak_secret_byte(0);
  ASSERT_TRUE(byte.has_value());
  EXPECT_EQ(*byte, 'X');
}

class ForeshadowTest : public ::testing::Test {
 protected:
  ForeshadowTest()
      : machine_(sim::MachineProfile::server(), 72), sgx_(machine_) {}

  tee::EnclaveId make_victim(const std::string& secret) {
    tee::EnclaveImage image;
    image.name = "victim";
    image.code = {0xEE};
    image.secret.assign(secret.begin(), secret.end());
    return sgx_.create_enclave(image).value;
  }

  sim::Machine machine_;
  arch::Sgx sgx_;
};

TEST_F(ForeshadowTest, ExtractsEnclaveMemoryThroughL1TF) {
  const tee::EnclaveId victim = make_victim("EnclaveSecret");
  attacks::ForeshadowAttack foreshadow(machine_, sgx_, 0);
  const auto bytes = foreshadow.leak_enclave_range(victim, 1, 13);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "EnclaveSecret");
}

TEST_F(ForeshadowTest, RequiresThePageSwapL1Loading) {
  const tee::EnclaveId victim = make_victim("S");
  attacks::ForeshadowAttack::Config config;
  config.use_page_swap_loading = false;
  attacks::ForeshadowAttack foreshadow(machine_, sgx_, 0, config);
  EXPECT_FALSE(foreshadow.leak_enclave_byte(victim, 1).has_value())
      << "with a cold L1, the terminal fault forwards nothing";
}

TEST_F(ForeshadowTest, L1tfFixedSiliconIsImmune) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.l1tf_vulnerable = false;
  sim::Machine machine(profile, 73);
  arch::Sgx sgx(machine);
  tee::EnclaveImage image;
  image.name = "victim";
  image.code = {0xEE};
  image.secret = {'S'};
  const auto victim = sgx.create_enclave(image).value;
  attacks::ForeshadowAttack foreshadow(machine, sgx, 0);
  EXPECT_FALSE(foreshadow.leak_enclave_byte(victim, 1).has_value());
}

TEST_F(ForeshadowTest, StealsAttestationKeyAndForgesQuotes) {
  // The paper's headline consequence: "Foreshadow was used to extract
  // attestation keys of Intel SGX" — after which remote attestation
  // cannot be trusted at all.
  attacks::ForeshadowAttack foreshadow(machine_, sgx_, 0);
  const hwsec::crypto::u64 stolen_d = foreshadow.steal_attestation_key();
  ASSERT_NE(stolen_d, 0u);

  // Forge a quote for malware that never ran in an enclave.
  hwsec::crypto::RsaKeyPair forged_key;
  forged_key.n = sgx_.attestation_n();
  forged_key.e = sgx_.attestation_e();
  forged_key.d = stolen_d;
  // Reconstruct CRT parameters? Not needed: sign via plain powmod.
  tee::Nonce nonce{};
  nonce[0] = 0x66;
  tee::AttestationReport fake_report = tee::make_report(
      sgx_.report_verification_key(), hwsec::crypto::Sha256::hash(std::string{"malware"}),
      nonce);
  // (The report key is microcode-held in reality; Foreshadow can read it
  // from the quoting enclave the same way. For the test we focus on the
  // asymmetric key, using the report path as given.)
  tee::Quote forged;
  forged.report = fake_report;
  const auto digest = tee::report_digest(fake_report);
  hwsec::crypto::u64 m = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    m = (m << 8) | digest[i];
  }
  forged.signature = hwsec::crypto::powmod(m % forged_key.n, stolen_d, forged_key.n);
  EXPECT_TRUE(tee::verify_quote(forged, sgx_.attestation_n(), sgx_.attestation_e(),
                                sgx_.report_verification_key(), nonce))
      << "with the stolen key, arbitrary 'enclaves' attest successfully";
}

}  // namespace
