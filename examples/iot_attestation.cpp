// Scenario: a fleet operator remotely attesting IoT sensor firmware —
// the §3.3 setting (SMART / TrustLite / TyTAN on MCU-class devices).
//
//   1. SMART: attest the sensor's firmware region; catch an infection;
//      see why the interrupt blackout rules out hard real-time, and why
//      the unconsidered DMA path is a problem;
//   2. TyTAN: the same device with trustlets — secure boot, dynamic
//      loading, measurement-bound sealed storage for calibration data.
//
// Build & run:   ./build/examples/iot_attestation
#include <iostream>

#include "arch/smart.h"
#include "arch/trustlite.h"
#include "sim/dma.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;

int main() {
  std::cout << "--- SMART on an MCU-class sensor node ---\n";
  sim::Machine node(sim::MachineProfile::embedded(), 8001);
  arch::Smart smart(node);

  // Deploy "firmware" into the sensor's flash.
  const sim::PhysAddr firmware = node.alloc_frame();
  for (std::uint32_t i = 0; i < 256; ++i) {
    node.memory().write8(firmware + i, static_cast<std::uint8_t>(0x60 + i % 16));
  }

  // The verifier attests and remembers the good measurement.
  tee::Nonce nonce{};
  nonce[0] = 1;
  const auto good = smart.attest_region(firmware, 256, nonce);
  std::cout << "baseline firmware measurement: "
            << hwsec::crypto::to_hex(good.measurement).substr(0, 16) << "...\n";
  std::cout << "report verifies with shared key: "
            << tee::verify_report(smart.report_verification_key(), good, nonce) << "\n";
  std::cout << "attestation blocked interrupts for " << smart.last_attestation_cycles()
            << " cycles (why SMART is not real-time capable)\n";

  // Malware rewrites two firmware bytes; the next (fresh-nonce) report
  // cannot be forged.
  node.memory().write8(firmware + 10, 0xEB);
  node.memory().write8(firmware + 11, 0xFE);
  nonce[0] = 2;
  const auto infected = smart.attest_region(firmware, 256, nonce);
  std::cout << "post-infection measurement differs: "
            << !hwsec::crypto::digest_equal(infected.measurement, good.measurement) << "\n";

  // The PC gate protects the key from software...
  std::cout << "application code reading the attestation key: "
            << sim::to_string(smart.try_key_access(0x80000)) << "\n";
  // ...but DMA is not in SMART's threat model.
  sim::DmaDevice evil_peripheral(node.bus(), arch::kUntrustedDeviceDomain, "evil-radio");
  const auto lifted = evil_peripheral.exfiltrate(smart.key_phys(), smart.key_bytes());
  std::cout << "malicious peripheral lifted the key via DMA: "
            << (lifted == smart.report_verification_key() ? "YES (threat-model gap)" : "no")
            << "\n";

  std::cout << "\n--- TyTAN on the next hardware revision ---\n";
  sim::Machine node2(sim::MachineProfile::embedded(), 8002);
  arch::TyTan tytan(node2);
  if (tytan.boot() != tee::EnclaveError::kOk) {
    std::cout << "secure boot failed!\n";
    return 1;
  }
  std::cout << "secure boot: ok\n";

  // The sensing trustlet, loaded dynamically after boot.
  tee::EnclaveImage sensor;
  sensor.name = "lidar-driver";
  sensor.code = {0x4C, 0x44};
  const auto trustlet = tytan.create_enclave(sensor);
  std::cout << "dynamic trustlet load after boot: " << tee::to_string(trustlet.error) << "\n";

  // Calibration data sealed to the trustlet's measurement.
  const std::vector<std::uint8_t> calibration = {0x12, 0x0F, 0x33, 0x21, 0x08};
  const auto blob = tytan.seal(trustlet.value, calibration);
  const auto unsealed = tytan.unseal(trustlet.value, blob.value);
  std::cout << "seal/unseal round trip: " << (unsealed.value == calibration) << "\n";

  // A different (updated = different measurement) trustlet cannot unseal.
  tee::EnclaveImage updated = sensor;
  updated.name = "lidar-driver-v2";
  const auto v2 = tytan.create_enclave(updated);
  std::cout << "different trustlet unsealing the blob: "
            << tee::to_string(tytan.unseal(v2.value, blob.value).error) << "\n";

  // Real-time story: bounded entry cost, interrupts never disabled.
  const sim::Cycle before = node2.cpu(0).cycles();
  tytan.call_enclave(trustlet.value, 0, [](tee::EnclaveContext&) {});
  std::cout << "trustlet entry+exit: " << node2.cpu(0).cycles() - before
            << " cycles (bounded; vs. SMART's " << smart.last_attestation_cycles()
            << "-cycle attestation blackout)\n";
  return 0;
}
