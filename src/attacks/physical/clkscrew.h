// CLKSCREW (paper §5, [37]): software-only fault injection by driving the
// SoC's DVFS regulators beyond the stability envelope — "forcing a
// processor to operate beyond its DVFS limits in order to leak
// cryptographic keys" out of ARM TrustZone.
//
// The attacker is a normal-world kernel: it cannot read secure-world
// memory, but it CAN program the (SoC-global, unprotected) DVFS
// registers. It alternates a rated operating point (to collect correct
// ciphertexts) with an overclocked one (to collect glitched ones) while
// invoking the secure world's AES service, then feeds the pairs to the
// differential fault analysis — no physical access required.
//
// Two mitigations close the attack, both swept by the E9 bench:
//  * a hardware envelope interlock (dvfs.enforce_envelope(true)) rejects
//    the unstable point outright;
//  * an operating point inside the envelope has fault probability 0, so
//    no usable pairs ever appear.
#pragma once

#include <functional>

#include "attacks/physical/fault_attacks.h"
#include "sim/machine.h"

namespace hwsec::attacks {

struct ClkscrewConfig {
  /// The overclocked point the attacker programs.
  hwsec::sim::OperatingPoint attack_point{3600.0, 0.80};
  /// Rated point used to collect correct ciphertexts.
  std::size_t rated_index = 0;
  std::uint32_t max_invocations = 16000;
  std::uint32_t target_pairs = 700;
  std::uint64_t seed = 7777;
};

struct ClkscrewResult {
  bool blocked_by_interlock = false;  ///< hardware mitigation fired.
  double fault_probability = 0.0;     ///< at the attack point.
  std::uint32_t invocations = 0;
  std::uint32_t faulty_pairs = 0;
  DfaResult dfa{};
};

/// `secure_encrypt` invokes the victim's AES inside its TEE; its round-10
/// state must be wired through machine.injector() (the harnesses in
/// bench/ and tests/ do this). The attack itself never sees the key.
ClkscrewResult clkscrew_attack(
    hwsec::sim::Machine& machine,
    const std::function<hwsec::crypto::AesBlock(const hwsec::crypto::AesBlock&)>& secure_encrypt,
    const ClkscrewConfig& config = {});

}  // namespace hwsec::attacks
