#include "core/shard/wire.h"

#include <csignal>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include <cerrno>

namespace hwsec::core::shard {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>(v >> 8 & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>(v >> shift & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>(v >> shift & 0xFF));
  }
}

void put_bytes(std::string& out, const std::string& bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

namespace {

constexpr std::size_t kHeaderBytes = 12;  // magic u32, version u16, type u16, length u32.

bool read_all(int fd, char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t got = ::read(fd, data, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) {
      return false;  // EOF mid-frame.
    }
    data += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

/// Parses and validates a frame header. THE single validation point for
/// every read path — blocking read_frame and incremental FrameBuffer both
/// come through here, so there is exactly one definition of "acceptable
/// header": magic, version, AND payload length within the caller's cap.
/// (Before this was unified, the length check lived separately in each
/// reader; supervisor-side shard reads inherited the codec-wide 1 GiB
/// default instead of a worker-sized cap.) Returns false on a
/// desynchronized, cross-build, or lying header — always BEFORE any
/// payload allocation.
bool parse_header(const char* raw, FrameType& type, std::uint32_t& length,
                  std::uint32_t max_payload) {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t type_raw = 0;
  std::memcpy(&magic, raw, 4);
  std::memcpy(&version, raw + 4, 2);
  std::memcpy(&type_raw, raw + 6, 2);
  std::memcpy(&length, raw + 8, 4);
  if (magic != kWireMagic || version != kWireVersion || length > max_payload) {
    return false;
  }
  type = static_cast<FrameType>(type_raw);
  return true;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  std::string wire;
  wire.reserve(kHeaderBytes + frame.payload.size());
  put_u32(wire, kWireMagic);
  put_u16(wire, kWireVersion);
  put_u16(wire, static_cast<std::uint16_t>(frame.type));
  put_u32(wire, static_cast<std::uint32_t>(frame.payload.size()));
  wire.append(frame.payload);
  return wire;
}

bool write_all_fd(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full buffer: wait for writability. The
        // peer draining (or dying: POLLERR/POLLHUP) wakes us either way.
        pollfd pfd{fd, POLLOUT, 0};
        poll(&pfd, 1, /*timeout_ms=*/100);
        continue;
      }
      return false;
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool write_frame(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  return write_all_fd(fd, wire.data(), wire.size());
}

bool read_frame(int fd, Frame& out, std::uint32_t max_payload) {
  char header[kHeaderBytes];
  if (!read_all(fd, header, sizeof(header))) {
    return false;
  }
  std::uint32_t length = 0;
  if (!parse_header(header, out.type, length, max_payload)) {
    return false;  // bad magic/version or lying length: reject pre-alloc.
  }
  out.payload.resize(length);
  return length == 0 || read_all(fd, out.payload.data(), length);
}

bool FrameBuffer::next(Frame& out) {
  if (corrupt_ || buffer_.size() < kHeaderBytes) {
    return false;
  }
  std::uint32_t length = 0;
  if (!parse_header(buffer_.data(), out.type, length, max_payload_)) {
    corrupt_ = true;
    return false;
  }
  if (buffer_.size() < kHeaderBytes + length) {
    return false;
  }
  out.payload.assign(buffer_, kHeaderBytes, length);
  buffer_.erase(0, kHeaderBytes + length);
  return true;
}

bool drain_fd(int fd, FrameBuffer& buffer) {
  char chunk[4096];
  while (true) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got > 0) {
      buffer.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) {
      return false;  // peer closed.
    }
    if (errno == EINTR) {
      continue;
    }
    return errno == EAGAIN || errno == EWOULDBLOCK;
  }
}

std::string encode_assign(const AssignPayload& assign) {
  std::string out;
  put_u64(out, assign.shard_id);
  put_u64(out, assign.begin);
  put_u64(out, assign.end);
  put_u32(out, assign.attempt);
  std::string mask(assign.done_mask.begin(), assign.done_mask.end());
  put_bytes(out, mask);
  return out;
}

bool decode_assign(const std::string& payload, AssignPayload& out) {
  Reader r(payload);
  std::string mask;
  if (!r.get_u64(out.shard_id) || !r.get_u64(out.begin) || !r.get_u64(out.end) ||
      !r.get_u32(out.attempt) || !r.get_bytes(mask) || !r.exhausted()) {
    return false;
  }
  out.done_mask.assign(mask.begin(), mask.end());
  return out.begin <= out.end;
}

std::string encode_trial(const TrialPayload& trial) {
  std::string out;
  put_u64(out, trial.index);
  out.push_back(trial.record.ok ? 1 : 0);
  put_u32(out, trial.record.attempts);
  out.push_back(static_cast<char>(trial.record.kind));
  put_bytes(out, trial.record.payload);
  put_bytes(out, trial.record.detail);
  put_bytes(out, trial.record.machine);
  return out;
}

bool decode_trial(const std::string& payload, TrialPayload& out) {
  Reader r(payload);
  std::uint8_t ok = 0;
  std::uint8_t kind = 0;
  std::uint32_t attempts = 0;
  if (!r.get_u64(out.index) || !r.get_u8(ok) || !r.get_u32(attempts) || !r.get_u8(kind) ||
      !r.get_bytes(out.record.payload) || !r.get_bytes(out.record.detail) ||
      !r.get_bytes(out.record.machine) || !r.exhausted()) {
    return false;
  }
  out.record.ok = ok != 0;
  out.record.attempts = attempts == 0 ? 1 : attempts;
  out.record.kind = kind;
  return true;
}

std::string encode_shard_done(std::uint64_t shard_id) {
  std::string out;
  put_u64(out, shard_id);
  return out;
}

bool decode_shard_done(const std::string& payload, std::uint64_t& shard_id) {
  Reader r(payload);
  return r.get_u64(shard_id) && r.exhausted();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

SigpipeIgnore::SigpipeIgnore() : previous_(new struct sigaction) {
  struct sigaction ignore {};
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  installed_ =
      sigaction(SIGPIPE, &ignore, static_cast<struct sigaction*>(previous_)) == 0;
}

SigpipeIgnore::~SigpipeIgnore() {
  if (installed_) {
    sigaction(SIGPIPE, static_cast<struct sigaction*>(previous_), nullptr);
  }
  delete static_cast<struct sigaction*>(previous_);
}

}  // namespace hwsec::core::shard
