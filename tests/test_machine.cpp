// Machine composition: profiles, frame allocation, coloring, touch port,
// energy/time accounting.
#include <gtest/gtest.h>

#include "sim/machine.h"

namespace sim = hwsec::sim;

namespace {

TEST(Machine, ProfilesReflectPlatformClasses) {
  const auto server = sim::MachineProfile::server();
  const auto mobile = sim::MachineProfile::mobile();
  const auto embedded = sim::MachineProfile::embedded();

  EXPECT_TRUE(server.cpu.speculative_execution);
  EXPECT_TRUE(server.cpu.meltdown_fault_forwarding);
  EXPECT_TRUE(mobile.cpu.speculative_execution);
  EXPECT_FALSE(mobile.cpu.meltdown_fault_forwarding) << "ARM-like cores gate forwarding";
  EXPECT_FALSE(embedded.cpu.speculative_execution);
  EXPECT_FALSE(embedded.hierarchy.has_llc);
  EXPECT_FALSE(embedded.has_mmu);
  // Energy budget ordering: server >> mobile >> embedded.
  EXPECT_GT(server.energy.per_instruction_nj, mobile.energy.per_instruction_nj);
  EXPECT_GT(mobile.energy.per_instruction_nj, embedded.energy.per_instruction_nj);
}

TEST(Machine, FrameAllocatorIsPageAlignedAndZeroed) {
  sim::Machine m(sim::MachineProfile::server(), 1);
  const sim::PhysAddr a = m.alloc_frame();
  const sim::PhysAddr b = m.alloc_frame();
  EXPECT_EQ(a % sim::kPageSize, 0u);
  EXPECT_EQ(b, a + sim::kPageSize);
  EXPECT_EQ(m.memory().read32(a), 0u);
}

TEST(Machine, AllocExhaustionThrows) {
  sim::MachineProfile p = sim::MachineProfile::embedded();  // 1 MiB.
  sim::Machine m(p, 1);
  EXPECT_THROW(
      {
        for (int i = 0; i < 10000; ++i) {
          m.alloc_frame();
        }
      },
      std::runtime_error);
}

TEST(Machine, ColoredFramesHaveRequestedColor) {
  sim::Machine m(sim::MachineProfile::server(), 1);
  for (std::uint32_t color = 0; color < 8; ++color) {
    const sim::PhysAddr f = m.alloc_frame_colored(color, 8);
    EXPECT_EQ(m.frame_color(f, 8), color);
  }
}

TEST(Machine, ColorPartitionsLlcSets) {
  sim::Machine m(sim::MachineProfile::server(), 1);
  const auto& llc = m.caches().llc();
  const sim::PhysAddr f_red = m.alloc_frame_colored(1, 8);
  const sim::PhysAddr f_blue = m.alloc_frame_colored(2, 8);
  // Every line of a color-1 frame maps to a different LLC set than every
  // line of a color-2 frame — the Sanctum invariant.
  for (sim::PhysAddr a = 0; a < sim::kPageSize; a += 64) {
    for (sim::PhysAddr b = 0; b < sim::kPageSize; b += 64) {
      ASSERT_NE(llc.set_index(f_red + a), llc.set_index(f_blue + b));
    }
  }
}

TEST(Machine, TouchPortDrivesCaches) {
  sim::Machine m(sim::MachineProfile::server(), 1);
  const sim::PhysAddr f = m.alloc_frame();
  const auto miss = m.touch(0, 0, f);
  const auto hit = m.touch(0, 0, f);
  EXPECT_GT(miss.latency, hit.latency);
  m.flush_line(f);
  EXPECT_GT(m.touch(0, 0, f).latency, hit.latency);
}

TEST(Machine, EnergyAndTimeAccumulateWithWork) {
  sim::Machine m(sim::MachineProfile::server(), 1);
  EXPECT_EQ(m.energy_nj(), 0.0);
  sim::ProgramBuilder b(0x2000);
  b.li(sim::R1, 1).li(sim::R2, 2).add(sim::R3, sim::R1, sim::R2).halt();
  sim::Program prog = b.build();
  m.cpu(0).mmu().set_bare_mode(true);
  m.cpu(0).load_program(prog);
  m.cpu(0).run_from(prog.base);
  EXPECT_GT(m.energy_nj(), 0.0);
  EXPECT_GT(m.elapsed_ns(), 0.0);
  EXPECT_EQ(m.total_retired(), 4u);
  m.reset_stats();
  EXPECT_EQ(m.total_retired(), 0u);
}

TEST(Machine, EmbeddedCoresAreBareModeWithMpu) {
  sim::Machine m(sim::MachineProfile::embedded(), 1);
  EXPECT_TRUE(m.cpu(0).mmu().bare_mode());
  EXPECT_EQ(m.num_cores(), 1u);
}

}  // namespace
