#include "sim/cpu.h"

#include <algorithm>
#include <cassert>

#include "sim/obs_hook.h"
#include "sim/sim_error.h"

namespace hwsec::sim {

#if defined(HWSEC_OBS_CPU)
CpuCommitHook g_cpu_commit_hook = nullptr;
#endif

Cpu::Cpu(CpuConfig config, Bus& bus)
    : config_(config),
      bus_(&bus),
      mmu_(bus.memory(), config.tlb),
      predictor_(config.predictor),
      backend_(dispatch_backend_from_env()) {}

void Cpu::load_program(const Program& program, std::optional<Asid> asid) {
  dirty_ = true;
  auto decoded = uop_cache_ != nullptr ? uop_cache_->get_or_decode(program)
                                       : decode_program(program);
  const VirtAddr base = decoded->base;
  const VirtAddr end = decoded->end;
  programs_.push_back(LoadedProgram{std::move(decoded), asid, base, end});
  fetch_valid_ = false;
}

void Cpu::clear_programs() {
  dirty_ = true;
  programs_.clear();
  fetch_valid_ = false;
}

void Cpu::rebuild_fetch_table() const {
  fetch_valid_ = true;
  fetch_asid_ = mmu_.asid();
  fetch_flat_ok_ = false;
  fetch_slots_.clear();
  fetch_lo_ = 0;

  VirtAddr lo = ~VirtAddr{0};
  VirtAddr hi = 0;
  bool any = false;
  for (const LoadedProgram& lp : programs_) {
    if (lp.asid.has_value() && *lp.asid != fetch_asid_) {
      continue;  // invisible under this ASID; excluded from the table.
    }
    if (lp.base % 4 != 0) {
      return;  // misaligned base breaks the shared slot grid: scan path.
    }
    any = true;
    lo = std::min(lo, lp.base);
    hi = std::max(hi, lp.end);
  }
  if (!any) {
    fetch_flat_ok_ = true;  // empty table; every lookup misses.
    return;
  }
  const std::uint64_t span = (static_cast<std::uint64_t>(hi) - lo) / 4;
  if (span > kMaxFetchSlots) {
    return;  // programs too far apart to index densely: scan path.
  }
  fetch_lo_ = lo;
  fetch_slots_.assign(static_cast<std::size_t>(span), kNoSlot);
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    const LoadedProgram& lp = programs_[i];
    if (lp.asid.has_value() && *lp.asid != fetch_asid_) {
      continue;
    }
    const std::size_t first = (lp.base - lo) / 4;
    for (std::size_t s = 0; s < lp.decoded->code.size(); ++s) {
      if (fetch_slots_[first + s] == kNoSlot) {
        fetch_slots_[first + s] = static_cast<std::uint32_t>(i);  // load order wins.
      }
    }
  }
  fetch_flat_ok_ = true;
}

const Instruction* Cpu::instruction_at(VirtAddr pc) const {
  if (!fetch_valid_ || fetch_asid_ != mmu_.asid()) {
    rebuild_fetch_table();
  }
  if (fetch_flat_ok_) {
    const VirtAddr off = pc - fetch_lo_;  // below-lo pcs wrap to huge offsets.
    if ((off & 3u) == 0 && (off >> 2) < fetch_slots_.size()) {
      const std::uint32_t p = fetch_slots_[off >> 2];
      if (p != kNoSlot) {
        const LoadedProgram& lp = programs_[p];
        return &lp.decoded->code[(pc - lp.base) / 4];
      }
    }
    return nullptr;
  }
  // Fallback: the original load-order scan (misaligned/spread-out programs).
  for (const LoadedProgram& lp : programs_) {
    if (pc < lp.base || pc >= lp.end) {
      continue;
    }
    if (lp.asid.has_value() && *lp.asid != mmu_.asid()) {
      continue;
    }
    if (const Instruction* inst = lp.decoded->at(pc)) {
      return inst;
    }
  }
  return nullptr;
}

void Cpu::switch_context(DomainId domain, Privilege priv, PhysAddr page_root, Asid asid) {
  dirty_ = true;
  mmu_.set_context(page_root, asid, domain, priv);
  predictor_.on_domain_switch();
  // No fetch-table invalidation: the table is a pure function of programs_
  // (load_program / clear_programs invalidate) and the active ASID, and
  // every consumer re-checks fetch_asid_ against mmu_.asid() before use —
  // so a context switch back to the same address space keeps the table.
}

void Cpu::leak_value(Word value) {
  if (has_leak_) {
    leak_(value);
  }
}

Word Cpu::alu_result(Word value) {
  if (injector_ != nullptr) {
    return injector_->corrupt(value);
  }
  return value;
}

void Cpu::note_service(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kL1: ++stats_.l1_hits; break;
    case ServiceLevel::kLlc: ++stats_.llc_hits; break;
    case ServiceLevel::kDram:
    case ServiceLevel::kUncached: ++stats_.dram_accesses; break;
  }
}

void Cpu::check_watchdog(std::uint64_t executed) const {
  if (watchdog_->cycle_budget != 0 && cycles_ >= watchdog_->cycle_budget) {
    throw SimError(ErrorKind::kTimedOut,
                   "cycle budget of " + std::to_string(watchdog_->cycle_budget) +
                       " exhausted at pc=" + std::to_string(pc_) + " after " +
                       std::to_string(cycles_) + " cycles");
  }
  // The cancel flag is asynchronous host state; poll it only every 1024
  // committed instructions to keep the commit loop cheap.
  if ((executed & 0x3FF) == 0 && watchdog_->cancel.load(std::memory_order_relaxed)) {
    throw SimError(ErrorKind::kTimedOut,
                   "wall-clock watchdog cancelled the trial at pc=" + std::to_string(pc_) +
                       " after " + std::to_string(cycles_) + " cycles");
  }
}

RunResult Cpu::run_switch(std::uint64_t max_instructions) {
  RunResult result;
  while (result.executed < max_instructions) {
    if (watchdog_ != nullptr) {
      check_watchdog(result.executed);
    }
    const StepOutcome outcome = step();
    ++result.executed;
    if (outcome.halt) {
      result.halted = true;
      break;
    }
    if (outcome.fault_stop) {
      result.stop_fault = outcome.fault;
      break;
    }
  }
  return result;
}

RunResult Cpu::run(std::uint64_t max_instructions) {
  dirty_ = true;
  RunResult result;
  // The MPU (prev_fetch_phys_-relative execute gates) and the glitch
  // injector thread through every committed value; both are rare,
  // embedded-profile features, so they keep the legacy interpreter rather
  // than a third micro-op specialization.
  if (backend_ == DispatchBackend::kSwitch || mpu_ != nullptr || injector_ != nullptr) {
    result = run_switch(max_instructions);
    HWSEC_OBS_CPU_COMMITTED(result.executed);
    return result;
  }
  bool force_step = false;
  while (result.executed < max_instructions) {
    if (force_step) {
      // One instruction through the generic interpreter: ecalls (whose
      // handlers may swap programs, hooks, or the whole context) and pcs
      // the flat fetch table cannot resolve. Afterwards re-evaluate which
      // micro-op specialization applies.
      force_step = false;
      if (watchdog_ != nullptr) {
        check_watchdog(result.executed);
      }
      const StepOutcome outcome = step();
      ++result.executed;
      if (outcome.halt) {
        result.halted = true;
        break;
      }
      if (outcome.fault_stop) {
        result.stop_fault = outcome.fault;
        break;
      }
      continue;
    }
    const bool hooked = has_leak_ || has_cf_hook_ || watchdog_ != nullptr;
    const UopExit exit = hooked ? run_uops<true>(result, max_instructions)
                                : run_uops<false>(result, max_instructions);
    if (exit == UopExit::kDone) {
      break;
    }
    force_step = exit == UopExit::kStep;
  }
  // Compile-time no-op unless HWSEC_OBS_CPU is ON: the commit loop's
  // instruction count is observable without a single instruction of cost
  // in the default build.
  HWSEC_OBS_CPU_COMMITTED(result.executed);
  return result;
}

RunResult Cpu::run_from(VirtAddr entry, std::uint64_t max_instructions) {
  pc_ = entry;
  return run(max_instructions);
}

Cpu::StepOutcome Cpu::raise(const FaultInfo& info) {
  ++stats_.faults_raised;
  if (!fault_handler_) {
    return {.halt = false, .fault_stop = true, .fault = info.fault};
  }
  switch (fault_handler_(*this, info)) {
    case FaultAction::kHalt:
      return {.halt = false, .fault_stop = true, .fault = info.fault};
    case FaultAction::kSkip:
      pc_ = info.pc + 4;
      return {};
    case FaultAction::kRedirect:
      return {};  // handler set pc_ itself.
  }
  return {};
}

std::optional<Word> Cpu::transient_fault_value(const TranslateResult& tr, VirtAddr va,
                                               bool byte_load) {
  std::optional<Word> word;
  if (tr.fault == Fault::kProtection && config_.meltdown_fault_forwarding) {
    // Meltdown: the permission check resolves too late; the physically
    // translated data is forwarded to dependents. A mitigated core
    // forwards zero, which we model as "nothing useful": we still forward,
    // but the zero carries no secret — callers get std::nullopt instead so
    // the transient window squashes immediately (observationally the
    // same: the probe array stays cold).
    word = bus_->peek(tr.phys & ~3u, mmu_.domain());
  } else if (tr.fault == Fault::kPageNotPresent && config_.l1tf_vulnerable &&
             tr.l1tf_phys.has_value()) {
    // Foreshadow / L1 terminal fault: only data already present in this
    // core's L1D is reachable, and it is reachable in plaintext because
    // the L1 sits inside the memory-encryption perimeter.
    if (bus_->caches().in_l1d(config_.id, *tr.l1tf_phys)) {
      word = bus_->peek(*tr.l1tf_phys & ~3u, mmu_.domain());
    }
  }
  if (!word.has_value()) {
    return std::nullopt;
  }
  if (byte_load) {
    return (*word >> (8 * (va & 3u))) & 0xFFu;
  }
  return word;
}

void Cpu::run_transient(VirtAddr start_pc, std::optional<Reg> seed_reg, Word seed_value) {
  if (!config_.speculative_execution) {
    return;
  }
  std::array<Word, kNumRegs> shadow = regs_;
  if (seed_reg.has_value() && *seed_reg != kZero) {
    shadow[*seed_reg] = seed_value;
  }
  auto sreg = [&shadow](Reg r) -> Word { return r == kZero ? 0 : shadow[r]; };
  auto set_sreg = [&shadow](Reg r, Word v) {
    if (r != kZero) {
      shadow[r] = v;
    }
  };

  VirtAddr tpc = start_pc;
  for (std::uint32_t i = 0; i < config_.speculation_window; ++i) {
    const TranslateResult ftr = mmu_.translate(tpc, AccessType::kExecute);
    if (ftr.fault != Fault::kNone) {
      break;
    }
    const BusResult fetch = bus_->cpu_fetch(config_.id, mmu_.domain(), mmu_.privilege(), ftr.phys);
    if (fetch.fault != Fault::kNone) {
      break;
    }
    const Instruction* inst = instruction_at(tpc);
    if (inst == nullptr) {
      break;
    }
    ++stats_.transient_executed;
    VirtAddr next = tpc + 4;
    bool stop = false;
    switch (inst->op) {
      case Opcode::kNop:
        break;
      case Opcode::kLoadImm:
        set_sreg(inst->rd, static_cast<Word>(inst->imm));
        break;
      case Opcode::kAdd: set_sreg(inst->rd, sreg(inst->rs1) + sreg(inst->rs2)); break;
      case Opcode::kSub: set_sreg(inst->rd, sreg(inst->rs1) - sreg(inst->rs2)); break;
      case Opcode::kAnd: set_sreg(inst->rd, sreg(inst->rs1) & sreg(inst->rs2)); break;
      case Opcode::kOr: set_sreg(inst->rd, sreg(inst->rs1) | sreg(inst->rs2)); break;
      case Opcode::kXor: set_sreg(inst->rd, sreg(inst->rs1) ^ sreg(inst->rs2)); break;
      case Opcode::kShl: set_sreg(inst->rd, sreg(inst->rs1) << (sreg(inst->rs2) & 31u)); break;
      case Opcode::kShr: set_sreg(inst->rd, sreg(inst->rs1) >> (sreg(inst->rs2) & 31u)); break;
      case Opcode::kMul: set_sreg(inst->rd, sreg(inst->rs1) * sreg(inst->rs2)); break;
      case Opcode::kAddImm:
        set_sreg(inst->rd, sreg(inst->rs1) + static_cast<Word>(inst->imm));
        break;
      case Opcode::kAndImm:
        set_sreg(inst->rd, sreg(inst->rs1) & static_cast<Word>(inst->imm));
        break;
      case Opcode::kXorImm:
        set_sreg(inst->rd, sreg(inst->rs1) ^ static_cast<Word>(inst->imm));
        break;
      case Opcode::kShlImm:
        set_sreg(inst->rd, sreg(inst->rs1) << (static_cast<Word>(inst->imm) & 31u));
        break;
      case Opcode::kShrImm:
        set_sreg(inst->rd, sreg(inst->rs1) >> (static_cast<Word>(inst->imm) & 31u));
        break;
      case Opcode::kLoad:
      case Opcode::kLoadByte: {
        const bool byte_load = inst->op == Opcode::kLoadByte;
        const VirtAddr va = sreg(inst->rs1) + static_cast<Word>(inst->imm);
        if (!byte_load && (va & 3u)) {
          stop = true;
          break;
        }
        const TranslateResult tr = mmu_.translate(va, AccessType::kRead);
        if (tr.fault != Fault::kNone) {
          // Exception suppression: no architectural fault from a transient
          // load — but fault-forwarding silicon still forwards the data.
          ++stats_.faults_suppressed;
          const auto forwarded = transient_fault_value(tr, va, byte_load);
          if (!forwarded.has_value()) {
            stop = true;
            break;
          }
          set_sreg(inst->rd, *forwarded);
          break;
        }
        // Regular transient load: the cache fill is the persistent side
        // effect every Spectre variant relies on.
        const BusResult br = byte_load
            ? bus_->cpu_read8(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys)
            : bus_->cpu_read(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys);
        if (br.fault != Fault::kNone) {
          stop = true;
          break;
        }
        set_sreg(inst->rd, br.value);
        break;
      }
      case Opcode::kStore:
      case Opcode::kStoreByte:
        // Transient stores stay in the store buffer and are squashed;
        // no memory or cache side effect in this model.
        break;
      case Opcode::kBranch: {
        const Word a = sreg(inst->rs1);
        const Word b = sreg(inst->rs2);
        bool taken = false;
        switch (inst->cond) {
          case BranchCond::kEq: taken = a == b; break;
          case BranchCond::kNe: taken = a != b; break;
          case BranchCond::kLt: taken = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b); break;
          case BranchCond::kGe: taken = static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b); break;
          case BranchCond::kLtu: taken = a < b; break;
          case BranchCond::kGeu: taken = a >= b; break;
        }
        if (taken) {
          next = static_cast<VirtAddr>(inst->imm);
        }
        break;
      }
      case Opcode::kJump: next = static_cast<VirtAddr>(inst->imm); break;
      case Opcode::kJumpInd: next = sreg(inst->rs1); break;
      case Opcode::kCall:
        set_sreg(kLink, tpc + 4);
        next = static_cast<VirtAddr>(inst->imm);
        break;
      case Opcode::kCallInd:
        set_sreg(kLink, tpc + 4);
        next = sreg(inst->rs1);
        break;
      case Opcode::kRet: next = sreg(kLink); break;
      case Opcode::kRdCycle:
        set_sreg(inst->rd, static_cast<Word>(cycles_));
        break;
      case Opcode::kClflush:
        // A transient CLFLUSH never retires; treated as a no-op.
        break;
      case Opcode::kFence:
      case Opcode::kEcall:
      case Opcode::kHalt:
        stop = true;
        break;
    }
    if (stop) {
      break;
    }
    tpc = next;
  }
}

Cpu::StepOutcome Cpu::step() {
  const VirtAddr pc = pc_;

  // ---- fetch ------------------------------------------------------------
  const TranslateResult ftr = mmu_.translate(pc, AccessType::kExecute);
  cycles_ += ftr.latency;
  if (ftr.fault != Fault::kNone) {
    return raise({.fault = ftr.fault, .pc = pc, .addr = pc, .type = AccessType::kExecute});
  }
  if (mpu_ != nullptr) {
    const Fault f = mpu_->check_fetch(ftr.phys, prev_fetch_phys_);
    if (f != Fault::kNone) {
      return raise({.fault = f, .pc = pc, .addr = pc, .type = AccessType::kExecute});
    }
  }
  const BusResult fetch = bus_->cpu_fetch(config_.id, mmu_.domain(), mmu_.privilege(), ftr.phys);
  cycles_ += fetch.latency;
  if (fetch.fault != Fault::kNone) {
    return raise({.fault = fetch.fault, .pc = pc, .addr = pc, .type = AccessType::kExecute});
  }
  const Instruction* inst = instruction_at(pc);
  if (inst == nullptr) {
    return raise({.fault = Fault::kBusError, .pc = pc, .addr = pc, .type = AccessType::kExecute});
  }
  prev_fetch_phys_ = ftr.phys;
  ++stats_.retired;

  VirtAddr next_pc = pc + 4;
  StepOutcome outcome;

  auto commit_alu = [&](Reg rd, Word value) {
    const Word v = alu_result(value);
    set_reg(rd, v);
    leak_value(v);
    cycles_ += config_.alu_latency;
  };

  switch (inst->op) {
    case Opcode::kNop:
      cycles_ += config_.alu_latency;
      break;
    case Opcode::kHalt:
      outcome.halt = true;
      return outcome;
    case Opcode::kLoadImm: commit_alu(inst->rd, static_cast<Word>(inst->imm)); break;
    case Opcode::kAdd: commit_alu(inst->rd, reg(inst->rs1) + reg(inst->rs2)); break;
    case Opcode::kSub: commit_alu(inst->rd, reg(inst->rs1) - reg(inst->rs2)); break;
    case Opcode::kAnd: commit_alu(inst->rd, reg(inst->rs1) & reg(inst->rs2)); break;
    case Opcode::kOr: commit_alu(inst->rd, reg(inst->rs1) | reg(inst->rs2)); break;
    case Opcode::kXor: commit_alu(inst->rd, reg(inst->rs1) ^ reg(inst->rs2)); break;
    case Opcode::kShl: commit_alu(inst->rd, reg(inst->rs1) << (reg(inst->rs2) & 31u)); break;
    case Opcode::kShr: commit_alu(inst->rd, reg(inst->rs1) >> (reg(inst->rs2) & 31u)); break;
    case Opcode::kMul: commit_alu(inst->rd, reg(inst->rs1) * reg(inst->rs2)); break;
    case Opcode::kAddImm: commit_alu(inst->rd, reg(inst->rs1) + static_cast<Word>(inst->imm)); break;
    case Opcode::kAndImm: commit_alu(inst->rd, reg(inst->rs1) & static_cast<Word>(inst->imm)); break;
    case Opcode::kXorImm: commit_alu(inst->rd, reg(inst->rs1) ^ static_cast<Word>(inst->imm)); break;
    case Opcode::kShlImm:
      commit_alu(inst->rd, reg(inst->rs1) << (static_cast<Word>(inst->imm) & 31u));
      break;
    case Opcode::kShrImm:
      commit_alu(inst->rd, reg(inst->rs1) >> (static_cast<Word>(inst->imm) & 31u));
      break;

    case Opcode::kLoad:
    case Opcode::kLoadByte: {
      const bool byte_load = inst->op == Opcode::kLoadByte;
      const VirtAddr va = reg(inst->rs1) + static_cast<Word>(inst->imm);
      if (!byte_load && (va & 3u)) {
        return raise({.fault = Fault::kAlignment, .pc = pc, .addr = va, .type = AccessType::kRead});
      }
      const TranslateResult tr = mmu_.translate(va, AccessType::kRead);
      cycles_ += tr.latency;
      if (tr.fault != Fault::kNone) {
        // Meltdown / L1TF: dependents execute transiently with the
        // forwarded value before the exception is raised at retirement.
        if (config_.speculative_execution) {
          if (const auto forwarded = transient_fault_value(tr, va, byte_load)) {
            run_transient(pc + 4, inst->rd, *forwarded);
          }
        }
        return raise({.fault = tr.fault, .pc = pc, .addr = va, .type = AccessType::kRead});
      }
      if (mpu_ != nullptr) {
        const Fault f = mpu_->check(tr.phys, AccessType::kRead, prev_fetch_phys_);
        if (f != Fault::kNone) {
          return raise({.fault = f, .pc = pc, .addr = va, .type = AccessType::kRead});
        }
      }
      const BusResult br = byte_load
          ? bus_->cpu_read8(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys)
          : bus_->cpu_read(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys);
      cycles_ += br.latency;
      if (br.fault != Fault::kNone) {
        return raise({.fault = br.fault, .pc = pc, .addr = va, .type = AccessType::kRead});
      }
      ++stats_.loads;
      note_service(br.level);
      set_reg(inst->rd, br.value);
      leak_value(br.value);
      break;
    }

    case Opcode::kStore:
    case Opcode::kStoreByte: {
      const bool byte_store = inst->op == Opcode::kStoreByte;
      const VirtAddr va = reg(inst->rs1) + static_cast<Word>(inst->imm);
      if (!byte_store && (va & 3u)) {
        return raise(
            {.fault = Fault::kAlignment, .pc = pc, .addr = va, .type = AccessType::kWrite});
      }
      const TranslateResult tr = mmu_.translate(va, AccessType::kWrite);
      cycles_ += tr.latency;
      if (tr.fault != Fault::kNone) {
        return raise({.fault = tr.fault, .pc = pc, .addr = va, .type = AccessType::kWrite});
      }
      if (mpu_ != nullptr) {
        const Fault f = mpu_->check(tr.phys, AccessType::kWrite, prev_fetch_phys_);
        if (f != Fault::kNone) {
          return raise({.fault = f, .pc = pc, .addr = va, .type = AccessType::kWrite});
        }
      }
      const Word value = reg(inst->rs2);
      const BusResult br = byte_store
          ? bus_->cpu_write8(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys,
                             static_cast<std::uint8_t>(value))
          : bus_->cpu_write(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys, value);
      cycles_ += br.latency;
      if (br.fault != Fault::kNone) {
        return raise({.fault = br.fault, .pc = pc, .addr = va, .type = AccessType::kWrite});
      }
      ++stats_.stores;
      note_service(br.level);
      leak_value(value);
      break;
    }

    case Opcode::kBranch: {
      const Word a = reg(inst->rs1);
      const Word b = reg(inst->rs2);
      bool taken = false;
      switch (inst->cond) {
        case BranchCond::kEq: taken = a == b; break;
        case BranchCond::kNe: taken = a != b; break;
        case BranchCond::kLt:
          taken = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
          break;
        case BranchCond::kGe:
          taken = static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
          break;
        case BranchCond::kLtu: taken = a < b; break;
        case BranchCond::kGeu: taken = a >= b; break;
      }
      const VirtAddr target = static_cast<VirtAddr>(inst->imm);
      cycles_ += config_.alu_latency;
      if (config_.speculative_execution) {
        const bool predicted = predictor_.pht().predict(pc);
        if (predicted != taken) {
          ++stats_.branch_mispredicts;
          run_transient(predicted ? target : pc + 4, std::nullopt, 0);
          cycles_ += config_.mispredict_penalty;
        }
      }
      predictor_.pht().update(pc, taken);
      next_pc = taken ? target : pc + 4;
      break;
    }

    case Opcode::kJump:
      cycles_ += config_.alu_latency;
      next_pc = static_cast<VirtAddr>(inst->imm);
      break;

    case Opcode::kJumpInd:
    case Opcode::kCallInd: {
      const VirtAddr actual = reg(inst->rs1);
      cycles_ += config_.alu_latency;
      if (config_.speculative_execution) {
        if (const auto predicted = predictor_.btb().predict(pc);
            predicted.has_value() && *predicted != actual) {
          ++stats_.indirect_mispredicts;
          run_transient(*predicted, std::nullopt, 0);
          cycles_ += config_.mispredict_penalty;
        }
      }
      predictor_.btb().update(pc, actual);
      if (inst->op == Opcode::kCallInd) {
        set_reg(kLink, pc + 4);
        predictor_.rsb().push(pc + 4);
      }
      next_pc = actual;
      break;
    }

    case Opcode::kCall:
      cycles_ += config_.alu_latency;
      set_reg(kLink, pc + 4);
      predictor_.rsb().push(pc + 4);
      next_pc = static_cast<VirtAddr>(inst->imm);
      break;

    case Opcode::kRet: {
      const VirtAddr actual = reg(kLink);
      cycles_ += config_.alu_latency;
      if (config_.speculative_execution) {
        if (const auto predicted = predictor_.rsb().pop();
            predicted.has_value() && *predicted != actual) {
          ++stats_.return_mispredicts;
          run_transient(*predicted, std::nullopt, 0);
          cycles_ += config_.mispredict_penalty;
        }
      } else {
        predictor_.rsb().pop();
      }
      next_pc = actual;
      break;
    }

    case Opcode::kFence:
      cycles_ += 3;
      break;

    case Opcode::kClflush: {
      const VirtAddr va = reg(inst->rs1) + static_cast<Word>(inst->imm);
      const TranslateResult tr = mmu_.translate(va, AccessType::kRead);
      cycles_ += tr.latency;
      if (tr.fault != Fault::kNone) {
        return raise({.fault = tr.fault, .pc = pc, .addr = va, .type = AccessType::kRead});
      }
      bus_->caches().flush_line(tr.phys);
      cycles_ += 10;
      break;
    }

    case Opcode::kRdCycle:
      set_reg(inst->rd, static_cast<Word>(cycles_));
      cycles_ += config_.alu_latency;
      break;

    case Opcode::kEcall: {
      cycles_ += 20;  // trap entry cost.
      pc_ = pc + 4;
      if (!ecall_) {
        outcome.halt = true;
        return outcome;
      }
      ecall_(*this, static_cast<Word>(inst->imm));
      return outcome;  // handler controls pc_ from here.
    }
  }

  if (has_cf_hook_ && is_control_flow(inst->op) && inst->op != Opcode::kHalt) {
    cf_hook_(pc, next_pc);
  }
  pc_ = next_pc;
  return outcome;
}

}  // namespace hwsec::sim
