// Single-pass streaming accumulators for side-channel statistics.
//
// The materialized engines (sca/cpa.h, sca/stats.h, sca/second_order.h)
// need the whole trace matrix in RAM, so campaign size is capped by memory
// long before compute. Each accumulator here ingests traces one batch at a
// time — O(points) state, independent of trace count — and produces the
// same statistics the materialized engines compute over the full matrix:
// identical key-byte ranking, values within ~1e-12 relative (the
// acceptance bound is 1e-9; see the StreamingEquivalence tests).
//
// Numerics (PR 4's DC-shift rewrite, made incremental): every per-point
// running sum is accumulated relative to a *shift* taken from the first
// trace the accumulator sees at that point, so a large DC baseline (supply
// power + noise floor, the adversarial 1e9-offset fixtures) cancels before
// it can swamp the mantissa; whole-campaign per-point sums are additionally
// Kahan-compensated. Per-class sums skip Kahan: each class receives ~n/256
// additions of already-shifted O(signal) values, so the plain-sum error is
// orders below the 1e-9 bound (measured in the equivalence suite).
//
// merge(): partial accumulators from different workers combine by exact
// shift-rebasing algebra (binomial expansion of the shifted moments onto
// the receiver's shift basis). Determinism contract: merging the same
// partials in the same order is bit-deterministic; the campaign drivers
// always merge in batch-index order, so a W-worker reduction is a pure
// function of the batch partition, never of scheduling. Associativity
// holds exactly in real arithmetic and to rounding in doubles (asserted
// at 1e-9 with 1/2/8-way splits in the tests).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sca/cpa.h"
#include "sca/trace.h"

namespace hwsec::sca {

namespace detail {

/// Kahan-compensated running sum (same scheme as sca/stats.cpp, exposed
/// here because the streaming state must persist it across batches).
struct KahanAcc {
  double sum = 0.0;
  double comp = 0.0;

  void add(double value) {
    const double y = value - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  /// Folds another compensated sum in without losing its residual.
  void add(const KahanAcc& other) {
    add(other.sum);
    add(-other.comp);
  }
};

}  // namespace detail

/// Per-point first/second moments of one trace population, online.
/// Backs the streaming Welch-t, SNR and DoM computations.
class PopulationAccumulator {
 public:
  PopulationAccumulator() = default;
  explicit PopulationAccumulator(std::size_t points);

  void add(std::span<const double> samples);
  /// Folds `other` in (shift-rebased onto this accumulator's basis).
  void merge(const PopulationAccumulator& other);

  std::size_t traces() const { return n_; }
  std::size_t points() const { return shift_.size(); }
  double mean(std::size_t p) const;
  /// Unbiased (n-1) variance; 0 for n < 2.
  double variance(std::size_t p) const;

 private:
  std::size_t n_ = 0;
  std::vector<double> shift_;           ///< first trace's samples (DC anchor).
  std::vector<detail::KahanAcc> s1_;    ///< Σ (x - shift).
  std::vector<detail::KahanAcc> s2_;    ///< Σ (x - shift)².
};

/// Welch's t over two streamed populations; also yields the
/// difference-of-means statistic (classic single-bit DPA distinguisher).
class StreamingWelchT {
 public:
  StreamingWelchT() = default;
  explicit StreamingWelchT(std::size_t points)
      : populations_{PopulationAccumulator(points), PopulationAccumulator(points)} {}

  void add(std::size_t population, std::span<const double> samples) {
    populations_.at(population).add(samples);
  }
  void merge(const StreamingWelchT& other) {
    populations_[0].merge(other.populations_[0]);
    populations_[1].merge(other.populations_[1]);
  }

  const PopulationAccumulator& population(std::size_t i) const { return populations_.at(i); }

  /// max over points of |t|; the TVLA detection statistic.
  double max_t() const;
  /// max over points of |mean_a - mean_b| (DoM).
  double max_dom() const;

 private:
  std::array<PopulationAccumulator, 2> populations_{};
};

/// Streaming SNR across K leakage classes: Var_classes(mean) /
/// mean_classes(Var), maximized over points (same estimator as
/// sca::max_snr).
class StreamingSnr {
 public:
  StreamingSnr() = default;
  StreamingSnr(std::size_t classes, std::size_t points);

  void add(std::size_t cls, std::span<const double> samples) {
    classes_.at(cls).add(samples);
  }
  void merge(const StreamingSnr& other);

  double max_snr() const;

 private:
  std::vector<PopulationAccumulator> classes_;
};

/// Streaming first-order CPA over all 16 key bytes (plus the single-bit
/// DPA distinguisher, which needs the same class sums).
///
/// State is the class-sum reduction the materialized engine already uses:
/// the Hamming-weight hypothesis depends on a trace only through one
/// plaintext byte, so per byte index it suffices to hold per-point trace
/// sums for each of the 256 plaintext-byte classes, plus whole-campaign
/// per-point Σx and Σx². ~ (16·256 + 2) · points doubles — 5.4 MiB for AES
/// traces, independent of trace count.
class StreamingCpa {
 public:
  StreamingCpa() = default;
  explicit StreamingCpa(std::size_t points);

  void add(std::span<const double> samples, const std::array<std::uint8_t, 16>& plaintext);
  void add_batch(const TraceSet& batch);
  void merge(const StreamingCpa& other);

  std::size_t traces() const { return n_; }
  std::size_t points() const { return points_; }

  /// CPA distinguisher for one key byte — same scores as
  /// sca::cpa_attack_byte over the ingested traces.
  ByteAttackResult finalize_byte(std::size_t byte_index) const;
  /// All 16 bytes (parallel over the shared pool, deterministic).
  KeyAttackResult finalize_key() const;

  /// Single-bit DPA (difference of means on S-box output bit `bit`) —
  /// same scores as sca::dpa_attack_byte.
  ByteAttackResult finalize_dpa_byte(std::size_t byte_index, std::uint32_t bit = 0) const;
  KeyAttackResult finalize_dpa_key(std::uint32_t bit = 0) const;

 private:
  friend class StreamingSecondOrderCpa;

  std::size_t points_ = 0;
  std::size_t n_ = 0;
  std::vector<double> shift_;                       ///< per-point DC anchor.
  std::vector<detail::KahanAcc> sum_x_;             ///< Σ X, X = x - shift.
  std::vector<detail::KahanAcc> sum_xx_;            ///< Σ X².
  std::vector<double> class_sums_;                  ///< [byte][value][point] Σ X.
  std::array<std::array<std::uint32_t, 256>, 16> class_counts_{};

  double* class_row(std::size_t byte, std::size_t value) {
    return &class_sums_[(byte * 256 + value) * points_];
  }
  const double* class_row(std::size_t byte, std::size_t value) const {
    return &class_sums_[(byte * 256 + value) * points_];
  }
};

/// Streaming centered-product second-order CPA against first-order
/// masking: one pass accumulates the joint moments of the mask-load sample
/// Y with every point X (up to Σ Y²X², shifted + compensated), from which
/// finalize() reconstructs exactly the statistics the materialized path
/// gets from building centered-product combined traces and running CPA on
/// them. State ~ (2·16·256 + 6) · points doubles (~11 MiB for AES traces).
class StreamingSecondOrderCpa {
 public:
  StreamingSecondOrderCpa() = default;
  StreamingSecondOrderCpa(std::size_t points, std::size_t mask_sample);

  void add(std::span<const double> samples, const std::array<std::uint8_t, 16>& plaintext);
  void add_batch(const TraceSet& batch);
  void merge(const StreamingSecondOrderCpa& other);

  std::size_t traces() const { return n_; }
  std::size_t mask_sample() const { return mask_sample_; }

  ByteAttackResult finalize_byte(std::size_t byte_index) const;
  KeyAttackResult finalize_key() const;

 private:
  std::size_t points_ = 0;
  std::size_t mask_sample_ = 0;
  std::size_t n_ = 0;
  double shift_y_ = 0.0;                 ///< mask-sample DC anchor.
  std::vector<double> shift_;            ///< per-point DC anchor.
  // Whole-campaign per-point moments (X = x_p - shift_p, Y = x_mask - shift_y).
  std::vector<detail::KahanAcc> a1_;     ///< Σ X
  std::vector<detail::KahanAcc> a2_;     ///< Σ X²
  std::vector<detail::KahanAcc> b11_;    ///< Σ YX
  std::vector<detail::KahanAcc> b21_;    ///< Σ Y²X
  std::vector<detail::KahanAcc> b12_;    ///< Σ YX²
  std::vector<detail::KahanAcc> b22_;    ///< Σ Y²X²
  detail::KahanAcc c1_;                  ///< Σ Y
  detail::KahanAcc c2_;                  ///< Σ Y²
  // Per-byte per-class sums (plain; see file comment for the error budget).
  std::vector<double> class_yx_;         ///< [byte][value][point] Σ YX.
  std::vector<double> class_x_;          ///< [byte][value][point] Σ X.
  std::vector<double> class_y_;          ///< [byte][value] Σ Y.
  std::array<std::array<std::uint32_t, 256>, 16> class_counts_{};

  std::size_t class_base(std::size_t byte, std::size_t value) const {
    return (byte * 256 + value) * points_;
  }
};

}  // namespace hwsec::sca
