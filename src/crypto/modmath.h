// Modular arithmetic over 64-bit moduli, including Montgomery
// multiplication with observable extra reductions.
//
// The RSA in this framework is deliberately "toy-sized" (64-bit modulus,
// 32-bit primes): the attacks reproduced from the paper's Section 5 —
// Kocher's timing attack ([23]) and the Boneh–DeMillo–Lipton CRT fault
// attack ([5]) — depend on the *structure* of the computation (conditional
// final subtraction in Montgomery reduction; CRT recombination of an
// intact and a faulted half), not on the operand width. A 64-bit modulus
// exercises the identical code paths at experiment-friendly speed. This is
// documented as a substitution in DESIGN.md.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/rng.h"

namespace hwsec::crypto {

using u64 = std::uint64_t;
// __extension__ keeps -Wpedantic quiet: __int128 is a GCC/Clang extension,
// which this library deliberately requires (see CMake's compiler checks).
__extension__ typedef unsigned __int128 u128;
__extension__ typedef __int128 i128;

/// (a * b) mod n without overflow.
constexpr u64 mulmod(u64 a, u64 b, u64 n) {
  return static_cast<u64>((static_cast<u128>(a) * b) % n);
}

/// (base ^ exp) mod n, plain square-and-multiply (not side-channel safe;
/// fine for verification-side math).
u64 powmod(u64 base, u64 exp, u64 n);

u64 gcd(u64 a, u64 b);

/// Modular inverse of a mod n (n need not be prime); nullopt if gcd != 1.
std::optional<u64> invmod(u64 a, u64 n);

/// Deterministic Miller–Rabin, valid for all 64-bit inputs.
bool is_prime(u64 n);

/// Uniform random prime with exactly `bits` bits (2 <= bits <= 62).
u64 gen_prime(std::uint32_t bits, hwsec::sim::Rng& rng);

/// Montgomery arithmetic mod an odd 64-bit modulus, R = 2^64.
///
/// mul() reports whether the *extra reduction* (the conditional final
/// subtraction) fired. That single data-dependent event is the leakage
/// the Kocher/Dhem timing attack consumes — and exactly what a
/// constant-time implementation (always-subtract-and-select) removes.
class Montgomery {
 public:
  explicit Montgomery(u64 modulus);

  u64 modulus() const { return n_; }

  /// Converts into / out of the Montgomery domain.
  u64 to_mont(u64 x) const;
  u64 from_mont(u64 x) const;

  /// Montgomery product; sets *extra_reduction when the final conditional
  /// subtraction was needed (pass nullptr if uninterested).
  u64 mul(u64 a_mont, u64 b_mont, bool* extra_reduction = nullptr) const;

  /// Constant-time variant: performs the subtraction unconditionally and
  /// selects the result with a mask. No observable reduction event.
  u64 mul_ct(u64 a_mont, u64 b_mont) const;

  u64 one() const { return r_mod_n_; }

 private:
  u64 reduce(u128 t, bool* extra_reduction) const;

  u64 n_;
  u64 n_prime_;   ///< -n^{-1} mod 2^64.
  u64 r_mod_n_;   ///< R mod n (Montgomery representation of 1).
  u64 r2_mod_n_;  ///< R² mod n (for to_mont).
};

}  // namespace hwsec::crypto
