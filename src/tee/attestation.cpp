#include "tee/attestation.h"

namespace hwsec::tee {

namespace {

std::vector<std::uint8_t> report_body(const AttestationReport& report) {
  std::vector<std::uint8_t> body;
  body.insert(body.end(), report.measurement.begin(), report.measurement.end());
  body.insert(body.end(), report.nonce.begin(), report.nonce.end());
  body.insert(body.end(), report.user_data.begin(), report.user_data.end());
  return body;
}

}  // namespace

AttestationReport make_report(std::span<const std::uint8_t> platform_key,
                              const hwsec::crypto::Sha256Digest& measurement, const Nonce& nonce,
                              std::vector<std::uint8_t> user_data) {
  AttestationReport report;
  report.measurement = measurement;
  report.nonce = nonce;
  report.user_data = std::move(user_data);
  report.mac = hwsec::crypto::hmac_sha256(platform_key, report_body(report));
  return report;
}

bool verify_report(std::span<const std::uint8_t> platform_key, const AttestationReport& report,
                   const Nonce& expected_nonce) {
  if (report.nonce != expected_nonce) {
    return false;
  }
  const auto expected = hwsec::crypto::hmac_sha256(platform_key, report_body(report));
  return hwsec::crypto::digest_equal(expected, report.mac);
}

hwsec::crypto::Sha256Digest report_digest(const AttestationReport& report) {
  hwsec::crypto::Sha256 h;
  h.update(report_body(report));
  h.update(report.mac);
  return h.finalize();
}

namespace {

/// Folds a digest into the RSA message space (toy modulus: see modmath.h).
hwsec::crypto::u64 digest_to_message(const hwsec::crypto::Sha256Digest& d,
                                     hwsec::crypto::u64 n) {
  hwsec::crypto::u64 m = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    m = (m << 8) | d[i];
  }
  return m % n;
}

}  // namespace

Quote make_quote(const AttestationReport& report,
                 const hwsec::crypto::RsaKeyPair& attestation_key) {
  Quote q;
  q.report = report;
  const auto digest = report_digest(report);
  q.signature = hwsec::crypto::rsa_sign_crt(digest_to_message(digest, attestation_key.n),
                                            attestation_key);
  return q;
}

bool verify_quote(const Quote& quote, hwsec::crypto::u64 n, hwsec::crypto::u64 e,
                  std::span<const std::uint8_t> platform_key, const Nonce& expected_nonce) {
  if (!verify_report(platform_key, quote.report, expected_nonce)) {
    return false;
  }
  const auto digest = report_digest(quote.report);
  return hwsec::crypto::powmod(quote.signature, e, n) == digest_to_message(digest, n);
}

}  // namespace hwsec::tee
