#include "core/service/catalog.h"

#include <chrono>
#include <thread>

#include "attacks/transient/spectre.h"
#include "core/machine_pool.h"
#include "core/shard/net.h"
#include "core/shard/supervisor.h"
#include "core/service/spec.h"
#include "sim/machine.h"

namespace hwsec::core::service {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

ServiceTrialResult mix_trial(const TrialContext& ctx, std::uint64_t delay_us) {
  if (delay_us != 0) {
    // Pacing only: wall time stretches, the result below depends on
    // nothing but the trial seed.
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  ServiceTrialResult r;
  r.lo = splitmix64(ctx.seed);
  r.hi = splitmix64(r.lo ^ 0xA5A5A5A55A5A5A5Aull);
  return r;
}

ServiceTrialResult spectre_trial(const TrialContext& ctx) {
  auto machine_lease =
      acquire_machine(ctx.machines, sim::MachineProfile::mobile(), ctx.seed);
  hwsec::attacks::SpectreV1 spectre(*machine_lease, 0);
  const sim::Word index = spectre.plant_secret("K");
  const auto byte = spectre.leak_byte(index);
  ServiceTrialResult r;
  r.lo = byte.has_value() && *byte == 'K' ? 1 : 0;
  r.hi = byte.value_or(0xFFFF);
  return r;
}

}  // namespace

std::vector<std::string> catalog_kinds() { return {"mix", "spectre_leak"}; }

bool known_kind(const std::string& kind) {
  for (const auto& k : catalog_kinds()) {
    if (k == kind) {
      return true;
    }
  }
  return false;
}

std::function<ServiceTrialResult(const TrialContext&)> make_trial_body(
    const CampaignSpec& spec) {
  if (spec.kind == "mix") {
    const std::uint64_t delay_us = spec.trial_delay_us;
    return [delay_us](const TrialContext& ctx) { return mix_trial(ctx, delay_us); };
  }
  if (spec.kind == "spectre_leak") {
    const std::uint64_t delay_us = spec.trial_delay_us;
    return [delay_us](const TrialContext& ctx) {
      if (delay_us != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      }
      return spectre_trial(ctx);
    };
  }
  throw SimError(ErrorKind::kConfigError,
                 "unknown campaign kind \"" + spec.kind + "\" (known: mix, spectre_leak)");
}

ServiceOutcomes run_spec(const CampaignSpec& spec, ResilienceConfig res,
                         const std::function<void()>& on_trial) {
  std::function<ServiceTrialResult(const TrialContext&)> body = make_trial_body(spec);
  CampaignConfig config;
  config.seed = spec.seed;
  config.trials = static_cast<std::size_t>(spec.trials);
  config.workers = spec.workers;
  res.policy = spec.policy;
  res.max_attempts = spec.max_attempts;
  res.trial_cycle_budget = spec.trial_cycle_budget;

  // Host discovery: the spec's host list wins; with none listed, the
  // HWSEC_SHARD_HOSTS environment (comma-separated host:port) applies.
  // Either routes the campaign through the sharded supervisor — remote
  // workers are just more shard workers, and the outcome vector stays
  // bit-identical to the local run.
  std::vector<shard::HostSpec> hosts;
  if (!spec.hosts.empty()) {
    for (const auto& element : spec.hosts) {
      shard::HostSpec parsed;
      std::string error;
      if (!shard::parse_host(element, parsed, error)) {
        throw SimError(ErrorKind::kConfigError, "spec hosts: " + error);
      }
      hosts.push_back(parsed);
    }
  } else {
    std::string error;
    hosts = shard::hosts_from_env(error);
    if (!error.empty()) {
      throw SimError(ErrorKind::kConfigError, error);
    }
  }

  if (spec.processes == 0 && hosts.empty()) {
    if (on_trial) {
      body = [inner = std::move(body), &on_trial](const TrialContext& ctx) {
        const ServiceTrialResult r = inner(ctx);
        on_trial();
        return r;
      };
    }
    return run_campaign_resilient<ServiceTrialResult>(config, res, body);
  }
  shard::ShardConfig shard_cfg;
  shard_cfg.processes = spec.processes;
  shard_cfg.hosts = std::move(hosts);
  if (!shard_cfg.hosts.empty()) {
    // The spec is the campaign identity the handshake pins: remote workers
    // verify fnv1a64(spec_json) before accepting a single assignment.
    shard_cfg.remote_spec_json = encode_spec(spec);
  }
  return shard::run_campaign_sharded<ServiceTrialResult>(config, res, shard_cfg, body);
}

}  // namespace hwsec::core::service
