// Attestation primitives: reports (symmetric, HMAC-based local/embedded
// attestation as in SMART/Sancus/TrustLite and SGX local reports) and
// quotes (asymmetric remote attestation as in SGX's quoting enclave).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace hwsec::tee {

using Nonce = std::array<std::uint8_t, 16>;

/// A symmetric attestation report: MAC over (measurement, nonce, user
/// data) with a platform key that only the trusted component can read.
struct AttestationReport {
  hwsec::crypto::Sha256Digest measurement{};
  Nonce nonce{};
  std::vector<std::uint8_t> user_data;
  hwsec::crypto::Sha256Digest mac{};
};

/// Computes the report MAC with `platform_key`.
AttestationReport make_report(std::span<const std::uint8_t> platform_key,
                              const hwsec::crypto::Sha256Digest& measurement, const Nonce& nonce,
                              std::vector<std::uint8_t> user_data = {});

/// Verifies MAC and nonce freshness (caller supplies the expected nonce).
bool verify_report(std::span<const std::uint8_t> platform_key, const AttestationReport& report,
                   const Nonce& expected_nonce);

/// A remote-attestation quote: a report countersigned with the platform's
/// asymmetric attestation key (the artifact Foreshadow famously stole).
struct Quote {
  AttestationReport report;
  hwsec::crypto::u64 signature = 0;  ///< RSA signature over the report hash.
};

hwsec::crypto::Sha256Digest report_digest(const AttestationReport& report);

/// Signs a report into a quote with the (private) attestation key.
Quote make_quote(const AttestationReport& report, const hwsec::crypto::RsaKeyPair& attestation_key);

/// Verifies a quote with the public half only (n, e).
bool verify_quote(const Quote& quote, hwsec::crypto::u64 n, hwsec::crypto::u64 e,
                  std::span<const std::uint8_t> platform_key, const Nonce& expected_nonce);

}  // namespace hwsec::tee
