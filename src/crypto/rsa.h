// RSA over a 64-bit modulus: the Section-5 victim for timing and fault
// attacks (see modmath.h for why toy-sized operands preserve the attacks).
//
// Three private-key paths with different side-channel profiles:
//  * private_naive  — MSB-first square-and-multiply over Montgomery
//                     arithmetic. Data-dependent work: the multiply only
//                     happens for 1-bits and each Montgomery product may
//                     take an extra reduction. Vulnerable to Kocher-style
//                     timing analysis (attacks/physical/timing_attack.*).
//  * private_ladder — Montgomery ladder + constant-time reduction: the
//                     same operation sequence for every exponent.
//  * sign_crt       — CRT signature (4× faster, like every real
//                     implementation) — and the Boneh–DeMillo–Lipton
//                     single-fault target: one glitched half-exponentiation
//                     lets the attacker factor n with a gcd.
#pragma once

#include <cstdint>

#include "crypto/instrumentation.h"
#include "crypto/modmath.h"
#include "sim/rng.h"

namespace hwsec::crypto {

struct RsaKeyPair {
  u64 n = 0;     ///< modulus p*q.
  u64 e = 0;     ///< public exponent.
  u64 d = 0;     ///< private exponent.
  u64 p = 0;     ///< prime factor.
  u64 q = 0;     ///< prime factor.
  u64 dp = 0;    ///< d mod (p-1).
  u64 dq = 0;    ///< d mod (q-1).
  u64 q_inv = 0; ///< q^{-1} mod p.
};

/// Generates a key with two `prime_bits`-bit primes (default 31 → ~62-bit
/// modulus) and public exponent 65537 (regenerating if not coprime).
RsaKeyPair rsa_generate(hwsec::sim::Rng& rng, std::uint32_t prime_bits = 31);

/// m^e mod n.
u64 rsa_public(u64 m, const RsaKeyPair& key);

/// c^d mod n, leaky square-and-multiply. Emits per-operation cost through
/// `instr.tick`: kSquareCost/kMultiplyCost base units plus kExtraReduction
/// when the Montgomery extra reduction fires — the timing side channel.
u64 rsa_private_naive(u64 c, const RsaKeyPair& key, const Instrumentation& instr = {});

inline constexpr std::uint64_t kSquareCost = 10;
inline constexpr std::uint64_t kMultiplyCost = 10;
inline constexpr std::uint64_t kExtraReductionCost = 1;

/// c^d mod n, Montgomery-ladder constant-time (uniform ticks).
u64 rsa_private_ladder(u64 c, const RsaKeyPair& key, const Instrumentation& instr = {});

/// CRT signature m^d mod n. The p-half result is routed through
/// `instr.fault` (32-bit halves, low then high) so a glitch lands exactly
/// where Boneh–DeMillo–Lipton needs it.
u64 rsa_sign_crt(u64 m, const RsaKeyPair& key, const Instrumentation& instr = {});

/// CRT signature with a verify-before-release countermeasure: recomputes
/// s^e mod n and refuses (returns 0) on mismatch. Defeats the single-fault
/// attack at ~+6% cost.
u64 rsa_sign_crt_checked(u64 m, const RsaKeyPair& key, const Instrumentation& instr = {});

}  // namespace hwsec::crypto
