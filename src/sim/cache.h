// Set-associative cache model with the security controls that the surveyed
// architectures rely on.
//
// A single Cache object models one level (an L1D, L1I, or shared LLC).
// Composition into a hierarchy lives in sim/cache_hierarchy.h.
//
// Security-relevant features:
//  * every line is tagged with the DomainId that filled it (used by stats
//    and by flush_domain);
//  * way partitioning (DAWG / Sanctum-style strict partitioning): a domain
//    may be restricted to a contiguous range of ways, making Prime+Probe
//    across the partition impossible;
//  * line flush (CLFLUSH analogue) and whole-domain flush (used by
//    Sanctuary/Sanctum on enclave context switches);
//  * deterministic replacement (LRU / tree-PLRU) or seeded random
//    replacement, for the eviction-set reliability ablation.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace hwsec::sim {

enum class ReplacementPolicy : std::uint8_t {
  kLru,
  kTreePlru,
  kRandom,
};

std::string to_string(ReplacementPolicy p);

struct CacheConfig {
  std::string name = "cache";
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t ways = 8;
  std::uint32_t line_size = 64;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
  Cycle hit_latency = 4;

  std::uint32_t num_sets() const { return size_bytes / (ways * line_size); }
};

/// Per-domain and aggregate counters. Hits/misses are counted against the
/// domain issuing the access; evictions against the domain that owned the
/// evicted line (the victim of the eviction, which is what a Prime+Probe
/// attacker cares about).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t flushes = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class Cache {
 public:
  explicit Cache(CacheConfig config, std::uint64_t rng_seed = 1);

  const CacheConfig& config() const { return config_; }

  /// Result of a lookup-with-fill.
  struct AccessResult {
    bool hit = false;
    /// Physical line base evicted to make room for the fill (miss only,
    /// and only if a valid line was displaced). Inclusive hierarchies use
    /// this for back-invalidation.
    std::optional<PhysAddr> evicted_line;
    /// Domain that owned the evicted line.
    DomainId evicted_domain = kDomainNormal;
  };

  /// Looks up `addr` on behalf of `domain`; on miss, fills the line,
  /// evicting per the replacement policy (restricted to the domain's way
  /// partition if one is configured).
  AccessResult access(PhysAddr addr, DomainId domain, AccessType type);

  /// Lookup without side effects: true if the line is present (any domain).
  bool probe(PhysAddr addr) const;

  /// Lookup without side effects restricted to a domain's own lines.
  bool probe_owned(PhysAddr addr, DomainId domain) const;

  /// Invalidates the line containing `addr` if present; returns whether a
  /// line was dropped.
  bool flush_line(PhysAddr addr);

  /// Invalidates every line owned by `domain`; returns the count dropped.
  std::uint32_t flush_domain(DomainId domain);

  /// Invalidates everything.
  void flush_all();

  /// Restricts `domain` to ways [first_way, first_way + num_ways). Lines
  /// the domain currently holds outside its partition are invalidated so
  /// a partition change cannot leak stale occupancy. Pass num_ways == 0 to
  /// remove the restriction.
  void set_way_partition(DomainId domain, std::uint32_t first_way, std::uint32_t num_ways);

  /// True if a way partition is configured for any domain.
  bool partitioned() const { return partitions_installed_ > 0; }

  /// Number of valid lines currently owned by `domain` in the set that
  /// `addr` maps to. Used by tests and by attack heuristics.
  std::uint32_t occupancy(PhysAddr addr, DomainId domain) const;

  /// Randomized address-to-set mapping (Wang & Lee [40] / CEASER-family):
  /// with a nonzero key, the set index is a keyed permutation of the line
  /// address. rekey() installs a fresh key and flushes (a remap epoch):
  /// any eviction sets an attacker learned become stale.
  void set_index_scramble(std::uint64_t key);
  void rekey(std::uint64_t new_key);
  std::uint64_t scramble_key() const { return scramble_key_; }

  std::uint32_t set_index(PhysAddr addr) const {
    // line_size and num_sets are powers of two (enforced at construction),
    // so the division/modulo reduce to shift/mask — set_index sits on the
    // hottest path in the simulator and the two hardware divides that used
    // to live here were measurable in whole-campaign profiles.
    const std::uint32_t line = addr >> line_shift_;
    if (scramble_key_ == 0) {
      return line & set_mask_;
    }
    // splitmix-style keyed diffusion; sets must only be balanced, not
    // cryptographically strong, for the modeled property.
    std::uint64_t x = line ^ scramble_key_;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 31;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x) & set_mask_;
  }
  PhysAddr line_base(PhysAddr addr) const { return addr & ~(config_.line_size - 1); }

  /// True when no line in the whole cache is valid. Lets the hierarchy's
  /// flush paths skip caches that never held anything (the common case for
  /// the non-active cores' private caches in single-core trials).
  bool empty() const { return valid_lines_ == 0; }

  /// Monotonic counter bumped whenever a *valid* line is dropped or
  /// displaced, or the hit predicate changes shape (way partitions,
  /// scramble rekey, whole-cache flushes, snapshot restores roll it back
  /// together with the line array). While the counter is unchanged, a line
  /// observed valid at (set, way) is still there with the same tag and the
  /// same domain visibility — the foundation of the CPU's fetch memo.
  std::uint64_t removal_epoch() const { return removal_epoch_; }

  /// Locates the way holding `addr`'s line as a hit by `domain` would find
  /// it (honoring the domain's way partition). Returns (set << 8) | way,
  /// or nullopt when access() would miss. Read-only.
  std::optional<std::uint32_t> find_way(PhysAddr addr, DomainId domain) const;

  /// Replays the side effects of a *hit* previously located by
  /// find_way(): LRU stamp, PLRU touch, hit counters, touch journal —
  /// bit-identical to the hit path of access() for a read. Callers must
  /// ensure removal_epoch() is unchanged since the line was located.
  void repeat_hit(std::uint32_t set, std::uint32_t way, DomainId domain) {
    mark_touched(set, way);
    line_at(set, way).lru_stamp = ++clock_;
    if (config_.policy == ReplacementPolicy::kTreePlru) {
      touch_plru(set, way);  // mirrors the hit path of access() exactly.
    }
    ++stats_.hits;
    ++domain_slot(domain).hits;
  }

  const CacheStats& stats() const { return stats_; }
  const CacheStats& domain_stats(DomainId domain) const;
  void reset_stats();

  /// Arms the touched-set journal (the cache-array analogue of the
  /// dirty-page bitmap in PhysicalMemory): from here on, every mutation
  /// records which set it touched, so a later restore_from() copies back
  /// only those sets instead of the whole line array. Whole-cache
  /// operations (flush_all / flush_domain / partition or scramble changes)
  /// poison the journal and force a full copy on the next restore.
  void begin_set_tracking();

  /// Restores this cache to the state captured in `snap` (a copy of this
  /// cache taken right after begin_set_tracking()). Uses the touched-set
  /// fast path when the journal is clean, a full copy-assign otherwise;
  /// either way the journal is re-armed so the next trial starts fresh.
  void restore_from(const Cache& snap);

 private:
  /// Field order packs the line into 16 bytes (tag+owner+flags in one
  /// 8-byte word, stamp in the other): the line array is the simulator's
  /// hottest data structure and its footprint is what the host's caches
  /// have to absorb on every probe sweep.
  struct Line {
    PhysAddr tag_base = 0;  ///< line-aligned physical address.
    DomainId owner = kDomainNormal;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru_stamp = 0;
  };

  struct WayRange {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  WayRange ways_for(DomainId domain) const;
  std::uint32_t choose_victim(std::uint32_t set, WayRange range);
  Line& line_at(std::uint32_t set, std::uint32_t way) { return lines_[set * config_.ways + way]; }
  const Line& line_at(std::uint32_t set, std::uint32_t way) const {
    return lines_[set * config_.ways + way];
  }
  void touch_plru(std::uint32_t set, std::uint32_t way);
  std::uint32_t plru_victim(std::uint32_t set, WayRange range);

  /// Journals one line as touched since the last begin_set_tracking() /
  /// restore_from(). Granularity is the line, not the set: a trial that
  /// fills one way of hundreds of large sets (typical probe-array access
  /// patterns) then restores hundreds of lines, not hundreds of full way
  /// arrays. The epoch check makes repeat touches O(1) without clearing a
  /// bitmap per reset. PLRU bits only change alongside a line touch in the
  /// same set, so the line journal covers them too (restore_from derives
  /// the set as index / ways).
  void mark_touched(std::uint32_t set, std::uint32_t way) {
    if (!tracking_) {
      return;
    }
    const std::uint32_t index = set * config_.ways + way;
    if (touched_epoch_[index] == epoch_) {
      return;
    }
    touched_epoch_[index] = epoch_;
    touched_lines_.push_back(index);
  }

  /// Per-domain stats slot, growing the flat array on first sight of a
  /// domain. DomainIds are small dense integers, so a vector indexed by id
  /// replaces two unordered_map lookups per access on the hottest path in
  /// the simulator. Growth invalidates previously returned references —
  /// callers read counters immediately (and did under the map, too).
  CacheStats& domain_slot(DomainId domain) const {
    if (domain >= per_domain_.size()) {
      per_domain_.resize(static_cast<std::size_t>(domain) + 1);
    }
    return per_domain_[domain];
  }

  CacheConfig config_;
  std::uint32_t line_shift_ = 6;  ///< log2(line_size), for set_index.
  std::uint32_t set_mask_ = 0;    ///< num_sets - 1, for set_index.
  std::vector<Line> lines_;
  std::uint32_t valid_lines_ = 0;  ///< total valid lines, for empty().
  std::uint64_t removal_epoch_ = 0;
  /// Per-set bitmask of valid ways. Gives flush_line an O(1) miss and the
  /// victim chooser an O(1) invalid-way scan instead of walking the ways.
  std::vector<std::uint32_t> valid_ways_;
  /// One bit per set: set holds at least one valid line (bit set iff
  /// valid_ways_[set] != 0). Probe-array flush sweeps test this 2 KiB
  /// bitmap instead of loading scattered words of the (for an LLC, 64 KiB)
  /// valid_ways_ array — the sweep's working set then fits the host L1.
  std::vector<std::uint64_t> occupied_sets_;
  bool set_occupied(std::uint32_t set) const {
    return (occupied_sets_[set >> 6] >> (set & 63)) & 1u;
  }
  void mark_occupancy(std::uint32_t set) {
    if (valid_ways_[set] != 0) {
      occupied_sets_[set >> 6] |= std::uint64_t{1} << (set & 63);
    } else {
      occupied_sets_[set >> 6] &= ~(std::uint64_t{1} << (set & 63));
    }
  }
  std::vector<std::uint32_t> plru_bits_;  ///< one bitfield of tree bits per set.
  /// Way partitions as a flat table indexed by DomainId (domains are small
  /// dense integers). A slot with count == 0 — including every id beyond
  /// the table — means "unrestricted". Replaces a per-access
  /// unordered_map::find on the hottest path in the simulator.
  std::vector<WayRange> partition_lut_;
  std::uint32_t partitions_installed_ = 0;
  std::uint64_t clock_ = 0;  ///< LRU stamp source.
  std::uint64_t scramble_key_ = 0;
  Rng rng_;
  CacheStats stats_;
  mutable std::vector<CacheStats> per_domain_;  ///< indexed by DomainId.

  // Touched-line journal (see begin_set_tracking). epoch_ stamps entries
  // in touched_epoch_ so re-arming after a restore is a counter bump, not
  // an array-wide clear.
  bool tracking_ = false;
  bool coarse_dirty_ = false;  ///< a whole-cache mutation bypassed the journal.
  /// u8 on purpose: the stamp array is loaded on every access, and the
  /// narrow type quarters its footprint. Wrap-around is handled by the
  /// restore path (a full clear every 255 re-arms).
  std::uint8_t epoch_ = 0;
  std::vector<std::uint8_t> touched_epoch_;  ///< per line: epoch of last touch.
  std::vector<std::uint32_t> touched_lines_;  ///< line indices touched this epoch.
};

// access() and flush_line() are defined inline: a single probe-array trial
// issues hundreds of each (the 256-line scan misses twice per line, the
// pre-scan flush sweeps every level), so the call overhead and the lost
// cross-call hoisting were measurable in whole-campaign profiles.

inline Cache::AccessResult Cache::access(PhysAddr addr, DomainId domain, AccessType type) {
  const PhysAddr base = line_base(addr);
  const std::uint32_t set = set_index(addr);
  const WayRange range = ways_for(domain);

  // Hit path: a domain restricted by a partition can only *hit* within its
  // partition — that is what makes the partition a side-channel defense and
  // not just a quota. Scanning the valid-way mask instead of the Line array
  // makes a miss in a sparse set (every probe-array scan after a flush) a
  // single word load; countr_zero preserves the ascending way order of the
  // linear scan it replaces.
  const std::uint32_t range_mask =
      (range.count >= 32 ? ~0u : ((1u << range.count) - 1u) << range.first);
  std::uint32_t mask = valid_ways_[set] & range_mask;
  while (mask != 0) {
    const std::uint32_t w = static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    Line& line = line_at(set, w);
    if (line.tag_base == base) {
      mark_touched(set, w);  // LRU stamp / dirty bit / PLRU update.
      line.lru_stamp = ++clock_;
      if (type == AccessType::kWrite) {
        line.dirty = true;
      }
      if (config_.policy == ReplacementPolicy::kTreePlru) {
        touch_plru(set, w);  // the tree bits are dead state under LRU/random.
      }
      ++stats_.hits;
      ++domain_slot(domain).hits;
      return {.hit = true, .evicted_line = std::nullopt, .evicted_domain = kDomainNormal};
    }
  }

  // Miss: choose a victim within the domain's ways and fill. The invalid-way
  // case (every fill into a set that is not yet full — all of a probe-array
  // sweep after its flush) stays inline; only a genuinely full set pays the
  // policy walk in choose_victim.
  ++stats_.misses;
  ++domain_slot(domain).misses;
  const std::uint32_t invalid_ways = ~valid_ways_[set] & range_mask;
  const std::uint32_t victim_way =
      invalid_ways != 0 ? static_cast<std::uint32_t>(std::countr_zero(invalid_ways))
                        : choose_victim(set, range);
  mark_touched(set, victim_way);  // fill overwrites the victim line.
  Line& victim = line_at(set, victim_way);
  AccessResult result;
  if (victim.valid) {
    result.evicted_line = victim.tag_base;
    result.evicted_domain = victim.owner;
    ++stats_.evictions;
    ++domain_slot(victim.owner).evictions;
    ++removal_epoch_;  // a valid line was displaced.
  } else {
    ++valid_lines_;
    valid_ways_[set] |= 1u << victim_way;
    mark_occupancy(set);
  }
  victim.valid = true;
  victim.tag_base = base;
  victim.owner = domain;
  victim.dirty = (type == AccessType::kWrite);
  victim.lru_stamp = ++clock_;
  if (config_.policy == ReplacementPolicy::kTreePlru) {
    touch_plru(set, victim_way);
  }
  return result;
}

inline bool Cache::flush_line(PhysAddr addr) {
  const std::uint32_t set = set_index(addr);
  // Probe-array sweeps flush hundreds of mostly-absent lines per trial; the
  // occupancy bitmap answers those misses from ~2 KiB of state instead of
  // scattered loads across the full per-set way-mask array.
  if (!set_occupied(set)) {
    return false;  // no valid line in the set, so certainly not this one.
  }
  std::uint32_t mask = valid_ways_[set];
  const PhysAddr base = line_base(addr);
  do {
    const std::uint32_t w = static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    Line& line = line_at(set, w);
    if (line.tag_base == base) {
      mark_touched(set, w);
      line.valid = false;
      valid_ways_[set] &= ~(1u << w);
      mark_occupancy(set);
      --valid_lines_;
      ++removal_epoch_;
      ++stats_.flushes;
      return true;
    }
  } while (mask != 0);
  return false;
}

}  // namespace hwsec::sim
