// Multi-core hierarchy: latency ordering, inclusivity (back-invalidation),
// cross-core visibility, flushes and Sanctuary-style exclusions.
#include <gtest/gtest.h>

#include "sim/cache_hierarchy.h"

namespace sim = hwsec::sim;

namespace {

sim::HierarchyConfig two_core_config() {
  sim::HierarchyConfig h;
  h.num_cores = 2;
  h.l1d = {.name = "L1D", .size_bytes = 1024, .ways = 2, .line_size = 64,
           .policy = sim::ReplacementPolicy::kLru, .hit_latency = 4};
  h.l1i = h.l1d;
  h.llc = {.name = "LLC", .size_bytes = 16 * 1024, .ways = 4, .line_size = 64,
           .policy = sim::ReplacementPolicy::kLru, .hit_latency = 30};
  h.dram_latency = 150;
  return h;
}

TEST(Hierarchy, LatencyOrderingL1LlcDram) {
  sim::CacheHierarchy h(two_core_config());
  const auto miss = h.access(0, 0, 0x1000, sim::AccessType::kRead);
  EXPECT_EQ(miss.level, sim::ServiceLevel::kDram);
  const auto hit = h.access(0, 0, 0x1000, sim::AccessType::kRead);
  EXPECT_EQ(hit.level, sim::ServiceLevel::kL1);
  EXPECT_LT(hit.latency, miss.latency);

  // Other core: misses its L1, hits the shared LLC.
  const auto cross = h.access(1, 0, 0x1000, sim::AccessType::kRead);
  EXPECT_EQ(cross.level, sim::ServiceLevel::kLlc);
  EXPECT_GT(cross.latency, hit.latency);
  EXPECT_LT(cross.latency, miss.latency);
}

TEST(Hierarchy, FlushLineRemovesFromAllLevelsAllCores) {
  sim::CacheHierarchy h(two_core_config());
  h.access(0, 0, 0x2000, sim::AccessType::kRead);
  h.access(1, 0, 0x2000, sim::AccessType::kRead);
  h.flush_line(0x2000);
  EXPECT_FALSE(h.in_l1d(0, 0x2000));
  EXPECT_FALSE(h.in_l1d(1, 0x2000));
  EXPECT_FALSE(h.in_llc(0x2000));
}

TEST(Hierarchy, InclusiveLlcBackInvalidatesL1) {
  sim::CacheHierarchy h(two_core_config());
  // LLC: 64 sets, 4 ways. Fill one LLC set beyond capacity and verify a
  // back-invalidated line also left the owner's L1.
  const sim::PhysAddr llc_stride = 64 * 64;
  h.access(0, 0, 0, sim::AccessType::kRead);
  ASSERT_TRUE(h.in_l1d(0, 0));
  for (sim::PhysAddr i = 1; i <= 4; ++i) {
    h.access(1, 0, i * llc_stride, sim::AccessType::kRead);  // evicts line 0 from LLC.
  }
  EXPECT_FALSE(h.in_llc(0));
  EXPECT_FALSE(h.in_l1d(0, 0))
      << "inclusive LLC eviction must invalidate the private copy "
         "(the cross-core Prime+Probe mechanism)";
}

TEST(Hierarchy, FlushCorePrivateLeavesLlc) {
  sim::CacheHierarchy h(two_core_config());
  h.access(0, 0, 0x3000, sim::AccessType::kRead);
  h.flush_core_private(0);
  EXPECT_FALSE(h.in_l1d(0, 0x3000));
  EXPECT_TRUE(h.in_llc(0x3000));
}

TEST(Hierarchy, SharedOnlyExclusionBypassesLlcButNotL1) {
  sim::CacheHierarchy h(two_core_config());
  h.add_uncacheable(0x4000, sim::kPageSize, sim::CacheHierarchy::Exclusion::kSharedOnly);
  const auto first = h.access(0, 0, 0x4000, sim::AccessType::kRead);
  EXPECT_EQ(first.level, sim::ServiceLevel::kDram);
  EXPECT_TRUE(h.in_l1d(0, 0x4000));
  EXPECT_FALSE(h.in_llc(0x4000)) << "Sanctuary exclusion: never in shared cache";
  const auto second = h.access(0, 0, 0x4000, sim::AccessType::kRead);
  EXPECT_EQ(second.level, sim::ServiceLevel::kL1);
}

TEST(Hierarchy, AllLevelExclusionIsFullyUncached) {
  sim::CacheHierarchy h(two_core_config());
  h.add_uncacheable(0x5000, sim::kPageSize, sim::CacheHierarchy::Exclusion::kAllLevels);
  for (int i = 0; i < 3; ++i) {
    const auto r = h.access(0, 0, 0x5000, sim::AccessType::kRead);
    EXPECT_EQ(r.level, sim::ServiceLevel::kUncached);
  }
  EXPECT_FALSE(h.in_l1d(0, 0x5000));
}

TEST(Hierarchy, AddingExclusionDropsStaleCopies) {
  sim::CacheHierarchy h(two_core_config());
  h.access(0, 0, 0x6000, sim::AccessType::kRead);
  ASSERT_TRUE(h.in_llc(0x6000));
  h.add_uncacheable(0x6000, sim::kPageSize, sim::CacheHierarchy::Exclusion::kSharedOnly);
  EXPECT_FALSE(h.in_llc(0x6000));
}

TEST(Hierarchy, NoCacheProfileServesEverythingUncached) {
  sim::HierarchyConfig h = two_core_config();
  h.num_cores = 1;
  h.has_l1 = false;
  h.has_llc = false;
  h.dram_latency = 2;
  sim::CacheHierarchy hierarchy(h);
  const auto r = hierarchy.access(0, 0, 0x1000, sim::AccessType::kRead);
  EXPECT_EQ(r.level, sim::ServiceLevel::kUncached);
  EXPECT_EQ(r.latency, 2u);
}

TEST(Hierarchy, FlushDomainScrubsEverywhere) {
  sim::CacheHierarchy h(two_core_config());
  h.access(0, 9, 0x7000, sim::AccessType::kRead);
  h.access(1, 9, 0x7040, sim::AccessType::kRead);
  h.flush_domain(9);
  EXPECT_FALSE(h.in_l1d(0, 0x7000));
  EXPECT_FALSE(h.in_l1d(1, 0x7040));
  EXPECT_FALSE(h.in_llc(0x7000));
  EXPECT_FALSE(h.in_llc(0x7040));
}

}  // namespace
