#include "sim/page_table.h"

#include "sim/sim_error.h"

namespace hwsec::sim {

AddressSpace::AddressSpace(PhysicalMemory& mem, PhysAddr root, FrameAllocator alloc,
                           void* alloc_ctx)
    : mem_(&mem), root_(root), alloc_(alloc), alloc_ctx_(alloc_ctx) {
  if (root & kPageOffsetMask) {
    throw SimError(ErrorKind::kConfigError, "page table root must be page-aligned");
  }
  mem_->fill(root_, kPageSize, 0);
}

PhysAddr AddressSpace::leaf_addr(VirtAddr va, bool create) {
  const PhysAddr l1_entry_addr = root_ + 4 * l1_index(va);
  Word l1_entry = mem_->read32(l1_entry_addr);
  if (!(l1_entry & pte::kPresent)) {
    if (!create) {
      return 0;
    }
    const PhysAddr table = alloc_(alloc_ctx_);
    if (table & kPageOffsetMask) {
      throw SimError(ErrorKind::kInternalError, "frame allocator returned unaligned page");
    }
    mem_->fill(table, kPageSize, 0);
    l1_entry = table | pte::kPresent;
    mem_->write32(l1_entry_addr, l1_entry);
  }
  return pte::frame(l1_entry) + 4 * l2_index(va);
}

void AddressSpace::map(VirtAddr va, PhysAddr pa, Word flags) {
  if ((va & kPageOffsetMask) || (pa & kPageOffsetMask)) {
    throw SimError(ErrorKind::kConfigError, "map requires page-aligned addresses");
  }
  const PhysAddr leaf = leaf_addr(va, /*create=*/true);
  mem_->write32(leaf, (pa & pte::kFrameMask) | (flags & pte::kFlagsMask) | pte::kPresent);
}

void AddressSpace::unmap(VirtAddr va) {
  const PhysAddr leaf = leaf_addr(va, /*create=*/false);
  if (leaf != 0) {
    mem_->write32(leaf, 0);
  }
}

std::optional<Word> AddressSpace::pte_of(VirtAddr va) const {
  const Word l1_entry = mem_->read32(root_ + 4 * l1_index(va));
  if (!(l1_entry & pte::kPresent)) {
    return std::nullopt;
  }
  return mem_->read32(pte::frame(l1_entry) + 4 * l2_index(va));
}

void AddressSpace::set_pte(VirtAddr va, Word raw_entry) {
  const PhysAddr leaf = leaf_addr(va, /*create=*/false);
  if (leaf == 0) {
    throw SimError(ErrorKind::kConfigError, "set_pte on unmapped 4MiB region");
  }
  mem_->write32(leaf, raw_entry);
}

void AddressSpace::clear_present(VirtAddr va) {
  if (auto entry = pte_of(va)) {
    set_pte(va, *entry & ~pte::kPresent);
  }
}

void AddressSpace::set_reserved(VirtAddr va) {
  if (auto entry = pte_of(va)) {
    set_pte(va, *entry | pte::kReserved);
  }
}

void AddressSpace::restore_present(VirtAddr va) {
  if (auto entry = pte_of(va)) {
    set_pte(va, (*entry | pte::kPresent) & ~pte::kReserved);
  }
}

std::optional<Translation> walk(const PhysicalMemory& mem, PhysAddr root, VirtAddr va) {
  const Word l1_entry = mem.read32(root + 4 * AddressSpace::l1_index(va));
  if (!(l1_entry & pte::kPresent)) {
    return std::nullopt;
  }
  const PhysAddr leaf_addr = pte::frame(l1_entry) + 4 * AddressSpace::l2_index(va);
  const Word leaf = mem.read32(leaf_addr);
  Translation t;
  t.phys = pte::frame(leaf) | (va & kPageOffsetMask);
  t.flags = leaf & pte::kFlagsMask;
  t.pte_addr = leaf_addr;
  return t;
}

}  // namespace hwsec::sim
