// The remote half of a multi-host campaign: hwsec-shard-worker's engine.
//
// A remote worker is a process on another box (or another terminal) that
// lends its CPU to a supervisor's campaign. It carries NO campaign state
// of its own — the handshake's kWelcome ships the canonical spec JSON,
// and the worker rebuilds the exact trial body, resilience knobs, and
// chaos plan from it, so trial i computes the same bytes it would have
// computed inside a forked local worker. That is the whole determinism
// story: the wire moves work, never results that depend on where they ran.
//
// Two dial directions, one protocol (the worker always speaks kHello
// first — see net.h):
//   --connect host:port   worker dials a listening supervisor
//                         (ShardConfig::listen) and offers itself;
//   --listen [port]       worker listens; supervisors dial it via
//                         ShardConfig::hosts / a spec's hosts array.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "core/shard/net.h"
#include "core/shard/transport.h"

namespace hwsec::core::service {

/// Serves one supervisor over an established transport: handshake
/// (kHello -> kWelcome/kReject), spec decode, then the shard worker loop
/// until shutdown/EOF. Returns true when the session ended normally
/// (shutdown frame or supervisor EOF); false with a named reason in
/// `error` for rejection, a digest/spec mismatch, or a wire failure.
///
/// This is the testable core — the fault-matrix suite runs it in a thread
/// over a socketpair transport, no processes or real sockets involved.
bool serve_supervisor(shard::Transport& transport, const shard::HelloPayload& hello,
                      std::chrono::milliseconds handshake_timeout, std::string& error);

struct RemoteWorkerOptions {
  /// Dial direction: connect out to a listening supervisor...
  std::string connect_host;  ///< empty = listen mode instead.
  std::uint16_t connect_port = 0;
  unsigned connect_retries = 10;             ///< dial attempts before giving up.
  std::chrono::milliseconds connect_backoff{200};  ///< doubles per retry, capped 16x.

  /// ...or accept supervisors on address:port (port 0 = kernel-assigned).
  std::string listen_address = "127.0.0.1";
  std::uint16_t listen_port = 0;
  bool serve_forever = false;  ///< listen mode: keep serving sessions.

  /// Pin a campaign digest (0 = accept any). A worker left over from an
  /// old run pins the old digest and is rejected by name.
  std::uint64_t expect_digest = 0;
  std::string worker_name = "worker";
  std::chrono::milliseconds handshake_timeout{5000};
  /// Listen mode: reports the bound port (for port-0 harnesses).
  std::function<void(std::uint16_t port)> on_listening;
};

/// Runs a remote worker end-to-end over real TCP. Returns 0 after a
/// normally-ended session (every session, under serve_forever), nonzero
/// with a message on stderr when connecting/listening/serving fails.
int run_remote_worker(const RemoteWorkerOptions& options);

}  // namespace hwsec::core::service
