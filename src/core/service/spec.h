// Versioned campaign-spec wire format for the hwsecd campaign service.
//
// A spec is what a tenant submits over the socket: one JSON object that
// fully determines a campaign — which catalog workload to run, the seed,
// the trial count, and the execution/resilience knobs. Because trial i of
// a campaign is a pure function of (seed, i), a spec is also a complete
// *reproducibility* capsule: running the same spec through the daemon,
// through hwsec-client run-direct, or by hand against
// run_campaign_resilient yields bit-identical outcome vectors.
//
// Versioning: every document carries "hwsec_spec_version". Decoders accept
// exactly the versions they know (currently 1) and reject everything else
// with a message naming both versions — a future daemon can add fields
// under v1 freely (unknown keys are ignored: forward-compatible), and
// breaking changes bump the version. This is the contract that lets specs
// cross machines in the multi-HOST roadmap item.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/resilience/outcome.h"

namespace hwsec::core::service {

inline constexpr int kSpecVersion = 1;

/// Everything a campaign needs, flattened for the wire. Field semantics
/// match CampaignConfig / ResilienceConfig / ShardConfig one-to-one.
struct CampaignSpec {
  int version = kSpecVersion;
  std::string tenant;          ///< owner id, [A-Za-z0-9._-]+ (quota/checkpoint key).
  std::string name;            ///< optional human label.
  std::string kind;            ///< catalog workload (see catalog.h).
  std::uint64_t seed = 1;
  std::uint64_t trials = 0;
  std::uint32_t workers = 1;       ///< threads inside the job (0 = host default).
  std::uint32_t processes = 0;     ///< >0: run via the sharded supervisor.
  FailurePolicy policy = FailurePolicy::kCollect;
  std::uint32_t max_attempts = 3;       ///< kRetry budget.
  std::uint64_t trial_cycle_budget = 0; ///< deterministic per-trial watchdog.
  std::uint64_t trial_delay_us = 0;     ///< artificial per-trial pacing (tests/demos);
                                        ///< never feeds the result, only wall time.
  std::int32_t priority = 0;            ///< higher = sooner within a tenant.
  /// Remote worker endpoints ("host:port") the supervisor dials; nonempty
  /// routes the campaign through the sharded supervisor even when
  /// processes == 0. Each element must satisfy shard::parse_host; at most
  /// kMaxSpecHosts entries. The spec itself is shipped to remote workers,
  /// so its canonical encoding always includes this field (an empty array
  /// when unused) — the campaign-identity digest covers the host list.
  std::vector<std::string> hosts;
};

/// Ceiling on CampaignSpec::hosts (wire-level sanity; the daemon may
/// enforce a lower admission cap).
inline constexpr std::size_t kMaxSpecHosts = 32;

/// Canonical JSON encoding (all fields explicit, names escaped).
std::string encode_spec(const CampaignSpec& spec);

/// Parses and validates one spec document. On failure returns false and
/// puts a human-readable reason in `error`. Unknown keys are ignored;
/// unknown versions, malformed JSON, bad field types, empty/hostile tenant
/// or kind strings, and zero trials are rejected.
bool decode_spec(const std::string& json, CampaignSpec& out, std::string& error);

/// True when `id` is a safe tenant/name token: nonempty, <= 64 chars,
/// [A-Za-z0-9._-] only. Keeps ids embeddable in paths, scopes, and JSON.
bool valid_identifier(const std::string& id);

}  // namespace hwsec::core::service
