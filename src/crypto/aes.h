// AES-128 in three implementations with different side-channel profiles.
//
//  * AesTTable       — the classic 4×1 KiB T-table implementation (as in
//                      OpenSSL before ~2010). Every round does sixteen
//                      key-dependent table lookups: the canonical victim
//                      of Evict+Time / Prime+Probe / Flush+Reload (Osvik,
//                      Shamir, Tromer — the paper's [34]) and of DPA/CPA.
//  * AesConstantTime — S-box computed arithmetically (GF(2^8) inversion by
//                      a fixed addition chain); no data-dependent memory
//                      access, no data-dependent timing. The "software
//                      countermeasure implemented in the algorithm" the
//                      paper's §4.1 cites ([3]).
//  * AesMasked       — first-order Boolean masking: the state is processed
//                      XOR a fresh random mask and the S-box is recomputed
//                      per encryption as S'(x ⊕ r_in) = S(x) ⊕ r_out, so
//                      every leaked intermediate is statistically
//                      independent of the real data — the §5 masking
//                      countermeasure.
//
// All variants compute byte-identical AES-128 (validated against FIPS-197
// vectors in the tests) and accept Instrumentation hooks.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/instrumentation.h"

namespace hwsec::crypto {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/// Round keys for AES-128 (11 round keys of 16 bytes).
struct AesKeySchedule {
  std::array<std::uint32_t, 44> words{};
};

/// Expands a 128-bit key (FIPS-197 key schedule).
AesKeySchedule expand_key(const AesKey& key);

/// The forward S-box (exposed for the DFA and CPA attack code, which — as
/// in reality — knows the public algorithm).
const std::array<std::uint8_t, 256>& aes_sbox();
const std::array<std::uint8_t, 256>& aes_inv_sbox();

/// Table ids reported through Instrumentation::touch by AesTTable.
/// Tables T0..T3 have 256 4-byte entries each; kSboxTable is the final
/// round's byte table.
inline constexpr std::uint32_t kT0 = 0;
inline constexpr std::uint32_t kT1 = 1;
inline constexpr std::uint32_t kT2 = 2;
inline constexpr std::uint32_t kT3 = 3;
inline constexpr std::uint32_t kSboxTable = 4;

class AesTTable {
 public:
  explicit AesTTable(const AesKey& key, Instrumentation instr = {});

  AesBlock encrypt(const AesBlock& plaintext) const;

  /// Encrypt with a fault hook applied to the state entering round
  /// `fault_round` (1..10); used by the DFA experiments to place a glitch
  /// precisely. fault_round == 0 means "whatever the Instrumentation
  /// fault hook decides", i.e. faults may land anywhere.
  AesBlock encrypt_with_fault_round(const AesBlock& plaintext, std::uint32_t fault_round) const;

  const AesKeySchedule& schedule() const { return schedule_; }

 private:
  AesKeySchedule schedule_;
  Instrumentation instr_;
};

class AesConstantTime {
 public:
  explicit AesConstantTime(const AesKey& key, Instrumentation instr = {});

  AesBlock encrypt(const AesBlock& plaintext) const;

 private:
  AesKeySchedule schedule_;
  Instrumentation instr_;
};

class AesMasked {
 public:
  /// `rng_seed` drives the mask generator; masks are refreshed per block.
  AesMasked(const AesKey& key, std::uint64_t rng_seed, Instrumentation instr = {});

  AesBlock encrypt(const AesBlock& plaintext);

 private:
  AesKeySchedule schedule_;
  Instrumentation instr_;
  std::uint64_t rng_state_;
  std::uint8_t next_mask_byte();
};

}  // namespace hwsec::crypto
