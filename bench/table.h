// Shared fixed-width table printer for the experiment harnesses.
//
// Every bench binary regenerates one of the paper's artifacts as a table
// or series; this keeps the output format uniform so EXPERIMENTS.md can
// quote it directly.
#pragma once

#include <sys/resource.h>

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace hwsec::bench {

/// Peak resident set size of this process in MiB (getrusage ru_maxrss,
/// which Linux reports in KiB). Monotone over the process lifetime, so
/// benches that gate on memory sample it right after the phase under test.
inline double peak_rss_mib() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers, std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {}

  void print_header() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      os << std::left << std::setw(widths_[i]) << headers_[i];
    }
    std::cout << os.str() << "\n";
    std::cout << std::string(total_width(), '-') << "\n";
  }

  template <typename... Cells>
  void print_row(const Cells&... cells) const {
    std::ostringstream os;
    std::size_t i = 0;
    ((os << std::left << std::setw(widths_[i++]) << format(cells)), ...);
    std::cout << os.str() << "\n";
  }

  void print_rule() const { std::cout << std::string(total_width(), '-') << "\n"; }

 private:
  static std::string format(const std::string& s) { return s; }
  static std::string format(const char* s) { return s; }
  static std::string format(bool b) { return b ? "yes" : "no"; }
  template <typename T>
  static std::string format(const T& v) {
    std::ostringstream os;
    if constexpr (std::is_floating_point_v<T>) {
      os << std::fixed << std::setprecision(2) << v;
    } else {
      os << v;
    }
    return os.str();
  }

  int total_width() const {
    int w = 0;
    for (int x : widths_) {
      w += x;
    }
    return w;
  }

  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace hwsec::bench
