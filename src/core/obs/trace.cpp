#include "core/obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "core/resilience/checkpoint.h"  // write_file_atomic

namespace hwsec::obs {

namespace {

void autodump_at_exit() {
  Tracer& tracer = Tracer::instance();
  if (!tracer.autodump_path().empty()) {
    tracer.write(tracer.autodump_path());
  }
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  const char* out = std::getenv("HWSEC_TRACE_OUT");
  if (out != nullptr && *out != '\0') {
    autodump_path_ = out;
    enabled_.store(true, std::memory_order_relaxed);
    std::atexit(&autodump_at_exit);
  }
}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never destroyed; see MetricsRegistry.
  return *tracer;
}

Tracer::Ring* Tracer::register_ring() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<std::uint32_t>(rings_.size() + 1);
  rings_.push_back(std::move(ring));
  return rings_.back().get();
}

Tracer::Ring& Tracer::local_ring() {
  thread_local Ring* ring = register_ring();
  return *ring;
}

void Tracer::complete(const char* name, double start_us, double dur_us, std::int64_t arg,
                      const char* arg_name) {
  if (!enabled()) {
    return;
  }
  Ring& ring = local_ring();
  const std::uint64_t n = ring.count.load(std::memory_order_relaxed);
  Event& e = ring.slots[n % kRingCapacity];
  e.name = name;
  e.arg_name = arg_name;
  e.arg = arg;
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.phase = 'X';
  ring.count.store(n + 1, std::memory_order_release);
}

void Tracer::instant(const char* name, std::int64_t arg, const char* arg_name) {
  if (!enabled()) {
    return;
  }
  Ring& ring = local_ring();
  const std::uint64_t n = ring.count.load(std::memory_order_relaxed);
  Event& e = ring.slots[n % kRingCapacity];
  e.name = name;
  e.arg_name = arg_name;
  e.arg = arg;
  e.ts_us = now_us();
  e.dur_us = 0.0;
  e.phase = 'i';
  ring.count.store(n + 1, std::memory_order_release);
}

std::string Tracer::export_json() const {
  struct Tagged {
    Event event;
    std::uint32_t tid;
  };
  std::vector<Tagged> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& ring : rings_) {
      const std::uint64_t n = ring->count.load(std::memory_order_acquire);
      const std::uint64_t kept = std::min<std::uint64_t>(n, kRingCapacity);
      for (std::uint64_t i = n - kept; i < n; ++i) {
        events.push_back({ring->slots[i % kRingCapacity], ring->tid});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Tagged& a, const Tagged& b) { return a.event.ts_us < b.event.ts_us; });

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i].event;
    out << (i == 0 ? "" : ",") << "\n{\"name\":\"" << e.name << "\",\"cat\":\"hwsec\",\"ph\":\""
        << e.phase << "\",\"pid\":1,\"tid\":" << events[i].tid << ",\"ts\":" << e.ts_us;
    if (e.phase == 'X') {
      out << ",\"dur\":" << e.dur_us;
    } else {
      out << ",\"s\":\"t\"";  // instant scope: thread.
    }
    if (e.arg_name != nullptr) {
      out << ",\"args\":{\"" << e.arg_name << "\":" << e.arg << "}";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

bool Tracer::write(const std::string& path) const {
  return core::write_file_atomic(path, export_json());
}

void Tracer::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    ring->count.store(0, std::memory_order_relaxed);
  }
}

}  // namespace hwsec::obs
