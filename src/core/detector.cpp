#include "core/detector.h"

#include <numeric>
#include <stdexcept>

namespace hwsec::core {

namespace sim = hwsec::sim;

CacheAttackDetector::CacheAttackDetector(sim::Machine& machine, sim::DomainId victim_domain,
                                         DetectorConfig config)
    : machine_(&machine), victim_domain_(victim_domain), config_(config) {}

std::uint64_t CacheAttackDetector::victim_evictions_now() const {
  return machine_->caches().llc().domain_stats(victim_domain_).evictions;
}

std::uint64_t CacheAttackDetector::total_misses_now() const {
  return machine_->caches().llc().stats().misses;
}

void CacheAttackDetector::begin_window() {
  if (in_window_) {
    throw std::logic_error("detector window already open");
  }
  in_window_ = true;
  window_start_evictions_ = victim_evictions_now();
  window_start_misses_ = total_misses_now();
}

WindowReading CacheAttackDetector::end_window() {
  if (!in_window_) {
    throw std::logic_error("detector window not open");
  }
  in_window_ = false;
  WindowReading reading;
  reading.victim_evictions = victim_evictions_now() - window_start_evictions_;
  reading.total_misses = total_misses_now() - window_start_misses_;

  if (!calibrated_) {
    calibration_samples_.push_back(static_cast<double>(reading.victim_evictions));
  } else {
    const double threshold = baseline_mean_ * config_.threshold_factor;
    reading.flagged = reading.victim_evictions >= config_.min_evictions &&
                      static_cast<double>(reading.victim_evictions) > threshold;
    if (reading.flagged) {
      ++alerts_;
    }
  }
  history_.push_back(reading);
  return reading;
}

void CacheAttackDetector::finish_calibration() {
  if (calibration_samples_.empty()) {
    baseline_mean_ = 0.0;
  } else {
    baseline_mean_ =
        std::accumulate(calibration_samples_.begin(), calibration_samples_.end(), 0.0) /
        static_cast<double>(calibration_samples_.size());
  }
  calibrated_ = true;
}

}  // namespace hwsec::core
