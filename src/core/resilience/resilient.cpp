#include "core/resilience/resilient.h"

#include <new>
#include <stdexcept>

namespace hwsec::core {

namespace detail {

SimError wrap_current_exception() {
  try {
    throw;
  } catch (const SimError& e) {
    return e;
  } catch (const std::bad_alloc& e) {
    return SimError(ErrorKind::kResourceExhausted,
                    std::string("host allocation failed: ") + e.what());
  } catch (const std::exception& e) {
    return SimError(ErrorKind::kInternalError, e.what());
  } catch (...) {
    return SimError(ErrorKind::kInternalError, "non-standard exception");
  }
}

}  // namespace detail

std::vector<std::optional<SimError>> run_parallel_tasks_resilient(
    const std::vector<std::function<void()>>& tasks, unsigned workers) {
  std::vector<std::optional<SimError>> errors(tasks.size());
  hwsec::sim::ThreadPool pool(workers);
  pool.parallel_for(tasks.size(), [&](std::size_t i) {
    try {
      tasks[i]();
    } catch (...) {
      errors[i] = detail::wrap_current_exception();
    }
  });
  return errors;
}

}  // namespace hwsec::core
