// Multi-core cache hierarchy: private L1 data/instruction caches per core
// plus an optional shared, inclusive last-level cache (LLC).
//
// This is the component that makes cross-core cache side channels (and the
// defenses of Sanctum / Sanctuary) expressible:
//  * inclusive LLC: evicting a line from the LLC back-invalidates every
//    private copy, which is what lets a Prime+Probe attacker on core A
//    evict a victim on core B;
//  * uncacheable ranges: Sanctuary removes enclave memory from the shared
//    cache levels (exclude_shared) or from all levels (exclude_all);
//  * LLC way partitioning is inherited from Cache::set_way_partition;
//    set-partitioning via page coloring is a page-allocator policy (see
//    arch/sanctum) and needs no hierarchy support beyond set_index().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.h"
#include "sim/types.h"

namespace hwsec::sim {

struct HierarchyConfig {
  std::uint32_t num_cores = 1;
  bool has_l1 = true;
  bool has_llc = true;
  CacheConfig l1d{.name = "L1D", .size_bytes = 32 * 1024, .ways = 8, .line_size = 64,
                  .policy = ReplacementPolicy::kLru, .hit_latency = 4};
  CacheConfig l1i{.name = "L1I", .size_bytes = 32 * 1024, .ways = 8, .line_size = 64,
                  .policy = ReplacementPolicy::kLru, .hit_latency = 4};
  CacheConfig llc{.name = "LLC", .size_bytes = 2 * 1024 * 1024, .ways = 16, .line_size = 64,
                  .policy = ReplacementPolicy::kLru, .hit_latency = 30};
  bool inclusive_llc = true;
  Cycle dram_latency = 120;
  std::uint64_t rng_seed = 7;
};

/// Where an access was served from. Latencies are strictly ordered
/// (L1 < LLC < DRAM), which is the whole basis of timing side channels.
enum class ServiceLevel : std::uint8_t { kL1, kLlc, kDram, kUncached };

struct MemoryAccessOutcome {
  ServiceLevel level = ServiceLevel::kDram;
  Cycle latency = 0;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(HierarchyConfig config);

  const HierarchyConfig& config() const { return config_; }

  /// Data access by `core` on behalf of `domain`.
  MemoryAccessOutcome access(CoreId core, DomainId domain, PhysAddr addr, AccessType type);

  /// Instruction fetch (separate L1I, shared LLC).
  MemoryAccessOutcome fetch(CoreId core, DomainId domain, PhysAddr addr);

  /// Non-destructive probes, used by tests and by the Foreshadow L1TF
  /// model (which needs "is this physical line in core X's L1D?").
  bool in_l1d(CoreId core, PhysAddr addr) const;
  bool in_llc(PhysAddr addr) const;

  /// CLFLUSH analogue: removes the line from every level on every core.
  void flush_line(PhysAddr addr);

  /// Batch CLFLUSH over `count` addresses `stride` bytes apart, starting at
  /// `base`. Equivalent to calling flush_line() per address (the per-cache
  /// flushes are independent, so reordering cache-outer is unobservable),
  /// but skips caches that are entirely empty — the common case for the
  /// other cores' private caches — turning the probe-array flush loop from
  /// addresses x caches scans into a handful of cache visits.
  void flush_lines(PhysAddr base, std::uint32_t stride, std::uint32_t count);

  /// Flushes core-private caches only (enclave context switch in
  /// Sanctuary/Sanctum).
  void flush_core_private(CoreId core);

  /// Flushes everything everywhere.
  void flush_all();

  /// Drops every line owned by `domain` at every level (enclave teardown).
  void flush_domain(DomainId domain);

  /// Marks [start, start+len) as excluded from the shared LLC
  /// (Sanctuary's defense) or from every cache level. Ranges may be
  /// removed with clear_uncacheable().
  enum class Exclusion : std::uint8_t { kSharedOnly, kAllLevels };
  void add_uncacheable(PhysAddr start, std::uint32_t len, Exclusion scope);
  void clear_uncacheable();

  /// Direct handles for configuring partitions and reading stats.
  Cache& llc();
  const Cache& llc() const;
  Cache& l1d(CoreId core);
  const Cache& l1d(CoreId core) const;
  Cache& l1i(CoreId core);
  const Cache& l1i(CoreId core) const;

  void reset_stats();

  struct UncacheableRange {
    PhysAddr start;
    PhysAddr end;  // exclusive
    Exclusion scope;
  };

  // -- snapshot / restore (Machine::snapshot) ---------------------------
  /// Value copies of every cache level plus the uncacheable ranges. Cache
  /// objects are plain data (lines, PLRU bits, partition LUT, RNG), so a
  /// copy captures replacement state exactly. Taking a snapshot also arms
  /// each cache's touched-set journal, so restore() copies back only the
  /// sets mutated since the snapshot (full copy when a whole-cache
  /// operation bypassed the journal).
  struct Snapshot {
    std::vector<Cache> l1d;
    std::vector<Cache> l1i;
    std::vector<Cache> llc;  ///< empty or one element.
    std::vector<UncacheableRange> uncacheable;
  };

  Snapshot snapshot();
  void restore(const Snapshot& snap);

  /// Monotonic counter bumped whenever the uncacheable-range set changes
  /// (add/clear/restore). While unchanged, an address observed cacheable
  /// stays cacheable — part of the CPU fetch memo's validity predicate.
  std::uint64_t exclusion_epoch() const { return exclusion_epoch_; }

 private:
  bool excluded(PhysAddr addr, Exclusion scope_at_least) const;
  MemoryAccessOutcome access_through(Cache* l1, CoreId core, DomainId domain, PhysAddr addr,
                                     AccessType type);
  void back_invalidate(PhysAddr line_base);

  HierarchyConfig config_;
  std::vector<std::unique_ptr<Cache>> l1d_;
  std::vector<std::unique_ptr<Cache>> l1i_;
  std::unique_ptr<Cache> llc_;
  std::vector<UncacheableRange> uncacheable_;
  std::uint64_t exclusion_epoch_ = 0;
};

}  // namespace hwsec::sim
