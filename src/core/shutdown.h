// Graceful SIGTERM/SIGINT shutdown for campaign runners.
//
// An operator's Ctrl-C (or a scheduler's SIGTERM) must never lose completed
// trials: the runner should stop scheduling new trials, flush a final
// checkpoint plus the obs metrics/trace artifacts, and exit nonzero so the
// caller knows the sweep is partial.
//
// The mechanism is a process-wide flag: install_graceful_shutdown() points
// SIGTERM/SIGINT at a handler that records the signal (async-signal-safe:
// one sig_atomic_t store). Cooperative consumers poll shutdown_requested():
//  * run_campaign_resilient skips not-yet-started trials (marking their
//    slots `skipped`), lets in-flight trials finish, and writes its final
//    checkpoint exactly as on a normal exit;
//  * the shard supervisor stops assigning shards, tells workers to drain,
//    and saves the merged checkpoint;
//  * binaries (bench_campaign, examples) then write their metrics/trace
//    dumps and return shutdown_exit_code() — the conventional 128+signal.
//
// Installation is explicit and idempotent; a library must not hijack
// signals behind a host application's back.
#pragma once

namespace hwsec::core {

/// Installs the SIGTERM/SIGINT flag handler. Idempotent; call it early in
/// main() of any long-running campaign binary.
///
/// Escalation contract (the daemon case): the FIRST signal only sets the
/// flag — consumers drain (stop admitting work, finish/checkpoint what is
/// running) and exit 128+signal on their own schedule. A SECOND
/// SIGTERM/SIGINT aborts immediately from the handler with _exit(128+sig):
/// a drain that is stuck (or merely slower than the operator's patience)
/// can always be overridden by signalling again.
void install_graceful_shutdown();

/// True once SIGTERM or SIGINT arrived (always false if the handler was
/// never installed). Checked by the campaign runners between trials.
bool shutdown_requested();

/// The signal that requested shutdown, or 0.
int shutdown_signal();

/// Conventional exit code for a signal-interrupted run: 128 + signal
/// (130 for SIGINT, 143 for SIGTERM); 0 when no shutdown was requested.
int shutdown_exit_code();

/// Clears the flag (test helper — production code never un-requests a
/// shutdown).
void reset_shutdown_for_test();

}  // namespace hwsec::core
