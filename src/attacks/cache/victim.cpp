#include "attacks/cache/victim.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace crypto = hwsec::crypto;

TableLayout layout_tables(sim::PhysAddr region) {
  TableLayout layout;
  for (std::uint32_t t = 0; t < 5; ++t) {
    layout.base[t] = region + t * TableLayout::table_bytes();
  }
  return layout;
}

AesCacheVictim::AesCacheVictim(sim::Machine& machine, sim::CoreId core, sim::DomainId domain,
                               sim::PhysAddr table_region, const crypto::AesKey& key)
    : machine_(&machine), core_(core), domain_(domain), layout_(layout_tables(table_region)),
      key_(key) {
  crypto::Instrumentation instr;
  instr.touch = [this](std::uint32_t table, std::uint32_t index) {
    latency_accumulator_ +=
        machine_->touch(core_, domain_, layout_.entry(table, index)).latency;
  };
  aes_ = std::make_unique<crypto::AesTTable>(key_, std::move(instr));
}

AesCacheVictim::Run AesCacheVictim::encrypt(const crypto::AesBlock& plaintext) {
  latency_accumulator_ = 0;
  Run run;
  run.ciphertext = aes_->encrypt(plaintext);
  run.latency = latency_accumulator_;
  return run;
}

EnclaveAesVictim::EnclaveAesVictim(tee::Architecture& arch, const crypto::AesKey& key,
                                   sim::CoreId core)
    : arch_(&arch), core_(core), key_(key) {
  tee::EnclaveImage image;
  image.name = "aes-service";
  image.code = {0xAE, 0x50};  // measured stub.
  image.secret.assign(key.begin(), key.end());
  image.heap_pages = 2;  // page 1: T0..T3, page 2: final-round S-box.
  const auto created = arch_->create_enclave(image);
  if (!created.ok()) {
    throw std::runtime_error("EnclaveAesVictim: create_enclave failed: " +
                             tee::to_string(created.error));
  }
  id_ = created.value;
  const tee::EnclaveInfo* info = arch_->enclave(id_);
  // T0..T3 fill the first heap page exactly; the S-box takes the start of
  // the second. Tables never straddle a page, so strided (page-colored)
  // layouts stay line-exact.
  for (std::uint32_t t = 0; t < 4; ++t) {
    layout_.base[t] = info->phys_of(sim::kPageSize + t * TableLayout::table_bytes());
  }
  layout_.base[4] = info->phys_of(2 * sim::kPageSize);
}

EnclaveAesVictim::~EnclaveAesVictim() { arch_->destroy_enclave(id_); }

AesCacheVictim::Run EnclaveAesVictim::encrypt(const crypto::AesBlock& plaintext) {
  AesCacheVictim::Run run;
  const tee::EnclaveError err = arch_->call_enclave(
      id_, core_, [this, &plaintext, &run](tee::EnclaveContext& ctx) {
        sim::Cycle latency = 0;
        crypto::Instrumentation instr;
        instr.touch = [this, &ctx, &latency](std::uint32_t table, std::uint32_t index) {
          latency += ctx.machine()
                         .touch(ctx.core(), ctx.domain(), layout_.entry(table, index))
                         .latency;
        };
        crypto::AesTTable aes(key_, std::move(instr));
        run.ciphertext = aes.encrypt(plaintext);
        run.latency = latency;
      });
  if (err != tee::EnclaveError::kOk) {
    throw std::runtime_error("EnclaveAesVictim: call failed: " + tee::to_string(err));
  }
  return run;
}

}  // namespace hwsec::attacks
