#include "core/service/remote_worker.h"

#include <poll.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <thread>

#include "core/machine_pool.h"
#include "core/resilience/resilient.h"
#include "core/service/catalog.h"
#include "core/service/spec.h"
#include "core/shard/worker.h"
#include "core/shutdown.h"

namespace hwsec::core::service {

bool serve_supervisor(shard::Transport& transport, const shard::HelloPayload& hello,
                      std::chrono::milliseconds handshake_timeout, std::string& error) {
  shard::WelcomePayload welcome;
  if (!shard::handshake_connect(transport, hello, handshake_timeout, welcome, error)) {
    return false;
  }
  CampaignSpec spec;
  if (!decode_spec(welcome.spec_json, spec, error)) {
    error = "welcome spec rejected: " + error;
    return false;
  }

  // Rebuild the exact execution environment a forked local worker gets, so
  // trial i is bit-identical regardless of which host computes it: the
  // trial body and retry knobs come from the spec, the chaos plan and
  // wall-clock cap from the welcome (they are supervisor-side settings
  // that never appear in the spec).
  std::function<ServiceTrialResult(const TrialContext&)> body;
  try {
    body = make_trial_body(spec);
  } catch (const SimError& e) {
    error = e.what();
    return false;
  }
  ResilienceConfig res;
  res.policy = spec.policy;
  res.max_attempts = spec.max_attempts;
  res.trial_cycle_budget = spec.trial_cycle_budget;
  res.wall_clock_timeout = std::chrono::milliseconds(welcome.wall_clock_timeout_ms);
  res.chaos = welcome.chaos;

  // Mirrors run_campaign_sharded's make_runner byte for byte: one private
  // MachinePool + WallClockMonitor per session, CheckpointRecord encoding
  // identical to what a local forked worker would put on the wire.
  auto machines = std::make_shared<MachinePool>();
  auto monitor = std::make_shared<WallClockMonitor>(res.wall_clock_timeout);
  const std::uint64_t seed = spec.seed;
  const shard::TrialRunner runner = [machines, monitor, seed, res,
                                     body](std::size_t index) {
    const TrialOutcome<ServiceTrialResult> out = detail::execute_trial<ServiceTrialResult>(
        index, seed, res, machines.get(), *monitor, body);
    CheckpointRecord rec;
    rec.attempts = out.attempts;
    if (out.ok()) {
      rec.ok = true;
      rec.payload.assign(reinterpret_cast<const char*>(&*out.result),
                         sizeof(ServiceTrialResult));
    } else {
      rec.ok = false;
      rec.kind = static_cast<std::uint8_t>(out.error->kind());
      rec.detail = out.error->detail();
      rec.machine = out.error->machine();
    }
    return rec;
  };

  shard::WorkerEnv env;
  env.heartbeat_interval = std::chrono::milliseconds(welcome.heartbeat_ms);
  env.chaos = welcome.chaos;
  const int code = shard::worker_loop(transport, env, runner);
  if (code != 0) {
    error = "worker loop exited with code " + std::to_string(code);
    return false;
  }
  return true;
}

namespace {

int serve_connect(const RemoteWorkerOptions& options, const shard::HelloPayload& hello) {
  const shard::HostSpec host{options.connect_host, options.connect_port};
  std::string error;
  for (unsigned attempt = 0; attempt < std::max(1u, options.connect_retries); ++attempt) {
    if (attempt > 0) {
      const auto shift = std::min<unsigned>(attempt - 1, 4);
      std::this_thread::sleep_for(options.connect_backoff * (1u << shift));
    }
    if (shutdown_requested()) {
      return 0;
    }
    const int fd = shard::tcp_connect(host, std::chrono::milliseconds(2000), error);
    if (fd < 0) {
      continue;  // supervisor not up yet; back off and retry.
    }
    shard::FdTransport transport(fd, fd);
    transport.set_label("tcp:" + host.host + ":" + std::to_string(host.port));
    if (!serve_supervisor(transport, hello, options.handshake_timeout, error)) {
      std::fprintf(stderr, "hwsec-shard-worker: %s\n", error.c_str());
      return 1;
    }
    return 0;
  }
  std::fprintf(stderr, "hwsec-shard-worker: %s\n", error.c_str());
  return 1;
}

int serve_listen(const RemoteWorkerOptions& options, const shard::HelloPayload& hello) {
  std::string error;
  const int listen_fd = shard::tcp_listen(options.listen_address, options.listen_port, error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "hwsec-shard-worker: %s\n", error.c_str());
    return 1;
  }
  if (options.on_listening) {
    options.on_listening(shard::tcp_local_port(listen_fd));
  }
  int code = 0;
  while (!shutdown_requested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    if (poll(&pfd, 1, 100) <= 0) {
      continue;
    }
    const int fd = shard::tcp_accept(listen_fd);
    if (fd < 0) {
      continue;
    }
    shard::FdTransport transport(fd, fd);
    transport.set_label("tcp-accepted");
    if (!serve_supervisor(transport, hello, options.handshake_timeout, error)) {
      std::fprintf(stderr, "hwsec-shard-worker: %s\n", error.c_str());
      code = 1;
    }
    if (!options.serve_forever) {
      break;
    }
  }
  ::close(listen_fd);
  return options.serve_forever ? 0 : code;
}

}  // namespace

int run_remote_worker(const RemoteWorkerOptions& options) {
  shard::HelloPayload hello;
  hello.expect_digest = options.expect_digest;
  hello.worker_name = options.worker_name;
  if (!options.connect_host.empty()) {
    return serve_connect(options, hello);
  }
  return serve_listen(options, hello);
}

}  // namespace hwsec::core::service
