// E9 — §5 CLKSCREW ([37]): software-only fault injection through DVFS
// abuse, extracting an AES key from the TrustZone secure world.
//
// Paper's expected shape:
//   * the normal-world kernel programs an out-of-envelope operating point
//     and the secure world's computation starts glitching;
//   * the sweet spot is a MODERATE overclock — too little produces no
//     faults, too much corrupts every run into unusable multi-byte noise;
//   * a DVFS hardware interlock (or staying at rated points) stops the
//     attack outright.
#include <benchmark/benchmark.h>

#include "arch/trustzone.h"
#include "attacks/physical/clkscrew.h"
#include "core/campaign.h"
#include "core/resilience/resilient.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kKey = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04,
                             0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c};

struct TzSetup {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<arch::TrustZone> tz;
  tee::EnclaveId victim = tee::kInvalidEnclave;

  explicit TzSetup(std::uint64_t seed) {
    machine = std::make_unique<sim::Machine>(sim::MachineProfile::mobile(), seed);
    tz = std::make_unique<arch::TrustZone>(*machine);
    tee::EnclaveImage image;
    image.name = "tz-crypto-service";
    image.code = {0x77};
    image.secret.assign(kKey.begin(), kKey.end());
    tz->vendor_sign(image);
    victim = tz->create_enclave(image).value;
  }

  std::function<crypto::AesBlock(const crypto::AesBlock&)> secure_encrypt() {
    return [this](const crypto::AesBlock& pt) {
      crypto::AesBlock ct{};
      tz->call_enclave(victim, 0, [this, &pt, &ct](tee::EnclaveContext& ctx) {
        crypto::AesKey key{};
        for (std::uint32_t i = 0; i < 16; ++i) {
          key[i] = ctx.read8(1 + i);
        }
        crypto::Instrumentation instr;
        instr.fault = [&ctx](std::uint32_t v) { return ctx.machine().injector().corrupt(v); };
        crypto::AesTTable aes(key, instr);
        ct = aes.encrypt_with_fault_round(pt, 10);
      });
      return ct;
    };
  }
};

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  hwsec::bench::section(
      "E9 / §5 — CLKSCREW: DVFS frequency sweep at 0.70 V (stable limit = 880 MHz)");
  Table t({"freq (MHz)", "fault prob", "invocations", "faulty pairs", "key recovered"},
          {12, 12, 13, 14, 14});
  t.print_header();
  {
    // Resilient campaign: each frequency point is one independent trial
    // (its own mobile Machine + TrustZone world, seeded 900+freq as
    // before) — the sweep runs across host cores and prints in frequency
    // order. Each trial arms the per-trial cycle-budget watchdog on its
    // machine, so a wedged secure-world invocation would surface as a
    // structured TimedOut row instead of hanging the whole sweep.
    const std::vector<double> freqs = {800.0, 900.0, 1000.0, 1080.0, 1200.0, 1600.0, 2600.0};
    struct SweepRow {
      double freq = 0.0;
      attacks::ClkscrewResult result;
    };
    hwsec::core::ResilienceConfig res;
    res.trial_cycle_budget = 500'000'000;  // generous: only a wedged guest hits it.
    const auto rows = hwsec::core::run_campaign_resilient<SweepRow>(
        {.seed = 900, .trials = freqs.size()}, res,
        [&freqs](const hwsec::core::TrialContext& ctx) {
          const double freq = freqs[ctx.index];
          TzSetup setup(900 + static_cast<std::uint64_t>(freq));
          setup.machine->arm_watchdog(ctx.watchdog);
          attacks::ClkscrewConfig config;
          config.attack_point = {freq, 0.70};
          return SweepRow{freq,
                          attacks::clkscrew_attack(*setup.machine, setup.secure_encrypt(), config)};
        });
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!rows[i].ok()) {
        t.print_row(freqs[i], std::string("error: ") + rows[i].error->what(), "", "", "");
        continue;
      }
      const SweepRow& row = rows[i].value();
      t.print_row(row.freq, row.result.fault_probability, row.result.invocations,
                  row.result.faulty_pairs,
                  row.result.dfa.key_recovered && row.result.dfa.key == kKey ? "YES" : "no");
    }
  }
  std::cout << "(too slow: no faults; sweet spot ~1000-1200 MHz; far past the envelope\n"
               " every word glitches and the multi-byte corruptions are useless for DFA)\n";

  hwsec::bench::section("E9b — mitigations");
  Table m({"mitigation", "outcome"}, {36, 44});
  m.print_header();
  {
    TzSetup setup(950);
    setup.machine->dvfs().enforce_envelope(true);
    attacks::ClkscrewConfig config;
    config.attack_point = {1080.0, 0.70};
    const auto r = attacks::clkscrew_attack(*setup.machine, setup.secure_encrypt(), config);
    m.print_row("hardware envelope interlock",
                r.blocked_by_interlock ? "attack point rejected - attack impossible"
                                       : "FAILED TO BLOCK");
  }
  {
    TzSetup setup(951);
    attacks::ClkscrewConfig config;
    config.attack_point = {900.0, 1.00};  // rated-envelope point.
    config.max_invocations = 2000;
    const auto r = attacks::clkscrew_attack(*setup.machine, setup.secure_encrypt(), config);
    m.print_row("operating inside the envelope",
                r.faulty_pairs == 0 ? "zero faults - nothing to analyze" : "UNEXPECTED FAULTS");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
