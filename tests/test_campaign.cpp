// Campaign engine: the determinism contract (results bit-identical at any
// worker count), seed derivation, thread-pool behavior, and the parallel
// ports that ride on it (16-byte CPA, batched trace capture, Figure-1
// evaluation fan-out).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "attacks/physical/power_analysis.h"
#include "attacks/transient/spectre.h"
#include "core/campaign.h"
#include "core/evaluation.h"
#include "core/machine_pool.h"
#include "core/resilience/resilient.h"
#include "sca/cpa.h"
#include "sim/dispatch.h"
#include "sim/machine.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"

namespace sim = hwsec::sim;
namespace core = hwsec::core;
namespace attacks = hwsec::attacks;
namespace sca = hwsec::sca;

namespace {

// ---- seed derivation --------------------------------------------------

TEST(DeriveSeed, PureFunctionOfSeedAndIndex) {
  EXPECT_EQ(sim::derive_seed(1, 0), sim::derive_seed(1, 0));
  EXPECT_NE(sim::derive_seed(1, 0), sim::derive_seed(1, 1));
  EXPECT_NE(sim::derive_seed(1, 0), sim::derive_seed(2, 0));
}

TEST(DeriveSeed, NoShortRangeCollisions) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seeds.push_back(sim::derive_seed(42, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// ---- thread pool ------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  sim::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  sim::ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, PropagatesExceptions) {
  sim::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("trial failed");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, FirstExceptionSelectionIsDeterministic) {
  // Two indices throw with distinct messages; the pool must rethrow the
  // LOWEST failing index regardless of which worker hit its failure
  // first. Repeat to shake out scheduling luck.
  for (int round = 0; round < 20; ++round) {
    sim::ThreadPool pool(4);
    try {
      pool.parallel_for(16, [](std::size_t i) {
        if (i == 3 || i == 11) {
          throw std::runtime_error("failed at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failed at 3");
    }
  }
}

TEST(ThreadPool, ExceptionFromNestedParallelForPropagates) {
  sim::ThreadPool pool(2);
  std::atomic<int> outer_done{0};
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t outer) {
                                   pool.parallel_for(4, [outer](std::size_t inner) {
                                     if (outer == 1 && inner == 2) {
                                       throw std::runtime_error("nested failure");
                                     }
                                   });
                                   outer_done.fetch_add(1);
                                 }),
               std::runtime_error);
  // The failing outer iteration never increments; the other three drain.
  EXPECT_EQ(outer_done.load(), 3);
}

TEST(ThreadPool, ExceptionDuringCallerParticipationStillDrains) {
  // Every index throws, so whichever indices the *caller* thread claims
  // while participating in the drain also throw. All indices must still
  // be visited exactly once and exactly one exception must surface.
  sim::ThreadPool pool(2);
  std::vector<std::atomic<int>> visited(64);
  try {
    pool.parallel_for(visited.size(), [&](std::size_t i) {
      visited[i].fetch_add(1);
      throw std::runtime_error("failed at " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "failed at 0");  // lowest index wins.
  }
  for (const auto& v : visited) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ThreadPool, ConcurrentTopLevelSubmitsSerialize) {
  sim::ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back(
        [&] { pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); }); });
  }
  for (auto& c : clients) {
    c.join();
  }
  EXPECT_EQ(total.load(), 200);
}

// ---- campaign determinism across worker counts ------------------------

struct SpectreOutcome {
  bool leaked = false;
  std::uint32_t value = 0;

  bool operator==(const SpectreOutcome& o) const {
    return leaked == o.leaked && value == o.value;
  }
};

std::vector<SpectreOutcome> spectre_campaign(unsigned workers) {
  return core::run_campaign<SpectreOutcome>(
      {.seed = 7, .trials = 24, .workers = workers}, [](const core::TrialContext& ctx) {
        sim::Machine machine(sim::MachineProfile::mobile(), ctx.seed);
        attacks::SpectreV1 spectre(machine, 0);
        const sim::Word index = spectre.plant_secret("K");
        const auto byte = spectre.leak_byte(index);
        return SpectreOutcome{byte.has_value() && *byte == 'K', byte.value_or(0xFFFF)};
      });
}

TEST(Campaign, AttackProbeTrialsBitIdenticalAcrossWorkerCounts) {
  const auto sequential = spectre_campaign(1);
  ASSERT_EQ(sequential.size(), 24u);
  EXPECT_EQ(spectre_campaign(2), sequential);
  EXPECT_EQ(spectre_campaign(8), sequential);
}

// ---- dispatch-backend campaign identity --------------------------------

std::vector<SpectreOutcome> spectre_campaign_backend(sim::DispatchBackend backend,
                                                     core::MachinePool* pool) {
  const auto outcomes = core::run_campaign_resilient<SpectreOutcome>(
      {.seed = 7, .trials = 24, .workers = 1}, {.machines = pool},
      [backend](const core::TrialContext& ctx) {
        auto lease = core::acquire_machine(ctx.machines, sim::MachineProfile::mobile(), ctx.seed);
        // Pool resets restore the env-selected default backend, so the
        // override must be re-applied after every acquisition.
        lease->cpu(0).set_dispatch_backend(backend);
        attacks::SpectreV1 spectre(*lease, 0);
        const sim::Word index = spectre.plant_secret("K");
        const auto byte = spectre.leak_byte(index);
        return SpectreOutcome{byte.has_value() && *byte == 'K', byte.value_or(0xFFFF)};
      });
  std::vector<SpectreOutcome> results;
  for (const auto& o : outcomes) {
    results.push_back(o.value());
  }
  return results;
}

/// Whole-campaign differential: the Spectre trial under the micro-op core
/// must reproduce the legacy interpreter's outcome vector bit for bit —
/// with and without the pooled decoded-program cache in the loop.
TEST(Campaign, OutcomesBitIdenticalAcrossDispatchBackends) {
  const auto uops = spectre_campaign_backend(sim::DispatchBackend::kUops, nullptr);
  const auto legacy = spectre_campaign_backend(sim::DispatchBackend::kSwitch, nullptr);
  ASSERT_EQ(uops.size(), 24u);
  EXPECT_EQ(uops, legacy);

  core::MachinePool pool;
  EXPECT_EQ(spectre_campaign_backend(sim::DispatchBackend::kUops, &pool), uops)
      << "pooled machines (shared UopCache, snapshot reset-reuse) must not diverge";
  EXPECT_EQ(spectre_campaign_backend(sim::DispatchBackend::kSwitch, &pool), legacy);
}

TEST(Campaign, ResultsLandInTrialOrder) {
  const auto indices = core::run_campaign<std::size_t>(
      {.seed = 3, .trials = 100, .workers = 8},
      [](const core::TrialContext& ctx) { return ctx.index; });
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);
  }
}

TEST(Campaign, SummarizeComputesMoments) {
  const auto s = core::summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.trials, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
}

TEST(Campaign, SummarizeEmptyOutcomesIsZeroed) {
  // A sweep whose every trial failed hands summarize() an empty vector;
  // the summary must be all zeros, never NaN or garbage.
  const auto s = core::summarize({});
  EXPECT_EQ(s.trials, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.sum, 0.0);
}

// ---- trace-capture campaign ------------------------------------------

TEST(Campaign, TraceCaptureBitIdenticalAcrossWorkerCounts) {
  const hwsec::crypto::AesKey key = {0x10, 0xa5, 0x88, 0x69, 0xd7, 0x4b, 0xe5, 0xa3,
                                     0x74, 0xcf, 0x86, 0x7c, 0xfb, 0x47, 0x38, 0x59};
  sca::RecorderConfig rec;
  rec.noise_sigma = 1.0;
  rec.seed = 5;

  auto capture = [&](unsigned workers) {
    return attacks::collect_aes_traces_parallel(key, attacks::AesVariant::kTTable, 150, rec,
                                                31337, 32, workers);
  };
  const auto sequential = capture(1);
  ASSERT_EQ(sequential.traces.size(), 150u);
  ASSERT_EQ(sequential.plaintexts.size(), 150u);

  for (const unsigned workers : {2u, 8u}) {
    const auto parallel = capture(workers);
    ASSERT_EQ(parallel.traces.size(), sequential.traces.size());
    EXPECT_EQ(parallel.plaintexts, sequential.plaintexts);
    EXPECT_EQ(parallel.ciphertexts, sequential.ciphertexts);
    EXPECT_EQ(parallel.traces, sequential.traces);
  }
}

TEST(Campaign, ParallelCaptureStillBreaksUnprotectedAes) {
  const hwsec::crypto::AesKey key = {0x10, 0xa5, 0x88, 0x69, 0xd7, 0x4b, 0xe5, 0xa3,
                                     0x74, 0xcf, 0x86, 0x7c, 0xfb, 0x47, 0x38, 0x59};
  sca::RecorderConfig rec;
  rec.noise_sigma = 1.0;
  rec.seed = 5;
  const auto set =
      attacks::collect_aes_traces_parallel(key, attacks::AesVariant::kTTable, 300, rec, 31337);
  const auto result = sca::cpa_attack_key(set);
  EXPECT_GE(result.correct_bytes(key), 14u);
}

// ---- evaluation fan-out ----------------------------------------------

TEST(Campaign, EvaluationIdenticalAcrossWorkerCounts) {
  const auto one = core::evaluate_platform(sim::DeviceClass::kMobile, 42, 1);
  const auto many = core::evaluate_platform(sim::DeviceClass::kMobile, 42, 8);

  EXPECT_DOUBLE_EQ(one.mips, many.mips);
  EXPECT_DOUBLE_EQ(one.nj_per_instruction, many.nj_per_instruction);
  ASSERT_EQ(one.uarch_probes.size(), many.uarch_probes.size());
  for (std::size_t i = 0; i < one.uarch_probes.size(); ++i) {
    EXPECT_EQ(one.uarch_probes[i].name, many.uarch_probes[i].name);
    EXPECT_EQ(one.uarch_probes[i].succeeded, many.uarch_probes[i].succeeded);
    EXPECT_EQ(one.uarch_probes[i].detail, many.uarch_probes[i].detail);
  }
  ASSERT_EQ(one.physical_probes.size(), many.physical_probes.size());
  for (std::size_t i = 0; i < one.physical_probes.size(); ++i) {
    EXPECT_EQ(one.physical_probes[i].succeeded, many.physical_probes[i].succeeded);
    EXPECT_EQ(one.physical_probes[i].detail, many.physical_probes[i].detail);
  }
  EXPECT_DOUBLE_EQ(one.uarch_success_rate, many.uarch_success_rate);
  EXPECT_DOUBLE_EQ(one.physical_success_rate, many.physical_success_rate);
}

}  // namespace
