// Per-slot result-or-error model for fault-contained campaigns.
//
// run_campaign_resilient never lets one bad trial take the sweep down: the
// trial's exception is converted into a SimError and stored in its slot,
// while every other slot holds exactly the value the fault-free campaign
// would produce (the determinism contract is per-slot, so containment
// cannot perturb neighbours).
#pragma once

#include <optional>

#include "sim/sim_error.h"

namespace hwsec::core {

/// What a resilient campaign does when a trial fails.
enum class FailurePolicy : std::uint8_t {
  kFailFast,  ///< stop scheduling new trials, then rethrow the lowest-index failure.
  kCollect,   ///< record the failure in its slot and keep sweeping (default).
  kRetry,     ///< re-run the same trial (same seed) up to max_attempts, then record.
};

template <typename Result>
struct TrialOutcome {
  std::optional<Result> result;     ///< engaged iff the trial succeeded.
  std::optional<SimError> error;    ///< engaged iff the trial failed (all attempts).
  unsigned attempts = 1;            ///< how many attempts ran (>1 only under kRetry).
  bool from_checkpoint = false;     ///< restored from a checkpoint, not re-run.
  bool skipped = false;             ///< never ran: fail-fast tripped earlier.

  bool ok() const { return result.has_value(); }
  const Result& value() const { return *result; }
};

}  // namespace hwsec::core
