#include "core/service/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "core/json.h"
#include "core/obs/metrics.h"
#include "core/service/catalog.h"
#include "core/shutdown.h"

namespace hwsec::core::service {

namespace {

/// Waits for POLLIN on `fd`, polling `stop` between slices so a wedged or
/// silent client cannot pin a connection thread past daemon shutdown.
bool wait_readable(int fd, const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) {
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc > 0) {
      return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    }
  }
  return false;
}

bool write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int errno_error(int fd, const std::string& what) {
  const std::string detail = what + ": " + std::strerror(errno);
  if (fd >= 0) ::close(fd);
  throw SimError(ErrorKind::kConfigError, detail);
}

}  // namespace

Daemon::Daemon(ServiceConfig config) : config_(std::move(config)) {
  if (config_.executors == 0) config_.executors = 1;
  if (config_.progress_interval.count() <= 0) {
    config_.progress_interval = std::chrono::milliseconds(50);
  }
}

Daemon::~Daemon() { stop(); }

int Daemon::bind_unix() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.unix_socket.size() >= sizeof(addr.sun_path)) {
    throw SimError(ErrorKind::kConfigError,
                   "unix socket path too long: " + config_.unix_socket);
  }
  std::memcpy(addr.sun_path, config_.unix_socket.c_str(), config_.unix_socket.size() + 1);
  ::unlink(config_.unix_socket.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) errno_error(-1, "socket(AF_UNIX)");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    errno_error(fd, "bind(" + config_.unix_socket + ")");
  }
  if (::listen(fd, 64) != 0) errno_error(fd, "listen(" + config_.unix_socket + ")");
  return fd;
}

int Daemon::bind_tcp() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) errno_error(-1, "socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only.
  addr.sin_port = htons(config_.tcp_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    errno_error(fd, "bind(127.0.0.1:" + std::to_string(config_.tcp_port) + ")");
  }
  if (::listen(fd, 64) != 0) errno_error(fd, "listen(tcp)");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_tcp_port_ = ntohs(bound.sin_port);
  }
  return fd;
}

void Daemon::start() {
  if (started_.exchange(true)) return;
  sigpipe_guard_ = std::make_unique<shard::SigpipeIgnore>();
  if (!config_.unix_socket.empty()) unix_fd_ = bind_unix();
  if (config_.tcp_enabled) tcp_fd_ = bind_tcp();
  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    throw SimError(ErrorKind::kConfigError,
                   "hwsecd: no listener configured (set unix_socket and/or tcp)");
  }
  executor_threads_.reserve(config_.executors);
  for (unsigned i = 0; i < config_.executors; ++i) {
    executor_threads_.emplace_back([this] { executor_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

int Daemon::serve() {
  start();
  while (!shutdown_requested() && !stop_requested_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // 128+signal after a signal-initiated drain, 0 after a client stop.
  const int code = shutdown_exit_code();
  stop();
  return code;
}

void Daemon::request_stop() { stop_requested_.store(true, std::memory_order_relaxed); }

void Daemon::stop() {
  if (!started_.load(std::memory_order_relaxed) || closing_.load(std::memory_order_relaxed)) {
    return;
  }
  draining_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    fail_queued_jobs_locked("daemon draining");
  }
  executors_cv_.notify_all();
  // Running jobs finish on their own terms: fully on a client stop, cut
  // short (skipped slots + final checkpoint) when the global shutdown flag
  // is up. Either way the executor returns and its job goes terminal.
  for (auto& t : executor_threads_) {
    if (t.joinable()) t.join();
  }
  executor_threads_.clear();
  // Grace: streaming subscriptions notice terminal state within one
  // progress tick and flush the final kJobResult before we cut them off.
  std::this_thread::sleep_for(
      std::min<std::chrono::milliseconds>(2 * config_.progress_interval +
                                              std::chrono::milliseconds(50),
                                          std::chrono::milliseconds(1000)));
  closing_.store(true, std::memory_order_relaxed);
  executors_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(config_.unix_socket.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) {
      if (!conn.finished.load(std::memory_order_relaxed)) {
        ::shutdown(conn.fd, SHUT_RDWR);
      }
    }
  }
  for (auto& conn : connections_) {
    if (conn.thread.joinable()) conn.thread.join();
    if (conn.fd >= 0) ::close(conn.fd);
  }
  connections_.clear();
  sigpipe_guard_.reset();
}

// ---- accept path -------------------------------------------------------

void Daemon::accept_loop() {
  while (!closing_.load(std::memory_order_relaxed)) {
    struct pollfd fds[2];
    int nfds = 0;
    if (unix_fd_ >= 0) fds[nfds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), 100);
    if (rc <= 0) continue;  // timeout or EINTR: re-check closing_.
    for (int i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn < 0) continue;
      std::lock_guard<std::mutex> lock(connections_mutex_);
      reap_finished_connections_locked();
      connections_.emplace_back();
      Connection& entry = connections_.back();  // std::list: reference is stable.
      entry.fd = conn;
      entry.thread = std::thread([this, conn, &entry] {
        connection_loop(conn);
        entry.finished.store(true, std::memory_order_relaxed);
      });
    }
  }
}

void Daemon::reap_finished_connections_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->finished.load(std::memory_order_relaxed)) {
      if (it->thread.joinable()) it->thread.join();
      if (it->fd >= 0) ::close(it->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---- connection protocol -----------------------------------------------

bool Daemon::send_service_frame(int fd, shard::FrameType type, const std::string& payload) {
  shard::Frame frame;
  frame.type = type;
  frame.payload = payload;
  return shard::write_frame(fd, frame);
}

void Daemon::connection_loop(int fd) {
  // One port, two dialects: sniff the first four bytes. Frame clients
  // always lead with the wire magic ("HWSC" on the wire); an HTTP scrape
  // leads with "GET ".
  char head[4] = {};
  while (true) {
    if (!wait_readable(fd, closing_)) return;
    const ssize_t n = ::recv(fd, head, sizeof(head), MSG_PEEK);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer vanished before saying anything.
    if (n >= 4) break;
    if (std::memcmp(head, "GET ", static_cast<std::size_t>(n)) != 0) break;
  }
  if (std::memcmp(head, "GET ", 4) == 0) {
    handle_http(fd);
    return;
  }
  shard::Frame frame;
  // Untrusted peer: request frames are tiny, so cap the payload length a
  // client header can demand before any allocation happens.
  if (!shard::read_frame(fd, frame, kMaxRequestPayload)) return;
  switch (frame.type) {
    case shard::FrameType::kSubmit:
      handle_submit(fd, frame.payload);
      break;
    case shard::FrameType::kAttach:
      handle_attach(fd, frame.payload);
      break;
    case shard::FrameType::kStatusRequest: {
      static const obs::Counter kScrapes = obs::counter("service_status_requests");
      kScrapes.add(1);
      send_service_frame(fd, shard::FrameType::kStatusReply, status_json());
      break;
    }
    case shard::FrameType::kStopDaemon: {
      SubmittedPayload ack;
      ack.accepted = true;
      ack.message = "draining";
      send_service_frame(fd, shard::FrameType::kSubmitted, encode_submitted(ack));
      request_stop();
      break;
    }
    default:
      send_service_frame(fd, shard::FrameType::kServiceError,
                         "unexpected frame type " +
                             std::to_string(static_cast<unsigned>(frame.type)));
      break;
  }
}

void Daemon::handle_http(int fd) {
  static const obs::Counter kScrapes = obs::counter("service_status_requests");
  std::string request;
  char buf[512];
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < 8192) {
    if (!wait_readable(fd, closing_)) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const bool status_path = request.rfind("GET /status", 0) == 0 ||
                           request.rfind("GET / ", 0) == 0;
  std::string body;
  const char* status_line;
  if (status_path) {
    kScrapes.add(1);
    status_line = "HTTP/1.0 200 OK\r\n";
    body = status_json();
  } else {
    status_line = "HTTP/1.0 404 Not Found\r\n";
    body = "{\"error\": \"unknown path (try /status)\"}";
  }
  body += "\n";
  std::ostringstream response;
  response << status_line << "Content-Type: application/json\r\nContent-Length: "
           << body.size() << "\r\nConnection: close\r\n\r\n"
           << body;
  write_all(fd, response.str());
}

void Daemon::handle_submit(int fd, const std::string& payload) {
  static const obs::Counter kSubmitted = obs::counter("service_jobs_submitted");
  static const obs::Counter kRejected = obs::counter("service_jobs_rejected");
  SubmittedPayload ack;
  CampaignSpec spec;
  std::string error;
  std::shared_ptr<Job> job;
  if (!decode_spec(payload, spec, error)) {
    ack.message = error;
  } else if (!known_kind(spec.kind)) {
    ack.message = "unknown campaign kind \"" + spec.kind + "\"";
  } else if (spec.trials == 0) {
    ack.message = "trials must be >= 1";
  } else if (spec.trials > config_.max_trials) {
    ack.message = "trials " + std::to_string(spec.trials) + " exceeds service cap " +
                  std::to_string(config_.max_trials);
  } else if (spec.workers > config_.max_workers) {
    ack.message = "workers " + std::to_string(spec.workers) + " exceeds service cap " +
                  std::to_string(config_.max_workers);
  } else if (spec.processes > config_.max_processes) {
    ack.message = "processes " + std::to_string(spec.processes) +
                  " exceeds service cap " + std::to_string(config_.max_processes);
  } else if (spec.hosts.size() > config_.max_hosts) {
    ack.message = "hosts " + std::to_string(spec.hosts.size()) +
                  " exceeds service cap " + std::to_string(config_.max_hosts);
  } else {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
      ack.message = "daemon draining";
    } else if (admitted_per_tenant_[spec.tenant] >= config_.max_queued_per_tenant) {
      ack.message = "tenant \"" + spec.tenant + "\" is over its quota of " +
                    std::to_string(config_.max_queued_per_tenant) + " admitted jobs";
    } else {
      job = std::make_shared<Job>();
      job->seq = next_seq_++;
      job->id = spec.tenant + "-" + std::to_string(job->seq);
      job->spec = spec;
      job->total = spec.trials;
      jobs_[job->id] = job;
      queue_.push_back(job);
      ++admitted_per_tenant_[spec.tenant];
      ack.accepted = true;
      ack.job_id = job->id;
    }
  }
  if (ack.accepted) {
    kSubmitted.add(1);
    executors_cv_.notify_all();
  } else {
    kRejected.add(1);
  }
  if (!send_service_frame(fd, shard::FrameType::kSubmitted, encode_submitted(ack))) {
    return;  // client already gone; the job (if admitted) runs regardless.
  }
  if (job != nullptr) {
    stream_job(fd, job);
  }
}

void Daemon::handle_attach(int fd, const std::string& payload) {
  static const obs::Counter kReattaches = obs::counter("service_reattaches");
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(payload);
    if (it != jobs_.end()) job = it->second;
  }
  if (job == nullptr) {
    send_service_frame(fd, shard::FrameType::kServiceError,
                       "unknown job id \"" + payload + "\"");
    return;
  }
  kReattaches.add(1);
  SubmittedPayload ack;
  ack.accepted = true;
  ack.job_id = job->id;
  ack.message = "attached";
  if (!send_service_frame(fd, shard::FrameType::kSubmitted, encode_submitted(ack))) {
    return;
  }
  stream_job(fd, job);
}

void Daemon::stream_job(int fd, const std::shared_ptr<Job>& job) {
  static const obs::Counter kDetached = obs::counter("service_detached_streams");
  while (true) {
    const JobState state = job->state.load(std::memory_order_acquire);
    if (state == JobState::kDone || state == JobState::kFailed) break;
    JobUpdatePayload update;
    update.job_id = job->id;
    update.state = state;
    update.done = job->done.load(std::memory_order_relaxed);
    update.total = job->total;
    if (!send_service_frame(fd, shard::FrameType::kJobUpdate, encode_job_update(update))) {
      // The subscription died, the job did not: it keeps running and any
      // later kAttach by job id picks the result up.
      kDetached.add(1);
      return;
    }
    if (closing_.load(std::memory_order_relaxed)) return;
    std::this_thread::sleep_for(config_.progress_interval);
  }
  JobResultPayload result;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    result.job_id = job->id;
    result.state = job->state.load(std::memory_order_relaxed);
    result.digest = job->digest;
    result.records = job->records;
    result.error = job->error;
  }
  if (!send_service_frame(fd, shard::FrameType::kJobResult, encode_job_result(result))) {
    kDetached.add(1);
  }
}

// ---- scheduling / execution --------------------------------------------

std::shared_ptr<Daemon::Job> Daemon::pick_job_locked() {
  if (draining_.load(std::memory_order_relaxed)) return nullptr;
  std::size_t best = queue_.size();
  unsigned best_running = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const auto& candidate = queue_[i];
    const unsigned running = running_per_tenant_[candidate->spec.tenant];
    if (running >= config_.max_running_per_tenant) continue;
    // Fair share first (tenant with the least running), then priority,
    // then arrival order (queue_ is FIFO, so the first win sticks).
    if (best == queue_.size() || running < best_running ||
        (running == best_running &&
         candidate->spec.priority > queue_[best]->spec.priority)) {
      best = i;
      best_running = running;
    }
  }
  if (best == queue_.size()) return nullptr;
  const std::shared_ptr<Job> job = queue_[best];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return job;
}

void Daemon::executor_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      executors_cv_.wait(lock, [&] {
        if (closing_.load(std::memory_order_relaxed) ||
            draining_.load(std::memory_order_relaxed)) {
          return true;
        }
        job = pick_job_locked();
        return job != nullptr;
      });
      if (job == nullptr) return;
      job->state.store(JobState::kRunning, std::memory_order_release);
      ++running_per_tenant_[job->spec.tenant];
    }
    run_job(job);
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      --running_per_tenant_[job->spec.tenant];
      --admitted_per_tenant_[job->spec.tenant];
      evict_finished_locked(job->spec.tenant);
    }
    executors_cv_.notify_all();
  }
}

void Daemon::run_job(const std::shared_ptr<Job>& job) {
  static const obs::Counter kCompleted = obs::counter("service_jobs_completed");
  static const obs::Counter kFailedJobs = obs::counter("service_jobs_failed");
  ResilienceConfig res;
  res.machines = &machines_;
  res.heartbeat = std::chrono::milliseconds(0);  // the daemon streams its own progress.
  if (!config_.checkpoint_dir.empty()) {
    res.checkpoint_path = config_.checkpoint_dir + "/" + job->id + ".ckpt";
    // Satellite #2: identity is (config, owner), not config alone — two
    // tenants submitting byte-identical specs can never cross-resume.
    res.checkpoint_scope = job->spec.tenant + "/" + job->id;
  }
  JobState final_state = JobState::kDone;
  std::string records;
  std::string error;
  try {
    const ServiceOutcomes outcomes = run_spec(
        job->spec, res, [&job] { job->done.fetch_add(1, std::memory_order_relaxed); });
    std::size_t skipped = 0;
    for (const auto& outcome : outcomes) {
      if (outcome.skipped) ++skipped;
    }
    records = encode_outcomes(outcomes);
    if (skipped != 0) {
      // Only the shutdown drain leaves skipped slots without throwing
      // (fail-fast throws). Partial results are not "done": fail the job
      // but keep the records — the checkpoint already holds every
      // completed slot for a later resume.
      final_state = JobState::kFailed;
      error = "drained mid-run: " + std::to_string(skipped) + " of " +
              std::to_string(outcomes.size()) + " trials skipped (checkpoint saved)";
    }
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = e.what();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job->records = std::move(records);
    job->digest = job->records.empty() ? 0 : fnv1a64(job->records);
    job->error = std::move(error);
    job->state.store(final_state, std::memory_order_release);
  }
  (final_state == JobState::kDone ? kCompleted : kFailedJobs).add(1);
}

void Daemon::evict_finished_locked(const std::string& tenant) {
  static const obs::Counter kEvicted = obs::counter("service_jobs_evicted");
  // Retention: keep the newest max_finished_per_tenant terminal jobs of
  // this tenant attachable; drop the rest (records blobs included). An
  // attach for an evicted id gets "unknown job id" — same answer as a
  // daemon restart would give.
  std::vector<std::pair<std::uint64_t, std::string>> terminal;  // (seq, id)
  for (const auto& [id, job] : jobs_) {
    if (job->spec.tenant != tenant) continue;
    const JobState state = job->state.load(std::memory_order_acquire);
    if (state == JobState::kDone || state == JobState::kFailed) {
      terminal.emplace_back(job->seq, id);
    }
  }
  if (terminal.size() <= config_.max_finished_per_tenant) return;
  std::sort(terminal.begin(), terminal.end());
  const std::size_t excess = terminal.size() - config_.max_finished_per_tenant;
  for (std::size_t i = 0; i < excess; ++i) {
    jobs_.erase(terminal[i].second);  // streams hold shared_ptrs; they finish fine.
    kEvicted.add(1);
  }
}

void Daemon::fail_queued_jobs_locked(const std::string& reason) {
  for (const auto& job : queue_) {
    job->error = reason;
    job->state.store(JobState::kFailed, std::memory_order_release);
    --admitted_per_tenant_[job->spec.tenant];
  }
  queue_.clear();
}

// ---- introspection -----------------------------------------------------

std::vector<JobInfo> Daemon::jobs() const {
  std::vector<JobInfo> out;
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    JobInfo info;
    info.id = id;
    info.tenant = job->spec.tenant;
    info.name = job->spec.name;
    info.kind = job->spec.kind;
    info.state = job->state.load(std::memory_order_acquire);
    info.done = job->done.load(std::memory_order_relaxed);
    info.total = job->total;
    info.digest = job->digest;
    out.push_back(std::move(info));
  }
  return out;
}

std::string Daemon::status_json() const {
  const std::vector<JobInfo> infos = jobs();
  std::size_t queued = 0, running = 0, done = 0, failed = 0;
  for (const auto& info : infos) {
    switch (info.state) {
      case JobState::kQueued: ++queued; break;
      case JobState::kRunning: ++running; break;
      case JobState::kDone: ++done; break;
      case JobState::kFailed: ++failed; break;
    }
  }
  std::ostringstream out;
  out << "{\n  \"service\": {\"draining\": "
      << (draining_.load(std::memory_order_relaxed) ? "true" : "false")
      << ", \"jobs_total\": " << infos.size() << ", \"jobs_queued\": " << queued
      << ", \"jobs_running\": " << running << ", \"jobs_done\": " << done
      << ", \"jobs_failed\": " << failed << "},\n  \"jobs\": [";
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const JobInfo& info = infos[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"id\": \"" << json_escape(info.id)
        << "\", \"tenant\": \"" << json_escape(info.tenant) << "\", \"name\": \""
        << json_escape(info.name) << "\", \"kind\": \"" << json_escape(info.kind)
        << "\", \"state\": \"" << job_state_name(info.state) << "\", \"done\": " << info.done
        << ", \"total\": " << info.total << ", \"digest\": " << info.digest << "}";
  }
  out << (infos.empty() ? "]" : "\n  ]") << ",\n  \"metrics\": ";
  std::string metrics = obs::MetricsRegistry::instance().to_json();
  while (!metrics.empty() && (metrics.back() == '\n' || metrics.back() == ' ')) {
    metrics.pop_back();
  }
  out << metrics << "\n}";
  return out.str();
}

}  // namespace hwsec::core::service
