#include "sca/cpa.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sca/stats.h"
#include "sim/thread_pool.h"

namespace hwsec::sca {

namespace {

void check_set(const TraceSet& set) {
  if (set.traces.size() != set.plaintexts.size() || set.traces.size() < 4) {
    throw std::invalid_argument("trace set needs matched plaintexts and >= 4 traces");
  }
}

}  // namespace

ByteAttackResult cpa_attack_byte(const TraceSet& set, std::size_t byte_index) {
  check_set(set);
  const auto& sbox = hwsec::crypto::aes_sbox();
  const std::size_t n = set.traces.size();
  const std::size_t points = set.traces.front().size();

  // The hypothesis HW(S[pt ⊕ k]) depends on the trace only through its
  // plaintext byte, so the 256-guess sweep reduces to statistics over 256
  // plaintext-value classes: one O(n·points) pass builds per-class trace
  // sums, after which every guess costs O(256·points) regardless of n.
  // Samples are accumulated relative to the first trace (per point) so the
  // shared DC baseline cancels before Σx² can swamp the mantissa — Pearson
  // is invariant under the shift, and sxx below would otherwise lose the
  // signal entirely at a 1e9 baseline (see the Sca DC-offset tests).
  const Trace& reference = set.traces.front();
  std::vector<double> class_sums(256 * points, 0.0);
  std::array<double, 256> class_counts{};
  std::vector<double> sum_x(points, 0.0);
  std::vector<double> sum_xx(points, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    const std::uint8_t v = set.plaintexts[t][byte_index];
    class_counts[v] += 1.0;
    double* row = &class_sums[static_cast<std::size_t>(v) * points];
    const Trace& trace = set.traces[t];
    for (std::size_t p = 0; p < points; ++p) {
      const double x = trace[p] - reference[p];
      row[p] += x;
      sum_x[p] += x;
      sum_xx[p] += x * x;
    }
  }

  ByteAttackResult result;
  const double dn = static_cast<double>(n);
  for (std::uint32_t guess = 0; guess < 256; ++guess) {
    // Per-class hypothesis values and their first two moments.
    std::array<double, 256> h{};
    double sum_h = 0.0, sum_hh = 0.0;
    for (std::uint32_t v = 0; v < 256; ++v) {
      h[v] = static_cast<double>(
          hamming_weight(sbox[static_cast<std::uint8_t>(v ^ guess)]));
      sum_h += class_counts[v] * h[v];
      sum_hh += class_counts[v] * h[v] * h[v];
    }
    const double shh = sum_hh - sum_h * sum_h / dn;
    double best_abs = 0.0;
    std::size_t best_point = 0;
    if (shh > 1e-12) {
      for (std::size_t p = 0; p < points; ++p) {
        double sum_hx = 0.0;
        for (std::uint32_t v = 0; v < 256; ++v) {
          sum_hx += h[v] * class_sums[static_cast<std::size_t>(v) * points + p];
        }
        const double sxy = sum_hx - sum_h * sum_x[p] / dn;
        const double sxx = sum_xx[p] - sum_x[p] * sum_x[p] / dn;
        if (sxx <= 1e-12) {
          continue;
        }
        const double rho = std::abs(sxy / std::sqrt(sxx * shh));
        if (rho > best_abs) {
          best_abs = rho;
          best_point = p;
        }
      }
    }
    result.score_per_guess[guess] = best_abs;
    if (best_abs > result.best_score) {
      result.second_score = result.best_score;
      result.best_score = best_abs;
      result.best_guess = static_cast<std::uint8_t>(guess);
      result.best_point = best_point;
    } else if (best_abs > result.second_score) {
      result.second_score = best_abs;
    }
  }
  return result;
}

ByteAttackResult dpa_attack_byte(const TraceSet& set, std::size_t byte_index, std::uint32_t bit) {
  check_set(set);
  const auto& sbox = hwsec::crypto::aes_sbox();
  const std::size_t n = set.traces.size();
  const std::size_t points = set.traces.front().size();

  // Same class-sum reduction as CPA: the selection bit depends on the
  // trace only through its plaintext byte. Shifted like CPA — the shift
  // cancels in the difference of class means.
  const Trace& reference = set.traces.front();
  std::vector<double> class_sums(256 * points, 0.0);
  std::array<double, 256> class_counts{};
  for (std::size_t t = 0; t < n; ++t) {
    const std::uint8_t v = set.plaintexts[t][byte_index];
    class_counts[v] += 1.0;
    double* row = &class_sums[static_cast<std::size_t>(v) * points];
    const Trace& trace = set.traces[t];
    for (std::size_t p = 0; p < points; ++p) {
      row[p] += trace[p] - reference[p];
    }
  }

  ByteAttackResult result;
  std::vector<double> ones_sum(points);
  for (std::uint32_t guess = 0; guess < 256; ++guess) {
    std::fill(ones_sum.begin(), ones_sum.end(), 0.0);
    double n_ones = 0.0;
    double n_zeros = 0.0;
    std::vector<double> zeros_sum(points, 0.0);
    for (std::uint32_t v = 0; v < 256; ++v) {
      const std::uint8_t s = sbox[static_cast<std::uint8_t>(v ^ guess)];
      const double* row = &class_sums[static_cast<std::size_t>(v) * points];
      if ((s >> bit) & 1) {
        n_ones += class_counts[v];
        for (std::size_t p = 0; p < points; ++p) {
          ones_sum[p] += row[p];
        }
      } else {
        n_zeros += class_counts[v];
        for (std::size_t p = 0; p < points; ++p) {
          zeros_sum[p] += row[p];
        }
      }
    }
    double score = 0.0;
    if (n_ones > 0.5 && n_zeros > 0.5) {
      for (std::size_t p = 0; p < points; ++p) {
        score = std::max(score, std::abs(ones_sum[p] / n_ones - zeros_sum[p] / n_zeros));
      }
    }
    result.score_per_guess[guess] = score;
    if (score > result.best_score) {
      result.second_score = result.best_score;
      result.best_score = score;
      result.best_guess = static_cast<std::uint8_t>(guess);
    } else if (score > result.second_score) {
      result.second_score = score;
    }
  }
  return result;
}

// The 16 byte attacks are independent pure functions of the (shared,
// read-only) trace set, so fanning them across the pool is bit-identical
// to the sequential loop at any worker count.
KeyAttackResult cpa_attack_key(const TraceSet& set) {
  KeyAttackResult result;
  hwsec::sim::ThreadPool::shared().parallel_for(16, [&](std::size_t i) {
    result.bytes[i] = cpa_attack_byte(set, i);
    result.recovered[i] = result.bytes[i].best_guess;
  });
  return result;
}

KeyAttackResult dpa_attack_key(const TraceSet& set, std::uint32_t bit) {
  KeyAttackResult result;
  hwsec::sim::ThreadPool::shared().parallel_for(16, [&](std::size_t i) {
    result.bytes[i] = dpa_attack_byte(set, i, bit);
    result.recovered[i] = result.bytes[i].best_guess;
  });
  return result;
}

}  // namespace hwsec::sca
