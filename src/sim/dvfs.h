// Dynamic voltage and frequency scaling model with a stability envelope.
//
// CLKSCREW (Tang et al., the paper's [37]) rests on three hardware facts,
// all modeled here:
//  1. DVFS registers are software-accessible from the (untrusted) kernel
//     with no hardware interlock — set_point() accepts any value unless
//     enforce_envelope(true) is set (the mitigation knob);
//  2. frequency and voltage are SoC-global across security boundaries: a
//     normal-world kernel setting an aggressive point affects secure-world
//     computation on another core;
//  3. operating beyond the stability envelope does not halt the chip but
//     produces intermittent timing faults — modeled as a per-operation
//     fault probability that grows with the overclock margin.
//
// Energy: dynamic energy per cycle scales with C·V²; cycle time with 1/f.
// These feed the Figure-1 "energy budget" measurements.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace hwsec::sim {

struct OperatingPoint {
  double freq_mhz = 1000.0;
  double voltage = 1.0;
};

struct DvfsConfig {
  /// Vendor-rated operating points (the "OPP table").
  std::vector<OperatingPoint> rated_points{{500, 0.80}, {1000, 0.90}, {1500, 1.00},
                                           {2000, 1.10}};
  /// Stability envelope: the maximum stable frequency at voltage V is
  /// f_max(V) = slope_mhz_per_volt * (V - v_threshold). Rated points are
  /// expected to sit inside the envelope.
  double slope_mhz_per_volt = 4000.0;
  double v_threshold = 0.45;
  /// Fault-probability shape: p = 1 - exp(-margin_mhz / tau_mhz) for
  /// operation beyond the envelope.
  double tau_mhz = 400.0;
  /// Dynamic energy per cycle at 1.0 V, in nanojoules.
  double energy_per_cycle_nj_at_1v = 0.5;
};

class DvfsController {
 public:
  explicit DvfsController(DvfsConfig config = {});

  const DvfsConfig& config() const { return config_; }
  const OperatingPoint& point() const { return point_; }

  /// Programs the DVFS registers. With enforcement off (the CLKSCREW
  /// precondition) any point is accepted; with enforcement on, points
  /// outside the stability envelope throw.
  void set_point(OperatingPoint p);

  /// Selects a vendor-rated point by index.
  void set_rated_point(std::size_t index);

  /// Hardware interlock (the mitigation the CLKSCREW paper calls for).
  void enforce_envelope(bool on) { enforce_ = on; }
  bool envelope_enforced() const { return enforce_; }

  /// Maximum stable frequency at the current voltage.
  double stable_freq_mhz() const { return stable_freq_mhz(point_.voltage); }
  double stable_freq_mhz(double voltage) const {
    return config_.slope_mhz_per_volt * (voltage - config_.v_threshold);
  }

  /// MHz beyond the envelope (0 when inside).
  double overclock_margin_mhz() const;

  /// Probability that one vulnerable operation experiences a timing fault
  /// at the current point.
  double fault_probability() const;

  /// Energy per cycle at the current point (C·V² scaling).
  double energy_per_cycle_nj() const {
    return config_.energy_per_cycle_nj_at_1v * point_.voltage * point_.voltage;
  }

  /// Wall-clock nanoseconds per cycle at the current point.
  double ns_per_cycle() const { return 1000.0 / point_.freq_mhz; }

 private:
  DvfsConfig config_;
  OperatingPoint point_;
  bool enforce_ = false;
};

/// Transient-fault injector driven by a fault probability (from DVFS abuse
/// or an external glitcher). Victim computations route sensitive
/// intermediate values through corrupt(); the injector decides per call
/// whether to flip bits.
class FaultInjector {
 public:
  enum class Model : std::uint8_t {
    kSingleBit,   ///< flip one uniformly chosen bit (classic glitch model)
    kSingleByte,  ///< randomize one byte
    kStuckAtZero, ///< clear one byte (brown-out style)
  };

  explicit FaultInjector(std::uint64_t seed = 42) : rng_(seed) {}

  void set_probability(double p) { probability_ = p; }
  double probability() const { return probability_; }
  void set_model(Model m) { model_ = m; }

  /// Arms the injector for the next `n` calls only (a targeted glitch);
  /// n == 0 disarms targeting and every call is subject to `probability`.
  void arm_window(std::uint64_t skip_calls, std::uint64_t active_calls);

  /// Possibly corrupts `value`. Counts calls for window targeting.
  Word corrupt(Word value);

  std::uint64_t faults_injected() const { return faults_; }
  std::uint64_t calls() const { return calls_; }
  void reset_counters();

 private:
  bool active_now() const;

  Rng rng_;
  double probability_ = 0.0;
  Model model_ = Model::kSingleBit;
  std::uint64_t calls_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t window_start_ = 0;
  std::uint64_t window_end_ = 0;  ///< 0 = no window (always subject).
};

}  // namespace hwsec::sim
