// Physical attacks (§5) end-to-end: Kocher/Dhem timing attack, the
// Bellcore RSA-CRT fault attack, AES DFA, and CLKSCREW against the
// TrustZone secure world.
#include <gtest/gtest.h>

#include "arch/trustzone.h"
#include "attacks/physical/clkscrew.h"
#include "attacks/physical/fault_attacks.h"
#include "attacks/physical/timing_attack.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;
namespace crypto = hwsec::crypto;

namespace {

std::uint32_t bit_length(crypto::u64 v) {
  std::uint32_t bits = 0;
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

TEST(TimingAttack, RecoversExponentFromNaiveImplementation) {
  hwsec::sim::Rng rng(101);
  const auto key = crypto::rsa_generate(rng);
  const auto samples = attacks::collect_timing_samples(key, 6000, /*noise_sigma=*/2.0,
                                              /*constant_time_victim=*/false);
  auto result = attacks::timing_attack(key.n, samples, bit_length(key.d));
  attacks::score_against(result, key.d);
  EXPECT_EQ(result.recovered_d, key.d)
      << "recovered " << result.bits_correct << "/" << result.bits_decided << " bits";
}

TEST(TimingAttack, ConstantTimeLadderReducesToGuessing) {
  hwsec::sim::Rng rng(102);
  const auto key = crypto::rsa_generate(rng);
  const auto samples = attacks::collect_timing_samples(key, 6000, /*noise_sigma=*/2.0,
                                              /*constant_time_victim=*/true);
  auto result = attacks::timing_attack(key.n, samples, bit_length(key.d));
  attacks::score_against(result, key.d);
  EXPECT_NE(result.recovered_d, key.d);
  EXPECT_LT(result.correct_fraction(), 0.80)
      << "against uniform-cost exponentiation the per-bit decisions are noise";
}

TEST(TimingAttack, MoreSamplesImproveRecovery) {
  hwsec::sim::Rng rng(103);
  const auto key = crypto::rsa_generate(rng);
  const auto few = attacks::collect_timing_samples(key, 150, 2.0, false, 7);
  const auto many = attacks::collect_timing_samples(key, 8000, 2.0, false, 7);
  auto weak = attacks::timing_attack(key.n, few, bit_length(key.d));
  auto strong = attacks::timing_attack(key.n, many, bit_length(key.d));
  attacks::score_against(weak, key.d);
  attacks::score_against(strong, key.d);
  EXPECT_LT(weak.bits_correct, strong.bits_correct);
}

TEST(RsaCrtFault, OneFaultySignatureFactorsTheModulus) {
  hwsec::sim::Rng rng(104);
  const auto key = crypto::rsa_generate(rng);
  const crypto::u64 message = 0xC0FFEE % key.n;

  crypto::Instrumentation glitch;
  bool armed = true;
  glitch.fault = [&armed](std::uint32_t v) {
    if (armed) {
      armed = false;
      return v ^ 0x8u;  // one flipped bit in the p-half.
    }
    return v;
  };
  const crypto::u64 faulty = crypto::rsa_sign_crt(message, key, glitch);
  ASSERT_NE(faulty, crypto::rsa_sign_crt(message, key));

  const crypto::u64 factor = attacks::rsa_crt_fault_attack(key.n, key.e, message, faulty);
  ASSERT_NE(factor, 0u);
  EXPECT_TRUE(factor == key.p || factor == key.q);
  EXPECT_EQ(key.n % factor, 0u);
}

TEST(RsaCrtFault, CorrectSignatureYieldsNothing) {
  hwsec::sim::Rng rng(105);
  const auto key = crypto::rsa_generate(rng);
  const crypto::u64 message = 1234;
  const crypto::u64 good = crypto::rsa_sign_crt(message, key);
  EXPECT_EQ(attacks::rsa_crt_fault_attack(key.n, key.e, message, good), 0u);
}

TEST(RsaCrtFault, VerifyBeforeReleaseCountermeasureBlocksTheAttack) {
  hwsec::sim::Rng rng(106);
  const auto key = crypto::rsa_generate(rng);
  crypto::Instrumentation glitch;
  bool armed = true;
  glitch.fault = [&armed](std::uint32_t v) {
    if (armed) {
      armed = false;
      return v ^ 0x8u;
    }
    return v;
  };
  EXPECT_EQ(crypto::rsa_sign_crt_checked(0xBEEF % key.n, key, glitch), 0u)
      << "the checked path refuses to release the exploitable signature";
}

TEST(InvertKeySchedule, RoundTripsThroughExpansion) {
  const crypto::AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                              0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const auto ks = crypto::expand_key(key);
  const std::array<std::uint32_t, 4> round10 = {ks.words[40], ks.words[41], ks.words[42],
                                                ks.words[43]};
  EXPECT_EQ(attacks::invert_key_schedule(round10), key);
}

TEST(AesDfa, SingleBitFaultsRecoverTheFullKey) {
  const crypto::AesKey key = {0x10, 0xa5, 0x88, 0x69, 0xd7, 0x4b, 0xe5, 0xa3,
                              0x74, 0xcf, 0x86, 0x7c, 0xfb, 0x47, 0x38, 0x59};
  sim::FaultInjector injector(107);
  injector.set_model(sim::FaultInjector::Model::kSingleBit);
  injector.set_probability(0.25);  // per state word at the round boundary.

  crypto::Instrumentation instr;
  instr.fault = [&injector](std::uint32_t v) { return injector.corrupt(v); };
  crypto::AesTTable leaky(key, instr);
  crypto::AesTTable clean(key);

  hwsec::sim::Rng rng(108);
  std::vector<attacks::DfaPair> pairs;
  while (pairs.size() < 300) {
    crypto::AesBlock pt;
    for (auto& b : pt) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }
    const auto correct = clean.encrypt(pt);
    const auto faulty = leaky.encrypt_with_fault_round(pt, 10);
    if (faulty != correct) {
      pairs.push_back({correct, faulty});
    }
  }
  const auto result = attacks::aes_dfa_attack(pairs);
  ASSERT_TRUE(result.key_recovered)
      << "pairs consumed: " << result.pairs_consumed;
  EXPECT_EQ(result.key, key);
}

TEST(AesDfa, InsufficientPairsLeaveAmbiguity) {
  const crypto::AesKey key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  sim::FaultInjector injector(109);
  injector.set_probability(0.25);
  crypto::Instrumentation instr;
  instr.fault = [&injector](std::uint32_t v) { return injector.corrupt(v); };
  crypto::AesTTable leaky(key, instr);
  crypto::AesTTable clean(key);
  std::vector<attacks::DfaPair> pairs;
  hwsec::sim::Rng rng(110);
  while (pairs.size() < 3) {  // far too few to cover 16 positions.
    crypto::AesBlock pt;
    for (auto& b : pt) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }
    const auto correct = clean.encrypt(pt);
    const auto faulty = leaky.encrypt_with_fault_round(pt, 10);
    if (faulty != correct) {
      pairs.push_back({correct, faulty});
    }
  }
  EXPECT_FALSE(attacks::aes_dfa_attack(pairs).key_recovered);
}

class ClkscrewTest : public ::testing::Test {
 protected:
  ClkscrewTest() : machine_(sim::MachineProfile::mobile(), 111), tz_(machine_) {
    key_ = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04,
            0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c};
    tee::EnclaveImage image;
    image.name = "tz-crypto-service";
    image.code = {0x77};
    image.secret.assign(key_.begin(), key_.end());
    tz_.vendor_sign(image);
    victim_ = tz_.create_enclave(image).value;
  }

  /// The secure world's AES service: key never leaves the secure world;
  /// the computation's round-10 state flows through the SoC's (glitched)
  /// datapath, i.e. the machine's fault injector.
  std::function<crypto::AesBlock(const crypto::AesBlock&)> secure_encrypt() {
    return [this](const crypto::AesBlock& pt) {
      crypto::AesBlock ct{};
      tz_.call_enclave(victim_, 0, [this, &pt, &ct](tee::EnclaveContext& ctx) {
        crypto::AesKey key{};
        for (std::uint32_t i = 0; i < 16; ++i) {
          key[i] = ctx.read8(1 + i);
        }
        crypto::Instrumentation instr;
        instr.fault = [&ctx](std::uint32_t v) { return ctx.machine().injector().corrupt(v); };
        crypto::AesTTable aes(key, instr);
        ct = aes.encrypt_with_fault_round(pt, 10);
      });
      return ct;
    };
  }

  sim::Machine machine_;
  arch::TrustZone tz_;
  tee::EnclaveId victim_ = tee::kInvalidEnclave;
  crypto::AesKey key_;
};

TEST_F(ClkscrewTest, ExtractsSecureWorldKeyWithoutPhysicalAccess) {
  attacks::ClkscrewConfig config;
  config.attack_point = {1080.0, 0.70};  // moderately past the envelope:
  // far enough for faults, close enough that most runs fault a single word.
  const auto result = attacks::clkscrew_attack(machine_, secure_encrypt(), config);
  ASSERT_FALSE(result.blocked_by_interlock);
  EXPECT_GT(result.fault_probability, 0.0);
  ASSERT_TRUE(result.dfa.key_recovered)
      << "faulty pairs: " << result.faulty_pairs << ", consumed: "
      << result.dfa.pairs_consumed;
  EXPECT_EQ(result.dfa.key, key_)
      << "normal-world software extracted the secure-world key (CLKSCREW)";
}

TEST_F(ClkscrewTest, HardwareInterlockBlocksTheAttack) {
  machine_.dvfs().enforce_envelope(true);
  attacks::ClkscrewConfig config;
  config.attack_point = {1080.0, 0.70};
  const auto result = attacks::clkscrew_attack(machine_, secure_encrypt(), config);
  EXPECT_TRUE(result.blocked_by_interlock);
  EXPECT_FALSE(result.dfa.key_recovered);
}

TEST_F(ClkscrewTest, RatedPointsInduceNoFaults) {
  attacks::ClkscrewConfig config;
  config.attack_point = {1500.0, 1.00};  // a rated point: inside envelope.
  config.max_invocations = 400;
  const auto result = attacks::clkscrew_attack(machine_, secure_encrypt(), config);
  EXPECT_EQ(result.fault_probability, 0.0);
  EXPECT_EQ(result.faulty_pairs, 0u);
  EXPECT_FALSE(result.dfa.key_recovered);
}

}  // namespace
