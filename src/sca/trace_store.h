// Chunked on-disk trace store: the bounded-memory backing for
// million-trace SCA campaigns.
//
// A store is a directory of fixed-size binary chunk files plus a tiny
// manifest. Capture appends records (one power trace + its plaintext and
// ciphertext) as they are produced; analyses that are single-pass (the
// sca/streaming accumulators) never need the store at all, and analyses
// that genuinely need a second pass (second-round cache key recovery,
// re-scoring under a different leakage model) replay it sequentially —
// peak RSS is one chunk, independent of campaign size.
//
// On-disk format (native endianness; the store is a scratch artifact of
// one host, not an interchange format):
//
//   <dir>/manifest           MANIFEST_MAGIC "HWTM", version, record_bytes,
//                            records_per_chunk, total records, chunk count,
//                            user_tag (TraceStore: samples per trace),
//                            FNV-1a-64 of the preceding fields.
//   <dir>/chunk-NNNNNN.hwt   CHUNK_MAGIC "HWTC", version, chunk index,
//                            record count, record_bytes, FNV-1a-64 of the
//                            payload, then record_count fixed-size records.
//
// Every read path validates magic, version, geometry and checksum and
// throws std::runtime_error with the offending path — a truncated or
// bit-flipped chunk is rejected, never crashed on (see the TraceStore
// corruption tests). The manifest is written via write-to-temp + rename,
// so a capture killed mid-run leaves no manifest and the directory reads
// as "not a store" rather than as a silently shorter one.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sca/trace.h"

namespace hwsec::sca {

/// FNV-1a 64-bit — the same cheap content checksum the checkpoint format
/// uses; collision resistance is irrelevant, bit-flip detection is the job.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Low-level fixed-record chunked writer, shared by the trace store and
/// the cache-attack observation log. Not thread-safe: one writer per
/// store, fed in record order (the batched capture drivers already
/// serialize batches by index).
class ChunkedRecordWriter {
 public:
  /// Creates/truncates a store at `dir` (the directory is created if
  /// missing). `user_tag` is an opaque u64 the typed wrapper interprets.
  ChunkedRecordWriter(std::string dir, std::size_t record_bytes,
                      std::size_t records_per_chunk, std::uint64_t user_tag = 0);
  ~ChunkedRecordWriter();
  ChunkedRecordWriter(const ChunkedRecordWriter&) = delete;
  ChunkedRecordWriter& operator=(const ChunkedRecordWriter&) = delete;

  void append(const std::uint8_t* record);
  std::size_t size() const { return total_; }
  std::size_t record_bytes() const { return record_bytes_; }

  /// Flushes the open chunk and atomically writes the manifest. The store
  /// is unreadable until this runs. Idempotent; also invoked by the
  /// destructor (best-effort) if the caller forgot.
  void finalize();

 private:
  void open_chunk();
  void close_chunk();

  std::string dir_;
  std::size_t record_bytes_ = 0;
  std::size_t records_per_chunk_ = 0;
  std::uint64_t user_tag_ = 0;
  std::size_t total_ = 0;
  std::size_t chunks_ = 0;
  std::vector<std::uint8_t> buffer_;  ///< records of the open chunk.
  bool finalized_ = false;
};

/// Sequential replay reader. Construction validates the manifest; replay
/// validates each chunk (magic/version/geometry/checksum) before
/// delivering its records. Peak memory: one chunk.
class ChunkedRecordReader {
 public:
  explicit ChunkedRecordReader(std::string dir);

  std::size_t size() const { return total_; }
  std::size_t record_bytes() const { return record_bytes_; }
  std::uint64_t user_tag() const { return user_tag_; }

  /// Calls `visit(record_index, record)` for every record in order.
  void replay(const std::function<void(std::size_t, const std::uint8_t*)>& visit) const;

 private:
  std::string dir_;
  std::size_t record_bytes_ = 0;
  std::size_t records_per_chunk_ = 0;
  std::size_t total_ = 0;
  std::size_t chunks_ = 0;
  std::uint64_t user_tag_ = 0;
};

/// Typed trace store: record = plaintext[16] + ciphertext[16] + samples
/// (f64 × samples_per_trace). All traces in one store share a length —
/// the same rectangular-matrix requirement the statistics already impose.
class TraceStoreWriter {
 public:
  /// `traces_per_chunk` 0 picks a chunk size of ~4 MiB worth of traces.
  TraceStoreWriter(const std::string& dir, std::size_t samples_per_trace,
                   std::size_t traces_per_chunk = 0);

  void append(std::span<const double> samples, const std::array<std::uint8_t, 16>& plaintext,
              const std::array<std::uint8_t, 16>& ciphertext);
  /// Appends a whole capture batch (validates the batch is rectangular at
  /// the store's trace length).
  void append_batch(const TraceSet& batch);

  std::size_t size() const { return writer_.size(); }
  void finalize() { writer_.finalize(); }

 private:
  std::size_t samples_ = 0;
  ChunkedRecordWriter writer_;
  std::vector<std::uint8_t> scratch_;
};

class TraceStoreReader {
 public:
  explicit TraceStoreReader(const std::string& dir);

  std::size_t size() const { return reader_.size(); }
  std::size_t samples_per_trace() const { return samples_; }

  struct Record {
    std::size_t index = 0;
    std::span<const double> samples;
    std::array<std::uint8_t, 16> plaintext{};
    std::array<std::uint8_t, 16> ciphertext{};
  };
  /// Sequential replay in append order; the samples span is only valid
  /// inside the visit callback.
  void replay(const std::function<void(const Record&)>& visit) const;

 private:
  std::size_t samples_ = 0;
  ChunkedRecordReader reader_;
};

/// Materializes a whole store into RAM — the differential-reference path
/// (and the round-trip oracle in tests). Exact: doubles survive bit for
/// bit.
TraceSet load_trace_set(const std::string& dir);

}  // namespace hwsec::sca
