#include "arch/sgx.h"

#include "sim/sim_error.h"

namespace hwsec::arch {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace crypto = hwsec::crypto;

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Sgx::Sgx(sim::Machine& machine, Config config)
    : Architecture(machine), config_(config) {
  epc_base_ = machine.alloc_frames(config_.epc_pages);
  epcm_.assign(config_.epc_pages, EpcmEntry{});

  // Platform (report) key: fused at manufacturing, reachable only by
  // microcode — modeled as private state of this object.
  platform_key_.resize(32);
  for (auto& b : platform_key_) {
    b = static_cast<std::uint8_t>(machine.rng().next_u32());
  }
  attestation_key_ = crypto::rsa_generate(machine.rng());

  // MEE: XOR keystream over the EPC range, CPU path only.
  machine.bus().set_transform(
      [this](sim::PhysAddr addr, sim::Word value, sim::DomainId, bool) -> sim::Word {
        if (in_epc(addr)) {
          return value ^ mee_keystream(addr);
        }
        return value;
      });

  // EPCM enforcement on every core's page walker.
  for (std::uint32_t c = 0; c < machine.num_cores(); ++c) {
    machine.cpu(static_cast<sim::CoreId>(c))
        .mmu()
        .set_walk_check([this](sim::VirtAddr va, const sim::Translation& t, sim::AccessType type,
                               sim::Privilege priv, sim::DomainId domain) {
          return epcm_walk_check(va, t, type, priv, domain);
        });
  }

  if (config_.provision_quoting_enclave) {
    tee::EnclaveImage qe;
    qe.name = "intel-quoting-enclave";
    qe.code = {0x51, 0x45};  // measured identity stub.
    // The attestation private key material, provisioned into EPC memory.
    for (int i = 0; i < 8; ++i) {
      qe.secret.push_back(static_cast<std::uint8_t>(attestation_key_.d >> (8 * i)));
    }
    const auto created = create_enclave(qe);
    if (!created.ok()) {
      throw SimError(hwsec::ErrorKind::kInternalError,
                     "SGX: failed to provision quoting enclave: " + tee::to_string(created.error))
          .with_machine(machine_->profile().name);
    }
    quoting_enclave_id_ = created.value;
  }
}

Sgx::~Sgx() {
  machine_->bus().clear_transform();
  for (std::uint32_t c = 0; c < machine_->num_cores(); ++c) {
    machine_->cpu(static_cast<sim::CoreId>(c)).mmu().set_walk_check(nullptr);
  }
}

const tee::ArchitectureTraits& Sgx::traits() const {
  static const tee::ArchitectureTraits kTraits{
      .name = "Intel SGX",
      .reference = "[10][16]",
      .target = sim::DeviceClass::kServer,
      .tcb = tee::TcbType::kHardwareAndMicrocode,
      .enclave_capacity = -1,
      .memory_encryption = true,
      .dma_defense = tee::DmaDefense::kEncryptedMemory,
      .cache_defense = tee::CacheDefense::kNone,
      .secure_peripheral_channels = false,
      .attestation = tee::AttestationSupport::kLocalAndRemote,
      .code_isolation = true,
      .real_time_capable = false,
      .secure_boot = false,
      .secure_storage = true,  // sealing.
      .vendor_trust_required = true,  // launch control / licensing.
      .new_hardware_required = true,
      .considers_cache_sca = false,
      .considers_dma = true,
  };
  return kTraits;
}

tee::EnclaveError Sgx::bind_va(tee::EnclaveId id, std::uint32_t page_index, sim::VirtAddr va) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr || page_index >= info->pages) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  const sim::PhysAddr frame = sim::page_base(info->phys_of(page_index * sim::kPageSize));
  epcm_[(frame - epc_base_) / sim::kPageSize].expected_va = sim::page_base(va);
  return tee::EnclaveError::kOk;
}

sim::Word Sgx::mee_keystream(sim::PhysAddr addr) const {
  return static_cast<sim::Word>(splitmix(config_.mee_key_seed ^ (addr & ~3u)));
}

void Sgx::encrypt_range_in_place(sim::PhysAddr base, std::uint32_t bytes) {
  for (sim::PhysAddr a = base; a < base + bytes; a += 4) {
    machine_->memory().write32(a, machine_->memory().read32(a) ^ mee_keystream(a));
  }
}

std::optional<std::uint32_t> Sgx::find_free_epc_run(std::uint32_t pages) const {
  std::uint32_t run = 0;
  for (std::uint32_t i = 0; i < epcm_.size(); ++i) {
    if (!epcm_[i].valid && !epcm_[i].swapped_out) {
      if (++run == pages) {
        return i + 1 - pages;
      }
    } else {
      run = 0;
    }
  }
  return std::nullopt;
}

tee::Expected<tee::EnclaveId> Sgx::create_enclave(const tee::EnclaveImage& image) {
  const std::uint32_t pages = image_pages(image);
  const auto first = find_free_epc_run(pages);
  if (!first.has_value()) {
    return {.value = tee::kInvalidEnclave, .error = tee::EnclaveError::kOutOfMemory};
  }
  const sim::PhysAddr base = epc_base_ + *first * sim::kPageSize;

  tee::EnclaveInfo info;
  info.name = image.name;
  info.measurement = tee::measure_image(image);
  info.domain = next_domain_++;
  info.base = base;
  info.pages = pages;
  info.initialized = true;
  tee::EnclaveInfo& registered = register_enclave(std::move(info));

  for (std::uint32_t p = 0; p < pages; ++p) {
    epcm_[*first + p] = {.owner = registered.id, .expected_va = 0, .valid = true,
                         .swapped_out = false};
  }
  // ECREATE/EADD: page contents enter the EPC through the MEE, so DRAM
  // holds ciphertext.
  load_image(image, registered);
  encrypt_range_in_place(base, pages * sim::kPageSize);
  return {.value = registered.id, .error = tee::EnclaveError::kOk};
}

tee::EnclaveError Sgx::destroy_enclave(tee::EnclaveId id) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  // EREMOVE scrubs the frames and their cached copies.
  machine_->memory().fill(info->base, info->pages * sim::kPageSize, 0);
  for (sim::PhysAddr a = info->base; a < info->base + info->pages * sim::kPageSize; a += 64) {
    machine_->caches().flush_line(a);
  }
  for (auto& entry : epcm_) {
    if (entry.owner == id) {
      entry = EpcmEntry{};
    }
  }
  unregister_enclave(id);
  return tee::EnclaveError::kOk;
}

tee::EnclaveError Sgx::call_enclave(tee::EnclaveId id, sim::CoreId core, const Service& service) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  sim::Cpu& cpu = machine_->cpu(core);
  const sim::DomainId saved_domain = cpu.domain();
  const sim::Privilege saved_priv = cpu.privilege();

  // EENTER. SGX does *not* flush any predictor or cache state on entry —
  // the paper's §4.1 point that enclaves get no architectural cache
  // side-channel protection.
  cpu.switch_context(info->domain, sim::Privilege::kUser, cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(80);  // EENTER cost.

  tee::EnclaveContext ctx(*machine_, core, *info);
  service(ctx);

  // EEXIT (+ optional post-Foreshadow L1D flush mitigation).
  if (config_.flush_l1_on_exit) {
    machine_->caches().flush_core_private(core);
  }
  cpu.switch_context(saved_domain, saved_priv, cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(80);
  return tee::EnclaveError::kOk;
}

tee::Expected<tee::AttestationReport> Sgx::attest(tee::EnclaveId id, const tee::Nonce& nonce) {
  const tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  return {.value = tee::make_report(platform_key_, info->measurement, nonce),
          .error = tee::EnclaveError::kOk};
}

std::vector<std::uint8_t> Sgx::report_verification_key() const { return platform_key_; }

const tee::EnclaveInfo* Sgx::quoting_enclave() const { return enclave(quoting_enclave_id_); }

sim::PhysAddr Sgx::quoting_key_phys() const {
  const tee::EnclaveInfo* qe = quoting_enclave();
  if (qe == nullptr) {
    return 0;
  }
  // Key bytes sit right after the (2-byte) code in the image layout.
  return qe->base + 2;
}

tee::Expected<tee::Quote> Sgx::quote(tee::EnclaveId id, const tee::Nonce& nonce) {
  if (quoting_enclave_id_ == tee::kInvalidEnclave) {
    return {.value = {}, .error = tee::EnclaveError::kUnsupported};
  }
  const auto report = attest(id, nonce);
  if (!report.ok()) {
    return {.value = {}, .error = report.error};
  }
  // The quoting enclave reads its private key from its own EPC memory
  // (decrypted on the CPU path) and signs the report.
  crypto::u64 d = 0;
  tee::EnclaveError err = call_enclave(
      quoting_enclave_id_, 0, [&d](tee::EnclaveContext& ctx) {
        for (int i = 7; i >= 0; --i) {
          d = (d << 8) | ctx.read8(2 + static_cast<std::uint32_t>(i));
        }
      });
  if (err != tee::EnclaveError::kOk) {
    return {.value = {}, .error = err};
  }
  if (d != attestation_key_.d) {
    return {.value = {}, .error = tee::EnclaveError::kVerificationFailed};
  }
  return {.value = tee::make_quote(report.value, attestation_key_),
          .error = tee::EnclaveError::kOk};
}

namespace {

/// Derives an identity-bound key: HMAC(platform_secret, label ‖ identity).
std::vector<std::uint8_t> derive_key(std::span<const std::uint8_t> platform_key,
                                     const std::string& label,
                                     const crypto::Sha256Digest& identity) {
  std::vector<std::uint8_t> info(label.begin(), label.end());
  info.insert(info.end(), identity.begin(), identity.end());
  const auto key = crypto::hmac_sha256(platform_key, info);
  return {key.begin(), key.end()};
}

}  // namespace

tee::Expected<tee::AttestationReport> Sgx::local_report(tee::EnclaveId source,
                                                        tee::EnclaveId target,
                                                        const tee::Nonce& nonce) {
  const tee::EnclaveInfo* src = find_enclave(source);
  const tee::EnclaveInfo* dst = find_enclave(target);
  if (src == nullptr || dst == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  // EREPORT: the MAC key is derived from the TARGET's identity, so only
  // the target (via EGETKEY) can check it.
  const auto report_key = derive_key(platform_key_, "sgx-report-key", dst->measurement);
  return {.value = tee::make_report(report_key, src->measurement, nonce),
          .error = tee::EnclaveError::kOk};
}

bool Sgx::verify_local_report(tee::EnclaveId target, const tee::AttestationReport& report,
                              const tee::Nonce& nonce) const {
  const tee::EnclaveInfo* dst = enclave(target);
  if (dst == nullptr) {
    return false;
  }
  const auto report_key = derive_key(platform_key_, "sgx-report-key", dst->measurement);
  return tee::verify_report(report_key, report, nonce);
}

tee::Expected<Sgx::SealedBlob> Sgx::seal(tee::EnclaveId id, std::span<const std::uint8_t> data) {
  const tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  const auto seal_key = derive_key(platform_key_, "sgx-seal-key", info->measurement);
  SealedBlob blob;
  blob.sealer_measurement = info->measurement;
  blob.ciphertext.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    blob.ciphertext[i] = static_cast<std::uint8_t>(data[i] ^ seal_key[i % seal_key.size()]);
  }
  blob.mac = crypto::hmac_sha256(seal_key, blob.ciphertext);
  return {.value = std::move(blob), .error = tee::EnclaveError::kOk};
}

tee::Expected<std::vector<std::uint8_t>> Sgx::unseal(tee::EnclaveId id, const SealedBlob& blob) {
  const tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  if (!crypto::digest_equal(info->measurement, blob.sealer_measurement)) {
    return {.value = {}, .error = tee::EnclaveError::kVerificationFailed};
  }
  const auto seal_key = derive_key(platform_key_, "sgx-seal-key", info->measurement);
  if (!crypto::digest_equal(crypto::hmac_sha256(seal_key, blob.ciphertext), blob.mac)) {
    return {.value = {}, .error = tee::EnclaveError::kVerificationFailed};
  }
  std::vector<std::uint8_t> plain(blob.ciphertext.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(blob.ciphertext[i] ^ seal_key[i % seal_key.size()]);
  }
  return {.value = std::move(plain), .error = tee::EnclaveError::kOk};
}

tee::EnclaveError Sgx::ewb(tee::EnclaveId id, std::uint32_t page_index) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  if (page_index >= info->pages) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  const sim::PhysAddr page = info->base + page_index * sim::kPageSize;
  const std::uint32_t epcm_index = (page - epc_base_) / sim::kPageSize;
  if (epcm_[epcm_index].swapped_out) {
    return tee::EnclaveError::kNotInitialized;
  }
  std::vector<std::uint8_t> blob(sim::kPageSize);
  machine_->memory().read_block(page, blob);  // already MEE ciphertext.
  swapped_pages_[(static_cast<std::uint64_t>(id) << 32) | page_index] = std::move(blob);
  machine_->memory().fill(page, sim::kPageSize, 0);
  for (sim::PhysAddr a = page; a < page + sim::kPageSize; a += 64) {
    machine_->caches().flush_line(a);
  }
  epcm_[epcm_index].swapped_out = true;
  epcm_[epcm_index].valid = false;
  return tee::EnclaveError::kOk;
}

tee::EnclaveError Sgx::eldu(tee::EnclaveId id, std::uint32_t page_index, sim::CoreId core) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  const auto it = swapped_pages_.find((static_cast<std::uint64_t>(id) << 32) | page_index);
  if (it == swapped_pages_.end()) {
    return tee::EnclaveError::kNotInitialized;
  }
  const sim::PhysAddr page = info->base + page_index * sim::kPageSize;
  machine_->memory().write_block(page, it->second);
  swapped_pages_.erase(it);
  const std::uint32_t epcm_index = (page - epc_base_) / sim::kPageSize;
  epcm_[epcm_index].swapped_out = false;
  epcm_[epcm_index].valid = true;
  // The ELDU decryption pipeline streams the page through the cache: the
  // plaintext lines land in `core`'s L1D. This is the documented lever
  // Foreshadow uses to make arbitrary enclave pages L1-resident ([38]).
  for (sim::PhysAddr a = page; a < page + sim::kPageSize; a += 64) {
    machine_->touch(core, info->domain, a, sim::AccessType::kRead);
  }
  // The post-Foreshadow microcode flushes L1D at every SGX boundary —
  // EEXIT/AEX and the paging instructions alike — so staged plaintext
  // never survives into attacker execution.
  if (config_.flush_l1_on_exit) {
    machine_->caches().flush_core_private(core);
  }
  return tee::EnclaveError::kOk;
}

sim::Fault Sgx::epcm_walk_check(sim::VirtAddr va, const sim::Translation& t,
                                sim::AccessType /*type*/, sim::Privilege /*priv*/,
                                sim::DomainId domain) const {
  if (!in_epc(t.phys)) {
    return sim::Fault::kNone;  // ordinary memory: no EPCM involvement.
  }
  const std::uint32_t index = (t.phys - epc_base_) / sim::kPageSize;
  const EpcmEntry& entry = epcm_[index];
  if (!entry.valid) {
    return sim::Fault::kSecurityViolation;
  }
  const auto it = enclaves_.find(entry.owner);
  if (it == enclaves_.end() || it->second.domain != domain) {
    // Abort-page semantics in real SGX (reads return ~0 without faulting);
    // modeled as a security fault — either way, no data.
    return sim::Fault::kSecurityViolation;
  }
  if (entry.expected_va != 0 && sim::page_base(va) != entry.expected_va) {
    return sim::Fault::kSecurityViolation;
  }
  return sim::Fault::kNone;
}

}  // namespace hwsec::arch
