#include "sim/memory.h"

#include <algorithm>
#include <cassert>

namespace hwsec::sim {

PhysicalMemory::PhysicalMemory(std::uint32_t bytes) {
  const std::uint32_t rounded = (bytes + kPageSize - 1) & ~kPageOffsetMask;
  data_.assign(rounded, 0);
}

std::uint8_t PhysicalMemory::read8(PhysAddr addr) const {
  assert(contains(addr));
  return data_[addr];
}

void PhysicalMemory::write8(PhysAddr addr, std::uint8_t value) {
  assert(contains(addr));
  data_[addr] = value;
}

Word PhysicalMemory::read32(PhysAddr addr) const {
  assert(contains(addr, 4));
  return static_cast<Word>(data_[addr]) | static_cast<Word>(data_[addr + 1]) << 8 |
         static_cast<Word>(data_[addr + 2]) << 16 | static_cast<Word>(data_[addr + 3]) << 24;
}

void PhysicalMemory::write32(PhysAddr addr, Word value) {
  assert(contains(addr, 4));
  data_[addr] = static_cast<std::uint8_t>(value);
  data_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
  data_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
  data_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
}

void PhysicalMemory::read_block(PhysAddr addr, std::span<std::uint8_t> out) const {
  assert(contains(addr, static_cast<std::uint32_t>(out.size())));
  std::copy_n(data_.begin() + addr, out.size(), out.begin());
}

void PhysicalMemory::write_block(PhysAddr addr, std::span<const std::uint8_t> in) {
  assert(contains(addr, static_cast<std::uint32_t>(in.size())));
  std::copy(in.begin(), in.end(), data_.begin() + addr);
}

void PhysicalMemory::fill(PhysAddr addr, std::uint32_t len, std::uint8_t value) {
  assert(contains(addr, len));
  std::fill_n(data_.begin() + addr, len, value);
}

}  // namespace hwsec::sim
