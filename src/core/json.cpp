#include "core/json.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace hwsec::core {

std::string json_escape(std::string_view text) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out.push_back(kHex[u >> 4]);
          out.push_back(kHex[u & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

bool JsonValue::as_u64(std::uint64_t& out) const {
  if (type != Type::kNumber || raw_number.empty() || raw_number[0] == '-') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw_number.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return false;  // fractional/exponent tokens fail here by design.
  }
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool JsonValue::as_i64(std::int64_t& out) const {
  if (type != Type::kNumber || raw_number.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(raw_number.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return false;
  }
  out = static_cast<std::int64_t>(v);
  return true;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    if (!value(out, 0)) {
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing bytes after document");
    }
    return true;
  }

 private:
  bool fail(const char* reason) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(reason) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t n) {
    if (text_.size() - pos_ < n || text_.compare(pos_, n, word) != 0) {
      return fail("bad literal");
    }
    pos_ += n;
    return true;
  }

  bool hex4(std::uint32_t& out) {
    if (text_.size() - pos_ < 4) {
      return fail("truncated \\u escape");
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape digit");
      }
    }
    return true;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) {
            return false;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair required.
            if (text_.size() - pos_ < 2 || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!hex4(low)) {
              return false;
            }
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return fail("bad number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac) {
        return fail("bad fraction");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp) {
        return fail("bad exponent");
      }
    }
    out.type = JsonValue::Type::kNumber;
    out.raw_number.assign(text_, start, pos_ - start);
    out.number = std::strtod(out.raw_number.c_str(), nullptr);
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      return fail("nesting too deep");
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out.type = JsonValue::Type::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!string(key)) {
            return false;
          }
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return fail("expected ':'");
          }
          ++pos_;
          JsonValue member;
          if (!value(member, depth + 1)) {
            return false;
          }
          out.object.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) {
            return fail("unterminated object");
          }
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        out.type = JsonValue::Type::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue element;
          if (!value(element, depth + 1)) {
            return false;
          }
          out.array.push_back(std::move(element));
          skip_ws();
          if (pos_ >= text_.size()) {
            return fail("unterminated array");
          }
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null", 4);
      default:
        return number(out);
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  out = JsonValue{};
  return Parser(text, error).parse(out);
}

}  // namespace hwsec::core
