// Figure-1 evaluation engine: regenerates the paper's adversary-model ×
// platform importance matrix from *measurements on the simulator*, not
// from hard-coded shading.
//
// Measured per platform class (server / mobile / embedded):
//  * performance      — MIPS of a reference workload program;
//  * energy           — nJ per instruction of the same workload;
//  * microarchitectural attack success — Spectre-PHT, Spectre-BTB,
//    Meltdown, Foreshadow-class fault forwarding, and an LLC Prime+Probe
//    run against the platform's machine model;
//  * classical physical attack success — CPA on an unprotected AES and a
//    voltage/frequency glitch campaign.
//
// Two quantities are modeled, not measured, and documented as such:
//  * remote/local applicability: §2 states both "are applicable to all
//    types of computing platforms" — constants;
//  * physical *exposure*: how plausibly an adversary gets close to the
//    device (servers sit in locked rooms, IoT devices are in the field).
//    Importance(physical) = exposure × measured success.
#pragma once

#include <string>
#include <vector>

#include "core/machine_pool.h"
#include "sim/machine.h"

namespace hwsec::core {

/// One attack actually executed against a platform model.
struct AttackProbe {
  std::string name;
  bool applicable = false;  ///< the hardware feature it needs exists.
  bool succeeded = false;
  std::string detail;
};

struct PlatformEvaluation {
  std::string platform;
  hwsec::sim::DeviceClass device_class{};

  // Measured.
  double mips = 0.0;
  double nj_per_instruction = 0.0;
  std::vector<AttackProbe> uarch_probes;
  std::vector<AttackProbe> physical_probes;
  double uarch_success_rate = 0.0;
  double physical_success_rate = 0.0;

  // Modeled (documented above).
  double physical_exposure = 0.0;

  /// Probes that failed outright (threw), as "task: SimError text". A
  /// failed probe no longer sinks the whole evaluation: its slot keeps the
  /// zero/false defaults and the failure is reported here instead.
  std::vector<std::string> errors;

  // Figure-1 importance levels, 0 (light) .. 3 (dark).
  int remote = 3;
  int local = 3;
  int classical_physical = 0;
  int microarchitectural = 0;
  int performance = 0;
  int energy_budget = 0;
};

/// Runs the reference workload + attack probes for one platform class.
/// The workload and each probe obtain their own Machine from a fixed
/// per-probe seed and run concurrently on `workers` threads (0 = host
/// default); results are bit-identical at any worker count. With
/// `machines` supplied, probes lease reset-reused machines from the pool
/// (bit-identical to fresh construction); repeated evaluations then skip
/// the per-probe Machine construction cost.
PlatformEvaluation evaluate_platform(hwsec::sim::DeviceClass device_class,
                                     std::uint64_t seed = 42, unsigned workers = 0,
                                     MachinePool* machines = nullptr);

/// All three Figure-1 columns, evaluated concurrently (deterministic —
/// each platform's evaluation depends only on (device_class, seed)). A
/// pool created per call (or the caller's, when supplied) backs all
/// probe machines.
std::vector<PlatformEvaluation> evaluate_all_platforms(std::uint64_t seed = 42,
                                                       unsigned workers = 0,
                                                       MachinePool* machines = nullptr);

/// Renders the matrix in the paper's layout (rows = adversary models +
/// requirements, columns = platforms), one shade character per level.
std::string render_figure1(const std::vector<PlatformEvaluation>& columns);

}  // namespace hwsec::core
