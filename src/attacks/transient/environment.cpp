#include "attacks/transient/environment.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;

UserProcess::UserProcess(sim::Machine& machine, sim::CoreId core, sim::DomainId domain)
    : machine_(&machine),
      core_(core),
      domain_(domain),
      asid_(machine.allocate_asid()),
      aspace_(machine.create_address_space()) {}

sim::PhysAddr UserProcess::map_new(sim::VirtAddr va, std::uint32_t pages, sim::Word flags) {
  const sim::PhysAddr base = machine_->alloc_frames(pages);
  for (std::uint32_t p = 0; p < pages; ++p) {
    aspace_.map(va + p * sim::kPageSize, base + p * sim::kPageSize, flags);
  }
  return base;
}

void UserProcess::map(sim::VirtAddr va, sim::PhysAddr pa, sim::Word flags) {
  aspace_.map(va, pa, flags);
}

void UserProcess::load_program(const sim::Program& program) {
  const sim::VirtAddr first = sim::page_base(program.base);
  const sim::VirtAddr last = sim::page_base(program.end() - 1);
  const std::uint32_t pages = (last - first) / sim::kPageSize + 1;
  map_new(first, pages, sim::pte::kUser | sim::pte::kExecutable);
  cpu().load_program(program, asid_);
}

void UserProcess::activate(sim::Privilege priv) {
  cpu().switch_context(domain_, priv, aspace_.root(), asid_);
}

void UserProcess::setup_probe_array() {
  if (probe_phys_ != 0) {
    return;
  }
  const std::uint32_t bytes = 256 * kProbeStride;
  const std::uint32_t pages = (bytes + sim::kPageSize - 1) / sim::kPageSize;
  probe_phys_ = map_new(kProbeBase, pages, sim::pte::kUser | sim::pte::kWritable);
}

void UserProcess::flush_probe() {
  machine_->flush_lines(probe_phys_, kProbeStride, 256);
}

std::optional<std::uint8_t> UserProcess::hottest_probe_line(sim::Cycle hit_threshold) {
  std::optional<std::uint8_t> hot;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const auto outcome = machine_->touch(core_, domain_, probe_phys_ + i * kProbeStride);
    if (machine_->observe_latency(outcome.latency) < hit_threshold) {
      if (hot.has_value()) {
        return std::nullopt;  // more than one hot line: garbage.
      }
      hot = static_cast<std::uint8_t>(i);
    }
  }
  return hot;
}

}  // namespace hwsec::attacks
