#include "tee/secure_boot.h"

namespace hwsec::tee {

namespace crypto = hwsec::crypto;

crypto::u64 measurement_message(const crypto::Sha256Digest& digest, crypto::u64 modulus) {
  crypto::u64 m = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    m = (m << 8) | digest[i];
  }
  return m % modulus;
}

BootStage make_signed_stage(const std::string& name, std::vector<std::uint8_t> image,
                            const crypto::RsaKeyPair& vendor_key) {
  BootStage stage;
  stage.name = name;
  stage.image = std::move(image);
  crypto::Sha256 h;
  h.update(stage.name);
  h.update(stage.image);
  stage.signature =
      crypto::rsa_sign_crt(measurement_message(h.finalize(), vendor_key.n), vendor_key);
  return stage;
}

BootResult SecureBootChain::boot(const std::vector<BootStage>& stages) const {
  BootResult result;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    crypto::Sha256 h;
    h.update(stages[i].name);
    h.update(stages[i].image);
    const crypto::Sha256Digest measurement = h.finalize();
    const crypto::u64 expected = measurement_message(measurement, n_);
    if (crypto::powmod(stages[i].signature, e_, n_) != expected) {
      result.ok = false;
      result.failed_stage = i;
      return result;  // refuse to hand off control.
    }
    result.measurements.push_back(measurement);
  }
  result.ok = true;
  return result;
}

}  // namespace hwsec::tee
