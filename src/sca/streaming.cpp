#include "sca/streaming.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sca/stats.h"
#include "sim/thread_pool.h"

namespace hwsec::sca {

namespace {

void check_span(std::span<const double> samples, std::size_t points) {
  if (samples.size() != points) {
    throw std::invalid_argument("streaming accumulator: trace has " +
                                std::to_string(samples.size()) + " points, expected " +
                                std::to_string(points));
  }
}

void check_batch(const TraceSet& batch) {
  if (batch.traces.size() != batch.plaintexts.size()) {
    throw std::invalid_argument("streaming accumulator: batch needs one plaintext per trace");
  }
}

void check_points_match(std::size_t a, std::size_t b) {
  if (a != b) {
    throw std::invalid_argument("streaming merge: point counts differ (" + std::to_string(a) +
                                " vs " + std::to_string(b) + ")");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PopulationAccumulator

PopulationAccumulator::PopulationAccumulator(std::size_t points)
    : shift_(points, 0.0), s1_(points), s2_(points) {}

void PopulationAccumulator::add(std::span<const double> samples) {
  check_span(samples, points());
  if (n_ == 0) {
    // First trace anchors the DC shift; its own shifted contribution is
    // exactly zero, so only the count changes.
    std::copy(samples.begin(), samples.end(), shift_.begin());
    n_ = 1;
    return;
  }
  for (std::size_t p = 0; p < shift_.size(); ++p) {
    const double x = samples[p] - shift_[p];
    s1_[p].add(x);
    s2_[p].add(x * x);
  }
  ++n_;
}

void PopulationAccumulator::merge(const PopulationAccumulator& other) {
  check_points_match(points(), other.points());
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;  // adopt the other basis wholesale — exact.
    return;
  }
  const double dn = static_cast<double>(other.n_);
  for (std::size_t p = 0; p < shift_.size(); ++p) {
    // Rebase Σ(x−σ') and Σ(x−σ')² onto this shift σ: with d = σ'−σ,
    //   Σ(x−σ)  = S1' + n'·d
    //   Σ(x−σ)² = S2' + 2d·S1' + n'·d²
    const double d = other.shift_[p] - shift_[p];
    s1_[p].add(other.s1_[p]);
    s1_[p].add(dn * d);
    s2_[p].add(other.s2_[p]);
    s2_[p].add(2.0 * d * other.s1_[p].sum);
    s2_[p].add(dn * d * d);
  }
  n_ += other.n_;
}

double PopulationAccumulator::mean(std::size_t p) const {
  if (n_ == 0) {
    return 0.0;
  }
  return shift_.at(p) + s1_.at(p).sum / static_cast<double>(n_);
}

double PopulationAccumulator::variance(std::size_t p) const {
  if (n_ < 2) {
    return 0.0;
  }
  const double dn = static_cast<double>(n_);
  // Unbiased: (Σx² − (Σx)²/n) / (n−1) over the shifted values.
  const double ss = s2_.at(p).sum - s1_.at(p).sum * s1_.at(p).sum / dn;
  return std::max(0.0, ss) / (dn - 1.0);
}

// ---------------------------------------------------------------------------
// StreamingWelchT / StreamingSnr

double StreamingWelchT::max_t() const {
  const auto& a = populations_[0];
  const auto& b = populations_[1];
  if (a.traces() < 2 || b.traces() < 2) {
    throw std::invalid_argument("Welch t-test needs >= 2 traces per population");
  }
  const std::size_t points = std::min(a.points(), b.points());
  const double na = static_cast<double>(a.traces());
  const double nb = static_cast<double>(b.traces());
  double best = 0.0;
  for (std::size_t p = 0; p < points; ++p) {
    const double denom = std::sqrt(a.variance(p) / na + b.variance(p) / nb);
    if (denom <= 1e-12) {
      continue;
    }
    best = std::max(best, std::abs((a.mean(p) - b.mean(p)) / denom));
  }
  return best;
}

double StreamingWelchT::max_dom() const {
  const auto& a = populations_[0];
  const auto& b = populations_[1];
  if (a.traces() == 0 || b.traces() == 0) {
    return 0.0;
  }
  const std::size_t points = std::min(a.points(), b.points());
  double best = 0.0;
  for (std::size_t p = 0; p < points; ++p) {
    best = std::max(best, std::abs(a.mean(p) - b.mean(p)));
  }
  return best;
}

StreamingSnr::StreamingSnr(std::size_t classes, std::size_t points)
    : classes_(classes, PopulationAccumulator(points)) {}

void StreamingSnr::merge(const StreamingSnr& other) {
  if (classes_.size() != other.classes_.size()) {
    throw std::invalid_argument("streaming merge: SNR class counts differ");
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    classes_[c].merge(other.classes_[c]);
  }
}

double StreamingSnr::max_snr() const {
  // Mirrors sca::max_snr: classes with no traces are skipped, signal is
  // the unbiased variance of per-class means, noise the mean of per-class
  // variances.
  std::vector<const PopulationAccumulator*> live;
  std::size_t points = 0;
  for (const auto& cls : classes_) {
    if (cls.traces() == 0) {
      continue;
    }
    points = points == 0 ? cls.points() : std::min(points, cls.points());
    live.push_back(&cls);
  }
  if (live.size() < 2 || points == 0) {
    return 0.0;
  }
  double best = 0.0;
  std::vector<double> point_means(live.size());
  for (std::size_t p = 0; p < points; ++p) {
    double noise = 0.0;
    for (std::size_t c = 0; c < live.size(); ++c) {
      point_means[c] = live[c]->mean(p);
      noise += live[c]->variance(p);
    }
    noise /= static_cast<double>(live.size());
    const MeanVar signal = mean_variance(point_means);
    if (noise > 1e-12) {
      best = std::max(best, signal.variance / noise);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// StreamingCpa

StreamingCpa::StreamingCpa(std::size_t points)
    : points_(points),
      shift_(points, 0.0),
      sum_x_(points),
      sum_xx_(points),
      class_sums_(16 * 256 * points, 0.0) {}

void StreamingCpa::add(std::span<const double> samples,
                       const std::array<std::uint8_t, 16>& plaintext) {
  check_span(samples, points_);
  if (n_ == 0) {
    std::copy(samples.begin(), samples.end(), shift_.begin());
  }
  // One pass over the samples fills the global moments; the per-byte class
  // rows then each receive the same shifted values.
  thread_local std::vector<double> shifted;
  shifted.resize(points_);
  for (std::size_t p = 0; p < points_; ++p) {
    const double x = samples[p] - shift_[p];
    shifted[p] = x;
    sum_x_[p].add(x);
    sum_xx_[p].add(x * x);
  }
  for (std::size_t byte = 0; byte < 16; ++byte) {
    const std::uint8_t v = plaintext[byte];
    ++class_counts_[byte][v];
    double* row = class_row(byte, v);
    for (std::size_t p = 0; p < points_; ++p) {
      row[p] += shifted[p];
    }
  }
  ++n_;
}

void StreamingCpa::add_batch(const TraceSet& batch) {
  check_batch(batch);
  for (std::size_t t = 0; t < batch.traces.size(); ++t) {
    add(batch.traces[t], batch.plaintexts[t]);
  }
}

void StreamingCpa::merge(const StreamingCpa& other) {
  check_points_match(points_, other.points_);
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double dn = static_cast<double>(other.n_);
  for (std::size_t p = 0; p < points_; ++p) {
    const double d = other.shift_[p] - shift_[p];
    sum_x_[p].add(other.sum_x_[p]);
    sum_x_[p].add(dn * d);
    sum_xx_[p].add(other.sum_xx_[p]);
    sum_xx_[p].add(2.0 * d * other.sum_x_[p].sum);
    sum_xx_[p].add(dn * d * d);
  }
  for (std::size_t byte = 0; byte < 16; ++byte) {
    for (std::size_t v = 0; v < 256; ++v) {
      const std::uint32_t cnt = other.class_counts_[byte][v];
      class_counts_[byte][v] += cnt;
      if (cnt == 0) {
        continue;
      }
      double* row = class_row(byte, v);
      const double* orow = other.class_row(byte, v);
      const double dc = static_cast<double>(cnt);
      for (std::size_t p = 0; p < points_; ++p) {
        row[p] += orow[p] + dc * (other.shift_[p] - shift_[p]);
      }
    }
  }
  n_ += other.n_;
}

ByteAttackResult StreamingCpa::finalize_byte(std::size_t byte_index) const {
  if (n_ < 4) {
    throw std::invalid_argument("streaming CPA needs >= 4 traces before finalize");
  }
  const auto& sbox = hwsec::crypto::aes_sbox();
  const auto& counts = class_counts_.at(byte_index);

  // Same class-sum algebra as sca::cpa_attack_byte; Pearson is invariant
  // under the per-point shift, so the shifted sums drop straight in.
  ByteAttackResult result;
  const double dn = static_cast<double>(n_);
  for (std::uint32_t guess = 0; guess < 256; ++guess) {
    std::array<double, 256> h{};
    double sum_h = 0.0, sum_hh = 0.0;
    for (std::uint32_t v = 0; v < 256; ++v) {
      h[v] = static_cast<double>(
          hamming_weight(sbox[static_cast<std::uint8_t>(v ^ guess)]));
      const double c = static_cast<double>(counts[v]);
      sum_h += c * h[v];
      sum_hh += c * h[v] * h[v];
    }
    const double shh = sum_hh - sum_h * sum_h / dn;
    double best_abs = 0.0;
    std::size_t best_point = 0;
    if (shh > 1e-12) {
      for (std::size_t p = 0; p < points_; ++p) {
        double sum_hx = 0.0;
        for (std::uint32_t v = 0; v < 256; ++v) {
          sum_hx += h[v] * class_row(byte_index, v)[p];
        }
        const double sxy = sum_hx - sum_h * sum_x_[p].sum / dn;
        const double sxx = sum_xx_[p].sum - sum_x_[p].sum * sum_x_[p].sum / dn;
        if (sxx <= 1e-12) {
          continue;
        }
        const double rho = std::abs(sxy / std::sqrt(sxx * shh));
        if (rho > best_abs) {
          best_abs = rho;
          best_point = p;
        }
      }
    }
    result.score_per_guess[guess] = best_abs;
    if (best_abs > result.best_score) {
      result.second_score = result.best_score;
      result.best_score = best_abs;
      result.best_guess = static_cast<std::uint8_t>(guess);
      result.best_point = best_point;
    } else if (best_abs > result.second_score) {
      result.second_score = best_abs;
    }
  }
  return result;
}

KeyAttackResult StreamingCpa::finalize_key() const {
  KeyAttackResult result;
  hwsec::sim::ThreadPool::shared().parallel_for(16, [&](std::size_t i) {
    result.bytes[i] = finalize_byte(i);
    result.recovered[i] = result.bytes[i].best_guess;
  });
  return result;
}

ByteAttackResult StreamingCpa::finalize_dpa_byte(std::size_t byte_index,
                                                 std::uint32_t bit) const {
  if (n_ < 4) {
    throw std::invalid_argument("streaming DPA needs >= 4 traces before finalize");
  }
  const auto& sbox = hwsec::crypto::aes_sbox();
  const auto& counts = class_counts_.at(byte_index);

  ByteAttackResult result;
  std::vector<double> ones_sum(points_);
  std::vector<double> zeros_sum(points_);
  for (std::uint32_t guess = 0; guess < 256; ++guess) {
    std::fill(ones_sum.begin(), ones_sum.end(), 0.0);
    std::fill(zeros_sum.begin(), zeros_sum.end(), 0.0);
    double n_ones = 0.0;
    double n_zeros = 0.0;
    for (std::uint32_t v = 0; v < 256; ++v) {
      const std::uint8_t s = sbox[static_cast<std::uint8_t>(v ^ guess)];
      const double* row = class_row(byte_index, v);
      double* acc = ((s >> bit) & 1) ? ones_sum.data() : zeros_sum.data();
      (((s >> bit) & 1) ? n_ones : n_zeros) += static_cast<double>(counts[v]);
      for (std::size_t p = 0; p < points_; ++p) {
        acc[p] += row[p];
      }
    }
    double score = 0.0;
    if (n_ones > 0.5 && n_zeros > 0.5) {
      // The shift cancels in the difference of class means.
      for (std::size_t p = 0; p < points_; ++p) {
        score = std::max(score, std::abs(ones_sum[p] / n_ones - zeros_sum[p] / n_zeros));
      }
    }
    result.score_per_guess[guess] = score;
    if (score > result.best_score) {
      result.second_score = result.best_score;
      result.best_score = score;
      result.best_guess = static_cast<std::uint8_t>(guess);
    } else if (score > result.second_score) {
      result.second_score = score;
    }
  }
  return result;
}

KeyAttackResult StreamingCpa::finalize_dpa_key(std::uint32_t bit) const {
  KeyAttackResult result;
  hwsec::sim::ThreadPool::shared().parallel_for(16, [&](std::size_t i) {
    result.bytes[i] = finalize_dpa_byte(i, bit);
    result.recovered[i] = result.bytes[i].best_guess;
  });
  return result;
}

// ---------------------------------------------------------------------------
// StreamingSecondOrderCpa

StreamingSecondOrderCpa::StreamingSecondOrderCpa(std::size_t points, std::size_t mask_sample)
    : points_(points),
      mask_sample_(mask_sample),
      shift_(points, 0.0),
      a1_(points),
      a2_(points),
      b11_(points),
      b21_(points),
      b12_(points),
      b22_(points),
      class_yx_(16 * 256 * points, 0.0),
      class_x_(16 * 256 * points, 0.0),
      class_y_(16 * 256, 0.0) {
  if (mask_sample >= points) {
    throw std::invalid_argument("mask sample index out of range");
  }
}

void StreamingSecondOrderCpa::add(std::span<const double> samples,
                                  const std::array<std::uint8_t, 16>& plaintext) {
  check_span(samples, points_);
  if (n_ == 0) {
    std::copy(samples.begin(), samples.end(), shift_.begin());
    shift_y_ = samples[mask_sample_];
  }
  const double y = samples[mask_sample_] - shift_y_;
  c1_.add(y);
  c2_.add(y * y);
  thread_local std::vector<double> shifted;
  shifted.resize(points_);
  for (std::size_t p = 0; p < points_; ++p) {
    const double x = samples[p] - shift_[p];
    shifted[p] = x;
    a1_[p].add(x);
    a2_[p].add(x * x);
    b11_[p].add(y * x);
    b21_[p].add(y * y * x);
    b12_[p].add(y * x * x);
    b22_[p].add(y * y * x * x);
  }
  for (std::size_t byte = 0; byte < 16; ++byte) {
    const std::uint8_t v = plaintext[byte];
    ++class_counts_[byte][v];
    const std::size_t base = class_base(byte, v);
    class_y_[byte * 256 + v] += y;
    for (std::size_t p = 0; p < points_; ++p) {
      class_yx_[base + p] += y * shifted[p];
      class_x_[base + p] += shifted[p];
    }
  }
  ++n_;
}

void StreamingSecondOrderCpa::add_batch(const TraceSet& batch) {
  check_batch(batch);
  for (std::size_t t = 0; t < batch.traces.size(); ++t) {
    add(batch.traces[t], batch.plaintexts[t]);
  }
}

void StreamingSecondOrderCpa::merge(const StreamingSecondOrderCpa& other) {
  check_points_match(points_, other.points_);
  if (mask_sample_ != other.mask_sample_) {
    throw std::invalid_argument("streaming merge: mask sample indices differ");
  }
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Rebase the other accumulator's shifted moments onto this basis: with
  // Y = Y' + dy and X = X' + dp, expand each Σ YᵃXᵇ binomially in the
  // other accumulator's moments (all primed quantities are other.*.sum).
  const double dn = static_cast<double>(other.n_);
  const double dy = other.shift_y_ - shift_y_;
  for (std::size_t p = 0; p < points_; ++p) {
    const double dp = other.shift_[p] - shift_[p];
    const double oa1 = other.a1_[p].sum;
    const double oa2 = other.a2_[p].sum;
    const double ob11 = other.b11_[p].sum;
    const double ob21 = other.b21_[p].sum;
    const double ob12 = other.b12_[p].sum;
    const double oc1 = other.c1_.sum;
    const double oc2 = other.c2_.sum;

    a1_[p].add(other.a1_[p]);
    a1_[p].add(dn * dp);

    a2_[p].add(other.a2_[p]);
    a2_[p].add(2.0 * dp * oa1);
    a2_[p].add(dn * dp * dp);

    b11_[p].add(other.b11_[p]);
    b11_[p].add(dy * oa1);
    b11_[p].add(dp * oc1);
    b11_[p].add(dn * dy * dp);

    b21_[p].add(other.b21_[p]);
    b21_[p].add(2.0 * dy * ob11);
    b21_[p].add(dy * dy * oa1);
    b21_[p].add(dp * oc2);
    b21_[p].add(2.0 * dy * dp * oc1);
    b21_[p].add(dn * dy * dy * dp);

    b12_[p].add(other.b12_[p]);
    b12_[p].add(2.0 * dp * ob11);
    b12_[p].add(dp * dp * oc1);
    b12_[p].add(dy * oa2);
    b12_[p].add(2.0 * dy * dp * oa1);
    b12_[p].add(dn * dy * dp * dp);

    b22_[p].add(other.b22_[p]);
    b22_[p].add(2.0 * dp * ob21);
    b22_[p].add(dp * dp * oc2);
    b22_[p].add(2.0 * dy * ob12);
    b22_[p].add(4.0 * dy * dp * ob11);
    b22_[p].add(2.0 * dy * dp * dp * oc1);
    b22_[p].add(dy * dy * oa2);
    b22_[p].add(2.0 * dy * dy * dp * oa1);
    b22_[p].add(dn * dy * dy * dp * dp);
  }
  for (std::size_t byte = 0; byte < 16; ++byte) {
    for (std::size_t v = 0; v < 256; ++v) {
      const std::uint32_t cnt = other.class_counts_[byte][v];
      class_counts_[byte][v] += cnt;
      if (cnt == 0) {
        continue;
      }
      const double dc = static_cast<double>(cnt);
      const std::size_t base = class_base(byte, v);
      const std::size_t obase = other.class_base(byte, v);
      const double og = other.class_y_[byte * 256 + v];
      for (std::size_t p = 0; p < points_; ++p) {
        const double dp = other.shift_[p] - shift_[p];
        const double od = other.class_x_[obase + p];
        class_yx_[base + p] += other.class_yx_[obase + p] + dy * od + dp * og + dc * dy * dp;
        class_x_[base + p] += od + dc * dp;
      }
      class_y_[byte * 256 + v] += og + dc * dy;
    }
  }
  c2_.add(other.c2_);
  c2_.add(2.0 * dy * other.c1_.sum);
  c2_.add(dn * dy * dy);
  c1_.add(other.c1_);
  c1_.add(dn * dy);
  n_ += other.n_;
}

ByteAttackResult StreamingSecondOrderCpa::finalize_byte(std::size_t byte_index) const {
  if (n_ < 8) {
    throw std::invalid_argument("streaming second-order CPA needs >= 8 traces before finalize");
  }
  const auto& sbox = hwsec::crypto::aes_sbox();
  const auto& counts = class_counts_.at(byte_index);
  const double dn = static_cast<double>(n_);
  const double mu_y = c1_.sum / dn;

  // Reconstruct the statistics the materialized path computes on the
  // centered-product traces c = (y − μy)(x − μx): with shifted moments
  // A/B/C (see the member comments),
  //   Σc        = B11 − n·μy·μx
  //   Σc²       = B22 − 2μx·B21 + μx²·C2 − 2μy·B12 + 4μyμx·B11
  //               − 2μyμx²·C1 + μy²·A2 − 2μy²μx·A1 + n·μy²μx²
  //   per-class Σc = K − μx·G − μy·D + n_v·μy·μx
  // (K = class ΣYX, D = class ΣX, G = class ΣY). The per-point shift and
  // the mask shift both cancel in the centered values, so these equal the
  // materialized sums up to rounding.
  std::vector<double> sum_c(points_);
  std::vector<double> sum_cc(points_);
  for (std::size_t p = 0; p < points_; ++p) {
    const double mu_x = a1_[p].sum / dn;
    sum_c[p] = b11_[p].sum - dn * mu_y * mu_x;
    sum_cc[p] = b22_[p].sum - 2.0 * mu_x * b21_[p].sum + mu_x * mu_x * c2_.sum -
                2.0 * mu_y * b12_[p].sum + 4.0 * mu_y * mu_x * b11_[p].sum -
                2.0 * mu_y * mu_x * mu_x * c1_.sum + mu_y * mu_y * a2_[p].sum -
                2.0 * mu_y * mu_y * mu_x * a1_[p].sum + dn * mu_y * mu_y * mu_x * mu_x;
  }

  ByteAttackResult result;
  std::vector<double> class_c(points_);
  for (std::uint32_t guess = 0; guess < 256; ++guess) {
    std::array<double, 256> h{};
    double sum_h = 0.0, sum_hh = 0.0;
    for (std::uint32_t v = 0; v < 256; ++v) {
      h[v] = static_cast<double>(
          hamming_weight(sbox[static_cast<std::uint8_t>(v ^ guess)]));
      const double c = static_cast<double>(counts[v]);
      sum_h += c * h[v];
      sum_hh += c * h[v] * h[v];
    }
    const double shh = sum_hh - sum_h * sum_h / dn;
    double best_abs = 0.0;
    std::size_t best_point = 0;
    if (shh > 1e-12) {
      for (std::size_t p = 0; p < points_; ++p) {
        const double mu_x = a1_[p].sum / dn;
        double sum_hc = 0.0;
        for (std::uint32_t v = 0; v < 256; ++v) {
          const std::uint32_t cnt = counts[v];
          if (cnt == 0 || h[v] == 0.0) {
            continue;
          }
          const std::size_t base = class_base(byte_index, v);
          const double cc = class_yx_[base + p] - mu_x * class_y_[byte_index * 256 + v] -
                            mu_y * class_x_[base + p] +
                            static_cast<double>(cnt) * mu_y * mu_x;
          sum_hc += h[v] * cc;
        }
        const double sxy = sum_hc - sum_h * sum_c[p] / dn;
        const double sxx = sum_cc[p] - sum_c[p] * sum_c[p] / dn;
        if (sxx <= 1e-12) {
          continue;
        }
        const double rho = std::abs(sxy / std::sqrt(sxx * shh));
        if (rho > best_abs) {
          best_abs = rho;
          best_point = p;
        }
      }
    }
    result.score_per_guess[guess] = best_abs;
    if (best_abs > result.best_score) {
      result.second_score = result.best_score;
      result.best_score = best_abs;
      result.best_guess = static_cast<std::uint8_t>(guess);
      result.best_point = best_point;
    } else if (best_abs > result.second_score) {
      result.second_score = best_abs;
    }
  }
  return result;
}

KeyAttackResult StreamingSecondOrderCpa::finalize_key() const {
  KeyAttackResult result;
  hwsec::sim::ThreadPool::shared().parallel_for(16, [&](std::size_t i) {
    result.bytes[i] = finalize_byte(i);
    result.recovered[i] = result.bytes[i].best_guess;
  });
  return result;
}

}  // namespace hwsec::sca
