#include "sim/isa.h"

#include <sstream>

namespace hwsec::sim {

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kLoadImm: return "li";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kMul: return "mul";
    case Opcode::kAddImm: return "addi";
    case Opcode::kAndImm: return "andi";
    case Opcode::kXorImm: return "xori";
    case Opcode::kShlImm: return "shli";
    case Opcode::kShrImm: return "shri";
    case Opcode::kLoad: return "lw";
    case Opcode::kLoadByte: return "lb";
    case Opcode::kStore: return "sw";
    case Opcode::kStoreByte: return "sb";
    case Opcode::kBranch: return "br";
    case Opcode::kJump: return "j";
    case Opcode::kJumpInd: return "jr";
    case Opcode::kCall: return "call";
    case Opcode::kCallInd: return "callr";
    case Opcode::kRet: return "ret";
    case Opcode::kFence: return "fence";
    case Opcode::kClflush: return "clflush";
    case Opcode::kRdCycle: return "rdcycle";
    case Opcode::kEcall: return "ecall";
  }
  return "?";
}

namespace {
std::string cond_name(BranchCond c) {
  switch (c) {
    case BranchCond::kEq: return "eq";
    case BranchCond::kNe: return "ne";
    case BranchCond::kLt: return "lt";
    case BranchCond::kGe: return "ge";
    case BranchCond::kLtu: return "ltu";
    case BranchCond::kGeu: return "geu";
  }
  return "?";
}
}  // namespace

std::string disassemble(const Instruction& inst) {
  std::ostringstream os;
  os << to_string(inst.op);
  switch (inst.op) {
    case Opcode::kLoadImm:
    case Opcode::kRdCycle:
      os << " r" << int(inst.rd) << ", " << inst.imm;
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kMul:
      os << " r" << int(inst.rd) << ", r" << int(inst.rs1) << ", r" << int(inst.rs2);
      break;
    case Opcode::kAddImm:
    case Opcode::kAndImm:
    case Opcode::kXorImm:
    case Opcode::kShlImm:
    case Opcode::kShrImm:
      os << " r" << int(inst.rd) << ", r" << int(inst.rs1) << ", " << inst.imm;
      break;
    case Opcode::kLoad:
    case Opcode::kLoadByte:
      os << " r" << int(inst.rd) << ", [r" << int(inst.rs1) << "+" << inst.imm << "]";
      break;
    case Opcode::kStore:
    case Opcode::kStoreByte:
      os << " [r" << int(inst.rs1) << "+" << inst.imm << "], r" << int(inst.rs2);
      break;
    case Opcode::kBranch:
      os << "." << cond_name(inst.cond) << " r" << int(inst.rs1) << ", r" << int(inst.rs2)
         << ", 0x" << std::hex << inst.imm;
      break;
    case Opcode::kJump:
    case Opcode::kCall:
      os << " 0x" << std::hex << inst.imm;
      break;
    case Opcode::kJumpInd:
    case Opcode::kCallInd:
      os << " r" << int(inst.rs1);
      break;
    case Opcode::kClflush:
      os << " [r" << int(inst.rs1) << "+" << inst.imm << "]";
      break;
    case Opcode::kEcall:
      os << " " << inst.imm;
      break;
    default:
      break;
  }
  return os.str();
}

bool is_control_flow(Opcode op) {
  switch (op) {
    case Opcode::kBranch:
    case Opcode::kJump:
    case Opcode::kJumpInd:
    case Opcode::kCall:
    case Opcode::kCallInd:
    case Opcode::kRet:
    case Opcode::kHalt:
      return true;
    default:
      return false;
  }
}

}  // namespace hwsec::sim
