#include "core/capture.h"

#include <algorithm>
#include <memory>

#include "core/campaign.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"

namespace hwsec::core {

namespace sca = hwsec::sca;
namespace crypto = hwsec::crypto;

namespace {

std::size_t resolve_window(std::size_t window_batches, unsigned workers) {
  if (window_batches != 0) {
    return window_batches;
  }
  const unsigned w = workers != 0 ? workers : sim::ThreadPool::default_workers();
  // 2× workers keeps the pool saturated while the delivering thread drains
  // the previous wave.
  return 2 * static_cast<std::size_t>(w);
}

}  // namespace

std::size_t capture_aes_power_batches(const BatchedCaptureConfig& config,
                                      const crypto::AesKey& key, attacks::AesVariant variant,
                                      const sca::RecorderConfig& recorder_config,
                                      const TraceBatchSink& sink) {
  const std::size_t batch = config.batch_traces != 0 ? config.batch_traces : 64;
  const std::size_t total = config.total_traces;
  const std::size_t num_batches = (total + batch - 1) / batch;
  const std::size_t window = resolve_window(config.window_batches, config.workers);

  std::unique_ptr<sim::ThreadPool> local_pool;
  if (config.workers != 0) {
    local_pool = std::make_unique<sim::ThreadPool>(config.workers);
  }
  sim::ThreadPool& pool = local_pool ? *local_pool : sim::ThreadPool::shared();
  std::size_t captured = 0;
  for (std::size_t wave_base = 0; wave_base < num_batches; wave_base += window) {
    const std::size_t wave = std::min(window, num_batches - wave_base);
    // One campaign per wave: trial i of the wave is global batch
    // wave_base + i, whose content derives from (config.seed, global
    // batch index) alone — identical stream at any worker count, and
    // identical to collect_aes_traces_parallel's batch decomposition.
    auto results = run_campaign<sca::TraceSet>(
        pool, config.seed, wave, [&](const TrialContext& ctx) {
          const std::size_t b = wave_base + ctx.index;
          const std::size_t n = std::min(batch, total - b * batch);
          return attacks::collect_aes_trace_batch(key, variant, b, n, recorder_config,
                                                  config.seed);
        });
    for (std::size_t i = 0; i < results.size(); ++i) {
      captured += results[i].traces.size();
      sink(wave_base + i, results[i]);
      results[i] = sca::TraceSet{};  // free the batch before the next wave.
    }
  }
  return captured;
}

sca::StreamingCpa run_streaming_cpa_campaign(const BatchedCaptureConfig& config,
                                             const crypto::AesKey& key,
                                             attacks::AesVariant variant,
                                             const sca::RecorderConfig& recorder_config) {
  const std::size_t points =
      attacks::kAesSamplesPerTrace * (1 + recorder_config.max_jitter);
  sca::StreamingCpa acc(points);
  capture_aes_power_batches(config, key, variant, recorder_config,
                            [&](std::size_t, const sca::TraceSet& set) { acc.add_batch(set); });
  return acc;
}

sca::StreamingSecondOrderCpa run_streaming_second_order_campaign(
    const BatchedCaptureConfig& config, const crypto::AesKey& key,
    const sca::RecorderConfig& recorder_config, std::size_t mask_sample) {
  const std::size_t points =
      attacks::kAesSamplesPerTrace * (1 + recorder_config.max_jitter);
  sca::StreamingSecondOrderCpa acc(points, mask_sample);
  capture_aes_power_batches(config, key, attacks::AesVariant::kMasked, recorder_config,
                            [&](std::size_t, const sca::TraceSet& set) { acc.add_batch(set); });
  return acc;
}

std::uint64_t capture_line_observation_batches(const ObservationCaptureConfig& config,
                                               const sim::MachineProfile& profile,
                                               const crypto::AesKey& key,
                                               const ObservationBatchSink& sink) {
  const std::size_t batch = config.batch_observations != 0 ? config.batch_observations : 64;
  const std::uint64_t total = config.total_observations;
  const std::size_t num_batches =
      static_cast<std::size_t>((total + batch - 1) / batch);
  const std::size_t window = resolve_window(config.window_batches, config.workers);

  std::unique_ptr<sim::ThreadPool> local_pool;
  if (config.workers != 0) {
    local_pool = std::make_unique<sim::ThreadPool>(config.workers);
  }
  sim::ThreadPool& pool = local_pool ? *local_pool : sim::ThreadPool::shared();
  for (std::size_t wave_base = 0; wave_base < num_batches; wave_base += window) {
    const std::size_t wave = std::min(window, num_batches - wave_base);
    auto results = run_campaign<std::vector<attacks::LineObservation>>(
        pool, config.seed, wave, [&](const TrialContext& ctx) {
          const std::size_t b = wave_base + ctx.index;
          const std::uint64_t n =
              std::min<std::uint64_t>(batch, total - static_cast<std::uint64_t>(b) * batch);
          // Each batch leases a pooled machine (snapshot/reset reuse) and
          // rebuilds the victim; batch content derives from (seed, b) only.
          const std::uint64_t batch_seed = sim::derive_seed(config.seed, b);
          MachineLease lease = acquire_machine(ctx.machines, profile, batch_seed);
          const sim::PhysAddr tables = lease->alloc_frames(2);
          attacks::AesCacheVictim victim(*lease, /*core=*/1, /*domain=*/7, tables, key);
          attacks::CacheAttackConfig attack = config.attack;
          attack.rng_seed = batch_seed;
          std::vector<attacks::LineObservation> observations;
          observations.reserve(static_cast<std::size_t>(n));
          attacks::collect_line_observations_into(
              *lease, victim.layout(),
              [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }, n, attack,
              [&](const attacks::LineObservation& obs) { observations.push_back(obs); });
          return observations;
        });
    for (std::size_t i = 0; i < results.size(); ++i) {
      sink(wave_base + i, results[i]);
      results[i].clear();
      results[i].shrink_to_fit();
    }
  }
  return total;
}

}  // namespace hwsec::core
